package flashfc_test

import (
	"testing"

	"flashfc"
)

// These tests exercise the public façade end to end, mirroring the README
// quickstart. The heavy lifting is covered by the internal test suites.

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := flashfc.DefaultMachineConfig(8)
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	m := flashfc.NewMachine(cfg)

	addr := m.Space.Base(3) + 0x400
	tok := m.Oracle.NextToken()
	m.Nodes[1].Ctrl.Write(addr, tok, func(r flashfc.Result) {
		if r.Err == nil {
			m.Oracle.Wrote(addr, tok)
		}
	})
	m.E.Run()

	m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 5}, flashfc.Millisecond)
	m.E.At(flashfc.Millisecond, func() {
		m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, 5))
	})
	if !m.RunUntilRecovered(5 * flashfc.Second) {
		t.Fatal("recovery did not complete")
	}
	pt := m.Aggregate()
	if pt.Total <= 0 || pt.Participants != 7 {
		t.Fatalf("aggregate = %+v", pt)
	}
	res := m.VerifyMemory(0, 1)
	if !res.OK() {
		t.Fatalf("verify: %v", res)
	}
}

func TestPublicValidationRun(t *testing.T) {
	cfg := flashfc.DefaultValidationConfig()
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	cfg.FillLines = 48
	r := flashfc.RunValidation(cfg, flashfc.NodeFailure, 5)
	if !r.OK() {
		t.Fatalf("validation failed: %s", r.Note)
	}
}

func TestPublicHiveFlow(t *testing.T) {
	mc := flashfc.HiveMachineConfig(4, 1, 256<<10, 16<<10, 3)
	m := flashfc.NewMachine(mc)
	h := flashfc.NewHive(m, flashfc.DefaultHiveConfig(4))
	mk := flashfc.NewParallelMake(h, flashfc.DefaultMakeConfig())
	idle := false
	mk.Start(func() { idle = true })
	m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 2}, flashfc.Millisecond)
	deadline := 20 * flashfc.Second
	for m.E.Now() < deadline && !(idle && m.Recovered() && h.OSTime > 0) {
		m.E.RunUntil(m.E.Now() + flashfc.Millisecond)
	}
	o := mk.Evaluate()
	if !o.OK() {
		t.Fatalf("outcome: %+v", o)
	}
	if o.Completed != 2 || o.Excused != 1 {
		t.Fatalf("completed=%d excused=%d", o.Completed, o.Excused)
	}
}

func TestPublicParallelCampaign(t *testing.T) {
	cfg := flashfc.DefaultValidationConfig()
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	cfg.FillLines = 48
	cfg.Workers = 4
	out := flashfc.RunCampaign(
		flashfc.CampaignConfig{Seed: 1, Runs: 6, Workers: cfg.Workers},
		flashfc.ValidationCampaign{Config: cfg, Fault: flashfc.NodeFailure})
	results, stats := out.Runs, out.Stats
	if len(results) != 6 || stats.Runs != 6 || stats.Failed != 0 {
		t.Fatalf("batch: %d results, stats %+v", len(results), stats)
	}
	for i, r := range results {
		if r.Err != nil || !r.Value.OK() {
			t.Fatalf("run %d failed: %v %s", i, r.Err, r.Value.Note)
		}
		if r.Value.Events == 0 || r.Events != r.Value.Events {
			t.Fatalf("run %d event accounting: result=%d run=%d", i, r.Value.Events, r.Events)
		}
	}
	if stats.Events == 0 || stats.EventsPerSec() <= 0 {
		t.Fatalf("stats accounting: %+v", stats)
	}

	if flashfc.DeriveSeed(1, 2, 3) != flashfc.DeriveSeed(1, 2, 3) ||
		flashfc.DeriveSeed(1, 2, 3) == flashfc.DeriveSeed(1, 2, 4) {
		t.Fatal("DeriveSeed not a distinct pure mapping")
	}
	squares := flashfc.ParallelMap(5, 2, func(i int) int { return i * i })
	for i, v := range squares {
		if v != i*i {
			t.Fatalf("ParallelMap[%d] = %d", i, v)
		}
	}
}

func TestPublicConstantsAndHelpers(t *testing.T) {
	if len(flashfc.AllFaultTypes()) != 5 {
		t.Fatal("fault types")
	}
	if flashfc.Second != 1e9*flashfc.Nanosecond {
		t.Fatal("time units")
	}
	if flashfc.ErrBusError == nil || flashfc.ErrAborted == nil {
		t.Fatal("errors unexported")
	}
	if frac := flashfc.FirewallOverheadFraction(1); frac <= 0 || frac >= 0.07 {
		t.Fatalf("firewall overhead fraction = %v", frac)
	}
}
