package flashfc_test

import (
	"fmt"

	"flashfc"
)

// Example demonstrates the core flow: build a machine, inject a node
// failure, run the distributed recovery algorithm, verify containment.
func Example() {
	cfg := flashfc.DefaultMachineConfig(8)
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	m := flashfc.NewMachine(cfg)

	m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 5}, flashfc.Millisecond)
	m.E.At(flashfc.Millisecond, func() {
		m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, 5))
	})
	if !m.RunUntilRecovered(5 * flashfc.Second) {
		fmt.Println("recovery incomplete")
		return
	}
	fmt.Println("participants:", m.Aggregate().Participants)
	fmt.Println("containment ok:", m.VerifyMemory(0, 1).OK())
	// Output:
	// participants: 7
	// containment ok: true
}

// ExampleRunValidation reproduces one Table 5.3 experiment.
func ExampleRunValidation() {
	cfg := flashfc.DefaultValidationConfig()
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	cfg.FillLines = 48
	r := flashfc.RunValidation(cfg, flashfc.RouterFailure, 7)
	fmt.Println("passed:", r.OK())
	// Output:
	// passed: true
}

// ExampleNewHive runs a miniature §5.1 end-to-end scenario.
func ExampleNewHive() {
	m := flashfc.NewMachine(flashfc.HiveMachineConfig(4, 1, 256<<10, 16<<10, 5))
	h := flashfc.NewHive(m, flashfc.DefaultHiveConfig(4))
	mk := flashfc.NewParallelMake(h, flashfc.DefaultMakeConfig())
	idle := false
	mk.Start(func() { idle = true })
	for m.E.Now() < 5*flashfc.Second && !idle {
		m.E.RunUntil(m.E.Now() + flashfc.Millisecond)
	}
	o := mk.Evaluate()
	fmt.Println("compiles completed:", o.Completed)
	// Output:
	// compiles completed: 3
}
