module flashfc

go 1.22
