// Command figures regenerates the paper's evaluation figures as data
// series.
//
//	figures -fig 5.5            hardware recovery time vs machine size
//	figures -fig 5.6            coherence recovery vs L2 size and memory size
//	figures -fig 5.7            end-to-end suspension time vs machine size
//	figures -fig ablations      §4.2 / §4.3 / §6.2 / §6.3 optimization measurements
//	figures -fig dist           recovery-time distributions across random faults
//
// Each sweep is one campaign through the Campaign API: its points are
// independent simulations, measured on -workers goroutines (default: one
// per CPU) with bit-identical results. -metrics appends the sweep's
// aggregate metric registry (every point's machine-wide snapshot, merged)
// for figs 5.5, 5.6 and dist. -runs sets the seeds of the dist sweep.
// -run-log streams one JSONL record per point/run (byte-identical at any
// -workers) and -progress reports live sweep progress on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flashfc"
	"flashfc/internal/cliflags"
)

func main() {
	fig := flag.String("fig", "5.5", "figure to regenerate: 5.5, 5.6, 5.7, ablations, dist")
	full := flag.Bool("full", false, "paper-scale parameters (16 MB/node for 5.7)")
	cf := cliflags.Register(flag.CommandLine, cliflags.Defaults{Runs: 12})
	flag.Parse()
	cf.WarnTraceIgnored()
	cf.CheckRouting()

	switch *fig {
	case "5.5":
		fig55(cf)
	case "5.6":
		fig56(cf)
	case "5.7":
		fig57(cf, *full)
	case "ablations":
		ablations(cf.Seed)
	case "dist":
		dist(cf)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func fig55(cf *cliflags.Flags) {
	start := time.Now()
	fmt.Println("Fig 5.5 — total hardware recovery times (1 MB memory/node, 1 MB L2)")
	fmt.Println("\nmesh topology:")
	fmt.Printf("%6s %12s %12s %12s %12s %8s\n", "nodes", "P1", "P1,2", "P1,2,3", "total", "rounds")
	nodes := []int{2, 8, 16, 32, 64, 128}
	sink, finish := cf.Sinks()
	ccfg := cf.Config()
	ccfg.Observe = sink
	var events uint64
	var snaps []*flashfc.MetricsSnapshot
	mesh := flashfc.RunCampaign(ccfg, flashfc.Fig55Campaign{Nodes: nodes, Topo: flashfc.TopoMesh, Routing: cf.Routing})
	for _, p := range mesh.Values() {
		ph := p.Phases
		fmt.Printf("%6d %12v %12v %12v %12v %8d\n",
			p.Nodes, ph.P1, ph.P12, ph.P123, ph.Total, ph.MaxRounds)
		events += p.Events
	}
	snaps = append(snaps, mesh.Metrics)
	fmt.Println("\nhypercube topology (the dissemination phase grows with the diameter):")
	fmt.Printf("%6s %12s %12s %12s %8s\n", "nodes", "P1", "P1,2", "total", "rounds")
	cube := flashfc.RunCampaign(ccfg, flashfc.Fig55Campaign{Nodes: nodes, Topo: flashfc.TopoHypercube, Routing: cf.Routing})
	for _, p := range cube.Values() {
		ph := p.Phases
		fmt.Printf("%6d %12v %12v %12v %8d\n", p.Nodes, ph.P1, ph.P12, ph.Total, ph.MaxRounds)
		events += p.Events
	}
	snaps = append(snaps, cube.Metrics)
	cliflags.FinishSinks(finish)
	throughput(events, start)
	emitSweepMetrics(snaps, cf.Metrics)
}

// emitSweepMetrics prints the merged metric registry of a whole sweep.
func emitSweepMetrics(snaps []*flashfc.MetricsSnapshot, show bool) {
	if !show {
		return
	}
	fmt.Println("\nmetrics (sweep aggregate):")
	flashfc.MergeMetrics(snaps).WriteTable(os.Stdout)
}

func fig56(cf *cliflags.Flags) {
	start := time.Now()
	fmt.Println("Fig 5.6 — cache coherence protocol recovery times (4 nodes)")
	fmt.Println("\nleft: vs second-level cache size (4 MB/node memory):")
	fmt.Printf("%10s %12s %12s\n", "L2 [MB]", "WB (flush)", "P4 total")
	sink, finish := cf.Sinks()
	ccfg := cf.Config()
	ccfg.Observe = sink
	var events uint64
	var snaps []*flashfc.MetricsSnapshot
	l2 := flashfc.RunCampaign(ccfg, flashfc.Fig56L2Campaign{
		L2Sizes: []uint64{512 << 10, 1 << 20, 2 << 20, 4 << 20},
		Routing: cf.Routing,
	})
	for _, p := range l2.Values() {
		ph := p.Phases
		fmt.Printf("%10.1f %12v %12v\n", p.X, ph.WB, ph.P4Time())
		events += p.Events
	}
	snaps = append(snaps, l2.Metrics)
	fmt.Println("\nright: vs node memory size (1 MB L2):")
	fmt.Printf("%10s %12s %12s\n", "mem [MB]", "scan", "P4 total")
	mem := flashfc.RunCampaign(ccfg, flashfc.Fig56MemCampaign{
		MemSizes: []uint64{1 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20},
		Routing:  cf.Routing,
	})
	for _, p := range mem.Values() {
		ph := p.Phases
		fmt.Printf("%10.0f %12v %12v\n", p.X, ph.Scan, ph.P4Time())
		events += p.Events
	}
	snaps = append(snaps, mem.Metrics)
	cliflags.FinishSinks(finish)
	throughput(events, start)
	emitSweepMetrics(snaps, cf.Metrics)
}

func fig57(cf *cliflags.Flags, full bool) {
	mem := uint64(2 << 20)
	l2 := uint64(256 << 10)
	if full {
		mem = 16 << 20
		l2 = 1 << 20
	}
	fmt.Printf("Fig 5.7 — end-to-end recovery times (1 Hive cell/node, %d MB/node, %d KB L2)\n\n",
		mem>>20, l2>>10)
	fmt.Printf("%6s %14s %14s\n", "nodes", "HW", "HW+OS")
	sink, finish := cf.Sinks()
	ccfg := cf.Config()
	ccfg.Observe = sink
	out := flashfc.RunCampaign(ccfg, flashfc.Fig57Campaign{
		Nodes: []int{2, 4, 8, 16}, MemBytes: mem, L2Bytes: l2,
	})
	cliflags.FinishSinks(finish)
	for _, p := range out.Values() {
		status := ""
		if !p.OK {
			status = "  (run failed)"
		}
		fmt.Printf("%6d %14v %14v%s\n", p.Nodes, p.HW, p.HWOS, status)
	}
	fmt.Println("\npaper: OS recovery scales with cells rather than nodes (§5.3)")
}

func dist(cf *cliflags.Flags) {
	fmt.Printf("Recovery-time distributions (node failures at random workload points, %d seeds)\n", cf.Runs)
	fmt.Println()
	fmt.Printf("%6s %28s %28s\n", "nodes", "P2 ms (min/med/max)", "total ms (min/med/max)")
	var stats flashfc.CampaignStats
	var snaps []*flashfc.MetricsSnapshot
	sink, finish := cf.Sinks()
	ccfg := cf.Config()
	ccfg.Observe = sink
	for _, n := range []int{8, 32, 64} {
		scfg := flashfc.DefaultScalingConfig(n)
		scfg.Routing = cf.Routing
		out := flashfc.RunCampaign(ccfg, flashfc.DistributionCampaign{Config: scfg})
		d := flashfc.SummarizeRecovery(n, out)
		fmt.Printf("%6d %12.2f /%6.2f /%6.2f %12.2f /%6.2f /%6.2f\n",
			n, d.P2.Min, d.P2.Median, d.P2.Max, d.Total.Min, d.Total.Median, d.Total.Max)
		stats.Merge(d.Stats)
		snaps = append(snaps, d.Metrics)
	}
	cliflags.FinishSinks(finish)
	fmt.Printf("\nthroughput: %v\n", stats)
	emitSweepMetrics(snaps, cf.Metrics)
}

// throughput prints the sweep's aggregate simulated-event rate.
func throughput(events uint64, start time.Time) {
	wall := time.Since(start)
	fmt.Printf("\nthroughput: %d simulated events in %v, %.2f Mevents/s\n",
		events, wall.Round(time.Millisecond), float64(events)/wall.Seconds()/1e6)
}

func ablations(seed int64) {
	fmt.Println("Ablations")
	fmt.Println("\n§4.2 speculative pings (recovery-triggering latency, 32 nodes):")
	with := flashfc.TriggerLatency(32, true, seed)
	without := flashfc.TriggerLatency(32, false, seed)
	fmt.Printf("  with:    %v\n  without: %v\n  speedup: %.1fx (paper: ~5x)\n",
		with, without, float64(without)/float64(with))

	fmt.Println("\n§4.3 BFT-hint scheduling (dissemination time, 32 nodes):")
	on, off := true, false
	cfgOn := flashfc.DefaultScalingConfig(32)
	cfgOn.BFTHints = &on
	cfgOff := flashfc.DefaultScalingConfig(32)
	cfgOff.BFTHints = &off
	pOn := flashfc.MeasureRecovery(cfgOn)
	pOff := flashfc.MeasureRecovery(cfgOff)
	fmt.Printf("  with hints:    %v\n  without hints: %v\n",
		pOn.Phases.P2Time(), pOff.Phases.P2Time())

	fmt.Println("\n§6.2 firewall cost (intercell write miss latency):")
	offLat := flashfc.FirewallLatency(false, seed)
	onLat := flashfc.FirewallLatency(true, seed)
	fmt.Printf("  firewall off: %v\n  firewall on:  %v\n  increase: %.1f%% (paper: <7%%)\n",
		offLat, onLat, 100*flashfc.FirewallOverheadFraction(seed))

	fmt.Println("\n§6.3 HAL-style reliable interconnect (flush-free P4, 8 nodes):")
	fmt.Printf("  flushed P4:    %v\n  flush-free P4: %v\n",
		measureP4(seed, false, false), measureP4(seed, true, false))

	fmt.Println("\n§6.2 hardwired controller (minimum-support P4, 8 nodes):")
	fmt.Printf("  programmable:  %v\n  hardwired:     %v\n",
		measureP4(seed, false, false), measureP4(seed, false, true))
}

// measureP4 runs one node-failure recovery and returns the P4 duration.
func measureP4(seed int64, reliable, hardwired bool) flashfc.Time {
	cfg := flashfc.DefaultMachineConfig(8)
	cfg.Seed = seed
	cfg.ReliableInterconnect = reliable
	cfg.Recovery.HardwiredController = hardwired
	m := flashfc.NewMachine(cfg)
	m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 4}, flashfc.Millisecond)
	m.E.At(flashfc.Millisecond, func() { m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, 4)) })
	if !m.RunUntilRecovered(10 * flashfc.Second) {
		panic("recovery incomplete")
	}
	return m.Aggregate().P4Time()
}
