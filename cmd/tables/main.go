// Command tables regenerates the paper's experiment tables.
//
//	tables -table 5.3 [-runs 200] [-seed 1] [-parallel N]
//	tables -table 5.4 [-runs 1187] [-legacy-bug] [-seed 1] [-parallel N]
//
// Table 5.3 (validation): stand-alone cache-fill runs per fault type; the
// paper reports 200 runs per type with zero failures.
//
// Table 5.4 (end-to-end): Hive parallel-make runs per fault type; the paper
// reports 1187 runs with 99 failures (8.4%), all caused by OS bugs in the
// handling of incoherent lines — reenable them with -legacy-bug.
//
// Runs within a batch are independent simulations; -parallel N fans them
// out over N workers (default: one per CPU) with bit-identical results,
// and each table ends with the campaign's simulated-event throughput.
// -metrics appends the campaign's aggregate metric registry (every run's
// machine-wide snapshot, merged).
package main

import (
	"flag"
	"fmt"
	"os"

	"flashfc"
)

func main() {
	table := flag.String("table", "5.3", "table to regenerate: 5.3 or 5.4")
	runs := flag.Int("runs", 0, "runs per fault type (default: 20 for 5.3, 10 for 5.4)")
	seed := flag.Int64("seed", 1, "base random seed")
	legacy := flag.Bool("legacy-bug", false, "reenable the paper's incoherent-line OS bugs (5.4)")
	full := flag.Bool("full", false, "paper-scale run counts (200/type for 5.3; ~300/type for 5.4)")
	parallel := flag.Int("parallel", 0, "worker goroutines per batch (0 = one per CPU)")
	showMetrics := flag.Bool("metrics", false, "print the campaign's aggregate metric registry")
	flag.Parse()

	switch *table {
	case "5.3":
		n := *runs
		if n == 0 {
			n = 20
			if *full {
				n = 200
			}
		}
		table53(n, *seed, *parallel, *showMetrics)
	case "5.4":
		n := *runs
		if n == 0 {
			n = 10
			if *full {
				n = 300
			}
		}
		table54(n, *seed, *legacy, *parallel, *showMetrics)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
}

func table53(runs int, seed int64, parallel int, showMetrics bool) {
	fmt.Printf("Table 5.3 — validation experiments (%d runs per fault type)\n\n", runs)
	fmt.Printf("%-38s %12s %12s\n", "Injected fault type", "# of exp.", "# failed")
	cfg := flashfc.DefaultValidationConfig()
	cfg.Workers = parallel
	rows, stats := flashfc.RunTable53(cfg, runs, seed)
	names := map[flashfc.FaultType]string{
		flashfc.NodeFailure:   "Node failure",
		flashfc.RouterFailure: "Router failure",
		flashfc.LinkFailure:   "Link failure",
		flashfc.InfiniteLoop:  "Infinite loop in MAGIC handler",
		flashfc.FalseAlarm:    "Recovery triggered by false alarm",
	}
	bad := 0
	snaps := make([]*flashfc.MetricsSnapshot, 0, len(rows))
	for _, r := range rows {
		fmt.Printf("%-38s %12d %12d\n", names[r.Fault], r.Runs, r.Failed)
		bad += r.Failed
		snaps = append(snaps, r.Metrics)
	}
	fmt.Printf("\npaper: 200 runs per type, 0 failures; this run: %d total failures\n", bad)
	fmt.Printf("throughput: %v\n", stats)
	emitCampaignMetrics(snaps, showMetrics)
	if bad > 0 {
		os.Exit(1)
	}
}

// emitCampaignMetrics prints the merged metric registry of a whole campaign
// (the per-fault-type batch aggregates, merged again across types).
func emitCampaignMetrics(snaps []*flashfc.MetricsSnapshot, show bool) {
	if !show {
		return
	}
	fmt.Println("\nmetrics (campaign aggregate):")
	flashfc.MergeMetrics(snaps).WriteTable(os.Stdout)
}

func table54(runs int, seed int64, legacy bool, parallel int, showMetrics bool) {
	mode := "fixed OS"
	if legacy {
		mode = "legacy OS bugs reenabled"
	}
	fmt.Printf("Table 5.4 — end-to-end recovery experiments (%d runs per fault type, %s)\n\n", runs, mode)
	fmt.Printf("%-38s %12s %12s\n", "Injected fault type", "# of exp.", "# failed")
	cfg := flashfc.DefaultEndToEndConfig()
	cfg.LegacyIncoherentBug = legacy
	cfg.Workers = parallel
	runsPer := map[flashfc.FaultType]int{
		flashfc.NodeFailure:   runs,
		flashfc.RouterFailure: runs,
		flashfc.LinkFailure:   runs,
		flashfc.InfiniteLoop:  runs,
	}
	names := map[flashfc.FaultType]string{
		flashfc.NodeFailure:   "Node failure",
		flashfc.RouterFailure: "Router failure",
		flashfc.LinkFailure:   "Link failure",
		flashfc.InfiniteLoop:  "Infinite loop in MAGIC handler",
	}
	rows, stats := flashfc.RunTable54(cfg, runsPer, seed)
	total, failed := 0, 0
	snaps := make([]*flashfc.MetricsSnapshot, 0, len(rows))
	for _, r := range rows {
		fmt.Printf("%-38s %12d %12d\n", names[r.Fault], r.Runs, r.Failed)
		total += r.Runs
		failed += r.Failed
		snaps = append(snaps, r.Metrics)
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(total-failed) / float64(total)
	}
	fmt.Printf("%-38s %12d %12d\n", "Total", total, failed)
	fmt.Printf("\n%.1f%% of runs correctly finished the compiles not affected by the fault\n", pct)
	fmt.Println("paper: 1187 runs, 99 failed (91.6% success), all failures caused by OS bugs")
	fmt.Printf("throughput: %v\n", stats)
	emitCampaignMetrics(snaps, showMetrics)
}
