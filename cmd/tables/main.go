// Command tables regenerates the paper's experiment tables.
//
//	tables -table 5.3 [-runs 200] [-seed 1] [-workers N]
//	tables -table 5.4 [-runs 1187] [-legacy-bug] [-seed 1] [-workers N]
//	tables -table tail [-runs 1000] [-seed 1] [-workers N]
//	tables -table tail -full -run-log runs.jsonl -progress -exemplars out/
//	tables -table routing [-runs 100] [-seed 1] [-workers N]
//
// Table 5.3 (validation): stand-alone cache-fill runs per fault type; the
// paper reports 200 runs per type with zero failures.
//
// Table 5.4 (end-to-end): Hive parallel-make runs per fault type; the paper
// reports 1187 runs with 99 failures (8.4%), all caused by OS bugs in the
// handling of incoherent lines — reenable them with -legacy-bug.
//
// Table tail (containment-time tail): warm-forked validation runs of the
// degradation fault classes — transient-link, fail-slow, CPU-fail/memory-
// survives — reduced to p50/p99/p999 containment time plus the fraction of
// the machine each fault cost. A p999 printed with a trailing * rests on
// interpolation rather than a real observation (run count too small); use
// -full (1000 runs per scenario) for a supported tail.
//
// Each table is a sequence of campaigns, one per fault type, run through
// the Campaign API: runs within a campaign are independent simulations,
// fanned out over -workers goroutines (default: one per CPU) with
// bit-identical results, and each table ends with the aggregate
// simulated-event throughput. -metrics appends the campaign's aggregate
// metric registry (every run's machine-wide snapshot, merged).
//
// Table routing (head-to-head strategies): every registered recovery
// routing strategy replays the identical warm-forked fault sequences —
// single-link, router, and multi-link scenarios — and the table compares
// recovery time, the P3 (reroute) share, packets lost, post-recovery verify
// throughput, and deadlock freedom (CDG acyclicity of the installed
// tables). The 5.3/5.4/tail tables instead honor -routing NAME to run one
// strategy everywhere.
//
// -run-log streams one JSONL record per run (ordered by run index,
// byte-identical at any -workers/-partitions), -progress reports live
// campaign progress on stderr, and -exemplars DIR replays the exact runs
// behind the tail table's p50/p99/p999 with span tracing and writes
// Perfetto-loadable traces plus critical-path summaries into DIR.
package main

import (
	"flag"
	"fmt"
	"os"

	"flashfc"
	"flashfc/internal/cliflags"
	"flashfc/internal/stats"
)

func main() {
	table := flag.String("table", "5.3", "table to regenerate: 5.3, 5.4, tail, or routing")
	legacy := flag.Bool("legacy-bug", false, "reenable the paper's incoherent-line OS bugs (5.4)")
	full := flag.Bool("full", false, "paper-scale run counts (200/type for 5.3; ~300/type for 5.4)")
	cf := cliflags.Register(flag.CommandLine, cliflags.Defaults{Runs: 0})
	flag.Parse()
	cf.WarnTraceIgnored()
	cf.CheckRouting()

	switch *table {
	case "5.3":
		if cf.Runs == 0 {
			cf.Runs = 20
			if *full {
				cf.Runs = 200
			}
		}
		table53(cf)
	case "5.4":
		if cf.Runs == 0 {
			cf.Runs = 10
			if *full {
				cf.Runs = 300
			}
		}
		table54(cf, *legacy)
	case "tail":
		if cf.Runs == 0 {
			cf.Runs = 50
			if *full {
				cf.Runs = flashfc.DefaultTailRuns
			}
		}
		tableTail(cf)
	case "routing":
		if cf.Runs == 0 {
			cf.Runs = 25
			if *full {
				cf.Runs = flashfc.DefaultRoutingConfig().Runs
			}
		}
		tableRouting(cf)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
}

func table53(cf *cliflags.Flags) {
	fmt.Printf("Table 5.3 — validation experiments (%d runs per fault type)\n\n", cf.Runs)
	fmt.Printf("%-38s %12s %12s\n", "Injected fault type", "# of exp.", "# failed")
	vcfg := flashfc.DefaultValidationConfig()
	vcfg.Routing = cf.Routing
	names := map[flashfc.FaultType]string{
		flashfc.NodeFailure:   "Node failure",
		flashfc.RouterFailure: "Router failure",
		flashfc.LinkFailure:   "Link failure",
		flashfc.InfiniteLoop:  "Infinite loop in MAGIC handler",
		flashfc.FalseAlarm:    "Recovery triggered by false alarm",
	}
	bad := 0
	var total flashfc.CampaignStats
	var snaps []*flashfc.MetricsSnapshot
	sink, finish := cf.Sinks()
	ccfg := cf.Config()
	ccfg.Observe = sink
	for _, ft := range flashfc.AllFaultTypes() {
		out := flashfc.RunCampaign(ccfg, flashfc.ValidationCampaign{Config: vcfg, Fault: ft})
		failed := 0
		for _, r := range out.Runs {
			if r.Err != nil || !r.Value.OK() {
				failed++
			}
		}
		fmt.Printf("%-38s %12d %12d\n", names[ft], len(out.Runs), failed)
		bad += failed
		total.Merge(out.Stats)
		snaps = append(snaps, out.Metrics)
	}
	cliflags.FinishSinks(finish)
	fmt.Printf("\npaper: 200 runs per type, 0 failures; this run: %d total failures\n", bad)
	fmt.Printf("throughput: %v\n", total)
	emitCampaignMetrics(snaps, cf.Metrics)
	if bad > 0 {
		os.Exit(1)
	}
}

// tableTail runs the containment-time tail campaign over the degradation
// fault classes and renders the percentile table.
func tableTail(cf *cliflags.Flags) {
	fmt.Printf("Containment-time tail — degradation fault classes (%d runs per scenario)\n\n", cf.Runs)
	cfg := flashfc.DefaultTailConfig()
	cfg.Routing = cf.Routing
	cfg.Runs = cf.Runs
	cfg.Workers = cf.Workers
	cfg.Partitions = cf.Partitions
	cfg.RegionLinkExtra = flashfc.Time(cf.RegionExtra)
	if !cf.WarmStart {
		cfg.WarmStart = flashfc.WarmStartOff
	}
	sink, finish := cf.Sinks()
	cfg.Observe = sink
	res := flashfc.RunTailCampaign(cfg, cf.Seed)
	cliflags.FinishSinks(finish)
	t := stats.NewTable("Fault scenario", "runs", "failed", "p50", "p99", "p999", "affected")
	bad := 0
	interp := false
	for _, sc := range res.Scenarios {
		p999 := sc.P999.String()
		if !sc.TailOK {
			p999 += " *"
			interp = true
		}
		t.AddRow(sc.Fault.String(), fmt.Sprint(sc.Runs), fmt.Sprint(sc.Failed),
			sc.P50.String(), sc.P99.String(), p999,
			fmt.Sprintf("%.1f%% of machine", 100*sc.Affected.Mean))
		bad += sc.Failed
	}
	fmt.Print(t)
	if interp {
		fmt.Println("\n* p999 interpolated, not supported by a real observation; rerun with -full")
	}
	fmt.Printf("\nthroughput: %v\n", res.Stats)
	if cf.Exemplars != "" {
		writeExemplars(cf, cfg, res)
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// writeExemplars replays the exact runs behind each scenario's percentiles
// with span tracing (bit-identical by the determinism contract) and writes
// Perfetto-loadable trace files plus critical-path summaries into the
// -exemplars directory. A traced containment time that differs from the
// campaign's recorded observation means the replay contract is broken —
// that is a hard failure, not a warning.
func writeExemplars(cf *cliflags.Flags, cfg flashfc.TailConfig, res *flashfc.TailResult) {
	fmt.Printf("\nexemplars (replayed with tracing into %s):\n", cf.Exemplars)
	mismatch := false
	for _, e := range flashfc.ReplayTailExemplars(cfg, cf.Seed, res) {
		fmt.Printf("  %v\n", e)
		if err := flashfc.WriteExemplar(cf.Exemplars, flashfc.ExemplarTraceOf(e)); err != nil {
			fmt.Fprintf(os.Stderr, "exemplars: %v\n", err)
			os.Exit(1)
		}
		if !e.Match() {
			mismatch = true
		}
	}
	if mismatch {
		fmt.Fprintln(os.Stderr, "exemplars: traced containment time diverged from the campaign observation — determinism contract broken")
		os.Exit(1)
	}
}

// emitCampaignMetrics prints the merged metric registry of a whole table
// (the per-fault-type campaign aggregates, merged again across types).
func emitCampaignMetrics(snaps []*flashfc.MetricsSnapshot, show bool) {
	if !show {
		return
	}
	fmt.Println("\nmetrics (campaign aggregate):")
	flashfc.MergeMetrics(snaps).WriteTable(os.Stdout)
}

// tableRouting runs the head-to-head strategy campaign: every registered
// routing strategy replays the identical fault sequences per scenario, so
// rows within a scenario are directly comparable.
func tableRouting(cf *cliflags.Flags) {
	fmt.Printf("Routing strategies head-to-head (%d runs per scenario per strategy)\n\n", cf.Runs)
	cfg := flashfc.DefaultRoutingConfig()
	cfg.Routing = "" // strategies come from the campaign's own sweep
	cfg.Runs = cf.Runs
	cfg.Workers = cf.Workers
	cfg.Partitions = cf.Partitions
	cfg.RegionLinkExtra = flashfc.Time(cf.RegionExtra)
	if !cf.WarmStart {
		cfg.WarmStart = flashfc.WarmStartOff
	}
	res := flashfc.RunRoutingCampaign(cfg, cf.Seed)
	bad, cyclic := 0, 0
	for _, sc := range res.Scenarios {
		fmt.Printf("scenario: %s\n", sc.Spec.Name)
		t := stats.NewTable("Strategy", "runs", "failed", "deadlock", "rec p50", "rec p99", "P3 p50", "lost", "thr p50")
		for _, c := range sc.Cells {
			dl := "none"
			if c.Deadlocks > 0 {
				dl = fmt.Sprintf("%d CYCLIC", c.Deadlocks)
			}
			t.AddRow(c.Strategy, fmt.Sprint(c.Runs), fmt.Sprint(c.Failed), dl,
				c.RecoveryP50.String(), c.RecoveryP99.String(), c.P3P50.String(),
				fmt.Sprintf("%.1f", c.LostMean),
				fmt.Sprintf("%.0f lines/ms", c.ThroughputP50))
			bad += c.Failed
			cyclic += c.Deadlocks
		}
		fmt.Print(t)
		fmt.Println()
	}
	fmt.Printf("throughput: %v\n", res.Stats)
	if cyclic > 0 {
		fmt.Fprintf(os.Stderr, "routing: %d runs installed cyclic tables (deadlock possible)\n", cyclic)
		os.Exit(1)
	}
	if bad > 0 {
		os.Exit(1)
	}
}

func table54(cf *cliflags.Flags, legacy bool) {
	mode := "fixed OS"
	if legacy {
		mode = "legacy OS bugs reenabled"
	}
	fmt.Printf("Table 5.4 — end-to-end recovery experiments (%d runs per fault type, %s)\n\n", cf.Runs, mode)
	fmt.Printf("%-38s %12s %12s\n", "Injected fault type", "# of exp.", "# failed")
	ecfg := flashfc.DefaultEndToEndConfig()
	ecfg.LegacyIncoherentBug = legacy
	ecfg.Routing = cf.Routing
	types := []flashfc.FaultType{
		flashfc.NodeFailure, flashfc.RouterFailure, flashfc.LinkFailure, flashfc.InfiniteLoop,
	}
	names := map[flashfc.FaultType]string{
		flashfc.NodeFailure:   "Node failure",
		flashfc.RouterFailure: "Router failure",
		flashfc.LinkFailure:   "Link failure",
		flashfc.InfiniteLoop:  "Infinite loop in MAGIC handler",
	}
	total, failed := 0, 0
	var stats flashfc.CampaignStats
	var snaps []*flashfc.MetricsSnapshot
	sink, finish := cf.Sinks()
	ccfg := cf.Config()
	ccfg.Observe = sink
	for _, ft := range types {
		out := flashfc.RunCampaign(ccfg, flashfc.EndToEndCampaign{Config: ecfg, Fault: ft})
		bad := 0
		for _, r := range out.Runs {
			if r.Err != nil || !r.Value.OK() {
				bad++
			}
		}
		fmt.Printf("%-38s %12d %12d\n", names[ft], len(out.Runs), bad)
		total += len(out.Runs)
		failed += bad
		stats.Merge(out.Stats)
		snaps = append(snaps, out.Metrics)
	}
	cliflags.FinishSinks(finish)
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(total-failed) / float64(total)
	}
	fmt.Printf("%-38s %12d %12d\n", "Total", total, failed)
	fmt.Printf("\n%.1f%% of runs correctly finished the compiles not affected by the fault\n", pct)
	fmt.Println("paper: 1187 runs, 99 failed (91.6% success), all failures caused by OS bugs")
	fmt.Printf("throughput: %v\n", stats)
	emitCampaignMetrics(snaps, cf.Metrics)
}
