// Command flashsim runs one interactive fault-injection experiment on a
// simulated FLASH machine and reports what happened.
//
//	flashsim -nodes 16 -fault node
//	flashsim -nodes 8 -fault loop -mem 1048576 -l2 1048576 -trace
//	flashsim -nodes 16 -fault powerloss        (§4.1 compound fault)
//	flashsim -nodes 16 -fault cablecut
//	flashsim -nodes 16 -fault transient-link   (degradation classes: healing
//	flashsim -nodes 16 -fault fail-slow         link, slow MAGIC engine,
//	flashsim -nodes 16 -fault cpu-fail          CPU dies but memory survives)
//	flashsim -fault router -runs 100 -parallel 8   (multi-seed campaign)
//	flashsim -fault link -routing incremental      (alternate recovery routing)
//	flashsim -nodes 4 -fault node -metrics-json | jq .counters
//	flashsim -nodes 4 -fault node -trace-json trace.json   (Perfetto spans)
//	flashsim -nodes 4 -fault node -trace-critical          (latency budget)
//
// The run fills the caches with the §5.2 validation workload, injects the
// fault mid-fill, executes the recovery algorithm, verifies all of memory
// against the oracle, and prints the per-phase breakdown. With -runs N
// (N > 1) flashsim instead runs a campaign of N independent experiments
// with seeds derived from -seed, fanned out over -parallel workers
// (0 = one per CPU), and reports pass/fail counts plus simulated-event
// throughput. Campaigns stream per-run JSONL records with -run-log and a
// live stderr progress line with -progress; -trace applies to single runs,
// and -run-seed <i> traces exactly campaign run i (same derived seed and
// warm fork as run i of the -runs N campaign):
//
//	flashsim -fault fail-slow -runs 1000 -run-log runs.jsonl -progress
//	flashsim -fault fail-slow -runs 1000 -run-seed 837 -trace-critical
//
// -metrics prints the machine-wide metric registry after the run (merged
// across runs in campaign mode, plus per-run distributions). -metrics-json
// emits the same snapshot as stable-key JSON alone on stdout — the human
// report moves to stderr — so the output pipes into jq and is byte-identical
// for a fixed seed regardless of -parallel.
//
// -trace-json writes the recovery's span tree (per-node phases, gossip
// rounds, drain/τ agreement, flush and scan chunks) plus packet and MAGIC
// point events as Chrome trace-event JSON, loadable at ui.perfetto.dev;
// the bytes are deterministic for a fixed seed regardless of -parallel.
// -trace-critical prints the recovery's critical path: the span chain that
// explains the latency, with per-step self-times summing exactly to the
// recovery duration and the dominant step named. Like -trace, both apply
// to single runs only and are ignored (with a warning) in campaign mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flashfc"
	"flashfc/internal/cliflags"
)

// hout is where the human-readable report goes: stdout normally, stderr
// under -metrics-json so that stdout carries only the JSON snapshot.
var hout io.Writer = os.Stdout

// stopProfiles flushes any -cpuprofile/-memprofile output; exit routes
// every termination through it so profiles survive error paths too.
var stopProfiles = func() {}

func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

func main() {
	nodes := flag.Int("nodes", 8, "number of nodes")
	topo := flag.String("topo", "mesh", "topology: mesh or hypercube")
	faultName := flag.String("fault", "node",
		"fault: node, router, link, loop, false-alarm, transient-link, fail-slow, cpu-fail, powerloss, cablecut, boundary-link, none")
	mem := flag.Uint64("mem", 256<<10, "memory bytes per node")
	l2 := flag.Uint64("l2", 64<<10, "L2 cache bytes")
	fill := flag.Int("fill", 192, "cache-fill lines per node")
	stride := flag.Int("stride", 1, "verification stride (1 = every line)")
	cf := cliflags.Register(flag.CommandLine, cliflags.Defaults{Runs: 1})
	flag.Parse()
	stopProfiles = cf.StartProfiles()
	defer stopProfiles()

	if cf.MetricsJSON {
		hout = os.Stderr
	}

	cf.WarnOversubscribed()
	cf.CheckRouting()
	cfg := flashfc.DefaultValidationConfig()
	cfg.Routing = cf.Routing
	cfg.Nodes = *nodes
	cfg.MemBytes = *mem
	cfg.L2Bytes = *l2
	cfg.FillLines = *fill
	cfg.Stride = *stride
	cfg.Partitions = cf.Partitions
	cfg.RegionLinkExtra = flashfc.Time(cf.RegionExtra)
	var tracer *flashfc.Tracer
	if cf.WantTrace() {
		if cf.Runs > 1 && cf.RunSeed < 0 {
			// Multi-run campaigns interleave timelines into nonsense:
			// point at the campaign-scale alternatives (-run-log,
			// -exemplars, -run-seed) instead of silently dropping the
			// flags.
			cf.WarnTraceIgnored()
		} else if cf.RunSeed < 0 {
			tracer = flashfc.NewTracer(0)
			cfg.Trace = tracer
		}
	}
	topts := traceOpts{tracer: tracer, dump: cf.Trace, jsonPath: cf.TraceJSON, critical: cf.TraceCritical}

	if *topo == "hypercube" {
		fmt.Fprintln(os.Stderr, "note: -topo hypercube applies to scaling runs; validation uses a mesh")
	}
	switch *faultName {
	case "powerloss", "cablecut":
		runCompound(cfg, *faultName, cf.Seed, topts, cf.Metrics, cf.MetricsJSON)
		return
	case "none", "boundary-link":
		runPartition(cfg, *faultName, *fill, cf, topts)
		return
	}
	var ft flashfc.FaultType
	switch *faultName {
	case "node":
		ft = flashfc.NodeFailure
	case "router":
		ft = flashfc.RouterFailure
	case "link":
		ft = flashfc.LinkFailure
	case "loop":
		ft = flashfc.InfiniteLoop
	case "false-alarm":
		ft = flashfc.FalseAlarm
	case "transient-link":
		ft = flashfc.TransientLink
	case "fail-slow":
		ft = flashfc.FailSlow
	case "cpu-fail":
		ft = flashfc.CPUFail
	default:
		fmt.Fprintf(os.Stderr, "unknown fault %q\n", *faultName)
		exit(2)
	}

	if cf.RunSeed >= 0 {
		runReplay(cfg, ft, *faultName, cf, topts)
		return
	}
	if cf.Runs > 1 {
		runCampaign(cfg, ft, *faultName, cf)
		return
	}

	r := flashfc.RunValidation(cfg, ft, cf.Seed)
	if tracer != nil && cf.Trace {
		fmt.Fprintln(hout, "timeline:")
		tracer.Dump(hout)
		fmt.Fprintln(hout)
	}
	fmt.Fprintf(hout, "fault:      %v\n", r.Fault)
	fmt.Fprintf(hout, "recovered:  %v\n", r.Recovered)
	if r.Recovered {
		p := r.Phases
		fmt.Fprintf(hout, "phases:     P1=%v  P1,2=%v  P1,2,3=%v  total=%v\n", p.P1, p.P12, p.P123, p.Total)
		fmt.Fprintf(hout, "            flush=%v  directory sweep=%v  gossip rounds=%d\n", p.WB, p.Scan, p.MaxRounds)
		fmt.Fprintf(hout, "verify:     %v\n", r.Verify)
	}
	emitTrace(topts)
	emitMetrics(r.Metrics, cf.Metrics, cf.MetricsJSON)
	if r.OK() {
		fmt.Fprintln(hout, "result:     PASS — fault contained, no data anomalies")
		return
	}
	fmt.Fprintf(hout, "result:     FAIL — %s\n", r.Note)
	exit(1)
}

// traceOpts bundles the trace output configuration for one run.
type traceOpts struct {
	tracer   *flashfc.Tracer
	dump     bool   // -trace: human timeline
	jsonPath string // -trace-json: Chrome trace-event file
	critical bool   // -trace-critical: critical-path report
}

// emitTrace writes the structured trace outputs: the Chrome trace-event
// JSON file and/or the critical-path report on the human stream.
func emitTrace(o traceOpts) {
	if o.tracer == nil {
		return
	}
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-json: %v\n", err)
			exit(1)
		}
		werr := o.tracer.WriteChromeJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "trace-json: %v\n", werr)
			exit(1)
		}
		fmt.Fprintf(hout, "trace:      wrote %s (open at https://ui.perfetto.dev or chrome://tracing)\n", o.jsonPath)
	}
	if o.critical {
		o.tracer.WriteCriticalReport(hout)
	}
}

// emitMetrics prints the snapshot per the output flags: a sorted table on
// the human stream for -metrics, stable-key JSON alone on stdout for
// -metrics-json.
func emitMetrics(snap *flashfc.MetricsSnapshot, table, asJSON bool) {
	if snap == nil {
		return
	}
	if table {
		fmt.Fprintln(hout, "metrics:")
		snap.WriteTable(hout)
	}
	if asJSON {
		if err := snap.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
			exit(1)
		}
	}
}

// runReplay traces exactly one run of the -runs N campaign: the same
// derived seed and the same warm fork the campaign executes for run i, so
// the traced run IS campaign run i — containment time, verify outcome and
// all — not a fresh lookalike.
func runReplay(cfg flashfc.ValidationConfig, ft flashfc.FaultType, name string, cf *cliflags.Flags, topts traceOpts) {
	e := flashfc.ReplayValidationRun(cfg, ft, cf.Seed, cf.RunSeed)
	topts.tracer = e.Trace
	r := e.Result
	fmt.Fprintf(hout, "replay:     %s campaign run %d (base seed %d, derived seed %d)\n",
		name, e.Run, cf.Seed, e.Seed)
	if cf.Trace {
		fmt.Fprintln(hout, "timeline:")
		e.Trace.Dump(hout)
		fmt.Fprintln(hout)
	}
	fmt.Fprintf(hout, "fault:      %v\n", r.Fault)
	fmt.Fprintf(hout, "recovered:  %v\n", r.Recovered)
	if r.Recovered {
		p := r.Phases
		fmt.Fprintf(hout, "phases:     P1=%v  P1,2=%v  P1,2,3=%v  total=%v\n", p.P1, p.P12, p.P123, p.Total)
		fmt.Fprintf(hout, "verify:     %v\n", r.Verify)
	}
	emitTrace(topts)
	emitMetrics(r.Metrics, cf.Metrics, cf.MetricsJSON)
	if r.OK() {
		fmt.Fprintln(hout, "result:     PASS — fault contained, no data anomalies")
		return
	}
	fmt.Fprintf(hout, "result:     FAIL — %s\n", r.Note)
	exit(1)
}

// runCampaign fans the validation experiments out over the configured
// worker pool via the Campaign API and reports the campaign verdict.
func runCampaign(cfg flashfc.ValidationConfig, ft flashfc.FaultType, name string, cf *cliflags.Flags) {
	fmt.Fprintf(hout, "campaign: %d %s-fault runs, base seed %d\n", cf.Runs, name, cf.Seed)
	sink, finish := cf.Sinks()
	ccfg := cf.Config()
	ccfg.Observe = sink
	out := flashfc.RunCampaign(ccfg, flashfc.ValidationCampaign{Config: cfg, Fault: ft})
	if err := finish(); err != nil {
		fmt.Fprintf(os.Stderr, "run-log: %v\n", err)
		exit(1)
	}
	failed := 0
	var snaps []*flashfc.MetricsSnapshot
	for i, r := range out.Runs {
		switch {
		case r.Err != nil:
			failed++
			fmt.Fprintf(hout, "run %4d: CRASH — %v\n", i, r.Err)
		case !r.Value.OK():
			failed++
			fmt.Fprintf(hout, "run %4d: FAIL — %s (fault %v)\n", i, r.Value.Note, r.Value.Fault)
		}
		if r.Err == nil {
			snaps = append(snaps, r.Value.Metrics)
		}
	}
	if cf.Metrics {
		fmt.Fprintln(hout, "metrics (campaign aggregate):")
		out.Metrics.WriteTable(hout)
		fmt.Fprintln(hout, "metrics (per-run distributions):")
		flashfc.WriteMetricsSummary(hout, flashfc.SummarizeMetrics(snaps))
	}
	if cf.MetricsJSON {
		if err := out.Metrics.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
			exit(1)
		}
	}
	fmt.Fprintf(hout, "throughput: %v\n", out.Stats)
	if failed > 0 {
		fmt.Fprintf(hout, "result:     FAIL — %d/%d runs failed\n", failed, cf.Runs)
		exit(1)
	}
	fmt.Fprintf(hout, "result:     PASS — all %d faults contained, no data anomalies\n", cf.Runs)
}

// runPartition runs the partitioned-simulation scenarios: -fault none is
// the fault-free fill (the scenario the PR6 speedup benchmark times), and
// -fault boundary-link fails an inter-region link mid-fill and recovers
// across the cut. Both honor -partitions (0 = sequential engine) and are
// bit-identical at any partition count.
func runPartition(vcfg flashfc.ValidationConfig, kind string, fill int, cf *cliflags.Flags, topts traceOpts) {
	if cf.Runs > 1 {
		fmt.Fprintln(os.Stderr, "warning: -fault none/boundary-link run single scenarios; -runs ignored")
	}
	cfg := flashfc.DefaultPartitionConfig()
	cfg.Nodes = vcfg.Nodes
	cfg.MemBytes = vcfg.MemBytes
	cfg.L2Bytes = vcfg.L2Bytes
	cfg.OpsPerNode = fill
	cfg.Partitions = cf.Partitions
	cfg.RegionLinkExtra = vcfg.RegionLinkExtra
	cfg.Trace = topts.tracer

	if kind == "boundary-link" {
		r := flashfc.RunPartitionBoundaryFault(cfg, cf.Seed)
		fmt.Fprintf(hout, "fault:      %v (inter-region boundary link)\n", r.Fault)
		fmt.Fprintf(hout, "recovered:  %v\n", r.Recovered)
		if r.Recovered {
			p := r.Phases
			fmt.Fprintf(hout, "phases:     P1=%v  P1,2=%v  P1,2,3=%v  total=%v\n", p.P1, p.P12, p.P123, p.Total)
			fmt.Fprintf(hout, "verify:     %v\n", r.Verify)
		}
		emitTrace(topts)
		emitMetrics(r.Metrics, cf.Metrics, cf.MetricsJSON)
		if r.OK() {
			fmt.Fprintln(hout, "result:     PASS — boundary fault contained across the region cut")
			return
		}
		fmt.Fprintf(hout, "result:     FAIL — %s\n", r.Note)
		exit(1)
	}

	r := flashfc.RunPartitionFill(cfg, cf.Seed)
	fmt.Fprintf(hout, "scenario:   %d-node fill, %d regions, %d partition workers\n",
		cfg.Nodes, r.Regions, cfg.Partitions)
	fmt.Fprintf(hout, "workload:   %d/%d accesses completed at t=%v\n", r.Completed, r.Total, r.Now)
	fmt.Fprintf(hout, "engine:     %d events, %d barriers, %d cross-region merges\n",
		r.Events, r.Barriers, r.Merged)
	emitTrace(topts)
	emitMetrics(r.Metrics, cf.Metrics, cf.MetricsJSON)
	if r.OK() {
		fmt.Fprintln(hout, "result:     PASS — fill completed")
		return
	}
	fmt.Fprintf(hout, "result:     FAIL — %s\n", r.Note)
	exit(1)
}

// runCompound injects a §4.1 compound fault (power-supply loss of two
// adjacent nodes, or a cable cut between the first two mesh columns) and
// reports the recovery outcome.
func runCompound(cfg flashfc.ValidationConfig, kind string, seed int64, topts traceOpts, showMetrics, metricsJSON bool) {
	mc := flashfc.DefaultMachineConfig(cfg.Nodes)
	mc.Seed = seed
	mc.MemBytes = cfg.MemBytes
	mc.L2Bytes = cfg.L2Bytes
	mc.Routing = cfg.Routing
	mc.Trace = topts.tracer
	m := flashfc.NewMachine(mc)
	var fs []flashfc.Fault
	switch kind {
	case "powerloss":
		a := cfg.Nodes / 2
		fs = flashfc.PowerLoss(m, []int{a, a + 1})
	case "cablecut":
		fs = flashfc.CableCut(m, 0)
	}
	fmt.Fprintf(hout, "injecting %d-part compound fault: %v\n", len(fs), fs)
	m.E.At(flashfc.Millisecond, func() { m.InjectAll(fs) })
	m.E.At(flashfc.Millisecond+10*flashfc.Microsecond, func() {
		m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, cfg.Nodes/2))
		if cfg.Nodes > 1 {
			m.Nodes[1].CPU.Submit(flashfc.TouchOp(m, 0))
		}
	})
	ok := m.RunUntilRecovered(10 * flashfc.Second)
	if topts.tracer != nil && topts.dump {
		fmt.Fprintln(hout, "timeline:")
		topts.tracer.Dump(hout)
	}
	fmt.Fprintln(hout, "recovered:", ok)
	emitTrace(topts)
	if !ok {
		emitMetrics(m.MetricsSnapshot(), showMetrics, metricsJSON)
		exit(1)
	}
	pt := m.Aggregate()
	fmt.Fprintf(hout, "phases:     P1=%v  P1,2=%v  P1,2,3=%v  total=%v\n", pt.P1, pt.P12, pt.P123, pt.Total)
	fmt.Fprintf(hout, "survivors:  %d participants, %d restarts\n", pt.Participants, pt.Restarts)
	// Verify from the main surviving component (a partition may have
	// shut down the island containing node 0).
	reader := m.Survivors()[0]
	res := m.VerifyMemory(reader, cfg.Stride)
	fmt.Fprintf(hout, "verify:     %v\n", res)
	emitMetrics(m.MetricsSnapshot(), showMetrics, metricsJSON)
	if !res.OK() {
		fmt.Fprintln(hout, "result:     FAIL")
		exit(1)
	}
	fmt.Fprintln(hout, "result:     PASS — compound fault contained")
}
