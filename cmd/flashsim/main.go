// Command flashsim runs one interactive fault-injection experiment on a
// simulated FLASH machine and reports what happened.
//
//	flashsim -nodes 16 -fault node
//	flashsim -nodes 8 -fault loop -mem 1048576 -l2 1048576 -trace
//	flashsim -nodes 16 -fault powerloss        (§4.1 compound fault)
//	flashsim -nodes 16 -fault cablecut
//	flashsim -fault router -runs 100 -parallel 8   (multi-seed campaign)
//
// The run fills the caches with the §5.2 validation workload, injects the
// fault mid-fill, executes the recovery algorithm, verifies all of memory
// against the oracle, and prints the per-phase breakdown. With -runs N
// (N > 1) flashsim instead runs a campaign of N independent experiments
// with seeds derived from -seed, fanned out over -parallel workers
// (0 = one per CPU), and reports pass/fail counts plus simulated-event
// throughput; -trace applies to single runs only.
package main

import (
	"flag"
	"fmt"
	"os"

	"flashfc"
)

func main() {
	nodes := flag.Int("nodes", 8, "number of nodes")
	topo := flag.String("topo", "mesh", "topology: mesh or hypercube")
	faultName := flag.String("fault", "node",
		"fault: node, router, link, loop, false-alarm, powerloss, cablecut")
	mem := flag.Uint64("mem", 256<<10, "memory bytes per node")
	l2 := flag.Uint64("l2", 64<<10, "L2 cache bytes")
	seed := flag.Int64("seed", 1, "random seed")
	fill := flag.Int("fill", 192, "cache-fill lines per node")
	stride := flag.Int("stride", 1, "verification stride (1 = every line)")
	doTrace := flag.Bool("trace", false, "print the recovery event timeline (single runs)")
	runs := flag.Int("runs", 1, "number of independent experiments (campaign mode when > 1)")
	parallel := flag.Int("parallel", 0, "campaign worker goroutines (0 = one per CPU)")
	flag.Parse()

	cfg := flashfc.DefaultValidationConfig()
	cfg.Nodes = *nodes
	cfg.MemBytes = *mem
	cfg.L2Bytes = *l2
	cfg.FillLines = *fill
	cfg.Stride = *stride
	var tracer *flashfc.Tracer
	if *doTrace {
		tracer = flashfc.NewTracer(0)
		cfg.Trace = tracer
	}

	if *topo == "hypercube" {
		fmt.Fprintln(os.Stderr, "note: -topo hypercube applies to scaling runs; validation uses a mesh")
	}
	switch *faultName {
	case "powerloss", "cablecut":
		runCompound(cfg, *faultName, *seed, tracer)
		return
	}
	var ft flashfc.FaultType
	switch *faultName {
	case "node":
		ft = flashfc.NodeFailure
	case "router":
		ft = flashfc.RouterFailure
	case "link":
		ft = flashfc.LinkFailure
	case "loop":
		ft = flashfc.InfiniteLoop
	case "false-alarm":
		ft = flashfc.FalseAlarm
	default:
		fmt.Fprintf(os.Stderr, "unknown fault %q\n", *faultName)
		os.Exit(2)
	}

	if *runs > 1 {
		cfg.Workers = *parallel
		runCampaign(cfg, ft, *faultName, *runs, *seed)
		return
	}

	r := flashfc.RunValidation(cfg, ft, *seed)
	if tracer != nil {
		fmt.Println("timeline:")
		tracer.Dump(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("fault:      %v\n", r.Fault)
	fmt.Printf("recovered:  %v\n", r.Recovered)
	if r.Recovered {
		p := r.Phases
		fmt.Printf("phases:     P1=%v  P1,2=%v  P1,2,3=%v  total=%v\n", p.P1, p.P12, p.P123, p.Total)
		fmt.Printf("            flush=%v  directory sweep=%v  gossip rounds=%d\n", p.WB, p.Scan, p.MaxRounds)
		fmt.Printf("verify:     %v\n", r.Verify)
	}
	if r.OK() {
		fmt.Println("result:     PASS — fault contained, no data anomalies")
		return
	}
	fmt.Printf("result:     FAIL — %s\n", r.Note)
	os.Exit(1)
}

// runCampaign fans `runs` independent validation experiments out over the
// configured worker pool and reports the campaign verdict.
func runCampaign(cfg flashfc.ValidationConfig, ft flashfc.FaultType, name string, runs int, seed int64) {
	fmt.Printf("campaign: %d %s-fault runs, base seed %d\n", runs, name, seed)
	results, stats := flashfc.RunValidationBatch(cfg, ft, runs, seed)
	failed := 0
	for i, r := range results {
		switch {
		case r.Err != nil:
			failed++
			fmt.Printf("run %4d: CRASH — %v\n", i, r.Err)
		case !r.Value.OK():
			failed++
			fmt.Printf("run %4d: FAIL — %s (fault %v)\n", i, r.Value.Note, r.Value.Fault)
		}
	}
	fmt.Printf("throughput: %v\n", stats)
	if failed > 0 {
		fmt.Printf("result:     FAIL — %d/%d runs failed\n", failed, runs)
		os.Exit(1)
	}
	fmt.Printf("result:     PASS — all %d faults contained, no data anomalies\n", runs)
}

// runCompound injects a §4.1 compound fault (power-supply loss of two
// adjacent nodes, or a cable cut between the first two mesh columns) and
// reports the recovery outcome.
func runCompound(cfg flashfc.ValidationConfig, kind string, seed int64, tracer *flashfc.Tracer) {
	mc := flashfc.DefaultMachineConfig(cfg.Nodes)
	mc.Seed = seed
	mc.MemBytes = cfg.MemBytes
	mc.L2Bytes = cfg.L2Bytes
	mc.Trace = tracer
	m := flashfc.NewMachine(mc)
	var fs []flashfc.Fault
	switch kind {
	case "powerloss":
		a := cfg.Nodes / 2
		fs = flashfc.PowerLoss([]int{a, a + 1})
	case "cablecut":
		fs = flashfc.CableCut(m, 0)
	}
	fmt.Printf("injecting %d-part compound fault: %v\n", len(fs), fs)
	m.E.At(flashfc.Millisecond, func() { m.InjectAll(fs) })
	m.E.At(flashfc.Millisecond+10*flashfc.Microsecond, func() {
		m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, cfg.Nodes/2))
		if cfg.Nodes > 1 {
			m.Nodes[1].CPU.Submit(flashfc.TouchOp(m, 0))
		}
	})
	ok := m.RunUntilRecovered(10 * flashfc.Second)
	if tracer != nil {
		fmt.Println("timeline:")
		tracer.Dump(os.Stdout)
	}
	fmt.Println("recovered:", ok)
	if !ok {
		os.Exit(1)
	}
	pt := m.Aggregate()
	fmt.Printf("phases:     P1=%v  P1,2=%v  P1,2,3=%v  total=%v\n", pt.P1, pt.P12, pt.P123, pt.Total)
	fmt.Printf("survivors:  %d participants, %d restarts\n", pt.Participants, pt.Restarts)
	// Verify from the main surviving component (a partition may have
	// shut down the island containing node 0).
	reader := m.Survivors()[0]
	res := m.VerifyMemory(reader, cfg.Stride)
	fmt.Printf("verify:     %v\n", res)
	if !res.OK() {
		fmt.Println("result:     FAIL")
		os.Exit(1)
	}
	fmt.Println("result:     PASS — compound fault contained")
}
