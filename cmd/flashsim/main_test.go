package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// The tests re-exec the test binary with FLASHSIM_MAIN=1 so that main()
// runs exactly as the installed command would, letting us assert on the
// real stdout/stderr split and on files it writes.
func TestMain(m *testing.M) {
	if os.Getenv("FLASHSIM_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runFlashsim runs main() in a child process with the given flags.
func runFlashsim(t *testing.T, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "FLASHSIM_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("flashsim %v: %v\nstdout:\n%s\nstderr:\n%s", args, err, out.String(), errb.String())
	}
	return out.String(), errb.String()
}

var fastArgs = []string{"-nodes", "4", "-fault", "node", "-mem", "65536", "-l2", "16384", "-fill", "32"}

// With -metrics-json, stdout must stay JSON-only even when -trace is also
// set: the human timeline goes to stderr with the rest of the report.
func TestStdoutJSONOnlyWithTraceAndMetricsJSON(t *testing.T) {
	stdout, stderr := runFlashsim(t, append(fastArgs, "-trace", "-metrics-json")...)
	var snap map[string]any
	if err := json.Unmarshal([]byte(stdout), &snap); err != nil {
		t.Fatalf("stdout is not a single JSON object: %v\nstdout:\n%s", err, stdout)
	}
	if _, ok := snap["counters"]; !ok {
		t.Errorf("stdout JSON lacks a counters key: %v", snap)
	}
	if !bytes.Contains([]byte(stderr), []byte("timeline:")) {
		t.Errorf("human timeline not found on stderr:\n%s", stderr)
	}
}

// -trace-json must produce a valid Chrome trace-event array whose bytes do
// not depend on the -parallel flag.
func TestTraceJSONValidAndIdenticalAcrossParallel(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "p1.json")
	f8 := filepath.Join(dir, "p8.json")
	runFlashsim(t, append(fastArgs, "-trace-json", f1, "-parallel", "1")...)
	runFlashsim(t, append(fastArgs, "-trace-json", f8, "-parallel", "8")...)
	b1, err := os.ReadFile(f1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := os.ReadFile(f8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatal("trace JSON differs between -parallel 1 and -parallel 8")
	}
	var evs []map[string]any
	if err := json.Unmarshal(b1, &evs); err != nil {
		t.Fatalf("trace file is not a JSON array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("trace array is empty")
	}
	for i, ev := range evs {
		for _, key := range []string{"ph", "ts", "pid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
	}
}

// -trace-critical prints a report naming the dominant step with self-times
// summing to the recovery duration.
func TestTraceCriticalReport(t *testing.T) {
	stdout, _ := runFlashsim(t, append(fastArgs, "-trace-critical")...)
	for _, want := range []string{"critical path", "dominant:", "self-time sum"} {
		if !bytes.Contains([]byte(stdout), []byte(want)) {
			t.Errorf("critical report missing %q:\n%s", want, stdout)
		}
	}
}

// -run-log must stream one JSONL record per run, ordered by run index, with
// bytes independent of -parallel; and -run-seed must replay exactly the run
// a record describes — same derived seed, traceable on its own.
func TestRunLogAndRunSeedReplay(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "p1.jsonl")
	f8 := filepath.Join(dir, "p8.jsonl")
	campaign := append(fastArgs, "-runs", "5")
	runFlashsim(t, append(campaign, "-run-log", f1, "-parallel", "1")...)
	runFlashsim(t, append(campaign, "-run-log", f8, "-parallel", "8")...)
	b1, err := os.ReadFile(f1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := os.ReadFile(f8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatal("run log differs between -parallel 1 and -parallel 8")
	}
	lines := bytes.Split(bytes.TrimSuffix(b1, []byte("\n")), []byte("\n"))
	if len(lines) != 5 {
		t.Fatalf("got %d records, want 5", len(lines))
	}
	type record struct {
		Run           int    `json:"run"`
		Seed          int64  `json:"seed"`
		Outcome       string `json:"outcome"`
		ContainmentNS int64  `json:"containment_ns"`
		WallNS        int64  `json:"wall_ns"`
	}
	var recs []record
	for i, line := range lines {
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("record %d: %v\n%s", i, err, line)
		}
		if r.Run != i {
			t.Fatalf("record %d has run index %d: not ordered", i, r.Run)
		}
		if r.Outcome != "pass" {
			t.Errorf("record %d: outcome %q", i, r.Outcome)
		}
		if r.WallNS != 0 {
			t.Errorf("record %d: wall_ns %d not stripped", i, r.WallNS)
		}
		recs = append(recs, r)
	}
	// Replay record 3: the replay banner must name the record's derived
	// seed, and the traced run must pass.
	stdout, _ := runFlashsim(t, append(campaign, "-run-seed", "3")...)
	want := fmt.Sprintf("derived seed %d", recs[3].Seed)
	if !bytes.Contains([]byte(stdout), []byte(want)) {
		t.Errorf("replay of run 3 does not report %q:\n%s", want, stdout)
	}
	if !bytes.Contains([]byte(stdout), []byte("PASS")) {
		t.Errorf("replay did not PASS:\n%s", stdout)
	}
}

// -run-seed with -trace-json writes a trace of exactly the replayed run.
func TestRunSeedTraceJSON(t *testing.T) {
	dir := t.TempDir()
	tf := filepath.Join(dir, "run2.json")
	runFlashsim(t, append(fastArgs, "-runs", "5", "-run-seed", "2", "-trace-json", tf)...)
	b, err := os.ReadFile(tf)
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(b, &evs); err != nil {
		t.Fatalf("trace file is not a JSON array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("trace array is empty")
	}
}

// -progress writes to stderr only; the run-log warning path for trace flags
// points at the campaign-scale alternatives.
func TestProgressOnStderrAndTraceWarning(t *testing.T) {
	stdout, stderr := runFlashsim(t, append(fastArgs, "-runs", "4", "-progress", "-trace")...)
	if !bytes.Contains([]byte(stderr), []byte("progress:")) {
		t.Errorf("no progress lines on stderr:\n%s", stderr)
	}
	if bytes.Contains([]byte(stdout), []byte("progress:")) {
		t.Error("progress leaked onto stdout")
	}
	for _, want := range []string{"-run-log", "-exemplars", "-run-seed"} {
		if !bytes.Contains([]byte(stderr), []byte(want)) {
			t.Errorf("trace warning does not mention %s:\n%s", want, stderr)
		}
	}
}
