package flashfc

import (
	"time"

	"flashfc/internal/experiments"
	"flashfc/internal/obs"
	"flashfc/internal/runner"
)

// Campaign API: one typed entry point for every experiment family.
//
// The experiment suite grew one positional-argument function per driver
// (RunFig55(nodes, topo, seed, workers), RunTable53(cfg, runs, seed), …),
// each spelling seed/worker/metrics plumbing slightly differently. The
// Campaign API splits those concerns: CampaignConfig carries the execution
// envelope (seed, run count, parallelism, metrics, tracing) shared by every
// campaign, a per-experiment struct carries only what that experiment
// actually varies, and RunCampaign composes the two. The old positional
// wrappers are gone; this is the batch entry point.
//
//	out := flashfc.RunCampaign(
//	    flashfc.CampaignConfig{Seed: 1, Runs: 200, Metrics: true},
//	    flashfc.ValidationCampaign{Config: flashfc.DefaultValidationConfig(), Fault: flashfc.NodeFailure},
//	)
//	for _, r := range out.Runs { … }
//	fmt.Println(out.Stats)

// CampaignConfig is the execution envelope of one campaign: everything
// about how runs execute, nothing about what they simulate.
type CampaignConfig struct {
	// Seed is the campaign's base seed. Experiments with a non-negative
	// Stream derive every run's engine seed as DeriveSeed(Seed, stream, i);
	// sweep experiments with a negative Stream receive Seed directly and
	// derive internally (their run index is a sweep coordinate, not a
	// repetition).
	Seed int64
	// Runs is the number of runs for experiments that repeat (Points() ==
	// 0). Fixed sweeps (Fig 5.5's node counts, …) ignore it.
	Runs int
	// Workers bounds the goroutines the campaign may use; 0 means one per
	// CPU. Any worker count yields bit-identical results.
	Workers int
	// Metrics, when set, merges every non-crashed run's machine-wide
	// metric snapshot (in run order) into CampaignResult.Metrics.
	Metrics bool
	// Trace, when non-nil, collects the run's event timeline. It applies
	// only to single-run campaigns: interleaving many runs' simulated
	// timelines into one trace produces nonsense, so multi-run campaigns
	// ignore it.
	Trace *Tracer
	// WarmStart controls warm-up amortization for experiments that support
	// it (those implementing WarmExperiment, e.g. ValidationCampaign). The
	// default (Auto) shares one warmed machine snapshot per worker and
	// forks every run from it; Off rebuilds the warm state privately for
	// every run. Both modes execute the identical per-run computation, so
	// results are bit-identical — Off is the cross-check and the cost
	// baseline. Experiments without warm support ignore it.
	WarmStart WarmStartMode
	// Observe, when non-nil, receives the campaign's observability stream:
	// one Batch announcement, then one RunRecord per run in completion
	// order (sinks needing index order reorder internally — RunLog does).
	// RunCampaign never calls Finish; the sink's owner does, after its
	// last campaign.
	Observe Sink
}

// RunEnv is the per-run environment RunCampaign hands an Experiment.
type RunEnv struct {
	// Trace is the campaign tracer; non-nil only for single-run campaigns
	// whose CampaignConfig carried one.
	Trace *Tracer
}

// Experiment is one experiment family producing a T per run. Implementations
// are small config structs (ValidationCampaign, Fig55Campaign, …); custom
// experiments only need these three methods.
type Experiment[T any] interface {
	// Stream is the campaign's seed-derivation stream. Non-negative
	// streams give run i the engine seed DeriveSeed(base, Stream(), i);
	// a negative stream passes the base seed through unchanged (sweeps
	// that derive their own per-point seeds).
	Stream() int
	// Points is the fixed number of runs of a sweep, or 0 for experiments
	// that repeat CampaignConfig.Runs times.
	Points() int
	// Run performs run i with the derived seed.
	Run(env RunEnv, i int, seed int64) T
}

// WarmExperiment is an Experiment whose runs can fork a shared, immutable
// warm state (a machine snapshot) instead of warming up from scratch.
// RunCampaign uses it automatically: with warm-start on (the default),
// Warmup runs once per worker and RunWarm replaces Run; with warm-start
// off, every run builds a private warm state and forks it — the identical
// computation, so both modes (and the legacy Run path they replace) stay
// deterministic per (seed, i).
//
// Warmup must be deterministic in cfg alone, and RunWarm must treat ws as
// read-only (fork, never mutate) — that is what keeps any worker count and
// both modes bit-identical.
type WarmExperiment[T any] interface {
	Experiment[T]
	// Warmup builds the shared warm state for one worker.
	Warmup(cfg CampaignConfig) any
	// RunWarm performs run i from the warm state ws.
	RunWarm(env RunEnv, ws any, i int, seed int64) T
}

// CampaignRun is one run of a campaign: the produced value plus host-side
// accounting.
type CampaignRun[T any] struct {
	// Value is the run's result (the zero T when Err is non-nil).
	Value T
	// Err is non-nil when the run panicked; the campaign keeps going.
	Err error
	// Wall is the host wall-clock time the run took.
	Wall time.Duration
	// Events is the run's simulated-event count (0 if the experiment
	// does not report one).
	Events uint64
}

// CampaignResult is everything one campaign produced.
type CampaignResult[T any] struct {
	// Runs holds the per-run results in run order, independent of worker
	// scheduling.
	Runs []CampaignRun[T]
	// Stats is the campaign's host-side accounting.
	Stats CampaignStats
	// Metrics is the campaign aggregate of every non-crashed run's metric
	// snapshot, merged in run order; nil unless CampaignConfig.Metrics
	// was set.
	Metrics *MetricsSnapshot
}

// Values returns the runs' values in run order, re-raising the first
// captured panic — the convenience accessor for campaigns whose runs are
// not expected to crash.
func (r CampaignResult[T]) Values() []T {
	out := make([]T, len(r.Runs))
	for i, run := range r.Runs {
		if run.Err != nil {
			panic(run.Err.(*runner.PanicError).Value)
		}
		out[i] = run.Value
	}
	return out
}

// RunCampaign executes exp under cfg: Points() (or cfg.Runs) independent
// runs on up to cfg.Workers goroutines, with per-run seeds derived from
// (cfg.Seed, exp.Stream(), i). Results are bit-identical for any worker
// count; a run that panics becomes a failed CampaignRun instead of
// aborting the campaign.
func RunCampaign[T any](cfg CampaignConfig, exp Experiment[T]) CampaignResult[T] {
	n := exp.Points()
	if n == 0 {
		n = cfg.Runs
	}
	env := RunEnv{}
	if n == 1 {
		env.Trace = cfg.Trace
	}
	stream := exp.Stream()
	seedFor := func(i int) int64 {
		if stream >= 0 {
			return runner.DeriveSeed(cfg.Seed, stream, i)
		}
		return cfg.Seed
	}
	var setup func() any
	run := func(i int, _ any, rec *runner.Recorder) T {
		v := exp.Run(env, i, seedFor(i))
		rec.Report(eventsOf(v))
		return v
	}
	if warm, ok := exp.(WarmExperiment[T]); ok {
		if cfg.WarmStart.Enabled() {
			setup = func() any { return warm.Warmup(cfg) }
			run = func(i int, ws any, rec *runner.Recorder) T {
				v := warm.RunWarm(env, ws, i, seedFor(i))
				rec.Report(eventsOf(v))
				return v
			}
		} else {
			run = func(i int, _ any, rec *runner.Recorder) T {
				v := warm.RunWarm(env, warm.Warmup(cfg), i, seedFor(i))
				rec.Report(eventsOf(v))
				return v
			}
		}
	}
	var observe func(i int, r runner.Result[T])
	if cfg.Observe != nil {
		cfg.Observe.StartBatch(batchOf(exp, n))
		observe = func(i int, r runner.Result[T]) {
			cfg.Observe.RunDone(campaignRecord(i, seedFor(i), r))
		}
	}
	results, stats := runner.CampaignWithSetup(n, cfg.Workers, setup, run, observe)
	out := CampaignResult[T]{Stats: stats, Runs: make([]CampaignRun[T], len(results))}
	var snaps []*MetricsSnapshot
	for i, r := range results {
		out.Runs[i] = CampaignRun[T]{Value: r.Value, Err: r.Err, Wall: r.Wall, Events: r.Events}
		if cfg.Metrics && r.Err == nil {
			if s := snapshotOf(r.Value); s != nil {
				snaps = append(snaps, s)
			}
		}
	}
	if cfg.Metrics {
		out.Metrics = MergeMetrics(snaps)
	}
	return out
}

// batchOf names the batch a campaign announces to its observability sink.
func batchOf(exp any, n int) obs.Batch {
	switch e := exp.(type) {
	case ValidationCampaign:
		return obs.Batch{Label: "validation", Fault: e.Fault.String(), Runs: n}
	case EndToEndCampaign:
		return obs.Batch{Label: "end-to-end", Fault: e.Fault.String(), Runs: n}
	case Fig55Campaign:
		return obs.Batch{Label: "fig5.5", Runs: n}
	case Fig56L2Campaign:
		return obs.Batch{Label: "fig5.6-l2", Runs: n}
	case Fig56MemCampaign:
		return obs.Batch{Label: "fig5.6-mem", Runs: n}
	case Fig57Campaign:
		return obs.Batch{Label: "fig5.7", Runs: n}
	case DistributionCampaign:
		return obs.Batch{Label: "dist", Runs: n}
	default:
		return obs.Batch{Label: "campaign", Runs: n}
	}
}

// campaignRecord reduces one campaign run to its observability record,
// extracting the outcome fields the known result types carry.
func campaignRecord[T any](i int, seed int64, r runner.Result[T]) obs.RunRecord {
	rec := obs.RunRecord{
		Run:    i,
		Seed:   seed,
		Events: r.Events,
		WallNS: r.Wall.Nanoseconds(),
		Worker: r.Worker,
	}
	if r.Err != nil {
		rec.Outcome = obs.OutcomePanic
		rec.Note = r.Err.Error()
		return rec
	}
	switch v := any(r.Value).(type) {
	case *ValidationResult:
		return experiments.RunRecordOf(i, seed, runner.Result[*ValidationResult]{
			Value: v, Wall: r.Wall, Events: r.Events, Worker: r.Worker,
		})
	case *EndToEndResult:
		rec.Fault = v.Fault.String()
		rec.ContainmentNS = int64(v.HW + v.OS)
		if v.OK() {
			rec.Outcome = obs.OutcomePass
		} else {
			rec.Outcome = obs.OutcomeFail
			rec.Note = v.Note
		}
	case ScalingPoint:
		rec.ContainmentNS = int64(v.Phases.Total)
		if v.OK {
			rec.Outcome = obs.OutcomePass
		} else {
			rec.Outcome = obs.OutcomeFail
		}
	case Fig57Point:
		rec.ContainmentNS = int64(v.HWOS)
		if v.OK {
			rec.Outcome = obs.OutcomePass
		} else {
			rec.Outcome = obs.OutcomeFail
		}
	default:
		rec.Outcome = obs.OutcomePass
	}
	return rec
}

// eventsOf extracts the simulated-event count the known result types carry.
func eventsOf(v any) uint64 {
	switch r := v.(type) {
	case *ValidationResult:
		if r != nil {
			return r.Events
		}
	case *EndToEndResult:
		if r != nil {
			return r.Events
		}
	case ScalingPoint:
		return r.Events
	}
	return 0
}

// snapshotOf extracts the metric snapshot the known result types carry.
func snapshotOf(v any) *MetricsSnapshot {
	switch r := v.(type) {
	case *ValidationResult:
		if r != nil {
			return r.Metrics
		}
	case *EndToEndResult:
		if r != nil {
			return r.Metrics
		}
	case ScalingPoint:
		return r.Metrics
	}
	return nil
}

// --- Per-experiment config structs ---------------------------------------

// ValidationCampaign repeats §5.2 validation runs of one fault type
// (Table 5.3's per-type batches). Each run fills caches, injects the fault
// mid-fill, recovers, and verifies all of memory against the oracle.
type ValidationCampaign struct {
	// Config shapes the runs; use DefaultValidationConfig() as the base.
	// Its Workers and Trace fields are superseded by the CampaignConfig.
	Config ValidationConfig
	Fault  FaultType
}

func (c ValidationCampaign) Stream() int { return runner.StreamValidation + int(c.Fault) }
func (c ValidationCampaign) Points() int { return 0 }
func (c ValidationCampaign) Run(env RunEnv, _ int, seed int64) *ValidationResult {
	cfg := c.Config
	cfg.Trace = env.Trace
	return experiments.Validation(cfg, c.Fault, seed)
}

// Warmup implements WarmExperiment: one cache-fill warm-up, keyed on the
// campaign seed via StreamWarmup, frozen into a forkable snapshot.
func (c ValidationCampaign) Warmup(cfg CampaignConfig) any {
	vcfg := c.Config
	vcfg.Trace = nil
	return experiments.WarmupValidation(vcfg, runner.DeriveSeed(cfg.Seed, runner.StreamWarmup, 0))
}

// RunWarm implements WarmExperiment: fork the warm snapshot and run the
// fault/recovery/verify sequence with the run's derived seed.
func (c ValidationCampaign) RunWarm(env RunEnv, ws any, _ int, seed int64) *ValidationResult {
	return experiments.ValidationFromWarm(ws.(*experiments.WarmState), c.Fault, seed, env.Trace)
}

// EndToEndCampaign repeats §5.1 Hive parallel-make runs of one fault type
// (Table 5.4's per-type batches).
type EndToEndCampaign struct {
	// Config shapes the runs; use DefaultEndToEndConfig() as the base.
	// Its Workers field is superseded by the CampaignConfig.
	Config EndToEndConfig
	Fault  FaultType
}

func (c EndToEndCampaign) Stream() int { return runner.StreamEndToEnd + int(c.Fault) }
func (c EndToEndCampaign) Points() int { return 0 }
func (c EndToEndCampaign) Run(_ RunEnv, _ int, seed int64) *EndToEndResult {
	return experiments.EndToEnd(c.Config, c.Fault, seed)
}

// Fig55Campaign sweeps machine sizes and measures total hardware recovery
// time per size (Fig 5.5). Every point uses the campaign's base seed, as in
// the paper's single-curve presentation.
type Fig55Campaign struct {
	Nodes []int
	Topo  TopoKind
	// Routing optionally names the recovery routing strategy ("" = paper).
	Routing string
}

func (c Fig55Campaign) Stream() int { return -1 }
func (c Fig55Campaign) Points() int { return len(c.Nodes) }
func (c Fig55Campaign) Run(_ RunEnv, i int, seed int64) ScalingPoint {
	cfg := experiments.DefaultScalingConfig(c.Nodes[i])
	cfg.Topo = c.Topo
	cfg.Seed = seed
	cfg.Routing = c.Routing
	return experiments.MeasureRecovery(cfg)
}

// Fig56L2Campaign sweeps the second-level cache size at 4 nodes (Fig 5.6
// left): the flush component of coherence recovery scales with the L2.
type Fig56L2Campaign struct {
	L2Sizes []uint64
	// Routing optionally names the recovery routing strategy ("" = paper).
	Routing string
}

func (c Fig56L2Campaign) Stream() int { return -1 }
func (c Fig56L2Campaign) Points() int { return len(c.L2Sizes) }
func (c Fig56L2Campaign) Run(_ RunEnv, i int, seed int64) ScalingPoint {
	cfg := experiments.DefaultScalingConfig(4)
	cfg.L2Bytes = c.L2Sizes[i]
	cfg.MemBytes = 4 << 20
	cfg.Seed = seed
	cfg.Routing = c.Routing
	p := experiments.MeasureRecovery(cfg)
	p.X = float64(c.L2Sizes[i]) / (1 << 20)
	return p
}

// Fig56MemCampaign sweeps the per-node memory size at 4 nodes (Fig 5.6
// right): the directory-sweep component scales with memory.
type Fig56MemCampaign struct {
	MemSizes []uint64
	// Routing optionally names the recovery routing strategy ("" = paper).
	Routing string
}

func (c Fig56MemCampaign) Stream() int { return -1 }
func (c Fig56MemCampaign) Points() int { return len(c.MemSizes) }
func (c Fig56MemCampaign) Run(_ RunEnv, i int, seed int64) ScalingPoint {
	cfg := experiments.DefaultScalingConfig(4)
	cfg.MemBytes = c.MemSizes[i]
	cfg.Seed = seed
	cfg.Routing = c.Routing
	p := experiments.MeasureRecovery(cfg)
	p.X = float64(c.MemSizes[i]) / (1 << 20)
	return p
}

// Fig57Campaign sweeps machine sizes (one Hive cell per node) and measures
// user-process suspension after a node failure (Fig 5.7). Per-point seeds
// derive from the node count, so adding sizes never reshuffles existing
// points.
type Fig57Campaign struct {
	Nodes    []int
	MemBytes uint64
	L2Bytes  uint64
}

func (c Fig57Campaign) Stream() int { return -1 }
func (c Fig57Campaign) Points() int { return len(c.Nodes) }
func (c Fig57Campaign) Run(_ RunEnv, i int, seed int64) Fig57Point {
	return experiments.Fig57One(c.Nodes[i], c.MemBytes, c.L2Bytes, seed)
}

// DistributionCampaign repeats node-failure recoveries across derived
// seeds — and, when Config.Victim is -1, across fault placements — to
// quantify how tight the paper's single representative numbers are.
// Summarize the outcome with SummarizeRecovery.
type DistributionCampaign struct {
	// Config shapes the runs; use DefaultScalingConfig(n) as the base.
	// Its Workers field is superseded by the CampaignConfig.
	Config ScalingConfig
}

func (c DistributionCampaign) Stream() int { return runner.StreamDistribution }
func (c DistributionCampaign) Points() int { return 0 }
func (c DistributionCampaign) Run(_ RunEnv, _ int, seed int64) ScalingPoint {
	run := c.Config
	run.Seed = seed
	if run.Victim < 0 && run.Nodes > 1 {
		run.Victim = 1 + int(uint64(seed)%uint64(run.Nodes-1))
	}
	return experiments.MeasureRecovery(run)
}

// SummarizeRecovery folds a DistributionCampaign's outcome into per-phase
// recovery-time distributions.
func SummarizeRecovery(nodes int, out CampaignResult[ScalingPoint]) RecoveryDistribution {
	return experiments.SummarizeDistribution(nodes, toRunnerResults(out.Runs), out.Stats)
}

// toRunnerResults converts campaign runs back to the runner's result form —
// the bridge the deprecated batch wrappers return through.
func toRunnerResults[T any](runs []CampaignRun[T]) []runner.Result[T] {
	out := make([]runner.Result[T], len(runs))
	for i, r := range runs {
		out[i] = runner.Result[T]{Value: r.Value, Err: r.Err, Wall: r.Wall, Events: r.Events}
	}
	return out
}
