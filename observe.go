package flashfc

import (
	"io"

	"flashfc/internal/experiments"
	"flashfc/internal/obs"
)

// Campaign observability (internal/obs): per-run record streams, live
// progress reporting, and tail-exemplar trace replay. Attach a Sink via
// CampaignConfig.Observe or ValidationConfig.Observe/TailConfig.Observe;
// the campaign announces each batch and emits one RunRecord per run in
// completion order, and the sink's owner calls Finish after the last
// batch.
type (
	// RunRecord is one campaign run reduced to a flat, serializable record:
	// run index, derived seed, fault, outcome, containment time, events,
	// and (optionally) host accounting.
	RunRecord = obs.RunRecord
	// Batch announces one campaign batch to a Sink.
	Batch = obs.Batch
	// Sink consumes a campaign's observability stream.
	Sink = obs.Sink
	// RunLog writes records as JSONL ordered by run index regardless of
	// worker scheduling — byte-identical at any -parallel or -partitions.
	RunLog = obs.RunLog
	// Progress is a rate-limited live campaign reporter for stderr.
	Progress = obs.Progress
	// ExemplarTrace is one replayed percentile exemplar ready to render as
	// a Perfetto-loadable trace plus a critical-path summary.
	ExemplarTrace = obs.ExemplarTrace
	// TailExemplar names the campaign run supporting one tail percentile.
	TailExemplar = experiments.TailExemplar
	// ExemplarReplay is one tail exemplar re-run with span tracing; its
	// traced containment time equals the campaign's recorded observation
	// exactly (the determinism contract, enforced by Match).
	ExemplarReplay = experiments.ExemplarReplay
)

// Run outcomes.
const (
	OutcomePass  = obs.OutcomePass
	OutcomeFail  = obs.OutcomeFail
	OutcomePanic = obs.OutcomePanic
)

// NewRunLog returns a RunLog writing JSONL to w. host keeps the host-side
// fields (wall time, worker id) instead of zeroing them — real values at
// the price of byte-identity across worker counts.
func NewRunLog(w io.Writer, host bool) *RunLog { return obs.NewRunLog(w, host) }

// NewProgress returns a Progress reporting to w (normally os.Stderr) at
// the default interval.
func NewProgress(w io.Writer) *Progress { return obs.NewProgress(w) }

// MultiSink fans one observability stream out to several sinks (nil sinks
// are skipped).
func MultiSink(sinks ...Sink) Sink { return obs.Multi(sinks...) }

// ReplayTailExemplars replays every percentile exemplar of a finished tail
// campaign with span tracing: the same warm fork and derived seeds the
// campaign used, so each replay reproduces its observation bit-exactly.
func ReplayTailExemplars(cfg TailConfig, seed int64, res *TailResult) []ExemplarReplay {
	return experiments.ReplayTailExemplars(cfg, seed, res)
}

// ReplayValidationRun replays run i of a validation campaign (the batches
// behind flashsim -runs N and Table 5.3) with tracing — the flashsim
// -run-seed path: same warm fork, same derived seed, so the traced run is
// campaign run i.
func ReplayValidationRun(cfg ValidationConfig, ft FaultType, seed int64, i int) ExemplarReplay {
	return experiments.ReplayValidationRun(cfg, ft, seed, i)
}

// ReplayTailRun replays run i of a tail campaign's per-fault batch with
// tracing (StreamTail seeds).
func ReplayTailRun(cfg TailConfig, ft FaultType, seed int64, i int) ExemplarReplay {
	return experiments.ReplayTailRun(cfg, ft, seed, i)
}

// WriteExemplar renders one replayed exemplar into dir: <name>.trace.json
// (Chrome trace events, Perfetto-loadable) and <name>.json (run identity,
// campaign-vs-traced containment match, critical-path summary naming the
// dominant recovery phase). Both files are byte-deterministic.
func WriteExemplar(dir string, e ExemplarTrace) error { return obs.WriteExemplar(dir, e) }

// ExemplarName builds the conventional exemplar file stem ("fail-slow-p999").
func ExemplarName(fault string, pct float64) string { return obs.ExemplarName(fault, pct) }

// ExemplarTraceOf packages a replay for WriteExemplar.
func ExemplarTraceOf(e ExemplarReplay) ExemplarTrace {
	return ExemplarTrace{
		Name:       obs.ExemplarName(e.Fault.String(), e.Pct),
		Fault:      e.Fault.String(),
		Pct:        e.Pct,
		Run:        e.Run,
		Seed:       e.Seed,
		CampaignNS: int64(e.CampaignTime),
		TracedNS:   int64(e.TracedTime),
		Tracer:     e.Trace,
	}
}
