package flashfc_test

// The PR 9 benchmark suite: the routing-strategy head-to-head behind
// BENCH_PR9.json. The Paper/Adaptive pair runs the identical single-link
// head-to-head scenario restricted to one strategy each — the run seeds
// never involve the strategy, so both replay byte-identical faults and
// the only difference is the recovery discipline: the paper strategy's
// full drain + whole-table up*/down* rebuild vs the adaptive strategy's
// drain-free region avoidance. The recorded simulated recovery time of
// each (sim-recovery-ns/op: the campaign's median containment time)
// feeds the adaptive_vs_paper_recovery ratio in BENCH_PR9.json; the
// acceptance bar requires adaptive to recover strictly faster than the
// paper baseline (ratio < 1) with zero deadlocks and zero failures.

import (
	"testing"

	"flashfc"
)

func benchPR9Routing(b *testing.B, strategy string) {
	b.Helper()
	cfg := flashfc.DefaultRoutingConfig()
	cfg.BurstLines = 16
	cfg.Stride = 32
	cfg.Runs = 8
	cfg.Workers = 1
	cfg.Strategies = []string{strategy}
	cfg.Scenarios = []flashfc.RoutingScenarioSpec{{Name: "single-link", Links: 1}}
	var events, recovery float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := flashfc.RunRoutingCampaign(cfg, 11)
		for _, sc := range r.Scenarios {
			for _, c := range sc.Cells {
				if c.Failed != 0 || c.Deadlocks != 0 {
					b.Fatalf("%s/%s: failed=%d deadlocks=%d",
						sc.Spec.Name, c.Strategy, c.Failed, c.Deadlocks)
				}
				recovery += float64(c.RecoveryP50)
			}
		}
		events += float64(r.Stats.Events)
	}
	b.StopTimer()
	b.ReportMetric(recovery/float64(b.N), "sim-recovery-ns/op")
	b.ReportMetric(events/float64(b.N), "sim-events/op")
	b.ReportMetric(events/b.Elapsed().Seconds(), "sim-events/s")
}

// BenchmarkPR9RoutingPaper / BenchmarkPR9RoutingAdaptive: the single-link
// head-to-head scenario under each strategy; identical faults, different
// recovery discipline.
func BenchmarkPR9RoutingPaper(b *testing.B)    { benchPR9Routing(b, "paper") }
func BenchmarkPR9RoutingAdaptive(b *testing.B) { benchPR9Routing(b, "adaptive") }
