package flashfc_test

// The PR 7 benchmark suite: degradation-fault tail-campaign numbers behind
// BENCH_PR7.json. The Warm/Cold pair runs the identical tail campaign —
// every degradation class (transient-link, fail-slow, CPU-fail/memory-
// survives) through warm-forked validation runs — with warm-start snapshot
// sharing on and off. Results are bit-identical, so ns_per_op(cold)/
// ns_per_op(warm) is exactly the amortization the tail campaign inherits
// from the snapshot/fork machinery: at 1000+ runs per scenario the warm-up
// would otherwise dominate the campaign's cost.
//
// Like the PR 5 pair, the campaign keeps the default warm-up (FillLines
// 192, the state a fork shares) and measures in campaign style — a short
// 16-line post-fork burst and a stride-32 sampled verification sweep — so
// the quantity being amortized is not swamped by per-run work both modes
// pay identically.

import (
	"testing"

	"flashfc"
)

func benchPR7Tail(b *testing.B, warm flashfc.WarmStartMode) {
	b.Helper()
	cfg := flashfc.DefaultTailConfig()
	cfg.BurstLines = 16
	cfg.Stride = 32
	cfg.Runs = 16
	cfg.Workers = 1
	cfg.WarmStart = warm
	var events float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := flashfc.RunTailCampaign(cfg, 11)
		for _, sc := range r.Scenarios {
			if sc.Failed != 0 {
				b.Fatalf("%v: %d/%d runs failed", sc.Fault, sc.Failed, sc.Runs)
			}
		}
		events += float64(r.Stats.Events)
	}
	b.StopTimer()
	b.ReportMetric(events/float64(b.N), "sim-events/op")
	b.ReportMetric(events/b.Elapsed().Seconds(), "sim-events/s")
}

// BenchmarkPR7TailWarm / BenchmarkPR7TailCold: the 3-scenario tail campaign
// with shared warm snapshots vs a private warm-up per run.
func BenchmarkPR7TailWarm(b *testing.B) { benchPR7Tail(b, flashfc.WarmStartOn) }
func BenchmarkPR7TailCold(b *testing.B) { benchPR7Tail(b, flashfc.WarmStartOff) }
