package flashfc_test

// The PR 6 benchmark suite: partitioned-vs-sequential numbers behind
// BENCH_PR6.json. Each Seq/Par pair runs the identical fill scenario — the
// 256-node and 1024-node meshes from the partitioned scaling scenario —
// once on the classic sequential engine (-partitions 0) and once on the
// partitioned engine with 4 region workers. The wall-clock ratio of a pair
// is the single-machine partitioned speedup bench.sh records. The speedup
// comes from two effects: region workers run windows concurrently (on
// hosts with free cores; GOMAXPROCS caps it), and each region's smaller
// event wheel and hotter working set make even one worker faster than one
// global scheduler at these machine sizes.

import (
	"testing"

	"flashfc"
)

func benchPR6Fill(b *testing.B, nodes, partitions int) {
	b.Helper()
	cfg := flashfc.DefaultPartitionConfig()
	cfg.Nodes = nodes
	cfg.Partitions = partitions
	var events float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := flashfc.RunPartitionFill(cfg, 7)
		if !r.OK() {
			b.Fatalf("fill incomplete: %s", r.Note)
		}
		events += float64(r.Events)
	}
	b.StopTimer()
	b.ReportMetric(events/float64(b.N), "sim-events/op")
	b.ReportMetric(events/b.Elapsed().Seconds(), "sim-events/s")
}

// BenchmarkPR6Seq256 / BenchmarkPR6Par256: the 256-node (16×16 mesh,
// 16 regions) fill on the sequential vs the 4-worker partitioned engine.
func BenchmarkPR6Seq256(b *testing.B) { benchPR6Fill(b, 256, 0) }
func BenchmarkPR6Par256(b *testing.B) { benchPR6Fill(b, 256, 4) }

// BenchmarkPR6Seq1024 / BenchmarkPR6Par1024: the headline 1024-node
// (32×32 mesh, 16 regions) scenario — the speedup bench.sh gates on.
func BenchmarkPR6Seq1024(b *testing.B) { benchPR6Fill(b, 1024, 0) }
func BenchmarkPR6Par1024(b *testing.B) { benchPR6Fill(b, 1024, 4) }
