#!/usr/bin/env bash
# bench.sh — refresh BENCH_PR4.json, BENCH_PR5.json, BENCH_PR6.json,
# BENCH_PR7.json, BENCH_PR8.json and BENCH_PR9.json, the repo's
# performance trajectory record.
#
# First runs the PR 4 campaign benchmarks (16-node and 8-node node-failure
# validation campaigns plus a Hive end-to-end campaign), keeps the best
# events/sec of each across repetitions, and emits BENCH_PR4.json with
# events/sec, allocs/event, and the speedup against the frozen pre-PR4
# heap-engine numbers in scripts/bench_baseline.json. Then runs the PR 5
# warm-start benchmarks and emits BENCH_PR5.json with the warm-vs-cold
# campaign speedup and the fork-vs-warmup cost ratio. Then runs the PR 6
# partitioned-engine benchmarks (the 256- and 1024-node fill scenario on the
# sequential vs the 4-worker partitioned engine) and emits BENCH_PR6.json
# with the single-machine partitioned speedup at each size. Finally runs the
# PR 7 tail-campaign benchmarks (the degradation-fault tail campaign with
# warm-start sharing on and off) and emits BENCH_PR7.json with the campaign's
# warm-vs-cold speedup. Finally runs the PR 8 observability pair (the same
# tail campaign bare vs streamed through RunLog+Progress into io.Discard)
# and emits BENCH_PR8.json with the per-run record-stream overhead. Last,
# the PR 9 routing pair replays the identical single-link fault scenario
# under the paper and the adaptive recovery-routing strategies and emits
# BENCH_PR9.json with the adaptive-vs-paper simulated-recovery-time ratio.
#
#   scripts/bench.sh                  # writes all files at the repo root
#   scripts/bench.sh pr4.json pr5.json pr6.json pr7.json pr8.json pr9.json
#   BENCH_TIME=5x BENCH_COUNT=5 scripts/bench.sh   # longer, steadier runs
#
# The acceptance bars recorded by the PRs: BenchmarkPR4Validation16 must show
# speedup_vs_baseline >= 1.5, warm_speedup_vs_cold and
# tail_warm_speedup_vs_cold must be >= 1.5,
# partitioned_speedup_1024 must be >= 1.5 on a host with 4+ free cores (the
# partitioned engine's parallel windows cannot beat 1.5x with GOMAXPROCS
# pinned to 1, so the PR6 bar is only enforced when host_cpus >= 4),
# observability_overhead must stay <= 1.05, and
# adaptive_vs_paper_recovery must be < 1 (simulated time, host-independent).
# Any bar missed exits 2 after all files are written. CI only validates the files'
# schemas (the shared runners are too noisy for a perf gate); refresh on
# quiet hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
benchtime="${BENCH_TIME:-3x}"
count="${BENCH_COUNT:-3}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

cmd=(go test -run '^$' -bench BenchmarkPR4 -benchmem -benchtime "$benchtime" -count "$count" .)
echo "running: ${cmd[*]}" >&2
"${cmd[@]}" | tee "$raw" >&2

# Reduce the raw `go test -bench` lines to one record per benchmark: the
# repetition with the highest sim-events/s, with allocs/event derived from
# -benchmem's allocs/op and the benchmark's reported sim-events/op.
summary="$(awk '
  /^BenchmarkPR4/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    evs = evop = allocs = 0
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "sim-events/s")  evs    = $i
      if ($(i + 1) == "sim-events/op") evop   = $i
      if ($(i + 1) == "allocs/op")     allocs = $i
    }
    if (evs > best[name]) {
      best[name] = evs
      line[name] = sprintf("{\"name\":\"%s\",\"events_per_sec\":%d,\"sim_events_per_op\":%d,\"allocs_per_op\":%d,\"allocs_per_event\":%.2f}",
                           name, evs, evop, allocs, evop ? allocs / evop : 0)
    }
  }
  END { for (n in line) print line[n] }
' "$raw")"

if [ -z "$summary" ]; then
  echo "bench.sh: no BenchmarkPR4 results parsed" >&2
  exit 1
fi

host="$(grep -m1 'model name' /proc/cpuinfo 2>/dev/null | sed 's/.*: //' || true)"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
git diff --quiet HEAD 2>/dev/null || commit="$commit-dirty"

jq -n \
  --arg engine "hierarchical timing wheel + pooled events (PR4)" \
  --arg commit "$commit" \
  --arg host "${host:-unknown}" \
  --arg command "${cmd[*]}" \
  --slurpfile base scripts/bench_baseline.json \
  --slurpfile runs <(echo "$summary") \
  '{
    engine: $engine,
    commit: $commit,
    host: $host,
    command: $command,
    baseline: $base[0].commit,
    benchmarks: ($runs | map({key: .name, value: {
      events_per_sec: .events_per_sec,
      sim_events_per_op: .sim_events_per_op,
      allocs_per_op: .allocs_per_op,
      allocs_per_event: .allocs_per_event,
      speedup_vs_baseline: (
        (.events_per_sec / $base[0].benchmarks[.name].events_per_sec * 100 | round) / 100
      )
    }}) | from_entries)
  }' > "$out"

echo "wrote $out" >&2
jq '{commit, benchmarks: (.benchmarks | map_values({events_per_sec, allocs_per_event, speedup_vs_baseline}))}' "$out" >&2

# Acceptance bars are reported as exit 2 after both files are written.
rc=0

# The PR 4 bar: >= 1.5x on the 16-node validation campaign.
jq -e '.benchmarks.BenchmarkPR4Validation16.speedup_vs_baseline >= 1.5' "$out" > /dev/null || {
  echo "bench.sh: WARNING — Validation16 speedup below the 1.5x acceptance bar" >&2
  rc=2
}

# --- PR 5: warm-start snapshot/fork numbers -> BENCH_PR5.json ---------------
#
# The Warm/Cold pair runs the identical campaign with warm-start sharing on
# and off (bit-identical results), so cold_ns/warm_ns is exactly the
# amortization gain; Fork16/Warmup16 price one fork against the warm-up it
# replaces. Acceptance: warm_speedup_vs_cold >= 1.5.
out5="${2:-BENCH_PR5.json}"
raw5="$(mktemp)"
trap 'rm -f "$raw" "$raw5"' EXIT

cmd5=(go test -run '^$' -bench BenchmarkPR5 -benchmem -benchtime "$benchtime" -count "$count" .)
echo "running: ${cmd5[*]}" >&2
"${cmd5[@]}" | tee "$raw5" >&2

# One record per benchmark: the repetition with the lowest ns/op.
summary5="$(awk '
  /^BenchmarkPR5/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = evs = evop = allocs = 0
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op")         ns     = $i
      if ($(i + 1) == "sim-events/s")  evs    = $i
      if ($(i + 1) == "sim-events/op") evop   = $i
      if ($(i + 1) == "allocs/op")     allocs = $i
    }
    if (!(name in best) || ns < best[name]) {
      best[name] = ns
      line[name] = sprintf("{\"name\":\"%s\",\"ns_per_op\":%d,\"events_per_sec\":%d,\"sim_events_per_op\":%d,\"allocs_per_op\":%d}",
                           name, ns, evs, evop, allocs)
    }
  }
  END { for (n in line) print line[n] }
' "$raw5")"

if [ -z "$summary5" ]; then
  echo "bench.sh: no BenchmarkPR5 results parsed" >&2
  exit 1
fi

jq -n \
  --arg engine "copy-on-write machine snapshot/fork warm-start (PR5)" \
  --arg commit "$commit" \
  --arg host "${host:-unknown}" \
  --arg command "${cmd5[*]}" \
  --slurpfile pr4 "$out" \
  --slurpfile runs5 <(echo "$summary5") \
  '($runs5 | map({key: .name, value: del(.name)}) | from_entries) as $b |
   {
    engine: $engine,
    commit: $commit,
    host: $host,
    command: $command,
    pr4_validation16_events_per_sec: $pr4[0].benchmarks.BenchmarkPR4Validation16.events_per_sec,
    benchmarks: $b,
    warm_speedup_vs_cold: (
      ($b.BenchmarkPR5ColdValidation16.ns_per_op / $b.BenchmarkPR5WarmValidation16.ns_per_op * 100 | round) / 100
    ),
    fork_vs_warmup_cost: (
      ($b.BenchmarkPR5Fork16.ns_per_op / $b.BenchmarkPR5Warmup16.ns_per_op * 1000 | round) / 1000
    )
  }' > "$out5"

echo "wrote $out5" >&2
jq '{commit, warm_speedup_vs_cold, fork_vs_warmup_cost}' "$out5" >&2

# The PR 5 bar: warm-start sharing >= 1.5x over per-run warm-up.
jq -e '.warm_speedup_vs_cold >= 1.5' "$out5" > /dev/null || {
  echo "bench.sh: WARNING — warm-start speedup below the 1.5x acceptance bar" >&2
  rc=2
}

# --- PR 6: partitioned-engine numbers -> BENCH_PR6.json ---------------------
#
# Each Seq/Par pair runs the identical fill scenario on the classic
# sequential engine and the 4-worker partitioned engine; results are
# bit-identical, so ns_per_op(seq)/ns_per_op(par) is exactly the
# single-machine partitioned speedup. host_cpus records the scheduler width
# the parallel windows had to work with — the 1024-node bar only means
# anything on a host with cores to spare.
out6="${3:-BENCH_PR6.json}"
raw6="$(mktemp)"
trap 'rm -f "$raw" "$raw5" "$raw6"' EXIT

cmd6=(go test -run '^$' -bench BenchmarkPR6 -benchmem -benchtime "$benchtime" -count "$count" .)
echo "running: ${cmd6[*]}" >&2
"${cmd6[@]}" | tee "$raw6" >&2

# One record per benchmark: the repetition with the lowest ns/op.
summary6="$(awk '
  /^BenchmarkPR6/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = evs = evop = allocs = 0
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op")         ns     = $i
      if ($(i + 1) == "sim-events/s")  evs    = $i
      if ($(i + 1) == "sim-events/op") evop   = $i
      if ($(i + 1) == "allocs/op")     allocs = $i
    }
    if (!(name in best) || ns < best[name]) {
      best[name] = ns
      line[name] = sprintf("{\"name\":\"%s\",\"ns_per_op\":%d,\"events_per_sec\":%d,\"sim_events_per_op\":%d,\"allocs_per_op\":%d}",
                           name, ns, evs, evop, allocs)
    }
  }
  END { for (n in line) print line[n] }
' "$raw6")"

if [ -z "$summary6" ]; then
  echo "bench.sh: no BenchmarkPR6 results parsed" >&2
  exit 1
fi

ncpu="$(nproc 2>/dev/null || echo 1)"

jq -n \
  --arg engine "partitioned region schedulers with conservative lookahead (PR6)" \
  --arg commit "$commit" \
  --arg host "${host:-unknown}" \
  --argjson cpus "${ncpu:-1}" \
  --arg command "${cmd6[*]}" \
  --slurpfile runs6 <(echo "$summary6") \
  '($runs6 | map({key: .name, value: del(.name)}) | from_entries) as $b |
   {
    engine: $engine,
    commit: $commit,
    host: $host,
    host_cpus: $cpus,
    command: $command,
    benchmarks: $b,
    partitioned_speedup_256: (
      ($b.BenchmarkPR6Seq256.ns_per_op / $b.BenchmarkPR6Par256.ns_per_op * 100 | round) / 100
    ),
    partitioned_speedup_1024: (
      ($b.BenchmarkPR6Seq1024.ns_per_op / $b.BenchmarkPR6Par1024.ns_per_op * 100 | round) / 100
    )
  }' > "$out6"

echo "wrote $out6" >&2
jq '{commit, host_cpus, partitioned_speedup_256, partitioned_speedup_1024}' "$out6" >&2

# The PR 6 bar: >= 1.5x partitioned speedup at 1024 nodes — on hosts wide
# enough for 4 region workers to actually run in parallel.
if [ "${ncpu:-1}" -ge 4 ]; then
  jq -e '.partitioned_speedup_1024 >= 1.5' "$out6" > /dev/null || {
    echo "bench.sh: WARNING — 1024-node partitioned speedup below the 1.5x acceptance bar" >&2
    rc=2
  }
else
  echo "bench.sh: note — host has ${ncpu:-1} scheduler slots; the PR6 1.5x bar needs 4+ (recorded, not enforced)" >&2
fi

# --- PR 7: degradation-fault tail-campaign numbers -> BENCH_PR7.json --------
#
# The Warm/Cold pair runs the identical tail campaign (every degradation
# class through warm-forked validation runs) with warm-start sharing on and
# off; results are bit-identical, so cold_ns/warm_ns is the amortization the
# tail campaign inherits from snapshot/fork. Acceptance:
# tail_warm_speedup_vs_cold >= 1.5.
out7="${4:-BENCH_PR7.json}"
raw7="$(mktemp)"
trap 'rm -f "$raw" "$raw5" "$raw6" "$raw7"' EXIT

cmd7=(go test -run '^$' -bench BenchmarkPR7 -benchmem -benchtime "$benchtime" -count "$count" .)
echo "running: ${cmd7[*]}" >&2
"${cmd7[@]}" | tee "$raw7" >&2

# One record per benchmark: the repetition with the lowest ns/op.
summary7="$(awk '
  /^BenchmarkPR7/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = evs = evop = allocs = 0
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op")         ns     = $i
      if ($(i + 1) == "sim-events/s")  evs    = $i
      if ($(i + 1) == "sim-events/op") evop   = $i
      if ($(i + 1) == "allocs/op")     allocs = $i
    }
    if (!(name in best) || ns < best[name]) {
      best[name] = ns
      line[name] = sprintf("{\"name\":\"%s\",\"ns_per_op\":%d,\"events_per_sec\":%d,\"sim_events_per_op\":%d,\"allocs_per_op\":%d}",
                           name, ns, evs, evop, allocs)
    }
  }
  END { for (n in line) print line[n] }
' "$raw7")"

if [ -z "$summary7" ]; then
  echo "bench.sh: no BenchmarkPR7 results parsed" >&2
  exit 1
fi

jq -n \
  --arg engine "degradation fault models + containment-time tail campaign (PR7)" \
  --arg commit "$commit" \
  --arg host "${host:-unknown}" \
  --arg command "${cmd7[*]}" \
  --slurpfile runs7 <(echo "$summary7") \
  '($runs7 | map({key: .name, value: del(.name)}) | from_entries) as $b |
   {
    engine: $engine,
    commit: $commit,
    host: $host,
    command: $command,
    benchmarks: $b,
    tail_warm_speedup_vs_cold: (
      ($b.BenchmarkPR7TailCold.ns_per_op / $b.BenchmarkPR7TailWarm.ns_per_op * 100 | round) / 100
    )
  }' > "$out7"

echo "wrote $out7" >&2
jq '{commit, tail_warm_speedup_vs_cold}' "$out7" >&2

# The PR 7 bar: warm-start sharing >= 1.5x on the tail campaign too.
jq -e '.tail_warm_speedup_vs_cold >= 1.5' "$out7" > /dev/null || {
  echo "bench.sh: WARNING — tail-campaign warm-start speedup below the 1.5x acceptance bar" >&2
  rc=2
}

# --- PR 8: observability overhead guard -> BENCH_PR8.json -------------------
#
# The Plain/Observed pair runs the identical tail campaign with no sink and
# with the full RunLog+Progress stack streaming to io.Discard; results are
# bit-identical, so ns_per_op(observed)/ns_per_op(plain) is exactly the
# per-run record-stream cost. Acceptance: observability_overhead <= 1.05
# (streaming every run's record must stay within a 5% slowdown).
out8="${5:-BENCH_PR8.json}"
raw8="$(mktemp)"
trap 'rm -f "$raw" "$raw5" "$raw6" "$raw7" "$raw8"' EXIT

cmd8=(go test -run '^$' -bench BenchmarkPR8 -benchmem -benchtime "$benchtime" -count "$count" .)
echo "running: ${cmd8[*]}" >&2
"${cmd8[@]}" | tee "$raw8" >&2

# One record per benchmark: the repetition with the lowest ns/op.
summary8="$(awk '
  /^BenchmarkPR8/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = evs = evop = allocs = 0
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op")         ns     = $i
      if ($(i + 1) == "sim-events/s")  evs    = $i
      if ($(i + 1) == "sim-events/op") evop   = $i
      if ($(i + 1) == "allocs/op")     allocs = $i
    }
    if (!(name in best) || ns < best[name]) {
      best[name] = ns
      line[name] = sprintf("{\"name\":\"%s\",\"ns_per_op\":%d,\"events_per_sec\":%d,\"sim_events_per_op\":%d,\"allocs_per_op\":%d}",
                           name, ns, evs, evop, allocs)
    }
  }
  END { for (n in line) print line[n] }
' "$raw8")"

if [ -z "$summary8" ]; then
  echo "bench.sh: no BenchmarkPR8 results parsed" >&2
  exit 1
fi

jq -n \
  --arg engine "campaign observability: run-record streams + live progress (PR8)" \
  --arg commit "$commit" \
  --arg host "${host:-unknown}" \
  --arg command "${cmd8[*]}" \
  --slurpfile runs8 <(echo "$summary8") \
  '($runs8 | map({key: .name, value: del(.name)}) | from_entries) as $b |
   {
    engine: $engine,
    commit: $commit,
    host: $host,
    command: $command,
    benchmarks: $b,
    observability_overhead: (
      ($b.BenchmarkPR8TailObserved.ns_per_op / $b.BenchmarkPR8TailPlain.ns_per_op * 1000 | round) / 1000
    )
  }' > "$out8"

echo "wrote $out8" >&2
jq '{commit, observability_overhead}' "$out8" >&2

# The PR 8 bar: streaming per-run records costs <= 5%.
jq -e '.observability_overhead <= 1.05' "$out8" > /dev/null || {
  echo "bench.sh: WARNING — observability overhead above the 1.05x acceptance bar" >&2
  rc=2
}

# --- PR 9: routing-strategy head-to-head -> BENCH_PR9.json ------------------
#
# The Paper/Adaptive pair replays the identical single-link head-to-head
# scenario under each recovery-routing strategy (the run seeds never involve
# the strategy, so the faults are byte-identical); each benchmark reports the
# campaign's median simulated containment time as sim-recovery-ns/op.
# adaptive_vs_paper_recovery is adaptive/paper — simulated time, so it is
# host-independent. Acceptance: < 1 (the drain-free fault-region-avoiding
# strategy must recover strictly faster than the paper's full-drain
# whole-table rebuild).
out9="${6:-BENCH_PR9.json}"
raw9="$(mktemp)"
trap 'rm -f "$raw" "$raw5" "$raw6" "$raw7" "$raw8" "$raw9"' EXIT

cmd9=(go test -run '^$' -bench BenchmarkPR9 -benchmem -benchtime "$benchtime" -count "$count" .)
echo "running: ${cmd9[*]}" >&2
"${cmd9[@]}" | tee "$raw9" >&2

# One record per benchmark: the repetition with the lowest ns/op. The
# simulated recovery time is deterministic across repetitions.
summary9="$(awk '
  /^BenchmarkPR9/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = evs = evop = allocs = rec = 0
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op")              ns     = $i
      if ($(i + 1) == "sim-events/s")       evs    = $i
      if ($(i + 1) == "sim-events/op")      evop   = $i
      if ($(i + 1) == "allocs/op")          allocs = $i
      if ($(i + 1) == "sim-recovery-ns/op") rec    = $i
    }
    if (!(name in best) || ns < best[name]) {
      best[name] = ns
      line[name] = sprintf("{\"name\":\"%s\",\"ns_per_op\":%d,\"events_per_sec\":%d,\"sim_events_per_op\":%d,\"allocs_per_op\":%d,\"sim_recovery_ns\":%d}",
                           name, ns, evs, evop, allocs, rec)
    }
  }
  END { for (n in line) print line[n] }
' "$raw9")"

if [ -z "$summary9" ]; then
  echo "bench.sh: no BenchmarkPR9 results parsed" >&2
  exit 1
fi

jq -n \
  --arg engine "pluggable recovery-routing strategies + head-to-head campaign (PR9)" \
  --arg commit "$commit" \
  --arg host "${host:-unknown}" \
  --arg command "${cmd9[*]}" \
  --slurpfile runs9 <(echo "$summary9") \
  '($runs9 | map({key: .name, value: del(.name)}) | from_entries) as $b |
   {
    engine: $engine,
    commit: $commit,
    host: $host,
    command: $command,
    benchmarks: $b,
    adaptive_vs_paper_recovery: (
      ($b.BenchmarkPR9RoutingAdaptive.sim_recovery_ns / $b.BenchmarkPR9RoutingPaper.sim_recovery_ns * 1000 | round) / 1000
    )
  }' > "$out9"

echo "wrote $out9" >&2
jq '{commit, adaptive_vs_paper_recovery}' "$out9" >&2

# The PR 9 bar: adaptive must beat the paper baseline on simulated recovery
# time (the ratio is simulated, so it holds on any host).
jq -e '.adaptive_vs_paper_recovery < 1' "$out9" > /dev/null || {
  echo "bench.sh: WARNING — adaptive routing does not beat the paper baseline" >&2
  rc=2
}

exit "$rc"
