#!/usr/bin/env bash
# bench.sh — refresh BENCH_PR4.json, the repo's performance trajectory record.
#
# Runs the PR 4 campaign benchmarks (16-node and 8-node node-failure
# validation campaigns plus a Hive end-to-end campaign), keeps the best
# events/sec of each across repetitions, and emits BENCH_PR4.json with
# events/sec, allocs/event, and the speedup against the frozen pre-PR4
# heap-engine numbers in scripts/bench_baseline.json.
#
#   scripts/bench.sh                  # writes BENCH_PR4.json at the repo root
#   scripts/bench.sh out.json         # writes elsewhere
#   BENCH_TIME=5x BENCH_COUNT=5 scripts/bench.sh   # longer, steadier runs
#
# The acceptance bar recorded by the PR: BenchmarkPR4Validation16 must show
# speedup_vs_baseline >= 1.5. CI only validates the file's schema (the
# shared runners are too noisy for a perf gate); refresh on quiet hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
benchtime="${BENCH_TIME:-3x}"
count="${BENCH_COUNT:-3}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

cmd=(go test -run '^$' -bench BenchmarkPR4 -benchmem -benchtime "$benchtime" -count "$count" .)
echo "running: ${cmd[*]}" >&2
"${cmd[@]}" | tee "$raw" >&2

# Reduce the raw `go test -bench` lines to one record per benchmark: the
# repetition with the highest sim-events/s, with allocs/event derived from
# -benchmem's allocs/op and the benchmark's reported sim-events/op.
summary="$(awk '
  /^BenchmarkPR4/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    evs = evop = allocs = 0
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "sim-events/s")  evs    = $i
      if ($(i + 1) == "sim-events/op") evop   = $i
      if ($(i + 1) == "allocs/op")     allocs = $i
    }
    if (evs > best[name]) {
      best[name] = evs
      line[name] = sprintf("{\"name\":\"%s\",\"events_per_sec\":%d,\"sim_events_per_op\":%d,\"allocs_per_op\":%d,\"allocs_per_event\":%.2f}",
                           name, evs, evop, allocs, evop ? allocs / evop : 0)
    }
  }
  END { for (n in line) print line[n] }
' "$raw")"

if [ -z "$summary" ]; then
  echo "bench.sh: no BenchmarkPR4 results parsed" >&2
  exit 1
fi

host="$(grep -m1 'model name' /proc/cpuinfo 2>/dev/null | sed 's/.*: //' || true)"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
git diff --quiet HEAD 2>/dev/null || commit="$commit-dirty"

jq -n \
  --arg engine "hierarchical timing wheel + pooled events (PR4)" \
  --arg commit "$commit" \
  --arg host "${host:-unknown}" \
  --arg command "${cmd[*]}" \
  --slurpfile base scripts/bench_baseline.json \
  --slurpfile runs <(echo "$summary") \
  '{
    engine: $engine,
    commit: $commit,
    host: $host,
    command: $command,
    baseline: $base[0].commit,
    benchmarks: ($runs | map({key: .name, value: {
      events_per_sec: .events_per_sec,
      sim_events_per_op: .sim_events_per_op,
      allocs_per_op: .allocs_per_op,
      allocs_per_event: .allocs_per_event,
      speedup_vs_baseline: (
        (.events_per_sec / $base[0].benchmarks[.name].events_per_sec * 100 | round) / 100
      )
    }}) | from_entries)
  }' > "$out"

echo "wrote $out" >&2
jq '{commit, benchmarks: (.benchmarks | map_values({events_per_sec, allocs_per_event, speedup_vs_baseline}))}' "$out" >&2

# The tentpole's bar: >= 1.5x on the 16-node validation campaign.
jq -e '.benchmarks.BenchmarkPR4Validation16.speedup_vs_baseline >= 1.5' "$out" > /dev/null || {
  echo "bench.sh: WARNING — Validation16 speedup below the 1.5x acceptance bar" >&2
  exit 2
}
