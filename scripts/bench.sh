#!/usr/bin/env bash
# bench.sh — refresh BENCH_PR4.json and BENCH_PR5.json, the repo's
# performance trajectory record.
#
# First runs the PR 4 campaign benchmarks (16-node and 8-node node-failure
# validation campaigns plus a Hive end-to-end campaign), keeps the best
# events/sec of each across repetitions, and emits BENCH_PR4.json with
# events/sec, allocs/event, and the speedup against the frozen pre-PR4
# heap-engine numbers in scripts/bench_baseline.json. Then runs the PR 5
# warm-start benchmarks and emits BENCH_PR5.json with the warm-vs-cold
# campaign speedup and the fork-vs-warmup cost ratio.
#
#   scripts/bench.sh                  # writes both files at the repo root
#   scripts/bench.sh pr4.json pr5.json   # writes elsewhere
#   BENCH_TIME=5x BENCH_COUNT=5 scripts/bench.sh   # longer, steadier runs
#
# The acceptance bars recorded by the PRs: BenchmarkPR4Validation16 must show
# speedup_vs_baseline >= 1.5, and warm_speedup_vs_cold must be >= 1.5. Either
# below the bar exits 2 after both files are written. CI only validates the
# files' schemas (the shared runners are too noisy for a perf gate); refresh
# on quiet hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
benchtime="${BENCH_TIME:-3x}"
count="${BENCH_COUNT:-3}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

cmd=(go test -run '^$' -bench BenchmarkPR4 -benchmem -benchtime "$benchtime" -count "$count" .)
echo "running: ${cmd[*]}" >&2
"${cmd[@]}" | tee "$raw" >&2

# Reduce the raw `go test -bench` lines to one record per benchmark: the
# repetition with the highest sim-events/s, with allocs/event derived from
# -benchmem's allocs/op and the benchmark's reported sim-events/op.
summary="$(awk '
  /^BenchmarkPR4/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    evs = evop = allocs = 0
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "sim-events/s")  evs    = $i
      if ($(i + 1) == "sim-events/op") evop   = $i
      if ($(i + 1) == "allocs/op")     allocs = $i
    }
    if (evs > best[name]) {
      best[name] = evs
      line[name] = sprintf("{\"name\":\"%s\",\"events_per_sec\":%d,\"sim_events_per_op\":%d,\"allocs_per_op\":%d,\"allocs_per_event\":%.2f}",
                           name, evs, evop, allocs, evop ? allocs / evop : 0)
    }
  }
  END { for (n in line) print line[n] }
' "$raw")"

if [ -z "$summary" ]; then
  echo "bench.sh: no BenchmarkPR4 results parsed" >&2
  exit 1
fi

host="$(grep -m1 'model name' /proc/cpuinfo 2>/dev/null | sed 's/.*: //' || true)"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
git diff --quiet HEAD 2>/dev/null || commit="$commit-dirty"

jq -n \
  --arg engine "hierarchical timing wheel + pooled events (PR4)" \
  --arg commit "$commit" \
  --arg host "${host:-unknown}" \
  --arg command "${cmd[*]}" \
  --slurpfile base scripts/bench_baseline.json \
  --slurpfile runs <(echo "$summary") \
  '{
    engine: $engine,
    commit: $commit,
    host: $host,
    command: $command,
    baseline: $base[0].commit,
    benchmarks: ($runs | map({key: .name, value: {
      events_per_sec: .events_per_sec,
      sim_events_per_op: .sim_events_per_op,
      allocs_per_op: .allocs_per_op,
      allocs_per_event: .allocs_per_event,
      speedup_vs_baseline: (
        (.events_per_sec / $base[0].benchmarks[.name].events_per_sec * 100 | round) / 100
      )
    }}) | from_entries)
  }' > "$out"

echo "wrote $out" >&2
jq '{commit, benchmarks: (.benchmarks | map_values({events_per_sec, allocs_per_event, speedup_vs_baseline}))}' "$out" >&2

# Acceptance bars are reported as exit 2 after both files are written.
rc=0

# The PR 4 bar: >= 1.5x on the 16-node validation campaign.
jq -e '.benchmarks.BenchmarkPR4Validation16.speedup_vs_baseline >= 1.5' "$out" > /dev/null || {
  echo "bench.sh: WARNING — Validation16 speedup below the 1.5x acceptance bar" >&2
  rc=2
}

# --- PR 5: warm-start snapshot/fork numbers -> BENCH_PR5.json ---------------
#
# The Warm/Cold pair runs the identical campaign with warm-start sharing on
# and off (bit-identical results), so cold_ns/warm_ns is exactly the
# amortization gain; Fork16/Warmup16 price one fork against the warm-up it
# replaces. Acceptance: warm_speedup_vs_cold >= 1.5.
out5="${2:-BENCH_PR5.json}"
raw5="$(mktemp)"
trap 'rm -f "$raw" "$raw5"' EXIT

cmd5=(go test -run '^$' -bench BenchmarkPR5 -benchmem -benchtime "$benchtime" -count "$count" .)
echo "running: ${cmd5[*]}" >&2
"${cmd5[@]}" | tee "$raw5" >&2

# One record per benchmark: the repetition with the lowest ns/op.
summary5="$(awk '
  /^BenchmarkPR5/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = evs = evop = allocs = 0
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op")         ns     = $i
      if ($(i + 1) == "sim-events/s")  evs    = $i
      if ($(i + 1) == "sim-events/op") evop   = $i
      if ($(i + 1) == "allocs/op")     allocs = $i
    }
    if (!(name in best) || ns < best[name]) {
      best[name] = ns
      line[name] = sprintf("{\"name\":\"%s\",\"ns_per_op\":%d,\"events_per_sec\":%d,\"sim_events_per_op\":%d,\"allocs_per_op\":%d}",
                           name, ns, evs, evop, allocs)
    }
  }
  END { for (n in line) print line[n] }
' "$raw5")"

if [ -z "$summary5" ]; then
  echo "bench.sh: no BenchmarkPR5 results parsed" >&2
  exit 1
fi

jq -n \
  --arg engine "copy-on-write machine snapshot/fork warm-start (PR5)" \
  --arg commit "$commit" \
  --arg host "${host:-unknown}" \
  --arg command "${cmd5[*]}" \
  --slurpfile pr4 "$out" \
  --slurpfile runs5 <(echo "$summary5") \
  '($runs5 | map({key: .name, value: del(.name)}) | from_entries) as $b |
   {
    engine: $engine,
    commit: $commit,
    host: $host,
    command: $command,
    pr4_validation16_events_per_sec: $pr4[0].benchmarks.BenchmarkPR4Validation16.events_per_sec,
    benchmarks: $b,
    warm_speedup_vs_cold: (
      ($b.BenchmarkPR5ColdValidation16.ns_per_op / $b.BenchmarkPR5WarmValidation16.ns_per_op * 100 | round) / 100
    ),
    fork_vs_warmup_cost: (
      ($b.BenchmarkPR5Fork16.ns_per_op / $b.BenchmarkPR5Warmup16.ns_per_op * 1000 | round) / 1000
    )
  }' > "$out5"

echo "wrote $out5" >&2
jq '{commit, warm_speedup_vs_cold, fork_vs_warmup_cost}' "$out5" >&2

# The PR 5 bar: warm-start sharing >= 1.5x over per-run warm-up.
jq -e '.warm_speedup_vs_cold >= 1.5' "$out5" > /dev/null || {
  echo "bench.sh: WARNING — warm-start speedup below the 1.5x acceptance bar" >&2
  rc=2
}

exit "$rc"
