package flashfc_test

// The PR 5 benchmark suite: the warm-start snapshot/fork numbers behind
// BENCH_PR5.json. The Warm/Cold pair runs the identical 16-node validation
// campaign with warm-start sharing on and off — the per-run computation is
// bit-identical, so the wall-clock ratio is exactly the amortization gain
// (the acceptance bar is >= 1.5x). Fork16 and Warmup16 price the two
// halves of that trade separately: forking a frozen snapshot must cost a
// small fraction of rebuilding the warm state it replaces.
//
// The campaign keeps the default warm-up (FillLines 192, the state a fork
// shares) and measures in campaign style: a short 16-line post-fork burst
// and a stride-32 sampled verification sweep. A full stride-1 sweep is the
// single-run validation setting — it re-reads every line of every node's
// memory, which both modes pay identically and which would swamp the
// warm-up being amortized.

import (
	"testing"

	"flashfc"
)

func benchPR5Campaign(b *testing.B, mode flashfc.WarmStartMode) {
	b.Helper()
	cfg := pr5WarmConfig()
	ccfg := flashfc.CampaignConfig{Seed: 7, Runs: 16, Workers: 1, WarmStart: mode}
	var eventsPerSec, eventsPerOp float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := flashfc.RunCampaign(ccfg, flashfc.ValidationCampaign{Config: cfg, Fault: flashfc.NodeFailure})
		for _, r := range out.Runs {
			if r.Err != nil || !r.Value.OK() {
				b.Fatalf("campaign run failed: %v", r.Err)
			}
		}
		eventsPerSec += out.Stats.EventsPerSec()
		eventsPerOp += float64(out.Stats.Events)
	}
	b.ReportMetric(eventsPerSec/float64(b.N), "sim-events/s")
	b.ReportMetric(eventsPerOp/float64(b.N), "sim-events/op")
}

// BenchmarkPR5WarmValidation16 is the acceptance benchmark: a 16-node
// node-failure campaign with warm-start sharing on (one warm-up, 16 forks).
func BenchmarkPR5WarmValidation16(b *testing.B) {
	benchPR5Campaign(b, flashfc.WarmStartAuto)
}

// BenchmarkPR5ColdValidation16 is the same campaign with sharing off
// (every run rebuilds the warm state): the amortization baseline.
func BenchmarkPR5ColdValidation16(b *testing.B) {
	benchPR5Campaign(b, flashfc.WarmStartOff)
}

func pr5WarmConfig() flashfc.ValidationConfig {
	cfg := flashfc.DefaultValidationConfig()
	cfg.Nodes = 16
	cfg.BurstLines = 16
	cfg.Stride = 32
	return cfg
}

// BenchmarkPR5Fork16 prices one fork: rehydrating an independent 16-node
// machine from a frozen snapshot (memory/directory images shared
// copy-on-write, everything else rebuilt or deep-copied).
func BenchmarkPR5Fork16(b *testing.B) {
	ws := flashfc.WarmupValidation(pr5WarmConfig(), flashfc.DeriveSeed(7, flashfc.StreamWarmup, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := flashfc.MachineFromSnapshot(ws.Snap, nil)
		if m.E.Pending() != 0 {
			b.Fatal("fork not quiescent")
		}
	}
}

// BenchmarkPR5Warmup16 prices what a fork replaces: building and filling
// the machine from scratch and freezing it.
func BenchmarkPR5Warmup16(b *testing.B) {
	cfg := pr5WarmConfig()
	seed := flashfc.DeriveSeed(7, flashfc.StreamWarmup, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := flashfc.WarmupValidation(cfg, seed)
		if ws.Snap == nil {
			b.Fatal("no snapshot")
		}
	}
}
