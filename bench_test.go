package flashfc_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5) plus the §4/§6 ablations. Each iteration runs the full
// simulated experiment; the custom metrics report the simulated quantities
// the paper plots (milliseconds of recovery time, failure counts), while
// the standard ns/op measures host-side simulation cost.
//
// Regenerate everything human-readable with:
//
//	go run ./cmd/tables  -table 5.3
//	go run ./cmd/tables  -table 5.4 [-legacy-bug]
//	go run ./cmd/figures -fig 5.5 | 5.6 | 5.7 | ablations

import (
	"testing"

	"flashfc"
)

// --- Table 5.3: validation experiments --------------------------------------

func benchValidation(b *testing.B, ft flashfc.FaultType) {
	b.Helper()
	cfg := flashfc.DefaultValidationConfig()
	failures := 0
	var totalMS float64
	for i := 0; i < b.N; i++ {
		r := flashfc.RunValidation(cfg, ft, int64(i+1))
		if !r.OK() {
			failures++
		}
		totalMS += r.Phases.Total.Milliseconds()
	}
	b.ReportMetric(float64(failures), "failures")
	b.ReportMetric(totalMS/float64(b.N), "recovery-ms")
}

func BenchmarkTable5_3_NodeFailure(b *testing.B)   { benchValidation(b, flashfc.NodeFailure) }
func BenchmarkTable5_3_RouterFailure(b *testing.B) { benchValidation(b, flashfc.RouterFailure) }
func BenchmarkTable5_3_LinkFailure(b *testing.B)   { benchValidation(b, flashfc.LinkFailure) }
func BenchmarkTable5_3_InfiniteLoop(b *testing.B)  { benchValidation(b, flashfc.InfiniteLoop) }
func BenchmarkTable5_3_FalseAlarm(b *testing.B)    { benchValidation(b, flashfc.FalseAlarm) }

// --- Table 5.4: end-to-end recovery experiments ------------------------------

func benchEndToEnd(b *testing.B, ft flashfc.FaultType, legacyBug bool) {
	b.Helper()
	cfg := flashfc.DefaultEndToEndConfig()
	cfg.MemBytes = 256 << 10
	cfg.L2Bytes = 32 << 10
	cfg.LegacyIncoherentBug = legacyBug
	failures := 0
	var hwMS float64
	for i := 0; i < b.N; i++ {
		r := flashfc.RunEndToEnd(cfg, ft, int64(i+1))
		if !r.OK() {
			failures++
		}
		hwMS += r.HW.Milliseconds()
	}
	b.ReportMetric(float64(failures), "failures")
	b.ReportMetric(hwMS/float64(b.N), "hw-recovery-ms")
}

func BenchmarkTable5_4_NodeFailure(b *testing.B)   { benchEndToEnd(b, flashfc.NodeFailure, false) }
func BenchmarkTable5_4_RouterFailure(b *testing.B) { benchEndToEnd(b, flashfc.RouterFailure, false) }
func BenchmarkTable5_4_LinkFailure(b *testing.B)   { benchEndToEnd(b, flashfc.LinkFailure, false) }
func BenchmarkTable5_4_InfiniteLoop(b *testing.B)  { benchEndToEnd(b, flashfc.InfiniteLoop, false) }
func BenchmarkTable5_4_LegacyBugOS(b *testing.B)   { benchEndToEnd(b, flashfc.NodeFailure, true) }

// --- Fig 5.5: hardware recovery time vs machine size -------------------------

func benchFig55(b *testing.B, nodes int, topo flashfc.TopoKind) {
	b.Helper()
	var p1, p12, p123, total float64
	for i := 0; i < b.N; i++ {
		cfg := flashfc.DefaultScalingConfig(nodes)
		cfg.Topo = topo
		cfg.Seed = int64(i + 1)
		p := flashfc.MeasureRecovery(cfg)
		if !p.OK {
			b.Fatal("recovery incomplete")
		}
		p1 += p.Phases.P1.Milliseconds()
		p12 += p.Phases.P12.Milliseconds()
		p123 += p.Phases.P123.Milliseconds()
		total += p.Phases.Total.Milliseconds()
	}
	n := float64(b.N)
	b.ReportMetric(p1/n, "P1-ms")
	b.ReportMetric(p12/n, "P12-ms")
	b.ReportMetric(p123/n, "P123-ms")
	b.ReportMetric(total/n, "total-ms")
}

func BenchmarkFig5_5_Mesh8(b *testing.B)        { benchFig55(b, 8, flashfc.TopoMesh) }
func BenchmarkFig5_5_Mesh32(b *testing.B)       { benchFig55(b, 32, flashfc.TopoMesh) }
func BenchmarkFig5_5_Mesh64(b *testing.B)       { benchFig55(b, 64, flashfc.TopoMesh) }
func BenchmarkFig5_5_Mesh128(b *testing.B)      { benchFig55(b, 128, flashfc.TopoMesh) }
func BenchmarkFig5_5_Hypercube64(b *testing.B)  { benchFig55(b, 64, flashfc.TopoHypercube) }
func BenchmarkFig5_5_Hypercube128(b *testing.B) { benchFig55(b, 128, flashfc.TopoHypercube) }

// --- Fig 5.6: coherence recovery vs L2 and memory size ------------------------

func benchFig56L2(b *testing.B, l2 uint64) {
	b.Helper()
	var wb, p4 float64
	for i := 0; i < b.N; i++ {
		p := flashfc.RunCampaign(flashfc.CampaignConfig{Seed: int64(i + 1), Workers: 1},
			flashfc.Fig56L2Campaign{L2Sizes: []uint64{l2}}).Values()[0]
		wb += p.Phases.WB.Milliseconds()
		p4 += p.Phases.P4Time().Milliseconds()
	}
	b.ReportMetric(wb/float64(b.N), "WB-ms")
	b.ReportMetric(p4/float64(b.N), "P4-ms")
}

func BenchmarkFig5_6_L2_512KB(b *testing.B) { benchFig56L2(b, 512<<10) }
func BenchmarkFig5_6_L2_1MB(b *testing.B)   { benchFig56L2(b, 1<<20) }
func BenchmarkFig5_6_L2_4MB(b *testing.B)   { benchFig56L2(b, 4<<20) }

func benchFig56Mem(b *testing.B, mem uint64) {
	b.Helper()
	var scan, p4 float64
	for i := 0; i < b.N; i++ {
		p := flashfc.RunCampaign(flashfc.CampaignConfig{Seed: int64(i + 1), Workers: 1},
			flashfc.Fig56MemCampaign{MemSizes: []uint64{mem}}).Values()[0]
		scan += p.Phases.Scan.Milliseconds()
		p4 += p.Phases.P4Time().Milliseconds()
	}
	b.ReportMetric(scan/float64(b.N), "scan-ms")
	b.ReportMetric(p4/float64(b.N), "P4-ms")
}

func BenchmarkFig5_6_Mem1MB(b *testing.B)  { benchFig56Mem(b, 1<<20) }
func BenchmarkFig5_6_Mem16MB(b *testing.B) { benchFig56Mem(b, 16<<20) }
func BenchmarkFig5_6_Mem64MB(b *testing.B) { benchFig56Mem(b, 64<<20) }

// --- Fig 5.7: end-to-end suspension time -------------------------------------

func benchFig57(b *testing.B, cells int) {
	b.Helper()
	var hw, hwos float64
	for i := 0; i < b.N; i++ {
		pts := flashfc.RunCampaign(flashfc.CampaignConfig{Seed: int64(i + 1), Workers: 1},
			flashfc.Fig57Campaign{Nodes: []int{cells}, MemBytes: 2 << 20, L2Bytes: 256 << 10}).Values()
		if !pts[0].OK {
			b.Fatal("run failed")
		}
		hw += pts[0].HW.Milliseconds()
		hwos += pts[0].HWOS.Milliseconds()
	}
	b.ReportMetric(hw/float64(b.N), "HW-ms")
	b.ReportMetric(hwos/float64(b.N), "HW+OS-ms")
}

func BenchmarkFig5_7_Cells2(b *testing.B)  { benchFig57(b, 2) }
func BenchmarkFig5_7_Cells8(b *testing.B)  { benchFig57(b, 8) }
func BenchmarkFig5_7_Cells16(b *testing.B) { benchFig57(b, 16) }

// --- Parallel campaign runner: sequential vs parallel wall clock --------------

// benchCampaign runs a fixed 16-run validation campaign per iteration on
// the given worker count. Comparing the Workers1/Workers4 ns/op shows the
// runner's wall-clock speedup on a multi-core host (the results themselves
// are bit-identical by construction — the campaign checks so here).
func benchCampaign(b *testing.B, workers int) {
	b.Helper()
	cfg := flashfc.DefaultValidationConfig()
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	cfg.FillLines = 48
	cfg.Workers = workers
	var eventsPerSec float64
	for i := 0; i < b.N; i++ {
		out := flashfc.RunCampaign(
			flashfc.CampaignConfig{Seed: int64(i + 1), Runs: 16, Workers: cfg.Workers},
			flashfc.ValidationCampaign{Config: cfg, Fault: flashfc.NodeFailure})
		for _, r := range out.Runs {
			if r.Err != nil || !r.Value.OK() {
				b.Fatalf("campaign run failed: %v", r.Err)
			}
		}
		eventsPerSec += out.Stats.EventsPerSec()
	}
	b.ReportMetric(eventsPerSec/float64(b.N)/1e6, "sim-Mevents/s")
}

func BenchmarkCampaignWorkers1(b *testing.B) { benchCampaign(b, 1) }
func BenchmarkCampaignWorkers2(b *testing.B) { benchCampaign(b, 2) }
func BenchmarkCampaignWorkers4(b *testing.B) { benchCampaign(b, 4) }
func BenchmarkCampaignWorkers8(b *testing.B) { benchCampaign(b, 8) }

// BenchmarkCampaignTable53 measures the whole Table 5.3 regeneration (all
// five fault types) at the host's full parallelism — the headline number
// for "regenerate the paper's evaluation as fast as the hardware allows".
func BenchmarkCampaignTable53(b *testing.B) {
	cfg := flashfc.DefaultValidationConfig()
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	cfg.FillLines = 48
	cfg.Workers = 0 // one per CPU
	var eventsPerSec float64
	for i := 0; i < b.N; i++ {
		var stats flashfc.CampaignStats
		for _, ft := range flashfc.AllFaultTypes() {
			out := flashfc.RunCampaign(
				flashfc.CampaignConfig{Seed: int64(i + 1), Runs: 4, Workers: cfg.Workers},
				flashfc.ValidationCampaign{Config: cfg, Fault: ft})
			for _, r := range out.Runs {
				if r.Err != nil || !r.Value.OK() {
					b.Fatalf("%v: run failed: %v", ft, r.Err)
				}
			}
			stats.Merge(out.Stats)
		}
		eventsPerSec += stats.EventsPerSec()
	}
	b.ReportMetric(eventsPerSec/float64(b.N)/1e6, "sim-Mevents/s")
}

// --- §6.2: firewall normal-mode cost ------------------------------------------

func BenchmarkFirewallOverhead(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		frac += flashfc.FirewallOverheadFraction(int64(i + 1))
	}
	pct := 100 * frac / float64(b.N)
	b.ReportMetric(pct, "overhead-%")
	if pct >= 7 {
		b.Fatalf("firewall overhead %.1f%% exceeds the paper's 7%% bound", pct)
	}
}

// --- §4.2: speculative-ping trigger speedup ------------------------------------

func BenchmarkAblationSpeculativePing(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		with := flashfc.TriggerLatency(32, true, int64(i+1))
		without := flashfc.TriggerLatency(32, false, int64(i+1))
		speedup += float64(without) / float64(with)
	}
	b.ReportMetric(speedup/float64(b.N), "trigger-speedup-x")
}

// --- §4.3: BFT-hint scheduling -------------------------------------------------

func BenchmarkAblationBFTHints(b *testing.B) {
	on, off := true, false
	var withMS, withoutMS float64
	for i := 0; i < b.N; i++ {
		cfgOn := flashfc.DefaultScalingConfig(32)
		cfgOn.BFTHints = &on
		cfgOn.Seed = int64(i + 1)
		cfgOff := flashfc.DefaultScalingConfig(32)
		cfgOff.BFTHints = &off
		cfgOff.Seed = int64(i + 1)
		withMS += flashfc.MeasureRecovery(cfgOn).Phases.P2Time().Milliseconds()
		withoutMS += flashfc.MeasureRecovery(cfgOff).Phases.P2Time().Milliseconds()
	}
	b.ReportMetric(withMS/float64(b.N), "P2-with-hints-ms")
	b.ReportMetric(withoutMS/float64(b.N), "P2-without-hints-ms")
}

// --- Simulator throughput -------------------------------------------------------

func BenchmarkSimulatorEventRate(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := flashfc.DefaultScalingConfig(32)
		cfg.Seed = int64(i + 1)
		m := flashfc.NewMachine(func() flashfc.MachineConfig {
			mc := flashfc.DefaultMachineConfig(cfg.Nodes)
			mc.Seed = cfg.Seed
			mc.MemBytes = 256 << 10
			mc.L2Bytes = 64 << 10
			return mc
		}())
		m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 5}, flashfc.Millisecond)
		m.E.At(flashfc.Millisecond, func() {
			m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, 5))
		})
		m.RunUntilRecovered(5 * flashfc.Second)
		events += m.E.EventsFired()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/recovery")
}

// --- §6.2: hardwired vs programmable controller ---------------------------------

func BenchmarkAblationHardwiredController(b *testing.B) {
	measure := func(hardwired bool, seed int64) float64 {
		cfg := flashfc.DefaultScalingConfig(8)
		cfg.Seed = seed
		base := flashfc.DefaultMachineConfig(8)
		base.Seed = seed
		base.Recovery.HardwiredController = hardwired
		m := flashfc.NewMachine(base)
		m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 4}, flashfc.Millisecond)
		m.E.At(flashfc.Millisecond, func() { m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, 4)) })
		if !m.RunUntilRecovered(10 * flashfc.Second) {
			b.Fatal("recovery incomplete")
		}
		return m.Aggregate().P4Time().Milliseconds()
	}
	var flex, hard float64
	for i := 0; i < b.N; i++ {
		flex += measure(false, int64(i+1))
		hard += measure(true, int64(i+1))
	}
	b.ReportMetric(flex/float64(b.N), "P4-programmable-ms")
	b.ReportMetric(hard/float64(b.N), "P4-hardwired-ms")
}

// --- §5.3: SimOS vs RTL uncached-instruction timing ------------------------------

func BenchmarkAblationRTLTiming(b *testing.B) {
	measure := func(rtl bool, seed int64) float64 {
		base := flashfc.DefaultMachineConfig(8)
		base.Seed = seed
		if rtl {
			base.Recovery.UncachedInstr = 390 // §5.3's RTL-calibrated value
		}
		m := flashfc.NewMachine(base)
		m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 4}, flashfc.Millisecond)
		m.E.At(flashfc.Millisecond, func() { m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, 4)) })
		if !m.RunUntilRecovered(10 * flashfc.Second) {
			b.Fatal("recovery incomplete")
		}
		return m.Aggregate().Total.Milliseconds()
	}
	var simos, rtl float64
	for i := 0; i < b.N; i++ {
		simos += measure(false, int64(i+1))
		rtl += measure(true, int64(i+1))
	}
	b.ReportMetric(simos/float64(b.N), "total-320ns-ms")
	b.ReportMetric(rtl/float64(b.N), "total-390ns-ms")
}

// --- Tracing overhead: disabled tracer must be free ------------------------------

// The span/point/event hooks sit on simulation hot paths (packet routing,
// gossip rounds, directory scans). A nil tracer must cost nothing: no
// allocations, just a nil check. testing.AllocsPerRun makes the contract a
// failing test, not a trend to eyeball.

func BenchmarkTracerDisabledSpanPath(b *testing.B) {
	var tr *flashfc.Tracer
	if allocs := testing.AllocsPerRun(1000, func() {
		id := tr.Begin(1, 0, "node-recovery", 0, 1)
		tr.Point(2, 0, "pkt", "inject", 1, 3, 0)
		tr.End(3, id)
	}); allocs != 0 {
		b.Fatalf("nil tracer span path allocates %.0f allocs/op, want 0", allocs)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := tr.Begin(1, 0, "node-recovery", 0, 1)
		tr.Point(2, 0, "pkt", "inject", 1, 3, 0)
		tr.End(3, id)
	}
}

func BenchmarkTracerDisabledRecord(b *testing.B) {
	var tr *flashfc.Tracer
	if allocs := testing.AllocsPerRun(1000, func() {
		tr.RecordEvent(1, 0, flashfc.TraceKindNote, "noop")
	}); allocs != 0 {
		b.Fatalf("nil tracer RecordEvent allocates %.0f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(1, 0, flashfc.TraceKindNote, "noop")
	}); allocs != 0 {
		b.Fatalf("nil tracer Record allocates %.0f allocs/op, want 0", allocs)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.RecordEvent(1, 0, flashfc.TraceKindNote, "noop")
	}
}

// BenchmarkTracerEnabledSpanPath is the paired enabled-path number, for
// judging the cost of turning tracing on.
func BenchmarkTracerEnabledSpanPath(b *testing.B) {
	tr := flashfc.NewTracer(0)
	root := tr.EnsureRoot(0, "recovery")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := tr.Begin(flashfc.Time(i), 0, "gossip-round", root, int64(i))
		tr.End(flashfc.Time(i)+1, id)
	}
}

// --- §6.3: HAL-style reliable interconnect ---------------------------------------

func BenchmarkAblationReliableInterconnect(b *testing.B) {
	measure := func(reliable bool, seed int64) float64 {
		cfg := flashfc.DefaultMachineConfig(8)
		cfg.Seed = seed
		cfg.ReliableInterconnect = reliable
		m := flashfc.NewMachine(cfg)
		m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 5}, flashfc.Millisecond)
		m.E.At(flashfc.Millisecond, func() { m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, 5)) })
		if !m.RunUntilRecovered(10 * flashfc.Second) {
			b.Fatal("recovery incomplete")
		}
		return m.Aggregate().P4Time().Milliseconds()
	}
	var flushed, flushFree float64
	for i := 0; i < b.N; i++ {
		flushed += measure(false, int64(i+1))
		flushFree += measure(true, int64(i+1))
	}
	b.ReportMetric(flushed/float64(b.N), "P4-flushed-ms")
	b.ReportMetric(flushFree/float64(b.N), "P4-flushfree-ms")
}
