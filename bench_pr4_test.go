package flashfc_test

// The PR 4 benchmark suite: the reproducible harness behind
// scripts/bench.sh and BENCH_PR4.json. These benchmarks pin the engine's
// throughput trajectory — the 16-node node-failure validation campaign is
// the acceptance benchmark (>= 1.5x events/sec over the pre-wheel engine),
// and the end-to-end campaign covers the Hive workload path. All campaign
// benchmarks run single-worker so they measure engine throughput, not host
// parallelism (BenchmarkCampaignWorkers* already covers scaling).

import (
	"testing"

	"flashfc"
)

// benchPR4Validation runs one fixed single-worker validation campaign per
// iteration and reports simulated events per wall-clock second plus the
// simulated-event volume per iteration (bench.sh divides allocs/op by
// events/op to get allocs/event).
func benchPR4Validation(b *testing.B, nodes, runs int) {
	b.Helper()
	cfg := flashfc.DefaultValidationConfig()
	cfg.Nodes = nodes
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	cfg.FillLines = 64
	cfg.Workers = 1
	// Warm-start sharing (PR 5) is pinned off so this series keeps
	// measuring the full un-amortized per-run cost across PRs; the
	// BenchmarkPR5 series measures the warm-start gain explicitly.
	ccfg := flashfc.CampaignConfig{Seed: 7, Runs: runs, Workers: 1, WarmStart: flashfc.WarmStartOff}
	var eventsPerSec, eventsPerOp float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := flashfc.RunCampaign(ccfg, flashfc.ValidationCampaign{Config: cfg, Fault: flashfc.NodeFailure})
		results, stats := out.Runs, out.Stats
		for _, r := range results {
			if r.Err != nil || !r.Value.OK() {
				b.Fatalf("campaign run failed: %v", r.Err)
			}
		}
		eventsPerSec += stats.EventsPerSec()
		eventsPerOp += float64(stats.Events)
	}
	b.ReportMetric(eventsPerSec/float64(b.N), "sim-events/s")
	b.ReportMetric(eventsPerOp/float64(b.N), "sim-events/op")
}

// BenchmarkPR4Validation16 is the acceptance benchmark: a 16-node
// node-failure validation campaign, single worker, fixed seed.
func BenchmarkPR4Validation16(b *testing.B) { benchPR4Validation(b, 16, 4) }

// BenchmarkPR4Validation8 is the same campaign at the paper's default
// 8-node geometry, for cross-checking that wins hold across sizes.
func BenchmarkPR4Validation8(b *testing.B) { benchPR4Validation(b, 8, 4) }

// BenchmarkPR4EndToEnd runs a fixed single-worker end-to-end (Hive
// parallel-make) campaign per iteration: the workload path exercises the
// processor retirement and MAGIC dispatch hot paths harder than the
// validation filler does.
func BenchmarkPR4EndToEnd(b *testing.B) {
	cfg := flashfc.DefaultEndToEndConfig()
	cfg.MemBytes = 256 << 10
	cfg.L2Bytes = 32 << 10
	cfg.Workers = 1
	var eventsPerSec, eventsPerOp float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := flashfc.RunCampaign(
			flashfc.CampaignConfig{Seed: 7, Runs: 2, Workers: cfg.Workers},
			flashfc.EndToEndCampaign{Config: cfg, Fault: flashfc.NodeFailure})
		for _, r := range out.Runs {
			if r.Err != nil || !r.Value.OK() {
				b.Fatalf("campaign run failed: %v", r.Err)
			}
		}
		eventsPerSec += out.Stats.EventsPerSec()
		eventsPerOp += float64(out.Stats.Events)
	}
	b.ReportMetric(eventsPerSec/float64(b.N), "sim-events/s")
	b.ReportMetric(eventsPerOp/float64(b.N), "sim-events/op")
}
