// Reliable demonstrates the §6.3 variant: a machine whose interconnect
// provides HAL-style hardware end-to-end reliability. The recovery
// algorithm then skips the global cache flush — caches stay warm — and a
// writeback destroyed by the failure is retransmitted by the fabric instead
// of becoming an incoherent line.
//
// It is also the smallest example of a custom campaign Experiment: the
// two machine variants are the two points of one sweep, run through
// flashfc.RunCampaign like any built-in experiment.
package main

import (
	"fmt"
	"log"

	"flashfc"
)

// p4Sweep measures the coherence-recovery phase (P4) after a node failure:
// point 0 on a standard FLASH machine, point 1 on the §6.3 reliable
// variant. Stream is negative because the point index selects a variant,
// not a repetition — both points run the same base seed.
type p4Sweep struct{}

func (p4Sweep) Stream() int { return -1 }
func (p4Sweep) Points() int { return 2 }

func (p4Sweep) Run(_ flashfc.RunEnv, i int, seed int64) flashfc.Time {
	cfg := flashfc.DefaultMachineConfig(8)
	cfg.Seed = seed
	cfg.ReliableInterconnect = i == 1
	m := flashfc.NewMachine(cfg)
	m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 5}, flashfc.Millisecond)
	m.E.At(flashfc.Millisecond, func() {
		m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, 5))
	})
	if !m.RunUntilRecovered(10 * flashfc.Second) {
		log.Fatal("recovery incomplete")
	}
	return m.Aggregate().P4Time()
}

func main() {
	out := flashfc.RunCampaign(flashfc.CampaignConfig{Seed: 7}, p4Sweep{})
	v := out.Values()
	flushedP4, flushFreeP4 := v[0], v[1]
	fmt.Println("coherence-recovery phase after a node failure (8 nodes, 1 MB L2/mem):")
	fmt.Printf("  standard FLASH (flush + sweep):      %v\n", flushedP4)
	fmt.Printf("  HAL-style reliable (sweep only):     %v\n", flushFreeP4)
	fmt.Printf("  flush eliminated: %.1fx faster P4, and survivors keep warm caches\n",
		float64(flushedP4)/float64(flushFreeP4))
}
