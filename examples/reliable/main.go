// Reliable demonstrates the §6.3 variant: a machine whose interconnect
// provides HAL-style hardware end-to-end reliability. The recovery
// algorithm then skips the global cache flush — caches stay warm — and a
// writeback destroyed by the failure is retransmitted by the fabric instead
// of becoming an incoherent line.
package main

import (
	"fmt"
	"log"

	"flashfc"
)

func run(reliable bool) (p4 flashfc.Time, incoherent int) {
	cfg := flashfc.DefaultMachineConfig(8)
	cfg.Seed = 7
	cfg.ReliableInterconnect = reliable
	m := flashfc.NewMachine(cfg)
	m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 5}, flashfc.Millisecond)
	m.E.At(flashfc.Millisecond, func() {
		m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, 5))
	})
	if !m.RunUntilRecovered(10 * flashfc.Second) {
		log.Fatal("recovery incomplete")
	}
	pt := m.Aggregate()
	return pt.P4Time(), pt.MaxIncoher
}

func main() {
	flushedP4, _ := run(false)
	flushFreeP4, _ := run(true)
	fmt.Println("coherence-recovery phase after a node failure (8 nodes, 1 MB L2/mem):")
	fmt.Printf("  standard FLASH (flush + sweep):      %v\n", flushedP4)
	fmt.Printf("  HAL-style reliable (sweep only):     %v\n", flushFreeP4)
	fmt.Printf("  flush eliminated: %.1fx faster P4, and survivors keep warm caches\n",
		float64(flushedP4)/float64(flushFreeP4))
}
