// Falsealarm demonstrates the §4.1 guarantee: recovery triggered without an
// actual fault (a pathological overload) costs only a brief interruption —
// no data is lost and nothing is marked incoherent.
package main

import (
	"fmt"
	"log"

	"flashfc"
)

func main() {
	cfg := flashfc.DefaultMachineConfig(8)
	cfg.MemBytes = 128 << 10
	cfg.L2Bytes = 32 << 10
	m := flashfc.NewMachine(cfg)

	// Dirty a bunch of lines all over the machine first.
	written := 0
	for i := 0; i < 64; i++ {
		node := i % 8
		addr := m.Space.Base((i+3)%8) + flashfc.Addr(0x400+i*128)
		tok := m.Oracle.NextToken()
		a := addr
		m.Nodes[node].Ctrl.Write(addr, tok, func(r flashfc.Result) {
			if r.Err == nil {
				m.Oracle.Wrote(a, tok)
				written++
			}
		})
	}
	m.E.Run()
	fmt.Printf("%d lines dirtied across the machine\n", written)

	// An overload condition triggers recovery on node 4 — no fault.
	m.Inject(flashfc.Fault{Type: flashfc.FalseAlarm, Node: 4})
	if !m.RunUntilRecovered(5 * flashfc.Second) {
		log.Fatal("recovery did not complete")
	}
	pt := m.Aggregate()
	fmt.Printf("false alarm cost: %v of suspension (flush %v + directory sweep %v)\n",
		pt.Total, pt.WB, pt.Scan)

	res := m.VerifyMemory(0, 1)
	if !res.OK() || res.Incoherent != 0 {
		log.Fatalf("false alarm must not lose data: %v", res)
	}
	fmt.Printf("sweep of %d lines: all data intact, zero incoherent lines.\n", res.LinesChecked)
}
