// Falsealarm demonstrates the §4.1 guarantee: recovery triggered without an
// actual fault (a pathological overload) costs only a brief interruption —
// no data is lost and nothing is marked incoherent.
//
// The check runs as a campaign: eight validation experiments with derived
// seeds, each filling the caches with dirty lines before the false alarm
// fires, so the guarantee is exercised against eight different dirty-line
// populations rather than one hand-picked layout.
package main

import (
	"fmt"
	"log"

	"flashfc"
)

func main() {
	cfg := flashfc.DefaultValidationConfig()
	cfg.Nodes = 8
	cfg.MemBytes = 128 << 10
	cfg.L2Bytes = 32 << 10

	out := flashfc.RunCampaign(
		flashfc.CampaignConfig{Seed: 1, Runs: 8},
		flashfc.ValidationCampaign{Config: cfg, Fault: flashfc.FalseAlarm},
	)

	var worst flashfc.Time
	checked := 0
	for i, r := range out.Values() {
		if !r.OK() || r.Verify.Incoherent != 0 {
			log.Fatalf("run %d: false alarm must not lose data: %v", i, r.Verify)
		}
		if r.Phases.Total > worst {
			worst = r.Phases.Total
		}
		checked += r.Verify.LinesChecked
		fmt.Printf("seed run %d: suspension %v (flush %v + directory sweep %v)\n",
			i, r.Phases.Total, r.Phases.WB, r.Phases.Scan)
	}
	fmt.Printf("\nworst-case false-alarm cost: %v of suspension\n", worst)
	fmt.Printf("swept %d lines across %d runs: all data intact, zero incoherent lines.\n",
		checked, len(out.Runs))
	fmt.Printf("throughput: %v\n", out.Stats)
}
