// Parallelmake reproduces one §5.1 end-to-end experiment interactively: an
// 8-cell Hive system runs eight compiles with cell 0 as the file server; a
// node failure takes out one cell mid-run; the hardware recovery algorithm
// and Hive's OS recovery run; the unaffected compiles finish correctly.
package main

import (
	"fmt"
	"log"

	"flashfc"
)

func main() {
	const cells = 8
	mc := flashfc.HiveMachineConfig(cells, 1, 512<<10, 64<<10, 42)
	m := flashfc.NewMachine(mc)
	h := flashfc.NewHive(m, flashfc.DefaultHiveConfig(cells))
	h.OnCellDeath = func(c *flashfc.Cell, why string) {
		fmt.Printf("[%v] cell %d died: %s\n", m.E.Now(), c.ID, why)
	}
	mk := flashfc.NewParallelMake(h, flashfc.DefaultMakeConfig())

	m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 5}, 2*flashfc.Millisecond)

	idle := false
	mk.Start(func() { idle = true })
	deadline := 30 * flashfc.Second
	for m.E.Now() < deadline && !(idle && m.Recovered() && h.OSTime > 0) {
		m.E.RunUntil(m.E.Now() + flashfc.Millisecond)
	}
	if !idle {
		log.Fatal("workload hung")
	}

	fmt.Printf("\nhardware recovery: %v, OS recovery: %v\n", h.HWTime, h.OSTime)
	o := mk.Evaluate()
	fmt.Printf("compiles completed: %d, excused (lost with their cell): %d\n",
		o.Completed, o.Excused)
	for _, t := range mk.Tasks {
		fmt.Printf("  compile %d on cell %d: %v %s\n", t.FileID, t.Cell.ID, t.State, t.FailWhy)
	}
	if !o.OK() {
		log.Fatalf("containment failure: %v", o.Failures)
	}
	fmt.Println("\nevery compile not affected by the fault finished correctly.")

	// The batch version of this experiment (Table 5.4's node-failure row)
	// is one Campaign API call: three Hive runs with derived seeds.
	ecfg := flashfc.DefaultEndToEndConfig()
	out := flashfc.RunCampaign(
		flashfc.CampaignConfig{Seed: 42, Runs: 3},
		flashfc.EndToEndCampaign{Config: ecfg, Fault: flashfc.NodeFailure},
	)
	passed := 0
	for _, r := range out.Values() {
		if r.OK() {
			passed++
		}
	}
	fmt.Printf("campaign: %d/%d seeded node-failure runs contained (%v)\n",
		passed, len(out.Runs), out.Stats)
}
