// Reroute demonstrates interconnect recovery (§4.4): a link failure
// black-holes traffic between two halves of a mesh; the recovery algorithm
// isolates the dead link, drains the fabric, and installs deadlock-free
// up*/down* routes around it. Traffic that was impossible before recovery
// flows afterward.
//
// The scenario is packaged as a custom campaign Experiment and repeated
// across derived seeds, so one command checks the reroute against several
// traffic histories — and a run that blows up becomes a failed CampaignRun
// instead of killing the sweep.
package main

import (
	"fmt"
	"log"

	"flashfc"
)

// rerouteOutcome is what one link-failure scenario produces.
type rerouteOutcome struct {
	Recovery     flashfc.Time
	Participants int
	Rerouted     bool // the formerly black-holed read succeeds post-recovery
	SweepOK      bool
	Incoherent   int
}

// rerouteExp fails the same mid-mesh link on a 4x4 mesh under per-seed
// traffic and checks that recovery reroutes around it without data loss.
type rerouteExp struct{}

// Stream 42 derives an independent engine seed per repetition; any
// non-negative value distinct from the built-in streams works.
func (rerouteExp) Stream() int { return 42 }
func (rerouteExp) Points() int { return 0 }

func (rerouteExp) Run(_ flashfc.RunEnv, _ int, seed int64) rerouteOutcome {
	cfg := flashfc.DefaultMachineConfig(16) // 4x4 mesh
	cfg.Seed = seed
	cfg.MemBytes = 128 << 10
	cfg.L2Bytes = 32 << 10
	m := flashfc.NewMachine(cfg)

	// Fail the link between routers 5 and 6 (middle of the mesh).
	port := m.Topo.PortTo(5, 6)
	link := m.Topo.Adjacency(5)[port].Link
	m.Inject(flashfc.Fault{Type: flashfc.LinkFailure, Link: link})

	// 5 -> 6 traffic is now black-holed: this read will time out and
	// trigger the recovery algorithm (Table 4.1).
	m.Nodes[5].CPU.Submit(flashfc.Op{
		Kind: flashfc.OpRead, Addr: m.Space.Base(6) + 0x80,
		Done: func(flashfc.Result) {},
	})
	if !m.RunUntilRecovered(5 * flashfc.Second) {
		panic("recovery did not complete")
	}
	pt := m.Aggregate()

	// The same access must now succeed over the rerouted path.
	ok := false
	m.Nodes[5].Ctrl.Read(m.Space.Base(6)+0x80, func(r flashfc.Result) { ok = r.Err == nil })
	m.E.Run()
	res := m.VerifyMemory(0, 4)
	return rerouteOutcome{
		Recovery:     pt.Total,
		Participants: pt.Participants,
		Rerouted:     ok,
		SweepOK:      res.OK(),
		Incoherent:   res.Incoherent,
	}
}

func main() {
	fmt.Println("failing link 5-6 on a 4x4 mesh, three seeds:")
	out := flashfc.RunCampaign(flashfc.CampaignConfig{Seed: 1, Runs: 3}, rerouteExp{})
	for i, r := range out.Runs {
		if r.Err != nil {
			log.Fatalf("seed run %d crashed: %v", i, r.Err)
		}
		o := r.Value
		fmt.Printf("  run %d: recovered in %v (%d participants, no node lost), 5 -> 6 flows: %v\n",
			i, o.Recovery, o.Participants, o.Rerouted)
		if !o.Rerouted {
			log.Fatal("rerouted read failed")
		}
		if !o.SweepOK || o.Incoherent > 0 {
			log.Fatal("unexpected data loss after a pure link failure")
		}
	}
	fmt.Println("traffic flows around the dead link in every run; no data was lost.")
}
