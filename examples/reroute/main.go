// Reroute demonstrates interconnect recovery (§4.4): a link failure
// black-holes traffic between two halves of a mesh; the recovery algorithm
// isolates the dead link, drains the fabric, and installs deadlock-free
// up*/down* routes around it. Traffic that was impossible before recovery
// flows afterward.
package main

import (
	"fmt"
	"log"

	"flashfc"
)

func main() {
	m := flashfc.NewMachine(func() flashfc.MachineConfig {
		cfg := flashfc.DefaultMachineConfig(16) // 4x4 mesh
		cfg.MemBytes = 128 << 10
		cfg.L2Bytes = 32 << 10
		return cfg
	}())

	// Fail the link between routers 5 and 6 (middle of the mesh).
	port := m.Topo.PortTo(5, 6)
	link := m.Topo.Adjacency(5)[port].Link
	fmt.Printf("failing link %d (%d-%d)\n", link, 5, 6)
	m.Inject(flashfc.Fault{Type: flashfc.LinkFailure, Link: link})

	// 5 -> 6 traffic is now black-holed: this read will time out and
	// trigger the recovery algorithm (Table 4.1).
	gotErr := make(chan error, 1)
	m.Nodes[5].CPU.Submit(flashfc.Op{
		Kind: flashfc.OpRead, Addr: m.Space.Base(6) + 0x80,
		Done: func(r flashfc.Result) { gotErr <- r.Err },
	})
	if !m.RunUntilRecovered(5 * flashfc.Second) {
		log.Fatal("recovery did not complete")
	}
	fmt.Printf("recovered in %v (no node lost: %d participants)\n",
		m.Aggregate().Total, m.Aggregate().Participants)

	// The same access now succeeds over the rerouted path.
	ok := false
	m.Nodes[5].Ctrl.Read(m.Space.Base(6)+0x80, func(r flashfc.Result) { ok = r.Err == nil })
	m.E.Run()
	if !ok {
		log.Fatal("rerouted read failed")
	}
	fmt.Println("5 -> 6 traffic flows around the dead link; no data was lost:")
	res := m.VerifyMemory(0, 4)
	fmt.Printf("  %v\n", res)
	if !res.OK() || res.Incoherent > 0 {
		log.Fatal("unexpected data loss after a pure link failure")
	}
}
