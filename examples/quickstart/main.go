// Quickstart: build a 16-node FLASH machine, write some data, kill a node,
// watch the distributed recovery algorithm run, and verify that every
// surviving line is intact and every lost line is correctly contained.
package main

import (
	"fmt"
	"log"

	"flashfc"
)

func main() {
	cfg := flashfc.DefaultMachineConfig(16)
	cfg.MemBytes = 256 << 10 // keep the demo quick
	cfg.L2Bytes = 64 << 10
	m := flashfc.NewMachine(cfg)

	// Node 3 writes a line homed on node 9; node 1 writes a line that
	// will be homed on the soon-to-die node 5.
	write := func(node int, addr flashfc.Addr) {
		tok := m.Oracle.NextToken()
		m.Nodes[node].Ctrl.Write(addr, tok, func(r flashfc.Result) {
			if r.Err == nil {
				m.Oracle.Wrote(addr, tok)
			}
		})
	}
	write(3, m.Space.Base(9)+0x400)
	write(1, m.Space.Base(5)+0x400)
	write(5, m.Space.Base(9)+0x800) // node 5's dirty line: will be lost
	m.E.Run()

	// Kill node 5 one millisecond in; node 1's read provides detection.
	m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 5}, flashfc.Millisecond)
	m.E.At(flashfc.Millisecond+10*flashfc.Microsecond, func() {
		m.Nodes[1].CPU.Submit(flashfc.TouchOp(m, 5))
	})

	if !m.RunUntilRecovered(5 * flashfc.Second) {
		log.Fatal("recovery did not complete")
	}
	pt := m.Aggregate()
	fmt.Println("hardware recovery complete:")
	fmt.Printf("  P1 (initiation)      %10v\n", pt.P1)
	fmt.Printf("  P1-2 (dissemination) %10v\n", pt.P12)
	fmt.Printf("  P1-3 (interconnect)  %10v\n", pt.P123)
	fmt.Printf("  total                %10v\n", pt.Total)
	fmt.Printf("  gossip rounds: %d, participants: %d\n", pt.MaxRounds, pt.Participants)

	res := m.VerifyMemory(0, 1)
	fmt.Printf("\nmemory sweep: %v\n", res)
	switch {
	case !res.OK():
		log.Fatal("containment violated!")
	default:
		fmt.Println("containment verified: surviving data intact,",
			"lost lines bus-error exactly as they should.")
	}

	// The same experiment at scale is one Campaign API call: four
	// node-failure validation runs with derived seeds, fanned out over the
	// CPUs, each filling caches, injecting, recovering and sweeping memory.
	vcfg := flashfc.DefaultValidationConfig()
	vcfg.Nodes = 16
	vcfg.MemBytes = 256 << 10
	vcfg.L2Bytes = 64 << 10
	out := flashfc.RunCampaign(
		flashfc.CampaignConfig{Seed: 1, Runs: 4},
		flashfc.ValidationCampaign{Config: vcfg, Fault: flashfc.NodeFailure},
	)
	passed := 0
	for _, r := range out.Values() {
		if r.OK() {
			passed++
		}
	}
	fmt.Printf("\ncampaign: %d/%d seeded node failures contained (%v)\n",
		passed, len(out.Runs), out.Stats)
	if passed != len(out.Runs) {
		log.Fatal("campaign found a containment failure")
	}
}
