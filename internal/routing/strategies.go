package routing

import "flashfc/internal/topology"

// Paper is the paper's policy: dimension-order/e-cube pristine routing, a
// full two-phase τ drain, and a complete up*/down* rewrite of every live
// router's row on the surviving graph (§4.4).
var Paper Strategy = paperStrategy{}

// Incremental patches only the table entries whose pristine route crosses a
// dead link or router, taking the patched values from the up*/down* tables,
// behind a single-phase drain. Routes the fault never touched keep their
// pristine (minimal) paths and cost nothing to reprogram.
var Incremental Strategy = incrementalStrategy{}

// Adaptive is fault-region-aware rerouting without a drain: broken entries
// are repaired with up*/down* routes computed on a view that additionally
// avoids the links internal to the fault region (the dead elements and
// their surrounding ring), steering repaired traffic around the
// neighborhood of the fault rather than along its edge. Tables change under
// live traffic; in-flight packets reroute mid-journey or are dropped.
var Adaptive Strategy = adaptiveStrategy{}

func init() {
	Register(Paper)
	Register(Incremental)
	Register(Adaptive)
}

type paperStrategy struct{}

func (paperStrategy) Name() string { return "paper" }

func (paperStrategy) Drain() DrainKind { return DrainFull }

func (paperStrategy) PristineTables(t *topology.Topology) topology.Tables {
	return topology.DefaultTables(t)
}

func (paperStrategy) RepairTables(v *topology.View, bft *topology.BFT) Repair {
	n := v.T.Routers()
	per := make([]int, n)
	for r := range per {
		per[r] = n // full row rewrite, the paper's charge model
	}
	return Repair{Tables: topology.UpDownTables(v, bft), PatchedPerRouter: per}
}

type incrementalStrategy struct{}

func (incrementalStrategy) Name() string { return "incremental" }

func (incrementalStrategy) Drain() DrainKind { return DrainPartial }

func (incrementalStrategy) PristineTables(t *topology.Topology) topology.Tables {
	return topology.DefaultTables(t)
}

func (incrementalStrategy) RepairTables(v *topology.View, bft *topology.BFT) Repair {
	return patchBroken(v, bft, topology.UpDownTables(v, bft))
}

type adaptiveStrategy struct{}

func (adaptiveStrategy) Name() string { return "adaptive" }

func (adaptiveStrategy) Drain() DrainKind { return DrainNone }

func (adaptiveStrategy) PristineTables(t *topology.Topology) topology.Tables {
	return topology.DefaultTables(t)
}

func (adaptiveStrategy) RepairTables(v *topology.View, bft *topology.BFT) Repair {
	donor, orient := topology.UpDownTables(v, bft), bft
	if avoid := avoidRegionView(v); avoid != nil {
		if root := avoid.ElectRoot(); root >= 0 {
			abft := avoid.BFS(root)
			aud := topology.UpDownTables(avoid, abft)
			if coversPairs(bft, aud) {
				donor, orient = aud, abft
			}
		}
	}
	return patchBroken(v, orient, donor)
}

// brokenEntries reports, per live (router, destination) pair, whether the
// pristine route dead-ends: its walk crosses a dead link or router before
// reaching the destination. Entries toward dead destinations count as
// broken (the repair invalidates them). The pristine next-hop pointers for
// one destination form a functional graph, so each destination costs one
// memoized sweep.
func brokenEntries(v *topology.View, pristine topology.Tables) [][]bool {
	n := v.T.Routers()
	broken := make([][]bool, n)
	for r := range broken {
		broken[r] = make([]bool, n)
	}
	const (
		unknown = iota
		ok
		bad
		walking
	)
	state := make([]int, n)
	var path []int
	for d := 0; d < n; d++ {
		if !v.RouterUp[d] {
			for r := 0; r < n; r++ {
				if v.RouterUp[r] {
					broken[r][d] = true
				}
			}
			continue
		}
		for i := range state {
			state[i] = unknown
		}
		state[d] = ok
		for r := 0; r < n; r++ {
			if !v.RouterUp[r] || state[r] != unknown {
				continue
			}
			path = path[:0]
			cur, verdict := r, unknown
			for verdict == unknown {
				switch state[cur] {
				case ok, bad:
					verdict = state[cur]
					continue
				case walking:
					verdict = bad // pointer loop: certainly broken
					continue
				}
				state[cur] = walking
				path = append(path, cur)
				p := pristine[cur][d]
				if p < 0 {
					verdict = bad
					continue
				}
				a := v.T.Adjacency(cur)[p]
				if !v.Usable(cur, a) {
					verdict = bad
					continue
				}
				cur = a.To
			}
			for _, q := range path {
				state[q] = verdict
				if verdict == bad {
					broken[q][d] = true
				}
			}
		}
	}
	return broken
}

// patchBroken rewrites the broken pristine entries with the donor tables'
// values, then drives the mix to deadlock freedom. Intact entries form
// closed suffixes (the pristine walk from any router on an intact route is
// itself intact), so a repaired route is a donor prefix followed by a
// pristine suffix and always terminates. Deadlock freedom is restored by a
// fixpoint: any used turn that enters a router on a down channel and leaves
// on an up channel (under orient, the orientation the donor routes by) has
// both its entries patched to the donor. At the fixpoint no route ever
// turns down→up, which makes the channel-dependency graph acyclic by the
// up*/down* ordering argument — up-traversals strictly decrease the
// (level, id) potential, down-traversals increase it, and no edge returns
// from the down class to the up class. Every patch moves an entry
// irrevocably to its donor value, so the fixpoint terminates at worst at
// the pure donor tables. A final dependency check guards the argument; a
// residual cycle (possible only in orientation corner cases on split
// views) falls back to the full donor rewrite.
func patchBroken(v *topology.View, orient *topology.BFT, donor topology.Tables) Repair {
	t := v.T
	n := t.Routers()
	if orient == nil {
		return fullRepair(n, donor, false)
	}
	pristine := topology.DefaultTables(t)
	broken := brokenEntries(v, pristine)
	tb := make(topology.Tables, n)
	per := make([]int, n)
	isDonor := make([][]bool, n)
	for r := 0; r < n; r++ {
		tb[r] = append([]int(nil), pristine[r]...)
		isDonor[r] = make([]bool, n)
	}
	patch := func(r, d int) bool {
		if isDonor[r][d] {
			return false
		}
		isDonor[r][d] = true
		if tb[r][d] != donor[r][d] {
			tb[r][d] = donor[r][d]
			per[r]++
		}
		return true
	}
	for r := 0; r < n; r++ {
		if !v.RouterUp[r] {
			continue
		}
		for d := 0; d < n; d++ {
			if d != r && broken[r][d] {
				patch(r, d)
			}
		}
	}
	// A minimal patch often suffices (it always does when nothing broke).
	// When the mix deadlocks, drive it down→up-free; if even that leaves a
	// cycle (orientation corner cases on split views), install the donor.
	if !tb.DependencyAcyclic(v) {
		downUpFixpoint(v, orient, donor, tb, patch)
		if !tb.DependencyAcyclic(v) {
			return fullRepair(n, donor, true)
		}
	}
	return Repair{Tables: tb, PatchedPerRouter: per}
}

// downUpFixpoint patches every used down→up turn's entries to the donor
// until none remain. Each patch moves an entry irrevocably to its donor
// value, so the loop terminates, at worst at the pure donor tables.
func downUpFixpoint(v *topology.View, orient *topology.BFT, donor, tb topology.Tables, patch func(r, d int) bool) {
	t := v.T
	n := t.Routers()
	for changed := true; changed; {
		changed = false
		for r := 0; r < n; r++ {
			if !v.RouterUp[r] {
				continue
			}
			adjR := t.Adjacency(r)
			for d := 0; d < n; d++ {
				pOut := tb[r][d]
				if d == r || pOut < 0 {
					continue
				}
				out := adjR[pOut]
				if !v.Usable(r, out) || !orient.UpTraversal(r, out) {
					continue // only an up out-hop can complete a down→up turn
				}
				for _, a := range adjR {
					q := a.To
					if !v.Usable(r, a) {
						continue
					}
					pq := tb[q][d]
					if pq < 0 || t.Adjacency(q)[pq].To != r {
						continue // q does not route d through r
					}
					if orient.UpTraversal(q, t.Adjacency(q)[pq]) {
						continue // q→r is up; up→up and up→down are safe
					}
					patchedOut := patch(r, d)
					if patch(q, d) || patchedOut {
						changed = true
					}
					if patchedOut {
						break // (r,d)'s out-hop changed; recheck next sweep
					}
				}
			}
		}
	}
}

// fullRepair is the complete donor rewrite — the paper's charge model.
func fullRepair(n int, donor topology.Tables, fallback bool) Repair {
	per := make([]int, n)
	for r := range per {
		per[r] = n
	}
	return Repair{Tables: donor, PatchedPerRouter: per, Fallback: fallback}
}

// avoidRegionView returns v with the links internal to the fault region —
// links both of whose endpoints are dead or adjacent to a dead element —
// additionally failed, or nil when the view has no faults. Live routers
// inside the region keep their links to the outside, so they stay
// deliverable; only the region-internal shortcuts are shed.
func avoidRegionView(v *topology.View) *topology.View {
	t := v.T
	region := make([]bool, t.Routers())
	faulty := false
	for r, up := range v.RouterUp {
		if !up {
			region[r] = true
			faulty = true
		}
	}
	for i, l := range t.Links() {
		if !v.LinkUp[i] {
			region[l.A] = true
			region[l.B] = true
			faulty = true
		}
	}
	if !faulty {
		return nil
	}
	avoid := v.Clone()
	for i, l := range t.Links() {
		if region[l.A] && region[l.B] {
			avoid.LinkUp[i] = false
		}
	}
	return avoid
}

// coversPairs reports whether tb reaches every ordered pair the
// dissemination BFT spans — the test that region avoidance did not strand
// anyone the plain up*/down* repair would serve.
func coversPairs(bft *topology.BFT, tb topology.Tables) bool {
	for r, dr := range bft.Dist {
		if dr < 0 {
			continue
		}
		for d, dd := range bft.Dist {
			if dd < 0 || d == r {
				continue
			}
			if tb[r][d] < 0 {
				return false
			}
		}
	}
	return true
}
