// Package routing makes the interconnect-recovery routing policy a
// strategy: one object owns the pristine-table generation, the post-fault
// table repair, and the drain discipline P3 runs before new tables take
// effect. The paper's behaviour — dimension-order/e-cube pristine routing,
// a full two-phase τ drain, and a complete up*/down* rewrite on the
// surviving graph (§4.4) — is the `paper` strategy and stays byte-identical
// to the pre-strategy code path. Alternatives trade the global drain for
// speed: `incremental` patches only the routes a fault actually broke
// behind a single-phase drain, and `adaptive` reroutes around the fault
// region without draining at all. Every strategy must keep the channel-
// dependency graph of its installed tables acyclic (deadlock freedom);
// repairs that cannot, fall back to the full up*/down* rewrite.
package routing

import (
	"fmt"
	"sort"

	"flashfc/internal/topology"
)

// DrainKind is the discipline P3 applies between fault isolation and
// installing repaired tables.
type DrainKind int

const (
	// DrainFull is the paper's two-phase agreement: every node waits for τ
	// of normal-lane silence, votes, then confirms in a second barrier that
	// nothing arrived since the vote (§4.4). Restarted until clean.
	DrainFull DrainKind = iota
	// DrainPartial is a single-phase drain: wait for τ of silence, then one
	// barrier — no confirm phase, so a packet racing the vote may still be
	// in flight when tables change.
	DrainPartial
	// DrainNone installs repaired tables immediately after isolation;
	// in-flight packets are rerouted (or dropped) mid-journey.
	DrainNone
)

func (k DrainKind) String() string {
	switch k {
	case DrainFull:
		return "full"
	case DrainPartial:
		return "partial"
	case DrainNone:
		return "none"
	default:
		return "?"
	}
}

// Repair is the outcome of a strategy's post-fault table computation.
type Repair struct {
	// Tables is the complete table set to install (strategies that patch
	// still return full tables; unpatched entries equal the pristine ones).
	Tables topology.Tables
	// PatchedPerRouter[r] is how many entries of router r's row the repair
	// rewrites — the per-node reprogramming work P3 charges for. The paper
	// strategy rewrites whole rows, so every live router counts n.
	PatchedPerRouter []int
	// Fallback reports that the strategy abandoned its cheaper repair (the
	// patched tables' channel-dependency graph had a cycle, or region
	// avoidance disconnected live routers) and installed the full
	// up*/down* rewrite instead.
	Fallback bool
}

// TotalPatched sums the per-router rewrite counts.
func (r Repair) TotalPatched() int {
	n := 0
	for _, p := range r.PatchedPerRouter {
		n += p
	}
	return n
}

// Strategy owns one routing + reprogramming policy end to end.
type Strategy interface {
	// Name is the registry key (`-routing` flag value).
	Name() string
	// PristineTables is the fault-free routing installed at machine build.
	PristineTables(t *topology.Topology) topology.Tables
	// RepairTables computes the tables to install on the surviving graph.
	// v is the stabilized post-dissemination view, bft the dissemination
	// BFT rooted at the elected root. Deterministic: every agent computes
	// the identical repair from its converged view.
	RepairTables(v *topology.View, bft *topology.BFT) Repair
	// Drain is the discipline P3 runs before installing the repair.
	Drain() DrainKind
}

var registry = map[string]Strategy{}

// Register adds a strategy under its name; duplicate names panic.
func Register(s Strategy) {
	name := s.Name()
	if name == "" {
		panic("routing: strategy with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("routing: duplicate strategy %q", name))
	}
	registry[name] = s
}

// Get resolves a strategy by name; "" means the paper default.
func Get(name string) (Strategy, error) {
	if name == "" {
		name = "paper"
	}
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("routing: unknown strategy %q (have %v)", name, Names())
	}
	return s, nil
}

// Names lists the registered strategies, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
