package routing

import (
	"math/rand"
	"testing"

	"flashfc/internal/topology"
)

// repairFor runs one strategy's repair on a failed view the way P3 does:
// stabilized view, BFT from the elected root.
func repairFor(t *testing.T, s Strategy, v *topology.View) Repair {
	t.Helper()
	_, bft := v.DiameterBound()
	if bft == nil {
		t.Fatal("no live routers")
	}
	return s.RepairTables(v, bft)
}

// checkRepair verifies the strategy contract on a view: every pair the
// dissemination BFT spans (the root component — the part of the machine
// that survives recovery, matching what the paper's repair serves) routes
// end to end over live elements, and the installed tables'
// channel-dependency graph is acyclic.
func checkRepair(t *testing.T, s Strategy, v *topology.View) Repair {
	t.Helper()
	rep := repairFor(t, s, v)
	if !rep.Tables.DependencyAcyclic(v) {
		t.Fatalf("%s: channel-dependency cycle", s.Name())
	}
	_, bft := v.DiameterBound()
	var comp []int
	for r, d := range bft.Dist {
		if d >= 0 {
			comp = append(comp, r)
		}
	}
	for _, r := range comp {
		for _, d := range comp {
			if r == d {
				continue
			}
			path := rep.Tables.Route(v.T, r, d)
			if path == nil {
				t.Fatalf("%s: no route %d→%d", s.Name(), r, d)
			}
			for i := 0; i < len(path)-1; i++ {
				hop := path[i]
				ok := false
				for _, a := range v.T.Adjacency(hop) {
					if a.To == path[i+1] && v.Usable(hop, a) {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("%s: route %d→%d crosses dead hop %d→%d",
						s.Name(), r, d, hop, path[i+1])
				}
			}
		}
	}
	return rep
}

func TestRegistry(t *testing.T) {
	want := []string{"adaptive", "incremental", "paper"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if s, err := Get(""); err != nil || s.Name() != "paper" {
		t.Fatalf(`Get("") = %v, %v; want paper`, s, err)
	}
	if _, err := Get("nosuch"); err == nil {
		t.Fatal("Get(nosuch) did not fail")
	}
	if Paper.Drain() != DrainFull || Incremental.Drain() != DrainPartial || Adaptive.Drain() != DrainNone {
		t.Fatal("drain kinds drifted from their documented disciplines")
	}
}

func TestPristineTablesMatchDefaults(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.NewMesh(4, 2), topology.NewHypercube(3)} {
		want := topology.DefaultTables(topo)
		for _, name := range Names() {
			s, _ := Get(name)
			got := s.PristineTables(topo)
			for r := range want {
				for d := range want[r] {
					if got[r][d] != want[r][d] {
						t.Fatalf("%s pristine[%d][%d] = %d, want %d", name, r, d, got[r][d], want[r][d])
					}
				}
			}
		}
	}
}

func TestPaperRepairIsFullUpDown(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	v := topology.NewView(topo)
	v.FailRouter(5)
	_, bft := v.DiameterBound()
	rep := Paper.RepairTables(v, bft)
	want := topology.UpDownTables(v, bft)
	for r := range want {
		for d := range want[r] {
			if rep.Tables[r][d] != want[r][d] {
				t.Fatalf("paper repair[%d][%d] = %d, want up*/down* %d", r, d, rep.Tables[r][d], want[r][d])
			}
		}
	}
	if rep.Fallback {
		t.Fatal("paper repair reported a fallback")
	}
	for r, p := range rep.PatchedPerRouter {
		if p != topo.Routers() {
			t.Fatalf("paper PatchedPerRouter[%d] = %d, want full row %d", r, p, topo.Routers())
		}
	}
}

func TestIncrementalSingleLink(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	v := topology.NewView(topo)
	// Fail one horizontal link in the middle of the mesh.
	for i, l := range topo.Links() {
		if l.A == 5 && l.B == 6 || l.A == 6 && l.B == 5 {
			v.FailLink(i)
		}
	}
	rep := checkRepair(t, Incremental, v)
	if rep.Fallback {
		t.Fatal("incremental fell back on a single link failure")
	}
	pristine := topology.DefaultTables(topo)
	patched, intact := 0, 0
	for r := 0; r < topo.Routers(); r++ {
		patched += rep.PatchedPerRouter[r]
		for d := 0; d < topo.Routers(); d++ {
			if rep.Tables[r][d] == pristine[r][d] {
				intact++
			}
		}
	}
	if patched == 0 {
		t.Fatal("incremental patched nothing across a dead link")
	}
	if patched >= topo.Routers()*topo.Routers()/2 {
		t.Fatalf("incremental patched %d entries — not incremental", patched)
	}
	if intact == 0 {
		t.Fatal("no pristine entries survived")
	}
}

func TestIncrementalFalseAlarmPatchesNothing(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.NewMesh(4, 4), topology.NewHypercube(4)} {
		v := topology.NewView(topo)
		rep := checkRepair(t, Incremental, v)
		if got := rep.TotalPatched(); got != 0 {
			t.Fatalf("false alarm patched %d entries", got)
		}
		rep = checkRepair(t, Adaptive, v)
		if got := rep.TotalPatched(); got != 0 {
			t.Fatalf("adaptive false alarm patched %d entries", got)
		}
	}
}

func TestAdaptiveRoutesAroundDeadRouter(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	v := topology.NewView(topo)
	v.FailRouter(5)
	rep := checkRepair(t, Adaptive, v)
	if rep.TotalPatched() == 0 {
		t.Fatal("adaptive patched nothing around a dead router")
	}
}

// TestStrategiesQuickSoundness extends the topology package's
// TestQuickUpDownSoundness property to every registered strategy:
// random-size mesh and hypercube graphs under random router and
// multi-link failures must yield acyclic, fully-connecting tables.
func TestStrategiesQuickSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		var topo *topology.Topology
		if rng.Intn(2) == 0 {
			topo = topology.NewMesh(2+rng.Intn(4), 2+rng.Intn(4))
		} else {
			topo = topology.NewHypercube(2 + rng.Intn(3))
		}
		v := topology.NewView(topo)
		for r := 0; r < topo.Routers(); r++ {
			if rng.Float64() < 0.10 {
				v.FailRouter(r)
			}
		}
		for l := range v.LinkUp {
			if rng.Float64() < 0.10 {
				v.FailLink(l)
			}
		}
		if v.ElectRoot() < 0 {
			continue
		}
		for _, name := range Names() {
			s, _ := Get(name)
			checkRepair(t, s, v)
		}
	}
}

// TestStrategiesUnderRandomFailures is the property test: every strategy
// must produce deadlock-free, fully-connecting tables on random surviving
// graphs of both topology kinds, including multi-link failures.
func TestStrategiesUnderRandomFailures(t *testing.T) {
	topos := map[string]*topology.Topology{
		"mesh4x4":    topology.NewMesh(4, 4),
		"hypercube4": topology.NewHypercube(4),
	}
	for tn, topo := range topos {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 40; trial++ {
			v := topology.NewView(topo)
			// Mix of router and multi-link failures.
			if trial%3 == 0 {
				v.FailRouter(rng.Intn(topo.Routers()))
			}
			for k := rng.Intn(3); k > 0; k-- {
				v.FailLink(rng.Intn(len(topo.Links())))
			}
			if v.ElectRoot() < 0 {
				continue
			}
			for _, name := range Names() {
				s, _ := Get(name)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s/%s trial %d panicked: %v", tn, name, trial, r)
						}
					}()
					checkRepair(t, s, v)
				}()
			}
		}
	}
}
