// Package workload provides the programs the experiments run on simulated
// FLASH machines: the stand-alone cache-fill validation program of §5.2 and
// (in parallelmake.go) the Hive parallel-make model of §5.1.
package workload

import (
	"math/rand"

	"flashfc/internal/coherence"
	"flashfc/internal/machine"
	"flashfc/internal/magic"
	"flashfc/internal/proc"
)

// Filler is the §5.2 validation program: every processor fills half its
// cache with lines chosen at random from the valid address range, each
// fetched in shared or exclusive mode at random (exclusive fetches store a
// fresh token half the time, to give writebacks something to carry).
type Filler struct {
	M *machine.Machine
	// FillLines is the number of lines each node touches (default: half
	// the cache capacity, as in the paper).
	FillLines int
	// WriteFraction is the probability an exclusive fetch also stores.
	WriteFraction float64

	// OnHalfDone fires once when half of the fill operations have
	// completed — the moment the validation experiments inject their
	// fault, so that real transactions are in flight (§5.2).
	OnHalfDone func()

	rng      *rand.Rand
	pending  int
	total    int
	halfSeen bool
	done     func()
}

// NewFiller returns a filler for m with paper defaults.
func NewFiller(m *machine.Machine) *Filler {
	return &Filler{
		M:             m,
		FillLines:     m.Nodes[0].Cache.CapacityLines() / 2,
		WriteFraction: 0.5,
		rng:           rand.New(rand.NewSource(m.Cfg.Seed + 0x5eed)),
	}
}

// NewFillerSeeded returns a filler drawing from its own seed rather than
// the machine's. Forked runs use it for the per-run post-fork burst: every
// fork of a warm snapshot replays an identical warm-up, so the burst is the
// only place the run seed enters the workload.
func NewFillerSeeded(m *machine.Machine, seed int64) *Filler {
	f := NewFiller(m)
	f.rng = rand.New(rand.NewSource(seed + 0x5eed))
	return f
}

// Start submits the fill operations on every node; done fires when all
// processors have completed their fills.
func (f *Filler) Start(done func()) {
	f.done = done
	totalLines := uint64(f.M.Cfg.Nodes) * f.M.Cfg.MemBytes / 128
	for _, n := range f.M.Nodes {
		for i := 0; i < f.FillLines; i++ {
			line := coherence.Addr(uint64(f.rng.Int63n(int64(totalLines))) * 128)
			f.pending++
			op := proc.Op{Kind: proc.OpRead, Addr: line, Done: f.complete(line, 0)}
			if f.rng.Intn(2) == 0 {
				if f.rng.Float64() < f.WriteFraction {
					tok := f.M.Oracle.NextToken()
					op = proc.Op{Kind: proc.OpWrite, Addr: line, Token: tok, Done: f.complete(line, tok)}
				} else {
					op = proc.Op{Kind: proc.OpReadExclusive, Addr: line, Done: f.complete(line, 0)}
				}
			}
			n.CPU.Submit(op)
		}
	}
	f.total = f.pending
	if f.pending == 0 {
		done()
	}
}

func (f *Filler) complete(line coherence.Addr, tok uint64) func(magic.Result) {
	return func(r magic.Result) {
		if r.Err == nil && tok != 0 {
			// The store committed: it is now the expected content.
			f.M.Oracle.Wrote(line, tok)
		}
		f.pending--
		if !f.halfSeen && f.pending <= f.total/2 {
			f.halfSeen = true
			if f.OnHalfDone != nil {
				f.OnHalfDone()
			}
		}
		if f.pending == 0 && f.done != nil {
			d := f.done
			f.done = nil
			d()
		}
	}
}

// Pending reports fill operations still outstanding.
func (f *Filler) Pending() int { return f.pending }

// TouchOp builds a single read of node target's memory: the minimal probe
// that makes a quiet fault observable (Fig 4.3's request-to-failed-node).
func TouchOp(m *machine.Machine, target int) proc.Op {
	return proc.Op{Kind: proc.OpRead, Addr: m.Space.Base(target) + 0x80}
}
