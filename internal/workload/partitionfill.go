package workload

import (
	"math/rand"
	"sync/atomic"

	"flashfc/internal/coherence"
	"flashfc/internal/machine"
	"flashfc/internal/magic"
	"flashfc/internal/proc"
)

// PartitionFill is the fill workload for partitioned machines. Filler keeps
// a machine-wide pending count that every completion callback mutates, which
// is fine on one engine but a data race when regions run on parallel
// workers. PartitionFill is region-safe by construction:
//
//   - each node draws its accesses from its own rand stream, derived from
//     (machine seed, node id), so the program is identical no matter how
//     node start-up interleaves;
//   - completion callbacks touch nothing but an atomic remaining counter —
//     no oracle writes, no shared RNG, no half-done hooks;
//   - drivers poll Done() between Advance windows instead of receiving a
//     callback from inside one.
//
// Accesses are mostly local (LocalFraction of them hit the node's own
// memory); the rest read a uniformly random remote node's memory, which on
// a striped mesh makes a proportional share of traffic cross region
// boundaries — the load the lookahead windows must absorb.
type PartitionFill struct {
	M *machine.Machine
	// OpsPerNode is the number of accesses each node issues (default: half
	// the cache capacity, matching Filler).
	OpsPerNode int
	// LocalFraction is the probability an access targets the issuing
	// node's own memory (default 0.875, i.e. 1/8 remote).
	LocalFraction float64
	// ExclusiveFraction is the probability an access fetches exclusive
	// rather than shared (default 0.5). Exclusive fetches never store:
	// oracle bookkeeping is machine-wide state that parallel completion
	// callbacks must not touch.
	ExclusiveFraction float64

	remaining atomic.Int64
	total     int64
}

// NewPartitionFill returns a fill workload for m with defaults.
func NewPartitionFill(m *machine.Machine) *PartitionFill {
	return &PartitionFill{
		M:                 m,
		OpsPerNode:        m.Nodes[0].Cache.CapacityLines() / 2,
		LocalFraction:     0.875,
		ExclusiveFraction: 0.5,
	}
}

// Start submits every node's accesses. Call it before the first Advance;
// poll Done between windows.
func (f *PartitionFill) Start() {
	nodes := f.M.Cfg.Nodes
	lines := int64(f.M.Cfg.MemBytes / 128)
	f.total = int64(nodes) * int64(f.OpsPerNode)
	f.remaining.Store(f.total)
	for id, n := range f.M.Nodes {
		rng := rand.New(rand.NewSource(f.M.Cfg.Seed ^ (int64(id)+1)*0x5851f42d4c957f2d))
		for i := 0; i < f.OpsPerNode; i++ {
			target := id
			if rng.Float64() >= f.LocalFraction {
				target = rng.Intn(nodes)
			}
			addr := f.M.Space.Base(target) + coherence.Addr(rng.Int63n(lines)*128)
			op := proc.Op{Kind: proc.OpRead, Addr: addr, Done: f.complete}
			if rng.Float64() < f.ExclusiveFraction {
				op.Kind = proc.OpReadExclusive
			}
			n.CPU.Submit(op)
		}
	}
}

func (f *PartitionFill) complete(magic.Result) { f.remaining.Add(-1) }

// Done reports whether every access has completed (or failed).
func (f *PartitionFill) Done() bool { return f.remaining.Load() == 0 }

// Remaining reports accesses still outstanding.
func (f *PartitionFill) Remaining() int64 { return f.remaining.Load() }

// Total reports the number of accesses submitted by Start.
func (f *PartitionFill) Total() int64 { return f.total }
