package workload

import (
	"testing"

	"flashfc/internal/coherence"
	"flashfc/internal/machine"
	"flashfc/internal/magic"
	"flashfc/internal/sim"
)

func newMachine(t *testing.T, seed int64) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig(4)
	cfg.Seed = seed
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	return machine.New(cfg)
}

func TestFillerFillsCaches(t *testing.T) {
	m := newMachine(t, 1)
	f := NewFiller(m)
	if f.FillLines != m.Nodes[0].Cache.CapacityLines()/2 {
		t.Fatalf("default FillLines = %d", f.FillLines)
	}
	done := false
	f.Start(func() { done = true })
	m.E.Run()
	if !done {
		t.Fatal("filler never finished")
	}
	if f.Pending() != 0 {
		t.Fatalf("pending = %d", f.Pending())
	}
	// Every node should hold a healthy number of lines (collisions and
	// invalidations make exact counts workload-dependent).
	for _, n := range m.Nodes {
		if n.Cache.Len() < f.FillLines/2 {
			t.Fatalf("node %d cache holds %d lines, want >= %d",
				n.ID, n.Cache.Len(), f.FillLines/2)
		}
	}
}

func TestFillerHalfDoneFiresOnce(t *testing.T) {
	m := newMachine(t, 2)
	f := NewFiller(m)
	f.FillLines = 32
	halves := 0
	f.OnHalfDone = func() { halves++ }
	f.Start(func() {})
	m.E.Run()
	if halves != 1 {
		t.Fatalf("OnHalfDone fired %d times", halves)
	}
}

func TestFillerRecordsWritesInOracle(t *testing.T) {
	m := newMachine(t, 3)
	f := NewFiller(m)
	f.FillLines = 64
	f.Start(func() {})
	m.E.Run()
	written := m.Oracle.WrittenLines()
	if len(written) == 0 {
		t.Fatal("no writes recorded")
	}
	// Spot-check: a committed write's token is readable.
	a := written[0]
	home := m.Space.Home(a)
	var res magic.Result
	m.Nodes[home].Ctrl.Read(a, func(r magic.Result) { res = r })
	m.E.Run()
	if res.Err != nil || res.Token != m.Oracle.ExpectedToken(a) {
		t.Fatalf("read of written line: %+v, want %x", res, m.Oracle.ExpectedToken(a))
	}
}

func TestFillerDeterministicPerSeed(t *testing.T) {
	run := func() int {
		m := newMachine(t, 7)
		f := NewFiller(m)
		f.FillLines = 32
		f.Start(func() {})
		m.E.Run()
		return len(m.Oracle.WrittenLines())
	}
	if run() != run() {
		t.Fatal("filler not deterministic for a fixed seed")
	}
}

func TestTouchOp(t *testing.T) {
	m := newMachine(t, 4)
	op := TouchOp(m, 2)
	if op.Kind != 0 /* OpRead */ {
		t.Fatal("touch should be a read")
	}
	if m.Space.Home(op.Addr) != 2 {
		t.Fatalf("touch addr %v not homed on 2", op.Addr)
	}
	done := false
	op.Done = func(r magic.Result) { done = r.Err == nil }
	m.Nodes[0].CPU.Submit(op)
	m.E.RunUntil(sim.Millisecond)
	if !done {
		t.Fatal("touch read failed")
	}
	_ = coherence.Addr(0)
}
