// Package core implements the paper's primary contribution: the distributed
// hardware-fault recovery algorithm of §4. One Agent runs per functioning
// node. After a Table 4.1 trigger, the agents execute four phases:
//
//	P1 recovery initiation    — drop the processor into recovery, diagnose
//	                            the immediate vicinity, determine the set of
//	                            closest working neighbors (cwn), and spread
//	                            a ping wave that drops every good node into
//	                            recovery (§4.2).
//	P2 information dissemination — neighbor gossip rounds merging link/node
//	                            state until every node knows the global
//	                            system state, terminated after 2h rounds
//	                            where h is the height of a breadth-first
//	                            tree rooted at a deterministically elected
//	                            node (§4.3).
//	P3 interconnect recovery  — isolate failed regions, drain stalled
//	                            traffic with a two-phase τ agreement, and
//	                            reprogram the routing tables deadlock-free
//	                            (§4.4).
//	P4 coherence recovery     — flush all caches home, barrier, sweep the
//	                            directories marking lost lines incoherent,
//	                            barrier, resume (§4.5).
//
// All local recovery computation is charged at the uncached-execution rate
// (the processor runs entirely from uncached space during recovery, §4.1),
// and all recovery communication uses the two dedicated virtual lanes with
// explicit source routes.
package core

import (
	"flashfc/internal/topology"
)

// tri is three-valued knowledge about a component: unknown, up, or down.
// Knowledge is monotone during one recovery epoch: down wins over up wins
// over unknown, so merging gossip is commutative, associative, idempotent.
type tri uint8

const (
	triUnknown tri = iota
	triUp
	triDown
)

func mergeTri(a, b tri) tri {
	if a == triDown || b == triDown {
		return triDown
	}
	if a == triUp || b == triUp {
		return triUp
	}
	return triUnknown
}

// sysState is one node's current knowledge of the machine: per-node, per-
// router and per-link liveness. This is the (LState, NState) pair of §4.3
// with router state tracked separately because a dead node's router can
// still carry transit traffic.
type sysState struct {
	Nodes   []tri
	Routers []tri
	Links   []tri
}

func newSysState(nodes, links int) *sysState {
	return &sysState{
		Nodes:   make([]tri, nodes),
		Routers: make([]tri, nodes),
		Links:   make([]tri, links),
	}
}

func (s *sysState) clone() *sysState {
	return &sysState{
		Nodes:   append([]tri(nil), s.Nodes...),
		Routers: append([]tri(nil), s.Routers...),
		Links:   append([]tri(nil), s.Links...),
	}
}

// merge folds other into s and reports whether anything changed.
func (s *sysState) merge(other *sysState) bool {
	changed := false
	for i, v := range other.Nodes {
		if m := mergeTri(s.Nodes[i], v); m != s.Nodes[i] {
			s.Nodes[i] = m
			changed = true
		}
	}
	for i, v := range other.Routers {
		if m := mergeTri(s.Routers[i], v); m != s.Routers[i] {
			s.Routers[i] = m
			changed = true
		}
	}
	for i, v := range other.Links {
		if m := mergeTri(s.Links[i], v); m != s.Links[i] {
			s.Links[i] = m
			changed = true
		}
	}
	return changed
}

// words is the serialized size of the state in 32-bit words, used to charge
// gossip marshaling cost and packet serialization: one word per entry (the
// firmware ships its state arrays as-is) plus a header.
func (s *sysState) words() int {
	return len(s.Nodes) + len(s.Routers) + len(s.Links) + 4
}

// view converts the state into a topology.View for graph computations.
// Unknown components are treated as down: by the time views are used (after
// dissemination stabilizes) everything reachable has been resolved, and
// anything still unknown is unreachable.
func (s *sysState) view(t *topology.Topology) *topology.View {
	v := topology.NewView(t)
	for r, st := range s.Routers {
		if st != triUp {
			v.RouterUp[r] = false
		}
	}
	for l, st := range s.Links {
		if st != triUp {
			v.LinkUp[l] = false
		}
	}
	return v
}

// functioningNodes lists nodes known up, ascending.
func (s *sysState) functioningNodes() []int {
	var out []int
	for i, st := range s.Nodes {
		if st == triUp {
			out = append(out, i)
		}
	}
	return out
}
