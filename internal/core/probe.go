package core

import (
	"sort"

	"flashfc/internal/interconnect"
	"flashfc/internal/magic"
	"flashfc/internal/timing"
)

// Phase 1: recovery initiation (§4.2). The node's processor is now running
// recovery code from uncached space; it answers queued pings, diagnoses its
// own router, and explores outward to determine cwn(A): every functioning
// node reachable through a path containing no other functioning node.
//
// Exploration bookkeeping: each link probe holds one unit of `probing`.
// A probe that reaches a live router either resolves immediately (the
// attached node's ping outcome is already known) or registers as a waiter
// on that node's pong; pongs and pong timeouts resolve all waiters at once.

// recoveryCodeRunning is the first act of the recovery code proper.
func (a *Agent) recoveryCodeRunning() {
	a.codeRunning = true
	// Answer pings received while dropping into recovery: the reply is
	// the evidence that this node works (§4.2).
	for _, pd := range a.pongQueue {
		a.sendRec(pd.to, pd.route, interconnect.LaneRecoveryB, &recMsg{Kind: kPong})
	}
	a.pongQueue = nil
	// Diagnose the local router.
	answered := false
	a.Net.ProbeRouter([]int{a.ID}, func() {
		answered = true
		a.st.Routers[a.ID] = triUp
		a.pathTo[a.ID] = []int{a.ID}
		a.exploreFrom(a.ID)
		a.checkExplorationDone()
	})
	epoch := a.epoch
	a.E.After(a.cfg.ProbeTimeout, func() {
		if !answered && a.epoch == epoch && a.phase == PhaseInit {
			// Own router dead: the node cannot reach anyone; shut
			// down cleanly (it is inside a failed region).
			a.isolatedShutdown()
		}
	})
}

// isolatedShutdown stops the node: its failure unit contains a failed
// component and it cannot reach the rest of the machine.
func (a *Agent) isolatedShutdown() {
	a.report.Isolated = true
	a.report.ShutDown = true
	a.setPhase(PhaseShutdown)
	a.watchdog.Cancel()
	a.Ctrl.SetMode(magic.ModeDead)
	if a.cfg.OnComplete != nil {
		a.cfg.OnComplete(a.report)
	}
}

// exploreFrom probes all unexplored links of a reached router (§4.2: probe
// the routers at the end of unexplored links, then ping the attached nodes;
// expansion stops at functioning nodes and failed links).
func (a *Agent) exploreFrom(r int) {
	basePath := a.pathTo[r]
	if basePath == nil {
		return
	}
	for _, adj := range a.Topo.Adjacency(r) {
		if a.explored[adj.Link] {
			continue
		}
		a.explored[adj.Link] = true
		link, far := adj.Link, adj.To
		path := append(append([]int(nil), basePath...), far)
		a.probing++
		a.execInstr(timing.InstrProbeSetup, func() {
			a.probeLink(link, far, path)
		})
	}
}

// probeLink interrogates the router at the end of one link.
func (a *Agent) probeLink(link, far int, path []int) {
	answered := false
	epoch := a.epoch
	a.Net.ProbeRouter(path, func() {
		if a.epoch != epoch || a.phase != PhaseInit {
			return
		}
		answered = true
		a.onRouterAlive(link, far, path)
	})
	a.E.After(a.cfg.ProbeTimeout, func() {
		if answered || a.epoch != epoch || a.phase != PhaseInit {
			return
		}
		// No answer: the link (or the router behind it) is dead. Mark
		// the link down; the router may still be proven alive through
		// another path.
		a.st.Links[link] = triDown
		a.probing--
		a.checkExplorationDone()
	})
}

// onRouterAlive records a live link+router and waits on the attached node's
// ping outcome.
func (a *Agent) onRouterAlive(link, far int, path []int) {
	a.st.Links[link] = triUp
	a.st.Routers[far] = triUp
	if a.pathTo[far] == nil {
		a.pathTo[far] = path
	}
	if alive, known := a.nodePong[far]; known {
		a.settleNode(far, alive)
		a.probing--
		a.checkExplorationDone()
		return
	}
	a.pongWaiters[far]++
	a.ensurePing(far, a.pathTo[far])
}

// ensurePing sends at most one ping per node per epoch and arms its timeout.
func (a *Agent) ensurePing(node int, route []int) {
	if a.pinged[node] {
		return
	}
	a.pinged[node] = true
	a.sendPing(node, route)
	epoch := a.epoch
	a.pongTimer[node] = a.E.After(a.cfg.PingTimeout, func() {
		if a.epoch != epoch {
			return
		}
		if _, known := a.nodePong[node]; !known {
			a.resolveNode(node, false)
		}
	})
}

// onPong handles a pong: the sender has started executing recovery code.
func (a *Agent) onPong(m *recMsg) {
	if _, known := a.nodePong[m.From]; known {
		return
	}
	a.pongTimer[m.From].Cancel()
	a.resolveNode(m.From, true)
}

// resolveNode fixes a node's liveness verdict and releases all probes
// waiting on it.
func (a *Agent) resolveNode(node int, alive bool) {
	a.nodePong[node] = alive
	if alive {
		a.st.Nodes[node] = triUp
	} else {
		a.st.Nodes[node] = triDown
	}
	if a.phase != PhaseInit {
		return
	}
	a.settleNode(node, alive)
	if w := a.pongWaiters[node]; w > 0 {
		a.pongWaiters[node] = 0
		a.probing -= w
		a.checkExplorationDone()
	}
}

// settleNode applies a ping outcome during exploration: a functioning node
// joins cwn and stops expansion; a dead node's router is expanded through.
// Safe to call more than once (cwn membership and link exploration are
// deduplicated). A node whose router path is not yet known is only
// recorded; a later onRouterAlive settles it properly.
func (a *Agent) settleNode(node int, alive bool) {
	if a.pathTo[node] == nil {
		return
	}
	if alive {
		if a.cwnPath[node] == nil {
			a.cwnPath[node] = a.pathTo[node]
			a.cwn = append(a.cwn, node)
		}
		return
	}
	a.exploreFrom(node)
}

// checkExplorationDone finishes P1 once every outstanding probe and ping
// has resolved.
func (a *Agent) checkExplorationDone() {
	if a.phase != PhaseInit || a.probing != 0 {
		return
	}
	sort.Ints(a.cwn)
	a.report.CwnSize = len(a.cwn)
	a.report.P1End = a.E.Now()
	a.startDissemination()
}
