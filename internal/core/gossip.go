package core

import (
	"flashfc/internal/interconnect"
	"flashfc/internal/timing"
)

// Phase 2: information dissemination (§4.3). Each round, a node exchanges
// its (link, node) state with every member of its cwn set and merges what
// it receives. A node gains full knowledge after a number of rounds equal
// to the height of the BFT rooted at it; to terminate consistently, all
// nodes run until round > target, where target = 2h (twice the height of
// the BFT rooted at the deterministically elected root), an upper bound on
// the diameter. Nodes that finish keep echoing their final state so that
// slower nodes never stall ("lame duck" responses).

func (a *Agent) startDissemination() {
	a.setPhase(PhaseDissemination)
	if len(a.cwn) == 0 {
		// Alone in the world: knowledge is already complete.
		a.finishDissemination()
		return
	}
	a.round = 1
	a.target = 1 // grows as knowledge accumulates
	a.stable = 0
	a.sendRound()
}

// gossipWords is the serialized size of a state message.
func (a *Agent) gossipWords() int { return a.st.words() + 4 }

// sendRound serializes the node's current state once and ships it to every
// cwn member, charging the marshaling plus per-destination send costs.
func (a *Agent) sendRound() {
	words := a.gossipWords()
	charge := timing.InstrGossipRoundFixed + words*timing.InstrGossipPerWord +
		len(a.cwn)*timing.InstrGossipPerNeighbor
	round := a.round
	a.spRound = a.cfg.Trace.Begin(a.E.Now(), a.ID, "gossip-round", a.spPhase, int64(round))
	a.execInstr(charge, func() {
		if a.phase != PhaseDissemination || a.round != round {
			return
		}
		a.mGossipRounds.Inc()
		for _, q := range a.cwn {
			a.sendRec(q, a.cwnPath[q], interconnect.LaneRecoveryA, &recMsg{
				Kind: kState, Round: round,
				State: a.st.clone(), Target: a.target, Hint: a.hint,
			})
		}
		a.checkRound()
	})
}

// onState buffers an incoming gossip message and advances the round when
// complete. After dissemination has finished locally, incoming state
// messages get an immediate echo of the final state instead.
func (a *Agent) onState(m *recMsg) {
	if a.phase > PhaseDissemination && a.finalState != nil {
		a.sendRec(m.From, a.routeTo(m.From), interconnect.LaneRecoveryA, &recMsg{
			Kind: kState, Round: m.Round,
			State: a.finalState.clone(), Target: a.target, Hint: a.hint,
		})
		return
	}
	rm := a.inbox[m.Round]
	if rm == nil {
		rm = map[int]*recMsg{}
		a.inbox[m.Round] = rm
	}
	rm[m.From] = m
	a.checkRound()
}

// checkRound merges the current round once all cwn messages are in. The
// merging guard prevents double-scheduling when the last message arrives
// while sendRound's charge is still being paid.
func (a *Agent) checkRound() {
	if a.phase != PhaseDissemination || a.round == 0 || a.merging {
		return
	}
	rm := a.inbox[a.round]
	for _, q := range a.cwn {
		if rm == nil || rm[q] == nil {
			return
		}
	}
	a.merging = true
	// The merge is one pass over the state arrays consulting all the
	// received buffers, so its cost scales with the state size, not the
	// neighbor count.
	charge := 2 * a.gossipWords() * timing.InstrGossipPerWord
	round := a.round
	a.execInstr(charge, func() {
		if a.phase != PhaseDissemination || a.round != round {
			return
		}
		changed := false
		for _, q := range a.cwn {
			m := a.inbox[round][q]
			if a.st.merge(m.State) {
				changed = true
			}
			if m.Target > a.target {
				a.target = m.Target
			}
			if m.Hint > a.hint {
				a.hint = m.Hint
			}
		}
		delete(a.inbox, round)
		if changed {
			a.stable = 0
		} else {
			a.stable++
		}
		a.report.Rounds = round
		a.afterMerge()
	})
}

// afterMerge updates the termination bound and either advances to the next
// round or finishes. The 2h bound is recomputed once the local state is
// stable; with BFT hints enabled a node that already received a hint skips
// its own computation (the §4.3 scheduling optimization) and the final
// tree is computed by everyone in parallel at the end of the phase.
func (a *Agent) afterMerge() {
	if a.stable >= 1 {
		if a.cfg.BFTHints && a.hint > 0 {
			if a.hint > a.target {
				a.target = a.hint
			}
			a.advanceRound()
			return
		}
		// Compute the BFT bound now, charging O(V+E); without hints
		// this computation happens on every stable round and chains
		// between neighbors.
		v := a.st.view(a.Topo)
		charge := timing.InstrBFTPerEdge * (a.Topo.Routers() + len(a.Topo.Links()))
		a.execInstr(charge, func() {
			if a.phase != PhaseDissemination {
				return
			}
			bound, _ := v.DiameterBound()
			if bound < 1 {
				bound = 1
			}
			if bound > a.target {
				a.target = bound
				a.mBFTBoundHits.Inc()
			}
			a.hint = bound
			a.advanceRound()
		})
		return
	}
	a.advanceRound()
}

func (a *Agent) advanceRound() {
	a.merging = false
	a.cfg.Trace.End(a.E.Now(), a.spRound)
	a.spRound = 0
	if a.round >= a.target && a.stable >= 1 {
		a.finishDissemination()
		return
	}
	a.round++
	a.sendRound()
}

// finishDissemination fixes the global view, elects the root, computes the
// breadth-first tree used by all later barriers, determines which failure
// units are doomed, and updates the hardware node map (§4.3).
func (a *Agent) finishDissemination() {
	a.finalState = a.st.clone()
	charge := timing.InstrBFTPerEdge * (a.Topo.Routers() + len(a.Topo.Links()))
	a.execInstr(charge, func() {
		a.view = a.st.view(a.Topo)
		functioning := a.st.functioningNodes()
		if len(functioning) == 0 {
			a.isolatedShutdown()
			return
		}
		a.root = functioning[0]
		a.bft = a.view.BFS(a.root)
		// Participants: functioning nodes reachable from the root.
		// The algorithm assumes no split brain (§4.2).
		a.participants = nil
		a.partSet = map[int]bool{}
		for _, n := range functioning {
			if a.bft.Dist[n] >= 0 {
				a.participants = append(a.participants, n)
				a.partSet[n] = true
			}
		}
		if !a.partSet[a.ID] {
			a.isolatedShutdown()
			return
		}
		// Split-brain guard (§4.2): refuse to recover a minority island.
		if a.cfg.QuorumFraction > 0 &&
			float64(len(a.participants)) < a.cfg.QuorumFraction*float64(a.Topo.Routers()) {
			a.isolatedShutdown()
			return
		}
		// Failure units: a unit with any failed component takes its
		// surviving members down with it after P4 (§4.3).
		failedUnit := a.failedUnits()
		units := a.cfg.FailureUnits
		a.doomed = units != nil && failedUnit[units[a.ID]]
		// Node map: failed nodes and doomed-unit members are marked
		// down so that no new coherence requests target them. A down
		// node whose memory bank interrogates as still served (the
		// CPU-fail/memory-survives model) is additionally marked
		// memory-reachable, so clean lines homed there stay readable
		// instead of bus-erroring.
		for i := 0; i < a.Topo.Routers(); i++ {
			up := a.st.Nodes[i] == triUp
			if up && units != nil && failedUnit[units[i]] {
				up = false
			}
			a.Ctrl.SetNodeUp(i, up)
			memSrv := !up && a.st.Routers[i] == triUp &&
				a.cfg.MemServes != nil && a.cfg.MemServes(i)
			a.Ctrl.SetMemReachable(i, memSrv)
		}
		a.report.P2End = a.E.Now()
		a.startInterconnectRecovery()
	})
}

// failedUnits returns the set of failure-unit ids containing any failed
// node, failed router, or failed intra-unit link.
func (a *Agent) failedUnits() map[int]bool {
	out := map[int]bool{}
	units := a.cfg.FailureUnits
	if units == nil {
		return out
	}
	for i := 0; i < a.Topo.Routers(); i++ {
		if a.st.Nodes[i] == triDown || a.st.Routers[i] == triDown {
			out[units[i]] = true
		}
	}
	for l, st := range a.st.Links {
		if st != triDown {
			continue
		}
		link := a.Topo.Links()[l]
		if units[link.A] == units[link.B] {
			out[units[link.A]] = true
		}
	}
	return out
}

// routeTo returns (and caches) a source route to a participant, following
// the post-dissemination view.
func (a *Agent) routeTo(node int) []int {
	if r, ok := a.routeCache[node]; ok {
		return r
	}
	var route []int
	if p, ok := a.cwnPath[node]; ok {
		route = p
	} else if a.view != nil {
		b := a.view.BFS(a.ID)
		if b.Dist[node] >= 0 {
			// Walk parents back from node to self.
			rev := []int{node}
			for r := node; r != a.ID; {
				r = b.Parent[r]
				rev = append(rev, r)
			}
			route = reverseRoute(rev)
		}
	}
	a.routeCache[node] = route
	return route
}
