package core

import (
	"fmt"

	"flashfc/internal/interconnect"
	"flashfc/internal/magic"
	"flashfc/internal/metrics"
	"flashfc/internal/routing"
	"flashfc/internal/sim"
	"flashfc/internal/timing"
	"flashfc/internal/topology"
	"flashfc/internal/trace"
)

// Phase identifies where an agent is in the recovery algorithm (Fig 4.2).
type Phase int

const (
	PhaseIdle Phase = iota
	PhaseInit
	PhaseDissemination
	PhaseInterconnect
	PhaseCoherence
	PhaseDone
	PhaseShutdown
)

func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseInit:
		return "P1-initiation"
	case PhaseDissemination:
		return "P2-dissemination"
	case PhaseInterconnect:
		return "P3-interconnect"
	case PhaseCoherence:
		return "P4-coherence"
	case PhaseDone:
		return "done"
	case PhaseShutdown:
		return "shutdown"
	default:
		return "?"
	}
}

// Report summarizes one node's run of the recovery algorithm; the machine
// layer aggregates these into the per-phase times of Figs 5.5–5.7.
type Report struct {
	Node     int
	Epoch    int
	Restarts int
	Reason   magic.TriggerReason
	// Isolated means the node found its own router dead (or itself cut
	// off) and shut down without participating.
	Isolated bool
	// ShutDown means the node was part of a failure unit with a failed
	// component and shut itself down after P4 (§4.3).
	ShutDown bool

	Start, P1End, P2End, P3End, P4End sim.Time
	// FlushEnd is when this node finished its cache-flush loop, splitting
	// P4 into its WB and directory-scan components (Fig 5.6).
	FlushEnd sim.Time

	Rounds     int // dissemination rounds executed
	CwnSize    int
	Writebacks int // flush writebacks sent
	Incoherent int // lines this node's directory marked incoherent
}

// Config tunes the recovery algorithm.
type Config struct {
	// UncachedInstr is the per-instruction cost of recovery code (§4.1:
	// the processor runs from uncached space at under 2.5 MIPS).
	UncachedInstr sim.Time
	// SpeculativePing sends pings to immediate neighbors at recovery
	// entry, before cwn exploration — the §4.2 optimization that speeds
	// up recovery triggering about fivefold.
	SpeculativePing bool
	// BFTHints defers BFT computations on hint-receiving nodes so they
	// run in parallel at the end of dissemination instead of chaining
	// between neighbors (§4.3).
	BFTHints bool
	// DrainTau is the τ bound between consecutive stalled-packet
	// deliveries used by the drain agreement (§4.4).
	DrainTau sim.Time
	// ProbeTimeout bounds a router probe round trip.
	ProbeTimeout sim.Time
	// PingTimeout bounds how long to wait for a pong: it must cover the
	// target's recovery-entry time (~70 µs of uncached execution).
	PingTimeout sim.Time
	// WatchdogTimeout restarts recovery (with a higher epoch) when no
	// progress happens for this long — the §4.1 reaction to additional
	// failures during recovery.
	WatchdogTimeout sim.Time
	// FailureUnits maps node → failure-unit id; a functioning node whose
	// unit contains a failed component shuts down after P4 (§3.3, §4.3).
	// nil means every node is its own unit.
	FailureUnits []int
	// MemServes reports whether a down node's memory/directory bank still
	// answers coherence requests (the CPU-fail/memory-survives model): its
	// processor died but MAGIC keeps serving the home bank. Such a node is
	// marked memory-reachable instead of being isolated, so survivors can
	// salvage clean lines homed there. nil means never.
	MemServes func(node int) bool
	// L2ChargeLines is the number of cache lines the flush loop iterates
	// (the full configured L2 size; Fig 5.6 left).
	L2ChargeLines int
	// MemChargeLines is the number of memory lines the directory sweep
	// iterates (the full per-node memory; Fig 5.6 right).
	MemChargeLines int
	// QuorumFraction is the §4.2 split-brain heuristic: a node that ends
	// dissemination in a component holding less than this fraction of the
	// machine shuts itself down instead of recovering a minority island.
	// Zero disables the check.
	QuorumFraction float64
	// ReliableInterconnect models the HAL machine of §6.3: the hardware
	// provides end-to-end reliable delivery of coherence traffic, so the
	// coherence-recovery phase skips the global cache flush entirely —
	// caches stay warm — and the directory sweep only accounts for lines
	// entrusted to dead nodes. Lost packets are retransmitted by the
	// fabric once recovery completes.
	ReliableInterconnect bool
	// HardwiredController models the §6.2 hardwired-node-controller
	// variant: the main processor performs the node controller's
	// recovery work itself through uncached accesses, so the P4 flush
	// and directory sweep run at processor speed instead of inside
	// MAGIC. Normal-mode behaviour is unchanged.
	HardwiredController bool

	// Routing selects the interconnect-recovery routing strategy P3 runs:
	// its drain discipline, table repair, and per-entry reprogramming
	// charge. nil is the paper's policy (full two-phase drain + complete
	// up*/down* rewrite) on the exact pre-strategy code path, keeping
	// every golden byte-identical.
	Routing routing.Strategy

	// Metrics, when non-nil, receives machine-wide recovery-algorithm
	// counters (gossip rounds, BFT bound growth, drain attempts/restarts,
	// watchdog restarts). Shared by every agent of one machine.
	Metrics *metrics.Registry

	// Trace, when non-nil, receives the recovery span tree (node spans,
	// P1–P4 phase spans, gossip rounds, drain attempts, flush/scan) and
	// the flat phase-transition timeline. Shared by every agent of one
	// machine; nil disables tracing at zero cost.
	Trace *trace.Tracer

	// OnEnter fires when the node drops into recovery (pause workload).
	OnEnter func(node int)
	// OnComplete fires when this node's recovery finishes.
	OnComplete func(*Report)
	// OnPhase, if set, observes phase transitions (tests, tracing).
	OnPhase func(node int, p Phase)
}

// DefaultConfig returns paper-calibrated defaults for a machine with the
// given per-node L2 and memory sizes in bytes.
func DefaultConfig(l2Bytes, memBytes uint64) Config {
	return Config{
		UncachedInstr:   timing.UncachedInstrSimOS,
		SpeculativePing: true,
		BFTHints:        true,
		DrainTau:        timing.DrainTau,
		ProbeTimeout:    timing.ProbeTimeout,
		PingTimeout:     400 * sim.Microsecond,
		WatchdogTimeout: 150 * sim.Millisecond,
		QuorumFraction:  0.5,
		L2ChargeLines:   int(l2Bytes / timing.LineSize),
		MemChargeLines:  int(memBytes / timing.LineSize),
	}
}

// Agent executes the recovery algorithm on one node.
type Agent struct {
	ID   int
	E    *sim.Engine
	Net  *interconnect.Network
	Ctrl *magic.Controller
	Topo *topology.Topology
	cfg  Config

	epoch     int
	phase     Phase
	busyUntil sim.Time
	report    *Report

	// P1 state.
	st          *sysState
	pathTo      map[int][]int // router -> source route from here
	explored    map[int]bool  // links already probed
	probing     int           // outstanding probe/ping operations
	cwn         []int
	cwnPath     map[int][]int
	pinged      map[int]bool
	nodePong    map[int]bool // outcome of pings (true = pong received)
	pongTimer   map[int]sim.Timer
	pongWaiters map[int]int // probes waiting on a node's ping outcome
	pongQueue   []pongDest  // pings answered once recovery code runs

	// P2 state.
	round      int
	target     int
	stable     int
	merging    bool                    // a round merge is charged but not yet applied
	inbox      map[int]map[int]*recMsg // round -> from -> message
	hint       int
	finalState *sysState // lame-duck echo source after P2

	// Post-P2 derived state.
	view         *topology.View
	bft          *topology.BFT
	root         int
	participants []int
	partSet      map[int]bool
	doomed       bool
	routeCache   map[int][]int

	// Barriers.
	bars       map[string]*barrierState
	pendingBar map[string][]*recMsg
	voteAt     sim.Time

	// P4 all-to-all flush barrier.
	flushFrom map[int]bool
	scanned   bool

	watchdog sim.Timer
	// codeRunning is set once the recovery code is confirmed executing
	// on the processor; pings are answerable from then on (§4.2).
	codeRunning bool
	// dead is set when the node's hardware fails: the agent (which runs
	// on the node's processor) stops executing entirely.
	dead bool

	// Pre-resolved machine-wide metric instruments (nil-safe).
	mGossipRounds  *metrics.Counter
	mBFTBoundHits  *metrics.Counter
	mDrainAttempts *metrics.Counter
	mDrainRestarts *metrics.Counter
	mRestarts      *metrics.Counter
	// Strategy-only instruments, registered exclusively when a non-nil
	// routing strategy is configured so the paper path's metric snapshots
	// stay byte-identical.
	mRoutesPatched  *metrics.Counter
	mRouteFallbacks *metrics.Counter

	// Open trace spans (0 when absent or tracing disabled).
	spNode      trace.SpanID // this epoch's node-recovery span
	spPhase     trace.SpanID // current P1–P4 phase span
	spRound     trace.SpanID // current gossip-round span
	spFlushWait trace.SpanID // P4 all-to-all flush barrier wait
}

type pongDest struct {
	to    int
	route []int
}

// NewAgent wires a recovery agent to its node and registers it as the
// controller's trigger and recovery-packet handler.
func NewAgent(e *sim.Engine, net *interconnect.Network, ctrl *magic.Controller,
	topo *topology.Topology, cfg Config) *Agent {
	a := &Agent{
		ID: ctrl.ID, E: e, Net: net, Ctrl: ctrl, Topo: topo, cfg: cfg,
	}
	a.mGossipRounds = cfg.Metrics.Counter("core.gossip_rounds")
	a.mBFTBoundHits = cfg.Metrics.Counter("core.bft_bound_hits")
	a.mDrainAttempts = cfg.Metrics.Counter("core.drain_attempts")
	a.mDrainRestarts = cfg.Metrics.Counter("core.drain_restarts")
	a.mRestarts = cfg.Metrics.Counter("core.recovery_restarts")
	if cfg.Routing != nil {
		a.mRoutesPatched = cfg.Metrics.Counter("core.routes_patched")
		a.mRouteFallbacks = cfg.Metrics.Counter("core.route_fallbacks")
	}
	ctrl.SetTriggerHandler(a.Trigger)
	ctrl.SetRecoveryHandler(a.handlePacket)
	return a
}

// Phase returns the agent's current phase.
func (a *Agent) Phase() Phase { return a.phase }

// Epoch returns the agent's recovery epoch.
func (a *Agent) Epoch() int { return a.epoch }

// Report returns the agent's (possibly in-progress) report.
func (a *Agent) Report() *Report { return a.report }

func (a *Agent) setPhase(p Phase) {
	a.phase = p
	if tr := a.cfg.Trace; tr != nil {
		now := a.E.Now()
		tr.RecordEvent(now, a.ID, trace.KindPhase, p.String())
		tr.End(now, a.spPhase) // also closes any open round/drain sub-spans
		a.spPhase, a.spRound = 0, 0
		switch p {
		case PhaseInit, PhaseDissemination, PhaseInterconnect, PhaseCoherence:
			a.spPhase = tr.Begin(now, a.ID, p.String(), a.spNode, 0)
		case PhaseDone, PhaseShutdown:
			tr.End(now, a.spNode)
			a.spNode = 0
		}
	}
	if a.cfg.OnPhase != nil {
		a.cfg.OnPhase(a.ID, p)
	}
}

// Kill stops the agent: the node's hardware has failed, so the recovery
// code running on its processor dies with it.
func (a *Agent) Kill() {
	a.dead = true
	a.watchdog.Cancel()
	a.setPhase(PhaseShutdown)
}

// Trigger starts the recovery algorithm in response to one of the Table 4.1
// conditions. Triggers while recovery is already running are ignored: the
// watchdog and epoch mechanism handle faults during recovery.
func (a *Agent) Trigger(reason magic.TriggerReason) {
	if a.dead || (a.phase != PhaseIdle && a.phase != PhaseDone) {
		return
	}
	if a.epoch == 0 {
		a.epoch = 1
	} else if a.phase == PhaseDone {
		// A fresh fault after a completed recovery starts a new epoch,
		// so that stragglers of the previous run cannot alias with the
		// new one (messages carry the epoch; old ones are dropped).
		a.epoch++
	}
	a.enter(reason)
}

// enter begins (or restarts) recovery at the current epoch.
func (a *Agent) enter(reason magic.TriggerReason) {
	if a.report == nil || a.phase == PhaseDone {
		a.report = &Report{Node: a.ID, Reason: reason, Start: a.E.Now()}
	}
	a.report.Epoch = a.epoch
	if tr := a.cfg.Trace; tr != nil {
		now := a.E.Now()
		// On a restart the superseded epoch's span (and its open
		// descendants) close here, at the moment the new epoch begins.
		tr.End(now, a.spNode)
		root := tr.EnsureRoot(now, "recovery")
		a.spNode = tr.Begin(now, a.ID, "node-recovery", root, int64(a.epoch))
		a.spPhase, a.spRound, a.spFlushWait = 0, 0, 0
	}
	a.resetState()
	a.setPhase(PhaseInit)
	a.Ctrl.EnterRecovery()
	if a.cfg.OnEnter != nil {
		a.cfg.OnEnter(a.ID)
	}
	a.armWatchdog()
	// §4.2 optimization: speculatively ping immediate neighbors before
	// any exploration, so the recovery wave spreads while this node is
	// still dropping its own processor into recovery.
	if a.cfg.SpeculativePing {
		for _, adj := range a.Topo.Adjacency(a.ID) {
			a.sendPing(adj.To, []int{a.ID, adj.To})
		}
	}
	// Dropping the processor into recovery: forced Cache Error, state
	// save, switch to uncached execution (§4.2).
	a.busyUntil = a.E.Now()
	a.execInstr(timing.InstrRecoveryEntry, a.recoveryCodeRunning)
}

// resetState clears per-epoch algorithm state.
func (a *Agent) resetState() {
	n := a.Topo.Routers()
	a.st = newSysState(n, len(a.Topo.Links()))
	a.st.Nodes[a.ID] = triUp
	a.pathTo = map[int][]int{}
	a.explored = map[int]bool{}
	a.probing = 0
	a.cwn = nil
	a.cwnPath = map[int][]int{}
	a.pinged = map[int]bool{}
	a.nodePong = map[int]bool{}
	for _, t := range a.pongTimer {
		t.Cancel()
	}
	a.pongTimer = map[int]sim.Timer{}
	a.pongWaiters = map[int]int{}
	// pongQueue is deliberately preserved: pings that arrived just before
	// a restart still deserve an answer from the fresh run.
	a.codeRunning = false
	a.round = 0
	a.merging = false
	a.target = 0
	a.stable = 0
	a.inbox = map[int]map[int]*recMsg{}
	a.hint = 0
	a.finalState = nil
	a.view = nil
	a.bft = nil
	a.participants = nil
	a.partSet = map[int]bool{}
	a.doomed = false
	a.routeCache = map[int][]int{}
	a.bars = map[string]*barrierState{}
	a.pendingBar = map[string][]*recMsg{}
	a.flushFrom = map[int]bool{}
	a.scanned = false
}

// restartTo abandons the current run and re-executes the algorithm at a
// higher epoch — the §4.1 reaction to additional faults during recovery.
func (a *Agent) restartTo(epoch int) {
	if epoch <= a.epoch && a.phase != PhaseDone {
		return
	}
	a.epoch = epoch
	if a.report != nil {
		a.report.Restarts++
	}
	a.mRestarts.Inc()
	reason := magic.ReasonPing
	if a.report != nil {
		reason = a.report.Reason
	}
	done := a.phase == PhaseDone
	a.setPhase(PhaseIdle)
	if done {
		a.report = nil // a fresh fault after completion: new report
	}
	a.enter(reason)
}

// execInstr charges n instructions of uncached recovery-code execution and
// then runs fn. Charges serialize on the node's single processor.
func (a *Agent) execInstr(n int, fn func()) {
	a.execTime(sim.Time(n)*a.cfg.UncachedInstr, fn)
}

// execTime charges a raw duration of node-local work.
func (a *Agent) execTime(d sim.Time, fn func()) {
	start := a.E.Now()
	if a.busyUntil > start {
		start = a.busyUntil
	}
	a.busyUntil = start + d
	epoch := a.epoch
	a.E.At(a.busyUntil, func() {
		if a.dead || a.epoch != epoch {
			return // node died or superseded by a restart
		}
		fn()
	})
}

// armWatchdog (re)arms the no-progress watchdog.
func (a *Agent) armWatchdog() { a.armWatchdogFor(a.cfg.WatchdogTimeout) }

// armWatchdogFor (re)arms the watchdog with an explicit deadline — used
// before long known-duration local work (the P4 flush and directory sweep
// can legitimately exceed the normal progress timeout on big memories).
func (a *Agent) armWatchdogFor(d sim.Time) {
	a.watchdog.Cancel()
	if a.cfg.WatchdogTimeout <= 0 {
		return
	}
	if d < a.cfg.WatchdogTimeout {
		d = a.cfg.WatchdogTimeout
	}
	epoch := a.epoch
	a.watchdog = a.E.After(d, func() {
		if a.epoch != epoch || a.phase == PhaseDone || a.phase == PhaseShutdown || a.phase == PhaseIdle {
			return
		}
		// No progress: assume an additional failure and restart the
		// algorithm at a higher epoch. The restart wave (pings carry
		// the new epoch) brings everyone else along.
		a.restartTo(a.epoch + 1)
	})
}

// sendRec ships m to node `to` over the given source route and lane.
func (a *Agent) sendRec(to int, route []int, lane interconnect.Lane, m *recMsg) {
	m.From = a.ID
	m.Epoch = a.epoch
	a.Net.Send(&interconnect.Packet{
		Src: a.ID, Dst: to, Lane: lane,
		SourceRoute: route, Bytes: m.bytes(), Payload: m,
	})
}

func (a *Agent) sendPing(to int, route []int) {
	a.sendRec(to, route, interconnect.LaneRecoveryA, &recMsg{Kind: kPing})
}

// handlePacket receives recovery-lane packets (and normal-lane recovery
// control such as kFlushDone) forwarded by the controller.
func (a *Agent) handlePacket(p *interconnect.Packet) {
	if a.dead {
		return
	}
	m, ok := p.Payload.(*recMsg)
	if !ok {
		return
	}
	switch {
	case m.Epoch > a.epoch:
		// A newer epoch exists: adopt it and restart. Pings are then
		// answered by the fresh run's pong queue.
		a.restartTo(m.Epoch)
		if m.Kind == kPing {
			a.queuePong(m.From, p.SourceRoute)
		}
		return
	case m.Epoch < a.epoch:
		if m.Kind == kPing {
			// Stale pinger: our pong carries the newer epoch and
			// restarts it.
			a.sendRec(m.From, reverseRoute(p.SourceRoute), interconnect.LaneRecoveryB, &recMsg{Kind: kPong})
		}
		return
	}
	a.armWatchdog()
	switch m.Kind {
	case kPing:
		a.onPing(m, p)
	case kPong:
		a.onPong(m)
	case kState:
		a.onState(m)
	case kBarrierUp, kBarrierDown:
		a.onBarrierMsg(m)
	case kFlushDone:
		a.onFlushDone(m)
	}
}

// onPing drops an idle node into recovery and answers once the recovery
// code is running (§4.2: a ping reply is evidence the node works).
func (a *Agent) onPing(m *recMsg, p *interconnect.Packet) {
	route := reverseRoute(p.SourceRoute)
	switch a.phase {
	case PhaseIdle:
		if a.epoch == 0 {
			a.epoch = m.Epoch
		}
		a.queuePong(m.From, p.SourceRoute)
		a.enter(magic.ReasonPing)
	case PhaseInit:
		if a.codeRunning {
			a.sendRec(m.From, route, interconnect.LaneRecoveryB, &recMsg{Kind: kPong})
			return
		}
		// Recovery code not confirmed running yet: answer when it is.
		a.queuePong(m.From, p.SourceRoute)
	case PhaseShutdown:
		// A node that decided to shut down never answers.
	default:
		a.sendRec(m.From, route, interconnect.LaneRecoveryB, &recMsg{Kind: kPong})
	}
}

func (a *Agent) queuePong(to int, pingRoute []int) {
	a.pongQueue = append(a.pongQueue, pongDest{to: to, route: reverseRoute(pingRoute)})
}

func reverseRoute(route []int) []int {
	if route == nil {
		return nil
	}
	out := make([]int, len(route))
	for i, r := range route {
		out[len(route)-1-i] = r
	}
	return out
}

func (a *Agent) String() string {
	return fmt.Sprintf("agent(%d %v ep=%d)", a.ID, a.phase, a.epoch)
}

// DebugString dumps the agent's progress state for diagnostics.
func (a *Agent) DebugString() string {
	missing := ""
	if a.phase == PhaseDissemination {
		rm := a.inbox[a.round]
		for _, q := range a.cwn {
			if rm == nil || rm[q] == nil {
				missing += fmt.Sprintf(" %d", q)
			}
		}
	}
	bars := ""
	for name, b := range a.bars {
		if !b.released {
			bars += fmt.Sprintf(" %s(ready=%v ups=%d/%d)", name, b.ready, len(b.upFrom), len(b.children))
		}
	}
	return fmt.Sprintf("node %d %v ep=%d probing=%d cwn=%v round=%d/%d stable=%d merging=%v missing=[%s] flush=%d/%d bars=%s",
		a.ID, a.phase, a.epoch, a.probing, a.cwn, a.round, a.target, a.stable, a.merging,
		missing, len(a.flushFrom), len(a.participants), bars)
}
