package core

import (
	"testing"

	"flashfc/internal/coherence"
	"flashfc/internal/interconnect"
	"flashfc/internal/magic"
	"flashfc/internal/sim"
	"flashfc/internal/topology"
)

// rig wires engine + fabric + controllers + agents without the machine
// layer, so the algorithm can be observed directly.
type rig struct {
	e      *sim.Engine
	topo   *topology.Topology
	net    *interconnect.Network
	ctrls  []*magic.Controller
	agents []*Agent
	done   map[int]*Report
}

func newRig(t *testing.T, w, h int, mod func(*Config)) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	topo := topology.NewMesh(w, h)
	net := interconnect.New(e, topo, interconnect.DefaultConfig())
	n := topo.Routers()
	space := coherence.AddrSpace{Nodes: n, MemBytes: 64 << 10}
	r := &rig{e: e, topo: topo, net: net, done: map[int]*Report{}}
	for i := 0; i < n; i++ {
		ctrl := magic.New(e, net, i, space,
			coherence.NewDirectory(n),
			coherence.NewMemory(space.Base(i), space.MemBytes),
			coherence.NewCache(16<<10), magic.DefaultConfig())
		cfg := DefaultConfig(16<<10, 64<<10)
		cfg.OnComplete = func(rep *Report) { r.done[rep.Node] = rep }
		if mod != nil {
			mod(&cfg)
		}
		r.ctrls = append(r.ctrls, ctrl)
		r.agents = append(r.agents, NewAgent(e, net, ctrl, topo, cfg))
	}
	return r
}

// run drives the engine until all the given nodes completed or the deadline.
func (r *rig) run(t *testing.T, deadline sim.Time, expect []int) {
	t.Helper()
	for r.e.Now() < deadline {
		r.e.RunUntil(r.e.Now() + sim.Millisecond)
		all := true
		for _, n := range expect {
			if r.done[n] == nil {
				all = false
				break
			}
		}
		if all {
			return
		}
	}
	for _, a := range r.agents {
		t.Log(a.DebugString())
	}
	t.Fatalf("agents did not complete: have %d reports", len(r.done))
}

func TestFalseAlarmFullCycle(t *testing.T) {
	r := newRig(t, 4, 2, nil)
	r.agents[3].Trigger(magic.ReasonFalseAlarm)
	r.run(t, 2*sim.Second, []int{0, 1, 2, 3, 4, 5, 6, 7})
	for n, rep := range r.done {
		if rep.ShutDown || rep.Isolated {
			t.Fatalf("node %d should survive a false alarm", n)
		}
		if rep.Incoherent != 0 {
			t.Fatalf("node %d marked lines incoherent on a false alarm", n)
		}
		if rep.P1End == 0 || rep.P2End < rep.P1End || rep.P4End < rep.P2End {
			t.Fatalf("node %d phase times inconsistent: %+v", n, rep)
		}
	}
	// Everyone should agree the whole machine is up.
	for _, c := range r.ctrls {
		for i := 0; i < 8; i++ {
			if !c.NodeUp(i) {
				t.Fatalf("node %d marked down after false alarm", i)
			}
		}
	}
}

func TestCwnStopsAtFunctioningNodes(t *testing.T) {
	// 4x2 mesh; node 5 (1,1) dead with live router: its neighbors reach
	// *through* its router. cwn(1) must be {0, 2, 4, 6}: direct neighbors
	// 0 and 2, plus 4 and 6 through dead node 5's router.
	r := newRig(t, 4, 2, nil)
	r.ctrls[5].SetMode(magic.ModeDead)
	r.agents[5].Kill()
	r.agents[1].Trigger(magic.ReasonTimeout)
	r.run(t, 2*sim.Second, []int{0, 1, 2, 3, 4, 6, 7})
	rep := r.done[1]
	if rep.CwnSize != 4 {
		t.Fatalf("cwn size = %d, want 4 (got agent: %s)", rep.CwnSize, r.agents[1].DebugString())
	}
	want := map[int]bool{0: true, 2: true, 4: true, 6: true}
	for _, q := range r.agents[1].cwn {
		if !want[q] {
			t.Fatalf("unexpected cwn member %d (cwn=%v)", q, r.agents[1].cwn)
		}
	}
	// Corner node 0 is not adjacent to the dead node: cwn(0) = {1, 4}.
	if got := r.agents[0].cwn; len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("cwn(0) = %v, want [1 4]", got)
	}
}

func TestNodeMapConsensusAfterDissemination(t *testing.T) {
	r := newRig(t, 4, 2, nil)
	r.ctrls[6].SetMode(magic.ModeDead)
	r.agents[6].Kill()
	r.agents[2].Trigger(magic.ReasonTimeout)
	r.run(t, 2*sim.Second, []int{0, 1, 2, 3, 4, 5, 7})
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7} {
		for i := 0; i < 8; i++ {
			want := i != 6
			if r.ctrls[n].NodeUp(i) != want {
				t.Fatalf("node %d's map disagrees on %d", n, i)
			}
		}
		if r.done[n].Rounds == 0 {
			t.Fatalf("node %d ran no dissemination rounds", n)
		}
	}
}

func TestFailureUnitDoom(t *testing.T) {
	units := []int{0, 0, 1, 1, 0, 0, 1, 1} // columns 0-1 unit 0, 2-3 unit 1
	r := newRig(t, 4, 2, func(c *Config) { c.FailureUnits = units })
	r.ctrls[2].SetMode(magic.ModeDead) // unit 1 loses a node
	r.agents[2].Kill()
	r.agents[1].Trigger(magic.ReasonTimeout)
	r.run(t, 2*sim.Second, []int{0, 1, 3, 4, 5, 6, 7})
	for n, rep := range r.done {
		inUnit1 := units[n] == 1
		if inUnit1 != rep.ShutDown {
			t.Fatalf("node %d: ShutDown=%v, want %v", n, rep.ShutDown, inUnit1)
		}
	}
}

func TestIsolatedNodeShutsDown(t *testing.T) {
	r := newRig(t, 4, 2, nil)
	// Kill node 3's router: it cannot reach anyone.
	r.net.FailRouter(3)
	r.agents[3].Trigger(magic.ReasonTimeout)
	r.run(t, 2*sim.Second, []int{3})
	rep := r.done[3]
	if !rep.Isolated || !rep.ShutDown {
		t.Fatalf("report = %+v, want isolated shutdown", rep)
	}
	if r.ctrls[3].Mode() != magic.ModeDead {
		t.Fatal("isolated node's controller should be dead")
	}
}

func TestQuorumRefusesMinorityIsland(t *testing.T) {
	r := newRig(t, 4, 2, func(c *Config) { c.QuorumFraction = 0.5 })
	// Cut column 0 (nodes 0 and 4) off: links 0-1 and 4-5.
	for _, pair := range [][2]int{{0, 1}, {4, 5}} {
		p := r.topo.PortTo(pair[0], pair[1])
		r.net.FailLink(r.topo.Adjacency(pair[0])[p].Link)
	}
	r.agents[0].Trigger(magic.ReasonTimeout)
	r.agents[1].Trigger(magic.ReasonTimeout)
	r.run(t, 3*sim.Second, []int{0, 1, 2, 3, 4, 5, 6, 7})
	for _, n := range []int{0, 4} {
		if !r.done[n].ShutDown {
			t.Fatalf("minority node %d should shut down", n)
		}
	}
	for _, n := range []int{1, 2, 3, 5, 6, 7} {
		if r.done[n].ShutDown {
			t.Fatalf("majority node %d should survive", n)
		}
	}
}

func TestBarrierTopologyHelpers(t *testing.T) {
	r := newRig(t, 4, 2, nil)
	a := r.agents[0]
	// Hand the agent a converged view so the helpers can be probed
	// without running the algorithm.
	a.st = newSysState(8, len(r.topo.Links()))
	for i := range a.st.Nodes {
		a.st.Nodes[i] = triUp
		a.st.Routers[i] = triUp
	}
	for l := range a.st.Links {
		a.st.Links[l] = triUp
	}
	a.view = a.st.view(r.topo)
	a.root = 0
	a.bft = a.view.BFS(0)
	a.participants = []int{0, 1, 2, 3, 4, 5, 6, 7}
	a.partSet = map[int]bool{}
	for _, p := range a.participants {
		a.partSet[p] = true
	}
	if got := a.barrierParent(0); got != -1 {
		t.Fatalf("root's parent = %d", got)
	}
	for v := 1; v < 8; v++ {
		p := a.barrierParent(v)
		if p < 0 || p == v {
			t.Fatalf("parent(%d) = %d", v, p)
		}
		route := a.bftRoute(v, p)
		if len(route) < 2 || route[0] != v || route[len(route)-1] != p {
			t.Fatalf("bftRoute(%d,%d) = %v", v, p, route)
		}
	}
	// Children of the root must cover exactly the nodes whose parent is 0.
	ch := a.barrierChildren(0)
	for _, c := range ch {
		if a.barrierParent(c) != 0 {
			t.Fatalf("child %d's parent is not the root", c)
		}
	}
}

func TestTriggerIgnoredWhileRunningAndWhenDead(t *testing.T) {
	r := newRig(t, 2, 2, nil)
	a := r.agents[0]
	a.Trigger(magic.ReasonTimeout)
	ep := a.Epoch()
	a.Trigger(magic.ReasonNAKOverflow) // mid-recovery: ignored
	if a.Epoch() != ep {
		t.Fatal("mid-recovery trigger must not bump the epoch")
	}
	r.run(t, 2*sim.Second, []int{0, 1, 2, 3})
	// A fresh fault after completion starts a new epoch.
	a.Trigger(magic.ReasonTimeout)
	if a.Epoch() != ep+1 {
		t.Fatalf("post-completion trigger should bump epoch: %d", a.Epoch())
	}
	r.agents[1].Kill()
	r.agents[1].Trigger(magic.ReasonTimeout)
	if r.agents[1].Phase() != PhaseShutdown {
		t.Fatal("killed agent must not restart")
	}
}
