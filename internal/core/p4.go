package core

import (
	"flashfc/internal/interconnect"
	"flashfc/internal/magic"
	"flashfc/internal/sim"
	"flashfc/internal/timing"
	"flashfc/internal/trace"
)

// Phase 4: cache coherence protocol recovery (§4.5): every node switches
// its controller to flush mode (barrier), flushes its processor cache
// sending all dirty lines home, joins an all-to-all barrier that rides the
// normal lanes behind the writebacks (in-order delivery ⇒ every writeback
// destined to a node precedes that node's barrier message), sweeps its
// directory marking lost lines incoherent, and barriers once more before
// normal operation resumes.

func (a *Agent) startCoherenceRecovery() {
	a.setPhase(PhaseCoherence)
	if a.cfg.ReliableInterconnect {
		// §6.3: with HAL-style end-to-end reliability no writeback was
		// ever lost, so the flush is eliminated; only the directory
		// sweep remains, and caches stay warm across recovery.
		a.startBarrier("p4-mode", func(bool) { a.doScanReliable() })
		a.barrierReady("p4-mode", false)
		return
	}
	a.Ctrl.SetMode(magic.ModeFlush)
	a.startBarrier("p4-mode", func(bool) { a.doFlush() })
	a.barrierReady("p4-mode", false)
}

// doScanReliable is the flush-free §6.3 sweep: lines owned or locked by
// dead nodes become incoherent; everything held by survivors stays valid
// in place.
func (a *Agent) doScanReliable() {
	a.report.FlushEnd = a.E.Now()
	scanTime := sim.Time(a.cfg.MemChargeLines) * timing.DirScanPerLine
	a.armWatchdogFor(2*scanTime + a.cfg.WatchdogTimeout)
	spScan := a.cfg.Trace.Begin(a.E.Now(), a.ID, "dir-scan", a.spPhase, 0)
	a.traceScanChunks(spScan, scanTime)
	a.execTime(scanTime, func() {
		a.report.Incoherent = len(a.Ctrl.ScanDirectoryLiveness())
		a.cfg.Trace.End(a.E.Now(), spScan)
		a.startBarrier("p4-done", func(bool) { a.finishRecovery() })
		a.barrierReady("p4-done", false)
	})
}

// traceScanChunks subdivides a known-duration sweep window into span
// chunks for the trace without perturbing the simulation: the sweep
// occupies [start, start+d) of processor time uniformly, so the chunk
// boundaries are computed, not scheduled.
func (a *Agent) traceScanChunks(parent trace.SpanID, d sim.Time) {
	tr := a.cfg.Trace
	if tr == nil || parent == 0 || d <= 0 {
		return
	}
	start := a.E.Now()
	if a.busyUntil > start {
		start = a.busyUntil
	}
	const chunks = 8
	for i := sim.Time(0); i < chunks; i++ {
		id := tr.Begin(start+d*i/chunks, a.ID, "scan-chunk", parent, int64(i))
		tr.End(start+d*(i+1)/chunks, id)
	}
}

// doFlush iterates the whole second-level cache (cost scales with the
// configured L2 size, Fig 5.6 left) and sends every exclusive line home.
// With a hardwired controller the processor drives the flush through
// uncached controller accesses, costing extra instructions per line (§6.2).
func (a *Agent) doFlush() {
	perLine := timing.InstrFlushPerLine
	if a.cfg.HardwiredController {
		perLine = timing.InstrHardwiredFlushPerLine
	}
	charge := a.cfg.L2ChargeLines * perLine
	a.armWatchdogFor(2*sim.Time(charge)*a.cfg.UncachedInstr + a.cfg.WatchdogTimeout)
	spFlush := a.cfg.Trace.Begin(a.E.Now(), a.ID, "cache-flush", a.spPhase, 0)
	a.execInstr(charge, func() {
		a.report.Writebacks = a.Ctrl.FlushCache()
		a.report.FlushEnd = a.E.Now()
		a.cfg.Trace.End(a.E.Now(), spFlush)
		a.spFlushWait = a.cfg.Trace.Begin(a.E.Now(), a.ID, "flush-barrier", a.spPhase, 0)
		// All-to-all barrier: one message to every other participant
		// on the normal reply lane, behind our writebacks.
		for _, q := range a.participants {
			if q == a.ID {
				continue
			}
			a.sendRec(q, nil, interconnect.LaneReply, &recMsg{Kind: kFlushDone})
		}
		a.flushFrom[a.ID] = true
		a.checkFlushBarrier()
	})
}

// onFlushDone records a peer's flush completion. Arrivals may precede this
// node's own flush; the map is consulted when both sides are ready.
func (a *Agent) onFlushDone(m *recMsg) {
	a.flushFrom[m.From] = true
	a.checkFlushBarrier()
}

func (a *Agent) checkFlushBarrier() {
	if a.phase != PhaseCoherence || a.scanned || !a.flushFrom[a.ID] {
		return
	}
	for _, q := range a.participants {
		if !a.flushFrom[q] {
			return
		}
	}
	a.scanned = true
	a.doScan()
}

// doScan sweeps this node's directory (cost scales with the per-node
// memory size, Fig 5.6 right): lines still cached exclusive have lost
// their only valid copy and are marked incoherent. A hardwired controller
// cannot run the sweep itself: the processor reads the exposed directory
// state through uncached accesses, several times slower (§6.2).
func (a *Agent) doScan() {
	a.cfg.Trace.End(a.E.Now(), a.spFlushWait)
	a.spFlushWait = 0
	spScan := a.cfg.Trace.Begin(a.E.Now(), a.ID, "dir-scan", a.spPhase, 0)
	if a.cfg.HardwiredController {
		charge := a.cfg.MemChargeLines * timing.InstrHardwiredScanPerLine
		a.armWatchdogFor(2*sim.Time(charge)*a.cfg.UncachedInstr + a.cfg.WatchdogTimeout)
		a.traceScanChunks(spScan, sim.Time(charge)*a.cfg.UncachedInstr)
		a.execInstr(charge, func() {
			a.report.Incoherent = len(a.Ctrl.ScanDirectory())
			a.cfg.Trace.End(a.E.Now(), spScan)
			a.startBarrier("p4-done", func(bool) { a.finishRecovery() })
			a.barrierReady("p4-done", false)
		})
		return
	}
	scanTime := sim.Time(a.cfg.MemChargeLines) * timing.DirScanPerLine
	a.armWatchdogFor(2*scanTime + a.cfg.WatchdogTimeout)
	a.traceScanChunks(spScan, scanTime)
	a.execTime(scanTime, func() {
		a.report.Incoherent = len(a.Ctrl.ScanDirectory())
		a.cfg.Trace.End(a.E.Now(), spScan)
		a.startBarrier("p4-done", func(bool) { a.finishRecovery() })
		a.barrierReady("p4-done", false)
	})
}

// finishRecovery resumes normal operation — or shuts the node down if its
// failure unit lost a component (§4.3).
func (a *Agent) finishRecovery() {
	a.report.P4End = a.E.Now()
	a.watchdog.Cancel()
	if a.doomed {
		a.report.ShutDown = true
		a.setPhase(PhaseShutdown)
		a.Ctrl.SetMode(magic.ModeDead)
	} else {
		a.setPhase(PhaseDone)
		a.Ctrl.SetMode(magic.ModeNormal)
	}
	if a.cfg.ReliableInterconnect && a.ID == a.root && !a.doomed {
		// Once everyone has resumed, the fabric's end-to-end machinery
		// resends what the failure destroyed (§6.3). The short delay
		// models the hardware retransmission timer and guarantees all
		// controllers are back in normal mode.
		a.E.After(sim.Millisecond, func() {
			a.Net.RetransmitLost(a.Ctrl.NodeUp)
		})
	}
	if a.cfg.OnComplete != nil {
		a.cfg.OnComplete(a.report)
	}
}
