package core

import "fmt"

// msgKind enumerates recovery protocol messages.
type msgKind uint8

const (
	// kPing drops the target into recovery and solicits a pong (§4.2).
	kPing msgKind = iota
	// kPong confirms the sender has started executing recovery code.
	kPong
	// kState is one dissemination-phase gossip round (§4.3).
	kState
	// kBarrierUp converges a BFT barrier toward the root.
	kBarrierUp
	// kBarrierDown releases a BFT barrier (or restarts the drain
	// agreement when Dirty is set, §4.4).
	kBarrierDown
	// kFlushDone is the all-to-all P4 barrier message; it travels on the
	// normal reply lane behind the sender's writebacks to exploit
	// in-order delivery (§4.5).
	kFlushDone
)

func (k msgKind) String() string {
	switch k {
	case kPing:
		return "ping"
	case kPong:
		return "pong"
	case kState:
		return "state"
	case kBarrierUp:
		return "barrier-up"
	case kBarrierDown:
		return "barrier-down"
	case kFlushDone:
		return "flush-done"
	default:
		return "?"
	}
}

// recMsg is the payload of a recovery packet.
type recMsg struct {
	Kind  msgKind
	From  int
	Epoch int

	// kState fields:
	Round  int
	State  *sysState // deep copy at send time
	Target int       // sender's current termination-round bound
	Hint   int       // BFT-height hint (0 = none), §4.3 scheduling optimization

	// Barrier fields:
	Barrier string
	Dirty   bool // drain phase-B: sender saw stalled traffic since voting
}

func (m *recMsg) String() string {
	return fmt.Sprintf("rec{%v from=%d ep=%d r=%d %s}", m.Kind, m.From, m.Epoch, m.Round, m.Barrier)
}

// bytes is the wire size of the message for serialization cost.
func (m *recMsg) bytes() int {
	if m.Kind == kState {
		return 16 + 4*m.State.words()
	}
	return 16
}
