package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flashfc/internal/topology"
)

// Unit tests for the recovery algorithm's pure parts: state merging, the
// termination bound, and barrier topology. Whole-algorithm behaviour is
// covered by the machine and experiments integration tests.

func TestMergeTriOrdering(t *testing.T) {
	cases := []struct{ a, b, want tri }{
		{triUnknown, triUnknown, triUnknown},
		{triUnknown, triUp, triUp},
		{triUp, triUnknown, triUp},
		{triUp, triDown, triDown},
		{triDown, triUp, triDown},
		{triDown, triUnknown, triDown},
		{triUp, triUp, triUp},
	}
	for _, c := range cases {
		if got := mergeTri(c.a, c.b); got != c.want {
			t.Errorf("mergeTri(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func randomState(rng *rand.Rand, nodes, links int) *sysState {
	s := newSysState(nodes, links)
	fill := func(a []tri) {
		for i := range a {
			a[i] = tri(rng.Intn(3))
		}
	}
	fill(s.Nodes)
	fill(s.Routers)
	fill(s.Links)
	return s
}

func statesEqual(a, b *sysState) bool {
	eq := func(x, y []tri) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.Nodes, b.Nodes) && eq(a.Routers, b.Routers) && eq(a.Links, b.Links)
}

// Property: merge is commutative — the gossip outcome is independent of
// message arrival order, which the dissemination phase depends on.
func TestQuickMergeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomState(rng, 8, 10)
		b := randomState(rng, 8, 10)
		ab := a.clone()
		ab.merge(b)
		ba := b.clone()
		ba.merge(a)
		return statesEqual(ab, ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merge is associative.
func TestQuickMergeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomState(rng, 8, 10)
		b := randomState(rng, 8, 10)
		c := randomState(rng, 8, 10)
		abc1 := a.clone()
		abc1.merge(b)
		abc1.merge(c)
		bc := b.clone()
		bc.merge(c)
		abc2 := a.clone()
		abc2.merge(bc)
		return statesEqual(abc1, abc2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merge is idempotent and reports no change on self-merge.
func TestQuickMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomState(rng, 8, 10)
		b := a.clone()
		if b.merge(a) {
			return false // self-merge must not change anything
		}
		return statesEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merge monotonicity — merging never resurrects a down component.
func TestQuickMergeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomState(rng, 8, 10)
		b := randomState(rng, 8, 10)
		before := a.clone()
		a.merge(b)
		for i := range before.Nodes {
			if before.Nodes[i] == triDown && a.Nodes[i] != triDown {
				return false
			}
		}
		for i := range before.Links {
			if before.Links[i] == triDown && a.Links[i] != triDown {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSysStateWordsAndView(t *testing.T) {
	s := newSysState(8, 10)
	if s.words() != 8+8+10+4 {
		t.Fatalf("words = %d", s.words())
	}
	topo := topology.NewMesh(4, 2)
	for i := range s.Routers {
		s.Routers[i] = triUp
	}
	for l := range s.Links {
		s.Links[l] = triUp
	}
	s.Routers[3] = triDown
	s.Links[0] = triUnknown // unknown is treated as down in views
	v := s.view(topo)
	if v.RouterUp[3] || v.LinkUp[0] {
		t.Fatal("view should treat down/unknown as unavailable")
	}
	if !v.RouterUp[0] {
		t.Fatal("up router lost in view")
	}
	s.Nodes[2] = triUp
	s.Nodes[5] = triUp
	fn := s.functioningNodes()
	if len(fn) != 2 || fn[0] != 2 || fn[1] != 5 {
		t.Fatalf("functioningNodes = %v", fn)
	}
}

func TestRecMsgHelpers(t *testing.T) {
	st := newSysState(4, 4)
	m := &recMsg{Kind: kState, State: st, Round: 3}
	if m.bytes() <= 16 {
		t.Fatal("state message should be larger than a control message")
	}
	for _, k := range []msgKind{kPing, kPong, kState, kBarrierUp, kBarrierDown, kFlushDone, msgKind(99)} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if (&recMsg{Kind: kPing}).bytes() != 16 {
		t.Fatal("control message size wrong")
	}
	if m.String() == "" {
		t.Fatal("empty message string")
	}
}

func TestReverseRoute(t *testing.T) {
	if reverseRoute(nil) != nil {
		t.Fatal("nil route should stay nil")
	}
	got := reverseRoute([]int{1, 2, 3})
	if len(got) != 3 || got[0] != 3 || got[2] != 1 {
		t.Fatalf("reverseRoute = %v", got)
	}
}

func TestPhaseStrings(t *testing.T) {
	for p := PhaseIdle; p <= PhaseShutdown+1; p++ {
		if p.String() == "" {
			t.Fatal("empty phase name")
		}
	}
}
