package core

import (
	"flashfc/internal/interconnect"
	"flashfc/internal/timing"
)

// Fault-tolerant barriers over the dissemination-phase BFT (§4.4, [6]).
// Arrivals converge up the tree; the root broadcasts the release down.
// A boolean "dirty" flag is OR-aggregated on the way up, which is how the
// drain agreement's second phase requests a restart.
//
// The barrier tree spans the participants; its edges may transit routers of
// dead nodes, so messages carry explicit source routes along BFT paths.

type barrierState struct {
	name     string
	parent   int // participant node id, -1 at the root
	children []int
	upFrom   map[int]bool
	ready    bool
	dirty    bool
	released bool
	onDone   func(dirty bool)
}

// barrierParent returns the nearest BFT ancestor of node v whose node is a
// participant (the root returns -1).
func (a *Agent) barrierParent(v int) int {
	for r := a.bft.Parent[v]; r >= 0; r = a.bft.Parent[r] {
		if a.partSet[r] {
			return r
		}
	}
	if v == a.root {
		return -1
	}
	return a.root
}

// barrierChildren lists participants whose barrierParent is v.
func (a *Agent) barrierChildren(v int) []int {
	var out []int
	for _, p := range a.participants {
		if p != v && a.barrierParent(p) == v {
			out = append(out, p)
		}
	}
	return out
}

// bftRoute returns the source route between two participants along BFT
// paths: up from the descendant through its ancestors.
func (a *Agent) bftRoute(from, to int) []int {
	// One of the endpoints is an ancestor of the other in the BFT (the
	// barrier only links participants to their nearest participant
	// ancestor). Build the path by walking parents from the descendant.
	walk := func(desc, anc int) []int {
		path := []int{desc}
		for r := desc; r != anc; {
			r = a.bft.Parent[r]
			if r < 0 {
				return nil
			}
			path = append(path, r)
		}
		return path
	}
	if p := walk(from, to); p != nil {
		return p
	}
	if p := walk(to, from); p != nil {
		return reverseRoute(p)
	}
	return a.routeTo(to)
}

// startBarrier creates (or retrieves) the named barrier and replays any
// early messages that arrived before this node reached it.
func (a *Agent) startBarrier(name string, onDone func(dirty bool)) *barrierState {
	b := a.bars[name]
	if b == nil {
		b = &barrierState{
			name:     name,
			parent:   a.barrierParent(a.ID),
			children: a.barrierChildren(a.ID),
			upFrom:   map[int]bool{},
		}
		a.bars[name] = b
	}
	b.onDone = onDone
	for _, m := range a.pendingBar[name] {
		a.applyBarrierMsg(b, m)
	}
	delete(a.pendingBar, name)
	return b
}

// barrierReady marks this node's own arrival.
func (a *Agent) barrierReady(name string, dirty bool) {
	b := a.bars[name]
	if b == nil || b.ready {
		return
	}
	b.ready = true
	b.dirty = b.dirty || dirty
	a.tryBarrierAdvance(b)
}

// onBarrierMsg dispatches a barrier packet, buffering it if this node has
// not created the barrier yet.
func (a *Agent) onBarrierMsg(m *recMsg) {
	b := a.bars[m.Barrier]
	if b == nil {
		a.pendingBar[m.Barrier] = append(a.pendingBar[m.Barrier], m)
		return
	}
	a.applyBarrierMsg(b, m)
}

func (a *Agent) applyBarrierMsg(b *barrierState, m *recMsg) {
	switch m.Kind {
	case kBarrierUp:
		if !b.upFrom[m.From] {
			b.upFrom[m.From] = true
			b.dirty = b.dirty || m.Dirty
			a.tryBarrierAdvance(b)
		}
	case kBarrierDown:
		a.releaseBarrier(b, m.Dirty)
	}
}

// tryBarrierAdvance sends the up message (or releases, at the root) once
// this node and all its barrier children have arrived.
func (a *Agent) tryBarrierAdvance(b *barrierState) {
	if !b.ready || b.released {
		return
	}
	for _, ch := range b.children {
		if !b.upFrom[ch] {
			return
		}
	}
	a.execInstr(timing.InstrBarrierStep, func() {
		if b.released {
			return
		}
		if b.parent < 0 {
			a.releaseBarrier(b, b.dirty)
			return
		}
		a.sendRec(b.parent, a.bftRoute(a.ID, b.parent), interconnect.LaneRecoveryB,
			&recMsg{Kind: kBarrierUp, Barrier: b.name, Dirty: b.dirty})
	})
}

// releaseBarrier completes the barrier locally and propagates the release
// to this node's barrier children.
func (a *Agent) releaseBarrier(b *barrierState, dirty bool) {
	if b.released {
		return
	}
	b.released = true
	for _, ch := range b.children {
		ch := ch
		a.sendRec(ch, a.bftRoute(a.ID, ch), interconnect.LaneRecoveryB,
			&recMsg{Kind: kBarrierDown, Barrier: b.name, Dirty: dirty})
	}
	if b.onDone != nil {
		done := b.onDone
		a.execInstr(timing.InstrBarrierStep, func() { done(dirty) })
	}
}
