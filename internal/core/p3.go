package core

import (
	"fmt"

	"flashfc/internal/routing"
	"flashfc/internal/timing"
	"flashfc/internal/topology"
)

// Phase 3: interconnect recovery (§4.4): isolate the failed regions, let
// the stalled traffic drain (two-phase agreement with the τ bound), then
// reprogram the routing tables deadlock-free and barrier before any new
// coherence traffic is injected.
//
// The drain discipline and the table repair are owned by the configured
// routing.Strategy. A nil strategy is the paper's policy on the exact
// pre-strategy code path — full two-phase drain, complete up*/down*
// rewrite, identical charges, barrier names, spans and counters — so every
// pre-existing golden stays byte-identical. Alternatives swap in a
// single-phase drain (DrainPartial) or none at all (DrainNone) and charge
// reprogramming per entry actually patched.

func (a *Agent) startInterconnectRecovery() {
	a.setPhase(PhaseInterconnect)
	// Isolation: reprogram this node's own router to discard traffic
	// headed into dead links/routers. The elected root additionally
	// reprograms the live routers of dead nodes (their processors cannot
	// do it), including the local-delivery discard that unclogs a
	// controller stuck in an infinite loop.
	charge := timing.InstrRecoveryEntry / 4
	if a.ID == a.root {
		charge += a.Topo.Routers() * 8
	}
	a.execInstr(charge, func() {
		a.isolateRouter(a.ID)
		if a.ID == a.root {
			for r := 0; r < a.Topo.Routers(); r++ {
				if a.st.Routers[r] == triUp && a.st.Nodes[r] != triUp {
					// A dead node whose memory bank still serves requests
					// (CPU-fail/memory-survives) keeps local delivery: its
					// MAGIC must go on fielding coherence traffic for the
					// home bank. Its router table is still reprogrammed by
					// the root below.
					if a.cfg.MemServes != nil && a.cfg.MemServes(r) {
						continue
					}
					a.isolateRouter(r)
					a.Net.SetDiscardLocal(r, true)
				}
			}
		}
		a.startDrainPhase()
	})
}

// startDrainPhase enters the drain discipline the routing strategy asks
// for (the paper's full two-phase agreement by default).
func (a *Agent) startDrainPhase() {
	kind := routing.DrainFull
	if a.cfg.Routing != nil {
		kind = a.cfg.Routing.Drain()
	}
	switch kind {
	case routing.DrainNone:
		// Tables change under live traffic; in-flight packets reroute
		// mid-journey or die against the new discards.
		a.reprogramRoutes()
	case routing.DrainPartial:
		a.startPartialDrain()
	default:
		a.startDrain(0)
	}
}

// startPartialDrain is the single-phase discipline: wait for τ of
// normal-lane silence, then one barrier. There is no confirm phase, so a
// packet that raced the vote may still be in flight when tables change.
func (a *Agent) startPartialDrain() {
	a.mDrainAttempts.Inc()
	tr := a.cfg.Trace
	spDrain := tr.Begin(a.E.Now(), a.ID, "drain-attempt", a.spPhase, 0)
	spVote := tr.Begin(a.E.Now(), a.ID, "drain-tau-vote", spDrain, 0)
	a.startBarrier("drain-a#0", func(bool) {
		now := a.E.Now()
		tr.End(now, spVote)
		tr.End(now, spDrain)
		a.reprogramRoutes()
	})
	a.drainQuietCheck("drain-a#0", 0)
}

// isolateRouter configures discards on every port of r that points at a
// dead link or dead router.
func (a *Agent) isolateRouter(r int) {
	for port, adj := range a.Topo.Adjacency(r) {
		if a.st.Links[adj.Link] == triDown || a.st.Routers[adj.To] == triDown {
			a.Net.SetDiscard(r, port, true)
		}
	}
}

// startDrain runs one attempt of the two-phase drain agreement: vote to
// proceed after seeing no stalled-traffic delivery for τ; confirm in a
// second phase that nothing arrived since the first vote, else restart.
func (a *Agent) startDrain(attempt int) {
	a.mDrainAttempts.Inc()
	tr := a.cfg.Trace
	spDrain := tr.Begin(a.E.Now(), a.ID, "drain-attempt", a.spPhase, int64(attempt))
	spVote := tr.Begin(a.E.Now(), a.ID, "drain-tau-vote", spDrain, int64(attempt))
	nameA := fmt.Sprintf("drain-a#%d", attempt)
	nameB := fmt.Sprintf("drain-b#%d", attempt)
	a.startBarrier(nameA, func(bool) {
		dirty := a.Ctrl.LastNormalDelivery() > a.voteAt
		tr.End(a.E.Now(), spVote)
		spConfirm := tr.Begin(a.E.Now(), a.ID, "drain-tau-confirm", spDrain, int64(attempt))
		a.startBarrier(nameB, func(dirty bool) {
			now := a.E.Now()
			tr.End(now, spConfirm)
			tr.End(now, spDrain)
			if dirty {
				a.mDrainRestarts.Inc()
				a.startDrain(attempt + 1)
				return
			}
			a.reprogramRoutes()
		})
		a.barrierReady(nameB, dirty)
	})
	a.drainQuietCheck(nameA, attempt)
}

// drainQuietCheck votes in the drain barrier once the controller has seen
// no normal-lane delivery for τ.
func (a *Agent) drainQuietCheck(name string, attempt int) {
	epoch := a.epoch
	var check func()
	check = func() {
		if a.epoch != epoch || a.phase != PhaseInterconnect {
			return
		}
		last := a.Ctrl.LastNormalDelivery()
		quiet := a.E.Now() - last
		if quiet >= a.cfg.DrainTau {
			a.voteAt = a.E.Now()
			a.barrierReady(name, false)
			return
		}
		a.E.After(a.cfg.DrainTau-quiet, check)
	}
	a.E.After(a.cfg.DrainTau, check)
}

// reprogramRoutes computes the strategy's repair on the surviving graph
// (the paper's: full up*/down* tables) and installs this node's router row
// (the root also handles dead nodes' live routers), then barriers before
// new traffic is allowed (§4.4). The paper path charges a full-row rewrite;
// strategies charge per entry their repair actually patched.
func (a *Agent) reprogramRoutes() {
	n := a.Topo.Routers()
	strat := a.cfg.Routing
	var rep routing.Repair
	charge := n * timing.InstrRouteTablePerEntry
	if strat != nil {
		rep = strat.RepairTables(a.view, a.bft)
		charge = rep.PatchedPerRouter[a.ID] * timing.InstrRouteTablePerEntry
		a.mRoutesPatched.Add(uint64(rep.PatchedPerRouter[a.ID]))
		if rep.Fallback {
			a.mRouteFallbacks.Inc()
		}
	}
	if a.ID == a.root {
		charge *= 2 // rows for orphaned routers too
	}
	spRoutes := a.cfg.Trace.Begin(a.E.Now(), a.ID, "route-reprogram", a.spPhase, 0)
	a.execInstr(charge, func() {
		tables := rep.Tables
		if strat == nil {
			tables = topology.UpDownTables(a.view, a.bft)
		}
		a.Net.SetRouterTable(a.ID, tables[a.ID])
		if a.ID == a.root {
			for r := 0; r < n; r++ {
				if a.st.Routers[r] == triUp && a.st.Nodes[r] != triUp {
					a.Net.SetRouterTable(r, tables[r])
				}
			}
		}
		a.startBarrier("p3-post", func(bool) {
			a.cfg.Trace.End(a.E.Now(), spRoutes)
			a.report.P3End = a.E.Now()
			a.startCoherenceRecovery()
		})
		a.barrierReady("p3-post", false)
	})
}
