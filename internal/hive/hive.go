// Package hive models the Hive operating system's fault-containment
// contract ([3][18], §3.3, §4.6) at the level the paper's end-to-end
// experiments exercise: the machine is partitioned into cells, one per
// hardware failure unit; each cell keeps its kernel data in memory of its
// own unit and firewalls it against remote exclusive fetches; cells
// communicate through an exactly-once RPC subsystem; and after hardware
// recovery the OS adjusts to the new configuration, scrubs incoherent
// pages, terminates applications with essential dependencies on dead
// cells, and resumes the survivors.
package hive

import (
	"fmt"

	"flashfc/internal/coherence"
	"flashfc/internal/machine"
	"flashfc/internal/magic"
	"flashfc/internal/proc"
	"flashfc/internal/sim"
	"flashfc/internal/timing"
)

// Config tunes the Hive model.
type Config struct {
	// Cells is the number of cells; nodes are split into contiguous
	// equal ranges, one per cell (Fig 3.2).
	Cells int
	// KernelPages is the number of kernel-data pages per cell, placed at
	// the bottom of the cell's boss-node memory and firewalled.
	KernelPages int
	// HeartbeatInterval is how often each cell touches its kernel data;
	// a bus error on kernel data is a kernel panic.
	HeartbeatInterval sim.Time
	// CrossCheckInterval is how often each cell probes its ring neighbor
	// with an uncached no-op. A probe into a failed cell is how Hive
	// notices quiet failures: the memory-operation timeout on the probe
	// triggers hardware recovery (Table 4.1).
	CrossCheckInterval sim.Time
	// LegacyIncoherentBug reenables the OS bugs the paper found in 8.4%
	// of its end-to-end runs (§5.2): mishandling of incoherent lines
	// during post-recovery cleanup crashes the cell with probability
	// BugCrashProb per recovery that encounters incoherent lines.
	LegacyIncoherentBug bool
	BugCrashProb        float64
	// OSBaseTime and OSPerCellTime shape the OS recovery duration, which
	// scales with the number of cells rather than nodes (§5.3).
	OSBaseTime    sim.Time
	OSPerCellTime sim.Time
	// RPCRetry is the retransmission interval of the RPC subsystem.
	RPCRetry sim.Time
	// OnOSRecovered fires after OS recovery completes.
	OnOSRecovered func()
}

// DefaultConfig returns an experiment-calibrated Hive configuration.
func DefaultConfig(cells int) Config {
	return Config{
		Cells:              cells,
		KernelPages:        8,
		HeartbeatInterval:  500 * sim.Microsecond,
		CrossCheckInterval: sim.Millisecond,
		BugCrashProb:       0.08,
		OSBaseTime:         5 * sim.Millisecond,
		OSPerCellTime:      1500 * sim.Microsecond,
		RPCRetry:           3 * sim.Millisecond,
	}
}

// MachineConfig builds the machine configuration a Hive system needs:
// failure units matching the cells and the firewall enabled.
func MachineConfig(cells, nodesPerCell int, memBytes, l2Bytes uint64, seed int64) machine.Config {
	n := cells * nodesPerCell
	mc := machine.DefaultConfig(n)
	mc.Seed = seed
	mc.MemBytes = memBytes
	mc.L2Bytes = l2Bytes
	mc.Magic.FirewallEnabled = true
	units := make([]int, n)
	for i := range units {
		units[i] = i / nodesPerCell
	}
	mc.FailureUnits = units
	return mc
}

// Cell is one Hive kernel managing one failure unit.
type Cell struct {
	ID    int
	Nodes []int // member node ids; Nodes[0] is the boss
	h     *Hive

	alive     bool
	crashed   bool // software crash (kernel panic / legacy bug)
	crashWhy  string
	kernel    []coherence.Addr // kernel line addresses (heartbeat targets)
	hbIndex   int
	hbStopped bool

	// RPC state.
	rpcSeq   uint64
	pending  map[uint64]*rpcCall
	handlers map[string]func(from int, args any) (any, error)
	seen     map[string]any // exactly-once dedup: "cell:seq" -> cached reply
}

// Boss returns the cell's coordinating node id.
func (c *Cell) Boss() int { return c.Nodes[0] }

// Alive reports whether the cell is running (hardware up, no kernel panic).
func (c *Cell) Alive() bool { return c.alive && !c.crashed }

// Crashed reports whether the cell suffered a software crash, and why.
func (c *Cell) Crashed() (bool, string) { return c.crashed, c.crashWhy }

// suspended reports whether the cell's processors are paused by recovery;
// background OS activity (heartbeats, cross-checks, RPC retransmissions)
// waits it out.
func (c *Cell) suspended() bool { return c.h.M.Nodes[c.Boss()].CPU.Paused() }

func (c *Cell) String() string {
	return fmt.Sprintf("cell%d(nodes=%v alive=%v)", c.ID, c.Nodes, c.Alive())
}

// Hive is the whole operating system instance.
type Hive struct {
	M     *machine.Machine
	Cfg   Config
	Cells []*Cell

	// HWTime and OSTime record the durations of the last hardware and OS
	// recovery (Fig 5.7).
	HWTime, OSTime sim.Time
	recoveries     int
	// OnCellDeath observes cells dying (hardware or software).
	OnCellDeath func(c *Cell, why string)
}

// New attaches a Hive instance to m. The machine must have been built from
// MachineConfig (matching failure units, firewall on).
func New(m *machine.Machine, cfg Config) *Hive {
	if m.Cfg.Nodes%cfg.Cells != 0 {
		panic("hive: nodes must divide evenly into cells")
	}
	h := &Hive{M: m, Cfg: cfg}
	per := m.Cfg.Nodes / cfg.Cells
	for ci := 0; ci < cfg.Cells; ci++ {
		c := &Cell{
			ID: ci, h: h, alive: true,
			pending:  map[uint64]*rpcCall{},
			handlers: map[string]func(int, any) (any, error){},
			seen:     map[string]any{},
		}
		for k := 0; k < per; k++ {
			c.Nodes = append(c.Nodes, ci*per+k)
		}
		h.Cells = append(h.Cells, c)
		c.setupKernelPages()
		c.setupRPC()
	}
	m.OnAllRecovered = h.osRecover
	for _, c := range h.Cells {
		c.scheduleHeartbeat()
		c.scheduleCrossCheck()
	}
	return h
}

// CellOf returns the cell owning node id.
func (h *Hive) CellOf(node int) *Cell {
	per := h.M.Cfg.Nodes / h.Cfg.Cells
	return h.Cells[node/per]
}

// setupKernelPages places the cell's kernel data at the bottom of the boss
// node's memory and firewalls it: only member nodes get write access
// (§3.3). This is what protects kernel data from wild and speculative
// writes originating in other cells.
func (c *Cell) setupKernelPages() {
	boss := c.h.M.Nodes[c.Boss()]
	writers := coherence.NewNodeSet(c.h.M.Cfg.Nodes)
	for _, n := range c.Nodes {
		writers.Add(n)
	}
	base := c.h.M.Space.Base(c.Boss())
	for p := 0; p < c.h.Cfg.KernelPages; p++ {
		page := base + coherence.Addr(p*timing.PageSize)
		boss.Ctrl.SetFirewall(page, writers)
		// One heartbeat line per page.
		c.kernel = append(c.kernel, page)
	}
}

// scheduleHeartbeat arranges the periodic kernel-data touch. A bus error on
// kernel data means the cell lost its own kernel state: kernel panic.
func (c *Cell) scheduleHeartbeat() {
	if c.h.Cfg.HeartbeatInterval <= 0 {
		return
	}
	h := c.h
	var beat func()
	beat = func() {
		if !c.Alive() {
			return
		}
		if c.suspended() {
			h.M.E.After(h.Cfg.HeartbeatInterval, beat)
			return
		}
		addr := c.kernel[c.hbIndex%len(c.kernel)]
		c.hbIndex++
		tok := h.M.Oracle.NextToken()
		cpu := h.M.Nodes[c.Boss()].CPU
		cpu.Submit(proc.Op{Kind: proc.OpWrite, Addr: addr, Token: tok, Done: func(r magic.Result) {
			switch r.Err {
			case nil:
				h.M.Oracle.Wrote(addr, tok)
			case magic.ErrBusError:
				c.panic("kernel data lost (bus error on kernel page)")
			case magic.ErrAborted:
				// Recovery in progress; the next beat retries.
			}
		}})
		h.M.E.After(h.Cfg.HeartbeatInterval, beat)
	}
	h.M.E.After(h.Cfg.HeartbeatInterval, beat)
}

// scheduleCrossCheck arranges the periodic aliveness probes: the boss
// rotates over the cell's own member nodes (a multiprocessor kernel notices
// a silent member through its own scheduling and IPIs) and the next cell's
// boss in the ring. The probes are plain uncached operations; probing a
// dead or wedged controller runs into the memory-operation timeout, which
// is what drops this node into recovery (Table 4.1).
func (c *Cell) scheduleCrossCheck() {
	h := c.h
	if h.Cfg.CrossCheckInterval <= 0 {
		return
	}
	// Probe targets: own members (excluding the boss) plus the ring
	// neighbor's boss.
	var targets []int
	for _, n := range c.Nodes[1:] {
		targets = append(targets, n)
	}
	if len(h.Cells) > 1 {
		targets = append(targets, h.Cells[(c.ID+1)%len(h.Cells)].Boss())
	}
	if len(targets) == 0 {
		return
	}
	idx := 0
	var check func()
	check = func() {
		if !c.Alive() {
			return
		}
		// Probe unless this cell's own processors are held by recovery.
		// A dead-but-undeclared target is exactly what the probe must
		// find: its timeout is the detection mechanism.
		if !c.suspended() {
			target := targets[idx%len(targets)]
			idx++
			boss := h.M.Nodes[c.Boss()]
			// Targets the node map already declares dead need no probe.
			if boss.Ctrl.NodeUp(target) {
				boss.Ctrl.SendUncached(target, false, false, "hive-alive?", func(any, error) {})
			}
		}
		h.M.E.After(h.Cfg.CrossCheckInterval, check)
	}
	h.M.E.After(h.Cfg.CrossCheckInterval, check)
}

// panic crashes the cell for a software reason.
func (c *Cell) panic(why string) {
	if c.crashed || !c.alive {
		return
	}
	c.crashed = true
	c.crashWhy = why
	for _, n := range c.Nodes {
		c.h.M.Nodes[n].CPU.Pause()
	}
	if c.h.OnCellDeath != nil {
		c.h.OnCellDeath(c, why)
	}
	c.failPendingRPCs(fmt.Errorf("hive: cell %d crashed: %s", c.ID, why))
}

// hardwareDeath marks the cell dead after its failure unit was lost.
func (c *Cell) hardwareDeath(why string) {
	if !c.alive {
		return
	}
	c.alive = false
	if c.h.OnCellDeath != nil {
		c.h.OnCellDeath(c, why)
	}
	c.failPendingRPCs(fmt.Errorf("hive: cell %d down: %s", c.ID, why))
}
