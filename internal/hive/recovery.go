package hive

import (
	"flashfc/internal/coherence"
	"flashfc/internal/core"
	"flashfc/internal/sim"
	"flashfc/internal/timing"
)

// OS recovery (§4.6): after the hardware recovery algorithm completes, the
// node controllers raise an interrupt and Hive adjusts its internal state
// before letting user processes continue: dead cells are declared, internal
// tables reflect the new configuration, incoherent pages are scrubbed
// through the MAGIC service, and applications with essential dependencies
// on dead cells are terminated (the workload layer observes cell deaths).
//
// OS recovery time scales with the number of cells rather than nodes
// (§5.3), plus the page scrub work.

// osRecover is installed as machine.OnAllRecovered.
func (h *Hive) osRecover(reports map[int]*core.Report) {
	h.recoveries++
	hwStart := h.M.E.Now()
	var earliest sim.Time = -1
	for _, r := range reports {
		if earliest < 0 || r.Start < earliest {
			earliest = r.Start
		}
	}
	if earliest >= 0 {
		h.HWTime = hwStart - earliest
	}

	// Declare cells whose failure unit was lost.
	aliveCells := 0
	for _, c := range h.Cells {
		if !c.alive {
			continue
		}
		lost := false
		for _, n := range c.Nodes {
			r := reports[n]
			if r == nil || r.ShutDown || r.Isolated {
				lost = true
				break
			}
		}
		if lost {
			c.hardwareDeath("failure unit lost a component")
			continue
		}
		aliveCells++
	}

	// Per-cell recovery work: configuration adjustment plus the page
	// scrub of incoherent lines left in the cell's memory.
	osWork := h.Cfg.OSBaseTime + sim.Time(aliveCells)*h.Cfg.OSPerCellTime
	maxScrub := sim.Time(0)
	for _, c := range h.Cells {
		if !c.Alive() {
			continue
		}
		// Kernel pages are never silently scrubbed: losing kernel data
		// means the cell cannot continue (§3.3).
		kernelPage := map[coherence.Addr]bool{}
		for _, k := range c.kernel {
			kernelPage[k.Page()] = true
		}
		scrubbed := 0
		pages := map[coherence.Addr]bool{}
		for _, n := range c.Nodes {
			node := h.M.Nodes[n]
			node.Dir.ForEach(func(a coherence.Addr, e *coherence.DirEntry) {
				if e.State == coherence.DirIncoherent {
					pages[a.Page()] = true
				}
			})
			for page := range pages {
				if !node.Mem.Owns(page) || kernelPage[page] {
					continue
				}
				k := node.Ctrl.ScrubPage(page)
				scrubbed += k
				for off := coherence.Addr(0); off < timing.PageSize; off += timing.LineSize {
					h.M.Oracle.Scrubbed(page + off)
				}
				pages[page] = false
			}
		}
		scrubTime := sim.Time(len(pages)*timing.InstrOSPageScan*timing.LinesPerPage) * timing.MagicCycle
		if scrubTime > maxScrub {
			maxScrub = scrubTime
		}
		if scrubbed > 0 && h.Cfg.LegacyIncoherentBug {
			// The paper's end-to-end failures (§5.2): OS bugs in the
			// handling of incoherent lines after a fault.
			if h.M.E.Rand().Float64() < h.Cfg.BugCrashProb {
				c.panic("legacy bug: mishandled incoherent line during cleanup")
			}
		}
	}
	osWork += maxScrub

	h.M.E.After(osWork, func() {
		h.OSTime = h.M.E.Now() - hwStart
		// Resume user processes on the surviving cells.
		for _, c := range h.Cells {
			if !c.Alive() {
				continue
			}
			for _, n := range c.Nodes {
				h.M.Nodes[n].CPU.Resume()
			}
		}
		if h.Cfg.OnOSRecovered != nil {
			h.Cfg.OnOSRecovered()
		}
	})
}

// Recoveries reports how many OS recoveries have run.
func (h *Hive) Recoveries() int { return h.recoveries }
