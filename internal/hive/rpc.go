package hive

import (
	"errors"
	"fmt"
	"sort"
)

// Inter-cell RPC (§3.3): cells never touch each other's I/O devices or
// kernel data directly; they ask the owning cell through RPC. The transport
// (an uncached doorbell) is vulnerable to packet loss during faults, so the
// subsystem layers an end-to-end exactly-once protocol on top: requests
// carry (cell, seq) identifiers, servers deduplicate and cache replies, and
// clients retransmit until they get an answer or learn the target is dead.

// ErrCellDown reports an RPC aimed at a dead cell.
var ErrCellDown = errors.New("hive: target cell is down")

// rpcEnvelope is the uncached payload.
type rpcEnvelope struct {
	FromCell int
	Seq      uint64
	Method   string
	Args     any
	Err      string
	Result   any
	IsReply  bool
}

// rpcCall is a pending client-side call.
type rpcCall struct {
	seq      uint64
	to       int // cell id
	method   string
	args     any
	cb       func(any, error)
	attempts int
	done     bool
}

// Handle registers an RPC handler on the cell.
func (c *Cell) Handle(method string, fn func(fromCell int, args any) (any, error)) {
	c.handlers[method] = fn
}

// setupRPC wires the boss node's uncached-operation handler to the RPC
// dispatcher.
func (c *Cell) setupRPC() {
	boss := c.h.M.Nodes[c.Boss()]
	boss.Ctrl.SetUncachedHandler(func(src int, payload any) (any, error) {
		if s, ok := payload.(string); ok && s == "hive-alive?" {
			return "ok", nil // cross-cell aliveness probe
		}
		env, ok := payload.(*rpcEnvelope)
		if !ok {
			return nil, fmt.Errorf("hive: unexpected uncached payload %T", payload)
		}
		return c.serve(env)
	})
}

// serve executes (or replays) a request with exactly-once semantics.
func (c *Cell) serve(env *rpcEnvelope) (any, error) {
	if !c.Alive() {
		return nil, fmt.Errorf("hive: cell %d not running", c.ID)
	}
	key := fmt.Sprintf("%d:%d", env.FromCell, env.Seq)
	if cached, ok := c.seen[key]; ok {
		return cached, nil
	}
	fn := c.handlers[env.Method]
	if fn == nil {
		return nil, fmt.Errorf("hive: no handler for %q", env.Method)
	}
	reply := &rpcEnvelope{Seq: env.Seq, IsReply: true}
	res, err := fn(env.FromCell, env.Args)
	if err != nil {
		reply.Err = err.Error()
	}
	reply.Result = res
	c.seen[key] = reply
	return reply, nil
}

// Call invokes method on the target cell, completing through cb exactly
// once. Retransmissions are transparent; the call fails only if the target
// cell dies or this cell does.
func (c *Cell) Call(to *Cell, method string, args any, cb func(any, error)) {
	c.rpcSeq++
	call := &rpcCall{seq: c.rpcSeq, to: to.ID, method: method, args: args, cb: cb}
	c.pending[call.seq] = call
	c.transmit(call)
}

func (c *Cell) transmit(call *rpcCall) {
	if call.done {
		return
	}
	if !c.Alive() {
		c.finish(call, nil, fmt.Errorf("hive: calling cell %d is down", c.ID))
		return
	}
	target := c.h.Cells[call.to]
	if !target.Alive() {
		c.finish(call, nil, ErrCellDown)
		return
	}
	if c.suspended() || target.suspended() {
		// Recovery owns the processors; retry once it completes.
		c.h.M.E.After(c.h.Cfg.RPCRetry, func() { c.transmit(call) })
		return
	}
	call.attempts++
	if call.attempts > 200 {
		c.finish(call, nil, fmt.Errorf("hive: rpc %s to cell %d gave up", call.method, call.to))
		return
	}
	env := &rpcEnvelope{FromCell: c.ID, Seq: call.seq, Method: call.method, Args: call.args}
	boss := c.h.M.Nodes[c.Boss()]
	answered := false
	boss.Ctrl.SendUncached(target.Boss(), true, false, env, func(v any, err error) {
		answered = true
		if call.done {
			return
		}
		if err != nil {
			// Lost doorbell or recovery abort: retransmit later; the
			// server's dedup table preserves exactly-once semantics.
			c.h.M.E.After(c.h.Cfg.RPCRetry, func() { c.transmit(call) })
			return
		}
		reply, ok := v.(*rpcEnvelope)
		if !ok || !reply.IsReply {
			c.finish(call, nil, fmt.Errorf("hive: malformed rpc reply %T", v))
			return
		}
		if reply.Err != "" {
			c.finish(call, nil, errors.New(reply.Err))
			return
		}
		c.finish(call, reply.Result, nil)
	})
	// Belt-and-braces timer: if the transport never completed (e.g. the
	// request died with a recovery epoch), retransmit.
	c.h.M.E.After(c.h.Cfg.RPCRetry*4, func() {
		if !answered && !call.done {
			answered = true // avoid double paths
			c.transmit(call)
		}
	})
}

func (c *Cell) finish(call *rpcCall, v any, err error) {
	if call.done {
		return
	}
	call.done = true
	delete(c.pending, call.seq)
	if call.cb != nil {
		call.cb(v, err)
	}
}

// failPendingRPCs aborts all in-flight calls with err, oldest first (the
// completion callbacks re-enter user code; keep the order deterministic).
func (c *Cell) failPendingRPCs(err error) {
	seqs := make([]uint64, 0, len(c.pending))
	for s := range c.pending {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		c.finish(c.pending[s], nil, err)
	}
}
