package hive

import (
	"strings"
	"testing"

	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/proc"
	"flashfc/internal/sim"
)

// rig builds a Hive system: cells × nodesPerCell nodes, small memories.
func rig(t *testing.T, cells, nodesPerCell int, seed int64) (*machine.Machine, *Hive) {
	t.Helper()
	mc := MachineConfig(cells, nodesPerCell, 256<<10, 16<<10, seed)
	m := machine.New(mc)
	h := New(m, DefaultConfig(cells))
	return m, h
}

// runUntil drives the engine until cond or deadline; reports cond success.
func runUntil(m *machine.Machine, deadline sim.Time, cond func() bool) bool {
	for !cond() && m.E.Now() < deadline {
		step := m.E.Now() + sim.Millisecond
		if step > deadline {
			step = deadline
		}
		m.E.RunUntil(step)
	}
	return cond()
}

func TestCellLayout(t *testing.T) {
	_, h := rig(t, 4, 2, 1)
	if len(h.Cells) != 4 {
		t.Fatalf("cells = %d", len(h.Cells))
	}
	if got := h.Cells[2].Nodes; len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("cell 2 nodes = %v", got)
	}
	if h.CellOf(5) != h.Cells[2] || h.CellOf(0) != h.Cells[0] {
		t.Fatal("CellOf broken")
	}
	if h.Cells[1].Boss() != 2 {
		t.Fatalf("boss of cell 1 = %d", h.Cells[1].Boss())
	}
}

func TestRPCRoundTrip(t *testing.T) {
	m, h := rig(t, 4, 1, 2)
	h.Cells[1].Handle("echo", func(from int, args any) (any, error) {
		return args.(string) + "!", nil
	})
	var got any
	var gerr error
	h.Cells[0].Call(h.Cells[1], "echo", "hi", func(v any, err error) { got, gerr = v, err })
	m.E.RunUntil(10 * sim.Millisecond)
	if gerr != nil || got != "hi!" {
		t.Fatalf("rpc: %v %v", got, gerr)
	}
}

func TestRPCExactlyOnce(t *testing.T) {
	m, h := rig(t, 4, 1, 3)
	count := 0
	h.Cells[1].Handle("inc", func(from int, args any) (any, error) {
		count++
		return count, nil
	})
	// Issue the call; a false alarm mid-flight forces retransmission
	// paths through recovery. The handler must run exactly once.
	var results []any
	h.Cells[0].Call(h.Cells[1], "inc", nil, func(v any, err error) {
		if err != nil {
			t.Errorf("rpc failed: %v", err)
		}
		results = append(results, v)
	})
	m.FalseAlarm(2)
	if !runUntil(m, 2*sim.Second, func() bool { return len(results) == 1 && m.Recovered() }) {
		t.Fatalf("rpc did not complete: results=%v recovered=%v", results, m.Recovered())
	}
	// Drain any straggler retransmissions, then check the count.
	m.E.RunUntil(m.E.Now() + 100*sim.Millisecond)
	if count != 1 {
		t.Fatalf("handler ran %d times, want exactly once", count)
	}
}

func TestRPCToDeadCellFails(t *testing.T) {
	m, h := rig(t, 4, 1, 4)
	h.Cells[2].Handle("noop", func(int, any) (any, error) { return nil, nil })
	m.Inject(fault.Fault{Type: fault.NodeFailure, Node: 2})
	var gerr error
	done := false
	h.Cells[0].Call(h.Cells[2], "noop", nil, func(v any, err error) { gerr = err; done = true })
	if !runUntil(m, 3*sim.Second, func() bool { return done }) {
		t.Fatal("rpc to dead cell never completed")
	}
	if gerr == nil {
		t.Fatal("rpc to dead cell should fail")
	}
}

func TestParallelMakeCleanRun(t *testing.T) {
	m, h := rig(t, 4, 1, 5)
	mk := NewMake(h, DefaultMakeConfig())
	idle := false
	mk.Start(func() { idle = true })
	if !runUntil(m, 5*sim.Second, func() bool { return idle }) {
		for _, task := range mk.Tasks {
			t.Logf("task %d: %v %s", task.FileID, task.State, task.FailWhy)
		}
		t.Fatal("make did not finish")
	}
	o := mk.Evaluate()
	if !o.OK() || o.Completed != 3 {
		t.Fatalf("clean run: %+v", o)
	}
}

func TestParallelMakeClientCellDies(t *testing.T) {
	m, h := rig(t, 4, 1, 6)
	mk := NewMake(h, DefaultMakeConfig())
	idle := false
	mk.Start(func() { idle = true })
	// Kill cell 2's node mid-run.
	m.InjectAt(fault.Fault{Type: fault.NodeFailure, Node: 2}, 500*sim.Microsecond)
	if !runUntil(m, 10*sim.Second, func() bool { return idle && m.Recovered() }) {
		for _, task := range mk.Tasks {
			t.Logf("task %d: %v %s", task.FileID, task.State, task.FailWhy)
		}
		t.Fatalf("make did not finish (idle=%v recovered=%v)", idle, m.Recovered())
	}
	o := mk.Evaluate()
	if !o.OK() {
		t.Fatalf("unaffected compiles must succeed: %+v", o)
	}
	if o.Excused != 1 || o.Completed != 2 {
		t.Fatalf("excused=%d completed=%d, want 1/2", o.Excused, o.Completed)
	}
	if h.Cells[2].Alive() {
		t.Fatal("cell 2 should be dead")
	}
	if h.HWTime <= 0 || h.OSTime <= 0 {
		t.Fatalf("recovery times not recorded: hw=%v os=%v", h.HWTime, h.OSTime)
	}
}

func TestParallelMakeServerDies(t *testing.T) {
	m, h := rig(t, 4, 1, 7)
	mk := NewMake(h, DefaultMakeConfig())
	idle := false
	mk.Start(func() { idle = true })
	m.InjectAt(fault.Fault{Type: fault.NodeFailure, Node: 0}, 500*sim.Microsecond)
	if !runUntil(m, 10*sim.Second, func() bool { return idle && m.Recovered() }) {
		t.Fatalf("make did not finish (idle=%v recovered=%v)", idle, m.Recovered())
	}
	o := mk.Evaluate()
	if !o.ServerDied {
		t.Fatal("server should be dead")
	}
	if !o.OK() {
		t.Fatalf("run with dead server should have no failures (all excused): %+v", o)
	}
}

func TestParallelMakeInfiniteLoop(t *testing.T) {
	m, h := rig(t, 4, 1, 8)
	mk := NewMake(h, DefaultMakeConfig())
	idle := false
	mk.Start(func() { idle = true })
	m.InjectAt(fault.Fault{Type: fault.InfiniteLoop, Node: 3}, 300*sim.Microsecond)
	if !runUntil(m, 10*sim.Second, func() bool { return idle && m.Recovered() }) {
		for _, task := range mk.Tasks {
			t.Logf("task %d: %v %s", task.FileID, task.State, task.FailWhy)
		}
		t.Fatalf("make did not finish (idle=%v recovered=%v)", idle, m.Recovered())
	}
	o := mk.Evaluate()
	if !o.OK() {
		t.Fatalf("unaffected compiles must succeed: %+v", o)
	}
}

func TestLegacyBugCrashesCell(t *testing.T) {
	// With the paper's OS bugs reenabled and a guaranteed crash
	// probability, a run that leaves incoherent lines behind crashes a
	// surviving cell and counts as a failed experiment (§5.2).
	mc := MachineConfig(4, 1, 256<<10, 16<<10, 9)
	m := machine.New(mc)
	hcfg := DefaultConfig(4)
	hcfg.LegacyIncoherentBug = true
	hcfg.BugCrashProb = 1.0
	h := New(m, hcfg)
	mk := NewMake(h, DefaultMakeConfig())
	idle := false
	mk.Start(func() { idle = true })
	// Kill cell 3's node while it is pushing results into the server's
	// page (exclusive remote lines -> incoherent at the server).
	m.InjectAt(fault.Fault{Type: fault.NodeFailure, Node: 3}, 4500*sim.Microsecond)
	if !runUntil(m, 10*sim.Second, func() bool { return idle && m.Recovered() }) {
		t.Fatalf("make did not finish (idle=%v recovered=%v)", idle, m.Recovered())
	}
	o := mk.Evaluate()
	if o.OK() {
		t.Skip("fault timing did not leave incoherent lines behind; covered by Table 5.4 runs")
	}
	found := false
	for _, f := range o.Failures {
		if strings.Contains(f, "legacy bug") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failures should mention the legacy bug: %v", o.Failures)
	}
}

func TestFirewallProtectsKernelFromSpeculativeWrites(t *testing.T) {
	// §3.3: an incorrectly speculated write can pull an arbitrary line
	// exclusive into a cache; if that node fails, the data is lost. The
	// firewall prevents remote exclusive fetches of kernel pages, so the
	// victim cell survives.
	m, h := rig(t, 2, 1, 10)
	kernelLine := h.Cells[0].kernel[0]
	// Node 1 (cell 1) speculatively write-fetches cell 0's kernel line.
	m.Nodes[1].CPU.Speculate(kernelLine)
	m.E.RunUntil(m.E.Now() + 300*sim.Microsecond)
	if m.Nodes[1].Cache.Lookup(kernelLine) != nil {
		t.Fatal("firewall should have denied the speculative exclusive fetch")
	}
	if m.Nodes[0].Ctrl.Stats.FirewallDenied == 0 {
		t.Fatal("firewall denial not counted")
	}
	// Cell 1 dies; cell 0's kernel data is intact and its heartbeat keeps
	// running.
	m.Inject(fault.Fault{Type: fault.NodeFailure, Node: 1})
	m.Nodes[0].CPU.Submit(readOpFor(m, 1))
	if !runUntil(m, 3*sim.Second, func() bool { return m.Recovered() }) {
		t.Fatal("recovery did not complete")
	}
	m.E.RunUntil(m.E.Now() + 10*sim.Millisecond)
	if crashed, why := h.Cells[0].Crashed(); crashed {
		t.Fatalf("cell 0 crashed despite firewall: %s", why)
	}
}

func TestWithoutFirewallSpeculativeWriteKillsOtherCell(t *testing.T) {
	// The same scenario with the firewall disabled: the speculative
	// fetch succeeds, the speculating node dies holding the only copy of
	// the victim's kernel line, and the victim cell panics — one fault
	// takes down two cells (§3.3's motivation for the firewall).
	mc := MachineConfig(2, 1, 256<<10, 16<<10, 11)
	mc.Magic.FirewallEnabled = false
	m := machine.New(mc)
	h := New(m, DefaultConfig(2))
	kernelLine := h.Cells[0].kernel[0]
	m.Nodes[1].CPU.Speculate(kernelLine)
	// Check before cell 0's heartbeat recalls the line (first beat at
	// 500 us), then kill the speculating node while it still holds it.
	m.E.RunUntil(m.E.Now() + 300*sim.Microsecond)
	if m.Nodes[1].Cache.Lookup(kernelLine) == nil {
		t.Fatal("speculative fetch should have succeeded without the firewall")
	}
	m.Inject(fault.Fault{Type: fault.NodeFailure, Node: 1})
	m.Nodes[0].CPU.Submit(readOpFor(m, 1))
	if !runUntil(m, 3*sim.Second, func() bool { return m.Recovered() }) {
		t.Fatal("recovery did not complete")
	}
	crashed := false
	runUntil(m, m.E.Now()+100*sim.Millisecond, func() bool {
		crashed, _ = h.Cells[0].Crashed()
		return crashed
	})
	if !crashed {
		t.Fatal("cell 0 should have panicked on its lost kernel line")
	}
}

func TestHeartbeatDetectsKernelLoss(t *testing.T) {
	m, h := rig(t, 2, 2, 12)
	// Simulate kernel data loss directly: mark a kernel line incoherent.
	kernelLine := h.Cells[1].kernel[0]
	boss := h.Cells[1].Boss()
	m.Nodes[boss].Cache.Invalidate(kernelLine)
	e := m.Nodes[boss].Dir.Get(kernelLine)
	e.State = 5 // coherence.DirIncoherent
	crashed := false
	if !runUntil(m, sim.Second, func() bool { crashed, _ = h.Cells[1].Crashed(); return crashed }) {
		t.Fatal("heartbeat did not detect kernel data loss")
	}
}

// readOpFor builds a read of node target's memory, used to detect failures.
func readOpFor(m *machine.Machine, target int) proc.Op {
	return proc.Op{Kind: proc.OpRead, Addr: m.Space.Base(target) + 0x80}
}

func TestMultiNodeCellsSurviveAndDoom(t *testing.T) {
	// 2 cells x 2 nodes: a node failure dooms the whole 2-node cell
	// (failure unit), and the other cell — including its second node —
	// keeps working.
	m, h := rig(t, 2, 2, 20)
	mk := NewMake(h, DefaultMakeConfig())
	idle := false
	mk.Start(func() { idle = true })
	// Kill node 3 (second node of cell 1).
	m.InjectAt(fault.Fault{Type: fault.NodeFailure, Node: 3}, 400*sim.Microsecond)
	if !runUntil(m, 20*sim.Second, func() bool { return idle && m.Recovered() && h.OSTime > 0 }) {
		t.Fatalf("did not finish: idle=%v recovered=%v", idle, m.Recovered())
	}
	if h.Cells[1].Alive() {
		t.Fatal("cell 1 should be dead with its failure unit")
	}
	if !h.Cells[0].Alive() {
		t.Fatal("cell 0 should survive")
	}
	// Node 2 (cell 1's boss, hardware still alive) must have shut down.
	if r := m.Reports()[2]; r == nil || !r.ShutDown {
		t.Fatalf("cell 1's surviving node should have shut down with its unit: %+v", r)
	}
	o := mk.Evaluate()
	if !o.OK() || o.Excused != 1 {
		t.Fatalf("outcome: %+v", o)
	}
}

func TestRPCConcurrentCallsKeepOrderIndependence(t *testing.T) {
	m, h := rig(t, 4, 1, 21)
	sum := 0
	h.Cells[2].Handle("add", func(from int, args any) (any, error) {
		sum += args.(int)
		return sum, nil
	})
	done := 0
	for i := 1; i <= 5; i++ {
		h.Cells[0].Call(h.Cells[2], "add", i, func(v any, err error) {
			if err != nil {
				t.Errorf("call failed: %v", err)
			}
			done++
		})
	}
	if !runUntil(m, sim.Second, func() bool { return done == 5 }) {
		t.Fatalf("calls completed: %d", done)
	}
	if sum != 15 {
		t.Fatalf("sum = %d, want 15", sum)
	}
}

func TestRPCSurvivesRouterFailureElsewhere(t *testing.T) {
	// A router failure on a third cell must not break RPC between two
	// healthy cells: retransmission rides out the recovery window.
	m, h := rig(t, 4, 1, 30)
	h.Cells[1].Handle("ping", func(int, any) (any, error) { return "pong", nil })
	var got any
	done := false
	m.InjectAt(fault.Fault{Type: fault.RouterFailure, Router: 3}, 200*sim.Microsecond)
	m.E.At(250*sim.Microsecond, func() {
		h.Cells[0].Call(h.Cells[1], "ping", nil, func(v any, err error) {
			if err != nil {
				t.Errorf("rpc failed: %v", err)
			}
			got = v
			done = true
		})
	})
	if !runUntil(m, 10*sim.Second, func() bool { return done && m.Recovered() }) {
		t.Fatalf("rpc/recovery incomplete: done=%v recovered=%v", done, m.Recovered())
	}
	if got != "pong" {
		t.Fatalf("got %v", got)
	}
}

func TestEvaluateDetectsArtifactMismatch(t *testing.T) {
	m, h := rig(t, 2, 1, 31)
	mk := NewMake(h, DefaultMakeConfig())
	idle := false
	mk.Start(func() { idle = true })
	if !runUntil(m, 5*sim.Second, func() bool { return idle }) {
		t.Fatal("make did not finish")
	}
	// Corrupt the recorded artifact: Evaluate must flag it.
	mk.submitted[0] ^= 0xdead
	o := mk.Evaluate()
	if o.OK() {
		t.Fatal("corrupted artifact should fail evaluation")
	}
}

func TestCellStringAndStates(t *testing.T) {
	m, h := rig(t, 2, 1, 32)
	if h.Cells[0].String() == "" {
		t.Fatal("empty cell string")
	}
	if crashed, _ := h.Cells[0].Crashed(); crashed {
		t.Fatal("fresh cell crashed?")
	}
	h.Cells[1].panic("test crash")
	if h.Cells[1].Alive() {
		t.Fatal("crashed cell still alive")
	}
	if crashed, why := h.Cells[1].Crashed(); !crashed || why != "test crash" {
		t.Fatalf("crash state: %v %q", crashed, why)
	}
	_ = m
}
