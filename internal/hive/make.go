package hive

import (
	"fmt"

	"flashfc/internal/coherence"
	"flashfc/internal/magic"
	"flashfc/internal/proc"
	"flashfc/internal/sim"
	"flashfc/internal/timing"
)

// The parallel-make workload of §5.1: one compile task per cell, with one
// cell acting as the file server for all the others. The Hive file system
// moves file data across cell boundaries through shared memory, so each
// compile generates heavy cross-cell coherence traffic: the client reads
// its input file from server memory (shared fetches), computes, writes its
// object file into its own memory, pushes a result summary into a
// server-owned page (exclusive fetches of remote memory — the lines that
// can become incoherent when a client cell dies), and finally submits the
// artifact checksum by RPC.

// MakeConfig tunes the workload.
type MakeConfig struct {
	FileLines   int // input file size in lines
	OutputLines int // object file size in lines
	ResultLines int // lines pushed into the server's results page
	ComputeTime sim.Time
}

// DefaultMakeConfig returns a GnuChess-compile-sized task (scaled down to
// simulation-friendly sizes).
func DefaultMakeConfig() MakeConfig {
	return MakeConfig{
		FileLines:   192,
		OutputLines: 64,
		ResultLines: 8,
		ComputeTime: 2 * sim.Millisecond,
	}
}

// TaskState tracks a compile's progress.
type TaskState int

const (
	TaskOpening TaskState = iota
	TaskReading
	TaskComputing
	TaskWritingResults
	TaskSubmitting
	TaskCompleted
	TaskFailed
)

func (s TaskState) String() string {
	switch s {
	case TaskOpening:
		return "opening"
	case TaskReading:
		return "reading"
	case TaskComputing:
		return "computing"
	case TaskWritingResults:
		return "writing-results"
	case TaskSubmitting:
		return "submitting"
	case TaskCompleted:
		return "completed"
	case TaskFailed:
		return "failed"
	default:
		return "?"
	}
}

// CompileTask is one cell's compile.
type CompileTask struct {
	Cell    *Cell
	FileID  int
	State   TaskState
	FailWhy string

	inputSum uint64
	readIdx  int
	writeIdx int
	resIdx   int
	artifact uint64
}

// openReply is the server's answer to "open".
type openReply struct {
	Base  coherence.Addr
	Lines int
}

// submitArgs carries the artifact checksum to the server.
type submitArgs struct {
	FileID   int
	Artifact uint64
}

// Make drives one parallel-make run.
type Make struct {
	H   *Hive
	Cfg MakeConfig

	Server    *Cell
	Tasks     []*CompileTask
	fileSums  []uint64
	submitted map[int]uint64 // fileID -> artifact received by the server
	onAllIdle func()
}

// NewMake prepares the workload: cell 0 serves files to every other cell.
func NewMake(h *Hive, cfg MakeConfig) *Make {
	mk := &Make{H: h, Cfg: cfg, Server: h.Cells[0], submitted: map[int]uint64{}}
	mk.prepareFiles()
	mk.Server.Handle("open", mk.handleOpen)
	mk.Server.Handle("submit", mk.handleSubmit)
	for ci := 1; ci < len(h.Cells); ci++ {
		mk.Tasks = append(mk.Tasks, &CompileTask{Cell: h.Cells[ci], FileID: ci - 1})
	}
	// OS recovery terminates applications with essential dependencies on
	// dead cells (§4.6); Evaluate later classifies them as excused or
	// failed depending on why the cell died.
	prev := h.OnCellDeath
	h.OnCellDeath = func(c *Cell, why string) {
		if prev != nil {
			prev(c, why)
		}
		for _, t := range mk.Tasks {
			if t.Cell == c {
				mk.fail(t, "terminated: "+why)
			}
		}
	}
	return mk
}

// Memory layout inside the server boss node's memory: kernel pages, then
// input files, then one results page per client.
func (mk *Make) fileBase(fileID int) coherence.Addr {
	base := mk.H.M.Space.Base(mk.Server.Boss())
	off := mk.H.Cfg.KernelPages * timing.PageSize
	return base + coherence.Addr(off+fileID*mk.Cfg.FileLines*timing.LineSize)
}

func (mk *Make) resultsBase(fileID int) coherence.Addr {
	base := mk.H.M.Space.Base(mk.Server.Boss())
	off := mk.H.Cfg.KernelPages*timing.PageSize +
		(len(mk.H.Cells)-1)*mk.Cfg.FileLines*timing.LineSize
	off = (off + timing.PageSize - 1) &^ (timing.PageSize - 1)
	return base + coherence.Addr(off+fileID*timing.PageSize)
}

// outputBase is the client-local object-file region, above its kernel pages.
func (mk *Make) outputBase(t *CompileTask) coherence.Addr {
	base := mk.H.M.Space.Base(t.Cell.Boss())
	return base + coherence.Addr(mk.H.Cfg.KernelPages*timing.PageSize)
}

// prepareFiles fills the server's file regions (modeling the page cache
// holding the sources) and records the expected checksums.
func (mk *Make) prepareFiles() {
	mem := mk.H.M.Nodes[mk.Server.Boss()].Mem
	for f := 0; f < len(mk.H.Cells)-1; f++ {
		sum := uint64(0)
		for l := 0; l < mk.Cfg.FileLines; l++ {
			addr := mk.fileBase(f) + coherence.Addr(l*timing.LineSize)
			tok := mk.H.M.Oracle.NextToken()
			mem.Write(addr, tok)
			mk.H.M.Oracle.Wrote(addr, tok)
			sum += tok
		}
		mk.fileSums = append(mk.fileSums, sum)
	}
}

func (mk *Make) handleOpen(from int, args any) (any, error) {
	fileID := args.(int)
	if fileID < 0 || fileID >= len(mk.fileSums) {
		return nil, fmt.Errorf("make: no such file %d", fileID)
	}
	return &openReply{Base: mk.fileBase(fileID), Lines: mk.Cfg.FileLines}, nil
}

func (mk *Make) handleSubmit(from int, args any) (any, error) {
	sa := args.(*submitArgs)
	mk.submitted[sa.FileID] = sa.Artifact
	return true, nil
}

// Start launches all compiles; onAllIdle fires when every task has either
// completed or failed.
func (mk *Make) Start(onAllIdle func()) {
	mk.onAllIdle = onAllIdle
	for _, t := range mk.Tasks {
		mk.open(t)
	}
}

func (mk *Make) fail(t *CompileTask, why string) {
	if t.State == TaskCompleted || t.State == TaskFailed {
		return
	}
	t.State = TaskFailed
	t.FailWhy = why
	mk.checkIdle()
}

func (mk *Make) complete(t *CompileTask) {
	t.State = TaskCompleted
	mk.checkIdle()
}

func (mk *Make) checkIdle() {
	for _, t := range mk.Tasks {
		if t.State != TaskCompleted && t.State != TaskFailed {
			return
		}
	}
	if mk.onAllIdle != nil {
		fn := mk.onAllIdle
		mk.onAllIdle = nil
		fn()
	}
}

func (mk *Make) open(t *CompileTask) {
	t.State = TaskOpening
	t.Cell.Call(mk.Server, "open", t.FileID, func(v any, err error) {
		if err != nil {
			mk.fail(t, "open: "+err.Error())
			return
		}
		t.State = TaskReading
		mk.readNext(t, v.(*openReply))
	})
}

// readNext streams the input file, retrying recovery-aborted reads and
// failing on bus errors (input data lost with the server).
func (mk *Make) readNext(t *CompileTask, or *openReply) {
	if !t.Cell.Alive() {
		mk.fail(t, "cell died while reading")
		return
	}
	if t.readIdx >= or.Lines {
		mk.computeStep(t)
		return
	}
	addr := or.Base + coherence.Addr(t.readIdx*timing.LineSize)
	cpu := mk.H.M.Nodes[t.Cell.Boss()].CPU
	cpu.Submit(proc.Op{Kind: proc.OpRead, Addr: addr, Done: func(r magic.Result) {
		switch r.Err {
		case nil:
			t.inputSum += r.Token
			t.readIdx++
			mk.readNext(t, or)
		case magic.ErrAborted:
			mk.readNext(t, or) // reissue after recovery
		default:
			mk.fail(t, fmt.Sprintf("input line %d: %v", t.readIdx, r.Err))
		}
	}})
}

func (mk *Make) computeStep(t *CompileTask) {
	t.State = TaskComputing
	mk.H.M.E.After(mk.Cfg.ComputeTime, func() { mk.writeOutput(t) })
}

// writeOutput writes the object file into the cell's own memory.
func (mk *Make) writeOutput(t *CompileTask) {
	if !t.Cell.Alive() {
		mk.fail(t, "cell died while writing output")
		return
	}
	if t.writeIdx >= mk.Cfg.OutputLines {
		t.State = TaskWritingResults
		mk.writeResults(t)
		return
	}
	addr := mk.outputBase(t) + coherence.Addr((t.writeIdx+1)*timing.LineSize)
	tok := mk.H.M.Oracle.NextToken()
	cpu := mk.H.M.Nodes[t.Cell.Boss()].CPU
	cpu.Submit(proc.Op{Kind: proc.OpWrite, Addr: addr, Token: tok, Done: func(r magic.Result) {
		switch r.Err {
		case nil:
			mk.H.M.Oracle.Wrote(addr, tok)
			t.artifact += tok
			t.writeIdx++
			mk.writeOutput(t)
		case magic.ErrAborted:
			mk.writeOutput(t)
		default:
			mk.fail(t, fmt.Sprintf("output line %d: %v", t.writeIdx, r.Err))
		}
	}})
}

// writeResults pushes the result summary into the server-owned results
// page: cross-cell exclusive fetches, the lines that become incoherent if
// this cell dies holding them dirty.
func (mk *Make) writeResults(t *CompileTask) {
	if !t.Cell.Alive() {
		mk.fail(t, "cell died while writing results")
		return
	}
	if t.resIdx >= mk.Cfg.ResultLines {
		mk.submit(t)
		return
	}
	addr := mk.resultsBase(t.FileID) + coherence.Addr(t.resIdx*timing.LineSize)
	tok := mk.H.M.Oracle.NextToken()
	cpu := mk.H.M.Nodes[t.Cell.Boss()].CPU
	cpu.Submit(proc.Op{Kind: proc.OpWrite, Addr: addr, Token: tok, Done: func(r magic.Result) {
		switch r.Err {
		case nil:
			mk.H.M.Oracle.Wrote(addr, tok)
			t.resIdx++
			mk.writeResults(t)
		case magic.ErrAborted:
			mk.writeResults(t)
		default:
			mk.fail(t, fmt.Sprintf("result line %d: %v", t.resIdx, r.Err))
		}
	}})
}

func (mk *Make) submit(t *CompileTask) {
	t.State = TaskSubmitting
	t.artifact += t.inputSum
	t.Cell.Call(mk.Server, "submit", &submitArgs{FileID: t.FileID, Artifact: t.artifact}, func(v any, err error) {
		if err != nil {
			mk.fail(t, "submit: "+err.Error())
			return
		}
		mk.complete(t)
	})
}

// Outcome is the verdict of one end-to-end run (one Table 5.4 experiment).
type Outcome struct {
	Completed  int
	Excused    int // compiles lost with their own cell or the server cell
	Failures   []string
	ServerDied bool
}

// OK reports whether the run counts as successful: every compile not
// affected by the fault finished correctly (§5.2: "91.6% of the runs
// correctly finished executing the compiles that were not affected").
func (o *Outcome) OK() bool { return len(o.Failures) == 0 }

// Evaluate classifies every task after the run has gone idle.
func (mk *Make) Evaluate() *Outcome {
	o := &Outcome{ServerDied: !mk.Server.Alive()}
	for _, t := range mk.Tasks {
		cellHWDead := !t.Cell.alive
		cellCrashed := t.Cell.crashed
		switch {
		case t.State == TaskCompleted:
			got, ok := mk.submitted[t.FileID]
			want := mk.expectedArtifact(t)
			if !ok || got != want {
				o.Failures = append(o.Failures,
					fmt.Sprintf("task %d: artifact mismatch (got %x want %x)", t.FileID, got, want))
				continue
			}
			o.Completed++
		case cellHWDead || o.ServerDied:
			// Affected by the fault: excused.
			o.Excused++
		case cellCrashed:
			o.Failures = append(o.Failures,
				fmt.Sprintf("task %d: cell crashed: %s", t.FileID, t.Cell.crashWhy))
		default:
			o.Failures = append(o.Failures,
				fmt.Sprintf("task %d: %v (%s)", t.FileID, t.State, t.FailWhy))
		}
	}
	// A software crash of the server is also a containment failure.
	if crashed, why := mk.Server.Crashed(); crashed {
		o.Failures = append(o.Failures, "server cell crashed: "+why)
	}
	return o
}

func (mk *Make) expectedArtifact(t *CompileTask) uint64 {
	// inputSum is validated against the prepared file sum; output tokens
	// were accumulated as written.
	return t.artifact - t.inputSum + mk.fileSums[t.FileID]
}

// Idle reports whether all tasks reached a terminal state.
func (mk *Make) Idle() bool {
	for _, t := range mk.Tasks {
		if t.State != TaskCompleted && t.State != TaskFailed {
			return false
		}
	}
	return true
}
