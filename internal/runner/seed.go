package runner

// Seed streams: every campaign family owns a disjoint stream id so that
// equal base seeds never produce correlated runs across experiment kinds.
// Families that batch per fault type add the fault type to their stream.
const (
	StreamValidation   = 0x100 // Table 5.3 validation batches (+ fault type)
	StreamEndToEnd     = 0x200 // Table 5.4 end-to-end batches (+ fault type)
	StreamFig57        = 0x300 // Fig 5.7 suspension sweep (+ node count)
	StreamDistribution = 0x400 // recovery-time distribution campaigns
	// StreamWarmup seeds warm-start snapshot construction (index 0): the
	// warm-up is shared by every run of a config, so its seed depends only
	// on the campaign base seed, never on a run index or fault type.
	StreamWarmup = 0x500
	// StreamTail seeds the containment-time tail campaigns (+ fault type).
	StreamTail = 0x600
	// StreamRouting seeds the head-to-head routing campaigns (+ scenario
	// index). Every strategy replays the same runs of a scenario, so the
	// stream does NOT add the strategy — pairing is the point.
	StreamRouting = 0x700
)

// DeriveSeed maps (base, stream, i) to a decorrelated engine seed with a
// SplitMix64-style mixer: each input is folded in with a golden-ratio
// increment and run through the full 64-bit finalizer, so neighbouring run
// indices (or streams) land in unrelated parts of the seed space. This is
// the single seed-derivation scheme for every campaign; it replaces the
// ad-hoc per-driver scrambles (seed+i*7919+ft*104729 and friends), whose
// small prime steps left derived seeds on a lattice.
//
// The result is masked to 63 bits so derived seeds print as non-negative
// numbers that can be passed back via the CLIs' -seed flags.
func DeriveSeed(base int64, stream, i int) int64 {
	const golden = 0x9E3779B97F4A7C15
	z := mix64(uint64(base) + golden)
	z = mix64(z + uint64(int64(stream))*golden)
	z = mix64(z + uint64(int64(i))*golden)
	return int64(z &^ (1 << 63))
}

// mix64 is the SplitMix64 finalizer (Steele, Lea & Flood's fmix64
// variant): an invertible avalanche over the full 64-bit word.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
