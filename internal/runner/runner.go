// Package runner is the shared parallel-campaign infrastructure for the
// experiment drivers: a bounded worker pool that maps a function over
// independent run indices with deterministic result ordering, a
// SplitMix64-based seed-derivation scheme that gives every run a
// decorrelated random stream, and per-campaign throughput accounting.
//
// Every experiment in internal/experiments is a loop over fully
// independent, deterministic simulations — each run builds its own
// sim.Engine from an explicit seed, and nothing is shared between runs —
// so executing them concurrently cannot change any simulated outcome: the
// pool only reorders host-side execution. Map and Campaign therefore
// guarantee bit-identical results to the sequential path for any worker
// count, a property the experiments test suite enforces.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Result is the outcome of one run in a campaign.
type Result[T any] struct {
	// Value is the run's return value (the zero T when Err is non-nil).
	Value T
	// Err is non-nil when the run panicked: the campaign keeps going and
	// the recovered panic is reported here as a *PanicError instead of
	// crashing the whole batch.
	Err error
	// Wall is the host wall-clock time the run took.
	Wall time.Duration
	// Events is the simulated-event count the run reported via
	// Recorder.Report (0 if it reported nothing).
	Events uint64
	// Worker is the pool worker that executed the run (0 when sequential).
	// Host-side scheduling detail: varies with worker count, so anything
	// claiming determinism must ignore it (obs.StripHost does).
	Worker int
}

// PanicError wraps a panic recovered from a single run.
type PanicError struct {
	Index int // run index that crashed
	Value any // the value passed to panic
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("run %d panicked: %v", e.Index, e.Value)
}

// Recorder lets a run report its simulation counters to the pool; the
// experiment drivers pass Engine.EventsFired through it so campaigns can
// account aggregate simulated-events/sec throughput.
type Recorder struct {
	events uint64
}

// Report records the run's simulated-event count (last call wins).
func (r *Recorder) Report(events uint64) { r.events = events }

// Workers resolves a parallelism knob for a campaign of `runs` runs:
// 0 (the zero value of every config struct's Workers field) means one
// worker per available CPU, values below zero clamp to 1, and no campaign
// uses more workers than it has runs.
func Workers(requested, runs int) int {
	w := requested
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if runs >= 0 && w > runs {
		w = runs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(0) … fn(n-1) on up to `workers` goroutines (0 = one per CPU)
// and returns the results in index order regardless of scheduling. A panic
// in any run is re-raised in the caller once the pool has drained; use
// Campaign when a crashed run should become a failed result instead.
func Map[T any](n, workers int, fn func(i int) T) []T {
	results, _ := Campaign(n, workers, func(i int, _ *Recorder) T { return fn(i) }, nil)
	out := make([]T, len(results))
	for i, r := range results {
		if r.Err != nil {
			panic(r.Err.(*PanicError).Value)
		}
		out[i] = r.Value
	}
	return out
}

// Campaign runs fn(0) … fn(n-1) on up to `workers` goroutines and returns
// per-run Results in index order plus aggregate throughput accounting.
// A panicking run is captured into its Result's Err; the rest of the
// campaign is unaffected. observe, when non-nil, is called after each run
// completes — calls are serialized but arrive in completion order, not
// index order.
func Campaign[T any](n, workers int, fn func(i int, rec *Recorder) T, observe func(i int, r Result[T])) ([]Result[T], Stats) {
	return CampaignWithSetup(n, workers, nil, func(i int, _ any, rec *Recorder) T {
		return fn(i, rec)
	}, observe)
}

// CampaignWithSetup is Campaign with per-worker shared state: each worker
// runs setup() lazily before its first run and passes the result to every
// run it executes. The warm-start drivers use it to build one machine
// snapshot per worker and fork every run from it.
//
// The bit-identity guarantee extends to the shared state only if setup is
// deterministic and runs never mutate the state they receive (forking,
// not sharing). A panic in setup is charged to the run that triggered it —
// that run fails like any panicking run — and setup is retried on the
// worker's next run. setup may be nil.
func CampaignWithSetup[T any](n, workers int, setup func() any, fn func(i int, ws any, rec *Recorder) T, observe func(i int, r Result[T])) ([]Result[T], Stats) {
	start := time.Now()
	if n <= 0 {
		return nil, Stats{}
	}
	workers = Workers(workers, n)
	results := make([]Result[T], n)
	setupWall := make([]time.Duration, workers)

	// worker wraps fn with the lazily-built per-worker state; the returned
	// closure is used by exactly one goroutine, so the captured state needs
	// no locking. Setup runs inside runOne's panic isolation and its wall
	// time accrues to the worker's setupWall slot, not to the run — the
	// Stats split that keeps warm-up cost out of run-phase throughput.
	worker := func(w int) func(i int, rec *Recorder) T {
		var ws any
		ready := setup == nil
		return func(i int, rec *Recorder) T {
			if !ready {
				t0 := time.Now()
				ws = setup()
				setupWall[w] += time.Since(t0)
				ready = true
			}
			return fn(i, ws, rec)
		}
	}

	if workers == 1 {
		w := worker(0)
		for i := range results {
			results[i] = runOne(i, w)
			if observe != nil {
				observe(i, results[i])
			}
		}
		return results, summarize(results, time.Since(start), setupWall)
	}

	var next atomic.Int64
	next.Store(-1)
	var mu sync.Mutex // serializes observe
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run := worker(w)
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				results[i] = runOne(i, run)
				results[i].Worker = w
				if observe != nil {
					mu.Lock()
					observe(i, results[i])
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	return results, summarize(results, time.Since(start), setupWall)
}

// runOne executes a single run with panic isolation.
func runOne[T any](i int, fn func(int, *Recorder) T) (res Result[T]) {
	start := time.Now()
	var rec Recorder
	defer func() {
		res.Wall = time.Since(start)
		res.Events = rec.events
		if p := recover(); p != nil {
			var zero T
			res.Value = zero
			res.Err = &PanicError{Index: i, Value: p}
		}
	}()
	res.Value = fn(i, &rec)
	return
}

// Stats aggregates host-side accounting for one campaign (or, via Merge,
// several).
type Stats struct {
	Runs   int           // completed runs, including panicked ones
	Failed int           // runs that panicked
	Wall   time.Duration // wall clock of the whole campaign
	Work   time.Duration // summed per-run wall clock (≥ Wall when parallel)
	Events uint64        // summed simulated events across runs
	// Setup is the summed per-worker lazy-setup time (warm-snapshot builds)
	// — the CPU view of warm-up cost.
	Setup time.Duration
	// SetupWall is the largest single worker's setup time — the wall view.
	// Workers start setup concurrently at campaign start, so Wall−SetupWall
	// approximates the campaign's run phase; dividing events by raw Wall
	// (EventsPerSec) charges warm-up to the runs and understates fork-phase
	// throughput, which is what RunEventsPerSec corrects.
	SetupWall time.Duration
}

func summarize[T any](results []Result[T], wall time.Duration, setupWall []time.Duration) Stats {
	s := Stats{Runs: len(results), Wall: wall}
	for _, r := range results {
		if r.Err != nil {
			s.Failed++
		}
		s.Work += r.Wall
		s.Events += r.Events
	}
	for _, d := range setupWall {
		s.Setup += d
		if d > s.SetupWall {
			s.SetupWall = d
		}
	}
	return s
}

// Merge folds another campaign's accounting into s; walls add (including
// SetupWall — each campaign pays its own warm-up), so a merged Stats
// describes the campaigns run back to back.
func (s *Stats) Merge(o Stats) {
	s.Runs += o.Runs
	s.Failed += o.Failed
	s.Wall += o.Wall
	s.Work += o.Work
	s.Events += o.Events
	s.Setup += o.Setup
	s.SetupWall += o.SetupWall
}

// EventsPerSec is the campaign's simulated-event throughput against total
// wall time, warm-up included — the headline number parallelism is
// supposed to move.
func (s Stats) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// RunEventsPerSec is the run-phase throughput: events against wall time
// with the per-worker lazy setup (warm-snapshot build) excluded. Use this
// when comparing fork-phase cost across warm modes — EventsPerSec charges
// the warm-up to the runs and skews the comparison.
func (s Stats) RunEventsPerSec() float64 {
	run := s.Wall - s.SetupWall
	if run <= 0 {
		return 0
	}
	return float64(s.Events) / run.Seconds()
}

// Speedup reports Work/Wall — how much per-run wall time overlapped.
// On an unloaded multi-core host this approximates the parallel speedup
// over a sequential execution (~1.0 at workers=1); when workers
// oversubscribe the CPUs, per-run walls inflate with time-sharing and the
// ratio overstates the true gain, so benchmark wall clocks (the
// BenchmarkCampaignWorkers* series) are the authoritative comparison.
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Work) / float64(s.Wall)
}

// String renders the accounting the CLIs print after a campaign. Campaigns
// with lazy setup get the warm-up split out and the run-phase rate shown
// alongside the headline rate.
func (s Stats) String() string {
	base := fmt.Sprintf("%d runs in %v (cpu %v, %.1fx), %d simulated events, %.2f Mevents/s",
		s.Runs, s.Wall.Round(time.Millisecond), s.Work.Round(time.Millisecond),
		s.Speedup(), s.Events, s.EventsPerSec()/1e6)
	if s.Setup > 0 {
		base += fmt.Sprintf(" (setup %v, run-phase %.2f Mevents/s)",
			s.SetupWall.Round(time.Millisecond), s.RunEventsPerSec()/1e6)
	}
	return base
}
