package runner

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestMapIndexOrder(t *testing.T) {
	// Skew per-run durations so later indices finish first; the result
	// slice must still come back in index order.
	n := 32
	got := Map(n, 8, func(i int) int {
		time.Sleep(time.Duration((n-i)%4) * time.Millisecond)
		return i * i
	})
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapMatchesSequentialForAnyWorkerCount(t *testing.T) {
	fn := func(i int) int64 { return DeriveSeed(7, 3, i) }
	want := Map(50, 1, fn)
	for _, w := range []int{2, 4, 8, 50, 0} {
		if got := Map(50, w, fn); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from sequential", w)
		}
	}
}

func TestMapZeroAndNegativeRuns(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("n=0 returned %v", got)
	}
	if got := Map(-3, 4, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("n=-3 returned %v", got)
	}
}

func TestMapRepanics(t *testing.T) {
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recovered %v, want boom", p)
		}
	}()
	Map(4, 2, func(i int) int {
		if i == 2 {
			panic("boom")
		}
		return i
	})
	t.Fatal("Map did not re-panic")
}

func TestCampaignPanicIsolation(t *testing.T) {
	results, stats := Campaign(6, 3, func(i int, _ *Recorder) int {
		if i == 4 {
			panic("injected crash")
		}
		return i + 100
	}, nil)
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if i == 4 {
			var pe *PanicError
			if !errors.As(r.Err, &pe) || pe.Index != 4 {
				t.Fatalf("run 4: err = %v, want PanicError{Index: 4}", r.Err)
			}
			if r.Value != 0 {
				t.Fatalf("panicked run value = %d, want zero", r.Value)
			}
			continue
		}
		if r.Err != nil || r.Value != i+100 {
			t.Fatalf("run %d: value=%d err=%v", i, r.Value, r.Err)
		}
	}
	if stats.Runs != 6 || stats.Failed != 1 {
		t.Fatalf("stats = %+v, want 6 runs / 1 failed", stats)
	}
}

func TestCampaignRecorderAndStats(t *testing.T) {
	results, stats := Campaign(5, 2, func(i int, rec *Recorder) int {
		rec.Report(uint64(10 * (i + 1)))
		return i
	}, nil)
	var want uint64
	for i, r := range results {
		if r.Events != uint64(10*(i+1)) {
			t.Fatalf("run %d events = %d", i, r.Events)
		}
		if r.Wall < 0 {
			t.Fatalf("run %d wall = %v", i, r.Wall)
		}
		want += r.Events
	}
	if stats.Events != want {
		t.Fatalf("stats.Events = %d, want %d", stats.Events, want)
	}
	if stats.Wall <= 0 || stats.Work < 0 {
		t.Fatalf("stats timing = %+v", stats)
	}
	if stats.EventsPerSec() <= 0 {
		t.Fatalf("events/sec = %v", stats.EventsPerSec())
	}
}

func TestCampaignObserverSeesEveryRun(t *testing.T) {
	seen := make(map[int]int)
	_, _ = Campaign(20, 4, func(i int, _ *Recorder) int { return i }, func(i int, r Result[int]) {
		seen[i] = r.Value // serialized by the pool: no locking needed here
	})
	if len(seen) != 20 {
		t.Fatalf("observer saw %d runs, want 20", len(seen))
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("observer run %d saw value %d", i, v)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Runs: 3, Failed: 1, Wall: time.Second, Work: 2 * time.Second, Events: 100}
	b := Stats{Runs: 2, Wall: time.Second, Work: time.Second, Events: 50}
	a.Merge(b)
	want := Stats{Runs: 5, Failed: 1, Wall: 2 * time.Second, Work: 3 * time.Second, Events: 150}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestWorkersResolution(t *testing.T) {
	cases := []struct{ req, runs, want int }{
		{1, 100, 1},
		{8, 100, 8},
		{8, 3, 3},   // never more workers than runs
		{-2, 10, 1}, // negative clamps to 1
		{4, 0, 1},   // degenerate campaign still gets a worker
	}
	for _, c := range cases {
		if got := Workers(c.req, c.runs); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.req, c.runs, got, c.want)
		}
	}
	if got := Workers(0, 100); got < 1 { // 0 = GOMAXPROCS, host-dependent
		t.Errorf("Workers(0, 100) = %d", got)
	}
}

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	if DeriveSeed(1, StreamValidation, 5) != DeriveSeed(1, StreamValidation, 5) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	seen := make(map[int64][3]int)
	for _, base := range []int64{0, 1, -1, 42} {
		for _, stream := range []int{StreamValidation, StreamEndToEnd, StreamFig57, StreamDistribution} {
			for i := 0; i < 500; i++ {
				s := DeriveSeed(base, stream, i)
				if s < 0 {
					t.Fatalf("DeriveSeed(%d, %#x, %d) = %d, want non-negative", base, stream, i, s)
				}
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d, %#x, %d) and %v both give %d", base, stream, i, prev, s)
				}
				seen[s] = [3]int{int(base), stream, i}
			}
		}
	}
}

func TestDeriveSeedAvalanche(t *testing.T) {
	// Adjacent run indices must not land on a lattice: the low 32 bits of
	// consecutive seeds should differ in many positions on average.
	var bits int
	const n = 200
	for i := 0; i < n; i++ {
		a := DeriveSeed(1, StreamValidation, i)
		b := DeriveSeed(1, StreamValidation, i+1)
		x := uint64(a^b) & 0xFFFFFFFF
		for x != 0 {
			bits += int(x & 1)
			x >>= 1
		}
	}
	if avg := float64(bits) / n; avg < 12 || avg > 20 {
		t.Fatalf("avg differing low bits between adjacent seeds = %.1f, want ~16", avg)
	}
}

func TestCampaignWithSetupAccounting(t *testing.T) {
	const workers, runs = 3, 12
	results, stats := CampaignWithSetup(runs, workers, func() any {
		time.Sleep(2 * time.Millisecond) // stand-in for a warm-snapshot build
		return 42
	}, func(i int, ws any, rec *Recorder) int {
		if ws != 42 {
			t.Errorf("run %d: setup state = %v", i, ws)
		}
		rec.Report(1000)
		return i
	}, nil)

	if stats.Setup < stats.SetupWall || stats.SetupWall < 2*time.Millisecond {
		t.Fatalf("setup accounting: Setup=%v SetupWall=%v", stats.Setup, stats.SetupWall)
	}
	// Each worker runs setup exactly once, so the sum is bounded by
	// workers × (one setup + scheduling slack).
	if stats.Setup > time.Duration(workers)*200*time.Millisecond {
		t.Fatalf("Setup=%v looks like setup ran per run, not per worker", stats.Setup)
	}
	// Excluding warm-up can only raise the rate.
	if stats.RunEventsPerSec() < stats.EventsPerSec() {
		t.Fatalf("run-phase rate %v < headline rate %v",
			stats.RunEventsPerSec(), stats.EventsPerSec())
	}
	if s := stats.String(); !strings.Contains(s, "setup") || !strings.Contains(s, "run-phase") {
		t.Fatalf("String() with setup lacks the warm-up split: %s", s)
	}

	workersSeen := map[int]bool{}
	for i, r := range results {
		if r.Worker < 0 || r.Worker >= workers {
			t.Fatalf("run %d worker id %d out of range", i, r.Worker)
		}
		workersSeen[r.Worker] = true
	}
	if len(workersSeen) == 0 {
		t.Fatal("no worker ids recorded")
	}
}

func TestCampaignWithoutSetupHasNoSetupStats(t *testing.T) {
	_, stats := Campaign(4, 2, func(i int, _ *Recorder) int { return i }, nil)
	if stats.Setup != 0 || stats.SetupWall != 0 {
		t.Fatalf("no-setup campaign accrued setup time: %+v", stats)
	}
	if strings.Contains(stats.String(), "setup") {
		t.Fatalf("String() mentions setup without any: %s", stats.String())
	}
}

func TestStatsMergeSetup(t *testing.T) {
	a := Stats{Wall: 4 * time.Second, Setup: 2 * time.Second, SetupWall: time.Second, Events: 30}
	b := Stats{Wall: 2 * time.Second, Setup: time.Second, SetupWall: time.Second, Events: 20}
	a.Merge(b)
	if a.Setup != 3*time.Second || a.SetupWall != 2*time.Second {
		t.Fatalf("merged setup = %v / %v", a.Setup, a.SetupWall)
	}
	// 50 events over (6s − 2s) of run-phase wall.
	if got := a.RunEventsPerSec(); got != 12.5 {
		t.Fatalf("RunEventsPerSec = %v, want 12.5", got)
	}
}
