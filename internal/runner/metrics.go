package runner

import (
	"io"
	"sort"

	"flashfc/internal/metrics"
	"flashfc/internal/stats"
)

// MergeMetrics folds per-run metric snapshots (in run-index order) into one
// campaign aggregate. Nil entries (failed runs, runs that collected nothing)
// are skipped.
func MergeMetrics(snaps []*metrics.Snapshot) *metrics.Snapshot {
	kept := make([]*metrics.Snapshot, 0, len(snaps))
	for _, s := range snaps {
		if s != nil {
			kept = append(kept, s)
		}
	}
	return metrics.MergeSnapshots(kept)
}

// SummarizeMetrics computes the across-run distribution of every counter and
// gauge appearing in the per-run snapshots: one stats.Summary per metric
// name, with each run contributing one observation (0 when the run never
// touched the metric — a run without faults genuinely saw zero NAKs).
func SummarizeMetrics(snaps []*metrics.Snapshot) map[string]stats.Summary {
	live := make([]*metrics.Snapshot, 0, len(snaps))
	names := map[string]bool{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		live = append(live, s)
		for n := range s.Counters {
			names[n] = true
		}
		for n := range s.Gauges {
			names[n] = true
		}
	}
	out := make(map[string]stats.Summary, len(names))
	for n := range names {
		xs := make([]float64, 0, len(live))
		for _, s := range live {
			if v, ok := s.Counters[n]; ok {
				xs = append(xs, float64(v))
			} else {
				xs = append(xs, float64(s.Gauges[n]))
			}
		}
		out[n] = stats.Summarize(xs)
	}
	return out
}

// WriteMetricsSummary renders SummarizeMetrics output as a sorted table, one
// row per metric.
func WriteMetricsSummary(w io.Writer, sums map[string]stats.Summary) {
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Strings(names)
	t := stats.NewTable("metric", "per-run distribution")
	for _, n := range names {
		t.AddRow(n, sums[n].String())
	}
	io.WriteString(w, t.String())
}
