package interconnect

import (
	"testing"

	"flashfc/internal/sim"
	"flashfc/internal/topology"
)

// A queue inflated by an elastic-injection burst must release its backing
// array as it drains: dropHead shrinks once len falls below cap/4.
func TestDropHeadShrinksAfterBurst(t *testing.T) {
	ch := &channel{}
	const burst = 1024
	for i := 0; i < burst; i++ {
		ch.q = append(ch.q, &Packet{})
	}
	peak := cap(ch.q)
	if peak < burst {
		t.Fatalf("burst did not inflate the queue: cap %d", peak)
	}
	for len(ch.q) > 0 {
		ch.dropHead()
		if c := cap(ch.q); c > shrinkFloor && len(ch.q) < c/4 {
			t.Fatalf("queue retained cap %d at len %d", c, len(ch.q))
		}
	}
	if c := cap(ch.q); c > burst/2 {
		t.Fatalf("drained queue still pins a peak-sized array: cap %d (peak %d)", c, peak)
	}
}

// Steady-state queues (below shrinkFloor) must keep the zero-allocation
// dropHead path: the shrink applies only to burst-inflated arrays.
func TestDropHeadSteadyStateNoAlloc(t *testing.T) {
	ch := &channel{q: make([]*Packet, 0, 8)}
	p := &Packet{}
	allocs := testing.AllocsPerRun(1000, func() {
		ch.q = append(ch.q, p, p, p, p)
		for len(ch.q) > 0 {
			ch.dropHead()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state dropHead allocates %.1f per cycle", allocs)
	}
}

// Snapshot/Restore must round-trip the durable fabric state onto a fresh
// network, and Snapshot must refuse a fabric with packets still queued.
func TestNetworkSnapshotRestore(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	e := sim.NewEngine(1)
	n := New(e, topo, DefaultConfig())
	for i := 0; i < 5; i++ {
		n.Send(&Packet{Src: 0, Dst: 3, Lane: LaneRequest, Bytes: 16})
	}
	if n.InFlight() > 0 {
		s := func() (s *Snapshot) {
			defer func() {
				if recover() == nil {
					t.Fatal("Snapshot with packets in flight did not panic")
				}
			}()
			return n.Snapshot()
		}()
		_ = s
	}
	e.Run()
	snap := n.Snapshot()

	f := New(sim.NewEngine(1), topo, DefaultConfig())
	f.Restore(snap)
	if f.Stats != n.Stats {
		t.Fatalf("restored stats %+v != source %+v", f.Stats, n.Stats)
	}
	// New traffic on the fork continues the flow-id sequence, keeping
	// trace flow ids and FailLink victim ordering aligned with a fresh
	// run that never snapshotted.
	p := &Packet{Src: 1, Dst: 2, Lane: LaneRequest, Bytes: 16}
	f.Send(p)
	if p.flow != snap.FlowSeq+1 {
		t.Fatalf("fork flow id %d, want %d", p.flow, snap.FlowSeq+1)
	}
}
