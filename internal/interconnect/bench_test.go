package interconnect

import (
	"testing"

	"flashfc/internal/sim"
	"flashfc/internal/topology"
)

// sinkEndpoint accepts every delivery without recording it, so the benchmark
// measures only the fabric's own work.
type sinkEndpoint struct{}

func (sinkEndpoint) Accept(*Packet) bool { return true }

// Per-flit hop delivery is the single hottest event source in the simulator:
// every packet schedules one arrival event per hop. The pre-bound arriveFn
// callback plus capacity-preserving channel queues make the whole
// inject→hop→...→deliver chain allocation-free in steady state, and this
// guard keeps it that way: any closure or queue reallocation creeping back
// into the path fails the benchmark outright.
func BenchmarkFlitHopPath(b *testing.B) {
	e := sim.NewEngine(1)
	topo := topology.NewMesh(4, 4)
	n := New(e, topo, DefaultConfig())
	for i := 0; i < topo.Routers(); i++ {
		n.SetEndpoint(i, sinkEndpoint{})
	}
	// A corner-to-corner packet crosses six links; reusing it keeps the
	// measurement on the hop path rather than packet construction.
	p := &Packet{Src: 0, Dst: 15, Lane: LaneRequest, Bytes: 16}
	send := func() {
		n.Send(p)
		e.Run()
	}
	// Warm channel-queue capacities, the event pool, and wheel slots.
	for i := 0; i < 64; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(1000, send); allocs != 0 {
		b.Fatalf("flit hop path allocates %.2f allocs/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
	}
	if n.Stats.Delivered == 0 {
		b.Fatal("nothing delivered")
	}
}
