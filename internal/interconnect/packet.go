// Package interconnect simulates the CrayLink/SPIDER-style point-to-point
// fabric of FLASH: table-routed wormhole-ish channels with per-virtual-lane
// buffering and backpressure, two dedicated recovery lanes that are never
// clogged by backed-up coherence traffic (§4.1), a source-routing option for
// recovery packets, and the failure semantics of §3.1/§4.1: failed links act
// as black holes, a packet in transit over a failing link is truncated but
// still delivered, failed routers sink traffic, and congestion from a
// non-accepting node controller backs up into the fabric.
package interconnect

import (
	"fmt"

	"flashfc/internal/sim"
	"flashfc/internal/timing"
)

// Lane is a virtual lane. Coherence requests and replies travel on separate
// lanes (the usual deadlock-avoidance split); the recovery algorithm owns
// two dedicated lanes so that it can assume clear channels (§4.1).
type Lane int

const (
	LaneRequest Lane = iota
	LaneReply
	LaneRecoveryA
	LaneRecoveryB
	NumLanes
)

// IsRecovery reports whether l is one of the dedicated recovery lanes.
func (l Lane) IsRecovery() bool { return l == LaneRecoveryA || l == LaneRecoveryB }

func (l Lane) String() string {
	switch l {
	case LaneRequest:
		return "req"
	case LaneReply:
		return "reply"
	case LaneRecoveryA:
		return "recA"
	case LaneRecoveryB:
		return "recB"
	default:
		return fmt.Sprintf("lane%d", int(l))
	}
}

// Packet is a message traversing the interconnect. Payload content is opaque
// to the fabric.
type Packet struct {
	Src, Dst int  // node ids (== router ids)
	Lane     Lane //
	// SourceRoute, when non-nil, is the exact router path the packet
	// takes, starting with Src's router and ending at Dst's (§4.1). When
	// nil the packet follows the routing tables.
	SourceRoute []int
	Payload     any
	Bytes       int // payload size for serialization cost
	// Truncated is set by the fabric when the packet was in transit over
	// a link that failed (§3.1); the receiving node controller treats the
	// reception of a truncated packet as a recovery trigger.
	Truncated bool
	Injected  sim.Time

	hop int // index of the current router within SourceRoute
	// retried marks an end-to-end retransmission (reliable mode); a
	// retried packet that is destroyed again counts as a real loss.
	retried bool
	// flow is the injection sequence number, assigned by the network when
	// the packet first enters the fabric. It links the trace points of one
	// packet's lifetime (inject → hops → deliver/drop) and provides a
	// deterministic ordering for packets recovered from unordered sets.
	flow uint64
}

// Flow returns the packet's injection sequence number (0 before injection).
func (p *Packet) Flow() uint64 { return p.flow }

func (p *Packet) String() string {
	sr := ""
	if p.SourceRoute != nil {
		sr = fmt.Sprintf(" sr=%v", p.SourceRoute)
	}
	tr := ""
	if p.Truncated {
		tr = " TRUNC"
	}
	return fmt.Sprintf("pkt{%d->%d %v %dB%s%s}", p.Src, p.Dst, p.Lane, p.Bytes, sr, tr)
}

// serviceTime is the time to move the packet across one hop: router
// pipeline, wire, and serialization.
func serviceTime(p *Packet) sim.Time {
	return timing.RouterHop + timing.LinkWire +
		sim.Time(p.Bytes+timing.HeaderBytes)*timing.LinkBytePeriod
}

// flits is the packet's length in header-sized flow-control units, rounded
// up; used for the per-lane traffic metrics.
func flits(p *Packet) int {
	return (p.Bytes + timing.HeaderBytes + timing.HeaderBytes - 1) / timing.HeaderBytes
}

// Endpoint is the node-controller side of the fabric. Accept is called when
// a packet reaches its destination router; returning false refuses the
// packet (controller input full, or a controller stuck in an infinite loop),
// leaving it blocked in the fabric until NodeReady is called — this is the
// mechanism by which a sick node congests the interconnect (§3.1).
type Endpoint interface {
	Accept(p *Packet) bool
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(p *Packet) bool

// Accept calls f(p).
func (f EndpointFunc) Accept(p *Packet) bool { return f(p) }
