package interconnect

import (
	"testing"
	"testing/quick"

	"flashfc/internal/sim"
	"flashfc/internal/topology"
)

// collector is a test Endpoint that records delivered packets and can be
// switched into refusing or dropping modes.
type collector struct {
	got     []*Packet
	refuse  bool
	dropAll bool
}

func (c *collector) Accept(p *Packet) bool {
	if c.refuse {
		return false
	}
	if c.dropAll {
		return true
	}
	c.got = append(c.got, p)
	return true
}

// rig builds a w×h mesh fabric with collector endpoints on every node.
func rig(t *testing.T, w, h int) (*sim.Engine, *Network, []*collector) {
	t.Helper()
	e := sim.NewEngine(1)
	topo := topology.NewMesh(w, h)
	n := New(e, topo, DefaultConfig())
	cols := make([]*collector, topo.Routers())
	for i := range cols {
		cols[i] = &collector{}
		n.SetEndpoint(i, cols[i])
	}
	return e, n, cols
}

func TestBasicDelivery(t *testing.T) {
	e, n, cols := rig(t, 4, 4)
	n.Send(&Packet{Src: 0, Dst: 15, Lane: LaneRequest, Bytes: 16, Payload: "hello"})
	e.Run()
	if len(cols[15].got) != 1 {
		t.Fatalf("delivered %d, want 1", len(cols[15].got))
	}
	if cols[15].got[0].Payload != "hello" {
		t.Fatal("payload mangled")
	}
	if n.Stats.Delivered != 1 {
		t.Fatalf("Stats.Delivered = %d", n.Stats.Delivered)
	}
}

func TestLoopback(t *testing.T) {
	e, n, cols := rig(t, 2, 2)
	n.Send(&Packet{Src: 1, Dst: 1, Lane: LaneReply, Bytes: 144})
	e.Run()
	if len(cols[1].got) != 1 {
		t.Fatalf("loopback not delivered")
	}
}

func TestInOrderDeliveryPerPair(t *testing.T) {
	e, n, cols := rig(t, 4, 4)
	for i := 0; i < 50; i++ {
		n.Send(&Packet{Src: 0, Dst: 15, Lane: LaneRequest, Bytes: 16, Payload: i})
	}
	e.Run()
	if len(cols[15].got) != 50 {
		t.Fatalf("delivered %d, want 50", len(cols[15].got))
	}
	for i, p := range cols[15].got {
		if p.Payload != i {
			t.Fatalf("out of order at %d: got %v", i, p.Payload)
		}
	}
}

func TestSourceRoutedDelivery(t *testing.T) {
	e, n, cols := rig(t, 3, 3)
	// Take the scenic route 0 -> 3 -> 6 -> 7 -> 8 instead of dimension order.
	n.Send(&Packet{
		Src: 0, Dst: 8, Lane: LaneRecoveryA, Bytes: 16,
		SourceRoute: []int{0, 3, 6, 7, 8},
	})
	e.Run()
	if len(cols[8].got) != 1 {
		t.Fatal("source-routed packet not delivered")
	}
}

func TestSourceRouteSelf(t *testing.T) {
	e, n, cols := rig(t, 2, 2)
	n.Send(&Packet{Src: 2, Dst: 2, Lane: LaneRecoveryA, SourceRoute: []int{2}, Bytes: 8})
	e.Run()
	if len(cols[2].got) != 1 {
		t.Fatal("self source route not delivered")
	}
}

func TestBadSourceRoutePanics(t *testing.T) {
	_, n, _ := rig(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("bad source route should panic")
		}
	}()
	n.Send(&Packet{Src: 0, Dst: 3, SourceRoute: []int{1, 3}, Lane: LaneRecoveryA})
}

func TestFailedRouterSinksTraffic(t *testing.T) {
	e, n, cols := rig(t, 4, 4)
	n.FailRouter(1) // on the dimension-order path 0->3
	n.Send(&Packet{Src: 0, Dst: 3, Lane: LaneRequest, Bytes: 16})
	e.Run()
	if len(cols[3].got) != 0 {
		t.Fatal("packet should have been sunk by failed router")
	}
	if n.Stats.DroppedRouter == 0 {
		t.Fatal("DroppedRouter not counted")
	}
}

func TestFailedLinkBlackHole(t *testing.T) {
	e, n, cols := rig(t, 4, 1)
	// Fail link 1-2 before sending: traffic is silently sunk.
	l := topologyLink(t, n, 1, 2)
	n.FailLink(l)
	n.Send(&Packet{Src: 0, Dst: 3, Lane: LaneRequest, Bytes: 16})
	e.Run()
	if len(cols[3].got) != 0 {
		t.Fatal("packet should have been black-holed")
	}
	if n.Stats.DroppedLink == 0 {
		t.Fatal("DroppedLink not counted")
	}
}

func TestInFlightTruncationOnLinkFailure(t *testing.T) {
	e, n, cols := rig(t, 4, 1)
	l := topologyLink(t, n, 1, 2)
	n.Send(&Packet{Src: 0, Dst: 3, Lane: LaneRequest, Bytes: 128})
	// Fail the link while the packet is being serviced across it. One hop
	// takes ~194 ns for a 128-byte packet; the packet reaches link 1-2 on
	// its second hop.
	e.At(250, func() { n.FailLink(l) })
	e.Run()
	if len(cols[3].got) != 1 {
		t.Fatalf("truncated packet should still be delivered, got %d", len(cols[3].got))
	}
	if !cols[3].got[0].Truncated {
		t.Fatal("packet should be marked truncated")
	}
	if n.Stats.DeliveredTrunc != 1 {
		t.Fatal("DeliveredTrunc not counted")
	}
}

func TestRefusingNodeCongestsFabric(t *testing.T) {
	e, n, cols := rig(t, 4, 1)
	cols[3].refuse = true // node 3 controller stuck in an infinite loop
	for i := 0; i < 30; i++ {
		n.Send(&Packet{Src: 0, Dst: 3, Lane: LaneRequest, Bytes: 16})
	}
	e.RunUntil(sim.Millisecond)
	if got := n.InFlight(); got == 0 {
		t.Fatal("fabric should be congested with blocked packets")
	}
	if len(cols[3].got) != 0 {
		t.Fatal("refusing node must not receive packets")
	}
	// Recovery isolates the node: its own router discards local traffic.
	n.SetDiscardLocal(3, true)
	e.Run()
	if got := n.InFlight(); got != 0 {
		t.Fatalf("fabric should drain after isolation, %d in flight", got)
	}
	if n.Stats.DroppedDeadNode == 0 {
		t.Fatal("DroppedDeadNode not counted")
	}
}

func TestCongestionDelaysInnocentTraffic(t *testing.T) {
	// Traffic from 0 to 3 shares channels with traffic from 0 to 2 on a
	// 4x1 mesh; when node 3 stops accepting, 0->2 still gets through
	// (separate final channel) but 0->3 hogs shared buffers.
	e, n, cols := rig(t, 4, 1)
	cols[3].refuse = true
	for i := 0; i < 20; i++ {
		n.Send(&Packet{Src: 0, Dst: 3, Lane: LaneRequest, Bytes: 16})
	}
	n.Send(&Packet{Src: 0, Dst: 2, Lane: LaneRequest, Bytes: 16, Payload: "victim"})
	e.RunUntil(10 * sim.Millisecond)
	// The victim is stuck behind blocked packets in the shared channels.
	if len(cols[2].got) != 0 {
		t.Fatal("victim packet should be stuck behind congestion")
	}
	n.SetDiscardLocal(3, true)
	e.Run()
	if len(cols[2].got) != 1 {
		t.Fatal("victim packet should be delivered after isolation")
	}
}

func TestRecoveryLanesBypassCongestion(t *testing.T) {
	e, n, cols := rig(t, 4, 1)
	cols[3].refuse = true
	for i := 0; i < 30; i++ {
		n.Send(&Packet{Src: 0, Dst: 3, Lane: LaneRequest, Bytes: 16})
	}
	e.RunUntil(sim.Millisecond)
	// A recovery-lane packet to node 2 sails through the congested path.
	n.Send(&Packet{
		Src: 0, Dst: 2, Lane: LaneRecoveryA, Bytes: 16,
		SourceRoute: []int{0, 1, 2}, Payload: "rescue",
	})
	e.RunUntil(2 * sim.Millisecond)
	if len(cols[2].got) != 1 || cols[2].got[0].Payload != "rescue" {
		t.Fatal("recovery lane packet should bypass normal-lane congestion")
	}
}

func TestRecoveryHeadDrop(t *testing.T) {
	e, n, cols := rig(t, 4, 1)
	cols[3].refuse = true
	// Recovery packets to the refusing node get dropped after the head
	// timeout instead of backing up forever (§4.1).
	for i := 0; i < 3; i++ {
		n.Send(&Packet{
			Src: 0, Dst: 3, Lane: LaneRecoveryA, Bytes: 16,
			SourceRoute: []int{0, 1, 2, 3},
		})
	}
	e.RunUntil(sim.Second)
	if n.Stats.DroppedHeadTimeout == 0 {
		t.Fatal("blocked recovery packets should be head-dropped")
	}
	if n.InFlight() != 0 {
		t.Fatalf("recovery lane should self-drain, %d in flight", n.InFlight())
	}
}

func TestIsolationDiscardsQueuedTraffic(t *testing.T) {
	e, n, cols := rig(t, 4, 1)
	cols[3].refuse = true
	for i := 0; i < 30; i++ {
		n.Send(&Packet{Src: 0, Dst: 3, Lane: LaneRequest, Bytes: 16})
	}
	e.RunUntil(sim.Millisecond)
	inFlight := n.InFlight()
	if inFlight == 0 {
		t.Fatal("expected congestion before isolation")
	}
	// Isolate by discarding at router 2's port toward 3 and at the local
	// delivery of router 3.
	p := n.Topo.PortTo(2, 3)
	n.SetDiscard(2, p, true)
	n.SetDiscardLocal(3, true)
	e.Run()
	if n.InFlight() != 0 {
		t.Fatalf("fabric should drain after isolation, %d in flight", n.InFlight())
	}
}

func TestSetRouterTableReroutes(t *testing.T) {
	e, n, cols := rig(t, 3, 3)
	// Break dimension-order path 0->1->2 by failing link 1-2, then
	// reprogram tables so 0->2 goes around through row 1.
	n.FailLink(topologyLink(t, n, 1, 2))
	n.Send(&Packet{Src: 0, Dst: 2, Lane: LaneRequest, Bytes: 16})
	e.Run()
	if len(cols[2].got) != 0 {
		t.Fatal("packet should be lost before rerouting")
	}
	v := topology.NewView(n.Topo)
	v.FailLink(topologyLink(t, n, 1, 2))
	_, bft := v.DiameterBound()
	tb := topology.UpDownTables(v, bft)
	for r := 0; r < 9; r++ {
		n.SetRouterTable(r, tb[r])
	}
	n.Send(&Packet{Src: 0, Dst: 2, Lane: LaneRequest, Bytes: 16})
	e.Run()
	if len(cols[2].got) != 1 {
		t.Fatal("packet should be delivered after rerouting")
	}
}

func TestProbeRouterAliveAndDead(t *testing.T) {
	e, n, _ := rig(t, 3, 1)
	alive := false
	n.ProbeRouter([]int{0, 1, 2}, func() { alive = true })
	e.Run()
	if !alive {
		t.Fatal("probe of healthy path should answer")
	}
	alive = false
	n.FailRouter(2)
	n.ProbeRouter([]int{0, 1, 2}, func() { alive = true })
	e.Run()
	if alive {
		t.Fatal("probe of dead router must not answer")
	}
	// Dead link on the path also kills the probe.
	alive = false
	n.ProbeRouter([]int{0, 1}, func() { alive = true })
	e.Run()
	if !alive {
		t.Fatal("probe of live router should answer")
	}
	n.FailLink(topologyLink(t, n, 0, 1))
	alive = false
	n.ProbeRouter([]int{0, 1}, func() { alive = true })
	e.Run()
	if alive {
		t.Fatal("probe across dead link must not answer")
	}
}

func TestFailRouterDropsQueuedPackets(t *testing.T) {
	e, n, _ := rig(t, 4, 1)
	for i := 0; i < 10; i++ {
		n.Send(&Packet{Src: 0, Dst: 3, Lane: LaneRequest, Bytes: 128})
	}
	e.RunUntil(100) // packets queued at router 0/1
	n.FailRouter(1)
	e.Run()
	if n.InFlight() != 0 {
		t.Fatalf("in flight after router failure: %d", n.InFlight())
	}
}

func TestLaneStringAndPacketString(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, Lane: LaneRecoveryB, Bytes: 16, SourceRoute: []int{1, 2}, Truncated: true}
	s := p.String()
	if s == "" {
		t.Fatal("empty packet string")
	}
	for _, l := range []Lane{LaneRequest, LaneReply, LaneRecoveryA, LaneRecoveryB, Lane(9)} {
		if l.String() == "" {
			t.Fatal("empty lane string")
		}
	}
}

// topologyLink finds the link id between routers a and b.
func topologyLink(t *testing.T, n *Network, a, b int) int {
	t.Helper()
	p := n.Topo.PortTo(a, b)
	if p < 0 {
		t.Fatalf("no link %d-%d", a, b)
	}
	return n.Topo.Adjacency(a)[p].Link
}

// Property: per (src,dst,lane) delivery order always matches send order,
// for random multi-flow traffic — the §4.5 flush barrier depends on it.
func TestQuickInOrderDelivery(t *testing.T) {
	f := func(seed int64) bool {
		e := sim.NewEngine(seed)
		topo := topology.NewMesh(3, 3)
		n := New(e, topo, DefaultConfig())
		type key struct {
			src, dst int
			lane     Lane
		}
		got := map[key][]int{}
		for i := 0; i < 9; i++ {
			i := i
			n.SetEndpoint(i, EndpointFunc(func(p *Packet) bool {
				pl := p.Payload.([2]int)
				got[key{p.Src, p.Dst, p.Lane}] = append(got[key{p.Src, p.Dst, p.Lane}], pl[1])
				return true
			}))
		}
		rng := e.Rand()
		sent := map[key]int{}
		for i := 0; i < 200; i++ {
			src, dst := rng.Intn(9), rng.Intn(9)
			lane := Lane(rng.Intn(2))
			k := key{src, dst, lane}
			n.Send(&Packet{Src: src, Dst: dst, Lane: lane, Bytes: 16 + rng.Intn(128),
				Payload: [2]int{src, sent[k]}})
			sent[k]++
		}
		e.Run()
		for k, seq := range got {
			if len(seq) != sent[k] {
				return false
			}
			for i, v := range seq {
				if v != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReliableModeRetainsAndRetransmits(t *testing.T) {
	e := sim.NewEngine(1)
	topo := topology.NewMesh(4, 1)
	cfg := DefaultConfig()
	cfg.Reliable = true
	n := New(e, topo, cfg)
	cols := make([]*collector, 4)
	for i := range cols {
		cols[i] = &collector{}
		n.SetEndpoint(i, cols[i])
	}
	lostSeen := 0
	n.OnLost = func(p *Packet) { lostSeen++ }
	// Black-hole a packet on a dead link: it must be retained, not lost.
	n.FailLink(topologyLink(t, n, 1, 2))
	n.Send(&Packet{Src: 0, Dst: 3, Lane: LaneRequest, Bytes: 16, Payload: "precious"})
	e.Run()
	if len(cols[3].got) != 0 {
		t.Fatal("packet delivered across a dead link?")
	}
	if lostSeen != 0 {
		t.Fatal("reliable fabric must not report retained packets as lost")
	}
	if n.RetainedLost() != 1 {
		t.Fatalf("retained = %d, want 1", n.RetainedLost())
	}
	// Restore connectivity (reroute around the link) and retransmit.
	v := topology.NewView(topo)
	v.FailLink(topologyLink(t, n, 1, 2))
	// A 4x1 mesh cannot route around its only path: repair by rerouting
	// is impossible here, so check the dead-destination branch instead.
	resent := n.RetransmitLost(func(node int) bool { return node != 3 })
	e.Run()
	if resent != 0 || lostSeen != 1 {
		t.Fatalf("dead-destination retained packet: resent=%d lost=%d", resent, lostSeen)
	}
}

func TestReliableRetransmitDelivers(t *testing.T) {
	e := sim.NewEngine(1)
	topo := topology.NewMesh(3, 3)
	cfg := DefaultConfig()
	cfg.Reliable = true
	n := New(e, topo, cfg)
	cols := make([]*collector, 9)
	for i := range cols {
		cols[i] = &collector{}
		n.SetEndpoint(i, cols[i])
	}
	// Kill the dimension-order path 0->1->2, stranding a packet.
	n.FailLink(topologyLink(t, n, 1, 2))
	n.Send(&Packet{Src: 0, Dst: 2, Lane: LaneReply, Bytes: 128, Payload: "wb"})
	e.Run()
	if n.RetainedLost() != 1 {
		t.Fatalf("retained = %d", n.RetainedLost())
	}
	// Reroute around the failure, then retransmit.
	v := topology.NewView(topo)
	v.FailLink(topologyLink(t, n, 1, 2))
	_, bft := v.DiameterBound()
	tb := topology.UpDownTables(v, bft)
	for r := 0; r < 9; r++ {
		n.SetRouterTable(r, tb[r])
	}
	if resent := n.RetransmitLost(func(int) bool { return true }); resent != 1 {
		t.Fatalf("resent = %d", resent)
	}
	e.Run()
	if len(cols[2].got) != 1 || cols[2].got[0].Payload != "wb" {
		t.Fatal("retransmitted packet not delivered")
	}
	// A retransmitted packet that dies again is a real loss.
	lost := 0
	n.OnLost = func(p *Packet) { lost++ }
	n.FailRouter(2)
	if n.RetransmitLost(func(int) bool { return true }) != 0 {
		t.Fatal("nothing should remain retained")
	}
}

func TestLoopbackDiscardLocalDropsRetry(t *testing.T) {
	e, n, cols := rig(t, 2, 2)
	cols[1].refuse = true // wedged controller
	n.Send(&Packet{Src: 1, Dst: 1, Lane: LaneRequest, Bytes: 16})
	e.RunUntil(100 * sim.Microsecond)
	if len(cols[1].got) != 0 {
		t.Fatal("refused loopback delivered?")
	}
	// Isolation stops the retry loop; the simulation must drain fully.
	n.SetDiscardLocal(1, true)
	e.Run()
	if n.Stats.DroppedDeadNode == 0 {
		t.Fatal("loopback should be dropped by local discard")
	}
}
