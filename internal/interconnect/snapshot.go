package interconnect

import "fmt"

// Snapshot is the durable fabric state at a quiescent, pre-fault point:
// the delivery statistics and the packet flow-id sequence (which seeds
// trace flow ids and the deterministic in-transit ordering). Everything
// else — channel queues, in-flight packets, blocked waiters, retained
// retransmissions — must be empty at a safe point, which Network.Snapshot
// enforces, so a fork rebuilds it from the topology instead of copying it.
type Snapshot struct {
	Stats   Stats
	FlowSeq uint64
	// FlowSeqR holds the per-region flow counters of a partitioned
	// fabric; nil on classic fabrics, keeping their snapshot format
	// unchanged.
	FlowSeqR []uint64 `json:",omitempty"`
}

// Snapshot captures the fabric state. It panics unless the fabric is
// quiescent (no queued, in-flight, blocked, or retained packets) and
// healthy (no failed routers or links, no isolation discards): machine
// snapshots are taken before any fault is injected.
func (n *Network) Snapshot() *Snapshot {
	n.mustQuiescent()
	s := &Snapshot{Stats: n.Stats, FlowSeq: n.flowSeq}
	if n.flowSeqR != nil {
		s.FlowSeqR = append([]uint64(nil), n.flowSeqR...)
	}
	return s
}

// Restore installs a snapshot's state on a freshly built Network over the
// same topology and config.
func (n *Network) Restore(s *Snapshot) {
	n.Stats = s.Stats
	n.flowSeq = s.FlowSeq
	if s.FlowSeqR != nil {
		copy(n.flowSeqR, s.FlowSeqR)
	}
}

// mustQuiescent panics with a description of the first piece of state that
// makes the fabric unsafe to snapshot.
func (n *Network) mustQuiescent() {
	if len(n.retained) > 0 {
		panic(fmt.Sprintf("interconnect: snapshot with %d retained packets", len(n.retained)))
	}
	for l, up := range n.linkUp {
		if !up {
			panic(fmt.Sprintf("interconnect: snapshot with failed link %d", l))
		}
	}
	for r, rs := range n.routers {
		if rs.failed {
			panic(fmt.Sprintf("interconnect: snapshot with failed router %d", r))
		}
		if rs.discardLocal {
			panic(fmt.Sprintf("interconnect: snapshot with local discard on router %d", r))
		}
		if len(rs.nodeWaiters) > 0 {
			panic(fmt.Sprintf("interconnect: snapshot with blocked deliveries at router %d", r))
		}
		for p, ports := range rs.chans {
			if rs.discard[p] {
				panic(fmt.Sprintf("interconnect: snapshot with discard on router %d port %d", r, p))
			}
			for _, ch := range ports {
				if len(ch.q) > 0 || ch.serving || ch.blocked || len(ch.waiters) > 0 || len(ch.inTransit) > 0 {
					panic(fmt.Sprintf("interconnect: snapshot with active channel r%d p%d lane %v", r, p, ch.lane))
				}
			}
		}
	}
}
