package interconnect

import (
	"sync/atomic"

	"flashfc/internal/sim"
	"flashfc/internal/timing"
)

// Partition spreads one fabric across the region-local engines of a
// partitioned simulation (internal/sim.Partitioned). Every router's events
// run on its region's engine; hops inside a region are exactly the classic
// model, while a hop across an inter-region link splits into two halves:
//
//	source side: the sending channel is occupied for the normal link
//	service time, then released — the long inter-region wire is elastic,
//	so no backpressure (and no zero-latency waiter wakeups) ever crosses
//	a region boundary during a parallel window;
//
//	destination side: the packet appears at the far router's input after
//	service time + Extra, delivered through the partition coordinator's
//	ordered cross-region channel (sim.Partitioned.Send), which merges it
//	deterministically at a window barrier.
//
// Extra models the longer wires of a clusterized mesh (TSAR-style
// inter-cluster cabling): region-crossing links are physically longer than
// in-cluster ones, and that physical latency is exactly what a conservative
// simulation converts into lookahead. The partition lookahead must be
// LookaheadBound(Extra) — the minimum time any packet needs to cross a
// boundary — so every cross-region delivery lands at or beyond the next
// window barrier.
type Partition struct {
	// Of maps router -> region (topology.Regions.Of).
	Of []int
	// Engines holds the per-region engines, indexed by region.
	Engines []*sim.Engine
	// P is the window/barrier coordinator the boundary hops post through.
	P *sim.Partitioned
	// Extra is the additional wire latency of an inter-region link.
	Extra sim.Time
}

// LookaheadBound returns the minimum latency of an inter-region hop with
// the given extra wire delay: the smallest possible link service time (a
// header-only packet) plus the extra wire. This is the conservative
// lookahead a partitioned machine must run its windows at.
func LookaheadBound(extra sim.Time) sim.Time {
	return timing.RouterHop + timing.LinkWire + timing.HeaderBytes*timing.LinkBytePeriod + extra
}

// regionFlowShift positions the region tag in partitioned flow ids: the low
// 40 bits count injections within the region (plenty for any run), the high
// bits carry region+1 so ids from different regions never collide and a
// partitioned id is never 0.
const regionFlowShift = 40

// eng returns the engine that runs router r's events.
func (n *Network) eng(r int) *sim.Engine {
	if pt := n.cfg.Partition; pt != nil {
		return pt.Engines[pt.Of[r]]
	}
	return n.E
}

// now returns the current simulated time at router r — its own region's
// clock in partitioned mode. During a parallel window only r's region
// observes it, and in global mode all clocks agree, so it is always the
// time of the event being executed.
func (n *Network) now(r int) sim.Time {
	return n.eng(r).Now()
}

// packRL packs a (router, link) pair into the one uint64 callback argument.
func packRL(router, link int) uint64 {
	return uint64(uint32(router))<<32 | uint64(uint32(link))
}

// launchEv fires on the source side when a packet finishes its service time
// on an inter-region link: the packet has left the region, so free its
// channel slot and move the queue along. The packet's fate is decided by
// ingressEv on the destination side.
func (n *Network) launchEv(a1, a2 any, _ uint64) {
	ch, pkt := a1.(*channel), a2.(*Packet)
	ch.serving = false
	delete(ch.inTransit, pkt)
	if n.routers[ch.router].failed || len(ch.q) == 0 || ch.q[0] != pkt {
		// The source router failed mid-service and already destroyed
		// this packet (and counted it); nothing left to pop.
		return
	}
	n.popHead(ch)
}

// ingressEv fires in the destination region when a packet arrives over an
// inter-region link (scheduled by kick through the partition coordinator).
func (n *Network) ingressEv(a1, _ any, u uint64) {
	pkt := a1.(*Packet)
	r, link := int(u>>32), int(uint32(u))
	// A link that died while the packet was on the wire destroys it — the
	// inter-region cable is part of the link — unless the failure already
	// marked it as the truncation victim, in which case it continues to
	// its destination truncated, like any in-flight packet (§3.1).
	if !n.linkUp[link] && !pkt.Truncated {
		n.tracePkt("drop-blackhole", r, pkt)
		n.lost(pkt)
		atomic.AddUint64(&n.Stats.DroppedLink, 1)
		n.mBlackholed.Inc()
		return
	}
	n.tracePkt("hop", r, pkt)
	n.arriveFree(r, pkt)
}

// retryEv retries a boundary-arrived packet whose destination controller
// refused it (full input queue): the elastic inter-region path has no
// channel to block on, so refusal is polled with the same backoff the
// loopback path uses.
func (n *Network) retryEv(a1, _ any, u uint64) {
	n.arriveFree(int(u), a1.(*Packet))
}

// arriveFree advances a packet that is at router r's input without
// occupying a sending channel: the destination half of an inter-region hop.
// It mirrors advance() exactly, except that where advance blocks a source
// channel (full next-hop buffer, refusing controller), arriveFree is
// elastic — the next-hop queue absorbs the packet, and controller refusal
// becomes a timed retry. Both divergences are confined to boundary
// crossings, are identical at any worker count, and never let one region
// synchronously touch another mid-window.
func (n *Network) arriveFree(r int, pkt *Packet) {
	if n.routers[r].failed {
		n.tracePkt("drop-router", r, pkt)
		n.lost(pkt)
		atomic.AddUint64(&n.Stats.DroppedRouter, 1)
		return
	}
	if pkt.SourceRoute != nil {
		if pkt.hop+1 >= len(pkt.SourceRoute) || pkt.SourceRoute[pkt.hop+1] != r {
			n.tracePkt("drop-noroute", r, pkt)
			n.lost(pkt)
			atomic.AddUint64(&n.Stats.DroppedNoRoute, 1)
			return
		}
	}
	atDst := pkt.Dst == r
	if pkt.SourceRoute != nil {
		atDst = pkt.hop+2 == len(pkt.SourceRoute) && atDst
	}
	if atDst {
		if n.routers[r].discardLocal {
			n.tracePkt("drop-deadnode", r, pkt)
			n.lost(pkt)
			atomic.AddUint64(&n.Stats.DroppedDeadNode, 1)
			return
		}
		if n.endpoints[r] == nil || n.endpoints[r].Accept(pkt) {
			if pkt.SourceRoute != nil {
				pkt.hop++
			}
			n.tracePkt("deliver", r, pkt)
			atomic.AddUint64(&n.Stats.Delivered, 1)
			if pkt.Truncated {
				atomic.AddUint64(&n.Stats.DeliveredTrunc, 1)
			}
			return
		}
		backoff := n.cfg.LoopbackDelay
		if backoff < sim.Microsecond {
			backoff = sim.Microsecond
		}
		n.mStalls.Inc()
		n.eng(r).AfterCall(backoff, n.retryFn, pkt, nil, uint64(r))
		return
	}
	if pkt.SourceRoute != nil {
		pkt.hop++
	}
	port, ok := n.nextPort(r, pkt)
	if !ok {
		return // counted by nextPort; packet is gone
	}
	tch := n.routers[r].chans[port][pkt.Lane]
	tch.q = append(tch.q, pkt) // elastic ingress: the boundary absorbs bursts
	n.kick(tch)
}
