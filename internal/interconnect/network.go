package interconnect

import (
	"fmt"
	"sort"
	"sync/atomic"

	"flashfc/internal/metrics"
	"flashfc/internal/sim"
	"flashfc/internal/timing"
	"flashfc/internal/topology"
	"flashfc/internal/trace"
)

// Config tunes the fabric model.
type Config struct {
	// Reliable enables HAL-style hardware end-to-end reliability (§6.3):
	// normal-lane packets destroyed by a failure are held by the fabric
	// and retransmitted once RetransmitLost is called after connectivity
	// is restored. Recovery lanes are never retransmitted (the recovery
	// algorithm has its own timeouts and retries).
	Reliable bool
	// LaneBuffer is the per-channel, per-lane buffer capacity in packets.
	LaneBuffer int
	// RecoveryHeadDrop is how long a source-routed recovery packet may
	// stay blocked at the head of a channel before it is discarded, the
	// §4.1 mechanism that keeps the recovery lanes from congesting.
	RecoveryHeadDrop sim.Time
	// LoopbackDelay is the delivery delay for node-to-self packets.
	LoopbackDelay sim.Time
	// Metrics, when non-nil, receives fabric counters (per-lane traffic,
	// truncations, black holes, backpressure stalls). Nil disables
	// reporting at zero cost: the instruments are nil-safe.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives per-packet lifecycle point events
	// (inject, per-hop route, deliver, every kind of drop) linked by the
	// packet's flow id. Nil disables tracing at zero cost.
	Trace *trace.Tracer
	// Partition, when non-nil, spreads the fabric across the region-local
	// engines of a partitioned simulation (see partition.go). Nil keeps
	// the classic single-engine fabric, bit-for-bit.
	Partition *Partition
	// Tables, when non-nil, are the pristine routing tables to install at
	// construction instead of the topology's defaults — the hook routing
	// strategies use to own pristine-table generation.
	Tables topology.Tables
}

// DefaultConfig returns the standard fabric parameters.
func DefaultConfig() Config {
	return Config{
		LaneBuffer:       4,
		RecoveryHeadDrop: 10 * sim.Microsecond,
		LoopbackDelay:    60,
	}
}

// channel is one directed (router, port, lane) buffer: the sending side of a
// virtual channel. Packets at the head either advance into the next router's
// chosen channel (or node) or block there, exerting backpressure.
type channel struct {
	router, port int
	lane         Lane
	q            []*Packet
	serving      bool
	blocked      bool
	blockedAt    sim.Time
	waiters      []*channel // channels blocked waiting for space here
	// inTransit is the set of packets currently being serviced across this
	// channel's link, used to truncate in-flight packets on link failure.
	// Tracking it per channel (rather than per link) keeps every map owned
	// by exactly one region in partitioned mode: a boundary link's two
	// directions belong to different regions.
	inTransit map[*Packet]int // pkt -> target router
}

// shrinkFloor is the smallest backing-array capacity dropHead will shrink.
// Steady-state lane queues stay below it (LaneBuffer is 4), so the per-flit
// hot path never reallocates; only queues inflated by an elastic-injection
// burst pay the copies, and those halve away in O(log cap) steps.
const shrinkFloor = 16

// dropHead removes the head packet by shifting in place: lane queues are a
// few entries deep, and keeping the backing array's front intact lets
// enqueues reuse its capacity instead of reallocating every round trip.
// Burst-inflated backing arrays are released once the queue drains below a
// quarter of their capacity, so a congestion spike does not pin peak-sized
// arrays for the rest of the run.
func (ch *channel) dropHead() {
	n := len(ch.q) - 1
	copy(ch.q, ch.q[1:])
	ch.q[n] = nil
	ch.q = ch.q[:n]
	if c := cap(ch.q); c > shrinkFloor && n < c/4 {
		q := make([]*Packet, n, c/2)
		copy(q, ch.q)
		ch.q = q
	}
}

// routerState is the mutable state of one SPIDER router.
type routerState struct {
	failed bool
	// discard[port] makes the router silently drop packets routed to
	// that port: the interconnect-recovery isolation step (§4.4).
	discard []bool
	// discardLocal makes the router drop packets destined to its own
	// attached node: the isolation step for a node whose controller has
	// stopped accepting packets (firmware infinite loop, §3.1).
	discardLocal bool
	// table is this router's next-hop port per destination.
	table []int
	// chans[port][lane]
	chans [][]*channel
	// nodeWaiters are channels blocked delivering to this router's node.
	nodeWaiters []*channel
}

// Stats counts fabric-level events of interest to the experiments. All
// fields are updated with atomic adds: in partitioned mode concurrent
// region workers share one Stats, and because the updates are commutative
// sums the totals are identical at any worker count. Read between windows
// (or after the run), plain loads are safe.
type Stats struct {
	Injected           uint64
	Delivered          uint64
	DeliveredTrunc     uint64
	DroppedLink        uint64 // black-holed by a failed link
	DroppedRouter      uint64 // sunk by a failed router
	DroppedNoRoute     uint64
	DroppedIsolation   uint64 // discarded by the isolation step
	DroppedHeadTimeout uint64 // recovery-lane head drop
	DroppedDeadNode    uint64 // delivered to a failed node controller
}

// Network is the whole fabric.
type Network struct {
	E    *sim.Engine
	Topo *topology.Topology
	cfg  Config

	routers   []*routerState
	linkUp    []bool
	endpoints []Endpoint
	Stats     Stats

	// OnLost, if set, observes every packet whose content is destroyed
	// by the fabric: drops of any kind and in-flight truncations. The
	// machine-level verification oracle uses it to know which lines may
	// legitimately have become incoherent.
	OnLost func(p *Packet)
	// retained holds packets awaiting end-to-end retransmission in
	// reliable mode.
	retained []*Packet

	// Metric instruments, pre-resolved in New so the hot paths avoid map
	// lookups. All are nil-safe when no registry is configured.
	mLanePackets [NumLanes]*metrics.Counter
	mLaneFlits   [NumLanes]*metrics.Counter
	mTruncated   *metrics.Counter
	mBlackholed  *metrics.Counter
	mStalls      *metrics.Counter
	mTransient   *metrics.Counter
	mLinkHeals   *metrics.Counter

	// flowSeq numbers packets as they are injected; the sequence doubles
	// as the trace flow id and as a deterministic order for packets
	// recovered from unordered sets (see FailLink). Partitioned fabrics
	// use flowSeqR instead: one counter per region, region-tagged in the
	// high bits, so concurrent injections never contend and ids stay a
	// pure function of each region's deterministic execution.
	flowSeq  uint64
	flowSeqR []uint64

	// Pre-bound event callbacks: the method values are bound once in New
	// so the per-flit hop, loopback-delivery and head-drop schedulings
	// allocate nothing.
	arriveFn   sim.Callback
	deliverFn  sim.Callback
	headDropFn sim.Callback
	launchFn   sim.Callback
	ingressFn  sim.Callback
	retryFn    sim.Callback
}

// tracePkt records one packet-lifecycle trace point at the given router or
// node. No-op (and allocation-free) when tracing is disabled.
func (n *Network) tracePkt(name string, at int, p *Packet) {
	if tr := n.cfg.Trace; tr != nil {
		tr.Point(n.now(at), at, "pkt", name, p.flow, int64(p.Dst), int64(p.Lane))
	}
}

func (n *Network) lost(p *Packet) {
	if n.cfg.Reliable && !p.Lane.IsRecovery() && !p.retried {
		// HAL-style end-to-end reliability: the sender's hardware holds
		// a copy and will resend once connectivity is restored (§6.3).
		n.retained = append(n.retained, p)
		return
	}
	if n.OnLost != nil {
		n.OnLost(p)
	}
}

// RetainedLost reports how many packets await retransmission.
func (n *Network) RetainedLost() int { return len(n.retained) }

// RetransmitLost resends every retained packet whose destination is still
// reachable (per the supplied node map); the rest are reported through
// OnLost as real losses. It returns the number resent. Called once after
// interconnect recovery has restored connectivity (§6.3).
func (n *Network) RetransmitLost(nodeUp func(int) bool) int {
	pkts := n.retained
	n.retained = nil
	sent := 0
	for _, p := range pkts {
		fresh := &Packet{
			Src: p.Src, Dst: p.Dst, Lane: p.Lane,
			Payload: p.Payload, Bytes: p.Bytes, retried: true,
		}
		if nodeUp == nil || !nodeUp(p.Dst) {
			n.lost(fresh) // destination died with the fault: a real loss
			continue
		}
		sent++
		n.Send(fresh)
	}
	return sent
}

// New builds a fabric over topo with the topology's default deadlock-free
// routing tables installed in every router.
func New(e *sim.Engine, topo *topology.Topology, cfg Config) *Network {
	n := &Network{
		E:         e,
		Topo:      topo,
		cfg:       cfg,
		routers:   make([]*routerState, topo.Routers()),
		linkUp:    make([]bool, len(topo.Links())),
		endpoints: make([]Endpoint, topo.Routers()),
	}
	n.arriveFn = n.arriveEv
	n.deliverFn = n.deliverEv
	n.headDropFn = n.headDropEv
	n.launchFn = n.launchEv
	n.ingressFn = n.ingressEv
	n.retryFn = n.retryEv
	if pt := cfg.Partition; pt != nil {
		n.flowSeqR = make([]uint64, len(pt.Engines))
	}
	for i := range n.linkUp {
		n.linkUp[i] = true
	}
	for l := Lane(0); l < NumLanes; l++ {
		n.mLanePackets[l] = cfg.Metrics.Counter("interconnect.lane." + l.String() + ".packets")
		n.mLaneFlits[l] = cfg.Metrics.Counter("interconnect.lane." + l.String() + ".flits")
	}
	n.mTruncated = cfg.Metrics.Counter("interconnect.truncated_packets")
	n.mBlackholed = cfg.Metrics.Counter("interconnect.blackholed_packets")
	n.mStalls = cfg.Metrics.Counter("interconnect.backpressure_stalls")
	n.mTransient = cfg.Metrics.Counter("interconnect.transient_link_windows")
	n.mLinkHeals = cfg.Metrics.Counter("interconnect.link_heals")
	tables := cfg.Tables
	if tables == nil {
		tables = topology.DefaultTables(topo)
	}
	for r := range n.routers {
		deg := topo.Degree(r)
		rs := &routerState{
			discard: make([]bool, deg),
			table:   tables[r],
			chans:   make([][]*channel, deg),
		}
		for p := 0; p < deg; p++ {
			rs.chans[p] = make([]*channel, NumLanes)
			for l := Lane(0); l < NumLanes; l++ {
				rs.chans[p][l] = &channel{router: r, port: p, lane: l}
			}
		}
		n.routers[r] = rs
	}
	return n
}

// SetEndpoint attaches the node controller for node id.
func (n *Network) SetEndpoint(id int, ep Endpoint) { n.endpoints[id] = ep }

// RouterAlive reports whether router r is functioning.
func (n *Network) RouterAlive(r int) bool { return !n.routers[r].failed }

// LinkAlive reports whether link l is functioning.
func (n *Network) LinkAlive(l int) bool { return n.linkUp[l] }

// SetRouterTable installs a new next-hop row on router r (one destination
// entry per node). Used by interconnect recovery after the drain (§4.4).
func (n *Network) SetRouterTable(r int, row []int) {
	n.routers[r].table = append([]int(nil), row...)
}

// RouterTable returns a copy of router r's installed next-hop row, for
// post-recovery deadlock-freedom verification.
func (n *Network) RouterTable(r int) []int {
	return append([]int(nil), n.routers[r].table...)
}

// SetDiscard reprograms router r to discard (or stop discarding) traffic
// routed through port p — the isolation step of interconnect recovery. Any
// packets already queued toward that port are dropped, which is what lets
// stalled traffic behind them make forward progress (§4.4).
func (n *Network) SetDiscard(r, p int, on bool) {
	rs := n.routers[r]
	rs.discard[p] = on
	if !on {
		return
	}
	for l := Lane(0); l < NumLanes; l++ {
		ch := rs.chans[p][l]
		dropped := len(ch.q)
		if ch.serving {
			// The head packet is mid-flight; let it finish (it will
			// be re-checked on arrival). Drop the rest.
			if dropped > 1 {
				for _, pk := range ch.q[1:] {
					n.tracePkt("drop-isolation", r, pk)
					n.lost(pk)
				}
				ch.q = ch.q[:1]
				atomic.AddUint64(&n.Stats.DroppedIsolation, uint64(dropped-1))
			}
		} else {
			for _, pk := range ch.q {
				n.tracePkt("drop-isolation", r, pk)
				n.lost(pk)
			}
			ch.q = ch.q[:0]
			ch.blocked = false
			atomic.AddUint64(&n.Stats.DroppedIsolation, uint64(dropped))
		}
		n.wakeWaiters(ch)
	}
}

// SetDiscardLocal reprograms router r to drop packets destined to its own
// node. Deliveries currently blocked on the node are retried and dropped,
// which unclogs the fabric behind a controller stuck in an infinite loop.
func (n *Network) SetDiscardLocal(r int, on bool) {
	n.routers[r].discardLocal = on
	if on {
		n.wakeNodeWaiters(r)
	}
}

// FailRouter kills router r: its queued packets are lost and it sinks all
// future traffic (§4.1: a router failure is the failure of the router; we do
// not also fail its links here — callers model a cabinet loss as explicit
// combinations of router and link failures).
func (n *Network) FailRouter(r int) {
	rs := n.routers[r]
	if rs.failed {
		return
	}
	rs.failed = true
	for p := range rs.chans {
		for _, ch := range rs.chans[p] {
			atomic.AddUint64(&n.Stats.DroppedRouter, uint64(len(ch.q)))
			for _, pk := range ch.q {
				n.tracePkt("drop-router", r, pk)
				n.lost(pk)
			}
			ch.q = ch.q[:0]
			ch.blocked = false
			n.wakeWaiters(ch)
		}
	}
	// Channels blocked delivering into this node will retry, find the
	// router failed, and sink their packets.
	n.wakeNodeWaiters(r)
}

// FailLink kills link l. A packet currently being serviced across the link
// is truncated and continues to its destination (§3.1); everything else that
// later tries to traverse the link is silently sunk ("black hole", §4.1).
func (n *Network) FailLink(l int) {
	if !n.linkUp[l] {
		return
	}
	n.linkUp[l] = false
	// In-transit tracking lives on the link's two sending channels (one
	// per direction, all lanes). The sets are unordered; process their
	// packets in injection order so retention (reliable mode) and trace
	// points come out in a deterministic sequence.
	var victims []*Packet
	target := map[*Packet]int{}
	lk := n.Topo.Links()[l]
	for _, r := range [2]int{lk.A, lk.B} {
		p := n.Topo.PortTo(r, lk.A+lk.B-r)
		if p < 0 {
			continue
		}
		for _, ch := range n.routers[r].chans[p] {
			for pkt, far := range ch.inTransit {
				victims = append(victims, pkt)
				target[pkt] = far
			}
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].flow < victims[j].flow })
	for _, pkt := range victims {
		pkt.Truncated = true
		n.mTruncated.Inc()
		n.tracePkt("truncate", target[pkt], pkt)
		n.lost(pkt)
	}
}

// FailLinkTransient makes link l misbehave exactly like a failed link —
// the in-flight packets are truncated, later traversals are black-holed —
// but only for the given window of simulated time, after which the link
// heals and carries traffic normally again. No-op if the link is already
// down (a transient fault on a dead link adds nothing). The heal event is
// scheduled on the engine of the link's A-side region, which keeps the
// window deterministic at any partition worker count once injection has
// forced global interleaving.
func (n *Network) FailLinkTransient(l int, window sim.Time) {
	if !n.linkUp[l] {
		return
	}
	n.mTransient.Inc()
	n.FailLink(l)
	lk := n.Topo.Links()[l]
	n.eng(lk.A).After(window, func() { n.healLink(l) })
}

// healLink restores a link downed by a transient window and restarts
// service on its sending channels in both directions. Packets queued
// behind a blocked head survive the window intact; everything that tried
// to traverse the link while it was down is already accounted as lost.
func (n *Network) healLink(l int) {
	if n.linkUp[l] {
		return
	}
	n.linkUp[l] = true
	n.mLinkHeals.Inc()
	lk := n.Topo.Links()[l]
	for _, r := range [2]int{lk.A, lk.B} {
		p := n.Topo.PortTo(r, lk.A+lk.B-r)
		if p < 0 || n.routers[r].failed {
			continue
		}
		for _, ch := range n.routers[r].chans[p] {
			n.kick(ch)
		}
	}
}

// InFlight reports the number of packets anywhere in the fabric, for tests
// and drain instrumentation.
func (n *Network) InFlight() int {
	c := 0
	for _, rs := range n.routers {
		for _, ports := range rs.chans {
			for _, ch := range ports {
				c += len(ch.q)
			}
		}
	}
	return c
}

// Send injects p at its source router. Injection always succeeds: the MAGIC
// outbox is modeled as elastic, so congestion manifests downstream in the
// fabric rather than at the injection point.
func (n *Network) Send(p *Packet) {
	atomic.AddUint64(&n.Stats.Injected, 1)
	n.mLanePackets[p.Lane].Inc()
	n.mLaneFlits[p.Lane].Add(uint64(flits(p)))
	p.Injected = n.now(p.Src)
	if p.flow == 0 {
		if pt := n.cfg.Partition; pt != nil {
			reg := pt.Of[p.Src]
			n.flowSeqR[reg]++
			p.flow = uint64(reg+1)<<regionFlowShift | n.flowSeqR[reg]
		} else {
			n.flowSeq++
			p.flow = n.flowSeq
		}
	}
	n.tracePkt("inject", p.Src, p)
	if p.SourceRoute != nil {
		if len(p.SourceRoute) == 0 || p.SourceRoute[0] != p.Src {
			panic(fmt.Sprintf("interconnect: bad source route %v from %d", p.SourceRoute, p.Src))
		}
		p.hop = 0
	}
	if p.Dst == p.Src && (p.SourceRoute == nil || len(p.SourceRoute) == 1) {
		n.eng(p.Src).AfterCall(n.cfg.LoopbackDelay, n.deliverFn, p, nil, 0)
		return
	}
	rs := n.routers[p.Src]
	if rs.failed {
		atomic.AddUint64(&n.Stats.DroppedRouter, 1)
		n.tracePkt("drop-router", p.Src, p)
		n.lost(p)
		return
	}
	port, ok := n.nextPort(p.Src, p)
	if !ok {
		return // counted by nextPort
	}
	ch := rs.chans[port][p.Lane]
	ch.q = append(ch.q, p) // elastic injection
	n.kick(ch)
}

// nextPort picks the output port at router r for packet p, applying source
// routes, tables, discard configuration and dead-end accounting. ok=false
// means the packet was dropped.
func (n *Network) nextPort(r int, p *Packet) (port int, ok bool) {
	if p.SourceRoute != nil {
		if p.hop+1 >= len(p.SourceRoute) {
			atomic.AddUint64(&n.Stats.DroppedNoRoute, 1)
			n.tracePkt("drop-noroute", r, p)
			n.lost(p)
			return 0, false
		}
		next := p.SourceRoute[p.hop+1]
		port = n.Topo.PortTo(r, next)
		if port < 0 {
			atomic.AddUint64(&n.Stats.DroppedNoRoute, 1)
			n.tracePkt("drop-noroute", r, p)
			n.lost(p)
			return 0, false
		}
	} else {
		port = n.routers[r].table[p.Dst]
		if port < 0 {
			atomic.AddUint64(&n.Stats.DroppedNoRoute, 1)
			n.tracePkt("drop-noroute", r, p)
			n.lost(p)
			return 0, false
		}
	}
	if n.routers[r].discard[port] {
		atomic.AddUint64(&n.Stats.DroppedIsolation, 1)
		n.tracePkt("drop-isolation", r, p)
		n.lost(p)
		return 0, false
	}
	return port, true
}

// kick starts servicing the head of ch if idle.
func (n *Network) kick(ch *channel) {
	if ch.serving || ch.blocked || len(ch.q) == 0 {
		return
	}
	if n.routers[ch.router].failed {
		return
	}
	pkt := ch.q[0]
	adj := n.Topo.Adjacency(ch.router)[ch.port]
	link := adj.Link
	if !n.linkUp[link] {
		// Black hole: sink the head packet and try the next.
		n.tracePkt("drop-blackhole", ch.router, pkt)
		n.lost(pkt)
		ch.dropHead()
		atomic.AddUint64(&n.Stats.DroppedLink, 1)
		n.mBlackholed.Inc()
		n.wakeWaiters(ch)
		n.kick(ch)
		return
	}
	ch.serving = true
	if ch.inTransit == nil {
		ch.inTransit = make(map[*Packet]int)
	}
	ch.inTransit[pkt] = adj.To
	if pt := n.cfg.Partition; pt != nil && pt.Of[ch.router] != pt.Of[adj.To] {
		// Inter-region link: the hop splits into a source-side launch
		// (frees the channel after the link service time) and a
		// destination-side ingress scheduled through the partition
		// coordinator after the extra inter-region wire delay. See
		// partition.go for the model.
		e := n.eng(ch.router)
		deliverAt := e.Now() + serviceTime(pkt) + pt.Extra
		pt.P.Send(pt.Of[ch.router], pt.Of[adj.To], deliverAt,
			nil, n.ingressFn, pkt, nil, packRL(adj.To, link))
		e.AfterCall(serviceTime(pkt), n.launchFn, ch, pkt, uint64(link))
		return
	}
	n.eng(ch.router).AfterCall(serviceTime(pkt), n.arriveFn, ch, pkt, uint64(link))
}

// arriveEv is the pre-bound event form of arrive, scheduled by kick for
// every flit-hop traversal.
func (n *Network) arriveEv(a1, a2 any, u uint64) {
	n.arrive(a1.(*channel), a2.(*Packet), int(u))
}

// arrive is called when pkt finishes traversing ch's link. The packet is
// logically at the far router's input; it advances into that router's chosen
// output channel (or node) or blocks, keeping its slot in ch.
func (n *Network) arrive(ch *channel, pkt *Packet, link int) {
	ch.serving = false
	delete(ch.inTransit, pkt)
	if n.routers[ch.router].failed || len(ch.q) == 0 || ch.q[0] != pkt {
		// The source router failed mid-service and already destroyed
		// this packet (and counted it); nothing left to advance.
		return
	}
	if !n.linkUp[link] && !pkt.Truncated {
		// The link died before service completed and the packet was
		// not marked as the in-flight victim; sink it.
		n.tracePkt("drop-blackhole", ch.router, pkt)
		n.lost(pkt)
		n.popHead(ch)
		atomic.AddUint64(&n.Stats.DroppedLink, 1)
		n.mBlackholed.Inc()
		return
	}
	n.tracePkt("hop", n.Topo.Adjacency(ch.router)[ch.port].To, pkt)
	n.advance(ch, pkt)
}

// advance tries to move pkt (at the head of ch, already across ch's link)
// into the far router. Called initially from arrive and again from wakeups.
func (n *Network) advance(ch *channel, pkt *Packet) {
	r := n.Topo.Adjacency(ch.router)[ch.port].To
	if n.routers[r].failed {
		n.tracePkt("drop-router", r, pkt)
		n.lost(pkt)
		n.popHead(ch)
		atomic.AddUint64(&n.Stats.DroppedRouter, 1)
		return
	}
	if pkt.SourceRoute != nil {
		if pkt.hop+1 >= len(pkt.SourceRoute) || pkt.SourceRoute[pkt.hop+1] != r {
			n.tracePkt("drop-noroute", r, pkt)
			n.lost(pkt)
			n.popHead(ch)
			atomic.AddUint64(&n.Stats.DroppedNoRoute, 1)
			return
		}
	}
	atDst := pkt.Dst == r
	if pkt.SourceRoute != nil {
		atDst = pkt.hop+2 == len(pkt.SourceRoute) && atDst
	}
	if atDst {
		if n.routers[r].discardLocal {
			n.tracePkt("drop-deadnode", r, pkt)
			n.lost(pkt)
			n.popHead(ch)
			atomic.AddUint64(&n.Stats.DroppedDeadNode, 1)
			return
		}
		if n.endpoints[r] == nil || n.endpoints[r].Accept(pkt) {
			if pkt.SourceRoute != nil {
				pkt.hop++
			}
			n.tracePkt("deliver", r, pkt)
			n.popHead(ch)
			atomic.AddUint64(&n.Stats.Delivered, 1)
			if pkt.Truncated {
				atomic.AddUint64(&n.Stats.DeliveredTrunc, 1)
			}
			return
		}
		n.block(ch, pkt)
		n.routers[r].nodeWaiters = append(n.routers[r].nodeWaiters, ch)
		return
	}
	// Forward through r.
	if pkt.SourceRoute != nil {
		pkt.hop++
	}
	port, ok := n.nextPort(r, pkt)
	if !ok {
		if pkt.SourceRoute != nil {
			pkt.hop-- // undo; packet is gone anyway
		}
		n.popHead(ch)
		return
	}
	tch := n.routers[r].chans[port][pkt.Lane]
	if len(tch.q) < n.cfg.LaneBuffer {
		n.popHead(ch)
		tch.q = append(tch.q, pkt)
		n.kick(tch)
		return
	}
	if pkt.SourceRoute != nil {
		pkt.hop-- // not moved yet
	}
	n.block(ch, pkt)
	tch.waiters = append(tch.waiters, ch)
}

// block marks ch blocked on its head packet and, for recovery lanes, arms
// the head-drop timeout.
func (n *Network) block(ch *channel, pkt *Packet) {
	ch.blocked = true
	ch.blockedAt = n.now(ch.router)
	n.mStalls.Inc()
	if pkt.Lane.IsRecovery() {
		n.eng(ch.router).AfterCall(n.cfg.RecoveryHeadDrop, n.headDropFn, ch, pkt, 0)
	}
}

// headDropEv fires the recovery-lane head-drop timeout armed by block. The
// guard makes stale timeouts (the head moved, or the channel unblocked)
// no-ops.
func (n *Network) headDropEv(a1, a2 any, _ uint64) {
	ch, pkt := a1.(*channel), a2.(*Packet)
	if ch.blocked && len(ch.q) > 0 && ch.q[0] == pkt {
		n.tracePkt("drop-headtimeout", ch.router, pkt)
		n.lost(pkt)
		n.popHead(ch)
		atomic.AddUint64(&n.Stats.DroppedHeadTimeout, 1)
	}
}

// popHead removes ch's head packet, wakes anything waiting for space in ch,
// and restarts service on ch.
func (n *Network) popHead(ch *channel) {
	ch.dropHead()
	ch.blocked = false
	n.wakeWaiters(ch)
	n.kick(ch)
}

// wakeWaiters retries channels blocked on space in ch.
func (n *Network) wakeWaiters(ch *channel) {
	ws := ch.waiters
	ch.waiters = nil
	for _, w := range ws {
		if w.blocked && len(w.q) > 0 {
			w.blocked = false
			n.advance(w, w.q[0])
		}
	}
}

// wakeNodeWaiters retries channels blocked delivering into node r's
// controller.
func (n *Network) wakeNodeWaiters(r int) {
	rs := n.routers[r]
	ws := rs.nodeWaiters
	rs.nodeWaiters = nil
	for _, w := range ws {
		if w.blocked && len(w.q) > 0 {
			w.blocked = false
			n.advance(w, w.q[0])
		}
	}
}

// NodeReady signals that node id's controller can accept input again;
// deliveries blocked on it are retried.
func (n *Network) NodeReady(id int) { n.wakeNodeWaiters(id) }

// deliver hands a loopback packet to the local endpoint. A refusing
// controller (full input queue, or wedged in an infinite loop) is retried
// with a microsecond backoff; once recovery isolates the node by setting
// the local-delivery discard, the packet is dropped like any other traffic
// bound for the dead controller.
func (n *Network) deliver(p *Packet) {
	ep := n.endpoints[p.Dst]
	if ep == nil {
		return
	}
	if n.routers[p.Dst].discardLocal {
		atomic.AddUint64(&n.Stats.DroppedDeadNode, 1)
		n.tracePkt("drop-deadnode", p.Dst, p)
		n.lost(p)
		return
	}
	if !ep.Accept(p) {
		backoff := n.cfg.LoopbackDelay
		if backoff < sim.Microsecond {
			backoff = sim.Microsecond
		}
		n.eng(p.Dst).AfterCall(backoff, n.deliverFn, p, nil, 0)
		return
	}
	n.tracePkt("deliver", p.Dst, p)
	atomic.AddUint64(&n.Stats.Delivered, 1)
}

// deliverEv is the pre-bound event form of deliver, used for loopback
// packets and controller-refusal retries.
func (n *Network) deliverEv(a1, _ any, _ uint64) { n.deliver(a1.(*Packet)) }

// ProbeRouter models the §4.2 router interrogation used while determining
// the closest working neighbors: a source-routed probe is sent along path
// (router ids, starting at the prober's router), and the final router
// answers if it and every traversed element are alive. The response arrives
// after the round-trip time; if anything on the path is dead there is no
// response and the caller's timeout fires instead. Path state is evaluated
// when the probe would traverse it, i.e. at call time.
func (n *Network) ProbeRouter(path []int, cb func()) {
	if len(path) == 0 {
		return
	}
	rtt := sim.Time(0)
	for i := 0; i < len(path); i++ {
		if n.routers[path[i]].failed {
			return
		}
		if i > 0 {
			p := n.Topo.PortTo(path[i-1], path[i])
			if p < 0 || !n.linkUp[n.Topo.Adjacency(path[i-1])[p].Link] {
				return
			}
			rtt += 2 * (timing.RouterHop + timing.LinkWire + 16*timing.LinkBytePeriod)
		}
	}
	n.eng(path[0]).After(rtt+2*timing.RouterHop, cb)
}
