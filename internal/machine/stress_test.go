package machine

import (
	"math/rand"
	"testing"

	"flashfc/internal/coherence"
	"flashfc/internal/fault"
	"flashfc/internal/magic"
	"flashfc/internal/proc"
	"flashfc/internal/sim"
)

// Randomized protocol stress: every node issues a mixed stream of reads and
// writes (each line has exactly one designated writer, so the final value
// of every line is well-defined), optionally with a recovery in the middle.
// At quiescence the global coherence invariants must hold and every line
// must read back its last committed value.

func stressRun(t *testing.T, seed int64, ops int, withFalseAlarm bool) {
	t.Helper()
	cfg := smallConfig(seed)
	m := New(cfg)
	rng := rand.New(rand.NewSource(seed))
	totalLines := int(uint64(cfg.Nodes) * cfg.MemBytes / 128)

	// writerOf assigns each line a unique writer.
	writerOf := func(line int) int { return line % cfg.Nodes }

	pending := 0
	var issue func(node int)
	issue = func(node int) {
		if pending >= ops {
			return
		}
		pending++
		line := rng.Intn(totalLines)
		addr := coherence.Addr(line * 128)
		var op proc.Op
		if writerOf(line) == node && rng.Intn(2) == 0 {
			tok := m.Oracle.NextToken()
			a := addr
			op = proc.Op{Kind: proc.OpWrite, Addr: addr, Token: tok, Done: func(r magic.Result) {
				if r.Err == nil {
					m.Oracle.Wrote(a, tok)
				}
				issue(node)
			}}
		} else {
			op = proc.Op{Kind: proc.OpRead, Addr: addr, Done: func(r magic.Result) { issue(node) }}
		}
		m.Nodes[node].CPU.Submit(op)
	}
	for n := 0; n < cfg.Nodes; n++ {
		for k := 0; k < 4; k++ {
			issue(n)
		}
	}
	if withFalseAlarm {
		m.InjectAt(fault.Fault{Type: fault.FalseAlarm, Node: seedMod(seed, cfg.Nodes)}, 300*sim.Microsecond)
		deadline := 10 * sim.Second
		for m.E.Now() < deadline && !m.Recovered() {
			m.E.RunUntil(m.E.Now() + sim.Millisecond)
		}
		if !m.Recovered() {
			t.Fatal("recovery incomplete")
		}
	}
	m.E.Run()

	if bad := m.CheckCoherenceInvariants(); len(bad) != 0 {
		for _, b := range bad {
			t.Error(b)
		}
		t.Fatalf("%d coherence invariant violations", len(bad))
	}
	res := m.VerifyMemory(0, 1)
	if !res.OK() {
		t.Fatalf("verify: %v", res)
	}
	if withFalseAlarm && res.Incoherent != 0 {
		t.Fatalf("false alarm lost data: %v", res)
	}
}

func seedMod(s int64, n int) int {
	v := int(s % int64(n))
	if v < 0 {
		v += n
	}
	return v
}

func TestStressProtocolQuiescence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		stressRun(t, seed, 400, false)
	}
}

func TestStressProtocolWithFalseAlarm(t *testing.T) {
	for seed := int64(10); seed <= 14; seed++ {
		stressRun(t, seed, 400, true)
	}
}

func TestInvariantCheckerDetectsViolations(t *testing.T) {
	m := New(smallConfig(99))
	// Manufacture a violation: directory says exclusive, cache empty.
	e := m.Nodes[0].Dir.Get(0x80)
	e.State = coherence.DirExclusive
	e.Owner = 1
	if bad := m.CheckCoherenceInvariants(); len(bad) == 0 {
		t.Fatal("checker should flag the phantom exclusive owner")
	}
	e.State = coherence.DirInvalid
	m.Nodes[0].Dir.Release(0x80)
	// Manufacture the reverse: resident line without a directory entry.
	m.Nodes[2].Cache.Install(0x100, coherence.CacheShared, 5)
	if bad := m.CheckCoherenceInvariants(); len(bad) == 0 {
		t.Fatal("checker should flag the orphan resident line")
	}
}
