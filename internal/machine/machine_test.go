package machine

import (
	"testing"

	"flashfc/internal/coherence"
	"flashfc/internal/core"
	"flashfc/internal/fault"
	"flashfc/internal/magic"
	"flashfc/internal/proc"
	"flashfc/internal/sim"
)

// readOp builds a read operation for tests.
func readOp(m *Machine, addr uint64) proc.Op {
	return proc.Op{Kind: proc.OpRead, Addr: coherence.Addr(addr)}
}

const recoveryDeadline = 2 * sim.Second

// smallConfig returns an 8-node machine with small caches/memories so the
// tests stay fast while exercising every code path.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig(8)
	cfg.Seed = seed
	cfg.MemBytes = 64 << 10 // 64 KB/node: 512 lines
	cfg.L2Bytes = 16 << 10  // 128 lines
	return cfg
}

func TestMeshShape(t *testing.T) {
	cases := map[int][2]int{
		2: {2, 1}, 4: {2, 2}, 8: {4, 2}, 16: {4, 4},
		32: {8, 4}, 64: {8, 8}, 128: {16, 8},
	}
	for n, want := range cases {
		w, h := MeshShape(n)
		if w != want[0] || h != want[1] {
			t.Errorf("MeshShape(%d) = %d,%d want %d,%d", n, w, h, want[0], want[1])
		}
	}
}

func TestFalseAlarmRecoveryNoDataLoss(t *testing.T) {
	m := New(smallConfig(7))
	// Write a few lines first so the flush has real work.
	for i, n := range m.Nodes {
		addr := m.Space.Base((i+3)%8) + 0x200
		tok := m.Oracle.NextToken()
		a, tk := addr, tok
		n.Ctrl.Write(addr, tok, func(r magic.Result) {
			if r.Err == nil {
				m.Oracle.Wrote(a, tk)
			}
		})
	}
	m.E.Run()
	m.Inject(fault.Fault{Type: fault.FalseAlarm, Node: 3})
	if !m.RunUntilRecovered(recoveryDeadline) {
		t.Fatalf("recovery did not complete; reports=%d expecting=%d", len(m.reports), len(m.expecting))
	}
	if got := len(m.reports); got != 8 {
		t.Fatalf("reports = %d, want 8", got)
	}
	for _, r := range m.reports {
		if r.ShutDown || r.Isolated {
			t.Fatalf("false alarm must not shut anything down: %+v", r)
		}
		if r.Incoherent != 0 {
			t.Fatalf("false alarm must not mark lines incoherent: %+v", r)
		}
	}
	res := m.VerifyMemory(0, 1)
	if !res.OK() {
		t.Fatalf("verification failed: %v", res)
	}
	if res.Incoherent != 0 {
		t.Fatalf("no line may be incoherent after a false alarm: %v", res)
	}
}

func TestNodeFailureRecovery(t *testing.T) {
	m := New(smallConfig(11))
	// Node 5 writes lines homed on node 2, then dies: those lines must
	// become incoherent. Node 1 writes lines homed on node 5: those become
	// inaccessible.
	var okWrites int
	write := func(node int, addr uint64) {
		tok := m.Oracle.NextToken()
		a := coherence.Addr(addr)
		m.Nodes[node].Ctrl.Write(a, tok, func(r magic.Result) {
			if r.Err == nil {
				m.Oracle.Wrote(a, tok)
				okWrites++
			}
		})
	}
	base2 := uint64(m.Space.Base(2))
	base5 := uint64(m.Space.Base(5))
	write(5, base2+0x100)
	write(5, base2+0x400)
	write(1, base5+0x100)
	m.E.Run()
	if okWrites != 3 {
		t.Fatalf("writes completed = %d, want 3", okWrites)
	}

	m.Inject(fault.Fault{Type: fault.NodeFailure, Node: 5})
	// Detection: node 1 touches node 5's memory and times out.
	m.Nodes[1].CPU.Submit(readOp(m, base5+0x800))
	if !m.RunUntilRecovered(recoveryDeadline) {
		t.Fatalf("recovery did not complete; reports=%d/%d", len(m.reports), len(m.expecting))
	}
	if len(m.reports) != 7 {
		t.Fatalf("reports = %d, want 7 (survivors)", len(m.reports))
	}
	// The survivors must all agree node 5 is down.
	for n, r := range m.reports {
		if r.ShutDown {
			t.Fatalf("node %d should not shut down", n)
		}
		if m.Nodes[n].Ctrl.NodeUp(5) {
			t.Fatalf("node %d's node map still shows 5 up", n)
		}
	}
	res := m.VerifyMemory(0, 1)
	if !res.OK() {
		t.Fatalf("verification failed: %v", res)
	}
	if res.Incoherent < 2 {
		t.Fatalf("lines written by the dead node should be incoherent: %v", res)
	}
	if res.InaccessibleOK == 0 {
		t.Fatalf("lines homed on the dead node should be inaccessible: %v", res)
	}
}

func TestInfiniteLoopRecovery(t *testing.T) {
	m := New(smallConfig(13))
	base3 := uint64(m.Space.Base(3))
	m.Inject(fault.Fault{Type: fault.InfiniteLoop, Node: 3})
	// Hammer the wedged node so traffic backs up, then recovery triggers
	// via timeout on some requester.
	for i := 0; i < 8; i++ {
		if i == 3 {
			continue
		}
		m.Nodes[i].CPU.Submit(readOp(m, base3+uint64(i)*0x100))
	}
	if !m.RunUntilRecovered(recoveryDeadline) {
		t.Fatalf("recovery did not complete; reports=%d/%d", len(m.reports), len(m.expecting))
	}
	if m.Net.InFlight() != 0 {
		t.Fatalf("fabric not drained: %d in flight", m.Net.InFlight())
	}
	res := m.VerifyMemory(0, 1)
	if !res.OK() {
		t.Fatalf("verification failed: %v", res)
	}
}

func TestRouterFailureRecovery(t *testing.T) {
	m := New(smallConfig(17))
	// Router 6 dies: node 6 is cut off (mesh 4x2: node 6 at (2,1)).
	m.Inject(fault.Fault{Type: fault.RouterFailure, Router: 6})
	m.Nodes[0].CPU.Submit(readOp(m, uint64(m.Space.Base(6))+0x100))
	if !m.RunUntilRecovered(recoveryDeadline) {
		t.Fatalf("recovery did not complete; reports=%d/%d", len(m.reports), len(m.expecting))
	}
	if len(m.reports) != 7 {
		t.Fatalf("reports = %d, want 7", len(m.reports))
	}
	res := m.VerifyMemory(0, 1)
	if !res.OK() {
		t.Fatalf("verification failed: %v", res)
	}
	// Connectivity among survivors must be restored.
	for i := 0; i < 8; i++ {
		if i == 6 {
			continue
		}
		done := false
		m.Nodes[0].Ctrl.Read(m.Space.Base(i)+0x40, func(r magic.Result) { done = r.Err == nil })
		m.E.Run()
		if !done {
			t.Fatalf("post-recovery read to node %d failed", i)
		}
	}
}

func TestLinkFailureRecovery(t *testing.T) {
	m := New(smallConfig(19))
	// Fail the link between nodes 1 and 2 (mesh 4x2, same row).
	p := m.Topo.PortTo(1, 2)
	link := m.Topo.Adjacency(1)[p].Link
	m.Inject(fault.Fault{Type: fault.LinkFailure, Link: link})
	// Traffic 1->2 is black-holed until recovery reroutes.
	m.Nodes[1].CPU.Submit(readOp(m, uint64(m.Space.Base(2))+0x100))
	if !m.RunUntilRecovered(recoveryDeadline) {
		t.Fatalf("recovery did not complete; reports=%d/%d", len(m.reports), len(m.expecting))
	}
	// No node lost: all 8 report, nobody shuts down.
	if len(m.reports) != 8 {
		t.Fatalf("reports = %d, want 8", len(m.reports))
	}
	for _, r := range m.reports {
		if r.ShutDown {
			t.Fatalf("link failure must not shut nodes down: %+v", r)
		}
	}
	res := m.VerifyMemory(0, 1)
	if !res.OK() {
		t.Fatalf("verification failed: %v", res)
	}
	// 1 -> 2 must work again over the rerouted path.
	done := false
	m.Nodes[1].Ctrl.Read(m.Space.Base(2)+0x40, func(r magic.Result) { done = r.Err == nil })
	m.E.Run()
	if !done {
		t.Fatal("post-recovery read across failed link's reroute failed")
	}
}

func TestFailureUnitsShutDownDoomedCell(t *testing.T) {
	cfg := smallConfig(23)
	// Two units of 4 nodes: {0..3}, {4..7}.
	cfg.FailureUnits = []int{0, 0, 0, 0, 1, 1, 1, 1}
	m := New(cfg)
	m.Inject(fault.Fault{Type: fault.NodeFailure, Node: 5})
	m.Nodes[1].CPU.Submit(readOp(m, uint64(m.Space.Base(5))+0x100))
	if !m.RunUntilRecovered(recoveryDeadline) {
		t.Fatalf("recovery did not complete; reports=%d/%d", len(m.reports), len(m.expecting))
	}
	for n, r := range m.reports {
		inUnit1 := n >= 4
		if inUnit1 && !r.ShutDown {
			t.Fatalf("node %d shares the failed unit and must shut down", n)
		}
		if !inUnit1 && r.ShutDown {
			t.Fatalf("node %d is in the healthy unit and must survive", n)
		}
	}
	// Survivors' node maps mark the whole doomed unit down.
	for n := 0; n < 4; n++ {
		for d := 4; d < 8; d++ {
			if m.Nodes[n].Ctrl.NodeUp(d) {
				t.Fatalf("node %d still thinks doomed node %d is up", n, d)
			}
		}
	}
}

func TestAggregatePhaseTimes(t *testing.T) {
	m := New(smallConfig(29))
	m.Inject(fault.Fault{Type: fault.FalseAlarm, Node: 0})
	if !m.RunUntilRecovered(recoveryDeadline) {
		t.Fatal("recovery did not complete")
	}
	pt := m.Aggregate()
	if pt.Participants != 8 {
		t.Fatalf("participants = %d", pt.Participants)
	}
	if !(pt.P1 > 0 && pt.P1 <= pt.P12 && pt.P12 <= pt.P123 && pt.P123 <= pt.Total) {
		t.Fatalf("phase times not cumulative: %+v", pt)
	}
	if pt.Total > 500*sim.Millisecond {
		t.Fatalf("8-node recovery should take well under 500 ms, got %v", pt.Total)
	}
}

func TestSecondFaultDuringRecoveryRestarts(t *testing.T) {
	m := New(smallConfig(31))
	m.Inject(fault.Fault{Type: fault.NodeFailure, Node: 5})
	m.Nodes[1].CPU.Submit(readOp(m, uint64(m.Space.Base(5))+0x100))
	// Let recovery start, then kill another node mid-flight.
	m.E.RunUntil(m.E.Now() + 2*sim.Millisecond)
	m.Inject(fault.Fault{Type: fault.NodeFailure, Node: 7})
	if !m.RunUntilRecovered(5 * sim.Second) {
		t.Fatalf("recovery did not complete after second fault; reports=%d/%d",
			len(m.reports), len(m.expecting))
	}
	if len(m.reports) != 6 {
		t.Fatalf("reports = %d, want 6", len(m.reports))
	}
	for n := range m.reports {
		if m.Nodes[n].Ctrl.NodeUp(5) || m.Nodes[n].Ctrl.NodeUp(7) {
			t.Fatalf("node %d's map misses a dead node", n)
		}
	}
	res := m.VerifyMemory(0, 1)
	if !res.OK() {
		t.Fatalf("verification failed: %v", res)
	}
}

// phaseHook ensures the OnPhase plumbing works.
func TestOnPhaseHook(t *testing.T) {
	cfg := smallConfig(37)
	seen := map[core.Phase]bool{}
	cfg.Recovery.OnPhase = func(node int, p core.Phase) { seen[p] = true }
	m := New(cfg)
	m.Inject(fault.Fault{Type: fault.FalseAlarm, Node: 2})
	if !m.RunUntilRecovered(recoveryDeadline) {
		t.Fatal("recovery did not complete")
	}
	for _, p := range []core.Phase{core.PhaseInit, core.PhaseDissemination,
		core.PhaseInterconnect, core.PhaseCoherence, core.PhaseDone} {
		if !seen[p] {
			t.Fatalf("phase %v never observed", p)
		}
	}
}
