package machine

import (
	"fmt"

	"flashfc/internal/coherence"
	"flashfc/internal/core"
	"flashfc/internal/interconnect"
	"flashfc/internal/magic"
	"flashfc/internal/metrics"
	"flashfc/internal/proc"
	"flashfc/internal/sim"
	"flashfc/internal/trace"
)

// NodeSnapshot freezes one node's durable state. Mem and Dir are frozen
// copy-on-write base images — read-only once taken, safely shared by the
// source machine and every fork. Cache is a private deep copy (caches are
// small and mutate heavily, so COW buys nothing there).
type NodeSnapshot struct {
	Mem   map[coherence.Addr]uint64
	Dir   map[coherence.Addr]*coherence.DirEntry
	Cache *coherence.Cache
	Ctrl  *magic.Snapshot
	CPU   proc.Snapshot
}

// Snapshot is a frozen machine at a quiescent, pre-fault point. It is
// immutable once taken: FromSnapshot may be called on it any number of
// times, concurrently, and each call yields an independent machine that
// continues bit-identically to the source. The source machine itself also
// continues unaffected (its memory and directory images turn copy-on-write
// over the shared frozen bases).
//
// Not captured: Cfg.Trace (pass a tracer to FromSnapshot instead) and
// OnAllRecovered (re-install on the fork if needed). Callback function
// values inside Cfg (Recovery.OnEnter etc.) are carried as-is and must not
// close over per-run state.
type Snapshot struct {
	Cfg    Config
	Engine sim.EngineSnapshot
	// Regions holds the per-region engine snapshots of a partitioned
	// machine (Regions[0] == Engine); nil on sequential machines, keeping
	// their snapshot format unchanged.
	Regions []sim.EngineSnapshot `json:",omitempty"`
	Net     *interconnect.Snapshot
	Nodes   []NodeSnapshot
	Oracle  *Oracle
	Metrics *metrics.Registry
	Trace   *trace.State
}

// Snapshot captures the machine's full durable state. The machine must be
// quiescent and pre-fault: no pending events, no injected faults, no
// recovery in progress or completed, every agent idle in epoch 0. Each
// layer asserts its own share of that contract and panics with a
// description of what is still in flight; the returned snapshot is then
// complete by construction — nothing transient existed to lose.
func (m *Machine) Snapshot() *Snapshot {
	if m.P != nil {
		if p := m.P.Pending(); p != 0 {
			panic(fmt.Sprintf("machine: snapshot with %d events pending across regions", p))
		}
	} else if p := m.E.Pending(); p != 0 {
		panic(fmt.Sprintf("machine: snapshot with %d events pending", p))
	}
	switch {
	case len(m.ctrlDead) > 0:
		panic(fmt.Sprintf("machine: snapshot with %d dead controllers", len(m.ctrlDead)))
	case m.recovered || m.lastEpoch != 0:
		panic(fmt.Sprintf("machine: snapshot after recovery (epoch %d)", m.lastEpoch))
	case len(m.reports) > 0 || len(m.expecting) > 0:
		panic("machine: snapshot with recovery in progress")
	}
	for i, up := range m.truth.RouterUp {
		if !up {
			panic(fmt.Sprintf("machine: snapshot with router %d down", i))
		}
	}
	for l, up := range m.truth.LinkUp {
		if !up {
			panic(fmt.Sprintf("machine: snapshot with link %d down", l))
		}
	}
	cfg := m.Cfg
	cfg.Trace = nil
	s := &Snapshot{
		Cfg:     cfg,
		Engine:  m.E.Snapshot(),
		Net:     m.Net.Snapshot(),
		Nodes:   make([]NodeSnapshot, m.Cfg.Nodes),
		Oracle:  m.Oracle.Clone(),
		Metrics: m.Metrics.Clone(),
		Trace:   m.Cfg.Trace.SnapshotState(),
	}
	if m.P != nil {
		s.Regions = make([]sim.EngineSnapshot, m.P.Regions())
		for i := range s.Regions {
			s.Regions[i] = m.P.Region(i).Snapshot()
		}
	}
	for i, n := range m.Nodes {
		if ph, ep := n.Agent.Phase(), n.Agent.Epoch(); ph != core.PhaseIdle || ep != 0 {
			panic(fmt.Sprintf("machine: snapshot with agent %d in phase %v epoch %d", i, ph, ep))
		}
		s.Nodes[i] = NodeSnapshot{
			Mem:   n.Mem.Freeze(),
			Dir:   n.Dir.Freeze(),
			Cache: n.Cache.Clone(),
			Ctrl:  n.Ctrl.Snapshot(),
			CPU:   n.CPU.Snapshot(),
		}
	}
	return s
}

// FromSnapshot rehydrates an independent machine from a snapshot in
// O(non-memory state): memory and directory images are shared
// copy-on-write with the snapshot rather than copied. tr, which may be
// nil, becomes the fork's tracer; its contents are overwritten with the
// snapshot's trace state so the fork's timeline continues seamlessly from
// the warm-up's.
func FromSnapshot(s *Snapshot, tr *trace.Tracer) *Machine {
	cfg := s.Cfg
	cfg.Trace = tr
	tr.Restore(s.Trace)
	return build(cfg, s)
}

// FromSnapshotRouting is FromSnapshot with the routing strategy overridden
// on the fork. Router tables are not part of the interconnect snapshot
// (they are rebuilt at construction), and all registered strategies share
// the same pristine tables, so a quiescent pre-fault snapshot forks
// bit-identically under any strategy until the first fault — the property
// the head-to-head routing campaigns rely on to replay one warm-up under
// every strategy.
func FromSnapshotRouting(s *Snapshot, tr *trace.Tracer, routing string) *Machine {
	cfg := s.Cfg
	cfg.Trace = tr
	cfg.Routing = routing
	tr.Restore(s.Trace)
	return build(cfg, s)
}
