package machine

import (
	"fmt"

	"flashfc/internal/coherence"
)

// CheckCoherenceInvariants validates the global coherence state at a
// quiescent point (no operations in flight) and returns a description of
// every violation found:
//
//   - an exclusive line is resident in exactly its owner's cache;
//   - every resident copy of a shared line matches the home memory, and
//     its holder is recorded in the sharer list (silent evictions make the
//     recorded list a superset, never a subset);
//   - no line is resident in any cache without a directory entry naming
//     that cache;
//   - no directory entry is stuck in a transient (locked) state.
//
// Tests call this after workloads and after recovery; it is the
// protocol-level ground truth the §5.2 experiments rely on.
func (m *Machine) CheckCoherenceInvariants() []string {
	var bad []string
	// Forward sweep: directory entries against caches.
	for _, home := range m.Nodes {
		home.Dir.ForEach(func(a coherence.Addr, e *coherence.DirEntry) {
			switch e.State {
			case coherence.DirExclusive:
				owner := m.Nodes[e.Owner]
				l := owner.Cache.Lookup(a)
				if l == nil {
					bad = append(bad, fmt.Sprintf("%v: exclusive at %d but not resident", a, e.Owner))
				} else if l.State != coherence.CacheExclusive {
					bad = append(bad, fmt.Sprintf("%v: owner %d holds it non-exclusive", a, e.Owner))
				}
				for _, n := range m.Nodes {
					if n.ID != e.Owner && n.Cache.Lookup(a) != nil {
						bad = append(bad, fmt.Sprintf("%v: second copy at %d beside owner %d", a, n.ID, e.Owner))
					}
				}
			case coherence.DirShared:
				memTok := home.Mem.Read(a)
				for _, n := range m.Nodes {
					l := n.Cache.Lookup(a)
					if l == nil {
						continue
					}
					if !e.Sharers.Has(n.ID) {
						bad = append(bad, fmt.Sprintf("%v: unrecorded sharer %d", a, n.ID))
					}
					if l.State != coherence.CacheShared {
						bad = append(bad, fmt.Sprintf("%v: sharer %d holds it exclusive", a, n.ID))
					}
					if l.Token != memTok {
						bad = append(bad, fmt.Sprintf("%v: sharer %d token %x != memory %x", a, n.ID, l.Token, memTok))
					}
				}
			case coherence.DirPendingRecall, coherence.DirPendingInval:
				bad = append(bad, fmt.Sprintf("%v: stuck in %v at quiescence", a, e.State))
			}
		})
	}
	// Reverse sweep: cached lines must be known to their homes.
	for _, n := range m.Nodes {
		n.Cache.ForEach(func(a coherence.Addr, l *coherence.CacheLine) {
			home := m.Nodes[m.Space.Home(a)]
			e := home.Dir.Lookup(a)
			if e == nil {
				bad = append(bad, fmt.Sprintf("%v: resident at %d with no directory entry", a, n.ID))
				return
			}
			switch e.State {
			case coherence.DirExclusive:
				if e.Owner != n.ID {
					bad = append(bad, fmt.Sprintf("%v: resident at %d but owned by %d", a, n.ID, e.Owner))
				}
			case coherence.DirShared:
				if !e.Sharers.Has(n.ID) {
					bad = append(bad, fmt.Sprintf("%v: resident at %d but not a recorded sharer", a, n.ID))
				}
			case coherence.DirIncoherent:
				bad = append(bad, fmt.Sprintf("%v: resident at %d while marked incoherent", a, n.ID))
			}
		})
	}
	return bad
}
