package machine_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/sim"
	"flashfc/internal/workload"
)

func newSmall(seed int64) *machine.Machine {
	mc := machine.DefaultConfig(8)
	mc.Seed = seed
	mc.MemBytes = 64 << 10
	mc.L2Bytes = 16 << 10
	return machine.New(mc)
}

// runBurst drives one seeded fill burst to completion and then drains the
// engine to a quiescent point (evicted-line writebacks are fire-and-forget,
// so completion of the fill alone does not mean no events are pending).
func runBurst(t *testing.T, m *machine.Machine, lines int, seed int64) {
	t.Helper()
	f := workload.NewFillerSeeded(m, seed)
	f.FillLines = lines
	done := false
	f.Start(func() { done = true })
	deadline := m.E.Now() + 10*sim.Second
	for (!done || m.E.Pending() > 0) && m.E.Now() < deadline {
		m.E.RunUntil(m.E.Now() + sim.Millisecond)
	}
	if !done || m.E.Pending() > 0 {
		t.Fatalf("burst did not quiesce: done=%v pending=%d", done, m.E.Pending())
	}
}

// continueRun is the identical post-snapshot script both sides execute: a
// random fault injected mid-burst, recovery, and a full verification sweep.
// Its fingerprint captures everything observable about the run.
func continueRun(t *testing.T, m *machine.Machine, ft fault.Type, burstSeed int64) string {
	t.Helper()
	f := fault.Random(m.E.Rand(), ft, m.Topo, 1)
	filler := workload.NewFillerSeeded(m, burstSeed)
	filler.FillLines = 32
	filler.OnHalfDone = func() { m.Inject(f) }
	done := false
	filler.Start(func() { done = true })
	deadline := m.E.Now() + 5*sim.Second
	for !done && m.E.Now() < deadline {
		m.E.RunUntil(m.E.Now() + sim.Millisecond)
	}
	m.Nodes[0].CPU.Submit(workload.TouchOp(m, f.Node))
	recovered := m.RunUntilRecovered(m.E.Now() + 5*sim.Second)
	v := m.VerifyMemory(0, 1)
	mj, err := json.Marshal(m.MetricsSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("fault=%v recovered=%v now=%d fired=%d verify=%v metrics=%s",
		f, recovered, m.E.Now(), m.E.EventsFired(), v, mj)
}

// A fork must continue bit-identically to the source it was taken from,
// across random warm-up shapes and snapshot points.
func TestForkContinuesIdenticallyToSource(t *testing.T) {
	shapes := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		seed := int64(100 + trial)
		src := newSmall(seed)
		bursts := 1 + shapes.Intn(3)
		for b := 0; b < bursts; b++ {
			runBurst(t, src, 16+shapes.Intn(48), int64(1000*trial+b))
		}
		snap := src.Snapshot()

		ft := fault.AllTypes()[trial%len(fault.AllTypes())]
		want := continueRun(t, src, ft, 5555)
		fork := machine.FromSnapshot(snap, nil)
		got := continueRun(t, fork, ft, 5555)
		if got != want {
			t.Fatalf("trial %d (%d bursts, fault %v): fork diverged from source\nsource: %s\nfork:   %s",
				trial, bursts, ft, want, got)
		}
	}
}

// A snapshot must stay reusable: two forks taken before and after both the
// source and a sibling fork have run (and mutated their own state) must
// still produce identical runs.
func TestSnapshotImmutableAcrossForks(t *testing.T) {
	src := newSmall(42)
	runBurst(t, src, 64, 9001)
	snap := src.Snapshot()

	first := continueRun(t, machine.FromSnapshot(snap, nil), fault.NodeFailure, 777)
	// Dirty the source after the snapshot too, then fork again.
	continueRun(t, src, fault.RouterFailure, 888)
	second := continueRun(t, machine.FromSnapshot(snap, nil), fault.NodeFailure, 777)
	if first != second {
		t.Fatalf("sibling forks diverged:\nfirst:  %s\nsecond: %s", first, second)
	}
}

func TestSnapshotPanicsMidFlight(t *testing.T) {
	m := newSmall(1)
	f := workload.NewFiller(m)
	f.FillLines = 8
	f.Start(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot with pending events did not panic")
		}
	}()
	m.Snapshot()
}

func TestSnapshotPanicsPostFault(t *testing.T) {
	m := newSmall(2)
	runBurst(t, m, 16, 1)
	m.KillNode(3)
	// Drain whatever the kill provoked, then try to snapshot.
	m.E.RunUntil(m.E.Now() + sim.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot after a fault did not panic")
		}
	}()
	m.Snapshot()
}
