package machine

import (
	"fmt"

	"flashfc/internal/coherence"
	"flashfc/internal/magic"
	"flashfc/internal/proc"
	"flashfc/internal/sim"
)

// VerifyResult is the outcome of the §5.2 post-recovery memory sweep: every
// line in the system must either hold its last committed value, be reported
// incoherent (bus error) only if it may legitimately have been lost, or —
// when its home node is gone — fail with a bus error from the node map.
type VerifyResult struct {
	LinesChecked   int
	CorrectData    int
	Incoherent     int              // bus errors on lines whose loss is justified
	InaccessibleOK int              // bus errors on lines homed on dead nodes
	WrongData      []coherence.Addr // returned data != last committed value
	OverMarked     []coherence.Addr // bus error without a justifying loss
	MissingBusErr  []coherence.Addr // dead-home line that returned data
	Pending        int              // reads that never completed (harness error)
}

// OK reports whether the sweep found no anomalies.
func (v *VerifyResult) OK() bool {
	return len(v.WrongData) == 0 && len(v.OverMarked) == 0 &&
		len(v.MissingBusErr) == 0 && v.Pending == 0
}

func (v *VerifyResult) String() string {
	return fmt.Sprintf("verify{checked=%d correct=%d incoherent=%d inaccessible=%d wrong=%d overmarked=%d missingBE=%d pending=%d}",
		v.LinesChecked, v.CorrectData, v.Incoherent, v.InaccessibleOK,
		len(v.WrongData), len(v.OverMarked), len(v.MissingBusErr), v.Pending)
}

// VerifyMemory sweeps every line of the system's memory from the reader
// node, driving the simulation to completion. stride selects every
// stride-th line (1 = full sweep) so large configurations stay tractable.
func (m *Machine) VerifyMemory(reader int, stride int) *VerifyResult {
	if stride < 1 {
		stride = 1
	}
	res := &VerifyResult{}
	cpu := m.Nodes[reader].CPU
	ctrl := m.Nodes[reader].Ctrl
	lineCount := int(m.Cfg.MemBytes / 128)
	for home := 0; home < m.Cfg.Nodes; home++ {
		base := m.Space.Base(home)
		for li := 0; li < lineCount; li += stride {
			addr := base + coherence.Addr(li*128)
			res.LinesChecked++
			res.Pending++
			var done func(r magic.Result)
			done = func(r magic.Result) {
				if r.Err == magic.ErrAborted {
					// A concurrent recovery aborted the read;
					// reissue it (the sweep is idempotent).
					cpu.Submit(proc.Op{Kind: proc.OpRead, Addr: addr, Done: done})
					return
				}
				res.Pending--
				home := m.Space.Home(addr)
				// A home whose processor died but whose memory bank
				// still answers (CPU-fail/memory-survives) is held to
				// live-home standards: salvaged clean lines must read
				// back correctly, not hide behind a blanket bus error.
				m.classify(res, addr, ctrl.NodeUp(home) || ctrl.MemReachable(home), r)
			}
			cpu.Submit(proc.Op{Kind: proc.OpRead, Addr: addr, Done: done})
		}
	}
	// Drive the simulation until the sweep completes. The drain is
	// bounded: a wedged controller can keep generating retry events
	// forever, and the sweep must terminate regardless.
	deadline := m.Now() + 30*sim.Second
	for res.Pending > 0 && cpu.Inflight()+cpu.QueueLen() > 0 && m.Now() < deadline {
		m.Advance(m.Now() + sim.Millisecond)
	}
	m.Advance(m.Now() + 10*sim.Millisecond)
	return res
}

func (m *Machine) classify(res *VerifyResult, addr coherence.Addr, homeUp bool, r magic.Result) {
	switch {
	case !homeUp:
		if r.Err == magic.ErrBusError {
			res.InaccessibleOK++
		} else {
			res.MissingBusErr = append(res.MissingBusErr, addr)
		}
	case r.Err == magic.ErrBusError:
		if m.Oracle.MayBeLost(addr) {
			res.Incoherent++
		} else {
			res.OverMarked = append(res.OverMarked, addr)
		}
	case r.Err != nil:
		res.WrongData = append(res.WrongData, addr)
	case r.Token == m.Oracle.ExpectedToken(addr):
		res.CorrectData++
	default:
		res.WrongData = append(res.WrongData, addr)
	}
}
