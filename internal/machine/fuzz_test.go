package machine

import (
	"math/rand"
	"testing"

	"flashfc/internal/coherence"
	"flashfc/internal/fault"
	"flashfc/internal/magic"
	"flashfc/internal/proc"
	"flashfc/internal/sim"
)

// Containment fuzzer: random primary faults at random times under a random
// workload, sometimes followed by a second fault mid-recovery. Every run
// must converge and pass the full §5.2 verification contract. This is the
// generalization of the directed fault tests; any failing seed here is a
// real protocol or recovery bug.

func fuzzScenario(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := smallConfig(seed)
	cfg.Nodes = []int{8, 12, 16}[rng.Intn(3)]
	m := New(cfg)

	// Background workload: random reads/writes with per-line writers.
	totalLines := int(uint64(cfg.Nodes) * cfg.MemBytes / 128)
	stop := false
	var issue func(node int)
	issue = func(node int) {
		if stop {
			return
		}
		line := rng.Intn(totalLines)
		addr := coherence.Addr(line * 128)
		if line%cfg.Nodes == node && rng.Intn(2) == 0 {
			tok := m.Oracle.NextToken()
			m.Nodes[node].CPU.Submit(proc.Op{Kind: proc.OpWrite, Addr: addr, Token: tok,
				Done: func(r magic.Result) {
					if r.Err == nil {
						m.Oracle.Wrote(addr, tok)
					}
					issue(node)
				}})
			return
		}
		m.Nodes[node].CPU.Submit(proc.Op{Kind: proc.OpRead, Addr: addr,
			Done: func(magic.Result) { issue(node) }})
	}
	for n := 0; n < cfg.Nodes; n++ {
		issue(n)
		issue(n)
	}

	// Primary fault: any class except false alarm half the time.
	types := []fault.Type{fault.NodeFailure, fault.RouterFailure,
		fault.LinkFailure, fault.InfiniteLoop, fault.FalseAlarm}
	f1 := fault.Random(rng, types[rng.Intn(len(types))], m.Topo, 1)
	at1 := sim.Time(100+rng.Intn(3000)) * sim.Microsecond
	m.InjectAt(f1, at1)

	// Optional second fault striking mid-recovery.
	twoFaults := rng.Intn(3) == 0
	var f2 fault.Fault
	if twoFaults {
		f2 = fault.Random(rng, types[rng.Intn(4)], m.Topo, 1)
		m.InjectAt(f2, at1+sim.Time(500+rng.Intn(4000))*sim.Microsecond)
	}

	if !m.RunUntilRecovered(20 * sim.Second) {
		t.Fatalf("seed %d: recovery incomplete (f1=%v f2=%v two=%v)", seed, f1, f2, twoFaults)
	}
	stop = true
	// Let outstanding workload settle, then verify from a survivor.
	m.E.RunUntil(m.E.Now() + 50*sim.Millisecond)
	survivors := m.Survivors()
	if len(survivors) == 0 {
		t.Fatalf("seed %d: no survivors", seed)
	}
	reader := survivors[0]
	if rep := m.Reports()[reader]; rep != nil && (rep.ShutDown || rep.Isolated) {
		return // reader side shut down (e.g. doomed unit); nothing to verify
	}
	res := m.VerifyMemory(reader, 2)
	if !res.OK() {
		for _, a := range res.WrongData {
			home := m.Space.Home(a)
			t.Logf("WRONG %v home=%d expected=%x mem=%x mayBeLost=%v",
				a, home, m.Oracle.ExpectedToken(a), m.Nodes[home].Mem.Read(a), m.Oracle.MayBeLost(a))
			if e := m.Nodes[home].Dir.Lookup(a); e != nil {
				t.Logf("  dir=%v owner=%d", e.State, e.Owner)
			}
			for _, n := range m.Nodes {
				if l := n.Cache.Lookup(a); l != nil {
					t.Logf("  cached at %d: %+v", n.ID, l)
				}
			}
		}
		t.Fatalf("seed %d: verification failed: %v (f1=%v f2=%v)", seed, res, f1, f2)
	}
}

func TestFuzzContainment(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing skipped in -short mode")
	}
	for seed := int64(100); seed < 140; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) { fuzzScenario(t, seed) })
	}
}
