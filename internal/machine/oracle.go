package machine

import (
	"flashfc/internal/coherence"
	"flashfc/internal/interconnect"
)

// Oracle is the harness's ground truth for memory contents, mirroring the
// tracking the paper's simulator does (§5.2): it knows the last token
// committed to every line and the set of lines that *may* legitimately have
// become incoherent — because a failing node held them exclusive, or
// because a data-carrying message was destroyed by the fabric. Verification
// checks both directions: no surviving line may return wrong data, and no
// line outside this set may be marked incoherent (no over-marking).
type Oracle struct {
	expected  map[coherence.Addr]uint64
	mayBeLost map[coherence.Addr]bool
	nextTok   uint64
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{
		expected:  make(map[coherence.Addr]uint64),
		mayBeLost: make(map[coherence.Addr]bool),
		nextTok:   0x1000,
	}
}

// Clone returns an independent deep copy of the oracle, so a forked
// machine's ground truth diverges from the source's.
func (o *Oracle) Clone() *Oracle {
	c := &Oracle{
		expected:  make(map[coherence.Addr]uint64, len(o.expected)),
		mayBeLost: make(map[coherence.Addr]bool, len(o.mayBeLost)),
		nextTok:   o.nextTok,
	}
	for a, t := range o.expected {
		c.expected[a] = t
	}
	for a := range o.mayBeLost {
		c.mayBeLost[a] = true
	}
	return c
}

// NextToken mints a unique token for a store.
func (o *Oracle) NextToken() uint64 {
	o.nextTok++
	return o.nextTok
}

// Wrote records a committed store (call from the workload's completion
// callback — a store whose grant was lost never committed).
func (o *Oracle) Wrote(a coherence.Addr, token uint64) {
	o.expected[a.Line()] = token
}

// ExpectedToken returns the last committed token of a line.
func (o *Oracle) ExpectedToken(a coherence.Addr) uint64 {
	a = a.Line()
	if t, ok := o.expected[a]; ok {
		return t
	}
	return coherence.InitialToken(a)
}

// LostLine records that a line's only valid copy may have been destroyed.
func (o *Oracle) LostLine(a coherence.Addr) { o.mayBeLost[a.Line()] = true }

// MayBeLost reports whether marking a line incoherent is justified.
func (o *Oracle) MayBeLost(a coherence.Addr) bool { return o.mayBeLost[a.Line()] }

// LostCount returns the size of the may-be-lost set.
func (o *Oracle) LostCount() int { return len(o.mayBeLost) }

// WrittenLines returns the addresses of all committed stores.
func (o *Oracle) WrittenLines() []coherence.Addr {
	out := make([]coherence.Addr, 0, len(o.expected))
	for a := range o.expected {
		out = append(out, a)
	}
	return out
}

// PacketLost is wired to interconnect.Network.OnLost: a destroyed packet
// carrying line data may have carried the line's only valid copy.
func (o *Oracle) PacketLost(p *interconnect.Packet) {
	msg, ok := p.Payload.(*coherence.Message)
	if !ok {
		return
	}
	if msg.Type.CarriesData() {
		o.LostLine(msg.Addr)
	}
}

// Scrubbed records an OS page scrub: the line is reset, and subsequent
// reads legitimately see fresh (initial) content again.
func (o *Oracle) Scrubbed(a coherence.Addr) {
	a = a.Line()
	delete(o.mayBeLost, a)
	delete(o.expected, a)
}
