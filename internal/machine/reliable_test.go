package machine

import (
	"testing"

	"flashfc/internal/coherence"
	"flashfc/internal/fault"
	"flashfc/internal/magic"
	"flashfc/internal/sim"
)

// §6.3: on a machine with HAL-style end-to-end reliable coherence delivery,
// the recovery algorithm eliminates the cache flush; only the directory
// sweep remains, and no in-flight writeback is ever lost.

func reliableConfig(seed int64) Config {
	cfg := smallConfig(seed)
	cfg.ReliableInterconnect = true
	return cfg
}

func TestReliableRecoveryKeepsCachesWarm(t *testing.T) {
	m := New(reliableConfig(61))
	// Node 1 caches a remote line exclusive before the fault.
	addr := coherenceAddr(uint64(m.Space.Base(2)) + 0x400)
	tok := m.Oracle.NextToken()
	m.Nodes[1].Ctrl.Write(addr, tok, func(r result) {
		if r.Err == nil {
			m.Oracle.Wrote(addr, tok)
		}
	})
	m.E.Run()

	m.Inject(fault.Fault{Type: fault.NodeFailure, Node: 5})
	m.Nodes[0].CPU.Submit(readOp(m, uint64(m.Space.Base(5))+0x80))
	if !m.RunUntilRecovered(5 * sim.Second) {
		t.Fatal("recovery incomplete")
	}
	// Node 1 still holds the line exclusive: no flush happened.
	l := m.Nodes[1].Cache.Lookup(addr)
	if l == nil || l.Token != tok {
		t.Fatalf("cache should stay warm across reliable recovery: %+v", l)
	}
	for _, r := range m.Reports() {
		if r.Writebacks != 0 {
			t.Fatalf("node %d flushed %d lines; reliable recovery must not flush", r.Node, r.Writebacks)
		}
	}
	// Data is still coherently readable by a third node.
	var got magic.Result
	m.Nodes[3].Ctrl.Read(addr, func(r result) { got = r })
	m.E.Run()
	if got.Err != nil || got.Token != tok {
		t.Fatalf("post-recovery read: %+v want %x", got, tok)
	}
}

func TestReliableRetransmitsLostWriteback(t *testing.T) {
	m := New(reliableConfig(67))
	// Node 3 (home of nothing relevant) writes a line homed on node 0;
	// the eviction writeback is forced mid-flight across a link that
	// fails, destroying the only copy — on a plain machine this becomes
	// an incoherent line, but the reliable fabric resends it.
	addr := coherenceAddr(uint64(m.Space.Base(0)) + 0x600)
	tok := m.Oracle.NextToken()
	committed := false
	m.Nodes[3].Ctrl.Write(addr, tok, func(r result) {
		if r.Err == nil {
			m.Oracle.Wrote(addr, tok)
			committed = true
		}
	})
	m.E.Run()
	if !committed {
		t.Fatal("setup write failed")
	}
	// Force the dirty line onto the wire: node 2 reads it, which makes
	// the home recall node 3's copy; the link carrying the writeback
	// fails mid-flight, so the PUT — the only valid copy — is destroyed
	// on a plain machine but retained and resent by the reliable fabric.
	p := m.Topo.PortTo(3, 2)
	link := m.Topo.Adjacency(3)[p].Link
	var res magic.Result
	done := false
	m.Nodes[2].Ctrl.Read(addr, func(r result) { res = r; done = true })
	m.E.At(m.E.Now()+400, func() { m.FailLink(link) })
	if !m.RunUntilRecovered(5 * sim.Second) {
		t.Fatal("recovery incomplete")
	}
	// Let the retransmission fire and the aborted read settle.
	m.E.RunUntil(m.E.Now() + 20*sim.Millisecond)
	_ = done
	_ = res
	// The line must NOT be incoherent: either the PUT survived another
	// route or was retransmitted after recovery.
	var got magic.Result
	ok := false
	m.Nodes[1].Ctrl.Read(addr, func(r result) { got = r; ok = true })
	m.E.RunUntil(m.E.Now() + sim.Millisecond)
	if !ok || got.Err != nil {
		t.Fatalf("read after reliable recovery: %+v", got)
	}
	if got.Token != tok {
		t.Fatalf("token = %x, want %x (writeback lost despite reliable fabric)", got.Token, tok)
	}
}

func TestReliableRecoveryMarksOnlyDeadOwnedLines(t *testing.T) {
	m := New(reliableConfig(71))
	// Live owner: line survives. Dead owner: line incoherent.
	liveLine := coherenceAddr(uint64(m.Space.Base(2)) + 0x800)
	deadLine := coherenceAddr(uint64(m.Space.Base(2)) + 0x900)
	for _, w := range []struct {
		node int
		addr addr
		tok  uint64
	}{{1, liveLine, m.Oracle.NextToken()}, {5, deadLine, m.Oracle.NextToken()}} {
		w := w
		m.Nodes[w.node].Ctrl.Write(w.addr, w.tok, func(r result) {
			if r.Err == nil {
				m.Oracle.Wrote(w.addr, w.tok)
			}
		})
	}
	m.E.Run()
	m.Inject(fault.Fault{Type: fault.NodeFailure, Node: 5})
	m.Nodes[0].CPU.Submit(readOp(m, uint64(m.Space.Base(5))+0x80))
	if !m.RunUntilRecovered(5 * sim.Second) {
		t.Fatal("recovery incomplete")
	}
	if !m.Nodes[2].Dir.Incoherent(deadLine) {
		t.Fatal("dead-owned line should be incoherent")
	}
	if m.Nodes[2].Dir.Incoherent(liveLine) {
		t.Fatal("live-owned line must not be incoherent")
	}
	res := m.VerifyMemory(0, 1)
	if !res.OK() {
		t.Fatalf("verify: %v", res)
	}
}

func TestReliableP4FasterThanFlushed(t *testing.T) {
	measure := func(reliable bool) sim.Time {
		cfg := DefaultConfig(8)
		cfg.Seed = 73
		cfg.MemBytes = 1 << 20
		cfg.L2Bytes = 1 << 20
		cfg.ReliableInterconnect = reliable
		m := New(cfg)
		m.Inject(fault.Fault{Type: fault.NodeFailure, Node: 5})
		m.Nodes[1].CPU.Submit(readOp(m, uint64(m.Space.Base(5))+0x80))
		if !m.RunUntilRecovered(10 * sim.Second) {
			t.Fatal("recovery incomplete")
		}
		return m.Aggregate().P4Time()
	}
	flushed := measure(false)
	reliable := measure(true)
	if reliable >= flushed {
		t.Fatalf("flush-free P4 should be faster: flushed=%v reliable=%v", flushed, reliable)
	}
}

type addr = coherence.Addr
