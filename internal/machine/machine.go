// Package machine assembles a complete simulated FLASH system — topology,
// interconnect, per-node memory/cache/directory, MAGIC controllers,
// processors, and recovery agents — and provides the experiment harness:
// fault injection (implementing fault.Target), a ground-truth oracle that
// knows which lines may legitimately have been lost, whole-memory
// verification (the §5.2 validation check), and per-phase recovery-time
// aggregation for the scalability figures.
package machine

import (
	"fmt"

	"flashfc/internal/coherence"
	"flashfc/internal/core"
	"flashfc/internal/fault"
	"flashfc/internal/interconnect"
	"flashfc/internal/magic"
	"flashfc/internal/metrics"
	"flashfc/internal/proc"
	"flashfc/internal/routing"
	"flashfc/internal/sim"
	"flashfc/internal/timing"
	"flashfc/internal/topology"
	"flashfc/internal/trace"
)

// TopoKind selects the interconnect shape.
type TopoKind int

const (
	// TopoMesh is the 2-D mesh the paper's experiments assume.
	TopoMesh TopoKind = iota
	// TopoHypercube approximates FLASH's fat-hypercube for the Fig 5.5
	// dissemination-scaling comparison.
	TopoHypercube
)

// Config describes one simulated machine.
type Config struct {
	Nodes    int
	Topo     TopoKind
	MemBytes uint64 // main memory per node (Table 5.1: 1–16 MB)
	L2Bytes  uint64 // second-level cache (Table 5.1: 1 MB)
	Seed     int64
	// CPUWindow is the number of outstanding misses per processor.
	CPUWindow int
	// VectorTop enables the exception-vector remap below this address.
	VectorTop coherence.Addr
	// ReliableInterconnect builds the §6.3 HAL-style machine: hardware
	// end-to-end reliable coherence delivery and flush-free recovery.
	ReliableInterconnect bool
	// FailureUnits maps node → failure unit (nil: one unit per node).
	FailureUnits []int
	// Trace, when non-nil, collects a machine-wide event timeline:
	// injections, triggers, per-node phase transitions, completions.
	Trace *trace.Tracer
	// Magic carries controller options (firewall, protocol-memory range).
	Magic magic.Config
	// Recovery carries recovery-algorithm options; machine wiring
	// overwrites the callbacks and charge sizes.
	Recovery core.Config
	// Routing names the interconnect-recovery routing strategy
	// (routing.Names: "paper", "incremental", "adaptive"). "" and "paper"
	// build the exact pre-strategy machine — byte-identical goldens. Kept
	// as a name rather than a routing.Strategy so snapshots serialize it
	// and forks can override it (FromSnapshotRouting).
	Routing string

	// Partitions, when > 0, runs the machine's event core as a partitioned
	// simulation: the mesh is decomposed into fixed regions (one engine
	// each, topology.AutoRegions) advanced in conservative lookahead
	// windows, with Partitions worker threads multiplexing the regions.
	// The decomposition is a pure function of the topology — Partitions
	// only sets the thread count — so results are bit-identical at any
	// value. 0 builds the classic single-engine machine, untouched.
	Partitions int
	// RegionLinkExtra is the additional wire latency of inter-region links
	// in partitioned mode: regions model clusters of a clusterized mesh,
	// whose inter-cluster cables are physically longer. It sets the
	// conservative lookahead (interconnect.LookaheadBound). 0 selects
	// DefaultRegionLinkExtra.
	RegionLinkExtra sim.Time
	// ParallelWindows opts into parallel window execution, for drivers
	// whose workload is region-safe (every event handler touches only its
	// own region's state; cross-region interaction is packet-only). Off by
	// default: the machine then runs every window in the deterministic
	// global interleave, which is safe for all workloads — including the
	// fault/recovery paths, which touch machine-wide state. Fault
	// injection forces global mode from the injection time regardless.
	ParallelWindows bool
}

// DefaultRegionLinkExtra is the inter-region wire latency used when
// Config.RegionLinkExtra is 0: 2 µs, long enough that lookahead windows
// amortize the barrier cost, short next to every recovery timescale.
const DefaultRegionLinkExtra = 2 * sim.Microsecond

// DefaultConfig returns a Table 5.1-style machine: mesh topology, 1 MB of
// memory per node, 1 MB L2.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:     nodes,
		Topo:      TopoMesh,
		MemBytes:  1 << 20,
		L2Bytes:   1 << 20,
		Seed:      1,
		CPUWindow: 4,
		Magic:     magic.DefaultConfig(),
		Recovery:  core.DefaultConfig(1<<20, 1<<20),
	}
}

// Node bundles one node's components.
type Node struct {
	ID    int
	Mem   *coherence.Memory
	Dir   *coherence.Directory
	Cache *coherence.Cache
	Ctrl  *magic.Controller
	CPU   *proc.CPU
	Agent *core.Agent
}

// Machine is a complete simulated system.
type Machine struct {
	Cfg  Config
	E    *sim.Engine
	Topo *topology.Topology
	// P is the partition coordinator of a partitioned machine (Config.
	// Partitions > 0); nil on classic machines. When non-nil, E is region
	// 0's engine and all driving must go through Advance/RunUntilRecovered.
	P *sim.Partitioned
	// Regions is the fixed region decomposition of a partitioned machine.
	Regions *topology.Regions
	Net     *interconnect.Network
	Space   coherence.AddrSpace
	Nodes   []*Node
	Oracle  *Oracle
	// Metrics is the machine-wide registry every layer reports into. Each
	// machine owns its own registry — no globals — so parallel campaign
	// runs stay independent and bit-identical.
	Metrics *metrics.Registry

	// truth is the harness's ground-truth hardware state (what was
	// actually injected), independent of what the algorithm discovers.
	truth    *topology.View
	ctrlDead map[int]bool // controllers killed or wedged
	// memSurvives marks nodes whose processor complex died but whose
	// MAGIC and memory/directory bank still serve coherence traffic (the
	// CPU-fail/memory-survives model). Such nodes are dead for recovery
	// participation but stay addressable as homes.
	memSurvives map[int]bool

	reports   map[int]*core.Report
	expecting map[int]bool
	recovered bool
	lastEpoch int
	// OnAllRecovered, if set, replaces the default post-recovery action
	// (resume all surviving CPUs); the Hive layer uses it to run OS
	// recovery first. The callback must call ResumeSurvivors itself.
	OnAllRecovered func(map[int]*core.Report)
}

// MeshShape returns the w×h used for an n-node mesh: the most square
// factorization with w ≥ h.
func MeshShape(n int) (w, h int) {
	w, h = n, 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			w, h = n/d, d
		}
	}
	return w, h
}

// New builds and wires a machine.
func New(cfg Config) *Machine { return build(cfg, nil) }

// build wires a machine either from scratch (snap == nil) or rehydrated
// from a frozen snapshot: the engine resumes at the snapshot's clock and
// RNG position, stats and firewall images are restored, and per-node
// memory/directory images are shared copy-on-write with the snapshot.
func build(cfg Config, snap *Snapshot) *Machine {
	var topo *topology.Topology
	switch cfg.Topo {
	case TopoHypercube:
		dim := 0
		for 1<<dim < cfg.Nodes {
			dim++
		}
		if 1<<dim != cfg.Nodes {
			panic(fmt.Sprintf("machine: hypercube needs power-of-two nodes, got %d", cfg.Nodes))
		}
		topo = topology.NewHypercube(dim)
	default:
		w, h := MeshShape(cfg.Nodes)
		topo = topology.NewMesh(w, h)
	}
	var regions *topology.Regions
	if cfg.Partitions > 0 {
		regions = topology.AutoRegions(topo)
	}
	var e *sim.Engine
	var P *sim.Partitioned
	var reg *metrics.Registry
	oracle := NewOracle()
	if snap != nil {
		reg = snap.Metrics.Clone()
		oracle = snap.Oracle.Clone()
	} else {
		reg = metrics.NewRegistry()
	}
	extra := cfg.RegionLinkExtra
	if extra <= 0 {
		extra = DefaultRegionLinkExtra
	}
	if regions != nil {
		la := interconnect.LookaheadBound(extra)
		if snap != nil && len(snap.Regions) == regions.Count() {
			engines := make([]*sim.Engine, regions.Count())
			for i, es := range snap.Regions {
				engines[i] = sim.NewEngineFromSnapshot(es)
			}
			P = sim.NewPartitionedFromEngines(engines, la, cfg.Partitions)
		} else if snap != nil {
			panic(fmt.Sprintf("machine: snapshot has %d region engines, topology needs %d",
				len(snap.Regions), regions.Count()))
		} else {
			P = sim.NewPartitioned(cfg.Seed, regions.Count(), la, cfg.Partitions)
		}
		if !cfg.ParallelWindows {
			P.SetGlobalFrom(0)
		}
		e = P.Region(0)
		if cfg.Trace != nil {
			// Concurrent region workers make recording order scheduling
			// noise; full-tuple sorting keeps exported traces
			// bit-identical at any worker count.
			cfg.Trace.Deterministic = true
		}
	} else if snap != nil {
		e = sim.NewEngineFromSnapshot(snap.Engine)
	} else {
		e = sim.NewEngine(cfg.Seed)
	}
	var strat routing.Strategy
	if cfg.Routing != "" && cfg.Routing != "paper" {
		var err error
		if strat, err = routing.Get(cfg.Routing); err != nil {
			panic("machine: " + err.Error())
		}
	}
	icfg := interconnect.DefaultConfig()
	icfg.Reliable = cfg.ReliableInterconnect
	icfg.Metrics = reg
	icfg.Trace = cfg.Trace
	if strat != nil {
		icfg.Tables = strat.PristineTables(topo)
	}
	if P != nil {
		of := make([]int, topo.Routers())
		engines := make([]*sim.Engine, regions.Count())
		for i := range of {
			of[i] = regions.Of(i)
		}
		for i := range engines {
			engines[i] = P.Region(i)
		}
		icfg.Partition = &interconnect.Partition{Of: of, Engines: engines, P: P, Extra: extra}
	}
	net := interconnect.New(e, topo, icfg)
	if snap != nil {
		net.Restore(snap.Net)
	}
	space := coherence.AddrSpace{Nodes: cfg.Nodes, MemBytes: cfg.MemBytes, VectorTop: cfg.VectorTop}
	m := &Machine{
		Cfg: cfg, E: e, Topo: topo, P: P, Regions: regions, Net: net, Space: space,
		Oracle:      oracle,
		Metrics:     reg,
		truth:       topology.NewView(topo),
		ctrlDead:    map[int]bool{},
		memSurvives: map[int]bool{},
		reports:     map[int]*core.Report{},
		expecting:   map[int]bool{},
	}
	net.OnLost = m.Oracle.PacketLost
	cfg.Magic.Metrics = reg
	cfg.Magic.Trace = cfg.Trace

	rcfg := cfg.Recovery
	rcfg.Metrics = reg
	rcfg.Trace = cfg.Trace
	rcfg.Routing = strat
	rcfg.ReliableInterconnect = rcfg.ReliableInterconnect || cfg.ReliableInterconnect
	rcfg.FailureUnits = cfg.FailureUnits
	rcfg.MemServes = func(n int) bool { return m.memSurvives[n] }
	rcfg.L2ChargeLines = int(cfg.L2Bytes / 128)
	rcfg.MemChargeLines = int(cfg.MemBytes / 128)
	userOnEnter := rcfg.OnEnter
	userOnComplete := rcfg.OnComplete

	for i := 0; i < cfg.Nodes; i++ {
		// Every component of node i lives on its region's engine, so all
		// node-local events run on the region scheduler; only packets (and
		// global-mode recovery) cross regions.
		en := e
		if P != nil {
			en = P.Region(regions.Of(i))
		}
		n := &Node{ID: i}
		if snap != nil {
			ns := &snap.Nodes[i]
			n.Mem = coherence.ForkMemory(space.Base(i), cfg.MemBytes, ns.Mem)
			n.Dir = coherence.ForkDirectory(cfg.Nodes, ns.Dir)
			n.Cache = ns.Cache.Clone()
		} else {
			n.Mem = coherence.NewMemory(space.Base(i), cfg.MemBytes)
			n.Dir = coherence.NewDirectory(cfg.Nodes)
			n.Cache = coherence.NewCache(cfg.L2Bytes)
		}
		n.Ctrl = magic.New(en, net, i, space, n.Dir, n.Mem, n.Cache, cfg.Magic)
		if snap != nil {
			n.Ctrl.Restore(snap.Nodes[i].Ctrl)
		}
		n.Ctrl.SetDeadDropHandler(func(msg *coherence.Message) {
			if msg.Type.CarriesData() {
				m.Oracle.LostLine(msg.Addr)
			}
		})
		if cfg.FailureUnits != nil {
			n.Ctrl.SetFailureUnits(cfg.FailureUnits)
		}
		n.CPU = proc.New(en, n.Ctrl, cfg.CPUWindow)
		if snap != nil {
			n.CPU.Restore(snap.Nodes[i].CPU)
		}
		// Phase transitions are recorded by the agents themselves (both
		// the flat timeline and the phase spans), so no OnPhase wrapper
		// is needed here.
		nodeCfg := rcfg
		nodeCfg.OnEnter = func(id int) {
			m.Nodes[id].CPU.Pause()
			if userOnEnter != nil {
				userOnEnter(id)
			}
		}
		nodeCfg.OnComplete = func(r *core.Report) {
			m.agentDone(r)
			if userOnComplete != nil {
				userOnComplete(r)
			}
		}
		n.Agent = core.NewAgent(en, net, n.Ctrl, topo, nodeCfg)
		m.Nodes = append(m.Nodes, n)
	}
	return m
}

// --- fault.Target implementation -------------------------------------------

var _ fault.Target = (*Machine)(nil)

// KillNode implements a Table 5.2 node failure: the controller, processor,
// memory and caches become unavailable; the router stays up.
func (m *Machine) KillNode(id int) {
	m.lostCacheContents(id)
	m.Nodes[id].CPU.Pause()
	m.Nodes[id].Ctrl.SetMode(magic.ModeDead)
	m.Nodes[id].Agent.Kill()
	m.ctrlDead[id] = true
	m.planExpectations()
}

// LoopNode implements the infinite-loop fault: the controller stops
// accepting packets and traffic backs up into the fabric.
func (m *Machine) LoopNode(id int) {
	m.lostCacheContents(id)
	m.Nodes[id].CPU.Pause()
	m.Nodes[id].Ctrl.SetMode(magic.ModeLoop)
	m.Nodes[id].Agent.Kill()
	m.ctrlDead[id] = true
	m.planExpectations()
}

// FailRouter implements a router failure. The attached node is cut off and
// will shut itself down when it notices; its cache contents are lost.
func (m *Machine) FailRouter(r int) {
	m.lostCacheContents(r)
	m.Net.FailRouter(r)
	m.truth.FailRouter(r)
	m.planExpectations()
}

// FailLink implements a link failure.
func (m *Machine) FailLink(l int) {
	m.Net.FailLink(l)
	m.truth.FailLink(l)
	m.planExpectations()
}

// FalseAlarm triggers recovery on a healthy node with no actual fault.
func (m *Machine) FalseAlarm(id int) {
	m.Nodes[id].Agent.Trigger(magic.ReasonFalseAlarm)
	m.planExpectations()
}

// DegradeLink implements a transient link fault: the link drops (and
// truncates in-flight) traffic now and heals after window. Ground truth is
// left untouched — the hardware is whole again once the window closes — so
// every node is expected to participate in whatever recovery the dropped
// traffic provokes, and nothing a healed link carried afterwards may be
// charged to the fault.
func (m *Machine) DegradeLink(l int, window sim.Time) {
	m.Metrics.Counter("machine.links_degraded").Inc()
	m.Net.FailLinkTransient(l, window)
	m.planExpectations()
}

// SlowNode implements the fail-slow fault: node id's MAGIC handler engine
// keeps running, but every handler occupancy is multiplied by factor. The
// node never dies — it must remain a full recovery participant — yet its
// service degradation stalls its own outstanding operations long enough to
// trip the memory-op timeout, which is how the fault is detected.
func (m *Machine) SlowNode(id, factor int) {
	m.Metrics.Counter("machine.nodes_slowed").Inc()
	m.Nodes[id].Ctrl.SetSlowFactor(factor)
	m.planExpectations()
	// The slow node's processor is healthy and drops into recovery itself
	// once one of its memory operations times out behind the 10-100x
	// handlers. Modeled as a deterministic trigger one timeout after onset.
	agent := m.Nodes[id].Agent
	m.engineOf(id).After(m.detectionDelay(), func() {
		agent.Trigger(magic.ReasonTimeout)
	})
}

// KillCPU implements the CPU-fail/memory-survives fault: node id's
// processor complex (CPU and caches) dies, but its MAGIC and memory/
// directory bank keep serving coherence traffic. The node is dead for
// recovery purposes — it never pongs, and survivors mark it down — but it
// is not isolated: survivors salvage the clean lines it homes instead of
// losing the whole bank.
func (m *Machine) KillCPU(id int) {
	m.Metrics.Counter("machine.cpu_failures").Inc()
	m.lostCacheContents(id)
	m.Nodes[id].CPU.Pause()
	m.Nodes[id].Cache.Flush() // the cache dies with the processor complex
	m.Nodes[id].Ctrl.CPUDied()
	m.Nodes[id].Agent.Kill()
	m.ctrlDead[id] = true
	m.memSurvives[id] = true
	m.planExpectations()
	// Detection: the victim's MAGIC notices its processor interface died
	// and signals a surviving neighbor, which starts the recovery wave —
	// the victim cannot run recovery code on a dead processor.
	if s := m.Survivors(); len(s) > 0 {
		agent := m.Nodes[s[0]].Agent
		m.engineOf(s[0]).After(m.detectionDelay(), func() {
			agent.Trigger(magic.ReasonCPUDead)
		})
	}
}

// MemSurvives reports whether node id is a CPU-failed node whose memory
// bank is still served.
func (m *Machine) MemSurvives(id int) bool { return m.memSurvives[id] }

// engineOf returns the event engine owning node id's region (the machine's
// single engine on classic builds). Fault injection always forces the
// deterministic global interleave first, so scheduling on a region engine
// is partition-safe.
func (m *Machine) engineOf(id int) *sim.Engine {
	if m.P != nil {
		return m.P.Region(m.Regions.Of(id))
	}
	return m.E
}

// detectionDelay is the modeled latency between a degradation fault and its
// detection trigger: one memory-operation timeout, the containment bound
// the paper's hardware guarantees (Table 4.1).
func (m *Machine) detectionDelay() sim.Time {
	if d := m.Cfg.Magic.MemOpTimeout; d > 0 {
		return d
	}
	return timing.MemOpTimeout
}

// Inject applies f now. On a partitioned machine it also switches all
// further execution to the deterministic global interleave: fault handling
// and recovery touch cross-region state (truth view, oracle, remote agents)
// and must not run concurrently with region workers.
func (m *Machine) Inject(f fault.Fault) {
	if m.P != nil {
		m.P.SetGlobalFrom(m.P.Now())
	}
	m.Cfg.Trace.Record(m.Now(), -1, trace.KindFault, "%v", f)
	m.Metrics.Counter("machine.faults_injected").Inc()
	f.Apply(m)
}

// InjectAll applies a compound fault (e.g. fault.PowerLoss) now.
func (m *Machine) InjectAll(fs []fault.Fault) {
	if m.P != nil {
		m.P.SetGlobalFrom(m.P.Now())
	}
	for _, f := range fs {
		f.Apply(m)
	}
}

// InjectAt schedules f at simulated time t. On a partitioned machine every
// window from the one containing t on runs globally interleaved, so the
// injection event (scheduled on region 0) fires at the correct global time
// and may touch any region's state.
func (m *Machine) InjectAt(f fault.Fault, t sim.Time) {
	if m.P != nil {
		g := t - m.P.Lookahead() + 1
		if g < 0 {
			g = 0
		}
		m.P.SetGlobalFrom(g)
	}
	m.E.At(t, func() { f.Apply(m) })
}

// lostCacheContents records every exclusive line cached on a node that is
// about to become unavailable: those lines may legitimately turn incoherent.
func (m *Machine) lostCacheContents(id int) {
	m.Nodes[id].Cache.ForEach(func(a coherence.Addr, l *coherence.CacheLine) {
		if l.State == coherence.CacheExclusive {
			m.Oracle.LostLine(a)
		}
	})
}

// --- recovery bookkeeping ---------------------------------------------------

// InstalledTables reads back every router's currently installed next-hop
// row — the tables actually routing traffic, post-recovery patches
// included.
func (m *Machine) InstalledTables() topology.Tables {
	tb := make(topology.Tables, m.Topo.Routers())
	for r := range tb {
		tb[r] = m.Net.RouterTable(r)
	}
	return tb
}

// RoutingAcyclic verifies deadlock freedom of the installed tables: their
// channel-dependency graph on the true surviving topology must be acyclic.
// The routing experiments check it after every recovery, per strategy.
func (m *Machine) RoutingAcyclic() bool {
	return m.InstalledTables().DependencyAcyclic(m.truth)
}

// Survivors returns the ids of nodes whose controller is functioning, whose
// router works, and which sit in the largest surviving component (the "main
// machine" after a partition; ties go to the component with the lowest id).
func (m *Machine) Survivors() []int {
	alive := map[int]bool{}
	for i := 0; i < m.Cfg.Nodes; i++ {
		if !m.ctrlDead[i] && m.truth.RouterUp[i] {
			alive[i] = true
		}
	}
	var best []int
	seen := map[int]bool{}
	for i := 0; i < m.Cfg.Nodes; i++ {
		if !alive[i] || seen[i] {
			continue
		}
		b := m.truth.BFS(i)
		var comp []int
		for j := 0; j < m.Cfg.Nodes; j++ {
			if alive[j] && b.Dist[j] >= 0 {
				comp = append(comp, j)
				seen[j] = true
			}
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	return best
}

// planExpectations recomputes which nodes are expected to produce recovery
// reports: the survivors (doomed unit members included — they report with
// ShutDown set). Nodes with working controllers that are cut off from the
// main component (partitions, dead routers) cannot return their exclusive
// lines: the oracle learns those may be lost.
func (m *Machine) planExpectations() {
	m.recovered = false
	m.reports = map[int]*core.Report{}
	m.expecting = map[int]bool{}
	inMain := map[int]bool{}
	for _, s := range m.Survivors() {
		m.expecting[s] = true
		inMain[s] = true
	}
	for i := 0; i < m.Cfg.Nodes; i++ {
		if !m.ctrlDead[i] && !inMain[i] {
			m.lostCacheContents(i)
		}
	}
}

func (m *Machine) agentDone(r *core.Report) {
	if m.recovered && r.Epoch > m.lastEpoch {
		// A fresh recovery round (e.g. triggered by a straggling
		// timeout) after the previous one completed: collect reports
		// anew so its completion is acted on too.
		m.recovered = false
		m.reports = map[int]*core.Report{}
	}
	if r.Epoch > m.lastEpoch {
		m.lastEpoch = r.Epoch
	}
	m.reports[r.Node] = r
	m.Cfg.Trace.Record(m.E.Now(), r.Node, trace.KindComplete,
		"epoch=%d restarts=%d shutdown=%v incoherent=%d", r.Epoch, r.Restarts, r.ShutDown, r.Incoherent)
	if r.Isolated || r.ShutDown {
		// Whatever the node still held when it shut down is gone:
		// cache contents acquired after the injection snapshot and any
		// unreturned orphan grants.
		m.lostCacheContents(r.Node)
		for _, o := range m.Nodes[r.Node].Ctrl.Orphans() {
			m.Oracle.LostLine(o.Addr)
		}
	}
	if m.recovered {
		return
	}
	for n := range m.expecting {
		if m.reports[n] == nil {
			return
		}
	}
	m.recovered = true
	m.Cfg.Trace.EndRoot(m.E.Now())
	m.salvageMemServed()
	m.observeRecovery()
	if m.OnAllRecovered != nil {
		m.OnAllRecovered(m.reports)
		return
	}
	m.ResumeSurvivors()
}

// salvageMemServed runs the post-recovery sweep over every CPU-failed
// node's still-served directory bank: the survivors' view is installed as
// its node map, then a liveness scan marks only the lines entrusted to dead
// caches incoherent — clean and memory-resident lines are salvaged instead
// of the blanket inaccessibility a fully dead home would impose.
func (m *Machine) salvageMemServed() {
	if len(m.memSurvives) == 0 {
		return
	}
	alive := map[int]bool{}
	for _, s := range m.Survivors() {
		alive[s] = true
	}
	for v := 0; v < m.Cfg.Nodes; v++ {
		if !m.memSurvives[v] {
			continue
		}
		ctrl := m.Nodes[v].Ctrl
		for i := 0; i < m.Cfg.Nodes; i++ {
			ctrl.SetNodeUp(i, alive[i])
		}
		marked := ctrl.ScanDirectoryLiveness()
		m.Metrics.Counter("machine.salvage_sweeps").Inc()
		m.Metrics.Counter("machine.salvage_incoherent").Add(uint64(len(marked)))
	}
}

// observeRecovery folds one completed machine-wide recovery into the metrics
// registry: per-phase latency distributions (the Fig 5.5 quantities) and the
// shutdown count.
func (m *Machine) observeRecovery() {
	m.Metrics.Counter("machine.recoveries").Inc()
	for _, r := range m.reports {
		if r.ShutDown || r.Isolated {
			m.Metrics.Counter("machine.nodes_shutdown").Inc()
		}
	}
	pt := m.Aggregate()
	if pt.Participants == 0 {
		return
	}
	m.Metrics.Histogram("machine.phase_p1").Observe(int64(pt.P1))
	m.Metrics.Histogram("machine.phase_p2").Observe(int64(pt.P2Time()))
	m.Metrics.Histogram("machine.phase_p3").Observe(int64(pt.P123 - pt.P12))
	m.Metrics.Histogram("machine.phase_p4").Observe(int64(pt.P4Time()))
	m.Metrics.Histogram("machine.recovery_total").Observe(int64(pt.Total))
}

// MetricsSnapshot scrapes the engine-level counters into the registry and
// returns a point-in-time snapshot of every instrument. The sim package
// cannot import metrics (it sits below everything), so its counters are
// pulled here rather than pushed there. On a partitioned machine the
// engine totals sum all regions, and per-partition instruments
// (sim.partition.NN.*) expose each region's deterministic load accounting.
func (m *Machine) MetricsSnapshot() *metrics.Snapshot {
	if m.P != nil {
		m.Metrics.Counter("sim.events_fired").Set(m.P.EventsFired())
		m.Metrics.Counter("sim.heap_compactions").Set(m.P.Compactions())
		m.Metrics.Gauge("sim.events_pending").Set(int64(m.P.Pending()))
		m.Metrics.Counter("sim.barriers").Set(m.P.Barriers())
		m.Metrics.Counter("sim.cross_region_merged").Set(m.P.Merged())
		for i := 0; i < m.P.Regions(); i++ {
			fired, stalls, merged := m.P.RegionLoad(i)
			m.Metrics.Counter(fmt.Sprintf("sim.partition.%02d.events_fired", i)).Set(fired)
			m.Metrics.Counter(fmt.Sprintf("sim.partition.%02d.lookahead_stalls", i)).Set(stalls)
			m.Metrics.Counter(fmt.Sprintf("sim.partition.%02d.merged_in", i)).Set(merged)
		}
	} else {
		m.Metrics.Counter("sim.events_fired").Set(m.E.EventsFired())
		m.Metrics.Counter("sim.heap_compactions").Set(m.E.Compactions())
		m.Metrics.Gauge("sim.events_pending").Set(int64(m.E.Pending()))
	}
	return m.Metrics.Snapshot()
}

// ResumeSurvivors resumes the CPUs of every node that completed recovery
// without shutting down, in node order (resume order is visible to user
// code, so it must be deterministic).
func (m *Machine) ResumeSurvivors() {
	for n := 0; n < m.Cfg.Nodes; n++ {
		if r := m.reports[n]; r != nil && !r.ShutDown && !r.Isolated {
			m.Nodes[n].CPU.Resume()
		}
	}
}

// Recovered reports whether all expected recovery reports have arrived.
func (m *Machine) Recovered() bool { return m.recovered }

// Reports returns the collected recovery reports by node.
func (m *Machine) Reports() map[int]*core.Report { return m.reports }

// Now returns the machine's simulated time: the partition coordinator's
// clock on a partitioned machine, the engine clock otherwise.
func (m *Machine) Now() sim.Time {
	if m.P != nil {
		return m.P.Now()
	}
	return m.E.Now()
}

// Advance runs the simulation to time t — the one driving entry point that
// works on both sequential and partitioned machines. Experiment drivers
// must use it (or RunUntilRecovered) instead of m.E.RunUntil.
func (m *Machine) Advance(t sim.Time) {
	if m.P != nil {
		m.P.RunUntil(t)
		return
	}
	m.E.RunUntil(t)
}

// RunUntilRecovered advances the simulation until recovery completes or the
// deadline passes; it reports whether recovery completed.
func (m *Machine) RunUntilRecovered(deadline sim.Time) bool {
	for !m.recovered && m.Now() < deadline {
		step := m.Now() + sim.Millisecond
		if step > deadline {
			step = deadline
		}
		m.Advance(step)
	}
	return m.recovered
}

// PhaseTimes aggregates recovery duration per phase across all reports,
// measured from the earliest recovery entry (the fault-detection moment).
type PhaseTimes struct {
	Start                sim.Time
	P1, P12, P123, Total sim.Time // cumulative, as plotted in Fig 5.5
	// WB and Scan split the coherence-recovery phase into its cache
	// flush and directory sweep components (Fig 5.6).
	WB, Scan               sim.Time
	MaxRounds, MaxIncoher  int
	Restarts, Participants int
}

// P2Time returns the dissemination-phase duration (P12 − P1).
func (pt PhaseTimes) P2Time() sim.Time { return pt.P12 - pt.P1 }

// P4Time returns the coherence-recovery duration (Total − P123).
func (pt PhaseTimes) P4Time() sim.Time { return pt.Total - pt.P123 }

// Aggregate computes Fig 5.5-style cumulative phase times from the reports.
func (m *Machine) Aggregate() PhaseTimes {
	var pt PhaseTimes
	first := true
	for _, r := range m.reports {
		if r.Isolated {
			continue
		}
		if first || r.Start < pt.Start {
			pt.Start = r.Start
		}
		first = false
	}
	for _, r := range m.reports {
		if r.Isolated {
			continue
		}
		pt.Participants++
		if d := r.P1End - pt.Start; d > pt.P1 {
			pt.P1 = d
		}
		if d := r.P2End - pt.Start; d > pt.P12 {
			pt.P12 = d
		}
		if d := r.P3End - pt.Start; d > pt.P123 {
			pt.P123 = d
		}
		if d := r.P4End - pt.Start; d > pt.Total {
			pt.Total = d
		}
		if d := r.FlushEnd - r.P3End; d > pt.WB {
			pt.WB = d
		}
		if d := r.P4End - r.FlushEnd; d > pt.Scan {
			pt.Scan = d
		}
		if r.Rounds > pt.MaxRounds {
			pt.MaxRounds = r.Rounds
		}
		if r.Incoherent > pt.MaxIncoher {
			pt.MaxIncoher = r.Incoherent
		}
		pt.Restarts += r.Restarts
	}
	return pt
}
