package machine

import (
	"testing"

	"flashfc/internal/coherence"
	"flashfc/internal/interconnect"
)

func TestOracleTokens(t *testing.T) {
	o := NewOracle()
	a, b := o.NextToken(), o.NextToken()
	if a == b {
		t.Fatal("tokens must be unique")
	}
	addr := coherence.Addr(0x1280)
	if o.ExpectedToken(addr) != coherence.InitialToken(addr.Line()) {
		t.Fatal("unwritten line should expect its initial token")
	}
	o.Wrote(addr, a)
	if o.ExpectedToken(addr) != a || o.ExpectedToken(addr.Line()) != a {
		t.Fatal("written token not expected")
	}
	if len(o.WrittenLines()) != 1 {
		t.Fatal("WrittenLines wrong")
	}
}

func TestOracleMayBeLost(t *testing.T) {
	o := NewOracle()
	if o.MayBeLost(0x80) {
		t.Fatal("fresh oracle should have no lost lines")
	}
	o.LostLine(0x85) // unaligned: records the line
	if !o.MayBeLost(0x80) {
		t.Fatal("LostLine should be line-granular")
	}
	if o.LostCount() != 1 {
		t.Fatal("LostCount wrong")
	}
}

func TestOraclePacketLost(t *testing.T) {
	o := NewOracle()
	// Data-carrying messages mark their line; control messages don't.
	o.PacketLost(&interconnect.Packet{Payload: &coherence.Message{
		Type: coherence.MsgPut, Addr: 0x100,
	}})
	o.PacketLost(&interconnect.Packet{Payload: &coherence.Message{
		Type: coherence.MsgGet, Addr: 0x200,
	}})
	o.PacketLost(&interconnect.Packet{Payload: "not a coherence message"})
	if !o.MayBeLost(0x100) {
		t.Fatal("lost PUT should mark its line")
	}
	if o.MayBeLost(0x200) {
		t.Fatal("lost GET must not mark anything")
	}
}

func TestOracleScrubbed(t *testing.T) {
	o := NewOracle()
	addr := coherence.Addr(0x300)
	tok := o.NextToken()
	o.Wrote(addr, tok)
	o.LostLine(addr)
	o.Scrubbed(addr)
	if o.MayBeLost(addr) {
		t.Fatal("scrubbed line should no longer be lost")
	}
	if o.ExpectedToken(addr) != coherence.InitialToken(addr) {
		t.Fatal("scrubbed line should expect fresh content")
	}
}

func TestVerifyResultOKAndString(t *testing.T) {
	v := &VerifyResult{LinesChecked: 10, CorrectData: 10}
	if !v.OK() || v.String() == "" {
		t.Fatal("clean result should be OK")
	}
	v.WrongData = append(v.WrongData, 0x80)
	if v.OK() {
		t.Fatal("wrong data must fail")
	}
	v2 := &VerifyResult{OverMarked: []coherence.Addr{1}}
	if v2.OK() {
		t.Fatal("over-marking must fail")
	}
	v3 := &VerifyResult{Pending: 1}
	if v3.OK() {
		t.Fatal("pending reads must fail")
	}
}
