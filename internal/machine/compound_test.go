package machine

import (
	"testing"

	"flashfc/internal/coherence"
	"flashfc/internal/fault"
	"flashfc/internal/magic"
	"flashfc/internal/sim"
)

// Compound-fault and split-brain tests (§4.1, §4.2).

func TestPowerLossRegionRecovery(t *testing.T) {
	cfg := DefaultConfig(16) // 4x4 mesh
	cfg.Seed = 41
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	m := New(cfg)
	// Lose power to nodes 5 and 6 (adjacent, interior): controllers,
	// routers and links all die at once.
	write := func(node int, addr uint64) {
		tok := m.Oracle.NextToken()
		a := coherenceAddr(addr)
		m.Nodes[node].Ctrl.Write(a, tok, func(r result) {
			if r.Err == nil {
				m.Oracle.Wrote(a, tok)
			}
		})
	}
	write(5, uint64(m.Space.Base(2))+0x100) // dirty line that dies with node 5
	write(1, uint64(m.Space.Base(6))+0x100) // line homed in the dead region
	m.E.Run()
	m.InjectAll(fault.PowerLoss(m.Topo, []int{5, 6}))
	m.Nodes[1].CPU.Submit(readOp(m, uint64(m.Space.Base(5))+0x80))
	if !m.RunUntilRecovered(5 * sim.Second) {
		t.Fatalf("recovery incomplete: %d/%d", len(m.reports), len(m.expecting))
	}
	if len(m.reports) != 14 {
		t.Fatalf("reports = %d, want 14 survivors", len(m.reports))
	}
	res := m.VerifyMemory(0, 1)
	if !res.OK() {
		t.Fatalf("verify: %v", res)
	}
	if res.InaccessibleOK == 0 || res.Incoherent == 0 {
		t.Fatalf("expected inaccessible and incoherent lines: %v", res)
	}
}

func TestCableCutMinorityShutsDown(t *testing.T) {
	cfg := DefaultConfig(16) // 4x4 mesh: cut between columns 0 and 1
	cfg.Seed = 43
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	cfg.Recovery.QuorumFraction = 0.5
	m := New(cfg)
	cut := fault.CableCut(m.Topo, 0) // isolates column 0: 4 nodes
	if len(cut) != 4 {
		t.Fatalf("cable cut = %d links, want 4", len(cut))
	}
	m.InjectAll(cut)
	// Both sides notice via cross-column traffic.
	m.Nodes[0].CPU.Submit(readOp(m, uint64(m.Space.Base(1))+0x80))
	m.Nodes[1].CPU.Submit(readOp(m, uint64(m.Space.Base(0))+0x80))
	if !m.RunUntilRecovered(10 * sim.Second) {
		t.Fatalf("recovery incomplete: %d/%d", len(m.reports), len(m.expecting))
	}
	// The machine tracks the majority side; let the minority island's
	// own (shutdown) recovery finish too before inspecting it.
	deadline := m.E.Now() + 10*sim.Second
	for len(m.reports) < 16 && m.E.Now() < deadline {
		m.E.RunUntil(m.E.Now() + sim.Millisecond)
	}
	if len(m.reports) != 16 {
		t.Fatalf("reports = %d, want 16", len(m.reports))
	}
	// Column 0 is a 4/16 minority: its nodes must shut down rather than
	// recover a split-brain island (§4.2).
	minority := map[int]bool{0: true, 4: true, 8: true, 12: true}
	for n, r := range m.reports {
		if minority[n] && !r.ShutDown {
			t.Errorf("minority node %d should shut down", n)
		}
		if !minority[n] && r.ShutDown {
			t.Errorf("majority node %d should survive", n)
		}
	}
	// The majority side's view marks the minority down.
	for _, n := range []int{1, 2, 3} {
		if m.Nodes[n].Ctrl.NodeUp(0) {
			t.Errorf("node %d still sees minority node 0 up", n)
		}
	}
}

func TestHardwiredControllerSlowerP4(t *testing.T) {
	measure := func(hardwired bool) sim.Time {
		cfg := DefaultConfig(8)
		cfg.Seed = 47
		cfg.MemBytes = 1 << 20
		cfg.L2Bytes = 1 << 20
		cfg.Recovery.HardwiredController = hardwired
		m := New(cfg)
		m.Inject(fault.Fault{Type: fault.NodeFailure, Node: 5})
		m.Nodes[1].CPU.Submit(readOp(m, uint64(m.Space.Base(5))+0x80))
		if !m.RunUntilRecovered(10 * sim.Second) {
			t.Fatal("recovery incomplete")
		}
		return m.Aggregate().P4Time()
	}
	flexible := measure(false)
	hardwired := measure(true)
	if hardwired <= flexible {
		t.Fatalf("hardwired controller should slow P4: flexible=%v hardwired=%v",
			flexible, hardwired)
	}
	// The §6.2 discussion implies a substantial but not catastrophic
	// penalty: expect roughly 2-6x on the P4 phase.
	r := float64(hardwired) / float64(flexible)
	if r < 1.5 || r > 10 {
		t.Fatalf("hardwired/flexible P4 ratio = %.1f, want ~2-6", r)
	}
}

// Small local aliases keep the test bodies readable.
type result = magic.Result

func coherenceAddr(a uint64) coherence.Addr { return coherence.Addr(a) }
