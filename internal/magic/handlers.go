package magic

import (
	"flashfc/internal/coherence"
)

// Home-side and requester-side protocol handlers. Each runs after its
// dispatch occupancy has been charged (see Controller.process).

func (c *Controller) handle(msg *coherence.Message) {
	// The mode may have changed while this handler sat in the queue.
	switch c.mode {
	case ModeDead, ModeLoop:
		c.Stats.DroppedInMode++
		c.discarded(msg)
		return
	case ModeDrain, ModeFlush:
		switch msg.Type {
		case coherence.MsgPut:
			c.handlePut(msg)
		case coherence.MsgDataExcl:
			// An exclusive grant whose requesting operation was
			// aborted by recovery: the line's only valid copy is in
			// this message. Stash it; the flush returns it home.
			if m, ok := c.mshrs[msg.Seq]; ok && c.mode == ModeFlush {
				_ = m // no outstanding ops survive recovery entry
			}
			c.orphans = append(c.orphans, msg)
		default:
			c.Stats.DroppedInMode++
			c.discarded(msg)
		}
		return
	}
	switch msg.Type {
	case coherence.MsgGet:
		c.handleGet(msg)
	case coherence.MsgGetX:
		c.handleGetX(msg)
	case coherence.MsgPut:
		c.handlePut(msg)
	case coherence.MsgRecall:
		c.handleRecall(msg)
	case coherence.MsgRecallNak:
		c.handleRecallNak(msg)
	case coherence.MsgInval:
		c.handleInval(msg)
	case coherence.MsgInvAck:
		c.handleInvAck(msg)
	case coherence.MsgDataShared, coherence.MsgDataExcl,
		coherence.MsgNak, coherence.MsgBusErr:
		c.handleReply(msg)
	case coherence.MsgUncachedRead, coherence.MsgUncachedWrite:
		c.handleUncached(msg)
	case coherence.MsgUncachedReply, coherence.MsgUncachedErr:
		c.handleUncachedReply(msg)
	}
}

// reply sends a response for the transaction identified by (req, seq).
func (c *Controller) reply(req int, ty coherence.MsgType, addr coherence.Addr, seq uint64, data uint64) {
	if ty == coherence.MsgNak {
		c.Stats.NAKsSent++
		c.mNAKsSent.Inc()
		c.cfg.Trace.Point(c.E.Now(), c.ID, "magic", "nak-sent", 0, int64(addr), int64(req))
	}
	if ty == coherence.MsgBusErr {
		c.Stats.BusErrors++
	}
	c.sendMsg(req, &coherence.Message{Type: ty, Addr: addr, Req: req, Seq: seq, Data: data})
}

// handleGet services a shared-copy request at the home.
func (c *Controller) handleGet(msg *coherence.Message) {
	e := c.Dir.Get(msg.Addr)
	switch e.State {
	case coherence.DirInvalid:
		e.State = coherence.DirShared
		e.Sharers.Add(msg.Req)
		c.reply(msg.Req, coherence.MsgDataShared, msg.Addr, msg.Seq, c.Mem.Read(msg.Addr))
	case coherence.DirShared:
		e.Sharers.Add(msg.Req)
		c.reply(msg.Req, coherence.MsgDataShared, msg.Addr, msg.Seq, c.Mem.Read(msg.Addr))
	case coherence.DirExclusive:
		if e.Owner == msg.Req {
			// A request from the recorded owner means its eviction
			// writeback is in flight and was overtaken on the request
			// lane: lock the line and complete when the PUT arrives.
			e.State = coherence.DirPendingRecall
			e.PendingReq = msg.Req
			e.PendingExcl = false
			e.PendingSeq = msg.Seq
			return
		}
		// Lock the line and recall the owner's copy (§3.2).
		e.State = coherence.DirPendingRecall
		e.PendingReq = msg.Req
		e.PendingExcl = false
		e.PendingSeq = msg.Seq
		c.sendMsg(e.Owner, &coherence.Message{Type: coherence.MsgRecall, Addr: msg.Addr, Req: c.ID})
	case coherence.DirPendingRecall, coherence.DirPendingInval:
		c.reply(msg.Req, coherence.MsgNak, msg.Addr, msg.Seq, 0)
	case coherence.DirIncoherent:
		c.reply(msg.Req, coherence.MsgBusErr, msg.Addr, msg.Seq, 0)
	}
}

// handleGetX services an exclusive-copy request at the home, applying the
// firewall write-access check (§3.3).
func (c *Controller) handleGetX(msg *coherence.Message) {
	if !c.firewallAllows(msg.Addr, msg.Req) {
		c.Stats.FirewallDenied++
		c.mFirewallDenied.Inc()
		c.cfg.Trace.Point(c.E.Now(), c.ID, "magic", "firewall-denied", 0, int64(msg.Addr), int64(msg.Req))
		c.reply(msg.Req, coherence.MsgBusErr, msg.Addr, msg.Seq, 0)
		return
	}
	e := c.Dir.Get(msg.Addr)
	switch e.State {
	case coherence.DirInvalid:
		e.State = coherence.DirExclusive
		e.Owner = msg.Req
		c.reply(msg.Req, coherence.MsgDataExcl, msg.Addr, msg.Seq, c.Mem.Read(msg.Addr))
	case coherence.DirShared:
		acks := 0
		e.Sharers.ForEach(func(id int) {
			if id != msg.Req {
				acks++
			}
		})
		if acks == 0 {
			// Requester is the only sharer (or none): grant directly.
			e.Sharers.Clear()
			e.State = coherence.DirExclusive
			e.Owner = msg.Req
			c.reply(msg.Req, coherence.MsgDataExcl, msg.Addr, msg.Seq, c.Mem.Read(msg.Addr))
			return
		}
		e.State = coherence.DirPendingInval
		e.PendingReq = msg.Req
		e.PendingExcl = true
		e.PendingSeq = msg.Seq
		e.AcksLeft = acks
		e.Sharers.ForEach(func(id int) {
			if id != msg.Req {
				c.sendMsg(id, &coherence.Message{Type: coherence.MsgInval, Addr: msg.Addr, Req: c.ID})
			}
		})
		e.Sharers.Clear()
	case coherence.DirExclusive:
		if e.Owner == msg.Req {
			// Owner re-requesting: its eviction PUT was overtaken by
			// this request; wait for the writeback and grant fresh.
			e.State = coherence.DirPendingRecall
			e.PendingReq = msg.Req
			e.PendingExcl = true
			e.PendingSeq = msg.Seq
			return
		}
		e.State = coherence.DirPendingRecall
		e.PendingReq = msg.Req
		e.PendingExcl = true
		e.PendingSeq = msg.Seq
		c.sendMsg(e.Owner, &coherence.Message{Type: coherence.MsgRecall, Addr: msg.Addr, Req: c.ID})
	case coherence.DirPendingRecall, coherence.DirPendingInval:
		c.reply(msg.Req, coherence.MsgNak, msg.Addr, msg.Seq, 0)
	case coherence.DirIncoherent:
		c.reply(msg.Req, coherence.MsgBusErr, msg.Addr, msg.Seq, 0)
	}
}

// handlePut services a writeback at the home. The writeback carries the
// only valid copy of the line (§3.2).
func (c *Controller) handlePut(msg *coherence.Message) {
	e := c.Dir.Lookup(msg.Addr)
	if e == nil {
		return // stale writeback for a reset line
	}
	if c.mode == ModeFlush || c.mode == ModeDrain {
		// During recovery, writebacks are folded home without
		// generating the replies a pending transaction would normally
		// get (§4.4/§4.5); the aborted requester reissues afterwards
		// and the directory sweep resets whatever remains.
		if (e.State == coherence.DirExclusive && e.Owner == msg.Req) ||
			(e.State == coherence.DirPendingRecall && e.Owner == msg.Req) {
			c.Mem.Write(msg.Addr, msg.Data)
			e.State = coherence.DirInvalid
			c.Dir.Release(msg.Addr)
		}
		return
	}
	switch {
	case e.State == coherence.DirExclusive && e.Owner == msg.Req:
		c.Mem.Write(msg.Addr, msg.Data)
		e.State = coherence.DirInvalid
		c.Dir.Release(msg.Addr)
	case e.State == coherence.DirPendingRecall && e.Owner == msg.Req:
		// The recalled owner's data arrives; complete the waiting
		// transaction.
		c.Mem.Write(msg.Addr, msg.Data)
		c.completeRecall(msg.Addr, e, msg.Data)
	default:
		// Stale PUT (e.g. crossing an invalidation); ignore.
	}
}

// completeRecall finishes a pending-recall transaction with the line data.
func (c *Controller) completeRecall(addr coherence.Addr, e *coherence.DirEntry, data uint64) {
	req, seq := e.PendingReq, e.PendingSeq
	if e.PendingExcl {
		e.State = coherence.DirExclusive
		e.Owner = req
		c.reply(req, coherence.MsgDataExcl, addr, seq, data)
	} else {
		e.State = coherence.DirShared
		e.Sharers.Clear()
		e.Sharers.Add(req)
		e.Owner = 0
		c.reply(req, coherence.MsgDataShared, addr, seq, data)
	}
}

// handleRecall services a home's recall at the owner.
func (c *Controller) handleRecall(msg *coherence.Message) {
	if c.cpuDead {
		// The cache is dead hardware: its copy cannot be produced, and a
		// RecallNak would let the home serve its stale memory copy as
		// valid data. Saying nothing leaves the home transaction pending,
		// so the requester's NAK counter or memory-op timeout triggers
		// recovery instead of consuming corrupt state.
		return
	}
	home := msg.Req // Recall carries the home in Req
	// The recall may have overtaken our own exclusive grant (it travels
	// on the request lane, the grant on the reply lane): merge it into
	// the outstanding miss and answer when the grant arrives. This must
	// be checked before the resident-copy path: an upgrade (GetX from
	// shared) leaves a clean shared copy in the cache, and answering the
	// recall with it would unlock the home's pending transaction with
	// stale data while our store commits into a copy the directory no
	// longer tracks — the committed value then vanishes without any
	// packet ever being lost.
	for _, m := range c.mshrs {
		if !m.uncached && m.excl && m.addr == msg.Addr {
			c.Cache.Invalidate(msg.Addr)
			m.recalled = true
			m.recallHome = home
			return
		}
	}
	if l := c.Cache.Invalidate(msg.Addr); l != nil {
		c.sendMsg(home, &coherence.Message{
			Type: coherence.MsgPut, Addr: msg.Addr, Req: c.ID, Data: l.Token,
		})
		return
	}
	// Not resident: our eviction writeback is already ahead of this
	// reply in the same channel (in-order delivery).
	c.sendMsg(home, &coherence.Message{Type: coherence.MsgRecallNak, Addr: msg.Addr, Req: c.ID})
}

// handleRecallNak resolves a recall whose target no longer held the line.
// In-order delivery guarantees the owner's eviction PUT was processed
// before this message, so a still-pending entry means the memory copy is
// current.
func (c *Controller) handleRecallNak(msg *coherence.Message) {
	e := c.Dir.Lookup(msg.Addr)
	if e == nil || e.State != coherence.DirPendingRecall || e.Owner != msg.Req {
		return
	}
	c.completeRecall(msg.Addr, e, c.Mem.Read(msg.Addr))
}

// handleInval services an invalidation at a sharer. Sharers always ack,
// even if the line was silently evicted. An invalidation that overtook an
// in-flight shared grant marks the outstanding miss so the stale grant is
// consumed without being cached.
func (c *Controller) handleInval(msg *coherence.Message) {
	home := msg.Req
	c.Cache.Invalidate(msg.Addr)
	for _, m := range c.mshrs {
		if !m.uncached && !m.excl && m.addr == msg.Addr {
			m.invalidated = true
		}
	}
	c.sendMsg(home, &coherence.Message{Type: coherence.MsgInvAck, Addr: msg.Addr, Req: c.ID})
}

// handleInvAck counts invalidation acks at the home and grants the pending
// exclusive request when the last one arrives.
func (c *Controller) handleInvAck(msg *coherence.Message) {
	e := c.Dir.Lookup(msg.Addr)
	if e == nil || e.State != coherence.DirPendingInval {
		return
	}
	e.AcksLeft--
	if e.AcksLeft > 0 {
		return
	}
	req, seq := e.PendingReq, e.PendingSeq
	e.State = coherence.DirExclusive
	e.Owner = req
	c.reply(req, coherence.MsgDataExcl, msg.Addr, seq, c.Mem.Read(msg.Addr))
}

// handleReply completes (or retries) the requester's outstanding operation.
func (c *Controller) handleReply(msg *coherence.Message) {
	m, ok := c.mshrs[msg.Seq]
	if !ok || m.addr != msg.Addr {
		// Aborted or stale. With a dead processor complex the grant's
		// data dies here — an in-flight exclusive grant may be the copy
		// the home's directory now accounts to this node — so the oracle
		// learns the line may legitimately be lost.
		if c.cpuDead && msg.Type.CarriesData() {
			c.discarded(msg)
		}
		return
	}
	switch msg.Type {
	case coherence.MsgDataShared:
		if m.invalidated {
			// An invalidation overtook this grant: the load completes
			// (it is ordered before the conflicting write) but the
			// data must not linger in the cache.
			c.completeMSHR(m, Result{Token: msg.Data})
			return
		}
		c.install(msg.Addr, coherence.CacheShared, msg.Data)
		c.completeMSHR(m, Result{Token: msg.Data})
	case coherence.MsgDataExcl:
		tok := msg.Data
		if m.hasStore {
			tok = m.storeTok
		}
		if m.recalled {
			// A recall overtook this grant: honor it immediately by
			// writing the line straight back home instead of caching.
			c.sendMsg(m.recallHome, &coherence.Message{
				Type: coherence.MsgPut, Addr: msg.Addr, Req: c.ID, Data: tok,
			})
			c.completeMSHR(m, Result{Token: tok})
			return
		}
		c.install(msg.Addr, coherence.CacheExclusive, tok)
		c.completeMSHR(m, Result{Token: tok})
	case coherence.MsgNak:
		c.Stats.NAKsReceived++
		c.mNAKsReceived.Inc()
		c.cfg.Trace.Point(c.E.Now(), c.ID, "magic", "nak-received", 0, int64(msg.Addr), int64(m.naks+1))
		m.naks++
		if m.naks >= c.cfg.NAKLimit {
			// NAK counter overflow: likely deadlock after a failure
			// (Table 4.1).
			c.trigger(ReasonNAKOverflow)
			return
		}
		c.Stats.Retries++
		m.retry = c.E.AfterCall(c.cfg.NAKRetryDelay, c.retryFn, nil, nil, m.seq)
	case coherence.MsgBusErr:
		c.completeMSHR(m, Result{Err: ErrBusError})
	}
}

// handleUncached services an uncached operation at its target, enforcing
// the cross-failure-unit access check for I/O device accesses (§3.3).
func (c *Controller) handleUncached(msg *coherence.Message) {
	if msg.IO && c.unit != nil && c.unit[msg.Req] != c.unit[c.ID] {
		c.Stats.UncachedDenied++
		c.cfg.Trace.Point(c.E.Now(), c.ID, "magic", "uncached-denied", 0, int64(msg.Req), 0)
		c.sendMsg(msg.Req, &coherence.Message{Type: coherence.MsgUncachedErr, Req: msg.Req, Seq: msg.Seq})
		return
	}
	var result any
	var err error
	if c.uncachedHandler != nil {
		result, err = c.uncachedHandler(msg.Req, msg.UPayload)
	}
	ty := coherence.MsgUncachedReply
	if err != nil {
		ty = coherence.MsgUncachedErr
	}
	c.sendMsg(msg.Req, &coherence.Message{Type: ty, Req: msg.Req, Seq: msg.Seq, UPayload: result})
}

// handleUncachedReply completes an uncached operation at its issuer.
func (c *Controller) handleUncachedReply(msg *coherence.Message) {
	m, ok := c.mshrs[msg.Seq]
	if !ok || !m.uncached {
		return
	}
	m.timeout.Cancel()
	delete(c.mshrs, m.seq)
	if m.ucb == nil {
		return
	}
	if msg.Type == coherence.MsgUncachedErr {
		m.ucb(nil, ErrBusError)
		return
	}
	m.ucb(msg.UPayload, nil)
}
