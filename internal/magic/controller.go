// Package magic models the MAGIC programmable node controller (§2): a
// serialized handler engine that services coherence requests from the local
// processor and the interconnect, plus the fault-containment features the
// paper adds to it (§3, Table 6.1): the node map, NAK counters, memory
// operation timeouts, the firewall, the protocol-memory range check, the
// exception-vector remap, truncated-message handling, firmware assertions,
// and the recovery-mode hooks used by the distributed recovery algorithm.
package magic

import (
	"errors"
	"fmt"

	"flashfc/internal/coherence"
	"flashfc/internal/interconnect"
	"flashfc/internal/metrics"
	"flashfc/internal/sim"
	"flashfc/internal/timing"
	"flashfc/internal/trace"
)

// Mode is the controller's operating mode.
type Mode int

const (
	// ModeNormal services coherence traffic.
	ModeNormal Mode = iota
	// ModeDrain fields and discards incoming coherence traffic without
	// generating replies or invalidates, recording delivery times for
	// the τ drain agreement (§4.4).
	ModeDrain
	// ModeFlush services only writebacks (and recovery traffic), for the
	// coherence-recovery cache flush (§4.5).
	ModeFlush
	// ModeLoop models a firmware handler stuck in an infinite loop: the
	// controller stops accepting packets and congests the fabric (§3.1).
	ModeLoop
	// ModeDead models a failed node: everything is silently discarded.
	ModeDead
)

func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeDrain:
		return "drain"
	case ModeFlush:
		return "flush"
	case ModeLoop:
		return "loop"
	case ModeDead:
		return "dead"
	default:
		return "?"
	}
}

// TriggerReason identifies which of the Table 4.1 mechanisms initiated
// recovery.
type TriggerReason int

const (
	ReasonTimeout TriggerReason = iota
	ReasonNAKOverflow
	ReasonAssertion
	ReasonTruncated
	ReasonPing       // dropped into recovery by a neighbor's ping wave
	ReasonFalseAlarm // operator- or overload-triggered, no actual fault
	ReasonCPUDead    // a MAGIC signaled that its local processor died
)

func (r TriggerReason) String() string {
	switch r {
	case ReasonTimeout:
		return "memory operation timeout"
	case ReasonNAKOverflow:
		return "NAK counter overflow"
	case ReasonAssertion:
		return "firmware assertion failure"
	case ReasonTruncated:
		return "truncated packet received"
	case ReasonPing:
		return "recovery ping"
	case ReasonFalseAlarm:
		return "false alarm"
	case ReasonCPUDead:
		return "processor death signal"
	default:
		return "?"
	}
}

// Errors surfaced to the processor.
var (
	// ErrBusError terminates an access to an inaccessible, incoherent,
	// firewalled or range-protected line.
	ErrBusError = errors.New("magic: bus error")
	// ErrAborted completes an access cut short by recovery entry; the
	// issuing code reissues it after recovery.
	ErrAborted = errors.New("magic: aborted by recovery")
)

// Result completes a processor memory operation.
type Result struct {
	Token uint64
	Err   error
}

// Config tunes one controller.
type Config struct {
	// FirewallEnabled turns on the per-page write access control (§3.3).
	FirewallEnabled bool
	// ProtocolMemBytes reserves the low region of the node's own memory
	// for MAGIC code/data; processor writes to it are bus-errored by the
	// range check (§3.3). Zero disables the check.
	ProtocolMemBytes uint64
	// InputQueue is the controller input buffer in packets; when full,
	// deliveries are refused and back up into the fabric.
	InputQueue int
	// NAKLimit is the NAK-counter overflow threshold (Table 4.1).
	NAKLimit int
	// MemOpTimeout bounds outstanding memory operations (Table 4.1).
	MemOpTimeout sim.Time
	// NAKRetryDelay is the backoff before retrying a NAKed request.
	NAKRetryDelay sim.Time
	// CacheHitTime is the latency of a local L2 hit.
	CacheHitTime sim.Time
	// Metrics, when non-nil, receives machine-wide controller counters
	// (firewall/range denials, NAK traffic, timeouts). All controllers of
	// one machine share the registry; instrument names are global, not
	// per-node.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives point events for containment actions
	// (firewall/range/uncached denials, NAK traffic, memory-op timeouts)
	// and recovery triggers. Nil disables tracing at zero cost.
	Trace *trace.Tracer
}

// DefaultConfig returns the paper-calibrated controller parameters.
func DefaultConfig() Config {
	return Config{
		InputQueue:    16,
		NAKLimit:      timing.NAKLimit,
		MemOpTimeout:  timing.MemOpTimeout,
		NAKRetryDelay: timing.NAKRetryDelay,
		CacheHitTime:  50,
	}
}

// Stats counts controller-level events.
type Stats struct {
	HandlersRun    uint64
	NAKsSent       uint64
	NAKsReceived   uint64
	BusErrors      uint64
	Timeouts       uint64
	Retries        uint64
	FirewallDenied uint64
	RangeDenied    uint64
	UncachedDenied uint64
	TruncatedSeen  uint64
	DroppedInMode  uint64 // packets consumed and dropped in drain/flush/dead
}

// mshr tracks one outstanding processor-initiated operation.
type mshr struct {
	seq      uint64
	addr     coherence.Addr
	excl     bool
	hasStore bool
	storeTok uint64
	uncached bool
	udst     int
	uwrite   bool
	upayload any
	cb       func(Result)
	ucb      func(any, error)
	naks     int
	timeout  sim.Timer
	retry    sim.Timer
	// recalled is set when a recall for this line arrives before the
	// exclusive grant does (the recall overtook the grant on another
	// virtual lane); the grant is then written straight back home.
	recalled   bool
	recallHome int
	// invalidated is set when an invalidation overtakes a shared grant;
	// the granted data completes the load but is not cached.
	invalidated bool
	// waiters holds same-line operations merged into this miss (one MSHR
	// per line); they replay through the cache when the miss completes.
	waiters []waiterOp
}

// waiterOp is an operation merged into an outstanding same-line miss.
type waiterOp struct {
	excl     bool
	hasStore bool
	storeTok uint64
	cb       func(Result)
}

// Controller is one node's MAGIC chip.
type Controller struct {
	ID    int
	E     *sim.Engine
	Net   *interconnect.Network
	Space coherence.AddrSpace
	Dir   *coherence.Directory
	Mem   *coherence.Memory
	Cache *coherence.Cache
	cfg   Config

	mode   Mode
	nodeUp []bool
	// memSrv marks nodes that are down in the node map but whose memory/
	// directory bank is still served by a surviving controller (the
	// CPU-fail/memory-survives model): coherence traffic to them flows,
	// even though the node never answers recovery pings.
	memSrv []bool
	// slowFactor multiplies every handler's occupancy; 1 is a healthy
	// engine. The fail-slow fault model raises it to 10-100x without
	// killing the node. Recovery-lane traffic is unaffected (it bypasses
	// the handler engine entirely).
	slowFactor int
	// cpuDead marks the local processor complex (CPU + caches) as failed
	// while the controller and memory bank live on: protocol traffic that
	// needs the dead cache is refused so stale data cannot escape.
	cpuDead bool
	// unit is the failure-unit id of every node; uncached operations from
	// outside the local unit are bus-errored (§3.3). nil disables checks.
	unit []int
	// firewall maps a page base to its write-access list; absent pages
	// are writable by everyone.
	firewall map[coherence.Addr]coherence.NodeSet

	input []*interconnect.Packet
	busy  bool
	// orphans holds exclusive data grants that arrived during drain mode
	// after their requesting operation was aborted (§4.2/§4.4): the data
	// is not lost — it is returned home during the P4 flush.
	orphans []*coherence.Message

	mshrs map[uint64]*mshr
	seq   uint64

	lastNormalDelivery sim.Time

	onTrigger       func(TriggerReason)
	onRecoveryPkt   func(*interconnect.Packet)
	onDeadDrop      func(*coherence.Message)
	uncachedHandler func(src int, payload any) (any, error)

	Stats Stats

	// Pre-resolved machine-wide metric instruments (nil-safe).
	mFirewallDenied *metrics.Counter
	mRangeDenied    *metrics.Counter
	mNAKsSent       *metrics.Counter
	mNAKsReceived   *metrics.Counter
	mTimeouts       *metrics.Counter
	mSlowHandlers   *metrics.Counter

	// Pre-bound event callbacks (bound once in New): handler dispatch,
	// request completion, timeouts and NAK retries schedule without
	// allocating a closure per event.
	dispatchFn sim.Callback
	completeFn sim.Callback
	timeoutFn  sim.Callback
	retryFn    sim.Callback
}

// New wires a controller to its node's state and registers it as the
// network endpoint for node id.
func New(e *sim.Engine, net *interconnect.Network, id int, space coherence.AddrSpace,
	dir *coherence.Directory, mem *coherence.Memory, cache *coherence.Cache, cfg Config) *Controller {
	c := &Controller{
		ID: id, E: e, Net: net, Space: space,
		Dir: dir, Mem: mem, Cache: cache, cfg: cfg,
		nodeUp:     make([]bool, space.Nodes),
		memSrv:     make([]bool, space.Nodes),
		slowFactor: 1,
		firewall:   make(map[coherence.Addr]coherence.NodeSet),
		mshrs:      make(map[uint64]*mshr),
	}
	c.dispatchFn = c.dispatchEv
	c.completeFn = c.completeEv
	c.timeoutFn = c.timeoutEv
	c.retryFn = c.retryEv
	for i := range c.nodeUp {
		c.nodeUp[i] = true
	}
	c.mFirewallDenied = cfg.Metrics.Counter("magic.firewall_denied")
	c.mRangeDenied = cfg.Metrics.Counter("magic.range_denied")
	c.mNAKsSent = cfg.Metrics.Counter("magic.naks_sent")
	c.mNAKsReceived = cfg.Metrics.Counter("magic.naks_received")
	c.mTimeouts = cfg.Metrics.Counter("magic.mem_op_timeouts")
	c.mSlowHandlers = cfg.Metrics.Counter("magic.slow_handlers")
	net.SetEndpoint(id, c)
	return c
}

// Mode returns the controller's current mode.
func (c *Controller) Mode() Mode { return c.mode }

// SetMode switches the operating mode. Entering an accepting mode retries
// blocked deliveries.
func (c *Controller) SetMode(m Mode) {
	c.mode = m
	if m != ModeLoop {
		c.Net.NodeReady(c.ID)
	}
}

// SetTriggerHandler registers the recovery-initiation callback invoked on
// the Table 4.1 trigger conditions.
func (c *Controller) SetTriggerHandler(fn func(TriggerReason)) { c.onTrigger = fn }

// SetRecoveryHandler registers the receiver for recovery-lane packets.
func (c *Controller) SetRecoveryHandler(fn func(*interconnect.Packet)) { c.onRecoveryPkt = fn }

// SetDeadDropHandler registers an observer for coherence messages the
// controller consumes without acting on (dead mode, drain mode, recovery
// entry): a discarded data-carrying message may have held a line's only
// valid copy. The verification oracle subscribes here.
func (c *Controller) SetDeadDropHandler(fn func(*coherence.Message)) { c.onDeadDrop = fn }

// discarded reports a consumed-but-unprocessed message to the oracle hook.
func (c *Controller) discarded(msg *coherence.Message) {
	if c.onDeadDrop != nil {
		c.onDeadDrop(msg)
	}
}

// SetUncachedHandler registers the service invoked for uncached operations
// arriving from other nodes (the Hive RPC doorbell).
func (c *Controller) SetUncachedHandler(fn func(src int, payload any) (any, error)) {
	c.uncachedHandler = fn
}

// SetFailureUnits installs the node→failure-unit map used for the
// cross-unit uncached-access check.
func (c *Controller) SetFailureUnits(unit []int) { c.unit = unit }

// SetNodeUp updates the node map (§3.1). Recovery calls this on every
// functioning node after dissemination.
func (c *Controller) SetNodeUp(id int, up bool) { c.nodeUp[id] = up }

// NodeUp reads the node map.
func (c *Controller) NodeUp(id int) bool { return c.nodeUp[id] }

// SetMemReachable marks a down node's memory/directory bank as still
// served (the CPU-fail/memory-survives model). Recovery installs it next
// to the node map after dissemination; clearing the node map entry back to
// up clears the distinction naturally, since reachable() ORs the two.
func (c *Controller) SetMemReachable(id int, ok bool) { c.memSrv[id] = ok }

// MemReachable reports whether node id's memory bank is served despite the
// node being down in the node map.
func (c *Controller) MemReachable(id int) bool { return c.memSrv[id] }

// reachable reports whether coherence traffic to node id has somewhere to
// go: the node is up, or its memory bank survived its processor.
func (c *Controller) reachable(id int) bool { return c.nodeUp[id] || c.memSrv[id] }

// SetSlowFactor degrades (or restores) the handler engine: every handler's
// occupancy is multiplied by factor. Values below 1 are clamped to 1.
func (c *Controller) SetSlowFactor(factor int) {
	if factor < 1 {
		factor = 1
	}
	c.slowFactor = factor
}

// SlowFactor returns the current handler occupancy multiplier.
func (c *Controller) SlowFactor() int { return c.slowFactor }

// CPUDied models the CPU-fail/memory-survives fault: the node's processor
// complex (CPU and caches) fails while the controller and its memory/
// directory bank keep serving coherence traffic. Outstanding processor-side
// operations are dropped without completion — their callbacks have nowhere
// to go — and from here on the protocol handlers refuse any transaction
// that would need the dead cache (see handleRecall/handleReply), leaving
// such transactions pending for the requester's containment machinery.
func (c *Controller) CPUDied() {
	c.cpuDead = true
	for _, m := range c.mshrs {
		m.timeout.Cancel()
		m.retry.Cancel()
	}
	c.mshrs = make(map[uint64]*mshr)
}

// CPUDead reports whether the local processor complex has failed while the
// controller lives on.
func (c *Controller) CPUDead() bool { return c.cpuDead }

// SetFirewall installs the write-access list for a page (nil opens it).
func (c *Controller) SetFirewall(page coherence.Addr, writers coherence.NodeSet) {
	if writers == nil {
		delete(c.firewall, page.Page())
		return
	}
	c.firewall[page.Page()] = writers
}

// firewallAllows reports whether node req may fetch lines of addr exclusive.
func (c *Controller) firewallAllows(addr coherence.Addr, req int) bool {
	if !c.cfg.FirewallEnabled {
		return true
	}
	w, ok := c.firewall[addr.Page()]
	if !ok {
		return true
	}
	return w.Has(req)
}

// rangeDenied reports whether the processor-initiated write to addr hits the
// protocol-memory range check of the home node.
func (c *Controller) rangeDenied(addr coherence.Addr) bool {
	if c.cfg.ProtocolMemBytes == 0 {
		return false
	}
	home := c.Space.Home(addr)
	base := c.Space.Base(home)
	return uint64(addr-base) < c.cfg.ProtocolMemBytes
}

// LastNormalDelivery returns the time the controller last consumed a
// normal-lane packet; the drain agreement's τ votes are based on it.
func (c *Controller) LastNormalDelivery() sim.Time { return c.lastNormalDelivery }

// FailAssertion models a firmware assertion tripping (Table 4.1).
func (c *Controller) FailAssertion() { c.trigger(ReasonAssertion) }

func (c *Controller) trigger(r TriggerReason) {
	c.cfg.Trace.Point(c.E.Now(), c.ID, "magic", "trigger", 0, int64(r), 0)
	if c.onTrigger != nil {
		c.onTrigger(r)
	}
}

// Accept implements interconnect.Endpoint.
func (c *Controller) Accept(p *interconnect.Packet) bool {
	switch c.mode {
	case ModeDead:
		// Silently discarded (§4.1). A discarded data-carrying message
		// may have held a line's only valid copy; the harness oracle
		// observes it through the dead-drop hook.
		if msg, ok := p.Payload.(*coherence.Message); ok {
			c.discarded(msg)
		}
		return true
	case ModeLoop:
		return false // controller stopped accepting; fabric backs up
	}
	if p.Lane.IsRecovery() {
		if c.onRecoveryPkt != nil {
			c.onRecoveryPkt(p)
		}
		return true
	}
	// Normal-lane traffic.
	c.lastNormalDelivery = c.E.Now()
	if p.Truncated {
		// §3.1: MAGIC completed the message with parity-error bits set;
		// the next dispatch is the error handler, which triggers
		// recovery. The data is unusable and dropped.
		c.Stats.TruncatedSeen++
		c.cfg.Trace.Point(c.E.Now(), c.ID, "magic", "truncated-seen", p.Flow(), int64(p.Src), int64(p.Lane))
		c.trigger(ReasonTruncated)
		return true
	}
	msg, isCoh := p.Payload.(*coherence.Message)
	if !isCoh {
		// Normal-lane recovery control traffic (the P4 flush barrier
		// travels behind the writebacks on the same channels to
		// exploit in-order delivery, §4.5).
		if c.onRecoveryPkt != nil {
			c.onRecoveryPkt(p)
		}
		return true
	}
	switch c.mode {
	case ModeDrain:
		// §4.4: controllers keep fielding messages while the fabric
		// drains, but incoming *requests* no longer generate replies.
		// Writebacks are folded home and orphaned exclusive grants are
		// stashed for return during the flush; everything else is
		// consumed without effect.
		switch msg.Type {
		case coherence.MsgPut, coherence.MsgDataExcl:
			// handled below (queued normally)
		default:
			c.Stats.DroppedInMode++
			c.discarded(msg)
			return true
		}
	case ModeFlush:
		if msg.Type != coherence.MsgPut && msg.Type != coherence.MsgDataExcl {
			c.Stats.DroppedInMode++
			c.discarded(msg)
			return true
		}
	}
	if len(c.input) >= c.cfg.InputQueue {
		return false
	}
	c.input = append(c.input, p)
	c.process()
	return true
}

// process runs the dispatch loop: one handler at a time, each charged its
// occupancy before its effects apply.
func (c *Controller) process() {
	if c.busy || len(c.input) == 0 {
		return
	}
	p := c.input[0]
	c.input = c.input[1:]
	c.Net.NodeReady(c.ID) // freed an input slot
	msg, ok := p.Payload.(*coherence.Message)
	if !ok {
		c.process()
		return
	}
	c.busy = true
	c.E.AfterCall(c.occupancy(msg), c.dispatchFn, msg, nil, 0)
}

// dispatchEv fires when a handler's occupancy elapses: apply the handler's
// effects and continue the dispatch loop.
func (c *Controller) dispatchEv(a1, _ any, _ uint64) {
	c.busy = false
	c.Stats.HandlersRun++
	c.handle(a1.(*coherence.Message))
	c.process()
}

// completeEv invokes a completion callback (a1) with a token result (u),
// or with an error result when a2 is non-nil.
func (c *Controller) completeEv(a1, a2 any, u uint64) {
	cb := a1.(func(Result))
	if a2 != nil {
		cb(Result{Err: a2.(error)})
		return
	}
	cb(Result{Token: u})
}

// timeoutEv fires a memory-op timeout for MSHR sequence u; completed
// operations delete their MSHR, which makes a raced timeout a no-op.
func (c *Controller) timeoutEv(_, _ any, u uint64) {
	m, live := c.mshrs[u]
	if !live {
		return
	}
	c.Stats.Timeouts++
	c.mTimeouts.Inc()
	c.cfg.Trace.Point(c.E.Now(), c.ID, "magic", "memop-timeout", 0, int64(m.addr), 0)
	c.trigger(ReasonTimeout)
}

// retryEv reissues a NAKed request for MSHR sequence u if it is still
// outstanding.
func (c *Controller) retryEv(_, _ any, u uint64) {
	if m, live := c.mshrs[u]; live {
		c.sendRequest(m)
	}
}

// occupancy returns the handler execution time for msg (§3.1: common
// handlers take ~120 ns; the firewall check adds cycles to intercell write
// misses; invalidation fan-out costs per destination).
func (c *Controller) occupancy(msg *coherence.Message) sim.Time {
	occ := timing.HandlerCommon
	switch msg.Type {
	case coherence.MsgGetX:
		if c.cfg.FirewallEnabled && c.unit != nil &&
			c.unit[msg.Req] != c.unit[c.ID] {
			occ += timing.HandlerFirewallCheck
		}
		if e := c.Dir.Lookup(msg.Addr); e != nil && e.State == coherence.DirShared {
			occ += sim.Time(e.Sharers.Count()) * timing.HandlerPerInvalidation
		}
	case coherence.MsgUncachedRead, coherence.MsgUncachedWrite:
		occ += timing.HandlerRecoveryOp
	}
	if c.slowFactor > 1 {
		occ *= sim.Time(c.slowFactor)
		c.mSlowHandlers.Inc()
	}
	return occ
}

func (c *Controller) String() string {
	return fmt.Sprintf("magic(node=%d mode=%v)", c.ID, c.mode)
}
