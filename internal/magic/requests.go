package magic

import (
	"sort"

	"flashfc/internal/coherence"
	"flashfc/internal/interconnect"
)

// Processor-side request path: cache hits, misses through the directory
// protocol, NAK retry with counter overflow, memory-operation timeouts, and
// uncached cross-node operations.

// Read performs a processor load of addr, completing through cb.
func (c *Controller) Read(addr coherence.Addr, cb func(Result)) {
	c.access(addr, false, false, 0, cb)
}

// ReadExclusive fetches addr exclusive without modifying it (e.g. a
// speculatively executed or soon-to-be-written line).
func (c *Controller) ReadExclusive(addr coherence.Addr, cb func(Result)) {
	c.access(addr, true, false, 0, cb)
}

// Write performs a processor store of token to addr, fetching the line
// exclusive first if needed.
func (c *Controller) Write(addr coherence.Addr, token uint64, cb func(Result)) {
	c.access(addr, true, true, token, cb)
}

func (c *Controller) access(addr coherence.Addr, excl, hasStore bool, storeTok uint64, cb func(Result)) {
	addr = c.Space.Remap(c.ID, addr).Line()
	// Range check: the protocol-memory region is writable only by the
	// local protocol processor (§3.3).
	if excl && c.rangeDenied(addr) {
		c.Stats.RangeDenied++
		c.mRangeDenied.Inc()
		c.cfg.Trace.Point(c.E.Now(), c.ID, "magic", "range-denied", 0, int64(addr), 0)
		c.completeErr(cb, ErrBusError)
		return
	}
	// L2 hit path.
	if l := c.Cache.Lookup(addr); l != nil {
		if !excl {
			c.E.AfterCall(c.cfg.CacheHitTime, c.completeFn, cb, nil, l.Token)
			return
		}
		if l.State == coherence.CacheExclusive {
			if hasStore {
				l.Token = storeTok
			}
			c.E.AfterCall(c.cfg.CacheHitTime, c.completeFn, cb, nil, l.Token)
			return
		}
		// Shared→exclusive upgrade falls through to a GETX.
	}
	// Merge into an outstanding miss on the same line (one MSHR per
	// line): a second concurrent grant would clobber the first one's
	// freshly written data with the stale memory copy.
	for _, m := range c.mshrs {
		if !m.uncached && m.addr == addr {
			m.waiters = append(m.waiters, waiterOp{
				excl: excl, hasStore: hasStore, storeTok: storeTok, cb: cb,
			})
			return
		}
	}
	// Miss path: consult the node map before sending (§3.1). A down home
	// whose memory bank is still served (CPU-fail/memory-survives) stays
	// addressable.
	home := c.Space.Home(addr)
	if !c.reachable(home) {
		c.Stats.BusErrors++
		c.completeErr(cb, ErrBusError)
		return
	}
	m := &mshr{
		seq: c.nextSeq(), addr: addr, excl: excl,
		hasStore: hasStore, storeTok: storeTok, cb: cb,
	}
	c.mshrs[m.seq] = m
	c.sendRequest(m)
}

func (c *Controller) nextSeq() uint64 {
	c.seq++
	return c.seq
}

func (c *Controller) completeErr(cb func(Result), err error) {
	c.E.AfterCall(c.cfg.CacheHitTime, c.completeFn, cb, err, 0)
}

// sendRequest (re)issues the coherence request for m and arms its timeout.
func (c *Controller) sendRequest(m *mshr) {
	ty := coherence.MsgGet
	if m.excl {
		ty = coherence.MsgGetX
	}
	home := c.Space.Home(m.addr)
	c.sendMsg(home, &coherence.Message{Type: ty, Addr: m.addr, Req: c.ID, Seq: m.seq})
	c.armTimeout(m)
}

func (c *Controller) armTimeout(m *mshr) {
	m.timeout.Cancel()
	m.timeout = c.E.AfterCall(c.cfg.MemOpTimeout, c.timeoutFn, nil, nil, m.seq)
}

// sendMsg routes a protocol message to dst, applying the node map. It
// reports whether the message was actually sent. A data-carrying message
// suppressed by the node map is reported through the discard hook: its
// content goes nowhere.
func (c *Controller) sendMsg(dst int, msg *coherence.Message) bool {
	if !c.reachable(dst) {
		c.discarded(msg)
		return false
	}
	lane := interconnect.LaneReply
	if msg.Type.IsRequest() {
		lane = interconnect.LaneRequest
	}
	c.Net.Send(&interconnect.Packet{
		Src: c.ID, Dst: dst, Lane: lane,
		Bytes: msg.Bytes(), Payload: msg,
	})
	return true
}

// completeMSHR finalizes an outstanding operation and replays any same-line
// operations merged into it (most become cache hits).
func (c *Controller) completeMSHR(m *mshr, res Result) {
	m.timeout.Cancel()
	m.retry.Cancel()
	delete(c.mshrs, m.seq)
	if m.cb != nil {
		m.cb(res)
	}
	for _, w := range m.waiters {
		c.access(m.addr, w.excl, w.hasStore, w.storeTok, w.cb)
	}
}

// install places granted data in the cache, writing back any exclusive
// victim the installation displaces.
func (c *Controller) install(addr coherence.Addr, st coherence.CacheState, token uint64) {
	victim, ev := c.Cache.Install(addr, st, token)
	if ev != nil && ev.State == coherence.CacheExclusive {
		home := c.Space.Home(victim)
		c.sendMsg(home, &coherence.Message{
			Type: coherence.MsgPut, Addr: victim, Req: c.ID, Data: ev.Token,
		})
	}
}

// SendUncached issues an uncached read or write to node dst. Uncached
// operations have exactly-once semantics: they are never retried; a timeout
// triggers recovery instead (§3.3). io marks an access to an I/O device
// register, which the target bus-errors when the sender is outside its
// failure unit.
func (c *Controller) SendUncached(dst int, write, io bool, payload any, cb func(any, error)) {
	m := &mshr{seq: c.nextSeq(), uncached: true, udst: dst, uwrite: write, upayload: payload, ucb: cb}
	c.mshrs[m.seq] = m
	ty := coherence.MsgUncachedRead
	if write {
		ty = coherence.MsgUncachedWrite
	}
	if !c.sendMsg(dst, &coherence.Message{Type: ty, Req: c.ID, Seq: m.seq, UPayload: payload, IO: io}) {
		delete(c.mshrs, m.seq)
		c.E.After(c.cfg.CacheHitTime, func() { cb(nil, ErrBusError) })
		return
	}
	c.armTimeout(m)
}

// EnterRecovery aborts all outstanding operations (pending cacheable
// requests are NAKed back to the processor and reissued after recovery,
// §4.2), empties the input queue, and switches to drain mode.
//
// Node-local transactions are rolled back cleanly: a grant that never left
// this controller (home == requester) is undone in the directory, since
// nothing was actually entrusted to the interconnect. Cross-node grants in
// flight are genuinely at risk and are left to the P4 directory sweep.
func (c *Controller) EnterRecovery() {
	// Abort in issue order: the completion callbacks re-enter user code,
	// and whole-machine determinism requires a deterministic order here.
	seqs := make([]uint64, 0, len(c.mshrs))
	for s := range c.mshrs {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		m := c.mshrs[s]
		if !m.uncached && c.Space.Home(m.addr) == c.ID {
			if e := c.Dir.Lookup(m.addr); e != nil &&
				e.State == coherence.DirExclusive && e.Owner == c.ID &&
				c.Cache.Lookup(m.addr) == nil {
				e.State = coherence.DirInvalid
				c.Dir.Release(m.addr)
			}
		}
	}
	for _, s := range seqs {
		m := c.mshrs[s]
		m.timeout.Cancel()
		m.retry.Cancel()
		if m.cb != nil {
			c.E.AfterCall(0, c.completeFn, m.cb, ErrAborted, 0)
		}
		for _, w := range m.waiters {
			if w.cb != nil {
				c.E.AfterCall(0, c.completeFn, w.cb, ErrAborted, 0)
			}
		}
		if m.ucb != nil {
			ucb := m.ucb
			c.E.After(0, func() { ucb(nil, ErrAborted) })
		}
	}
	c.mshrs = make(map[uint64]*mshr)
	// Queued writebacks and exclusive grants are still fielded in drain
	// mode (they carry data); everything else queued is consumed.
	kept := c.input[:0]
	for _, p := range c.input {
		msg, ok := p.Payload.(*coherence.Message)
		if ok && (msg.Type == coherence.MsgPut || msg.Type == coherence.MsgDataExcl) {
			kept = append(kept, p)
			continue
		}
		if ok {
			c.discarded(msg)
		}
	}
	c.input = kept
	c.SetMode(ModeDrain)
	c.process()
}

// Outstanding reports the number of in-flight processor operations.
func (c *Controller) Outstanding() int { return len(c.mshrs) }

// Orphans exposes the drain-mode grant stash; a node that shuts down
// before flushing abandons these (the harness oracle counts them lost).
func (c *Controller) Orphans() []*coherence.Message { return c.orphans }

// FlushCache implements the P4 cache flush (§4.5): every exclusive line is
// written back to its home (skipping homes the node map reports dead: those
// lines are inaccessible anyway) and the cache is left empty. It returns the
// number of writebacks sent.
func (c *Controller) FlushCache() int {
	addrs, lines := c.Cache.Flush()
	sent := 0
	for i, a := range addrs {
		home := c.Space.Home(a)
		if c.sendMsg(home, &coherence.Message{
			Type: coherence.MsgPut, Addr: a, Req: c.ID, Data: lines[i].Token,
		}) {
			sent++
		}
	}
	// Return orphaned exclusive grants stashed during the drain: their
	// data never reached a cache, so the home's memory copy must be
	// refreshed from the grant before the directory sweep.
	for _, o := range c.orphans {
		home := c.Space.Home(o.Addr)
		if c.sendMsg(home, &coherence.Message{
			Type: coherence.MsgPut, Addr: o.Addr, Req: c.ID, Data: o.Data,
		}) {
			sent++
		}
	}
	c.orphans = nil
	return sent
}

// ScanDirectory implements the P4 directory sweep (§4.5) and returns the
// lines newly marked incoherent.
func (c *Controller) ScanDirectory() []coherence.Addr { return c.Dir.Scan() }

// ScanDirectoryLiveness is the flush-free sweep used with a reliable
// interconnect (§6.3): liveness comes from the freshly updated node map.
func (c *Controller) ScanDirectoryLiveness() []coherence.Addr {
	return c.Dir.ScanLiveness(func(n int) bool { return c.nodeUp[n] })
}

// ScrubPage resets the coherence state of any incoherent lines in the page,
// the MAGIC service Hive uses before reusing a page (§4.6). Scrubbed lines
// are reinitialized (the page is about to be reused with fresh content).
// It returns the number of lines scrubbed.
func (c *Controller) ScrubPage(page coherence.Addr) int {
	page = page.Page()
	n := 0
	for off := coherence.Addr(0); off < 4096; off += 128 {
		a := page + off
		if c.Dir.Scrub(a) {
			c.Mem.Write(a, coherence.InitialToken(a))
			n++
		}
	}
	return n
}
