package magic

import (
	"fmt"

	"flashfc/internal/coherence"
	"flashfc/internal/sim"
)

// Snapshot is the durable MAGIC controller state at a quiescent, pre-fault
// point: the message sequence counter (which orders protocol replies), the
// normal-delivery watermark, the statistics (NAK counters included), the
// node-liveness view, and the firewall image. Transient state — the input
// queue, outstanding mshrs with their armed timers, orphaned grants —
// must be empty at a safe point, which Snapshot enforces; a fork rebuilds
// it empty.
type Snapshot struct {
	Seq                uint64
	LastNormalDelivery sim.Time
	Stats              Stats
	NodeUp             []bool
	Firewall           map[coherence.Addr]coherence.NodeSet
}

// Snapshot captures the controller state, panicking unless the controller
// is quiescent: normal mode, idle, with no queued input, no outstanding
// operations, and no orphaned grants.
func (c *Controller) Snapshot() *Snapshot {
	switch {
	case c.mode != ModeNormal:
		panic(fmt.Sprintf("magic: snapshot of node %d in mode %v", c.ID, c.mode))
	case c.busy || len(c.input) > 0:
		panic(fmt.Sprintf("magic: snapshot of node %d with %d queued packets (busy=%v)", c.ID, len(c.input), c.busy))
	case len(c.mshrs) > 0:
		panic(fmt.Sprintf("magic: snapshot of node %d with %d outstanding ops", c.ID, len(c.mshrs)))
	case len(c.orphans) > 0:
		panic(fmt.Sprintf("magic: snapshot of node %d with %d orphaned grants", c.ID, len(c.orphans)))
	}
	fw := make(map[coherence.Addr]coherence.NodeSet, len(c.firewall))
	for page, writers := range c.firewall {
		fw[page] = writers.Clone()
	}
	return &Snapshot{
		Seq:                c.seq,
		LastNormalDelivery: c.lastNormalDelivery,
		Stats:              c.Stats,
		NodeUp:             append([]bool(nil), c.nodeUp...),
		Firewall:           fw,
	}
}

// Restore installs a snapshot's state on a freshly built controller for
// the same node. The firewall image is deep-copied so sibling forks never
// share mutable NodeSets.
func (c *Controller) Restore(s *Snapshot) {
	c.seq = s.Seq
	c.lastNormalDelivery = s.LastNormalDelivery
	c.Stats = s.Stats
	copy(c.nodeUp, s.NodeUp)
	for page, writers := range s.Firewall {
		c.firewall[page] = writers.Clone()
	}
}
