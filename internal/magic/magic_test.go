package magic

import (
	"testing"

	"flashfc/internal/coherence"
	"flashfc/internal/interconnect"
	"flashfc/internal/sim"
	"flashfc/internal/topology"
)

// testRig is a small machine: engine, fabric, and one controller per node
// with its own directory/memory/cache.
type testRig struct {
	e     *sim.Engine
	net   *interconnect.Network
	space coherence.AddrSpace
	ctrl  []*Controller
}

func newRig(t *testing.T, nodes int, cfg Config) *testRig {
	t.Helper()
	e := sim.NewEngine(1)
	var topo *topology.Topology
	switch nodes {
	case 4:
		topo = topology.NewMesh(2, 2)
	case 8:
		topo = topology.NewMesh(4, 2)
	default:
		topo = topology.NewMesh(nodes, 1)
	}
	net := interconnect.New(e, topo, interconnect.DefaultConfig())
	space := coherence.AddrSpace{Nodes: nodes, MemBytes: 1 << 20}
	r := &testRig{e: e, net: net, space: space}
	for i := 0; i < nodes; i++ {
		dir := coherence.NewDirectory(nodes)
		mem := coherence.NewMemory(space.Base(i), space.MemBytes)
		cache := coherence.NewCache(64 * 128)
		r.ctrl = append(r.ctrl, New(e, net, i, space, dir, mem, cache, cfg))
	}
	return r
}

// read performs a blocking-style read and runs the engine to completion.
func (r *testRig) read(t *testing.T, node int, addr coherence.Addr) Result {
	t.Helper()
	var res Result
	done := false
	r.ctrl[node].Read(addr, func(rr Result) { res = rr; done = true })
	r.e.Run()
	if !done {
		t.Fatalf("read(%d, %v) never completed", node, addr)
	}
	return res
}

func (r *testRig) write(t *testing.T, node int, addr coherence.Addr, tok uint64) Result {
	t.Helper()
	var res Result
	done := false
	r.ctrl[node].Write(addr, tok, func(rr Result) { res = rr; done = true })
	r.e.Run()
	if !done {
		t.Fatalf("write(%d, %v) never completed", node, addr)
	}
	return res
}

func TestLocalReadMiss(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	a := coherence.Addr(0x100) // homed on node 0
	res := r.read(t, 0, a)
	if res.Err != nil {
		t.Fatalf("err = %v", res.Err)
	}
	if res.Token != coherence.InitialToken(a) {
		t.Fatalf("token = %x, want initial", res.Token)
	}
	// Second read is a cache hit.
	ev0 := r.e.EventsFired()
	res = r.read(t, 0, a)
	if res.Err != nil || res.Token != coherence.InitialToken(a) {
		t.Fatal("hit read broken")
	}
	if r.e.EventsFired()-ev0 > 3 {
		t.Fatal("hit should not generate protocol traffic")
	}
}

func TestRemoteReadAndWriteThroughDirectory(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	a := r.space.Base(2) + 0x80 // homed on node 2
	if res := r.read(t, 0, a); res.Err != nil || res.Token != coherence.InitialToken(a.Line()) {
		t.Fatalf("remote read broken: %+v", res)
	}
	// Node 1 writes: invalidates node 0's shared copy.
	if res := r.write(t, 1, a, 42); res.Err != nil || res.Token != 42 {
		t.Fatalf("remote write broken: %+v", res)
	}
	if r.ctrl[0].Cache.Lookup(a) != nil {
		t.Fatal("sharer not invalidated")
	}
	e := r.ctrl[2].Dir.Lookup(a)
	if e == nil || e.State != coherence.DirExclusive || e.Owner != 1 {
		t.Fatalf("dir entry = %+v", e)
	}
	// Node 3 reads: recall from node 1, data flows through home.
	if res := r.read(t, 3, a); res.Err != nil || res.Token != 42 {
		t.Fatalf("read after write broken: %+v", res)
	}
	if r.ctrl[1].Cache.Lookup(a) != nil {
		t.Fatal("recalled owner should have dropped the line")
	}
	if r.ctrl[2].Mem.Read(a) != 42 {
		t.Fatal("memory not updated by recall writeback")
	}
}

func TestWriteThenRemoteWrite(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	a := r.space.Base(3) + 0x200
	r.write(t, 0, a, 7)
	if res := r.write(t, 1, a, 8); res.Err != nil || res.Token != 8 {
		t.Fatalf("second write: %+v", res)
	}
	if res := r.read(t, 2, a); res.Token != 8 {
		t.Fatalf("read after two writes = %d, want 8", res.Token)
	}
}

func TestSharedUpgrade(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	a := r.space.Base(1) + 0x300
	r.read(t, 0, a)
	r.read(t, 2, a)
	// Node 0 upgrades its shared copy to exclusive; node 2 is invalidated.
	if res := r.write(t, 0, a, 5); res.Err != nil {
		t.Fatalf("upgrade: %+v", res)
	}
	if r.ctrl[2].Cache.Lookup(a) != nil {
		t.Fatal("other sharer survived upgrade")
	}
	if res := r.read(t, 2, a); res.Token != 5 {
		t.Fatalf("token after upgrade = %d", res.Token)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	r := newRig(t, 2, DefaultConfig())
	// Cache holds 64 lines; write 65 distinct remote lines to force an
	// eviction writeback of the first.
	base := r.space.Base(1)
	for i := 0; i < 65; i++ {
		r.write(t, 0, base+coherence.Addr(i*128), uint64(i+1))
	}
	if got := r.ctrl[0].Cache.Len(); got != 64 {
		t.Fatalf("cache len = %d", got)
	}
	if tok := r.ctrl[1].Mem.Read(base); tok != 1 {
		t.Fatalf("evicted line not written back: mem=%d", tok)
	}
	e := r.ctrl[1].Dir.Lookup(base)
	if e != nil {
		t.Fatalf("dir entry should be released after writeback, got %v", e.State)
	}
	// The line is readable with its written value.
	if res := r.read(t, 1, base); res.Token != 1 {
		t.Fatalf("read of evicted line = %d", res.Token)
	}
}

func TestVectorRemapKeepsReferencesLocal(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 4, cfg)
	for i := range r.ctrl {
		r.ctrl[i].Space.VectorTop = 0x1000
	}
	// A fetch of vector address 0x40 on node 2 must stay node-local even
	// though address 0x40 is nominally homed on node 0 (§3.2).
	res := r.read(t, 2, 0x40)
	if res.Err != nil {
		t.Fatalf("vector read: %v", res.Err)
	}
	want := r.space.Base(2) + 0x40
	if r.ctrl[2].Cache.Lookup(want) == nil {
		t.Fatal("vector line should be cached at its remapped local address")
	}
	if r.ctrl[0].Dir.Lookup(0x40) != nil {
		t.Fatal("remapped reference must not touch node 0")
	}
}

func TestNodeMapBusErrorsRequestsToDeadHomes(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	r.ctrl[0].SetNodeUp(3, false)
	res := r.read(t, 0, r.space.Base(3))
	if res.Err != ErrBusError {
		t.Fatalf("err = %v, want bus error", res.Err)
	}
	if r.ctrl[0].Stats.BusErrors == 0 {
		t.Fatal("bus error not counted")
	}
}

func TestIncoherentLineBusErrors(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	a := r.space.Base(1) + 0x80
	e := r.ctrl[1].Dir.Get(a)
	e.State = coherence.DirIncoherent
	if res := r.read(t, 0, a); res.Err != ErrBusError {
		t.Fatalf("read of incoherent line: %+v", res)
	}
	if res := r.write(t, 2, a, 1); res.Err != ErrBusError {
		t.Fatalf("write of incoherent line: %+v", res)
	}
	// Scrub clears it (§4.6).
	if n := r.ctrl[1].ScrubPage(a); n != 1 {
		t.Fatalf("scrubbed %d lines, want 1", n)
	}
	if res := r.read(t, 0, a); res.Err != nil {
		t.Fatalf("read after scrub: %v", res.Err)
	}
}

func TestFirewallDeniesRemoteExclusive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FirewallEnabled = true
	r := newRig(t, 4, cfg)
	units := []int{0, 0, 1, 1}
	for _, c := range r.ctrl {
		c.SetFailureUnits(units)
	}
	page := r.space.Base(0) // kernel page of node 0's cell
	writers := coherence.NewNodeSet(4)
	writers.Add(0)
	writers.Add(1)
	r.ctrl[0].SetFirewall(page, writers)

	// Reads from anywhere are fine.
	if res := r.read(t, 3, page+0x80); res.Err != nil {
		t.Fatalf("firewalled read should succeed: %v", res.Err)
	}
	// Writes from outside the ACL are bus-errored (§3.3).
	if res := r.write(t, 3, page+0x80, 9); res.Err != ErrBusError {
		t.Fatalf("firewalled write: %+v", res)
	}
	if r.ctrl[0].Stats.FirewallDenied != 1 {
		t.Fatal("FirewallDenied not counted")
	}
	// Writes from inside the ACL succeed.
	if res := r.write(t, 1, page+0x80, 9); res.Err != nil {
		t.Fatalf("allowed write failed: %v", res.Err)
	}
	// Other pages are unaffected.
	if res := r.write(t, 3, page+0x2000, 5); res.Err != nil {
		t.Fatalf("open page write failed: %v", res.Err)
	}
}

func TestRangeCheckProtectsProtocolMemory(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProtocolMemBytes = 0x10000
	r := newRig(t, 4, cfg)
	// Writes to the protocol region of any node's memory are denied.
	if res := r.write(t, 0, r.space.Base(0)+0x100, 1); res.Err != ErrBusError {
		t.Fatalf("local protocol write: %+v", res)
	}
	if r.ctrl[0].Stats.RangeDenied != 1 {
		t.Fatal("RangeDenied not counted")
	}
	// Reads are allowed.
	if res := r.read(t, 0, r.space.Base(0)+0x100); res.Err != nil {
		t.Fatalf("protocol read: %v", res.Err)
	}
	// Writes above the region are allowed.
	if res := r.write(t, 0, r.space.Base(0)+0x10000, 1); res.Err != nil {
		t.Fatalf("normal write: %v", res.Err)
	}
}

func TestTimeoutTriggersRecovery(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	var reason TriggerReason = -1
	r.ctrl[0].SetTriggerHandler(func(tr TriggerReason) { reason = tr })
	// Kill node 3's controller without updating node maps: requests
	// vanish and the memory-operation timeout fires (Fig 4.3).
	r.ctrl[3].SetMode(ModeDead)
	r.ctrl[0].Read(r.space.Base(3), func(Result) {})
	r.e.RunUntil(2 * sim.Millisecond)
	if reason != ReasonTimeout {
		t.Fatalf("reason = %v, want timeout", reason)
	}
}

func TestNAKOverflowTriggersRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NAKLimit = 10
	r := newRig(t, 4, cfg)
	var reasons []TriggerReason
	r.ctrl[2].SetTriggerHandler(func(tr TriggerReason) { reasons = append(reasons, tr) })
	// Wedge a line in a pending state by making node 3 exclusive owner
	// and then killing it silently mid-recall: the lock never releases.
	// Node 0's GET becomes the pending request; node 2's GET is NAKed
	// until its counter overflows (§3.2, Table 4.1).
	a := r.space.Base(1) + 0x80
	r.write(t, 3, a, 7)
	r.ctrl[3].SetMode(ModeDead) // recall will be discarded
	r.ctrl[0].Read(a, func(Result) {})
	r.e.RunUntil(20 * sim.Microsecond)
	r.ctrl[2].Read(a, func(Result) {})
	r.e.RunUntil(5 * sim.Millisecond)
	// The NAK counter overflows first; the abandoned operation's timeout
	// may also fire later — the recovery agent deduplicates triggers.
	if len(reasons) == 0 || reasons[0] != ReasonNAKOverflow {
		t.Fatalf("reasons = %v, want NAK overflow first", reasons)
	}
	if r.ctrl[2].Stats.NAKsReceived == 0 {
		t.Fatal("no NAKs observed")
	}
}

func TestTruncatedPacketTriggersRecovery(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	var reason TriggerReason = -1
	r.ctrl[0].SetTriggerHandler(func(tr TriggerReason) { reason = tr })
	r.net.Send(&interconnect.Packet{
		Src: 1, Dst: 0, Lane: interconnect.LaneReply, Bytes: 128,
		Payload:   &coherence.Message{Type: coherence.MsgPut, Addr: 0, Req: 1},
		Truncated: true,
	})
	r.e.Run()
	if reason != ReasonTruncated {
		t.Fatalf("reason = %v, want truncated", reason)
	}
}

func TestAssertionTriggersRecovery(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	var reason TriggerReason = -1
	r.ctrl[2].SetTriggerHandler(func(tr TriggerReason) { reason = tr })
	r.ctrl[2].FailAssertion()
	if reason != ReasonAssertion {
		t.Fatalf("reason = %v, want assertion", reason)
	}
}

func TestEnterRecoveryAbortsOutstanding(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	r.ctrl[3].SetMode(ModeDead)
	var got error
	r.ctrl[0].Read(r.space.Base(3), func(res Result) { got = res.Err })
	r.e.RunUntil(10 * sim.Microsecond)
	if r.ctrl[0].Outstanding() != 1 {
		t.Fatal("request should be outstanding")
	}
	r.ctrl[0].EnterRecovery()
	r.e.RunUntil(20 * sim.Microsecond)
	if got != ErrAborted {
		t.Fatalf("err = %v, want aborted", got)
	}
	if r.ctrl[0].Outstanding() != 0 {
		t.Fatal("mshrs not cleared")
	}
	if r.ctrl[0].Mode() != ModeDrain {
		t.Fatal("controller should be draining")
	}
}

func TestDrainModeConsumesWithoutReplying(t *testing.T) {
	r := newRig(t, 2, DefaultConfig())
	r.ctrl[1].SetMode(ModeDrain)
	done := false
	r.ctrl[0].Read(r.space.Base(1), func(Result) { done = true })
	r.e.RunUntil(100 * sim.Microsecond)
	if done {
		t.Fatal("drain mode must not reply")
	}
	if r.ctrl[1].Stats.DroppedInMode == 0 {
		t.Fatal("drained packet not counted")
	}
	if r.ctrl[1].LastNormalDelivery() == 0 {
		t.Fatal("drain must record delivery times for the τ agreement")
	}
}

func TestFlushModeAcceptsOnlyWritebacks(t *testing.T) {
	r := newRig(t, 2, DefaultConfig())
	a := r.space.Base(1) + 0x80
	r.write(t, 0, a, 99)
	// Home 1 now has a stale memory copy and an exclusive dir entry.
	r.ctrl[0].EnterRecovery()
	r.ctrl[1].EnterRecovery()
	r.e.Run()
	r.ctrl[0].SetMode(ModeFlush)
	r.ctrl[1].SetMode(ModeFlush)
	if n := r.ctrl[0].FlushCache(); n != 1 {
		t.Fatalf("flush sent %d writebacks, want 1", n)
	}
	r.e.Run()
	if r.ctrl[1].Mem.Read(a) != 99 {
		t.Fatal("flush writeback not folded into memory")
	}
	lost := r.ctrl[1].ScanDirectory()
	if len(lost) != 0 {
		t.Fatalf("scan marked %v incoherent after clean flush", lost)
	}
}

func TestScanMarksLostLinesIncoherent(t *testing.T) {
	r := newRig(t, 2, DefaultConfig())
	a := r.space.Base(1) + 0x80
	r.write(t, 0, a, 99)
	// Node 0 dies without flushing: its exclusive line is lost.
	r.ctrl[0].SetMode(ModeDead)
	r.ctrl[1].EnterRecovery()
	r.e.Run()
	r.ctrl[1].SetMode(ModeFlush)
	r.e.Run()
	lost := r.ctrl[1].ScanDirectory()
	if len(lost) != 1 || lost[0] != a.Line() {
		t.Fatalf("lost = %v, want [%v]", lost, a.Line())
	}
	r.ctrl[1].SetMode(ModeNormal)
	if res := r.read(t, 1, a); res.Err != ErrBusError {
		t.Fatalf("read of lost line: %+v", res)
	}
}

func TestUncachedRoundTrip(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	r.ctrl[1].SetUncachedHandler(func(src int, payload any) (any, error) {
		return payload.(int) * 2, nil
	})
	var got any
	var gerr error
	r.ctrl[0].SendUncached(1, true, false, 21, func(v any, err error) { got, gerr = v, err })
	r.e.Run()
	if gerr != nil || got != 42 {
		t.Fatalf("uncached rpc: %v %v", got, gerr)
	}
}

func TestUncachedCrossUnitDenied(t *testing.T) {
	r := newRig(t, 4, DefaultConfig())
	units := []int{0, 1, 1, 1}
	for _, c := range r.ctrl {
		c.SetFailureUnits(units)
	}
	r.ctrl[1].SetUncachedHandler(func(src int, payload any) (any, error) { return payload, nil })
	var gerr error
	done := false
	r.ctrl[0].SendUncached(1, false, true, "x", func(v any, err error) { gerr = err; done = true })
	r.e.Run()
	if !done || gerr != ErrBusError {
		t.Fatalf("cross-unit uncached op: done=%v err=%v", done, gerr)
	}
	if r.ctrl[1].Stats.UncachedDenied != 1 {
		t.Fatal("UncachedDenied not counted")
	}
}

func TestModeAndReasonStrings(t *testing.T) {
	for m := ModeNormal; m <= ModeDead+1; m++ {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
	for r := ReasonTimeout; r <= ReasonFalseAlarm+1; r++ {
		if r.String() == "" {
			t.Fatal("empty reason string")
		}
	}
	r := newRig(t, 2, DefaultConfig())
	if r.ctrl[0].String() == "" {
		t.Fatal("empty controller string")
	}
}

func TestFirewallOverheadChargesOccupancy(t *testing.T) {
	// Measure intercell write miss latency with and without the
	// firewall; §6.2 reports the increase is below 7%.
	measure := func(firewall bool) sim.Time {
		cfg := DefaultConfig()
		cfg.FirewallEnabled = firewall
		r := newRig(t, 4, cfg)
		units := []int{0, 0, 1, 1}
		for _, c := range r.ctrl {
			c.SetFailureUnits(units)
		}
		start := r.e.Now()
		r.write(t, 2, r.space.Base(0)+0x80, 1)
		return r.e.Now() - start
	}
	off := measure(false)
	on := measure(true)
	if on <= off {
		t.Fatalf("firewall should add latency: off=%v on=%v", off, on)
	}
	frac := float64(on-off) / float64(off)
	if frac >= 0.07 {
		t.Fatalf("firewall overhead %.1f%% exceeds the paper's 7%% bound", frac*100)
	}
}

func TestRecallRaceMergedIntoMiss(t *testing.T) {
	// The recall-overtakes-grant race (§3.2's locking dance): node 3 has
	// a GETX outstanding when the home's recall for the same line lands.
	// The grant must be written straight back home instead of cached.
	r := newRig(t, 4, DefaultConfig())
	a := r.space.Base(1) + 0x80
	// Stage: node 0 owns the line exclusive.
	r.write(t, 0, a, 7)
	// Node 3 writes: GETX -> home recalls node 0 -> grant to 3 with the
	// recalled data; then node 2 writes: GETX -> recall to node 3. Run
	// both concurrently so the recall can overtake.
	done2, done3 := false, false
	r.ctrl[3].Write(a, 8, func(res Result) { done3 = true })
	r.ctrl[2].Write(a, 9, func(res Result) { done2 = true })
	r.e.Run()
	if !done2 || !done3 {
		t.Fatal("writes did not complete")
	}
	// Whatever the interleaving, the final committed value must win and
	// be readable coherently everywhere.
	res := r.read(t, 1, a)
	if res.Err != nil {
		t.Fatalf("read: %v", res.Err)
	}
	if res.Token != 8 && res.Token != 9 {
		t.Fatalf("token = %d, want one of the committed writes", res.Token)
	}
	// Memory and caches agree (no stale second copy).
	for i, c := range r.ctrl {
		if l := c.Cache.Lookup(a); l != nil && l.Token != res.Token &&
			l.State == coherence.CacheExclusive {
			t.Fatalf("node %d holds a conflicting exclusive copy: %d", i, l.Token)
		}
	}
}

func TestRecallNakResolvesFromMemory(t *testing.T) {
	// An eviction writeback races the recall: the home must complete the
	// waiting request from the (now current) memory copy.
	r := newRig(t, 2, DefaultConfig())
	base := r.space.Base(1)
	// Fill node 0's cache so the first line gets evicted (64-line cache).
	for i := 0; i < 64; i++ {
		r.write(t, 0, base+coherence.Addr(i*128), uint64(i+1))
	}
	// Evict line 0 by writing one more, then immediately read it from
	// node 1: if the recall finds it gone, a RecallNak resolves it.
	done := false
	var got Result
	r.ctrl[0].Write(base+coherence.Addr(64*128), 99, func(Result) {})
	r.ctrl[1].Read(base, func(res Result) { got = res; done = true })
	r.e.Run()
	if !done || got.Err != nil || got.Token != 1 {
		t.Fatalf("read after eviction race: %+v", got)
	}
}

func TestReadExclusiveGrantsWritableCopy(t *testing.T) {
	r := newRig(t, 2, DefaultConfig())
	a := r.space.Base(1) + 0x80
	var res Result
	r.ctrl[0].ReadExclusive(a, func(rr Result) { res = rr })
	r.e.Run()
	if res.Err != nil || res.Token != coherence.InitialToken(a) {
		t.Fatalf("read exclusive: %+v", res)
	}
	l := r.ctrl[0].Cache.Lookup(a)
	if l == nil || l.State != coherence.CacheExclusive {
		t.Fatal("line should be exclusive")
	}
}

func TestOrphanGrantReturnedByFlush(t *testing.T) {
	r := newRig(t, 2, DefaultConfig())
	a := r.space.Base(1) + 0x80
	// Node 0 writes; the grant is in flight when recovery enters drain.
	committed := false
	r.ctrl[0].Write(a, 42, func(res Result) { committed = res.Err == nil })
	// Run until the home has issued the grant but before it reaches the
	// requester (grant issue ~300 ns, delivery ~450 ns on this rig).
	r.e.RunUntil(380)
	r.ctrl[0].EnterRecovery()
	r.ctrl[1].EnterRecovery()
	r.e.RunUntil(r.e.Now() + sim.Millisecond)
	if committed {
		t.Fatal("write should have been aborted")
	}
	if len(r.ctrl[0].Orphans()) != 1 {
		t.Fatalf("orphans = %d, want 1", len(r.ctrl[0].Orphans()))
	}
	// Flush returns the orphan home; the sweep then finds nothing lost.
	r.ctrl[0].SetMode(ModeFlush)
	r.ctrl[1].SetMode(ModeFlush)
	r.ctrl[0].FlushCache()
	r.e.Run()
	if lost := r.ctrl[1].ScanDirectory(); len(lost) != 0 {
		t.Fatalf("scan marked %v after orphan return", lost)
	}
	if len(r.ctrl[0].Orphans()) != 0 {
		t.Fatal("orphan stash should be empty after flush")
	}
}

func TestSendUncachedToDeadNodeFailsFast(t *testing.T) {
	r := newRig(t, 2, DefaultConfig())
	r.ctrl[0].SetNodeUp(1, false)
	var gerr error
	done := false
	r.ctrl[0].SendUncached(1, true, false, "x", func(v any, err error) { gerr = err; done = true })
	r.e.Run()
	if !done || gerr != ErrBusError {
		t.Fatalf("uncached to mapped-out node: done=%v err=%v", done, gerr)
	}
}

func TestHandlerHooksRegistered(t *testing.T) {
	r := newRig(t, 2, DefaultConfig())
	var dropped *coherence.Message
	r.ctrl[0].SetDeadDropHandler(func(m *coherence.Message) { dropped = m })
	r.ctrl[0].SetRecoveryHandler(func(p *interconnect.Packet) {})
	r.ctrl[0].SetMode(ModeDead)
	r.net.Send(&interconnect.Packet{
		Src: 1, Dst: 0, Lane: interconnect.LaneReply, Bytes: 128,
		Payload: &coherence.Message{Type: coherence.MsgPut, Addr: 0x80, Req: 1, Data: 5},
	})
	r.e.Run()
	if dropped == nil || dropped.Type != coherence.MsgPut {
		t.Fatal("dead-drop hook not invoked")
	}
	if !r.ctrl[0].NodeUp(1) {
		t.Fatal("NodeUp default should be true")
	}
	// Clearing a firewall entry opens the page again.
	w := coherence.NewNodeSet(2)
	w.Add(0)
	r.ctrl[0].SetFirewall(0, w)
	r.ctrl[0].SetFirewall(0, nil)
}

func TestRecallNakDirect(t *testing.T) {
	// Drive handleRecallNak's resolution path: home pending on a recall
	// whose target legitimately evicted first.
	r := newRig(t, 2, DefaultConfig())
	a := r.space.Base(0) + 0x80
	e := r.ctrl[0].Dir.Get(a)
	e.State = coherence.DirPendingRecall
	e.Owner = 1
	e.PendingReq = 1
	e.PendingExcl = false
	e.PendingSeq = 77
	r.ctrl[0].Mem.Write(a, 123)
	// Deliver a RecallNak from node 1.
	r.net.Send(&interconnect.Packet{
		Src: 1, Dst: 0, Lane: interconnect.LaneReply, Bytes: 16,
		Payload: &coherence.Message{Type: coherence.MsgRecallNak, Addr: a, Req: 1},
	})
	r.e.Run()
	if e.State != coherence.DirShared || !e.Sharers.Has(1) {
		t.Fatalf("entry after RecallNak: %v", e.State)
	}
}

func TestStrayRepliesIgnored(t *testing.T) {
	r := newRig(t, 2, DefaultConfig())
	// Replies and acks with no matching transaction must be harmless.
	for _, ty := range []coherence.MsgType{
		coherence.MsgDataShared, coherence.MsgDataExcl, coherence.MsgNak,
		coherence.MsgBusErr, coherence.MsgInvAck, coherence.MsgRecallNak,
		coherence.MsgPut, coherence.MsgUncachedReply,
	} {
		r.net.Send(&interconnect.Packet{
			Src: 1, Dst: 0, Lane: interconnect.LaneReply, Bytes: 16,
			Payload: &coherence.Message{Type: ty, Addr: 0x80, Req: 0, Seq: 9999},
		})
	}
	r.e.Run()
	if r.ctrl[0].Outstanding() != 0 {
		t.Fatal("stray replies created state")
	}
}
