// Package cliflags centralizes the campaign flags shared by the flashsim,
// tables and figures binaries. Before it existed each binary declared its
// own subset with drifting spellings (flashsim took -parallel where the
// configs said Workers, figures had no -runs at all); registering through
// one package keeps the three command lines interchangeable:
//
//	-seed N            base random seed
//	-runs N            runs per campaign/batch
//	-workers N         run-level worker goroutines (0 = one per CPU):
//	                   independent campaign runs in parallel; -parallel is
//	                   a compatible alias
//	-partitions N      intra-machine worker goroutines: region schedulers
//	                   of ONE machine in parallel (0 = classic sequential
//	                   engine). Orthogonal to -parallel: the two multiply,
//	                   and a warning is printed when the product exceeds
//	                   GOMAXPROCS
//	-region-extra D    extra inter-region wire latency of a partitioned
//	                   machine (0 = the machine default)
//	-metrics           print the aggregate metric registry
//	-metrics-json      emit the metric snapshot as JSON on stdout
//	-trace             print the recovery event timeline (single runs)
//	-trace-json FILE   write Chrome trace-event JSON (single runs)
//	-trace-critical    print the recovery critical path (single runs)
//	-warmstart         share warmed machine snapshots across a batch's runs
//	                   (default true; false rebuilds warm state per run —
//	                   bit-identical, just slower)
//	-cpuprofile FILE   write a pprof CPU profile
//	-memprofile FILE   write a pprof allocation profile at exit
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"flashfc"
)

// Defaults parameterizes the per-binary flag defaults.
type Defaults struct {
	// Runs is the default for -runs (flashsim: 1; tables: 0, meaning the
	// per-table default; figures: 12, used by the distribution sweep).
	Runs int
}

// Flags holds the parsed values of the shared campaign flags.
type Flags struct {
	Seed    int64
	Runs    int
	Workers int
	// Partitions is the intra-machine worker count: how many goroutines
	// multiplex one machine's region schedulers. 0 keeps the classic
	// sequential engine. Results are bit-identical at every value.
	Partitions int
	// RegionExtra is the extra inter-region wire latency (nanoseconds) of
	// a partitioned machine; 0 uses the machine default.
	RegionExtra int64

	Metrics     bool
	MetricsJSON bool

	Trace         bool
	TraceJSON     string
	TraceCritical bool

	WarmStart bool

	CPUProfile string
	MemProfile string
}

// Register installs the shared flags on fs (flag.CommandLine in the
// binaries) and returns the destination struct, to be read after
// fs.Parse.
func Register(fs *flag.FlagSet, def Defaults) *Flags {
	f := &Flags{}
	fs.Int64Var(&f.Seed, "seed", 1, "base random seed")
	fs.IntVar(&f.Runs, "runs", def.Runs, "independent runs per campaign")
	fs.IntVar(&f.Workers, "workers", 0, "run-level campaign worker goroutines (0 = one per CPU)")
	fs.IntVar(&f.Workers, "parallel", 0, "alias for -workers")
	fs.IntVar(&f.Partitions, "partitions", 0, "intra-machine region workers (0 = sequential engine; bit-identical at any value)")
	fs.Int64Var(&f.RegionExtra, "region-extra", 0, "extra inter-region wire latency in `ns` for partitioned machines (0 = default)")
	fs.BoolVar(&f.Metrics, "metrics", false, "print the aggregate metric registry")
	fs.BoolVar(&f.MetricsJSON, "metrics-json", false, "emit the metric snapshot as stable-key JSON on stdout")
	fs.BoolVar(&f.Trace, "trace", false, "print the recovery event timeline (single runs)")
	fs.StringVar(&f.TraceJSON, "trace-json", "", "write the recovery span tree as Chrome trace-event JSON to `file` (single runs)")
	fs.BoolVar(&f.TraceCritical, "trace-critical", false, "print the recovery critical-path report (single runs)")
	fs.BoolVar(&f.WarmStart, "warmstart", true, "share warmed machine snapshots across a batch's runs (false: rebuild per run; bit-identical)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof allocation profile to `file` at exit")
	return f
}

// Config builds the campaign execution envelope the flags describe.
// Metrics is set whenever either metric output was requested, so campaigns
// aggregate snapshots exactly when something will consume them.
func (f *Flags) Config() flashfc.CampaignConfig {
	warm := flashfc.WarmStartAuto
	if !f.WarmStart {
		warm = flashfc.WarmStartOff
	}
	return flashfc.CampaignConfig{
		Seed:      f.Seed,
		Runs:      f.Runs,
		Workers:   f.Workers,
		Metrics:   f.Metrics || f.MetricsJSON,
		WarmStart: warm,
	}
}

// StartProfiles starts the profiles the flags requested and returns a stop
// function that flushes them; call it (once) on every exit path. With no
// profile flags set both start and stop are no-ops.
func (f *Flags) StartProfiles() func() {
	var cpu *os.File
	if f.CPUProfile != "" {
		var err error
		cpu, err = os.Create(f.CPUProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer mf.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(mf, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}
}

// WarnOversubscribed prints a warning when the run-level and intra-machine
// worker counts multiply past the host's scheduler width: -parallel
// parallelizes across runs and -partitions within each run's machine, so a
// campaign runs up to parallel×partitions busy goroutines. Oversubscribing
// is correct (results never depend on worker counts) but slower. It reports
// whether it warned.
func (f *Flags) WarnOversubscribed() bool {
	runLevel := f.Workers
	if runLevel <= 0 {
		runLevel = runtime.GOMAXPROCS(0)
	}
	if f.Runs <= 1 {
		runLevel = 1 // single runs use no run-level workers
	}
	if f.Partitions > 0 && runLevel*f.Partitions > runtime.GOMAXPROCS(0) {
		fmt.Fprintf(os.Stderr,
			"warning: -parallel %d × -partitions %d = %d workers exceeds GOMAXPROCS %d; results are identical but oversubscription costs speed\n",
			runLevel, f.Partitions, runLevel*f.Partitions, runtime.GOMAXPROCS(0))
		return true
	}
	return false
}

// WantTrace reports whether any trace output was requested.
func (f *Flags) WantTrace() bool {
	return f.Trace || f.TraceJSON != "" || f.TraceCritical
}

// WarnTraceIgnored prints the standard warning when trace flags are set in
// a mode that cannot honor them (multi-run campaigns interleave timelines
// into nonsense), and reports whether it warned.
func (f *Flags) WarnTraceIgnored() bool {
	if !f.WantTrace() {
		return false
	}
	fmt.Fprintln(os.Stderr, "warning: -trace/-trace-json/-trace-critical apply to single runs only; ignored here")
	return true
}
