// Package cliflags centralizes the campaign flags shared by the flashsim,
// tables and figures binaries. Before it existed each binary declared its
// own subset with drifting spellings (flashsim took -parallel where the
// configs said Workers, figures had no -runs at all); registering through
// one package keeps the three command lines interchangeable:
//
//	-seed N            base random seed
//	-runs N            runs per campaign/batch
//	-workers N         run-level worker goroutines (0 = one per CPU):
//	                   independent campaign runs in parallel; -parallel is
//	                   a compatible alias
//	-partitions N      intra-machine worker goroutines: region schedulers
//	                   of ONE machine in parallel (0 = classic sequential
//	                   engine). Orthogonal to -parallel: the two multiply,
//	                   and a warning is printed when the product exceeds
//	                   GOMAXPROCS
//	-region-extra D    extra inter-region wire latency of a partitioned
//	                   machine (0 = the machine default)
//	-metrics           print the aggregate metric registry
//	-metrics-json      emit the metric snapshot as JSON on stdout
//	-trace             print the recovery event timeline (single runs)
//	-trace-json FILE   write Chrome trace-event JSON (single runs)
//	-trace-critical    print the recovery critical path (single runs)
//	-warmstart         share warmed machine snapshots across a batch's runs
//	                   (default true; false rebuilds warm state per run —
//	                   bit-identical, just slower)
//	-routing NAME      interconnect-recovery routing strategy: paper
//	                   (dim-order + full drain + up*/down*, the default),
//	                   adaptive (fault-region-aware, no drain), or
//	                   incremental (patch broken routes, partial drain)
//	-run-log FILE      stream one JSONL record per campaign run, ordered by
//	                   run index; byte-identical at any -parallel or
//	                   -partitions setting
//	-run-log-host      keep the host-side record fields (wall_ns, worker)
//	                   instead of zeroing them — real accounting at the
//	                   price of byte-identity
//	-progress          live rate-limited campaign progress on stderr (runs
//	                   done/total, events/sec, failures, ETA); never
//	                   touches the JSON-only stdout contract
//	-exemplars DIR     after a tail campaign, replay the exact runs behind
//	                   p50/p99/p999 with span tracing and write Perfetto
//	                   traces + critical-path summaries into DIR (tables
//	                   -table tail)
//	-run-seed I        trace exactly campaign run I: same derived seed and
//	                   warm fork as run I of the -runs N campaign
//	                   (flashsim)
//	-cpuprofile FILE   write a pprof CPU profile
//	-memprofile FILE   write a pprof allocation profile at exit
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"flashfc"
)

// Defaults parameterizes the per-binary flag defaults.
type Defaults struct {
	// Runs is the default for -runs (flashsim: 1; tables: 0, meaning the
	// per-table default; figures: 12, used by the distribution sweep).
	Runs int
}

// Flags holds the parsed values of the shared campaign flags.
type Flags struct {
	Seed    int64
	Runs    int
	Workers int
	// Partitions is the intra-machine worker count: how many goroutines
	// multiplex one machine's region schedulers. 0 keeps the classic
	// sequential engine. Results are bit-identical at every value.
	Partitions int
	// RegionExtra is the extra inter-region wire latency (nanoseconds) of
	// a partitioned machine; 0 uses the machine default.
	RegionExtra int64

	Metrics     bool
	MetricsJSON bool

	Trace         bool
	TraceJSON     string
	TraceCritical bool

	WarmStart bool

	// Routing is the interconnect-recovery routing strategy name ("" and
	// "paper" run the paper's byte-identical dim-order + full-drain +
	// up*/down* pipeline). CheckRouting validates it after parse.
	Routing string

	// RunLog is the -run-log path: one JSONL record per campaign run,
	// ordered by run index (empty = off). RunLogHost keeps the host-side
	// fields (wall_ns, worker) instead of zeroing them.
	RunLog     string
	RunLogHost bool
	// Progress enables the live stderr campaign reporter.
	Progress bool
	// Exemplars is the -exemplars directory for replayed tail-percentile
	// traces (empty = off).
	Exemplars string
	// RunSeed is the -run-seed campaign run index to trace exactly
	// (flashsim); -1 = off.
	RunSeed int

	CPUProfile string
	MemProfile string
}

// Register installs the shared flags on fs (flag.CommandLine in the
// binaries) and returns the destination struct, to be read after
// fs.Parse.
func Register(fs *flag.FlagSet, def Defaults) *Flags {
	f := &Flags{}
	fs.Int64Var(&f.Seed, "seed", 1, "base random seed")
	fs.IntVar(&f.Runs, "runs", def.Runs, "independent runs per campaign")
	fs.IntVar(&f.Workers, "workers", 0, "run-level campaign worker goroutines (0 = one per CPU)")
	fs.IntVar(&f.Workers, "parallel", 0, "alias for -workers")
	fs.IntVar(&f.Partitions, "partitions", 0, "intra-machine region workers (0 = sequential engine; bit-identical at any value)")
	fs.Int64Var(&f.RegionExtra, "region-extra", 0, "extra inter-region wire latency in `ns` for partitioned machines (0 = default)")
	fs.BoolVar(&f.Metrics, "metrics", false, "print the aggregate metric registry")
	fs.BoolVar(&f.MetricsJSON, "metrics-json", false, "emit the metric snapshot as stable-key JSON on stdout")
	fs.BoolVar(&f.Trace, "trace", false, "print the recovery event timeline (single runs)")
	fs.StringVar(&f.TraceJSON, "trace-json", "", "write the recovery span tree as Chrome trace-event JSON to `file` (single runs)")
	fs.BoolVar(&f.TraceCritical, "trace-critical", false, "print the recovery critical-path report (single runs)")
	fs.BoolVar(&f.WarmStart, "warmstart", true, "share warmed machine snapshots across a batch's runs (false: rebuild per run; bit-identical)")
	fs.StringVar(&f.Routing, "routing", "", "recovery routing `strategy`: "+strategyList()+" (default paper)")
	fs.StringVar(&f.RunLog, "run-log", "", "stream one JSONL record per campaign run to `file`, ordered by run index (byte-identical at any -parallel/-partitions)")
	fs.BoolVar(&f.RunLogHost, "run-log-host", false, "keep host-side run-log fields (wall_ns, worker) instead of zeroing them; breaks byte-identity across worker counts")
	fs.BoolVar(&f.Progress, "progress", false, "live campaign progress on stderr (runs done/total, events/sec, failures, ETA)")
	fs.StringVar(&f.Exemplars, "exemplars", "", "replay the runs behind a tail campaign's percentiles with tracing and write Perfetto traces + summaries into `dir`")
	fs.IntVar(&f.RunSeed, "run-seed", -1, "trace exactly campaign run `i` (same derived seed as run i of the -runs N campaign); -1 = off")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof allocation profile to `file` at exit")
	return f
}

// Config builds the campaign execution envelope the flags describe.
// Metrics is set whenever either metric output was requested, so campaigns
// aggregate snapshots exactly when something will consume them.
func (f *Flags) Config() flashfc.CampaignConfig {
	warm := flashfc.WarmStartAuto
	if !f.WarmStart {
		warm = flashfc.WarmStartOff
	}
	return flashfc.CampaignConfig{
		Seed:      f.Seed,
		Runs:      f.Runs,
		Workers:   f.Workers,
		Metrics:   f.Metrics || f.MetricsJSON,
		WarmStart: warm,
	}
}

// strategyList joins the registered routing strategy names for flag usage
// text.
func strategyList() string {
	names := flashfc.RoutingStrategies()
	s := ""
	for i, n := range names {
		if i > 0 {
			s += "|"
		}
		s += n
	}
	return s
}

// CheckRouting validates the -routing flag against the strategy registry
// and exits with a friendly error naming the alternatives when the name is
// unknown. Call it once after fs.Parse.
func (f *Flags) CheckRouting() {
	if f.Routing == "" || f.Routing == "paper" {
		return
	}
	for _, n := range flashfc.RoutingStrategies() {
		if f.Routing == n {
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown -routing %q; registered strategies: %s\n", f.Routing, strategyList())
	os.Exit(2)
}

// StartProfiles starts the profiles the flags requested and returns a stop
// function that flushes them; call it (once) on every exit path. With no
// profile flags set both start and stop are no-ops.
func (f *Flags) StartProfiles() func() {
	var cpu *os.File
	if f.CPUProfile != "" {
		var err error
		cpu, err = os.Create(f.CPUProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer mf.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(mf, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}
}

// WarnOversubscribed prints a warning when the run-level and intra-machine
// worker counts multiply past the host's scheduler width: -parallel
// parallelizes across runs and -partitions within each run's machine, so a
// campaign runs up to parallel×partitions busy goroutines. Oversubscribing
// is correct (results never depend on worker counts) but slower. It reports
// whether it warned.
func (f *Flags) WarnOversubscribed() bool {
	runLevel := f.Workers
	if runLevel <= 0 {
		runLevel = runtime.GOMAXPROCS(0)
	}
	if f.Runs <= 1 {
		runLevel = 1 // single runs use no run-level workers
	}
	if f.Partitions > 0 && runLevel*f.Partitions > runtime.GOMAXPROCS(0) {
		fmt.Fprintf(os.Stderr,
			"warning: -parallel %d × -partitions %d = %d workers exceeds GOMAXPROCS %d; results are identical but oversubscription costs speed\n",
			runLevel, f.Partitions, runLevel*f.Partitions, runtime.GOMAXPROCS(0))
		return true
	}
	return false
}

// Sinks builds the observability sink the -run-log/-progress flags
// request. It returns the sink to hand campaigns (nil when neither flag is
// set — callers assign it unconditionally) and a finish function to call
// exactly once after the last campaign: it flushes every sink, verifies
// the run log saw a complete, duplicate-free record stream, and closes the
// log file. On a flag error (unwritable -run-log path) it exits.
func (f *Flags) Sinks() (flashfc.Sink, func() error) {
	var sinks []flashfc.Sink
	var file *os.File
	var log *flashfc.RunLog
	if f.RunLog != "" {
		var err error
		file, err = os.Create(f.RunLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "run-log: %v\n", err)
			os.Exit(1)
		}
		log = flashfc.NewRunLog(file, f.RunLogHost)
		sinks = append(sinks, log)
	}
	if f.Progress {
		sinks = append(sinks, flashfc.NewProgress(os.Stderr))
	}
	if len(sinks) == 0 {
		return nil, func() error { return nil }
	}
	sink := flashfc.MultiSink(sinks...)
	done := false
	return sink, func() error {
		if done {
			return nil
		}
		done = true
		sink.Finish()
		if log != nil {
			if err := log.Err(); err != nil {
				file.Close()
				return err
			}
		}
		if file != nil {
			return file.Close()
		}
		return nil
	}
}

// FinishSinks runs a Sinks finish function and exits on error — the shared
// tail of every campaign path.
func FinishSinks(finish func() error) {
	if err := finish(); err != nil {
		fmt.Fprintf(os.Stderr, "run-log: %v\n", err)
		os.Exit(1)
	}
}

// WantTrace reports whether any trace output was requested.
func (f *Flags) WantTrace() bool {
	return f.Trace || f.TraceJSON != "" || f.TraceCritical
}

// WarnTraceIgnored prints the standard guidance when trace flags are set
// in a mode that cannot honor them (a single trace of N interleaved runs
// is nonsense), pointing at the campaign-scale alternatives instead of a
// dead end. It reports whether it warned.
func (f *Flags) WarnTraceIgnored() bool {
	if !f.WantTrace() {
		return false
	}
	fmt.Fprintln(os.Stderr, "warning: -trace/-trace-json/-trace-critical trace a single run; for campaigns use "+
		"-run-log (per-run records), -exemplars (traced tail exemplars), or flashsim -run-seed <i> (trace exactly campaign run i)")
	return true
}
