package sim

import (
	"math/bits"
	"slices"
)

// The wheel is three levels of 256 slots. Level l buckets timestamps by
// bits [baseShift+8l, baseShift+8(l+1)) — 64 ns slots at level 0, ~16 us at
// level 1, ~4.2 ms at level 2 — for a horizon of 2^30 ns (~1.07 s) beyond
// which events fall through to the far heap. Every resident wheel event
// satisfies at >= max(now, drainCeil), so each level's 256-slot window
// covers at most one slot-time per index and slots never mix rotations:
// a circular scan from the reference index enumerates slots in strictly
// increasing time order, and a whole slot can be drained or cascaded
// without filtering.
const (
	slotBits  = 8
	numSlots  = 1 << slotBits
	slotMask  = numSlots - 1
	numLevels = 3
	baseShift = 6 // level-0 slot width: 64 ns
	occWords  = numSlots / 64
)

// wheelLevel is one ring of slots plus an occupancy bitmap for O(1) scans
// to the next non-empty slot.
type wheelLevel struct {
	slots [numSlots][]*event
	occ   [occWords]uint64
}

type wheel [numLevels]wheelLevel

// ref is the wheel placement reference: every wheel-resident event has
// at >= ref, which is what keeps slot windows unambiguous.
func (e *Engine) ref() Time {
	if e.drainCeil > e.now {
		return e.drainCeil
	}
	return e.now
}

// placeWheel buckets ev into the shallowest level whose window (relative to
// ref) reaches ev.at, or pushes it to the far heap beyond the horizon.
func (e *Engine) placeWheel(ev *event, ref Time) {
	d := uint64(ev.at) >> baseShift
	r := uint64(ref) >> baseShift
	for l := 0; l < numLevels; l++ {
		if d-r < numSlots {
			idx := int(d) & slotMask
			lv := &e.wheel[l]
			lv.slots[idx] = append(lv.slots[idx], ev)
			lv.occ[idx>>6] |= 1 << (idx & 63)
			return
		}
		d >>= slotBits
		r >>= slotBits
	}
	e.far.push(ev)
}

// earliestSlot finds the non-empty slot of level l with the smallest base
// time, scanning the occupancy bitmap circularly from the slot containing
// ref. The second return is the slot index; ok is false if the level is
// empty.
func (e *Engine) earliestSlot(l int, ref Time) (Time, int, bool) {
	lv := &e.wheel[l]
	shift := uint(baseShift + l*slotBits)
	cur := uint64(ref) >> shift
	c := int(cur) & slotMask
	for k := 0; k <= occWords; k++ {
		wi := ((c >> 6) + k) % occWords
		w := lv.occ[wi]
		if k == 0 {
			w &= ^uint64(0) << (c & 63)
		} else if k == occWords {
			w &= (1 << (c & 63)) - 1
		}
		if w != 0 {
			idx := wi*64 + bits.TrailingZeros64(w)
			slotTime := cur + uint64((idx-c)&slotMask)
			return Time(slotTime << shift), idx, true
		}
	}
	return 0, 0, false
}

// takeSlot detaches and returns a slot's events, clearing its occupancy.
func (lv *wheelLevel) takeSlot(idx int) []*event {
	evs := lv.slots[idx]
	lv.slots[idx] = evs[:0]
	lv.occ[idx>>6] &^= 1 << (idx & 63)
	return evs
}

// refill advances the wheel to its next non-empty slot and loads that
// slot's events — sorted by (at, seq) — into the drain run. Higher-level
// slots whose base precedes every level-0 slot cascade one level down
// first; since no pending wheel event is earlier than such a slot's base,
// the cursor (drainCeil) jumps to it, which guarantees the cascaded events
// land a level below (and keeps cascades O(1) amortized per event: each
// event descends at most numLevels-1 times in its life). Reports false when
// the wheel holds no events at all (the far heap may still).
func (e *Engine) refill() bool {
	e.drain = e.drain[:0]
	e.drainPos = 0
	for {
		ref := e.ref()
		var bestBase Time
		bestL, bestIdx := -1, 0
		for l := numLevels - 1; l >= 0; l-- {
			if base, idx, ok := e.earliestSlot(l, ref); ok {
				// Strictly-less keeps the higher level on ties:
				// its slot must cascade before the level-0 slot
				// with the same base is drained.
				if bestL < 0 || base < bestBase {
					bestBase, bestL, bestIdx = base, l, idx
				}
			}
		}
		if bestL < 0 {
			return false
		}
		evs := e.wheel[bestL].takeSlot(bestIdx)
		if bestL == 0 {
			e.drain = append(e.drain, evs...)
			slices.SortFunc(e.drain, func(a, b *event) int {
				if a.at != b.at {
					if a.at < b.at {
						return -1
					}
					return 1
				}
				if a.seq < b.seq {
					return -1
				}
				return 1
			})
			e.drainCeil = bestBase + (1 << baseShift)
			return true
		}
		// Cascade: no wheel event precedes bestBase, so it becomes the
		// new placement reference; every event in the slot re-places at
		// a strictly lower level.
		if e.drainCeil < bestBase {
			e.drainCeil = bestBase
		}
		for _, ev := range evs {
			e.placeWheel(ev, bestBase)
		}
	}
}

// insertDrain merges a new event into the pending part of the drain run.
// The event's sequence number is larger than every resident one, so it
// slots after all events with at <= ev.at; since ev.at >= now, the position
// is never before the pop cursor.
func (e *Engine) insertDrain(ev *event) {
	d := e.drain
	lo, hi := e.drainPos, len(d)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d[mid].at <= ev.at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	d = append(d, nil)
	copy(d[lo+1:], d[lo:])
	d[lo] = ev
	e.drain = d
}

// purgeCancelled drops cancelled events from every occupied slot during a
// compaction sweep, releasing them to the free list.
func (w *wheel) purgeCancelled(e *Engine) {
	for l := range w {
		lv := &w[l]
		for wi, wbits := range lv.occ {
			for wbits != 0 {
				b := bits.TrailingZeros64(wbits)
				wbits &^= 1 << b
				idx := wi*64 + b
				slot := lv.slots[idx]
				k := 0
				for _, ev := range slot {
					if ev.cancel {
						e.release(ev)
					} else {
						slot[k] = ev
						k++
					}
				}
				for i := k; i < len(slot); i++ {
					slot[i] = nil
				}
				lv.slots[idx] = slot[:k]
				if k == 0 {
					lv.occ[wi] &^= 1 << b
				}
			}
		}
	}
}

// farHeap is a plain (at, seq) min-heap for events beyond the wheel
// horizon. Far events are never promoted into the wheel; the pop path
// merges the heap top against the drain head instead.
type farHeap []*event

func (h farHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *farHeap) push(ev *event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *farHeap) pop() *event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		h.siftDown(0)
	}
	return top
}

func (h farHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && h.less(right, left) {
			min = right
		}
		if !h.less(min, i) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// reinit restores the heap property after a compaction filtered the slice
// in place.
func (h farHeap) reinit() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}
