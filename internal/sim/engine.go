// Package sim provides the deterministic discrete-event simulation engine
// that drives every other component in flashfc. Time is modeled in integer
// nanoseconds; events scheduled for the same instant fire in the order they
// were scheduled, which makes whole-machine runs bit-for-bit reproducible for
// a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a simulated timestamp or duration in nanoseconds.
type Time int64

// Common durations, mirroring time.Duration style constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// String formats the time with an adaptive unit, e.g. "2.5s", "1.500ms" or
// "320ns". The unit cascade selects by magnitude: values of at least one
// second print in seconds (mixed values like 2*Second+500*Millisecond render
// as "2.5s", not "2500.000ms"), then milliseconds, then microseconds, then
// raw nanoseconds; negative values mirror their positive counterparts.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Second || t <= -Second:
		return trimZeros(fmt.Sprintf("%.3f", float64(t)/float64(Second))) + "s"
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// trimZeros drops trailing fractional zeros ("2.500" -> "2.5").
func trimZeros(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// event is a single scheduled callback.
type event struct {
	at     Time
	seq    uint64 // tiebreaker: FIFO among same-time events
	fn     func()
	cancel bool
	index  int // heap index, -1 when popped
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	live    int // events in the heap that are not cancelled
	rng     *rand.Rand
	stopped bool
	fired   uint64
	// compactions counts heap rebuilds that evicted cancelled events;
	// surfaced through the machine-wide metrics registry.
	compactions uint64
}

// NewEngine returns an engine whose clock starts at zero and whose random
// stream is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsFired reports how many events have executed so far; useful for
// simulator performance accounting in benchmarks.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending reports how many live (non-cancelled) events are still queued.
func (e *Engine) Pending() int { return e.live }

// Compactions reports how many cancelled-event heap compactions have run.
func (e *Engine) Compactions() uint64 { return e.compactions }

// Timer identifies a scheduled event so that it can be canceled.
type Timer struct {
	e  *Engine
	ev *event
}

// Cancel prevents the timer's callback from running. Canceling an
// already-fired or already-canceled timer is a no-op. It reports whether the
// callback was actually prevented.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancel || t.ev.index == -1 {
		return false
	}
	t.ev.cancel = true
	t.e.live--
	t.e.maybeCompact()
	return true
}

// compactMin is the heap size below which compaction is not worth a
// rebuild.
const compactMin = 64

// maybeCompact rebuilds the heap without its cancelled events once they
// outnumber the live ones. Protocol timeouts are armed per operation and
// almost always cancelled, so without this the heap accumulates dead
// entries until their timestamps come up; compaction keeps the heap — and
// every Push/Pop's log factor — proportional to the live event count.
func (e *Engine) maybeCompact() {
	if len(e.events) < compactMin || 2*e.live >= len(e.events) {
		return
	}
	e.compactions++
	kept := e.events[:0]
	for _, ev := range e.events {
		if ev.cancel {
			ev.index = -1
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = kept
	for i, ev := range e.events {
		ev.index = i
	}
	heap.Init(&e.events)
}

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// that is always a model bug.
func (e *Engine) At(at Time, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	e.live++
	return &Timer{e: e, ev: ev}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Stop aborts the current Run/RunUntil after the currently executing event
// returns.
func (e *Engine) Stop() { e.stopped = true }

// step executes the next event. It reports false when the queue is empty.
func (e *Engine) step(limit Time, bounded bool) bool {
	for len(e.events) > 0 {
		next := e.events[0]
		if bounded && next.at > limit {
			e.now = limit
			return false
		}
		heap.Pop(&e.events)
		if next.cancel {
			continue
		}
		e.live--
		e.now = next.at
		e.fired++
		next.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step(0, false) {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. It stops early if Stop is called.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && e.step(t, true) {
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}
