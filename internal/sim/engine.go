// Package sim provides the deterministic discrete-event simulation engine
// that drives every other component in flashfc. Time is modeled in integer
// nanoseconds; events scheduled for the same instant fire in the order they
// were scheduled, which makes whole-machine runs bit-for-bit reproducible for
// a given seed.
//
// The scheduler is a three-level hierarchical timing wheel (64 ns base slots,
// ~1 s horizon) with a binary-heap fallback for far-future timeouts and a
// free list that recycles event records across firings. Events pop in exactly
// the (time, sequence) order of a binary heap — the structure is a throughput
// optimization, never a semantic one.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a simulated timestamp or duration in nanoseconds.
type Time int64

// Common durations, mirroring time.Duration style constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// String formats the time with an adaptive unit, e.g. "2.5s", "1.500ms" or
// "320ns". The unit cascade selects by magnitude: values of at least one
// second print in seconds (mixed values like 2*Second+500*Millisecond render
// as "2.5s", not "2500.000ms"), then milliseconds, then microseconds, then
// raw nanoseconds; negative values mirror their positive counterparts.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Second || t <= -Second:
		return trimZeros(fmt.Sprintf("%.3f", float64(t)/float64(Second))) + "s"
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// trimZeros drops trailing fractional zeros ("2.500" -> "2.5").
func trimZeros(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Callback is the pre-bound event form: the arguments are stored inline in
// the pooled event record, so hot paths that would otherwise allocate a
// fresh closure per scheduling (per-flit hop delivery, MAGIC dispatch,
// processor retirement) schedule with zero heap allocations. a1 and a2 must
// be pointer-shaped values (pointers, funcs, interfaces) to stay
// allocation-free; integers ride in u.
type Callback func(a1, a2 any, u uint64)

// event is a single scheduled callback. Records are recycled through the
// engine's free list; gen distinguishes a record's successive scheduling
// lives so that a stale Timer cannot cancel its slot's next tenant.
type event struct {
	at     Time
	seq    uint64 // tiebreaker: FIFO among same-time events
	fn     func()
	cb     Callback
	a1, a2 any
	u      uint64
	gen    uint64
	cancel bool
}

// Engine is a deterministic discrete-event scheduler. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now  Time
	seq  uint64
	live int // scheduled events that are not cancelled
	// total counts resident event records: scheduled minus popped. It is
	// the wheel-era equivalent of the old heap's len(events), and the
	// compaction trigger below is computed from it so that the
	// sim.heap_compactions metric stays bit-identical across the engine
	// swap.
	total       int
	seed        int64
	src         *countingSource
	rng         *rand.Rand
	stopped     bool
	fired       uint64
	compactions uint64

	wheel wheel
	far   farHeap
	// drain is the sorted run of due events pulled from the reached wheel
	// slot; drainPos is the pop cursor and drainCeil the exclusive time
	// bound below which new schedulings must be merged into drain rather
	// than placed in the wheel.
	drain     []*event
	drainPos  int
	drainCeil Time
	free      []*event
}

// NewEngine returns an engine whose clock starts at zero and whose random
// stream is seeded with seed.
func NewEngine(seed int64) *Engine {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Engine{seed: seed, src: src, rng: rand.New(src)}
}

// countingSource wraps the standard PRNG source and counts state advances.
// Both Int63 and Uint64 step the underlying generator exactly once, so a
// snapshot can record the draw count and a fork can replay it with Uint64
// alone, regardless of which rand.Rand methods consumed the stream. The
// wrapper delegates both source methods, so the produced stream is
// bit-identical to an unwrapped rand.NewSource (pinned seed goldens are
// unaffected).
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsFired reports how many events have executed so far; useful for
// simulator performance accounting in benchmarks.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending reports how many live (non-cancelled) events are still queued.
func (e *Engine) Pending() int { return e.live }

// Compactions reports how many cancelled-event compactions have run.
func (e *Engine) Compactions() uint64 { return e.compactions }

// Timer identifies a scheduled event so that it can be canceled. It is a
// plain value — scheduling never allocates a Timer — and the zero Timer is
// valid: Cancel on it is a no-op.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint64
}

// Cancel prevents the timer's callback from running. Canceling an
// already-fired or already-canceled timer is a no-op. It reports whether the
// callback was actually prevented.
func (t Timer) Cancel() bool {
	if t.e == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.cancel {
		return false
	}
	t.ev.cancel = true
	t.e.live--
	t.e.maybeCompact()
	return true
}

// compactMin is the resident-event count below which compaction is not
// worth a sweep.
const compactMin = 64

// maybeCompact discards cancelled events from every structure (drain, wheel
// slots, far heap) once they outnumber the live ones. Protocol timeouts are
// armed per operation and almost always cancelled, so without this the
// queue accumulates dead entries until their timestamps come up. The
// trigger condition depends only on the resident and live counts — both
// structure-independent — so compaction counts match the old heap engine
// exactly.
func (e *Engine) maybeCompact() {
	if e.total < compactMin || 2*e.live >= e.total {
		return
	}
	e.compactions++
	w := e.drainPos
	for i := e.drainPos; i < len(e.drain); i++ {
		if ev := e.drain[i]; ev.cancel {
			e.release(ev)
		} else {
			e.drain[w] = ev
			w++
		}
	}
	for i := w; i < len(e.drain); i++ {
		e.drain[i] = nil
	}
	e.drain = e.drain[:w]
	e.wheel.purgeCancelled(e)
	k := 0
	for _, ev := range e.far {
		if ev.cancel {
			e.release(ev)
		} else {
			e.far[k] = ev
			k++
		}
	}
	for i := k; i < len(e.far); i++ {
		e.far[i] = nil
	}
	e.far = e.far[:k]
	e.far.reinit()
	e.total = e.live
}

// alloc takes an event record off the free list (or mints one) and stamps
// it with the next sequence number.
func (e *Engine) alloc(at Time) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = e.seq
	e.seq++
	return ev
}

// release returns a popped or purged event record to the free list,
// retiring its generation so stale Timers can no longer reach it.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.cb = nil
	ev.a1 = nil
	ev.a2 = nil
	ev.u = 0
	ev.cancel = false
	e.free = append(e.free, ev)
}

// schedule places a freshly allocated event and returns its Timer.
func (e *Engine) schedule(ev *event) Timer {
	e.live++
	e.total++
	if ev.at < e.drainCeil {
		e.insertDrain(ev)
	} else {
		e.placeWheel(ev, e.ref())
	}
	return Timer{e: e, ev: ev, gen: ev.gen}
}

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// that is always a model bug.
func (e *Engine) At(at Time, fn func()) Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := e.alloc(at)
	ev.fn = fn
	return e.schedule(ev)
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// AtCall schedules the pre-bound cb(a1, a2, u) at absolute time at. Unlike
// At with a capturing closure, the arguments travel inside the pooled event
// record, so the call allocates nothing.
func (e *Engine) AtCall(at Time, cb Callback, a1, a2 any, u uint64) Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := e.alloc(at)
	ev.cb = cb
	ev.a1 = a1
	ev.a2 = a2
	ev.u = u
	return e.schedule(ev)
}

// AfterCall schedules the pre-bound cb(a1, a2, u) d nanoseconds from now
// without allocating.
func (e *Engine) AfterCall(d Time, cb Callback, a1, a2 any, u uint64) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.AtCall(e.now+d, cb, a1, a2, u)
}

// Stop aborts the current Run/RunUntil after the currently executing event
// returns.
func (e *Engine) Stop() { e.stopped = true }

// peekNext surfaces the earliest pending event — refilling the drain run
// from the wheel as needed — without consuming it. The refill mutations are
// invisible to callers: they never change pop order.
func (e *Engine) peekNext() *event {
	for e.drainPos >= len(e.drain) {
		if !e.refill() {
			if len(e.far) > 0 {
				return e.far[0]
			}
			return nil
		}
	}
	d := e.drain[e.drainPos]
	if len(e.far) > 0 {
		if f := e.far[0]; f.at < d.at || (f.at == d.at && f.seq < d.seq) {
			return f
		}
	}
	return d
}

// step executes the next event. It reports false when the queue is empty.
func (e *Engine) step(limit Time, bounded bool) bool {
	for {
		next := e.peekNext()
		if next == nil {
			return false
		}
		if bounded && next.at > limit {
			e.now = limit
			return false
		}
		if len(e.far) > 0 && next == e.far[0] {
			e.far.pop()
		} else {
			e.drain[e.drainPos] = nil
			e.drainPos++
		}
		e.total--
		if next.cancel {
			e.release(next)
			continue
		}
		e.live--
		e.now = next.at
		e.fired++
		fn, cb, a1, a2, u := next.fn, next.cb, next.a1, next.a2, next.u
		e.release(next)
		if cb != nil {
			cb(a1, a2, u)
		} else {
			fn()
		}
		return true
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step(0, false) {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. It stops early if Stop is called.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && e.step(t, true) {
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}
