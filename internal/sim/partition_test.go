package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// progResult captures everything observable about one partitioned run of the
// randomized program: per-region handler logs plus the deterministic
// coordinator counters. Two runs are "bit-identical" when these compare
// deep-equal.
type progResult struct {
	Logs     [][]string
	Now      Time
	Fired    uint64
	Merged   uint64
	Barriers uint64
	Idle     []uint64
	MergedIn []uint64
}

// runRandomProgram executes a self-expanding randomized event program on a
// partitioned simulation: every handler logs (region, time, id), then uses
// its own region's deterministic RNG to schedule further local events and
// cross-region sends (always at or beyond the lookahead). All mutable state
// is region-confined, per the Partitioned contract.
func runRandomProgram(seed int64, regions, workers int, global bool, chunk Time) progResult {
	const L = Time(750)
	p := NewPartitioned(seed, regions, L, workers)
	if global {
		p.SetGlobalFrom(0)
	}
	logs := make([][]string, regions)
	nextID := make([]uint64, regions)

	var handler func(region int, depth int) func()
	handler = func(region int, depth int) func() {
		return func() {
			e := p.Region(region)
			id := nextID[region]
			nextID[region]++
			logs[region] = append(logs[region], fmt.Sprintf("r%d@%d #%d d%d", region, e.Now(), id, depth))
			if depth >= 5 {
				return
			}
			r := e.Rand()
			for j, n := 0, r.Intn(3); j < n; j++ {
				if regions > 1 && r.Intn(3) == 0 {
					dst := r.Intn(regions)
					at := e.Now() + L + Time(r.Intn(4000))
					p.Send(region, dst, at, handler(dst, depth+1), nil, nil, nil, 0)
				} else {
					e.After(Time(r.Intn(2500)), handler(region, depth+1))
				}
			}
		}
	}

	for i := 0; i < regions; i++ {
		e := p.Region(i)
		for k := 0; k < 4; k++ {
			e.At(Time(1+97*i+389*k), handler(i, 0))
		}
	}

	if chunk > 0 {
		for p.Pending() > 0 {
			p.RunUntil(p.Now() + chunk)
		}
	} else {
		p.Run()
	}

	res := progResult{Logs: logs, Now: p.Now(), Fired: p.EventsFired(), Merged: p.Merged(), Barriers: p.Barriers()}
	for i := 0; i < regions; i++ {
		_, idle, min := p.RegionLoad(i)
		res.Idle = append(res.Idle, idle)
		res.MergedIn = append(res.MergedIn, min)
	}
	return res
}

// TestPartitionedWorkerCountInvariance is the core tentpole property: the
// same program, same regions, same drive schedule must produce bit-identical
// results whether the regions are multiplexed onto 1, 2, or R workers, or
// run in the deterministic global interleave. Randomized across seeds and
// region counts; run under -race in CI so the parallel windows are also
// exercised by the race detector.
func TestPartitionedWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9106))
	for trial := 0; trial < 12; trial++ {
		seed := rng.Int63()
		regions := 2 + rng.Intn(7)
		ref := runRandomProgram(seed, regions, 1, false, 0)
		if len(ref.Logs[0]) == 0 {
			t.Fatalf("trial %d: degenerate program, no events in region 0", trial)
		}
		for _, workers := range []int{2, 4, regions} {
			got := runRandomProgram(seed, regions, workers, false, 0)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("trial %d (seed %d, regions %d): workers=%d diverged from workers=1\nref: %+v\ngot: %+v",
					trial, seed, regions, workers, ref, got)
			}
		}
		if got := runRandomProgram(seed, regions, 4, true, 0); !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d (seed %d, regions %d): global mode diverged from parallel\nref: %+v\ngot: %+v",
				trial, seed, regions, ref, got)
		}
	}
}

// TestPartitionedRunUntilDriveInvariance checks that driving the same
// program through RunUntil chunks (the machine layer's drive loop) matches
// Run() when the chunk is a multiple of the lookahead, and is internally
// worker-count-invariant for any chunk size.
func TestPartitionedRunUntilDriveInvariance(t *testing.T) {
	const seed, regions = 0x7e57, 5
	ref := runRandomProgram(seed, regions, 1, false, 0)
	for _, chunk := range []Time{750, 3000} { // multiples of L: same windows as Run()
		got := runRandomProgram(seed, regions, 4, false, chunk)
		got.Now, got.Barriers = ref.Now, ref.Barriers // drive loop overshoots Run()'s final clock
		if !reflect.DeepEqual(got.Logs, ref.Logs) || got.Fired != ref.Fired || got.Merged != ref.Merged {
			t.Fatalf("chunk %v diverged from Run(): ref %+v got %+v", chunk, ref, got)
		}
	}
	// Odd chunk sizes shorten windows; execution must still be
	// worker-count-invariant for a fixed drive schedule.
	a := runRandomProgram(seed, regions, 1, false, 1337)
	b := runRandomProgram(seed, regions, 4, false, 1337)
	c := runRandomProgram(seed, regions, 4, true, 1337)
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
		t.Fatalf("odd-chunk drive not worker-invariant:\n1w: %+v\n4w: %+v\nglobal: %+v", a, b, c)
	}
}

// TestPartitionedSingleRegionMatchesEngine pins the "sequential = 1 region"
// contract: at one region, the partitioned coordinator fires exactly the
// same events in the same order as a plain Engine with the same seed.
func TestPartitionedSingleRegionMatchesEngine(t *testing.T) {
	const seed = int64(0x5eed)
	part := runRandomProgram(seed, 1, 1, false, 0)

	e := NewEngine(seed)
	var log []string
	var next uint64
	var handler func(depth int) func()
	handler = func(depth int) func() {
		return func() {
			id := next
			next++
			log = append(log, fmt.Sprintf("r0@%d #%d d%d", e.Now(), id, depth))
			if depth >= 5 {
				return
			}
			r := e.Rand()
			for j, n := 0, r.Intn(3); j < n; j++ {
				e.After(Time(r.Intn(2500)), handler(depth+1))
			}
		}
	}
	for k := 0; k < 4; k++ {
		e.At(Time(1+389*k), handler(0))
	}
	e.Run()

	if !reflect.DeepEqual(part.Logs[0], log) {
		t.Fatalf("single-region partitioned log diverged from plain engine:\npart: %v\nengine: %v", part.Logs[0], log)
	}
	if part.Fired != e.EventsFired() {
		t.Fatalf("fired count: partitioned %d, engine %d", part.Fired, e.EventsFired())
	}
}

// TestPartitionedEqualTimestampMergeOrder pins the cross-region tie-break:
// messages delivering at the same instant merge in (sentAt, srcRegion,
// srcIndex) order regardless of worker count or execution mode.
func TestPartitionedEqualTimestampMergeOrder(t *testing.T) {
	const L = Time(1000)
	run := func(workers int, global bool) []string {
		p := NewPartitioned(1, 4, L, workers)
		if global {
			p.SetGlobalFrom(0)
		}
		var log []string
		note := func(s string) func() { return func() { log = append(log, s) } }
		// All messages deliver to region 3 at t=2100. Region 2 sends
		// earliest (sentAt 5), so it merges first despite the higher
		// region index; regions 0 and 1 send at the same instant (t=10)
		// and order by (srcRegion, srcIndex).
		p.Region(2).At(5, func() { p.Send(2, 3, 2100, note("r2#0"), nil, nil, nil, 0) })
		p.Region(0).At(10, func() {
			p.Send(0, 3, 2100, note("r0#0"), nil, nil, nil, 0)
			p.Send(0, 3, 2100, note("r0#1"), nil, nil, nil, 0)
		})
		p.Region(1).At(10, func() { p.Send(1, 3, 2100, note("r1#0"), nil, nil, nil, 0) })
		p.Run()
		return log
	}
	want := []string{"r2#0", "r0#0", "r0#1", "r1#0"}
	for _, workers := range []int{1, 2, 4} {
		if got := run(workers, false); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d merge order %v, want %v", workers, got, want)
		}
	}
	if got := run(4, true); !reflect.DeepEqual(got, want) {
		t.Fatalf("global mode merge order %v, want %v", got, want)
	}
}

// TestPartitionedLookaheadViolationPanics pins the Send precondition: a
// delivery before the end of the current window is a programming error.
func TestPartitionedLookaheadViolationPanics(t *testing.T) {
	p := NewPartitioned(1, 2, 1000, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below the lookahead floor did not panic")
		}
	}()
	p.Send(0, 1, 999, func() {}, nil, nil, nil, 0)
}

// TestPartitionedRunUntilContract mirrors Engine.RunUntil: events at
// exactly t fire, later events stay queued, and every region clock lands
// on t.
func TestPartitionedRunUntilContract(t *testing.T) {
	p := NewPartitioned(1, 3, 500, 2)
	var fired []string
	mark := func(s string) func() { return func() { fired = append(fired, s) } }
	p.Region(0).At(999, mark("a@999"))
	p.Region(1).At(1000, mark("b@1000"))
	p.Region(2).At(1001, mark("c@1001"))
	p.SetGlobalFrom(0) // shared `fired` slice: needs the global interleave
	p.RunUntil(1000)
	if want := []string{"a@999", "b@1000"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("RunUntil(1000) fired %v, want %v", fired, want)
	}
	for i := 0; i < 3; i++ {
		if now := p.Region(i).Now(); now != 1000 {
			t.Fatalf("region %d clock %v after RunUntil(1000)", i, now)
		}
	}
	if p.Pending() != 1 {
		t.Fatalf("pending %d after RunUntil(1000), want 1", p.Pending())
	}
	p.RunUntil(1001)
	if want := []string{"a@999", "b@1000", "c@1001"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("after RunUntil(1001) fired %v, want %v", fired, want)
	}
}

// TestPartitionedGlobalModeCrossRegionScheduling pins the global-mode
// loosening: handlers may schedule directly on other regions' engines (the
// recovery path relies on this), because the interleave keeps all clocks
// within one window.
func TestPartitionedGlobalModeCrossRegionScheduling(t *testing.T) {
	p := NewPartitioned(1, 3, 1000, 4)
	p.SetGlobalFrom(0)
	var log []string
	p.Region(0).At(100, func() {
		log = append(log, "r0@100")
		p.Region(2).At(100, func() { log = append(log, "r2@100-direct") })
		p.Region(1).After(50, func() { log = append(log, "r1@150-direct") })
	})
	p.Run()
	want := []string{"r0@100", "r2@100-direct", "r1@150-direct"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("global-mode direct scheduling log %v, want %v", log, want)
	}
}

// TestPartitionedSetGlobalFromMidRun checks the deterministic mode switch:
// parallel windows before the threshold, global interleave after, with
// results identical at any worker count.
func TestPartitionedSetGlobalFromMidRun(t *testing.T) {
	run := func(workers int) progResult {
		const L = Time(750)
		p := NewPartitioned(42, 4, L, workers)
		logs := make([][]string, 4)
		for i := 0; i < 4; i++ {
			i := i
			e := p.Region(i)
			for k := 0; k < 3; k++ {
				k := k
				e.At(Time(100+500*k+13*i), func() {
					logs[i] = append(logs[i], fmt.Sprintf("r%d@%d", i, e.Now()))
				})
			}
		}
		p.OnBarrier(func(end Time) {
			if end == 750 {
				p.SetGlobalFrom(end) // switch after the first window
			}
		})
		p.Run()
		if !p.GlobalActive() {
			t.Fatal("global mode never engaged")
		}
		return progResult{Logs: logs, Now: p.Now(), Fired: p.EventsFired(), Barriers: p.Barriers()}
	}
	ref := run(1)
	if got := run(4); !reflect.DeepEqual(got, ref) {
		t.Fatalf("mid-run mode switch diverged: 1w %+v, 4w %+v", ref, got)
	}
}

// TestPartitionedFromEngines covers the snapshot-rehydration constructor:
// equal clocks resume cleanly, mismatched clocks panic.
func TestPartitionedFromEngines(t *testing.T) {
	a, b := NewEngine(1), NewEngine(2)
	a.RunUntil(5000)
	b.RunUntil(5000)
	p := NewPartitionedFromEngines([]*Engine{a, b}, 300, 2)
	if p.Now() != 5000 {
		t.Fatalf("resumed coordinator clock %v, want 5000", p.Now())
	}
	var ok bool
	p.Region(0).After(1000, func() { ok = true })
	p.Run()
	if !ok {
		t.Fatal("event scheduled after rehydration never fired")
	}

	c := NewEngine(3)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched region clocks did not panic")
		}
	}()
	NewPartitionedFromEngines([]*Engine{a, c}, 300, 2)
}
