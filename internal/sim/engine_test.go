package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{320, "320ns"},
		{Microsecond + 500, "1.500us"},
		{Millisecond, "1.000ms"},
		{150 * Millisecond, "150.000ms"},
		// Mixed-unit values >= 1s must print in seconds, not a huge
		// millisecond count (regression: 2.5s rendered as "2500.000ms").
		{2*Second + 500*Millisecond, "2.5s"},
		{Second + Millisecond, "1.001s"},
		{1500 * Millisecond, "1.5s"},
		{10*Second + 250*Millisecond, "10.25s"},
		{2 * Second, "2s"},
		// Negatives mirror their positive counterparts through the cascade.
		{-320, "-320ns"},
		{-(Microsecond + 500), "-1.500us"},
		{-150 * Millisecond, "-150.000ms"},
		{-(2*Second + 500*Millisecond), "-2.5s"},
		{-3 * Second, "-3s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestAfterOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.After(10, func() { order = append(order, 1) })
	e.After(5, func() { order = append(order, 0) })
	e.After(10, func() { order = append(order, 2) }) // same time: FIFO
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v, want [0 1 2]", order)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if len(ticks) < 5 {
			e.After(7, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	want := []Time{0, 7, 14, 21, 28}
	for i, w := range want {
		if ticks[i] != w {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.After(10, func() { fired++ })
	e.After(20, func() { fired++ })
	e.After(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", e.Now())
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", e.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.After(10, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	e.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(10, func() {})
	e.Run()
	if tm.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	for i := 0; i < 10; i++ {
		e.After(Time(i), func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	// Run can be resumed after Stop.
	e.Run()
	if n != 10 {
		t.Fatalf("after resume n = %d, want 10", n)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		var log []Time
		for i := 0; i < 100; i++ {
			d := Time(e.Rand().Intn(1000))
			e.After(d, func() { log = append(log, e.Now()) })
		}
		e.Run()
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPending(t *testing.T) {
	e := NewEngine(1)
	t1 := e.After(10, func() {})
	e.After(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	t1.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestCancelCompactsHeap(t *testing.T) {
	e := NewEngine(1)
	var timers []Timer
	for i := 0; i < 1000; i++ {
		timers = append(timers, e.After(Time(i+1), func() {}))
	}
	// Cancel all but a handful; the heap must shrink rather than retain
	// the dead entries until their timestamps come up.
	for i, tm := range timers {
		if i%100 != 0 {
			tm.Cancel()
		}
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	if n := e.total; n >= 500 {
		t.Fatalf("queue holds %d resident events after mass cancel, want compacted", n)
	}
	if e.Compactions() == 0 {
		t.Fatal("Compactions() = 0 after a mass cancel that shrank the heap")
	}
	// Cancelling a compacted-away timer again stays a no-op.
	if timers[1].Cancel() {
		t.Fatal("re-cancel of compacted timer reported true")
	}
	e.Run()
	if fired := int(e.EventsFired()); fired != 10 {
		t.Fatalf("fired = %d, want the 10 surviving events", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", e.Pending())
	}
}

func TestCompactionPreservesFiringOrder(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	var timers []Timer
	for i := 0; i < 256; i++ {
		at := Time((i * 37) % 251)
		timers = append(timers, e.At(at, func() { fired = append(fired, at) }))
	}
	for i, tm := range timers {
		if i%4 != 0 {
			tm.Cancel()
		}
	}
	e.Run()
	if len(fired) != 64 {
		t.Fatalf("fired %d events, want 64", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of order after compaction: %v", fired)
		}
	}
}

func TestPendingTracksScheduleFireCancel(t *testing.T) {
	e := NewEngine(1)
	if e.Pending() != 0 {
		t.Fatal("fresh engine has pending events")
	}
	tm := e.After(10, func() { e.After(5, func() {}) })
	e.After(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(12) // fires tm's callback, which schedules one more
	if e.Pending() != 2 {
		t.Fatalf("Pending after partial run = %d, want 2", e.Pending())
	}
	if tm.Cancel() {
		t.Fatal("Cancel after fire must report false")
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", e.Pending())
	}
}

// Property: events always fire in nondecreasing time order regardless of the
// insertion order.
func TestQuickMonotonicFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var fired []Time
		for _, d := range delays {
			e.After(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RunUntil never executes an event scheduled after the limit.
func TestQuickRunUntilBound(t *testing.T) {
	f := func(delays []uint16, limit uint16) bool {
		e := NewEngine(7)
		ok := true
		for _, d := range delays {
			d := d
			e.After(Time(d), func() {
				if Time(d) > Time(limit) {
					ok = false
				}
			})
		}
		e.RunUntil(Time(limit))
		return ok && e.Now() == Time(limit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
