package sim

import (
	"math/rand"
	"testing"
)

// The countingSource wrapper must be invisible: the engine's random stream
// has pinned goldens downstream, so wrapping the stdlib source may not
// perturb a single draw, whatever mix of Rand methods consumes it.
func TestCountingSourceStreamIdentity(t *testing.T) {
	e := NewEngine(42)
	raw := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if g, w := e.Rand().Int63n(1<<40), raw.Int63n(1<<40); g != w {
				t.Fatalf("draw %d: Int63n %d != %d", i, g, w)
			}
		case 1:
			if g, w := e.Rand().Uint64(), raw.Uint64(); g != w {
				t.Fatalf("draw %d: Uint64 %d != %d", i, g, w)
			}
		case 2:
			if g, w := e.Rand().Float64(), raw.Float64(); g != w {
				t.Fatalf("draw %d: Float64 %v != %v", i, g, w)
			}
		case 3:
			if g, w := e.Rand().Intn(97), raw.Intn(97); g != w {
				t.Fatalf("draw %d: Intn %d != %d", i, g, w)
			}
		}
	}
}

// A fork's random stream must resume exactly where the source's stream
// stood at snapshot time, for any mix of draw kinds before the snapshot.
func TestSnapshotRNGFastForward(t *testing.T) {
	e := NewEngine(7)
	for i := 0; i < 257; i++ {
		switch i % 3 {
		case 0:
			e.Rand().Int63n(1000)
		case 1:
			e.Rand().Float64()
		case 2:
			e.Rand().Uint64()
		}
	}
	f := NewEngineFromSnapshot(e.Snapshot())
	for i := 0; i < 100; i++ {
		if g, w := f.Rand().Uint64(), e.Rand().Uint64(); g != w {
			t.Fatalf("post-fork draw %d: %d != %d", i, g, w)
		}
	}
}

// exercise runs a deterministic scheduling script on an engine: a chain of
// events that re-schedule, cancel timers (leaving residue for compaction),
// and consume the random stream.
func exercise(e *Engine, rounds int) {
	for r := 0; r < rounds; r++ {
		var cancels []Timer
		for i := 0; i < 100; i++ {
			d := Time(e.Rand().Int63n(int64(Millisecond)))
			tm := e.After(d, func() {})
			if i%3 == 0 {
				cancels = append(cancels, tm)
			}
		}
		// Far-future timeouts that are always cancelled, like protocol
		// timers.
		for i := 0; i < 20; i++ {
			cancels = append(cancels, e.After(2*Second+Time(i), func() {}))
		}
		for _, tm := range cancels {
			tm.Cancel()
		}
		e.Run()
	}
}

// Continuing the source engine after a snapshot and continuing a fork must
// produce identical clocks, counters, and random streams: the snapshot may
// not disturb the source, and the fork may not diverge from it.
func TestSnapshotForkContinuesIdentically(t *testing.T) {
	e := NewEngine(99)
	exercise(e, 3)
	if e.Pending() != 0 {
		t.Fatalf("exercise left %d live events", e.Pending())
	}
	f := NewEngineFromSnapshot(e.Snapshot())

	if f.Now() != e.Now() || f.EventsFired() != e.EventsFired() || f.Compactions() != e.Compactions() {
		t.Fatalf("fork state %v/%d/%d != source %v/%d/%d",
			f.Now(), f.EventsFired(), f.Compactions(), e.Now(), e.EventsFired(), e.Compactions())
	}
	exercise(e, 3)
	exercise(f, 3)
	if f.Now() != e.Now() {
		t.Fatalf("clocks diverged: fork %v, source %v", f.Now(), e.Now())
	}
	if f.EventsFired() != e.EventsFired() {
		t.Fatalf("fired diverged: fork %d, source %d", f.EventsFired(), e.EventsFired())
	}
	if f.Compactions() != e.Compactions() {
		t.Fatalf("compactions diverged: fork %d, source %d", f.Compactions(), e.Compactions())
	}
	if f.seq != e.seq {
		t.Fatalf("seq diverged: fork %d, source %d", f.seq, e.seq)
	}
	if g, w := f.Rand().Uint64(), e.Rand().Uint64(); g != w {
		t.Fatalf("rng diverged: fork %d, source %d", g, w)
	}
}

func TestSnapshotPanicsWhenLive(t *testing.T) {
	e := NewEngine(1)
	e.After(Microsecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot on a non-quiescent engine did not panic")
		}
	}()
	e.Snapshot()
}
