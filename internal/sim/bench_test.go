package sim

import "testing"

// The timer pool recycles event records across firings, and AfterCall takes
// pointer-shaped arguments precisely so that the schedule→fire→release cycle
// touches the heap zero times in steady state. testing.AllocsPerRun makes
// that a failing benchmark, not a trend to eyeball: any regression (a
// closure sneaking back in, a pool leak, a drain-buffer reallocation) trips
// the guard immediately.

func BenchmarkTimerPoolPath(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	// Warm the pool and the wheel-slot/drain capacities.
	for i := 0; i < 256; i++ {
		e.After(Time(i%7)*10, fn)
		e.RunUntil(e.Now() + 100)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		e.After(100, fn)
		e.RunUntil(e.Now() + 200)
	}); allocs != 0 {
		b.Fatalf("timer pool path allocates %.2f allocs/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(100, fn)
		e.RunUntil(e.Now() + 200)
	}
}

func BenchmarkTimerPoolCallPath(b *testing.B) {
	e := NewEngine(1)
	var fired uint64
	cb := Callback(func(a1, a2 any, u uint64) { fired += u })
	arg := &struct{ x int }{}
	for i := 0; i < 256; i++ {
		e.AfterCall(Time(i%7)*10, cb, arg, nil, 1)
		e.RunUntil(e.Now() + 100)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		e.AfterCall(100, cb, arg, nil, 1)
		e.RunUntil(e.Now() + 200)
	}); allocs != 0 {
		b.Fatalf("AfterCall path allocates %.2f allocs/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AfterCall(100, cb, arg, nil, 1)
		e.RunUntil(e.Now() + 200)
	}
	if fired == 0 {
		b.Fatal("callback never ran")
	}
}

// Cancelling a pooled timer must also be free: Timer is a value, and Cancel
// only flips a flag on the still-resident record.
func BenchmarkTimerCancelPath(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 256; i++ {
		tm := e.After(50, fn)
		tm.Cancel()
		e.RunUntil(e.Now() + 100)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		tm := e.After(50, fn)
		tm.Cancel()
		e.RunUntil(e.Now() + 100)
	}); allocs != 0 {
		b.Fatalf("timer cancel path allocates %.2f allocs/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.After(50, fn)
		tm.Cancel()
		e.RunUntil(e.Now() + 100)
	}
}
