package sim

import "fmt"

// EngineSnapshot is a frozen image of a quiescent engine: everything a
// fresh engine needs to continue the simulation bit-identically to the
// source — the clock, the sequence and fired counters (event order and the
// sim.events_fired metric), the compaction count, and the random stream
// expressed as (seed, draws) so a fork can replay it without sharing the
// generator.
//
// Snapshots exist only at quiescent points (Pending() == 0): events hold
// closures over live component state and cannot be captured mid-flight.
// The machine layer asserts the stronger whole-machine quiescence; the
// engine enforces its own part and panics otherwise.
type EngineSnapshot struct {
	Seed        int64
	Draws       uint64
	Now         Time
	Seq         uint64
	Fired       uint64
	Compactions uint64
}

// Snapshot captures the engine at a quiescent point. It panics if live
// events remain. As a side effect it purges cancelled-event residue from
// the source engine — at quiescence every resident record is cancelled —
// so the source and any engine rehydrated from the snapshot hold the same
// (empty) structures and therefore hit identical compaction points from
// here on. The purge is bookkeeping, not a compaction: the
// sim.heap_compactions counter is untouched.
func (e *Engine) Snapshot() EngineSnapshot {
	if e.live != 0 {
		panic(fmt.Sprintf("sim: Snapshot with %d live events; snapshots require a quiescent engine", e.live))
	}
	e.purgeResidue()
	return EngineSnapshot{
		Seed:        e.seed,
		Draws:       e.src.n,
		Now:         e.now,
		Seq:         e.seq,
		Fired:       e.fired,
		Compactions: e.compactions,
	}
}

// purgeResidue releases every resident (necessarily cancelled) event from
// the drain run, the wheel and the far heap, leaving total == live == 0.
func (e *Engine) purgeResidue() {
	for i := e.drainPos; i < len(e.drain); i++ {
		e.release(e.drain[i])
	}
	for i := range e.drain {
		e.drain[i] = nil
	}
	e.drain = e.drain[:0]
	e.drainPos = 0
	e.drainCeil = 0
	e.wheel.purgeCancelled(e)
	for i, ev := range e.far {
		e.release(ev)
		e.far[i] = nil
	}
	e.far = e.far[:0]
	e.total = 0
}

// NewEngineFromSnapshot rehydrates an independent engine from a snapshot:
// the random stream is re-seeded and fast-forwarded by the recorded draw
// count, and the clock and counters resume where the source left off. The
// fork shares nothing with the source engine.
func NewEngineFromSnapshot(s EngineSnapshot) *Engine {
	e := NewEngine(s.Seed)
	for i := uint64(0); i < s.Draws; i++ {
		e.src.src.Uint64()
	}
	e.src.n = s.Draws
	e.now = s.Now
	e.seq = s.Seq
	e.fired = s.Fired
	e.compactions = s.Compactions
	return e
}
