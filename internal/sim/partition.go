package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Partitioned runs one simulation as a set of region-local Engines advanced
// in conservative lookahead windows — classic conservative parallel
// discrete-event simulation behind the existing Engine API.
//
// The model: the caller fixes a decomposition of the simulated system into
// regions (a pure function of the system, never of the host), gives each
// region its own Engine, and promises that event handlers touch only their
// own region's state. Cross-region interactions go through Send, which
// requires a delay of at least the lookahead L. Execution then proceeds in
// windows of length L: within a window [W, W+L) every region's engine runs
// independently (in parallel on up to `workers` goroutines), because no
// event it fires can affect another region before W+L. At the window
// barrier, all cross-region messages produced during the window are merged
// into their destination engines in a deterministic global order.
//
// Determinism. Each region's execution is sequential and deterministic, so
// the only ordering freedom parallelism introduces is the merge order of
// cross-region messages. Send stamps every message with the key
// (deliverAt, sentAt, srcRegion, srcIndex) — all four components are
// properties of the simulation, not of the host — and the barrier inserts
// messages in exactly that order. Equal-timestamp messages from different
// regions therefore tie-break identically whether the windows ran on one
// worker or sixteen: results are bit-identical at any worker count,
// including all (time, sequence) ties.
//
// Global mode. Some simulation phases (fault injection, recovery protocols)
// legitimately touch cross-region state from a single logical thread of
// control. SetGlobalFrom(t) switches execution to a deterministic global
// interleave for every window from t on: one goroutine steps the regions'
// engines event by event in (time, region) order. Global mode changes the
// execution strategy only — windows, barriers and Send semantics are
// unchanged — and because nothing runs concurrently, handlers may touch any
// region's state and schedule directly on any region's engine.
type Partitioned struct {
	engines   []*Engine
	lookahead Time
	workers   int

	windowStart Time
	globalFrom  Time // windows starting at or after this run in global mode
	haveGlobal  bool

	outbox  [][]xmsg // per source region, filled during a window
	sendIdx []uint32 // per source region, reset at each barrier

	// onBarrier, when non-nil, runs single-threaded after every barrier
	// merge with the barrier time. The machine layer uses it to drain
	// region-local completion queues into machine-wide state.
	onBarrier func(Time)

	barriers uint64
	merged   uint64
	// Per-region deterministic load/stall accounting, exposed so the
	// machine can publish per-partition instruments.
	idleWindows []uint64 // windows in which the region fired no events
	mergedIn    []uint64 // cross-region events merged into the region
}

// xmsg is one cross-region message awaiting its barrier merge.
type xmsg struct {
	dst    int
	at     Time // delivery time
	sent   Time // send time (first merge tiebreak)
	src    int32
	idx    uint32 // per-source send index within the window
	fn     func()
	cb     Callback
	a1, a2 any
	u      uint64
}

// splitmix64 decorrelates per-region engine seeds from the base seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewPartitioned builds a coordinator over `regions` fresh engines with the
// given lookahead window and worker budget. Region 0's engine uses the base
// seed itself; the others use decorrelated derived seeds.
func NewPartitioned(seed int64, regions int, lookahead Time, workers int) *Partitioned {
	if regions < 1 {
		panic("sim: partitioned simulation needs at least one region")
	}
	engines := make([]*Engine, regions)
	for i := range engines {
		s := seed
		if i > 0 {
			s = int64(splitmix64(uint64(seed) + uint64(i)))
		}
		engines[i] = NewEngine(s)
	}
	return NewPartitionedFromEngines(engines, lookahead, workers)
}

// NewPartitionedFromEngines builds a coordinator over pre-built engines —
// the rehydration path for machines restored from snapshots. All engines
// must share one clock value; windows resume from it.
func NewPartitionedFromEngines(engines []*Engine, lookahead Time, workers int) *Partitioned {
	if len(engines) == 0 {
		panic("sim: partitioned simulation needs at least one region")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	now := engines[0].Now()
	for i, e := range engines {
		if e.Now() != now {
			panic(fmt.Sprintf("sim: region %d clock %v differs from region 0 clock %v", i, e.Now(), now))
		}
	}
	return &Partitioned{
		engines:     engines,
		lookahead:   lookahead,
		workers:     workers,
		windowStart: now,
		outbox:      make([][]xmsg, len(engines)),
		sendIdx:     make([]uint32, len(engines)),
		idleWindows: make([]uint64, len(engines)),
		mergedIn:    make([]uint64, len(engines)),
	}
}

// Regions returns the number of regions.
func (p *Partitioned) Regions() int { return len(p.engines) }

// Region returns region i's engine. Handlers running on it must touch only
// region-i state unless the run is in global mode.
func (p *Partitioned) Region(i int) *Engine { return p.engines[i] }

// Lookahead returns the window length.
func (p *Partitioned) Lookahead() Time { return p.lookahead }

// Workers returns the worker budget.
func (p *Partitioned) Workers() int { return p.workers }

// Now returns the coordinator clock: the start of the next unexecuted
// window. Between windows every region's engine reads the same Now.
func (p *Partitioned) Now() Time { return p.windowStart }

// OnBarrier installs the per-barrier hook (single-threaded, may touch any
// region's state).
func (p *Partitioned) OnBarrier(fn func(Time)) { p.onBarrier = fn }

// SetGlobalFrom switches every window that starts at or after t to the
// deterministic global interleave. Calls only narrow the threshold (the
// earliest requested time wins); passing 0 forces global mode for the whole
// run. It must be called between windows (e.g. before the run starts, or
// from the barrier hook), never from a handler inside a parallel window.
func (p *Partitioned) SetGlobalFrom(t Time) {
	if !p.haveGlobal || t < p.globalFrom {
		p.haveGlobal = true
		p.globalFrom = t
	}
}

// GlobalActive reports whether the next window will run globally
// interleaved.
func (p *Partitioned) GlobalActive() bool {
	return p.haveGlobal && p.windowStart >= p.globalFrom
}

// Send schedules cb(a1, a2, u) (or fn, when cb is nil) at absolute time
// `at` in region dst. It must be called from region src's execution (or
// between windows with src's engine clock current). The delivery time must
// not precede the end of the current window — equivalently, callers must
// keep cross-region delays at or above the lookahead; anything tighter
// would let one region affect another inside a window already running in
// parallel.
func (p *Partitioned) Send(src, dst int, at Time, fn func(), cb Callback, a1, a2 any, u uint64) {
	if floor := p.windowStart + p.lookahead; at < floor {
		panic(fmt.Sprintf("sim: cross-region send at %v violates lookahead window ending at %v", at, floor))
	}
	p.outbox[src] = append(p.outbox[src], xmsg{
		dst: dst, at: at, sent: p.engines[src].Now(),
		src: int32(src), idx: p.sendIdx[src],
		fn: fn, cb: cb, a1: a1, a2: a2, u: u,
	})
	p.sendIdx[src]++
}

// Pending reports events resident anywhere: region queues plus unmerged
// cross-region messages.
func (p *Partitioned) Pending() int {
	n := 0
	for _, e := range p.engines {
		n += e.Pending()
	}
	for _, ob := range p.outbox {
		n += len(ob)
	}
	return n
}

// EventsFired sums the fired-event counters across regions.
func (p *Partitioned) EventsFired() uint64 {
	var n uint64
	for _, e := range p.engines {
		n += e.EventsFired()
	}
	return n
}

// Compactions sums the compaction counters across regions.
func (p *Partitioned) Compactions() uint64 {
	var n uint64
	for _, e := range p.engines {
		n += e.Compactions()
	}
	return n
}

// Barriers returns the number of window barriers executed.
func (p *Partitioned) Barriers() uint64 { return p.barriers }

// Merged returns the total cross-region events merged at barriers.
func (p *Partitioned) Merged() uint64 { return p.merged }

// RegionLoad returns region i's deterministic load accounting: events
// fired, windows in which it sat idle (lookahead stalls), and cross-region
// events merged into it.
func (p *Partitioned) RegionLoad(i int) (fired, idleWindows, mergedIn uint64) {
	return p.engines[i].EventsFired(), p.idleWindows[i], p.mergedIn[i]
}

// RunUntil advances all regions to time t, window by window. Like
// Engine.RunUntil it executes events with timestamps <= t and leaves every
// clock at t.
func (p *Partitioned) RunUntil(t Time) {
	for p.windowStart < t {
		end := p.windowStart + p.lookahead
		if end > t {
			end = t
		}
		p.runWindow(end)
	}
	// Windows ran events with at < t; finish the RunUntil contract by
	// firing the events at exactly t, then merging what they sent.
	p.runBoundary(t)
}

// Run advances windows until no work remains anywhere.
func (p *Partitioned) Run() {
	for p.Pending() > 0 {
		p.runWindow(p.windowStart + p.lookahead)
	}
}

// runWindow executes [windowStart, end) on every region, then performs the
// barrier: merge cross-region messages in deterministic order, advance the
// window clock, and run the barrier hook.
func (p *Partitioned) runWindow(end Time) {
	switch {
	case p.GlobalActive():
		p.runWindowGlobal(end)
	case p.workers == 1 || len(p.engines) == 1:
		p.runWindowSeq(end)
	default:
		p.runWindowParallel(end)
	}
	p.windowStart = end
	p.mergeOutboxes()
	p.barriers++
	if p.onBarrier != nil {
		p.onBarrier(end)
	}
}

// runWindowSeq is the one-worker window execution: each region in turn runs
// its slice of the window to completion. Region-confined handlers make the
// inter-region execution order unobservable, so this produces bit-identical
// results to runWindowParallel at any worker count — it just skips the
// goroutine machinery, which keeps the `-partitions 1` baseline honest.
func (p *Partitioned) runWindowSeq(end Time) {
	for i, e := range p.engines {
		before := e.fired
		e.runBefore(end)
		if e.fired == before {
			p.idleWindows[i]++
		}
	}
}

// runWindowParallel fires each region's events with at < end concurrently
// on up to p.workers goroutines.
func (p *Partitioned) runWindowParallel(end Time) {
	workers := p.workers
	if workers > len(p.engines) {
		workers = len(p.engines)
	}
	fired := make([]uint64, len(p.engines))
	var next atomic.Int32
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(p.engines) {
					return
				}
				e := p.engines[i]
				before := e.fired
				e.runBefore(end)
				fired[i] = e.fired - before
			}
		}()
	}
	wg.Wait()
	for i, f := range fired {
		if f == 0 {
			p.idleWindows[i]++
		}
	}
}

// runWindowGlobal fires all regions' events with at < end on the calling
// goroutine, interleaved in (time, region) order: always the globally
// earliest pending event, region index breaking timestamp ties. The
// interleave gives cross-region handlers a single deterministic,
// time-ordered thread of control.
func (p *Partitioned) runWindowGlobal(end Time) {
	fired := make([]uint64, len(p.engines))
	for {
		best := -1
		var bestAt Time
		for i, e := range p.engines {
			ev := e.peekNext()
			if ev == nil || ev.at >= end {
				continue
			}
			if best < 0 || ev.at < bestAt {
				best, bestAt = i, ev.at
			}
		}
		if best < 0 {
			break
		}
		// Advance every region's clock to the fire time first, so a
		// cross-region handler scheduling on another engine (legal in
		// global mode) sees the current time, not a stale region clock.
		// Safe because bestAt is the global minimum pending timestamp:
		// no region has an event behind it.
		for _, e := range p.engines {
			if e.now < bestAt {
				e.now = bestAt
			}
		}
		// Fire at most one event, and only at bestAt: a cancelled head may
		// make step consume residue and fire nothing, in which case the
		// next iteration re-peeks with the residue gone.
		e := p.engines[best]
		before := e.fired
		e.stopped = false
		e.step(bestAt, true)
		fired[best] += e.fired - before
	}
	for i, e := range p.engines {
		if e.now < end {
			e.now = end
		}
		if fired[i] == 0 {
			p.idleWindows[i]++
		}
	}
}

// runBoundary executes the events at exactly time t (the RunUntil target)
// across all regions in deterministic (time, region) interleave, then
// merges any sends they produced. It always runs single-threaded: boundary
// events are the tail of a RunUntil contract, not a parallel window.
func (p *Partitioned) runBoundary(t Time) {
	for {
		best := -1
		var bestAt Time
		for i, e := range p.engines {
			ev := e.peekNext()
			if ev == nil || ev.at > t {
				continue
			}
			if best < 0 || ev.at < bestAt {
				best, bestAt = i, ev.at
			}
		}
		if best < 0 {
			break
		}
		for _, e := range p.engines {
			if e.now < bestAt {
				e.now = bestAt
			}
		}
		e := p.engines[best]
		e.stopped = false
		e.step(bestAt, true)
	}
	for _, e := range p.engines {
		if e.now < t {
			e.now = t
		}
	}
	p.mergeOutboxes()
}

// mergeOutboxes inserts every pending cross-region message into its
// destination engine, ordered by (deliverAt, sentAt, srcRegion, srcIndex).
// Every key component is host-independent, so the resulting engine-local
// sequence numbers — and therefore all downstream (time, seq) tie-breaks —
// are identical at any worker count. Runs single-threaded.
func (p *Partitioned) mergeOutboxes() {
	var all []xmsg
	for src, ob := range p.outbox {
		all = append(all, ob...)
		p.outbox[src] = ob[:0]
		p.sendIdx[src] = 0
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.sent != b.sent {
			return a.sent < b.sent
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.idx < b.idx
	})
	for _, m := range all {
		e := p.engines[m.dst]
		if m.cb != nil {
			e.AtCall(m.at, m.cb, m.a1, m.a2, m.u)
		} else {
			e.At(m.at, m.fn)
		}
		p.mergedIn[m.dst]++
	}
	p.merged += uint64(len(all))
}

// runBefore executes events with timestamps strictly below t, then advances
// the clock to t. It is the window-execution primitive: firing an event at
// exactly t inside the window [W, t) would race with the barrier, which may
// merge same-timestamp cross-region events ahead of it in global order.
func (e *Engine) runBefore(t Time) {
	e.stopped = false
	for !e.stopped && e.step(t-1, true) {
	}
	if e.now < t {
		e.now = t
	}
}
