package sim

import (
	"math/rand"
	"testing"
)

// The timing wheel must be observationally identical to a plain min-ordered
// event queue: same pop order by (at, seq), same Pending/EventsFired counts,
// and — because the goldens pin it — the same compaction count. refSched is
// that specification, written as naively as possible (linear-scan min pop)
// so that it is obviously correct, and the property test below drives both
// implementations through randomized schedule/cancel/advance scripts that
// cover every placement tier: level-0 slots, cascades from levels 1 and 2,
// the far heap beyond the 2^30 ns horizon, and same-slot inserts that land
// in the live drain run.

type popRec struct {
	at Time
	id int
}

type refEvent struct {
	at        Time
	seq       uint64
	id        int
	cancelled bool
	gone      bool // popped or purged; cancel must fail
	respawn   bool
}

type refSched struct {
	pending     []*refEvent
	now         Time
	seq         uint64
	fired       uint64
	compactions uint64
	total, live int
	nextSpawn   int
	order       []popRec
}

func (r *refSched) schedule(d Time, id int, respawn bool) *refEvent {
	ev := &refEvent{at: r.now + d, seq: r.seq, id: id, respawn: respawn}
	r.seq++
	r.pending = append(r.pending, ev)
	r.total++
	r.live++
	return ev
}

func (r *refSched) cancel(ev *refEvent) bool {
	if ev.gone || ev.cancelled {
		return false
	}
	ev.cancelled = true
	r.live--
	if r.total >= compactMin && 2*r.live < r.total {
		r.compactions++
		k := 0
		for _, p := range r.pending {
			if p.cancelled {
				p.gone = true
			} else {
				r.pending[k] = p
				k++
			}
		}
		r.pending = r.pending[:k]
		r.total = r.live
	}
	return true
}

func (r *refSched) runUntil(t Time) {
	for {
		mi := -1
		for i, ev := range r.pending {
			if mi < 0 || ev.at < r.pending[mi].at ||
				(ev.at == r.pending[mi].at && ev.seq < r.pending[mi].seq) {
				mi = i
			}
		}
		if mi < 0 || r.pending[mi].at > t {
			break
		}
		ev := r.pending[mi]
		r.pending = append(r.pending[:mi], r.pending[mi+1:]...)
		ev.gone = true
		r.total--
		if ev.cancelled {
			continue
		}
		r.live--
		r.now = ev.at
		r.fired++
		r.order = append(r.order, popRec{ev.at, ev.id})
		if ev.respawn {
			id := r.nextSpawn
			r.nextSpawn++
			r.schedule(respawnDelay(ev.id), id, false)
		}
	}
	if r.now < t {
		r.now = t
	}
}

// respawnDelay derives a deterministic follow-up delay from an event id, so
// the engine-side callback and the reference compute identical respawns.
func respawnDelay(id int) Time {
	return Time(uint64(id) * 2654435761 % (1 << 16))
}

// randDelay stresses every placement tier of the wheel plus the far heap.
func randDelay(rng *rand.Rand) Time {
	switch rng.Intn(5) {
	case 0:
		return Time(rng.Intn(64)) // level-0 slot, often the live drain run
	case 1:
		return Time(rng.Intn(1 << 14)) // level 1 cascade
	case 2:
		return Time(rng.Intn(1 << 22)) // level 2 cascade
	case 3:
		return Time(rng.Intn(1 << 30)) // anywhere in the wheel horizon
	default:
		return Time(1<<30 + rng.Int63n(1<<32)) // far heap
	}
}

func TestWheelMatchesReferenceHeap(t *testing.T) {
	const spawnBase = 1 << 20 // respawned events get ids above this
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		e := NewEngine(1)
		ref := &refSched{nextSpawn: spawnBase}
		var got []popRec
		spawnID := spawnBase
		var mkFire func(id int, respawn bool) func()
		mkFire = func(id int, respawn bool) func() {
			return func() {
				got = append(got, popRec{e.Now(), id})
				if respawn {
					nid := spawnID
					spawnID++
					e.After(respawnDelay(id), mkFire(nid, false))
				}
			}
		}
		timers := make(map[int]Timer)
		refEvs := make(map[int]*refEvent)
		nextID := 0
		for round := 0; round < 40; round++ {
			for j, k := 0, rng.Intn(20); j < k; j++ {
				d := randDelay(rng)
				respawn := rng.Intn(4) == 0
				id := nextID
				nextID++
				timers[id] = e.After(d, mkFire(id, respawn))
				refEvs[id] = ref.schedule(d, id, respawn)
			}
			for j, k := 0, rng.Intn(8); j < k && nextID > 0; j++ {
				id := rng.Intn(nextID)
				gotOK := timers[id].Cancel()
				wantOK := ref.cancel(refEvs[id])
				if gotOK != wantOK {
					t.Fatalf("trial %d round %d: Cancel(%d) = %v, reference says %v",
						trial, round, id, gotOK, wantOK)
				}
			}
			target := e.Now() + Time(rng.Int63n(1<<uint(6+rng.Intn(27))))
			e.RunUntil(target)
			ref.runUntil(target)
			checkAgainstRef(t, trial, round, e, ref, got)
		}
		// Drain everything, far heap included.
		const end = Time(1) << 62
		e.RunUntil(end)
		ref.runUntil(end)
		checkAgainstRef(t, trial, -1, e, ref, got)
		if e.Pending() != 0 {
			t.Fatalf("trial %d: %d events still pending after full drain", trial, e.Pending())
		}
	}
}

func checkAgainstRef(t *testing.T, trial, round int, e *Engine, ref *refSched, got []popRec) {
	t.Helper()
	if len(got) != len(ref.order) {
		t.Fatalf("trial %d round %d: engine fired %d events, reference fired %d",
			trial, round, len(got), len(ref.order))
	}
	for i := range got {
		if got[i] != ref.order[i] {
			t.Fatalf("trial %d round %d: pop %d is (t=%v id=%d), reference says (t=%v id=%d)",
				trial, round, i, got[i].at, got[i].id, ref.order[i].at, ref.order[i].id)
		}
	}
	if e.Pending() != ref.live {
		t.Fatalf("trial %d round %d: Pending() = %d, reference %d", trial, round, e.Pending(), ref.live)
	}
	if e.EventsFired() != ref.fired {
		t.Fatalf("trial %d round %d: EventsFired() = %d, reference %d", trial, round, e.EventsFired(), ref.fired)
	}
	if e.Compactions() != ref.compactions {
		t.Fatalf("trial %d round %d: Compactions() = %d, reference %d", trial, round, e.Compactions(), ref.compactions)
	}
}
