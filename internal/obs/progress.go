package obs

import (
	"fmt"
	"io"
	"time"
)

// Progress is a rate-limited live campaign reporter: a single overwritten
// status line (runs done/total, simulated events/sec, failures so far, ETA)
// emitted at most once per Interval, plus a final summary on Finish. It is
// pure host-side telemetry — it belongs on stderr and must never share a
// stream with machine-readable output (-metrics-json, -run-log), which is
// exactly how the CLIs wire it.
type Progress struct {
	// W receives the status line; the CLIs pass os.Stderr.
	W io.Writer
	// Interval is the minimum host time between status lines; 0 means
	// DefaultProgressInterval. Negative disables rate limiting (tests).
	Interval time.Duration

	total   int // announced runs across all batches so far
	done    int
	failed  int
	events  uint64
	batches int
	label   string // current batch label:fault for the status line

	started  time.Time
	lastLine time.Time
	wrote    bool
}

// DefaultProgressInterval is the default minimum spacing of status lines:
// frequent enough to feel live, cheap enough to be invisible next to a
// campaign's simulation cost.
const DefaultProgressInterval = 200 * time.Millisecond

// NewProgress returns a Progress reporting to w at the default interval.
func NewProgress(w io.Writer) *Progress { return &Progress{W: w} }

func (p *Progress) interval() time.Duration {
	if p.Interval == 0 {
		return DefaultProgressInterval
	}
	return p.Interval
}

// StartBatch extends the campaign's run total; the ETA spans everything
// announced so far.
func (p *Progress) StartBatch(b Batch) {
	if p.started.IsZero() {
		p.started = hostClock()
	}
	p.total += b.Runs
	p.batches++
	p.label = b.Label
	if b.Fault != "" {
		p.label = b.Fault
		if b.Label != "" {
			p.label = b.Label + ":" + b.Fault
		}
	}
}

// RunDone folds one completed run into the counters and, at most once per
// Interval, rewrites the status line.
func (p *Progress) RunDone(r RunRecord) {
	p.done++
	p.events += r.Events
	if !r.OK() {
		p.failed++
	}
	now := hostClock()
	if p.wrote && p.interval() > 0 && now.Sub(p.lastLine) < p.interval() {
		return
	}
	p.lastLine = now
	p.wrote = true
	fmt.Fprintf(p.W, "\rprogress: %s%d/%d runs, %d failed, %s, ETA %s   ",
		p.prefix(), p.done, p.total, p.failed, p.rate(now), p.eta(now))
}

// Finish rewrites the line one last time with the final counters and
// terminates it.
func (p *Progress) Finish() {
	if p.done == 0 && !p.wrote {
		return
	}
	now := hostClock()
	fmt.Fprintf(p.W, "\rprogress: %s%d/%d runs, %d failed, %s, done in %v   \n",
		p.prefix(), p.done, p.total, p.failed, p.rate(now), now.Sub(p.started).Round(time.Millisecond))
}

func (p *Progress) prefix() string {
	if p.batches > 1 && p.label != "" {
		return "[" + p.label + "] "
	}
	return ""
}

func (p *Progress) rate(now time.Time) string {
	el := now.Sub(p.started).Seconds()
	if el <= 0 {
		return "0.00 Mev/s"
	}
	return fmt.Sprintf("%.2f Mev/s", float64(p.events)/el/1e6)
}

func (p *Progress) eta(now time.Time) string {
	if p.done == 0 || p.total <= p.done {
		return "0s"
	}
	el := now.Sub(p.started)
	rem := time.Duration(float64(el) / float64(p.done) * float64(p.total-p.done))
	return rem.Round(100 * time.Millisecond).String()
}
