package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"flashfc/internal/trace"
)

// Exemplar rendering: a tail campaign reduces thousands of runs to a
// handful of percentiles; the exemplar files put the runs back. For each
// replayed percentile exemplar, WriteExemplar emits
//
//	<name>.trace.json  — the replay's full span/point trace in Chrome
//	                     trace-event form (load at ui.perfetto.dev), and
//	<name>.json        — a summary: which run/seed the observation came
//	                     from, whether the traced containment time matched
//	                     the campaign's recorded observation exactly, and
//	                     the recovery critical path with its dominant
//	                     phase named (the -trace-critical report as data).
//
// Both files are byte-deterministic: the replay is a pure function of the
// campaign's base seed, so CI compares them across -partitions settings.

// ExemplarTrace is one replayed percentile exemplar ready to render.
type ExemplarTrace struct {
	// Name is the file stem, e.g. "fail-slow-p999".
	Name string
	// Fault names the scenario's fault class.
	Fault string
	// Pct is the percentile the exemplar supports (50, 99, 99.9).
	Pct float64
	// Run and Seed identify the campaign run behind the observation.
	Run  int
	Seed int64
	// CampaignNS is the containment time the campaign recorded for this
	// run; TracedNS is what the traced replay measured. Determinism makes
	// them equal — a mismatch means the replay contract is broken.
	CampaignNS int64
	TracedNS   int64
	// Tracer holds the replay's trace.
	Tracer *trace.Tracer
}

// ExemplarName builds the conventional file stem: "<fault>-p<pct>" with
// the percentile's dot dropped ("fail-slow-p999" for 99.9).
func ExemplarName(fault string, pct float64) string {
	p := strings.ReplaceAll(fmt.Sprintf("%g", pct), ".", "")
	return fmt.Sprintf("%s-p%s", fault, p)
}

// exemplarSummary is the <name>.json schema. Field order fixes byte order.
type exemplarSummary struct {
	Name       string           `json:"name"`
	Fault      string           `json:"fault"`
	Pct        float64          `json:"pct"`
	Run        int              `json:"run"`
	Seed       int64            `json:"seed"`
	CampaignNS int64            `json:"campaign_ns"`
	TracedNS   int64            `json:"traced_ns"`
	Match      bool             `json:"match"`
	Critical   *criticalSummary `json:"critical,omitempty"`
}

// criticalSummary is the recovery critical path as data: the chain of
// steps whose self-times partition the recovery exactly, plus the dominant
// step — the phase that explains the exemplar's latency.
type criticalSummary struct {
	Root       string         `json:"root"`
	DurationNS int64          `json:"duration_ns"`
	Dominant   criticalStep   `json:"dominant"`
	Steps      []criticalStep `json:"steps"`
}

type criticalStep struct {
	Step   string  `json:"step"` // name#arg as in the critical report
	Node   int     `json:"node"` // -1 = machine-wide
	Depth  int     `json:"depth"`
	SelfNS int64   `json:"self_ns"`
	PctOf  float64 `json:"pct_of_recovery"`
}

// WriteExemplar writes the exemplar's trace and summary files into dir
// (created if missing).
func WriteExemplar(dir string, e ExemplarTrace) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(dir, e.Name+".trace.json"))
	if err != nil {
		return err
	}
	werr := e.Tracer.WriteChromeJSON(tf)
	if cerr := tf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("obs: exemplar trace %s: %w", e.Name, werr)
	}

	sum := exemplarSummary{
		Name: e.Name, Fault: e.Fault, Pct: e.Pct, Run: e.Run, Seed: e.Seed,
		CampaignNS: e.CampaignNS, TracedNS: e.TracedNS,
		Match:    e.TracedNS == e.CampaignNS,
		Critical: criticalOf(e.Tracer),
	}
	b, err := json.MarshalIndent(sum, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(filepath.Join(dir, e.Name+".json"), b, 0o644); err != nil {
		return err
	}
	return nil
}

// criticalOf reduces the tracer's critical paths to the summary of the
// longest one (the recovery; sub-recoveries of superseded epochs are
// shorter). Nil when the trace recorded no spans.
func criticalOf(t *trace.Tracer) *criticalSummary {
	paths := t.CriticalPaths()
	if len(paths) == 0 {
		return nil
	}
	best := paths[0]
	for _, p := range paths[1:] {
		if p.Duration() > best.Duration() {
			best = p
		}
	}
	cs := &criticalSummary{Root: best.RootName, DurationNS: int64(best.Duration())}
	dur := float64(best.Duration())
	for _, s := range best.Steps {
		pct := 0.0
		if dur > 0 {
			pct = round1(100 * float64(s.Self) / dur)
		}
		label := s.Name
		if s.Arg != 0 {
			label = fmt.Sprintf("%s#%d", s.Name, s.Arg)
		}
		cs.Steps = append(cs.Steps, criticalStep{
			Step: label, Node: s.Node, Depth: s.Depth, SelfNS: int64(s.Self), PctOf: pct,
		})
	}
	dom := 0
	for i := range cs.Steps {
		if cs.Steps[i].SelfNS > cs.Steps[dom].SelfNS {
			dom = i
		}
	}
	cs.Dominant = cs.Steps[dom]
	return cs
}

// round1 rounds to one decimal so the summary JSON never carries float
// noise that could differ across architectures.
func round1(x float64) float64 { return float64(int64(x*10+0.5)) / 10 }
