package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// RunLog writes one JSONL record per campaign run, ordered by run index
// regardless of the worker scheduling that produced them: records arriving
// out of order are parked in a reorder buffer and flushed as soon as the
// contiguous prefix they complete is known. With host fields stripped (the
// default), the stream is a pure function of (base seed, run index), so the
// bytes are identical at any -parallel or -partitions setting — the
// property the experiments test suite and CI enforce.
//
// Encoding is one json.Marshal'd RunRecord per line with the struct's fixed
// field order; no indenting, no map keys, nothing host-dependent.
type RunLog struct {
	w io.Writer
	// host keeps the host-side fields (wall_ns, worker) instead of
	// zeroing them; it trades byte-identity for host accounting.
	host bool

	batch   Batch
	next    int               // next run index to write in this batch
	pending map[int]RunRecord // completed runs waiting on a predecessor
	err     error             // first write/protocol error, sticky
}

// NewRunLog returns a RunLog writing to w. host selects whether records
// keep their host-side fields (breaking byte-identity across worker
// counts) or zero them (the default deterministic stream).
func NewRunLog(w io.Writer, host bool) *RunLog {
	return &RunLog{w: w, host: host, pending: map[int]RunRecord{}}
}

// StartBatch begins a new batch: the previous batch must have flushed
// completely (every index seen), or the log records a protocol error.
func (l *RunLog) StartBatch(b Batch) {
	l.closeBatch()
	l.batch = b
	l.next = 0
}

// RunDone accepts one completed run, in any order; the record is written
// once every lower index of its batch has been written.
func (l *RunLog) RunDone(r RunRecord) {
	if !l.host {
		r = StripHost(r)
	}
	// A duplicate index would silently corrupt the ordered stream.
	if _, dup := l.pending[r.Run]; dup || r.Run < l.next {
		l.fail(fmt.Errorf("obs: duplicate run record %d in batch %q", r.Run, l.batch.Label))
		return
	}
	l.pending[r.Run] = r
	for {
		rec, ok := l.pending[l.next]
		if !ok {
			return
		}
		delete(l.pending, l.next)
		l.write(rec)
		l.next++
	}
}

// Finish flushes the final batch; any still-missing index is a protocol
// error reported by Err.
func (l *RunLog) Finish() { l.closeBatch() }

// Err returns the first write or protocol error the log hit, if any.
func (l *RunLog) Err() error { return l.err }

// closeBatch verifies the current batch drained completely.
func (l *RunLog) closeBatch() {
	if len(l.pending) > 0 {
		l.fail(fmt.Errorf("obs: batch %q ended with %d unflushed records (next expected index %d)",
			l.batch.Label, len(l.pending), l.next))
		l.pending = map[int]RunRecord{}
	}
	if l.batch.Runs > 0 && l.next != l.batch.Runs {
		l.fail(fmt.Errorf("obs: batch %q wrote %d of %d records", l.batch.Label, l.next, l.batch.Runs))
	}
}

func (l *RunLog) write(r RunRecord) {
	if l.err != nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		l.fail(err)
		return
	}
	b = append(b, '\n')
	if _, err := l.w.Write(b); err != nil {
		l.fail(err)
	}
}

func (l *RunLog) fail(err error) {
	if l.err == nil {
		l.err = err
	}
}
