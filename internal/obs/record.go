// Package obs is the campaign-scale observability layer: where PR 2's
// metrics and PR 3's span traces make a single run legible, obs makes a
// thousand-run campaign legible. It provides three pieces:
//
//   - per-run record streams: every campaign run reduces to one RunRecord
//     (index, derived seed, fault, containment time, verify outcome,
//     events, host accounting), and a RunLog writes them as JSONL ordered
//     by run index regardless of worker scheduling — byte-identical at any
//     worker or partition count;
//   - live progress: a rate-limited Progress reporter on stderr (runs
//     done/total, events/sec, ETA, failures so far) that never touches the
//     JSON-only stdout contract;
//   - exemplar traces: WriteExemplar renders the replayed tail exemplars
//     (the exact runs behind a campaign's p50/p99/p999) as
//     Perfetto-loadable trace files plus a critical-path summary naming
//     the dominant recovery phase.
//
// Sinks receive records in completion order — that is what makes live
// progress live — and each sink decides whether it needs index order (the
// RunLog reorders internally). All Sink methods are invoked serialized by
// the campaign runner, so implementations need no locking of their own.
package obs

import "time"

// RunRecord is one campaign run reduced to a flat, serializable record.
// The zero-value host fields (WallNS, Worker) keep a record deterministic:
// sinks that honor the byte-identity contract zero them, sinks that want
// host accounting keep them.
type RunRecord struct {
	// Run is the run's index within its batch (0-based, dense).
	Run int `json:"run"`
	// Seed is the run's derived engine seed — the value that reproduces
	// the run exactly (pass it back via -seed on a single run, or to
	// ValidationFromWarm for a warm-forked run).
	Seed int64 `json:"seed"`
	// Fault names the injected fault (class plus parameters), empty for
	// fault-free runs.
	Fault string `json:"fault,omitempty"`
	// Outcome classifies the run: "pass", "fail", or "panic".
	Outcome string `json:"outcome"`
	// ContainmentNS is the run's containment time (recovery entry to the
	// last node's completion) in simulated nanoseconds; 0 when recovery
	// never completed.
	ContainmentNS int64 `json:"containment_ns"`
	// AffectedNodes is how many nodes the fault cost the machine.
	AffectedNodes int `json:"affected_nodes"`
	// Events is the run's simulated-event count.
	Events uint64 `json:"events"`
	// Note carries the failure diagnosis (verify mismatch, deadline,
	// panic message); empty on passing runs.
	Note string `json:"note,omitempty"`
	// WallNS is the run's host wall-clock nanoseconds. Host-side: varies
	// run to run, so deterministic sinks zero it.
	WallNS int64 `json:"wall_ns"`
	// Worker is the pool worker that executed the run. Host-side.
	Worker int `json:"worker"`
}

// OK reports whether the run passed.
func (r RunRecord) OK() bool { return r.Outcome == OutcomePass }

// Outcome values.
const (
	OutcomePass  = "pass"
	OutcomeFail  = "fail"
	OutcomePanic = "panic"
)

// Batch announces a campaign batch to a Sink before its first record:
// campaigns that sweep several fault classes emit one batch per class, and
// run indices restart at 0 with each batch.
type Batch struct {
	// Label names the batch ("tail", "table5.3", ...); informational.
	Label string
	// Fault names the batch's fault class, empty for fault-free sweeps.
	Fault string
	// Runs is the number of records the batch will produce.
	Runs int
}

// Sink consumes a campaign's observability stream. StartBatch and RunDone
// arrive serialized from the campaign runner; RunDone arrives in completion
// order (not index order). Finish is called once after the last batch.
type Sink interface {
	StartBatch(b Batch)
	RunDone(r RunRecord)
	Finish()
}

// Multi fans one observability stream out to several sinks (nil sinks are
// skipped). A nil or empty Multi result is a valid no-op sink.
func Multi(sinks ...Sink) Sink {
	var out multi
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

type multi []Sink

func (m multi) StartBatch(b Batch) {
	for _, s := range m {
		s.StartBatch(b)
	}
}

func (m multi) RunDone(r RunRecord) {
	for _, s := range m {
		s.RunDone(r)
	}
}

func (m multi) Finish() {
	for _, s := range m {
		s.Finish()
	}
}

// StripHost zeroes a record's host-side fields (wall time, worker id),
// leaving only the fields that are a pure function of (seed, run index) —
// the deterministic projection the byte-identity contract is stated over.
func StripHost(r RunRecord) RunRecord {
	r.WallNS = 0
	r.Worker = 0
	return r
}

// hostClock is the host time source; tests may stub it.
var hostClock = time.Now
