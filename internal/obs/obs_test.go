package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func rec(i int, outcome string) RunRecord {
	return RunRecord{Run: i, Seed: int64(1000 + i), Outcome: outcome,
		ContainmentNS: int64(10 * (i + 1)), Events: uint64(100 * (i + 1)),
		WallNS: int64(7777 + i), Worker: i % 3}
}

// The run log must emit index order no matter the completion order, and the
// bytes must not depend on host fields.
func TestRunLogReorders(t *testing.T) {
	var inOrder, shuffled bytes.Buffer

	a := NewRunLog(&inOrder, false)
	a.StartBatch(Batch{Label: "t", Runs: 5})
	for i := 0; i < 5; i++ {
		a.RunDone(rec(i, OutcomePass))
	}
	a.Finish()
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}

	b := NewRunLog(&shuffled, false)
	b.StartBatch(Batch{Label: "t", Runs: 5})
	for _, i := range []int{3, 0, 4, 1, 2} {
		r := rec(i, OutcomePass)
		r.WallNS = int64(i) * 31337 // host noise must not reach the stream
		r.Worker = 9
		b.RunDone(r)
	}
	b.Finish()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(inOrder.Bytes(), shuffled.Bytes()) {
		t.Fatalf("streams differ:\n%s\nvs\n%s", inOrder.String(), shuffled.String())
	}
	lines := strings.Split(strings.TrimRight(inOrder.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	if !strings.HasPrefix(lines[2], `{"run":2,"seed":1002,`) {
		t.Fatalf("line 2 out of order or malformed: %s", lines[2])
	}
	if !strings.Contains(lines[0], `"wall_ns":0,"worker":0`) {
		t.Fatalf("host fields not stripped: %s", lines[0])
	}
}

func TestRunLogHostMode(t *testing.T) {
	var buf bytes.Buffer
	l := NewRunLog(&buf, true)
	l.StartBatch(Batch{Runs: 1})
	l.RunDone(rec(0, OutcomePass))
	l.Finish()
	if !strings.Contains(buf.String(), `"wall_ns":7777,"worker":0`) {
		t.Fatalf("host mode dropped host fields: %s", buf.String())
	}
}

func TestRunLogDetectsProtocolErrors(t *testing.T) {
	t.Run("duplicate", func(t *testing.T) {
		l := NewRunLog(&bytes.Buffer{}, false)
		l.StartBatch(Batch{Label: "d", Runs: 3})
		l.RunDone(rec(0, OutcomePass))
		l.RunDone(rec(0, OutcomePass))
		if l.Err() == nil {
			t.Fatal("duplicate index not detected")
		}
	})
	t.Run("gap", func(t *testing.T) {
		l := NewRunLog(&bytes.Buffer{}, false)
		l.StartBatch(Batch{Label: "g", Runs: 3})
		l.RunDone(rec(0, OutcomePass))
		l.RunDone(rec(2, OutcomePass))
		l.Finish()
		if l.Err() == nil {
			t.Fatal("missing index 1 not detected")
		}
	})
	t.Run("short", func(t *testing.T) {
		l := NewRunLog(&bytes.Buffer{}, false)
		l.StartBatch(Batch{Label: "s", Runs: 3})
		l.RunDone(rec(0, OutcomePass))
		l.Finish()
		if l.Err() == nil {
			t.Fatal("short batch not detected")
		}
	})
}

// Batches restart run indices at 0; the log must accept that and keep both
// batches' records in order.
func TestRunLogMultipleBatches(t *testing.T) {
	var buf bytes.Buffer
	l := NewRunLog(&buf, false)
	for _, label := range []string{"a", "b"} {
		l.StartBatch(Batch{Label: label, Runs: 2})
		l.RunDone(rec(1, OutcomePass))
		l.RunDone(rec(0, OutcomeFail))
	}
	l.Finish()
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	for i, want := range []string{`"run":0`, `"run":1`, `"run":0`, `"run":1`} {
		if !strings.Contains(lines[i], want) {
			t.Fatalf("line %d = %s, want %s", i, lines[i], want)
		}
	}
}

func TestMulti(t *testing.T) {
	var a, b bytes.Buffer
	la, lb := NewRunLog(&a, false), NewRunLog(&b, false)
	m := Multi(nil, la, nil, lb)
	m.StartBatch(Batch{Runs: 1})
	m.RunDone(rec(0, OutcomePass))
	m.Finish()
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Multi did not fan out to both sinks")
	}
	if Multi(nil, la) != Sink(la) {
		t.Fatal("singleton Multi should unwrap")
	}
}

func TestProgress(t *testing.T) {
	base := time.Unix(0, 0)
	now := base
	hostClock = func() time.Time { return now }
	defer func() { hostClock = time.Now }()

	var buf bytes.Buffer
	p := &Progress{W: &buf, Interval: -1} // no rate limit: every run prints
	p.StartBatch(Batch{Label: "tail", Fault: "fail-slow", Runs: 4})
	for i := 0; i < 4; i++ {
		now = base.Add(time.Duration(i+1) * time.Second)
		out := OutcomePass
		if i == 2 {
			out = OutcomePanic
		}
		p.RunDone(RunRecord{Run: i, Outcome: out, Events: 2_000_000})
	}
	p.Finish()

	s := buf.String()
	if !strings.Contains(s, "2/4 runs") || !strings.Contains(s, "4/4 runs") {
		t.Fatalf("missing progress counts: %q", s)
	}
	if !strings.Contains(s, "1 failed") {
		t.Fatalf("panic run not counted as failed: %q", s)
	}
	if !strings.Contains(s, "Mev/s") || !strings.Contains(s, "ETA") {
		t.Fatalf("missing rate/ETA: %q", s)
	}
	if !strings.HasSuffix(s, "\n") || strings.Count(s, "\n") != 1 {
		t.Fatalf("only Finish may newline-terminate: %q", s)
	}
	if !strings.Contains(s, "done in 4s") {
		t.Fatalf("missing final duration: %q", s)
	}
}

// Rate limiting: two runs inside one interval produce one line.
func TestProgressRateLimit(t *testing.T) {
	base := time.Unix(0, 0)
	now := base
	hostClock = func() time.Time { return now }
	defer func() { hostClock = time.Now }()

	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.StartBatch(Batch{Runs: 3})
	now = base.Add(time.Millisecond)
	p.RunDone(RunRecord{Run: 0, Outcome: OutcomePass})
	first := buf.Len()
	now = base.Add(2 * time.Millisecond) // within DefaultProgressInterval
	p.RunDone(RunRecord{Run: 1, Outcome: OutcomePass})
	if buf.Len() != first {
		t.Fatal("second run inside the interval should not print")
	}
	now = base.Add(time.Second)
	p.RunDone(RunRecord{Run: 2, Outcome: OutcomePass})
	if buf.Len() == first {
		t.Fatal("run after the interval should print")
	}
}

func TestExemplarName(t *testing.T) {
	for _, tc := range []struct {
		fault string
		pct   float64
		want  string
	}{
		{"fail-slow", 50, "fail-slow-p50"},
		{"transient-link", 99, "transient-link-p99"},
		{"node", 99.9, "node-p999"},
	} {
		if got := ExemplarName(tc.fault, tc.pct); got != tc.want {
			t.Errorf("ExemplarName(%q, %v) = %q, want %q", tc.fault, tc.pct, got, tc.want)
		}
	}
}
