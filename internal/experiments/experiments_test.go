package experiments

import (
	"reflect"
	"testing"

	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/runner"
	"flashfc/internal/sim"
	"flashfc/internal/trace"
)

func fastValidationConfig() ValidationConfig {
	cfg := DefaultValidationConfig()
	cfg.MemBytes = 64 << 10
	cfg.L2Bytes = 16 << 10
	cfg.FillLines = 48
	return cfg
}

func TestValidationEachFaultType(t *testing.T) {
	cfg := fastValidationConfig()
	for _, ft := range fault.AllTypes() {
		for seed := int64(1); seed <= 3; seed++ {
			r := Validation(cfg, ft, seed)
			if !r.OK() {
				t.Errorf("%v seed %d failed: recovered=%v note=%s fault=%v",
					ft, seed, r.Recovered, r.Note, r.Fault)
			}
		}
	}
}

func TestValidationPhasesPopulated(t *testing.T) {
	r := Validation(fastValidationConfig(), fault.NodeFailure, 42)
	if !r.OK() {
		t.Fatalf("run failed: %s", r.Note)
	}
	p := r.Phases
	if !(p.P1 > 0 && p.P1 <= p.P12 && p.P12 <= p.P123 && p.P123 <= p.Total) {
		t.Fatalf("phases not cumulative: %+v", p)
	}
	if p.WB <= 0 || p.Scan <= 0 {
		t.Fatalf("P4 components missing: %+v", p)
	}
}

func TestTable53SmallBatch(t *testing.T) {
	rows, stats := table53(fastValidationConfig(), 2, 7)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Failed != 0 {
			t.Errorf("%v: %d/%d failed", row.Fault, row.Failed, row.Runs)
		}
	}
	if stats.Runs != 10 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want 10 runs / 0 panics", stats)
	}
	if stats.Events == 0 || stats.EventsPerSec() <= 0 {
		t.Fatalf("throughput accounting missing: %+v", stats)
	}
}

func TestTable53ParallelBitIdenticalToSequential(t *testing.T) {
	seq := fastValidationConfig()
	seq.Workers = 1
	par := fastValidationConfig()
	par.Workers = 8
	for _, ft := range []fault.Type{fault.NodeFailure, fault.RouterFailure} {
		a, _ := validationBatch(seq, ft, 6, 3)
		b, _ := validationBatch(par, ft, 6, 3)
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ", ft)
		}
		for i := range a {
			// Compare the simulated outcomes only; Wall is host time.
			if !reflect.DeepEqual(a[i].Value, b[i].Value) {
				t.Errorf("%v run %d: workers=1 %+v != workers=8 %+v", ft, i, a[i].Value, b[i].Value)
			}
		}
	}
	rowsSeq, _ := table53(seq, 4, 11)
	rowsPar, _ := table53(par, 4, 11)
	if !reflect.DeepEqual(rowsSeq, rowsPar) {
		t.Fatalf("Table53 rows diverge: %+v vs %+v", rowsSeq, rowsPar)
	}
}

func TestTable53PanicIsolation(t *testing.T) {
	cfg := fastValidationConfig()
	cfg.Workers = 4
	cfg.runHook = func(i int) {
		if i == 2 {
			panic("injected driver crash")
		}
	}
	rows, stats := table53(cfg, 4, 5)
	if len(rows) != 5 {
		t.Fatalf("campaign aborted: %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Runs != 4 || row.Failed != 1 {
			t.Errorf("%v: runs=%d failed=%d, want 4/1 (the crashed run)", row.Fault, row.Runs, row.Failed)
		}
	}
	if stats.Failed != 5 { // one panic per fault-type batch
		t.Fatalf("stats.Failed = %d, want 5", stats.Failed)
	}
}

func TestMeasureRecoveryScalesWithNodes(t *testing.T) {
	small := MeasureRecovery(DefaultScalingConfig(8))
	big := MeasureRecovery(DefaultScalingConfig(32))
	if !small.OK || !big.OK {
		t.Fatalf("runs incomplete: %v %v", small.OK, big.OK)
	}
	if big.Phases.P2Time() <= small.Phases.P2Time() {
		t.Errorf("dissemination should grow with node count: 8=%v 32=%v",
			small.Phases.P2Time(), big.Phases.P2Time())
	}
}

func TestFig56L2Linear(t *testing.T) {
	pts := fig56L2([]uint64{512 << 10, 2 << 20, 4 << 20}, 3, 0)
	if len(pts) != 3 {
		t.Fatal("points missing")
	}
	// WB should scale roughly linearly with the L2 size: 4 MB should be
	// ~8x the 0.5 MB time, allowing generous slack for fixed costs.
	r := float64(pts[2].Phases.WB) / float64(pts[0].Phases.WB)
	if r < 4 || r > 12 {
		t.Errorf("WB(4MB)/WB(0.5MB) = %.1f, want ~8 (WBs: %v %v %v)",
			r, pts[0].Phases.WB, pts[1].Phases.WB, pts[2].Phases.WB)
	}
}

func TestFig56XCoordinates(t *testing.T) {
	l2 := fig56L2([]uint64{512 << 10, 4 << 20}, 3, 0)
	if l2[0].X != 0.5 || l2[1].X != 4 {
		t.Errorf("Fig56L2 X = %v, %v; want 0.5, 4 (MB)", l2[0].X, l2[1].X)
	}
	mem := fig56Mem([]uint64{1 << 20, 16 << 20}, 3, 0)
	if mem[0].X != 1 || mem[1].X != 16 {
		t.Errorf("Fig56Mem X = %v, %v; want 1, 16 (MB)", mem[0].X, mem[1].X)
	}
	// The machine size stays truthful now that X carries the coordinate.
	for _, p := range append(l2, mem...) {
		if p.Nodes != 4 {
			t.Errorf("Nodes = %d, want the actual 4-node machine", p.Nodes)
		}
		if p.Events == 0 {
			t.Error("point carries no event accounting")
		}
	}
	n := fig55([]int{8}, machine.TopoMesh, 3, 0)[0]
	if n.X != 8 {
		t.Errorf("Fig55 X = %v, want the node count", n.X)
	}
}

func TestFig56MemLinear(t *testing.T) {
	pts := fig56Mem([]uint64{1 << 20, 16 << 20}, 3, 0)
	r := float64(pts[1].Phases.Scan) / float64(pts[0].Phases.Scan)
	if r < 8 || r > 24 {
		t.Errorf("Scan(16MB)/Scan(1MB) = %.1f, want ~16", r)
	}
	// At 16 MB/node the sweep should take tens of ms (paper: ~45 ms).
	if pts[1].Phases.Scan < 20*sim.Millisecond || pts[1].Phases.Scan > 100*sim.Millisecond {
		t.Errorf("Scan(16MB) = %v, want ~45ms", pts[1].Phases.Scan)
	}
}

func TestHypercubeDisseminationFasterAtScale(t *testing.T) {
	mesh := fig55([]int{64}, machine.TopoMesh, 5, 0)[0]
	hyper := fig55([]int{64}, machine.TopoHypercube, 5, 0)[0]
	if !mesh.OK || !hyper.OK {
		t.Fatal("incomplete runs")
	}
	if hyper.Phases.P2Time() >= mesh.Phases.P2Time() {
		t.Errorf("hypercube P2 (%v) should beat mesh P2 (%v) at 64 nodes",
			hyper.Phases.P2Time(), mesh.Phases.P2Time())
	}
}

func TestEndToEndCleanAndFaulty(t *testing.T) {
	cfg := DefaultEndToEndConfig()
	cfg.MemBytes = 256 << 10
	cfg.L2Bytes = 16 << 10
	for _, ft := range []fault.Type{fault.NodeFailure, fault.InfiniteLoop, fault.LinkFailure, fault.RouterFailure} {
		r := EndToEnd(cfg, ft, 11)
		if !r.OK() {
			t.Errorf("%v: failed (%s); outcome=%+v fault=%v", ft, r.Note, r.Outcome, r.Fault)
		}
	}
}

func TestFig57Monotone(t *testing.T) {
	pts := Fig57([]int{2, 8}, 1<<20, 64<<10, 9, 0)
	for _, p := range pts {
		if !p.OK {
			t.Fatalf("run at %d nodes failed", p.Nodes)
		}
		if p.HW <= 0 || p.HWOS <= p.HW {
			t.Errorf("suspension times wrong at %d nodes: hw=%v hw+os=%v", p.Nodes, p.HW, p.HWOS)
		}
	}
}

func TestFirewallOverheadUnderSevenPercent(t *testing.T) {
	frac := FirewallOverheadFraction(1)
	if frac <= 0 {
		t.Fatal("firewall should cost something")
	}
	if frac >= 0.07 {
		t.Fatalf("firewall overhead %.1f%% exceeds the paper's 7%% bound", frac*100)
	}
}

func TestSpeculativePingSpeedsTriggering(t *testing.T) {
	with := TriggerLatency(32, true, 2)
	without := TriggerLatency(32, false, 2)
	if with <= 0 || without <= 0 {
		t.Fatalf("latencies not measured: with=%v without=%v", with, without)
	}
	if without <= with {
		t.Errorf("speculative pings should speed triggering: with=%v without=%v", with, without)
	}
}

func TestBFTHintsSpeedDissemination(t *testing.T) {
	on, off := true, false
	cfgOn := DefaultScalingConfig(32)
	cfgOn.BFTHints = &on
	cfgOff := DefaultScalingConfig(32)
	cfgOff.BFTHints = &off
	pOn := MeasureRecovery(cfgOn)
	pOff := MeasureRecovery(cfgOff)
	if !pOn.OK || !pOff.OK {
		t.Fatal("incomplete runs")
	}
	if pOff.Phases.P2Time() <= pOn.Phases.P2Time() {
		t.Errorf("hints should speed dissemination: on=%v off=%v",
			pOn.Phases.P2Time(), pOff.Phases.P2Time())
	}
}

func TestRecoveryDistribution(t *testing.T) {
	cfg := DefaultScalingConfig(8)
	d := RecoveryDistribution(cfg, 5)
	if d.Failed != 0 {
		t.Fatalf("failed runs: %d", d.Failed)
	}
	if d.Total.N != 5 || d.Total.Min <= 0 || d.Total.Min > d.Total.Max {
		t.Fatalf("total summary: %+v", d.Total)
	}
	// Phase means must add up approximately to the total mean.
	sum := d.P1.Mean + d.P2.Mean + d.P3.Mean + d.P4.Mean
	if sum < 0.8*d.Total.Mean || sum > 1.2*d.Total.Mean {
		t.Fatalf("phases (%v) do not compose to total (%v)", sum, d.Total.Mean)
	}
	if d.Stats.Runs != 5 || d.Stats.Events == 0 {
		t.Fatalf("campaign stats missing: %+v", d.Stats)
	}
}

func TestRecoveryDistributionParallelBitIdenticalToSequential(t *testing.T) {
	seq := DefaultScalingConfig(8)
	seq.Workers = 1
	par := DefaultScalingConfig(8)
	par.Workers = 8
	a := RecoveryDistribution(seq, 6)
	b := RecoveryDistribution(par, 6)
	// Stats is host-side wall-clock accounting; everything else must be
	// bit-identical.
	a.Stats = runner.Stats{}
	b.Stats = runner.Stats{}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("distributions diverge:\nworkers=1: %+v\nworkers=8: %+v", a, b)
	}
}

func TestRecoveryDistributionPanicIsolation(t *testing.T) {
	cfg := DefaultScalingConfig(8)
	cfg.Workers = 4
	cfg.runHook = func(i int) {
		if i == 3 {
			panic("injected driver crash")
		}
	}
	d := RecoveryDistribution(cfg, 6)
	if d.Failed != 1 {
		t.Fatalf("Failed = %d, want the crashed run only", d.Failed)
	}
	if d.Total.N != 5 {
		t.Fatalf("surviving runs = %d, want 5", d.Total.N)
	}
	if d.Stats.Failed != 1 {
		t.Fatalf("stats.Failed = %d, want 1", d.Stats.Failed)
	}
}

func TestValidationTraceTimeline(t *testing.T) {
	cfg := fastValidationConfig()
	tr := trace.New(0)
	cfg.Trace = tr
	r := Validation(cfg, fault.NodeFailure, 3)
	if !r.OK() {
		t.Fatalf("run failed: %s", r.Note)
	}
	if len(tr.ByKind(trace.KindFault)) != 1 {
		t.Fatalf("fault events = %d", len(tr.ByKind(trace.KindFault)))
	}
	phases := tr.ByKind(trace.KindPhase)
	if len(phases) < 10 {
		t.Fatalf("phase events = %d, want a full timeline", len(phases))
	}
	completes := tr.ByKind(trace.KindComplete)
	if len(completes) != 7 {
		t.Fatalf("completions = %d, want 7 survivors", len(completes))
	}
	// The fault strictly precedes every completion.
	faultT := tr.ByKind(trace.KindFault)[0].T
	for _, c := range completes {
		if c.T <= faultT {
			t.Fatal("completion before the fault?")
		}
	}
}
