package experiments

import (
	"fmt"

	"flashfc/internal/fault"
	"flashfc/internal/runner"
	"flashfc/internal/sim"
	"flashfc/internal/trace"
)

// Exemplar replay: a tail campaign records which run supports each reported
// percentile (TailScenario.Exemplars); ReplayTailExemplars re-executes
// exactly those runs with span tracing on. Campaign runs are a pure
// function of their derived seed — the fork-vs-fresh and cross-worker
// determinism contracts — so the traced replay IS the campaign run, not a
// reconstruction: its containment time must equal the recorded observation
// bit-for-bit, and the replay's trace explains the original outlier. The
// experiments suite enforces the equality; drivers treat a mismatch as a
// broken determinism contract.

// ExemplarReplay is one percentile exemplar re-run with tracing.
type ExemplarReplay struct {
	Fault fault.Type
	Pct   float64 // the percentile the run supports (50, 99, 99.9)
	Run   int     // run index within the campaign's per-fault batch
	Seed  int64   // the run's derived seed (replayed here)
	// CampaignTime is the containment time the campaign recorded for this
	// run; TracedTime is what the traced replay measured. Equal by the
	// determinism contract.
	CampaignTime sim.Time
	TracedTime   sim.Time
	// Result is the replayed run's full outcome.
	Result *ValidationResult
	// Trace holds the replay's span/point timeline.
	Trace *trace.Tracer
}

// Match reports whether the replay reproduced the campaign's observation
// exactly.
func (e ExemplarReplay) Match() bool { return e.TracedTime == e.CampaignTime }

// ReplayTailExemplars replays every exemplar of a finished tail campaign
// with tracing enabled. cfg and seed must be the ones the campaign ran
// under: the replay rebuilds the campaign's warm snapshot (one warm-up,
// shared across all exemplars — it is fault-independent) and forks each
// exemplar's recorded seed from it, the identical computation the campaign
// performed, plus a tracer.
func ReplayTailExemplars(cfg TailConfig, seed int64, res *TailResult) []ExemplarReplay {
	var out []ExemplarReplay
	bcfg := cfg.ValidationConfig
	bcfg.Trace = nil
	var ws *WarmState
	for _, sc := range res.Scenarios {
		for _, ex := range sc.Exemplars {
			if ws == nil {
				ws = WarmupValidation(bcfg, runner.DeriveSeed(seed, runner.StreamWarmup, 0))
			}
			tr := trace.New(0)
			r := ValidationFromWarm(ws, sc.Fault, ex.Seed, tr)
			out = append(out, ExemplarReplay{
				Fault:        sc.Fault,
				Pct:          ex.Pct,
				Run:          ex.Run,
				Seed:         ex.Seed,
				CampaignTime: ex.Time,
				TracedTime:   r.Phases.Total,
				Result:       r,
				Trace:        tr,
			})
		}
	}
	return out
}

// ReplayTailRun replays one arbitrary run of a tail campaign (not
// necessarily an exemplar) with tracing: the flashsim -run-seed path.
func ReplayTailRun(cfg TailConfig, ft fault.Type, seed int64, i int) ExemplarReplay {
	bcfg := cfg.ValidationConfig
	bcfg.Trace = nil
	ws := WarmupValidation(bcfg, runner.DeriveSeed(seed, runner.StreamWarmup, 0))
	tr := trace.New(0)
	runSeed := tailRunSeed(seed, ft, i)
	r := ValidationFromWarm(ws, ft, runSeed, tr)
	return ExemplarReplay{
		Fault: ft, Run: i, Seed: runSeed,
		CampaignTime: r.Phases.Total, TracedTime: r.Phases.Total,
		Result: r, Trace: tr,
	}
}

// ReplayValidationRun replays run i of a validation campaign (Table 5.3 /
// flashsim -runs N batches, StreamValidation seeds) with tracing — the
// flashsim -run-seed path: the same warm fork the campaign executed, so
// the traced run is campaign run i, not a lookalike.
func ReplayValidationRun(cfg ValidationConfig, ft fault.Type, seed int64, i int) ExemplarReplay {
	bcfg := cfg
	bcfg.Trace = nil
	ws := WarmupValidation(bcfg, runner.DeriveSeed(seed, runner.StreamWarmup, 0))
	tr := trace.New(0)
	runSeed := runner.DeriveSeed(seed, runner.StreamValidation+int(ft), i)
	r := ValidationFromWarm(ws, ft, runSeed, tr)
	return ExemplarReplay{
		Fault: ft, Run: i, Seed: runSeed,
		CampaignTime: r.Phases.Total, TracedTime: r.Phases.Total,
		Result: r, Trace: tr,
	}
}

// String renders the one-line replay summary the drivers print.
func (e ExemplarReplay) String() string {
	verdict := "match"
	if !e.Match() {
		verdict = fmt.Sprintf("MISMATCH (campaign %v)", e.CampaignTime)
	}
	return fmt.Sprintf("p%g exemplar: %v run %d seed %d, containment %v, %s",
		e.Pct, e.Fault, e.Run, e.Seed, e.TracedTime, verdict)
}
