package experiments

import (
	"bytes"
	"testing"

	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/sim"
	"flashfc/internal/trace"
	"flashfc/internal/workload"
)

// testPartitionConfig is a small mesh scenario that still has several
// regions (8×8 → 8 stripes) and real cross-region traffic.
func testPartitionConfig() PartitionConfig {
	return PartitionConfig{
		Nodes:      64,
		MemBytes:   64 << 10,
		L2Bytes:    16 << 10,
		OpsPerNode: 32,
		Deadline:   2 * sim.Second,
	}
}

// metricsAndTrace runs the fill scenario and returns the exact bytes the
// CLI would emit for -metrics-json and -trace-json.
func metricsAndTrace(t *testing.T, cfg PartitionConfig, seed int64) (string, string) {
	t.Helper()
	tr := trace.New(0)
	cfg.Trace = tr
	r := PartitionFill(cfg, seed)
	if !r.OK() {
		t.Fatalf("partitions=%d: fill incomplete: %s", cfg.Partitions, r.Note)
	}
	var mbuf, tbuf bytes.Buffer
	if err := r.Metrics.WriteJSON(&mbuf); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	if err := tr.WriteChromeJSON(&tbuf); err != nil {
		t.Fatalf("trace json: %v", err)
	}
	return mbuf.String(), tbuf.String()
}

// TestPartitionFillWorkerInvariance is the PR's headline acceptance check
// at the experiment level: -metrics-json and -trace-json bytes are
// identical at -partitions 1 and -partitions 4 (and 2).
func TestPartitionFillWorkerInvariance(t *testing.T) {
	cfg := testPartitionConfig()
	cfg.Partitions = 1
	wantM, wantT := metricsAndTrace(t, cfg, 7)
	for _, w := range []int{2, 4} {
		cfg.Partitions = w
		gotM, gotT := metricsAndTrace(t, cfg, 7)
		if gotM != wantM {
			t.Errorf("metrics JSON differs between -partitions 1 and %d", w)
		}
		if gotT != wantT {
			t.Errorf("trace JSON differs between -partitions 1 and %d", w)
		}
	}
}

// TestPartitionBoundaryFaultWorkerInvariance exercises the fault path that
// coincides with a partition boundary: FailLink on an inter-region link,
// recovery across the cut, full memory verification — byte-identical
// metrics at any worker count.
func TestPartitionBoundaryFaultWorkerInvariance(t *testing.T) {
	cfg := testPartitionConfig()
	var want string
	for i, w := range []int{1, 4} {
		cfg.Partitions = w
		r := PartitionBoundaryFault(cfg, 11)
		if !r.OK() {
			t.Fatalf("partitions=%d: %s (recovered=%v verify=%v)", w, r.Note, r.Recovered, r.Verify)
		}
		var buf bytes.Buffer
		if err := r.Metrics.WriteJSON(&buf); err != nil {
			t.Fatalf("metrics json: %v", err)
		}
		if i == 0 {
			want = buf.String()
		} else if buf.String() != want {
			t.Errorf("metrics JSON differs between -partitions 1 and %d", w)
		}
	}
}

// TestPartitionNodeFaultOnBoundaryRow kills a node whose router sits on a
// region boundary (the last row of stripe 0 in the 8×8 mesh), mid-fill,
// with parallel windows active before injection. Recovery and verification
// must succeed and stay byte-identical across worker counts.
func TestPartitionNodeFaultOnBoundaryRow(t *testing.T) {
	run := func(workers int) (string, *ValidationResult) {
		mc := machine.DefaultConfig(64)
		mc.Seed = 23
		mc.MemBytes = 64 << 10
		mc.L2Bytes = 16 << 10
		mc.Partitions = workers
		mc.ParallelWindows = true
		m := machine.New(mc)

		// Node 7 is in stripe 0 (rows 0 of the 8×8 mesh with 8 stripes:
		// every row is its own region), so its vertical neighbor at node
		// 15 is across a boundary — the fault sits exactly on a region
		// edge.
		victim := 7
		if m.Regions.Of(victim) == m.Regions.Of(victim+8) {
			t.Fatalf("test premise broken: nodes 7 and 15 share a region")
		}
		f := fault.Fault{Type: fault.NodeFailure, Node: victim}

		pf := workload.NewPartitionFill(m)
		pf.OpsPerNode = 32
		pf.Start()
		for pf.Remaining() > pf.Total()/2 && m.Now() < 2*sim.Second {
			m.Advance(m.Now() + sim.Millisecond)
		}
		m.Inject(f)
		m.Nodes[0].CPU.Submit(workload.TouchOp(m, victim))
		res := &ValidationResult{Fault: f}
		res.Recovered = m.RunUntilRecovered(2 * sim.Second)
		if res.Recovered {
			res.Verify = m.VerifyMemory(0, 1)
		}
		res.Metrics = m.MetricsSnapshot()
		var buf bytes.Buffer
		if err := res.Metrics.WriteJSON(&buf); err != nil {
			t.Fatalf("metrics json: %v", err)
		}
		return buf.String(), res
	}
	want, res := run(1)
	if !res.Recovered || res.Verify == nil || !res.Verify.OK() {
		t.Fatalf("workers=1: recovered=%v verify=%v", res.Recovered, res.Verify)
	}
	got, res4 := run(4)
	if !res4.Recovered || res4.Verify == nil || !res4.Verify.OK() {
		t.Fatalf("workers=4: recovered=%v verify=%v", res4.Recovered, res4.Verify)
	}
	if got != want {
		t.Errorf("metrics JSON differs between 1 and 4 workers")
	}
}

// TestPartitionedValidationAllFaults runs the standard validation scenario
// on a partitioned machine for every fault type: fault injection forces the
// global interleave, so the full recovery algorithm must work unchanged.
func TestPartitionedValidationAllFaults(t *testing.T) {
	cfg := DefaultValidationConfig()
	cfg.Nodes = 16
	cfg.FillLines = 64
	cfg.Partitions = 2
	for _, ft := range fault.AllTypes() {
		r := Validation(cfg, ft, 5)
		if !r.OK() {
			t.Errorf("%v: %s (recovered=%v verify=%v)", ft, r.Note, r.Recovered, r.Verify)
		}
	}
}

// TestPartitionSequentialBaseline pins the relationship between the
// sequential engine and the partitioned engine at partitions=1: same
// workload completes on both, and the partitioned run reports its region
// structure in the result.
func TestPartitionSequentialBaseline(t *testing.T) {
	cfg := testPartitionConfig()
	cfg.Partitions = 0
	seq := PartitionFill(cfg, 3)
	if !seq.OK() {
		t.Fatalf("sequential: %s", seq.Note)
	}
	if seq.Regions != 1 || seq.Barriers != 0 {
		t.Errorf("sequential run reports regions=%d barriers=%d", seq.Regions, seq.Barriers)
	}
	cfg.Partitions = 1
	par := PartitionFill(cfg, 3)
	if !par.OK() {
		t.Fatalf("partitioned: %s", par.Note)
	}
	if par.Regions != 8 {
		t.Errorf("partitioned 8x8 mesh: regions = %d, want 8", par.Regions)
	}
	if par.Merged == 0 {
		t.Error("partitioned run merged no cross-region events — remote traffic missing")
	}
}
