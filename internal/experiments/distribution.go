package experiments

import (
	"flashfc/internal/metrics"
	"flashfc/internal/runner"
	"flashfc/internal/stats"
)

// Multi-seed distribution runs: the paper plots single representative
// recovery times; this driver quantifies how tight they are across random
// fault placements and workload interleavings.

// Distribution summarizes recovery-time statistics across seeds.
type Distribution struct {
	Nodes  int
	P1     stats.Summary // milliseconds
	P2     stats.Summary
	P3     stats.Summary
	P4     stats.Summary
	Total  stats.Summary
	Failed int // runs that did not complete recovery (or panicked)
	// Stats is the campaign's host-side throughput accounting; it is the
	// only field that depends on wall-clock rather than simulated state.
	Stats runner.Stats
	// Metrics is the campaign aggregate: every non-crashed run's metric
	// snapshot, merged in run order.
	Metrics *metrics.Snapshot
}

// RecoveryDistribution measures per-phase recovery times over `seeds`
// independent runs of cfg on a cfg.Workers-wide pool. Each run's seed is
// runner.DeriveSeed(cfg.Seed, StreamDistribution, s), and when cfg.Victim
// is -1 the victim node is derived from the same seed — so the
// distribution covers fault placement too, and is bit-identical for any
// worker count. A run that panics counts as failed.
func RecoveryDistribution(cfg ScalingConfig, seeds int) Distribution {
	results, st := runner.Campaign(seeds, cfg.Workers, func(s int, rec *runner.Recorder) ScalingPoint {
		if cfg.runHook != nil {
			cfg.runHook(s)
		}
		run := cfg
		run.Seed = runner.DeriveSeed(cfg.Seed, runner.StreamDistribution, s)
		if run.Victim < 0 && cfg.Nodes > 1 {
			run.Victim = 1 + int(uint64(run.Seed)%uint64(cfg.Nodes-1))
		}
		p := MeasureRecovery(run)
		rec.Report(p.Events)
		return p
	}, nil)
	return SummarizeDistribution(cfg.Nodes, results, st)
}

// SummarizeDistribution folds per-run recovery measurements into the
// per-phase distribution summary. Exposed so the façade's campaign path
// can aggregate identically to RecoveryDistribution.
func SummarizeDistribution(nodes int, results []runner.Result[ScalingPoint], st runner.Stats) Distribution {
	d := Distribution{Nodes: nodes}
	d.Stats = st

	var p1, p2, p3, p4, total []float64
	snaps := make([]*metrics.Snapshot, 0, len(results))
	for _, r := range results {
		if r.Err == nil {
			snaps = append(snaps, r.Value.Metrics)
		}
		if r.Err != nil || !r.Value.OK {
			d.Failed++
			continue
		}
		ph := r.Value.Phases
		p1 = append(p1, ph.P1.Milliseconds())
		p2 = append(p2, ph.P2Time().Milliseconds())
		p3 = append(p3, (ph.P123 - ph.P12).Milliseconds())
		p4 = append(p4, ph.P4Time().Milliseconds())
		total = append(total, ph.Total.Milliseconds())
	}
	d.P1 = stats.Summarize(p1)
	d.P2 = stats.Summarize(p2)
	d.P3 = stats.Summarize(p3)
	d.P4 = stats.Summarize(p4)
	d.Total = stats.Summarize(total)
	d.Metrics = runner.MergeMetrics(snaps)
	return d
}
