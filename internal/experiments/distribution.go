package experiments

import (
	"flashfc/internal/stats"
)

// Multi-seed distribution runs: the paper plots single representative
// recovery times; this driver quantifies how tight they are across random
// fault placements and workload interleavings.

// Distribution summarizes recovery-time statistics across seeds.
type Distribution struct {
	Nodes  int
	P1     stats.Summary // milliseconds
	P2     stats.Summary
	P3     stats.Summary
	P4     stats.Summary
	Total  stats.Summary
	Failed int // runs that did not complete recovery
}

// RecoveryDistribution measures per-phase recovery times over `seeds`
// independent runs of cfg (cfg.Seed is replaced per run and the victim node
// varies with it, so the distribution covers fault placement too).
func RecoveryDistribution(cfg ScalingConfig, seeds int) Distribution {
	d := Distribution{Nodes: cfg.Nodes}
	var p1, p2, p3, p4, total []float64
	for s := 0; s < seeds; s++ {
		run := cfg
		run.Seed = int64(s + 1)
		if run.Victim < 0 && cfg.Nodes > 1 {
			run.Victim = 1 + (s*7)%(cfg.Nodes-1)
		}
		p := MeasureRecovery(run)
		if !p.OK {
			d.Failed++
			continue
		}
		ph := p.Phases
		p1 = append(p1, ph.P1.Milliseconds())
		p2 = append(p2, ph.P2Time().Milliseconds())
		p3 = append(p3, (ph.P123 - ph.P12).Milliseconds())
		p4 = append(p4, ph.P4Time().Milliseconds())
		total = append(total, ph.Total.Milliseconds())
	}
	d.P1 = stats.Summarize(p1)
	d.P2 = stats.Summarize(p2)
	d.P3 = stats.Summarize(p3)
	d.P4 = stats.Summarize(p4)
	d.Total = stats.Summarize(total)
	return d
}
