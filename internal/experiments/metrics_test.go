package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flashfc/internal/fault"
	"flashfc/internal/metrics"
	"flashfc/internal/runner"
)

var update = flag.Bool("update", false, "rewrite golden files")

// collectSnaps extracts the metric snapshots of every non-crashed run.
func collectSnaps(results []runner.Result[*ValidationResult]) []*metrics.Snapshot {
	var snaps []*metrics.Snapshot
	for _, r := range results {
		if r.Err == nil {
			snaps = append(snaps, r.Value.Metrics)
		}
	}
	return snaps
}

// The merged campaign snapshot must serialize to the same bytes no matter
// how many workers measured the runs — the acceptance criterion for the
// whole metrics layer.
func TestMergedMetricsJSONBitIdenticalAcrossWorkers(t *testing.T) {
	jsonFor := func(workers int) []byte {
		cfg := fastValidationConfig()
		cfg.Workers = workers
		results, _ := validationBatch(cfg, fault.NodeFailure, 6, 1)
		var buf bytes.Buffer
		if err := runner.MergeMetrics(collectSnaps(results)).WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	seq := jsonFor(1)
	par := jsonFor(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("merged metrics JSON differs between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", seq, par)
	}
}

// Every simulation layer must report into the per-machine registry: at
// least one nonzero counter from the sim engine, the interconnect, the
// MAGIC controllers, the recovery agents, and the machine harness.
func TestMetricsCoverEveryLayer(t *testing.T) {
	r := Validation(fastValidationConfig(), fault.NodeFailure, 1)
	if !r.OK() {
		t.Fatalf("run failed: %s", r.Note)
	}
	if r.Metrics == nil {
		t.Fatal("ValidationResult.Metrics is nil")
	}
	for _, prefix := range []string{"sim.", "interconnect.", "magic.", "core.", "machine."} {
		found := false
		for name, v := range r.Metrics.Counters {
			if strings.HasPrefix(name, prefix) && v > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no nonzero counter with prefix %q in snapshot", prefix)
		}
	}
}

// Batch drivers must carry their aggregates: every Table 5.3 row merges
// its runs' snapshots, and every scaling point carries its own.
func TestBatchDriversCarryMetrics(t *testing.T) {
	cfg := fastValidationConfig()
	rows, _ := table53(cfg, 2, 1)
	for _, row := range rows {
		if row.Metrics == nil {
			t.Fatalf("%v row has nil Metrics", row.Fault)
		}
		if got := row.Metrics.Counters["machine.faults_injected"]; got != uint64(row.Runs) {
			t.Errorf("%v row: machine.faults_injected = %d, want %d", row.Fault, got, row.Runs)
		}
	}

	p := MeasureRecovery(DefaultScalingConfig(2))
	if !p.OK {
		t.Fatal("scaling run failed")
	}
	if p.Metrics == nil || p.Metrics.Counters["machine.recoveries"] != 1 {
		t.Errorf("ScalingPoint.Metrics missing or machine.recoveries != 1: %+v", p.Metrics)
	}

	d := RecoveryDistribution(DefaultScalingConfig(2), 3)
	if d.Metrics == nil || d.Metrics.Counters["machine.recoveries"] != 3 {
		t.Errorf("Distribution.Metrics missing or machine.recoveries != 3")
	}
}

// The snapshot of a fixed small run is pinned as a golden file: any
// unintended change to event ordering, seeding, or instrument placement
// shows up as a diff. Regenerate intentional changes with `go test
// ./internal/experiments -run Golden -update`.
func TestMetricsGoldenSnapshot(t *testing.T) {
	r := Validation(fastValidationConfig(), fault.NodeFailure, 7)
	if !r.OK() {
		t.Fatalf("run failed: %s", r.Note)
	}
	var buf bytes.Buffer
	if err := r.Metrics.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	golden := filepath.Join("testdata", "metrics_node_failure_seed7.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot differs from golden file %s (regenerate intentional changes with -update):\n--- got\n%s\n--- want\n%s",
			golden, buf.Bytes(), want)
	}
}
