package experiments

import (
	"flashfc/internal/coherence"
	"flashfc/internal/machine"
	"flashfc/internal/magic"
	"flashfc/internal/sim"
)

// §6.2: the firewall's only normal-mode cost is the access-permission check
// added to the handlers servicing intercell writes; the paper measures the
// average increase in intercell write cache-miss latency at under 7% of the
// fastest internode write miss.

// FirewallLatency measures the latency of an intercell write miss with the
// firewall on or off.
func FirewallLatency(on bool, seed int64) sim.Time {
	mc := machine.DefaultConfig(4)
	mc.Seed = seed
	mc.MemBytes = 64 << 10
	mc.L2Bytes = 16 << 10
	mc.Magic.FirewallEnabled = on
	mc.FailureUnits = []int{0, 0, 1, 1}
	m := machine.New(mc)
	// Node 2 (unit 1) writes a line homed on node 0 (unit 0): an
	// intercell write miss.
	addr := m.Space.Base(0) + 0x2000
	start := m.E.Now()
	var end sim.Time
	m.Nodes[2].Ctrl.Write(addr, 1, func(r magic.Result) {
		if r.Err != nil {
			panic("firewall latency probe failed: " + r.Err.Error())
		}
		end = m.E.Now()
	})
	m.E.Run()
	_ = coherence.Addr(0)
	return end - start
}

// FirewallOverheadFraction returns (on-off)/off.
func FirewallOverheadFraction(seed int64) float64 {
	off := FirewallLatency(false, seed)
	on := FirewallLatency(true, seed)
	return float64(on-off) / float64(off)
}
