package experiments

import (
	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/metrics"
	"flashfc/internal/runner"
)

// Test-local stand-ins for the removed pre-campaign batch wrappers
// (ValidationBatch, Table53, Fig55, Fig56L2, Fig56Mem): they reproduce the
// exact seed streams and aggregation of the originals so the determinism,
// metrics and scaling assertions keep pinning the same computations.

func validationBatch(cfg ValidationConfig, ft fault.Type, runs int, seed int64) ([]runner.Result[*ValidationResult], runner.Stats) {
	return WarmValidationBatch(cfg, ft, runs, seed)
}

func table53(cfg ValidationConfig, runs int, seed int64) ([]Table53Row, runner.Stats) {
	var rows []Table53Row
	var total runner.Stats
	for _, ft := range fault.AllTypes() {
		row := Table53Row{Fault: ft, Runs: runs}
		results, stats := validationBatch(cfg, ft, runs, seed)
		snaps := make([]*metrics.Snapshot, 0, len(results))
		for _, r := range results {
			if r.Err != nil || !r.Value.OK() {
				row.Failed++
			}
			if r.Err == nil {
				snaps = append(snaps, r.Value.Metrics)
			}
		}
		row.Metrics = runner.MergeMetrics(snaps)
		total.Merge(stats)
		rows = append(rows, row)
	}
	return rows, total
}

func fig55(nodeCounts []int, topo machine.TopoKind, seed int64, workers int) []ScalingPoint {
	return runner.Map(len(nodeCounts), workers, func(i int) ScalingPoint {
		cfg := DefaultScalingConfig(nodeCounts[i])
		cfg.Topo = topo
		cfg.Seed = seed
		return MeasureRecovery(cfg)
	})
}

func fig56L2(l2Sizes []uint64, seed int64, workers int) []ScalingPoint {
	return runner.Map(len(l2Sizes), workers, func(i int) ScalingPoint {
		cfg := DefaultScalingConfig(4)
		cfg.L2Bytes = l2Sizes[i]
		cfg.MemBytes = 4 << 20
		cfg.Seed = seed
		p := MeasureRecovery(cfg)
		p.X = float64(l2Sizes[i]) / (1 << 20)
		return p
	})
}

func fig56Mem(memSizes []uint64, seed int64, workers int) []ScalingPoint {
	return runner.Map(len(memSizes), workers, func(i int) ScalingPoint {
		cfg := DefaultScalingConfig(4)
		cfg.MemBytes = memSizes[i]
		cfg.Seed = seed
		p := MeasureRecovery(cfg)
		p.X = float64(memSizes[i]) / (1 << 20)
		return p
	})
}
