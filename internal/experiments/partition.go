package experiments

import (
	"fmt"

	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/metrics"
	"flashfc/internal/sim"
	"flashfc/internal/trace"
	"flashfc/internal/workload"
)

// PartitionConfig shapes a partitioned-simulation scenario: the fault-free
// fill run that demonstrates intra-machine speedup (PartitionFill) and the
// boundary-link fault run that exercises recovery across a region cut
// (PartitionBoundaryFault).
type PartitionConfig struct {
	Nodes    int
	MemBytes uint64
	L2Bytes  uint64
	// OpsPerNode is the number of accesses each node issues; 0 uses the
	// workload default (half the cache capacity).
	OpsPerNode int
	// Partitions is the intra-machine worker count (machine.Config.
	// Partitions); 0 runs the classic sequential engine for comparison.
	Partitions int
	// RegionLinkExtra overrides the inter-region wire latency; 0 uses
	// machine.DefaultRegionLinkExtra.
	RegionLinkExtra sim.Time
	Deadline        sim.Time
	// Trace, when non-nil, collects the run's event timeline.
	Trace *trace.Tracer
}

// DefaultPartitionConfig returns the 1024-node scaling scenario: a 32×32
// mesh — three orders of magnitude past the paper's largest measured
// machine — with a light per-node fill so single runs stay tractable.
func DefaultPartitionConfig() PartitionConfig {
	return PartitionConfig{
		Nodes:      1024,
		MemBytes:   64 << 10,
		L2Bytes:    16 << 10,
		OpsPerNode: 48,
		Partitions: 4,
		Deadline:   2 * sim.Second,
	}
}

// PartitionResult is one partitioned-scenario run.
type PartitionResult struct {
	// Completed / Total count workload accesses that finished by the
	// deadline.
	Completed, Total int64
	// Events is the number of simulated events fired across all regions.
	Events uint64
	// Regions is the machine's fixed region count (1 on a sequential run).
	Regions int
	// Barriers and Merged are the partition coordinator's window-barrier
	// and cross-region-merge counts (0 on a sequential run).
	Barriers, Merged uint64
	Now              sim.Time
	Metrics          *metrics.Snapshot
	Note             string
}

// OK reports whether every submitted access completed.
func (r *PartitionResult) OK() bool { return r.Total > 0 && r.Completed == r.Total }

// buildPartitionMachine constructs the scenario machine for cfg.
func buildPartitionMachine(cfg PartitionConfig, seed int64) *machine.Machine {
	mc := machine.DefaultConfig(cfg.Nodes)
	mc.Seed = seed
	mc.MemBytes = cfg.MemBytes
	mc.L2Bytes = cfg.L2Bytes
	mc.Trace = cfg.Trace
	mc.Partitions = cfg.Partitions
	mc.RegionLinkExtra = cfg.RegionLinkExtra
	mc.ParallelWindows = true
	return machine.New(mc)
}

// fillResult scrapes the common result fields from a finished run.
func fillResult(m *machine.Machine, pf *workload.PartitionFill, res *PartitionResult) {
	res.Completed = pf.Total() - pf.Remaining()
	res.Total = pf.Total()
	res.Now = m.Now()
	res.Events = m.E.EventsFired()
	res.Regions = 1
	if m.P != nil {
		res.Events = m.P.EventsFired()
		res.Regions = m.P.Regions()
		res.Barriers = m.P.Barriers()
		res.Merged = m.P.Merged()
	}
	res.Metrics = m.MetricsSnapshot()
}

// PartitionFill runs the fault-free partitioned fill scenario: every node
// fills its cache with mostly-local lines, regions execute their windows on
// cfg.Partitions parallel workers, and the result is bit-identical at any
// worker count (the speedup claim is measured by the PR6 benchmark, the
// identity claim by the machine determinism tests).
func PartitionFill(cfg PartitionConfig, seed int64) *PartitionResult {
	m := buildPartitionMachine(cfg, seed)
	pf := workload.NewPartitionFill(m)
	if cfg.OpsPerNode > 0 {
		pf.OpsPerNode = cfg.OpsPerNode
	}
	pf.Start()
	for !pf.Done() && m.Now() < cfg.Deadline {
		m.Advance(m.Now() + sim.Millisecond)
	}
	res := &PartitionResult{}
	fillResult(m, pf, res)
	if !res.OK() {
		res.Note = fmt.Sprintf("%d/%d accesses incomplete after %v",
			pf.Remaining(), pf.Total(), cfg.Deadline)
	}
	return res
}

// BoundaryLink returns a deterministic inter-region link of a partitioned
// machine: the lowest-numbered link whose endpoints lie in different
// regions. It panics if the machine has no region boundary (sequential
// machine or single-region decomposition).
func BoundaryLink(m *machine.Machine) int {
	if m.Regions != nil {
		for id := range m.Topo.Links() {
			if m.Regions.CrossRegion(id) {
				return id
			}
		}
	}
	panic("experiments: machine has no inter-region boundary link")
}

// PartitionBoundaryFault runs the region-cut fault scenario: start the fill
// workload in parallel windows, then fail a link that is exactly on a
// partition boundary. Injection switches the run to the deterministic
// global interleave, recovery proceeds across the cut, and the sweep
// verifies memory — exercising the one place where fault containment and
// partition boundaries coincide.
func PartitionBoundaryFault(cfg PartitionConfig, seed int64) *ValidationResult {
	m := buildPartitionMachine(cfg, seed)
	link := BoundaryLink(m)
	f := fault.Fault{Type: fault.LinkFailure, Link: link}
	res := &ValidationResult{Fault: f}
	defer func() {
		res.Events = m.E.EventsFired()
		if m.P != nil {
			res.Events = m.P.EventsFired()
		}
		res.Metrics = m.MetricsSnapshot()
	}()

	pf := workload.NewPartitionFill(m)
	if cfg.OpsPerNode > 0 {
		pf.OpsPerNode = cfg.OpsPerNode
	}
	pf.Start()
	// Let roughly half the fill complete in parallel windows, then inject.
	for pf.Remaining() > pf.Total()/2 && m.Now() < cfg.Deadline {
		m.Advance(m.Now() + sim.Millisecond)
	}
	m.Inject(f)
	// Provoke detection with a read across the dead link.
	kick := m.Topo.Links()[link].B
	m.Nodes[m.Topo.Links()[link].A].CPU.Submit(workload.TouchOp(m, kick))
	res.Recovered = m.RunUntilRecovered(cfg.Deadline)
	if !res.Recovered {
		res.Note = fmt.Sprintf("recovery incomplete after %v", cfg.Deadline)
		return res
	}
	res.Phases = m.Aggregate()
	res.Verify = m.VerifyMemory(0, cfg.Stride())
	if !res.Verify.OK() {
		res.Note = res.Verify.String()
	}
	return res
}

// Stride returns the verification stride for the scenario size: full sweep
// up to 64 nodes, sampled beyond (the 1024-node sweep would dominate the
// run).
func (cfg PartitionConfig) Stride() int {
	if cfg.Nodes <= 64 {
		return 1
	}
	return 8
}
