package experiments

import (
	"flashfc/internal/obs"
	"flashfc/internal/runner"
)

// Observability plumbing: batch drivers reduce every completed run to one
// obs.RunRecord and feed it to the config's Sink. Records flow in
// completion order — the obs sinks decide whether they need index order —
// and carry the run's derived seed, so any row of a run log can be
// replayed exactly (flashsim -run-seed, ReplayTailExemplars).

// RunRecordOf reduces one validation run to its observability record.
// seed must be the run's derived seed — the value that reproduces it.
func RunRecordOf(i int, seed int64, r runner.Result[*ValidationResult]) obs.RunRecord {
	rec := obs.RunRecord{
		Run:    i,
		Seed:   seed,
		Events: r.Events,
		WallNS: r.Wall.Nanoseconds(),
		Worker: r.Worker,
	}
	switch {
	case r.Err != nil:
		rec.Outcome = obs.OutcomePanic
		rec.Note = r.Err.Error()
	case r.Value.OK():
		rec.Outcome = obs.OutcomePass
	default:
		rec.Outcome = obs.OutcomeFail
		rec.Note = r.Value.Note
	}
	if r.Err == nil && r.Value != nil {
		rec.Fault = r.Value.Fault.String()
		rec.ContainmentNS = int64(r.Value.Phases.Total)
		rec.AffectedNodes = r.Value.AffectedNodes
	}
	return rec
}

// observeBatch announces a batch to the config's sink (if any) and returns
// the runner observe callback that feeds it, nil when unobserved.
func observeBatch(sink obs.Sink, b obs.Batch, seedFor func(i int) int64) func(i int, r runner.Result[*ValidationResult]) {
	if sink == nil {
		return nil
	}
	sink.StartBatch(b)
	return func(i int, r runner.Result[*ValidationResult]) {
		sink.RunDone(RunRecordOf(i, seedFor(i), r))
	}
}
