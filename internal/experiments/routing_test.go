package experiments

import (
	"reflect"
	"testing"

	"flashfc/internal/routing"
	"flashfc/internal/runner"
)

// fastRoutingConfig shrinks the campaign enough for the unit suite.
func fastRoutingConfig() RoutingConfig {
	cfg := DefaultRoutingConfig()
	cfg.FillLines = 64
	cfg.Runs = 4
	return cfg
}

func TestRoutingCampaignHeadToHead(t *testing.T) {
	cfg := fastRoutingConfig()
	res := RoutingCampaign(cfg, 7)
	if len(res.Scenarios) != len(DefaultRoutingScenarios()) {
		t.Fatalf("got %d scenarios", len(res.Scenarios))
	}
	for _, sc := range res.Scenarios {
		if len(sc.Cells) != len(routing.Names()) {
			t.Fatalf("%s: got %d cells, want one per strategy", sc.Spec.Name, len(sc.Cells))
		}
		for _, c := range sc.Cells {
			if c.Failed != 0 {
				t.Errorf("%s/%s: %d of %d runs failed", sc.Spec.Name, c.Strategy, c.Failed, c.Runs)
			}
			if c.Deadlocks != 0 {
				t.Errorf("%s/%s: %d runs left a dependency cycle installed", sc.Spec.Name, c.Strategy, c.Deadlocks)
			}
			if c.RecoveryP50 <= 0 {
				t.Errorf("%s/%s: no recovery time measured", sc.Spec.Name, c.Strategy)
			}
			if c.ThroughputP50 <= 0 {
				t.Errorf("%s/%s: no post-recovery throughput measured", sc.Spec.Name, c.Strategy)
			}
		}
	}
}

// TestRoutingRunsArePaired verifies the head-to-head contract: at the same
// run seed, every strategy faces the identical fault set.
func TestRoutingRunsArePaired(t *testing.T) {
	cfg := fastRoutingConfig()
	ws := WarmupValidation(cfg.ValidationConfig, runner.DeriveSeed(3, runner.StreamWarmup, 0))
	spec := RoutingScenarioSpec{Name: "multi-link", Links: 2}
	seed := routingRunSeed(3, 0, 1)
	var faults [][]string
	for _, name := range routing.Names() {
		r := RoutingFromWarm(ws, name, spec, seed)
		var fs []string
		for _, f := range r.Faults {
			fs = append(fs, f.String())
		}
		faults = append(faults, fs)
	}
	for i := 1; i < len(faults); i++ {
		if !reflect.DeepEqual(faults[0], faults[i]) {
			t.Fatalf("strategies %s and %s drew different faults: %v vs %v",
				routing.Names()[0], routing.Names()[i], faults[0], faults[i])
		}
	}
}

// TestRoutingCampaignDeterministic pins the bit-identical contract across
// worker counts and warm-start modes.
func TestRoutingCampaignDeterministic(t *testing.T) {
	base := fastRoutingConfig()
	base.Runs = 2
	base.Scenarios = []RoutingScenarioSpec{{Name: "single-link", Links: 1}}

	ref := RoutingCampaign(base, 5)

	workers := base
	workers.Workers = 3
	cold := base
	cold.WarmStart = WarmStartOff

	for label, cfg := range map[string]RoutingConfig{"workers=3": workers, "warmstart=off": cold} {
		got := RoutingCampaign(cfg, 5)
		if !reflect.DeepEqual(ref.Scenarios, got.Scenarios) {
			t.Fatalf("%s changed the campaign result:\nref %+v\ngot %+v", label, ref.Scenarios, got.Scenarios)
		}
	}
}

// TestRoutingStrategyDiffers sanity-checks that the alternatives are not the
// paper strategy in disguise: on a single dead link, incremental must charge
// fewer reprogrammed entries, which surfaces as a shorter P3.
func TestRoutingStrategyDiffers(t *testing.T) {
	cfg := fastRoutingConfig()
	ws := WarmupValidation(cfg.ValidationConfig, runner.DeriveSeed(9, runner.StreamWarmup, 0))
	spec := RoutingScenarioSpec{Name: "single-link", Links: 1}
	seed := routingRunSeed(9, 0, 0)
	paper := RoutingFromWarm(ws, "paper", spec, seed)
	incr := RoutingFromWarm(ws, "incremental", spec, seed)
	if !paper.Recovered || !incr.Recovered {
		t.Fatalf("runs did not recover: paper=%v incremental=%v", paper.Recovered, incr.Recovered)
	}
	if incr.P3 >= paper.P3 {
		t.Errorf("incremental P3 %v not below paper's %v", incr.P3, paper.P3)
	}
}
