// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation section (§5), plus the ablation
// measurements discussed in §4 and §6: Table 5.3 (validation runs),
// Table 5.4 (end-to-end Hive runs), Fig 5.5 (hardware recovery scaling),
// Fig 5.6 (coherence-recovery component scaling), Fig 5.7 (end-to-end
// suspension times), the §6.2 firewall cost, the §4.2 speculative-ping
// trigger speedup, and the §4.3 BFT-hint scheduling benefit.
package experiments

import (
	"fmt"

	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/metrics"
	"flashfc/internal/obs"
	"flashfc/internal/sim"
	"flashfc/internal/trace"
	"flashfc/internal/workload"
)

// ValidationResult is one Table 5.3 run.
type ValidationResult struct {
	Fault     fault.Fault
	Recovered bool
	Verify    *machine.VerifyResult
	Phases    machine.PhaseTimes
	Note      string
	// Events is the number of simulated events the run's engine fired;
	// campaigns aggregate it into events/sec throughput.
	Events uint64
	// AffectedNodes is how many nodes the fault cost the machine: the
	// nodes that did not emerge from recovery as healthy participants
	// (dead, isolated, or shut down with their failure unit). The tail
	// campaign reports it as a fraction of the machine.
	AffectedNodes int
	// Metrics is the run's machine-wide metric snapshot (always set, even
	// when recovery fails); campaigns merge and summarize them.
	Metrics *metrics.Snapshot
}

// OK reports whether the run counts as passed: recovery completed and the
// whole-memory sweep found data either intact or justifiably incoherent —
// and, for false alarms, no data loss at all (§4.1).
func (r *ValidationResult) OK() bool {
	if !r.Recovered || r.Verify == nil || !r.Verify.OK() {
		return false
	}
	switch r.Fault.Type {
	case fault.FalseAlarm, fault.FailSlow:
		// Nothing died and no link dropped traffic: recovery must not
		// have cost a single line. (A fail-slow engine still fields every
		// data-carrying message — slowly — so losses would be a bug.)
		if r.Verify.Incoherent != 0 {
			return false
		}
	}
	return true
}

// ValidationConfig shapes one validation run.
type ValidationConfig struct {
	Nodes     int
	MemBytes  uint64
	L2Bytes   uint64
	FillLines int // lines each node touches before the fault
	Deadline  sim.Time
	Stride    int // verification stride (1 = full sweep)
	// Workers bounds the goroutines a batch driver (Table53,
	// ValidationBatch) may use; 0 means one per CPU. Single runs ignore
	// it. Any worker count yields bit-identical results.
	Workers int
	// Partitions, when > 0, runs the machine on the partitioned engine
	// with that many intra-machine workers. Fault injection forces the
	// deterministic global interleave, so validation results are
	// bit-identical at any Partitions value (including 0, up to the
	// partitioned fabric's longer inter-region links).
	Partitions int
	// RegionLinkExtra overrides the extra inter-region wire latency of a
	// partitioned machine; 0 uses machine.DefaultRegionLinkExtra.
	RegionLinkExtra sim.Time
	// Routing names the interconnect-recovery routing strategy the runs
	// use ("" or "paper" is the paper's policy on the byte-identical
	// pre-strategy path; see internal/routing).
	Routing string
	// WarmStart selects how batch drivers amortize the cache-fill warm-up:
	// the default (Auto) builds one warmed machine snapshot per worker and
	// forks every run from it; Off rebuilds the warm state per run. Both
	// modes are bit-identical. Single Validation runs ignore it.
	WarmStart WarmStartMode
	// BurstLines sizes the post-fork fill burst of warm-start runs; 0
	// defaults to a quarter of the warm fill (minimum 8).
	BurstLines int
	// Trace, when non-nil, collects the run's event timeline. It applies
	// to single Validation runs only: batch drivers clear it — the tracer
	// itself is safe to share across goroutines, but interleaving many
	// runs' simulated timelines into one trace produces nonsense.
	Trace *trace.Tracer
	// Observe, when non-nil, receives one obs.Batch announcement plus a
	// per-run obs.RunRecord from every batch driver (ValidationBatch,
	// TailCampaign); single runs ignore it. Records arrive in completion
	// order; the driver never calls Finish — the owner of the sink does,
	// after its last batch.
	Observe obs.Sink
	// runHook, when non-nil, runs at the start of every batch run with
	// the run index. Test-only: it lets the suite crash a chosen run and
	// assert that the runner's panic isolation turns it into a failed
	// row instead of aborting the campaign.
	runHook func(i int)
}

// DefaultValidationConfig returns a fast-but-faithful §5.2 setup: the
// Table 5.1 8-node machine with reduced fill and memory so that a batch of
// 1000 runs is tractable.
func DefaultValidationConfig() ValidationConfig {
	return ValidationConfig{
		Nodes:     8,
		MemBytes:  256 << 10,
		L2Bytes:   64 << 10,
		FillLines: 192,
		Deadline:  5 * sim.Second,
		Stride:    1,
	}
}

// Validation performs one §5.2 validation run: fill the caches with random
// lines (shared/exclusive at random), inject the fault once half the fill
// has committed (so transactions are in flight), run recovery, then read
// back the entire memory and compare against the oracle.
func Validation(cfg ValidationConfig, ft fault.Type, seed int64) *ValidationResult {
	mc := machine.DefaultConfig(cfg.Nodes)
	mc.Seed = seed
	mc.MemBytes = cfg.MemBytes
	mc.L2Bytes = cfg.L2Bytes
	mc.Trace = cfg.Trace
	mc.Partitions = cfg.Partitions
	mc.RegionLinkExtra = cfg.RegionLinkExtra
	mc.Routing = cfg.Routing
	m := machine.New(mc)
	f := fault.Random(m.E.Rand(), ft, m.Topo, 1)
	res := &ValidationResult{Fault: f}
	defer func() {
		res.Events = m.E.EventsFired()
		if m.P != nil {
			res.Events = m.P.EventsFired()
		}
		res.Metrics = m.MetricsSnapshot()
	}()

	filler := workload.NewFiller(m)
	if cfg.FillLines > 0 && cfg.FillLines < filler.FillLines {
		filler.FillLines = cfg.FillLines
	}
	injected := false
	filler.OnHalfDone = func() {
		injected = true
		m.Inject(f)
	}
	fillDone := false
	filler.Start(func() { fillDone = true })
	// Drive the fill; the fault lands mid-fill, and the fill operations
	// double as the detection traffic for quiet faults.
	for !fillDone && m.Now() < cfg.Deadline {
		m.Advance(m.Now() + sim.Millisecond)
	}
	if !injected {
		// Degenerate fill (everything completed in one batch): inject
		// now and provoke detection with one remote read.
		m.Inject(f)
	}
	reader := driveDetection(m, f)
	res.Recovered = m.RunUntilRecovered(cfg.Deadline)
	if !res.Recovered {
		res.Note = fmt.Sprintf("recovery incomplete after %v", cfg.Deadline)
		return res
	}
	res.Phases = m.Aggregate()
	res.AffectedNodes = affectedNodes(m)
	res.Verify = m.VerifyMemory(reader, cfg.Stride)
	if !res.Verify.OK() {
		res.Note = res.Verify.String()
	}
	return res
}

// detectionVictim picks an address whose access will notice the fault.
func detectionVictim(m *machine.Machine, f fault.Fault) int {
	switch f.Type {
	case fault.NodeFailure, fault.InfiniteLoop, fault.FailSlow, fault.CPUFail:
		return f.Node
	case fault.RouterFailure:
		return f.Router
	case fault.LinkFailure, fault.TransientLink:
		// Touch the memory of the link's far end.
		return m.Topo.Links()[f.Link].B
	default:
		return m.Cfg.Nodes - 1
	}
}

// driveDetection submits the detection read from the lowest-id survivor.
// Node 0 is the usual driver, but de-skewed victim selection means router 0
// (and with it node 0) can be the casualty, so the kicker must be chosen
// from ground truth.
func driveDetection(m *machine.Machine, f fault.Fault) int {
	s := m.Survivors()
	if len(s) == 0 {
		return -1
	}
	m.Nodes[s[0]].CPU.Submit(workload.TouchOp(m, detectionVictim(m, f)))
	return s[0]
}

// affectedNodes counts the nodes the fault cost the machine once recovery
// completed: everything that did not report back healthy.
func affectedNodes(m *machine.Machine) int {
	healthy := 0
	for _, r := range m.Reports() {
		if !r.ShutDown && !r.Isolated {
			healthy++
		}
	}
	return m.Cfg.Nodes - healthy
}

// Table53Row aggregates a batch of validation runs for one fault type.
type Table53Row struct {
	Fault  fault.Type
	Runs   int
	Failed int
	// Metrics is the fault type's batch aggregate: the per-run snapshots
	// of every non-crashed run, merged in run order.
	Metrics *metrics.Snapshot
}

// Batch driving lives in WarmValidationBatch (this package) and in the
// flashfc Campaign API (ValidationCampaign); the pre-campaign wrappers
// (ValidationBatch, Table53) are gone — aggregate WarmValidationBatch
// results into Table53Row per fault type instead.
