package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"flashfc/internal/fault"
	"flashfc/internal/sim"
	"flashfc/internal/trace"
)

// traceValidationConfig is fastValidationConfig shrunk further: the span
// export records every packet hop, so a smaller machine keeps the golden
// file reviewable.
func traceValidationConfig() ValidationConfig {
	cfg := fastValidationConfig()
	cfg.Nodes = 4
	cfg.MemBytes = 32 << 10
	cfg.L2Bytes = 8 << 10
	cfg.FillLines = 8
	return cfg
}

// spanJSONFor runs a fixed node-failure validation with a fresh tracer and
// returns the Chrome trace-event export.
func spanJSONFor(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := traceValidationConfig()
	cfg.Trace = trace.New(0)
	r := Validation(cfg, fault.NodeFailure, seed)
	if !r.OK() {
		t.Fatalf("run failed: %s", r.Note)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("WriteChromeJSON: %v", err)
	}
	return buf.Bytes()
}

// The span export of a fixed small run is pinned as a golden file, just
// like the metrics snapshot: any drift in span placement, packet flow ids,
// or export encoding shows as a diff. Regenerate intentional changes with
// `go test ./internal/experiments -run TraceGolden -update`.
func TestTraceGoldenSpanExport(t *testing.T) {
	got := spanJSONFor(t, 7)
	golden := filepath.Join("testdata", "trace_node_failure_seed7.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("span export differs from golden file %s (regenerate intentional changes with -update)", golden)
	}
}

// The export must not depend on host-side concurrency: identical runs on
// 1 and 8 concurrent goroutines (each with its own tracer) produce
// byte-identical span JSON.
func TestTraceSpanExportIdenticalAcrossConcurrency(t *testing.T) {
	runConcurrent := func(workers int) []byte {
		outs := make([][]byte, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[i] = spanJSONFor(t, 7)
			}(i)
		}
		wg.Wait()
		for i := 1; i < workers; i++ {
			if !bytes.Equal(outs[0], outs[i]) {
				t.Errorf("concurrent run %d diverged from run 0", i)
			}
		}
		return outs[0]
	}
	seq := runConcurrent(1)
	par := runConcurrent(8)
	if !bytes.Equal(seq, par) {
		t.Fatal("span JSON differs between 1 and 8 concurrent runs")
	}
}

// Critical-path invariants on a real recovery: one root named "recovery",
// non-negative self-times that sum exactly to the root duration.
func TestTraceCriticalPathInvariants(t *testing.T) {
	cfg := fastValidationConfig()
	cfg.Trace = trace.New(0)
	r := Validation(cfg, fault.NodeFailure, 7)
	if !r.OK() {
		t.Fatalf("run failed: %s", r.Note)
	}
	paths := cfg.Trace.CriticalPaths()
	if len(paths) == 0 {
		t.Fatal("no critical paths on a recovered run")
	}
	for _, p := range paths {
		if p.RootName != "recovery" {
			t.Errorf("root span named %q, want recovery", p.RootName)
		}
		var sum sim.Time
		for _, s := range p.Steps {
			if s.Self < 0 {
				t.Errorf("step %s has negative self time %v", s.Name, s.Self)
			}
			sum += s.Self
		}
		if sum != p.Duration() {
			t.Errorf("self-time sum %v != root duration %v", sum, p.Duration())
		}
		if d := p.Dominant(); d.Self <= 0 {
			t.Errorf("dominant step %s has self %v, want > 0", d.Name, d.Self)
		}
	}
}

// The span tree of a node-failure recovery contains the expected phase
// hierarchy, and every parent link points at an existing earlier span.
func TestTraceSpanTreeShape(t *testing.T) {
	cfg := fastValidationConfig()
	cfg.Trace = trace.New(0)
	r := Validation(cfg, fault.NodeFailure, 7)
	if !r.OK() {
		t.Fatalf("run failed: %s", r.Note)
	}
	spans := cfg.Trace.SnapshotSpans()
	seen := map[string]bool{}
	for _, s := range spans {
		seen[s.Name] = true
		if s.Parent != 0 {
			if s.Parent >= s.ID {
				t.Errorf("span %s#%d has non-earlier parent %d", s.Name, s.ID, s.Parent)
			}
		} else if s.Name != "recovery" {
			t.Errorf("non-root span %s has no parent", s.Name)
		}
		if s.Open {
			t.Errorf("span %s still open after recovery", s.Name)
		}
	}
	for _, want := range []string{
		"recovery", "node-recovery",
		"P1-initiation", "P2-dissemination", "P3-interconnect", "P4-coherence",
		"gossip-round", "drain-attempt", "drain-tau-vote", "drain-tau-confirm",
		"route-reprogram", "cache-flush", "flush-barrier", "dir-scan", "scan-chunk",
	} {
		if !seen[want] {
			t.Errorf("span tree lacks %q (have %v)", want, seen)
		}
	}
	// Packet lifecycle and denial points must be present too.
	cats := map[string]bool{}
	names := map[string]bool{}
	for _, p := range cfg.Trace.Points() {
		cats[p.Cat] = true
		names[p.Name] = true
	}
	if !cats["pkt"] {
		t.Error("no packet points recorded")
	}
	for _, want := range []string{"inject", "hop", "deliver"} {
		if !names[want] {
			t.Errorf("no %q packet points recorded", want)
		}
	}
}
