package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flashfc/internal/fault"
	"flashfc/internal/runner"
	"flashfc/internal/trace"
)

// A fork of a shared warm snapshot must equal a run forked from a freshly
// rebuilt warm state — the fork-vs-fresh determinism contract, one level
// below the batch drivers.
func TestWarmForkVsFreshBitIdentical(t *testing.T) {
	cfg := fastValidationConfig()
	warmSeed := runner.DeriveSeed(7, runner.StreamWarmup, 0)
	ws := WarmupValidation(cfg, warmSeed)
	for _, ft := range fault.AllTypes() {
		runSeed := runner.DeriveSeed(7, runner.StreamValidation+int(ft), 3)
		shared := ValidationFromWarm(ws, ft, runSeed, nil)
		fresh := ValidationWarm(cfg, ft, warmSeed, runSeed)
		if !shared.OK() {
			t.Errorf("%v: warm run failed: %s", ft, shared.Note)
		}
		if !reflect.DeepEqual(shared, fresh) {
			t.Errorf("%v: shared-snapshot fork != fresh warm-up fork\nshared: %+v\nfresh:  %+v", ft, shared, fresh)
		}
	}
}

// Sibling forks of one snapshot must not contaminate each other: a run
// repeated after other runs used the same snapshot is bit-identical to its
// first execution.
func TestWarmSnapshotNoCrossForkContamination(t *testing.T) {
	cfg := fastValidationConfig()
	ws := WarmupValidation(cfg, runner.DeriveSeed(7, runner.StreamWarmup, 0))
	first := ValidationFromWarm(ws, fault.NodeFailure, 1234, nil)
	for seed := int64(10); seed < 14; seed++ {
		ValidationFromWarm(ws, fault.Type(seed%5), seed, nil)
	}
	again := ValidationFromWarm(ws, fault.NodeFailure, 1234, nil)
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("snapshot mutated by sibling forks:\nfirst: %+v\nagain: %+v", first, again)
	}
}

// Warm-start on and off are the same computation executed with different
// sharing; the per-run results must match bit for bit at any worker count.
func TestWarmOnOffBitIdenticalAcrossWorkers(t *testing.T) {
	outcomes := map[string][]runner.Result[*ValidationResult]{}
	for _, mode := range []WarmStartMode{WarmStartOn, WarmStartOff} {
		for _, workers := range []int{1, 8} {
			cfg := fastValidationConfig()
			cfg.WarmStart = mode
			cfg.Workers = workers
			results, _ := validationBatch(cfg, fault.RouterFailure, 6, 3)
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("mode=%v workers=%d run %d crashed: %v", mode, workers, i, r.Err)
				}
				if !r.Value.OK() {
					t.Errorf("mode=%v workers=%d run %d failed: %s", mode, workers, i, r.Value.Note)
				}
			}
			key := "on"
			if mode == WarmStartOff {
				key = "off"
			}
			outcomes[key+string(rune('0'+workers))] = results
		}
	}
	base := outcomes["on1"]
	for key, results := range outcomes {
		for i := range results {
			if !reflect.DeepEqual(results[i].Value, base[i].Value) {
				t.Errorf("%s run %d diverges from on/workers=1:\n%+v\nvs\n%+v", key, i, results[i].Value, base[i].Value)
			}
		}
	}
}

// The merged metrics of a fixed warm batch are pinned as a golden file:
// any drift in the warm-up, the snapshot/fork cycle, seeding, or merge
// order shows as a diff. Regenerate intentional changes with
// `go test ./internal/experiments -run WarmMetricsGolden -update`.
func TestWarmMetricsGoldenSnapshot(t *testing.T) {
	cfg := fastValidationConfig()
	cfg.Workers = 4
	results, _ := validationBatch(cfg, fault.NodeFailure, 4, 7)
	for i, r := range results {
		if r.Err != nil || !r.Value.OK() {
			t.Fatalf("run %d failed: err=%v note=%s", i, r.Err, r.Value.Note)
		}
	}
	var buf bytes.Buffer
	if err := runner.MergeMetrics(collectSnaps(results)).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	golden := filepath.Join("testdata", "metrics_warm_batch_seed7.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("warm batch metrics differ from golden file %s (regenerate intentional changes with -update):\n--- got\n%s\n--- want\n%s",
			golden, buf.Bytes(), want)
	}
}

// The span export of a fixed traced warm run is pinned as a golden file.
// With warm-start the trace covers the forked portion only (the warm-up is
// untraced), so timestamps start at the warm-up's end clock. Regenerate
// intentional changes with
// `go test ./internal/experiments -run WarmTraceGolden -update`.
func TestWarmTraceGoldenSpanExport(t *testing.T) {
	jsonFor := func() []byte {
		cfg := traceValidationConfig()
		cfg.Trace = trace.New(0)
		r := ValidationWarm(cfg, fault.NodeFailure,
			runner.DeriveSeed(7, runner.StreamWarmup, 0),
			runner.DeriveSeed(7, runner.StreamValidation+int(fault.NodeFailure), 0))
		if !r.OK() {
			t.Fatalf("run failed: %s", r.Note)
		}
		var buf bytes.Buffer
		if err := cfg.Trace.WriteChromeJSON(&buf); err != nil {
			t.Fatalf("WriteChromeJSON: %v", err)
		}
		return buf.Bytes()
	}
	got := jsonFor()
	if again := jsonFor(); !bytes.Equal(got, again) {
		t.Fatal("traced warm run is not reproducible")
	}
	golden := filepath.Join("testdata", "trace_warm_node_failure_seed7.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("warm trace differs from golden file %s (regenerate intentional changes with -update)", golden)
	}
}
