package experiments

import (
	"fmt"
	"math/rand"

	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/obs"
	"flashfc/internal/runner"
	"flashfc/internal/sim"
	"flashfc/internal/trace"
	"flashfc/internal/workload"
)

// WarmStartMode selects how a batch driver amortizes warm-up: Auto (the
// zero value) and On share one warmed machine snapshot per worker and fork
// every run from it; Off builds a private warm state for every run. Both
// modes execute the identical per-run computation — fork from a snapshot of
// the same deterministic warm-up — so they are bit-identical; Off exists as
// the cross-check (and the cost baseline the benchmarks compare against).
type WarmStartMode int

const (
	// WarmStartAuto is the default: warm-start on.
	WarmStartAuto WarmStartMode = iota
	// WarmStartOff rebuilds the warm state privately for every run.
	WarmStartOff
	// WarmStartOn shares one warm snapshot per worker (same as Auto).
	WarmStartOn
)

// Enabled reports whether runs may share a warm snapshot.
func (m WarmStartMode) Enabled() bool { return m != WarmStartOff }

// WarmState is a warmed-up validation machine, frozen pre-fault: the
// snapshot is immutable and every run forks its own machine from it, so one
// WarmState may serve any number of concurrent runs.
type WarmState struct {
	Cfg  ValidationConfig
	Snap *machine.Snapshot
	// FillLines is the effective warm-up fill per node (after defaulting).
	FillLines int
}

// WarmupValidation builds the §5.2 validation machine, runs the cache fill
// to completion, drains the engine to a quiescent point, and freezes it.
// The warm-up is seeded by warmSeed alone — derive it with
// DeriveSeed(base, StreamWarmup, 0), never from a run index — so every
// worker of a campaign reconstructs the identical snapshot. It panics if
// the fill cannot quiesce within cfg.Deadline (batch drivers turn that
// into failed runs via the runner's panic isolation).
//
// The warm-up machine is never traced: with warm-start, a run's trace
// covers the forked portion only, in both warm-start modes.
func WarmupValidation(cfg ValidationConfig, warmSeed int64) *WarmState {
	mc := machine.DefaultConfig(cfg.Nodes)
	mc.Seed = warmSeed
	mc.MemBytes = cfg.MemBytes
	mc.L2Bytes = cfg.L2Bytes
	// The strategy is carried in the snapshot config so forks recover with
	// it; pristine tables are shared by every strategy, so the warm-up
	// itself is strategy-independent.
	mc.Routing = cfg.Routing
	m := machine.New(mc)
	filler := workload.NewFiller(m)
	if cfg.FillLines > 0 && cfg.FillLines < filler.FillLines {
		filler.FillLines = cfg.FillLines
	}
	done := false
	filler.Start(func() { done = true })
	// The fill's completion callback is not quiescence: evicted-line
	// writebacks are fire-and-forget, so drain until nothing is pending.
	for (!done || m.E.Pending() > 0) && m.E.Now() < cfg.Deadline {
		m.E.RunUntil(m.E.Now() + sim.Millisecond)
	}
	if !done || m.E.Pending() > 0 {
		panic(fmt.Sprintf("experiments: warm-up did not quiesce within %v (fill done=%v, %d events pending)",
			cfg.Deadline, done, m.E.Pending()))
	}
	return &WarmState{Cfg: cfg, Snap: m.Snapshot(), FillLines: filler.FillLines}
}

// burstLines sizes the post-fork fill burst: BurstLines when set, else a
// quarter of the warm fill (minimum 8) — enough concurrent traffic for the
// fault to land mid-transaction, a fraction of the warm-up's cost.
func (ws *WarmState) burstLines() int {
	if ws.Cfg.BurstLines > 0 {
		return ws.Cfg.BurstLines
	}
	b := ws.FillLines / 4
	if b < 8 {
		b = 8
	}
	return b
}

// ValidationFromWarm performs one validation run by forking ws: a fresh
// machine rehydrated from the snapshot runs a runSeed-private fill burst,
// the fault (also drawn from a runSeed-private stream, so sibling forks
// place different faults) lands once half the burst has committed, and
// recovery plus the whole-memory sweep proceed as in Validation. The
// engine's own random stream is untouched by runSeed — it resumes exactly
// where the warm-up paused it, which is what makes a fork bit-identical to
// a fresh warm-up continued by the same script.
func ValidationFromWarm(ws *WarmState, ft fault.Type, runSeed int64, tr *trace.Tracer) *ValidationResult {
	cfg := ws.Cfg
	m := machine.FromSnapshot(ws.Snap, tr)
	rng := rand.New(rand.NewSource(runSeed))
	f := fault.Random(rng, ft, m.Topo, 1)
	res := &ValidationResult{Fault: f}
	defer func() {
		res.Events = m.E.EventsFired()
		res.Metrics = m.MetricsSnapshot()
	}()

	burst := workload.NewFillerSeeded(m, runSeed)
	burst.FillLines = ws.burstLines()
	injected := false
	burst.OnHalfDone = func() {
		injected = true
		m.Inject(f)
	}
	burstDone := false
	burst.Start(func() { burstDone = true })
	// The fork resumes at the warm-up's clock, so the deadline is relative.
	deadline := m.E.Now() + cfg.Deadline
	for !burstDone && m.E.Now() < deadline {
		m.E.RunUntil(m.E.Now() + sim.Millisecond)
	}
	if !injected {
		m.Inject(f)
	}
	reader := driveDetection(m, f)
	res.Recovered = m.RunUntilRecovered(deadline)
	if !res.Recovered {
		res.Note = fmt.Sprintf("recovery incomplete after %v", cfg.Deadline)
		return res
	}
	res.Phases = m.Aggregate()
	res.AffectedNodes = affectedNodes(m)
	res.Verify = m.VerifyMemory(reader, cfg.Stride)
	if !res.Verify.OK() {
		res.Note = res.Verify.String()
	}
	return res
}

// ValidationWarm is the one-shot warm-start run: a private warm-up
// followed by one fork. It is the warm-start-off unit of work, and the
// "fresh" side of the fork-vs-fresh determinism contract.
func ValidationWarm(cfg ValidationConfig, ft fault.Type, warmSeed, runSeed int64) *ValidationResult {
	ws := WarmupValidation(cfg, warmSeed)
	return ValidationFromWarm(ws, ft, runSeed, cfg.Trace)
}

// WarmValidationBatch runs `runs` warm-start validation runs of one fault
// type. Mode On/Auto: each worker builds the warm snapshot once and every
// run forks from it. Mode Off: every run builds its own warm state. The
// two are bit-identical; Off only pays the warm-up once per run instead of
// once per worker. runner.DeriveSeed keys the warm-up on (seed,
// StreamWarmup, 0) and each run on (seed, StreamValidation+ft, i), so
// results are independent of worker count and of the other runs.
func WarmValidationBatch(cfg ValidationConfig, ft fault.Type, runs int, seed int64) ([]runner.Result[*ValidationResult], runner.Stats) {
	bcfg := cfg
	bcfg.Trace = nil
	warmSeed := runner.DeriveSeed(seed, runner.StreamWarmup, 0)
	runSeed := func(i int) int64 { return runner.DeriveSeed(seed, runner.StreamValidation+int(ft), i) }
	observe := observeBatch(cfg.Observe,
		obs.Batch{Label: "validation", Fault: ft.String(), Runs: runs}, runSeed)
	if bcfg.WarmStart.Enabled() {
		return runner.CampaignWithSetup(runs, cfg.Workers,
			func() any { return WarmupValidation(bcfg, warmSeed) },
			func(i int, ws any, rec *runner.Recorder) *ValidationResult {
				if cfg.runHook != nil {
					cfg.runHook(i)
				}
				r := ValidationFromWarm(ws.(*WarmState), ft, runSeed(i), nil)
				rec.Report(r.Events)
				return r
			}, observe)
	}
	return runner.Campaign(runs, cfg.Workers, func(i int, rec *runner.Recorder) *ValidationResult {
		if cfg.runHook != nil {
			cfg.runHook(i)
		}
		r := ValidationWarm(bcfg, ft, warmSeed, runSeed(i))
		rec.Report(r.Events)
		return r
	}, observe)
}
