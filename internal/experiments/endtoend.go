package experiments

import (
	"flashfc/internal/fault"
	"flashfc/internal/hive"
	"flashfc/internal/machine"
	"flashfc/internal/metrics"
	"flashfc/internal/runner"
	"flashfc/internal/sim"
)

// Table 5.4 / Fig 5.7 drivers: end-to-end recovery of a Hive system running
// the parallel-make workload.

// EndToEndConfig shapes one §5.2 end-to-end experiment.
type EndToEndConfig struct {
	Cells        int
	NodesPerCell int
	MemBytes     uint64
	L2Bytes      uint64
	Make         hive.MakeConfig
	// LegacyIncoherentBug reenables the paper's OS bugs (Table 5.4's 99
	// failed runs); with it off, the fixed OS passes cleanly.
	LegacyIncoherentBug bool
	// Routing names the recovery routing strategy ("" or "paper" keeps the
	// byte-identical pre-strategy pipeline).
	Routing string
	// InjectWindow bounds the random injection time within the run.
	InjectMin, InjectMax sim.Time
	Deadline             sim.Time
	Seed                 int64
	// Workers bounds the goroutines batch drivers (Table54, Fig57) may
	// use; 0 means one per CPU. Single runs ignore it, and any worker
	// count yields bit-identical results.
	Workers int
}

// DefaultEndToEndConfig returns the §5.1 setup scaled for simulation: 8
// cells with one node each, running eight compiles with cell 0 also acting
// as the file server.
func DefaultEndToEndConfig() EndToEndConfig {
	return EndToEndConfig{
		Cells:        8,
		NodesPerCell: 1,
		MemBytes:     512 << 10,
		L2Bytes:      64 << 10,
		Make:         hive.DefaultMakeConfig(),
		InjectMin:    200 * sim.Microsecond,
		InjectMax:    6 * sim.Millisecond,
		Deadline:     30 * sim.Second,
		Seed:         1,
	}
}

// EndToEndResult is one Table 5.4 run.
type EndToEndResult struct {
	Fault     fault.Fault
	Recovered bool
	// Latent marks a run where the injected fault was never exercised —
	// no traffic crossed the dead component, so no Table 4.1 trigger
	// fired and the workload simply completed. Containment holds
	// trivially in that case.
	Latent  bool
	Outcome *hive.Outcome
	HW, OS  sim.Time
	Note    string
	// Events is the number of simulated events the run's engine fired.
	Events uint64
	// Metrics is the run's machine-wide metric snapshot (always set, even
	// when recovery fails); campaigns merge them per fault type.
	Metrics *metrics.Snapshot
}

// OK reports whether the run counts as successful: every compile not
// affected by the fault finished correctly, after recovery ran — or with
// the fault still latent.
func (r *EndToEndResult) OK() bool {
	return (r.Recovered || r.Latent) && r.Outcome != nil && r.Outcome.OK()
}

// EndToEnd performs one end-to-end experiment: boot Hive, start the
// parallel make, inject the fault at a random time, and evaluate.
func EndToEnd(cfg EndToEndConfig, ft fault.Type, seed int64) *EndToEndResult {
	mc := hive.MachineConfig(cfg.Cells, cfg.NodesPerCell, cfg.MemBytes, cfg.L2Bytes, seed)
	mc.Routing = cfg.Routing
	m := machine.New(mc)
	hcfg := hive.DefaultConfig(cfg.Cells)
	hcfg.LegacyIncoherentBug = cfg.LegacyIncoherentBug
	h := hive.New(m, hcfg)
	mk := hive.NewMake(h, cfg.Make)

	// The server cell (cell 0) is spared from direct node faults so that
	// most runs exercise the "unaffected compiles must finish" criterion;
	// router and link faults may still take it out.
	f := fault.Random(m.E.Rand(), ft, m.Topo, cfg.NodesPerCell)
	res := &EndToEndResult{Fault: f}
	defer func() {
		res.Events = m.E.EventsFired()
		res.Metrics = m.MetricsSnapshot()
	}()
	window := int64(cfg.InjectMax - cfg.InjectMin)
	at := cfg.InjectMin
	if window > 0 {
		at += sim.Time(m.E.Rand().Int63n(window))
	}
	m.InjectAt(f, at)

	idle := false
	mk.Start(func() { idle = true })
	deadline := cfg.Deadline
	// Give a quiet (latent) fault a grace window after injection before
	// concluding no recovery will trigger.
	settle := at + 300*sim.Millisecond
	for m.E.Now() < deadline {
		m.E.RunUntil(m.E.Now() + sim.Millisecond)
		if idle && m.Recovered() && h.OSTime > 0 && mk.Idle() {
			break
		}
		if idle && mk.Idle() && !m.Recovered() && m.E.Now() >= settle {
			// Nothing ever crossed the failed component: the fault
			// is latent and the workload finished untouched.
			res.Latent = true
			res.Note = "fault latent: never exercised by any traffic"
			break
		}
	}
	res.Recovered = m.Recovered()
	if !res.Recovered && !res.Latent {
		res.Note = "hardware recovery incomplete"
		return res
	}
	if !mk.Idle() {
		res.Note = "workload hung"
		res.Outcome = &hive.Outcome{Failures: []string{"workload hung"}}
		return res
	}
	res.Outcome = mk.Evaluate()
	res.HW = h.HWTime
	res.OS = h.OSTime
	return res
}

// Table54Row aggregates end-to-end runs for one fault type.
type Table54Row struct {
	Fault  fault.Type
	Runs   int
	Failed int
	// Metrics is the fault type's batch aggregate: the per-run snapshots
	// of every non-crashed run, merged in run order.
	Metrics *metrics.Snapshot
}

// Batch driving lives in the flashfc Campaign API (EndToEndCampaign); the
// pre-campaign wrappers (EndToEndBatch, Table54) are gone — aggregate
// campaign results into Table54Row per fault type instead.

// Fig57Point is one end-to-end suspension measurement.
type Fig57Point struct {
	Nodes int
	HW    sim.Time // hardware recovery
	HWOS  sim.Time // hardware + OS recovery (user-visible suspension)
	OK    bool
}

// Fig57 measures the user-process suspension time after a node failure for
// growing machine sizes with one Hive cell per node (Fig 5.7's 16 MB/node,
// 1 MB L2 configuration; sizes are configurable for tractability). The
// points are measured on up to `workers` goroutines (0 = one per CPU) and
// returned in nodeCounts order.
func Fig57(nodeCounts []int, memBytes, l2Bytes uint64, seed int64, workers int) []Fig57Point {
	return runner.Map(len(nodeCounts), workers, func(i int) Fig57Point {
		return Fig57One(nodeCounts[i], memBytes, l2Bytes, seed)
	})
}

// Fig57One measures one Fig 5.7 point: the suspension time after a node
// failure on an n-node, n-cell machine. The engine seed derives from the
// node count (not a run index), so a sweep's points are independent of
// which other sizes it measures.
func Fig57One(n int, memBytes, l2Bytes uint64, seed int64) Fig57Point {
	cfg := DefaultEndToEndConfig()
	cfg.Cells = n
	cfg.NodesPerCell = 1
	cfg.MemBytes = memBytes
	cfg.L2Bytes = l2Bytes
	cfg.Seed = seed
	r := EndToEnd(cfg, fault.NodeFailure, runner.DeriveSeed(seed, runner.StreamFig57, n))
	return Fig57Point{Nodes: n, HW: r.HW, HWOS: r.HW + r.OS, OK: r.OK()}
}
