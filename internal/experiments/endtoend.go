package experiments

import (
	"flashfc/internal/fault"
	"flashfc/internal/hive"
	"flashfc/internal/machine"
	"flashfc/internal/sim"
)

// Table 5.4 / Fig 5.7 drivers: end-to-end recovery of a Hive system running
// the parallel-make workload.

// EndToEndConfig shapes one §5.2 end-to-end experiment.
type EndToEndConfig struct {
	Cells        int
	NodesPerCell int
	MemBytes     uint64
	L2Bytes      uint64
	Make         hive.MakeConfig
	// LegacyIncoherentBug reenables the paper's OS bugs (Table 5.4's 99
	// failed runs); with it off, the fixed OS passes cleanly.
	LegacyIncoherentBug bool
	// InjectWindow bounds the random injection time within the run.
	InjectMin, InjectMax sim.Time
	Deadline             sim.Time
	Seed                 int64
}

// DefaultEndToEndConfig returns the §5.1 setup scaled for simulation: 8
// cells with one node each, running eight compiles with cell 0 also acting
// as the file server.
func DefaultEndToEndConfig() EndToEndConfig {
	return EndToEndConfig{
		Cells:        8,
		NodesPerCell: 1,
		MemBytes:     512 << 10,
		L2Bytes:      64 << 10,
		Make:         hive.DefaultMakeConfig(),
		InjectMin:    200 * sim.Microsecond,
		InjectMax:    6 * sim.Millisecond,
		Deadline:     30 * sim.Second,
		Seed:         1,
	}
}

// EndToEndResult is one Table 5.4 run.
type EndToEndResult struct {
	Fault     fault.Fault
	Recovered bool
	// Latent marks a run where the injected fault was never exercised —
	// no traffic crossed the dead component, so no Table 4.1 trigger
	// fired and the workload simply completed. Containment holds
	// trivially in that case.
	Latent  bool
	Outcome *hive.Outcome
	HW, OS  sim.Time
	Note    string
}

// OK reports whether the run counts as successful: every compile not
// affected by the fault finished correctly, after recovery ran — or with
// the fault still latent.
func (r *EndToEndResult) OK() bool {
	return (r.Recovered || r.Latent) && r.Outcome != nil && r.Outcome.OK()
}

// EndToEnd performs one end-to-end experiment: boot Hive, start the
// parallel make, inject the fault at a random time, and evaluate.
func EndToEnd(cfg EndToEndConfig, ft fault.Type, seed int64) *EndToEndResult {
	mc := hive.MachineConfig(cfg.Cells, cfg.NodesPerCell, cfg.MemBytes, cfg.L2Bytes, seed)
	m := machine.New(mc)
	hcfg := hive.DefaultConfig(cfg.Cells)
	hcfg.LegacyIncoherentBug = cfg.LegacyIncoherentBug
	h := hive.New(m, hcfg)
	mk := hive.NewMake(h, cfg.Make)

	// The server cell (cell 0) is spared from direct node faults so that
	// most runs exercise the "unaffected compiles must finish" criterion;
	// router and link faults may still take it out.
	f := fault.Random(m.E.Rand(), ft, m.Topo, cfg.NodesPerCell)
	res := &EndToEndResult{Fault: f}
	window := int64(cfg.InjectMax - cfg.InjectMin)
	at := cfg.InjectMin
	if window > 0 {
		at += sim.Time(m.E.Rand().Int63n(window))
	}
	m.InjectAt(f, at)

	idle := false
	mk.Start(func() { idle = true })
	deadline := cfg.Deadline
	// Give a quiet (latent) fault a grace window after injection before
	// concluding no recovery will trigger.
	settle := at + 300*sim.Millisecond
	for m.E.Now() < deadline {
		m.E.RunUntil(m.E.Now() + sim.Millisecond)
		if idle && m.Recovered() && h.OSTime > 0 && mk.Idle() {
			break
		}
		if idle && mk.Idle() && !m.Recovered() && m.E.Now() >= settle {
			// Nothing ever crossed the failed component: the fault
			// is latent and the workload finished untouched.
			res.Latent = true
			res.Note = "fault latent: never exercised by any traffic"
			break
		}
	}
	res.Recovered = m.Recovered()
	if !res.Recovered && !res.Latent {
		res.Note = "hardware recovery incomplete"
		return res
	}
	if !mk.Idle() {
		res.Note = "workload hung"
		res.Outcome = &hive.Outcome{Failures: []string{"workload hung"}}
		return res
	}
	res.Outcome = mk.Evaluate()
	res.HW = h.HWTime
	res.OS = h.OSTime
	return res
}

// Table54Row aggregates end-to-end runs for one fault type.
type Table54Row struct {
	Fault  fault.Type
	Runs   int
	Failed int
}

// Table54 reproduces the paper's Table 5.4: repeated end-to-end runs per
// fault type (node, router, link, infinite loop), counting failed
// experiments. With cfg.LegacyIncoherentBug the failure counts land near
// the paper's 8.4%; without it the fixed OS passes.
func Table54(cfg EndToEndConfig, runsPer map[fault.Type]int, seed int64) []Table54Row {
	types := []fault.Type{fault.NodeFailure, fault.RouterFailure, fault.LinkFailure, fault.InfiniteLoop}
	var rows []Table54Row
	for _, ft := range types {
		runs := runsPer[ft]
		row := Table54Row{Fault: ft, Runs: runs}
		for i := 0; i < runs; i++ {
			r := EndToEnd(cfg, ft, seed+int64(i)*6151+int64(ft)*31337)
			if !r.OK() {
				row.Failed++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig57Point is one end-to-end suspension measurement.
type Fig57Point struct {
	Nodes int
	HW    sim.Time // hardware recovery
	HWOS  sim.Time // hardware + OS recovery (user-visible suspension)
	OK    bool
}

// Fig57 measures the user-process suspension time after a node failure for
// growing machine sizes with one Hive cell per node (Fig 5.7's 16 MB/node,
// 1 MB L2 configuration; sizes are configurable for tractability).
func Fig57(nodeCounts []int, memBytes, l2Bytes uint64, seed int64) []Fig57Point {
	var out []Fig57Point
	for _, n := range nodeCounts {
		cfg := DefaultEndToEndConfig()
		cfg.Cells = n
		cfg.NodesPerCell = 1
		cfg.MemBytes = memBytes
		cfg.L2Bytes = l2Bytes
		cfg.Seed = seed
		r := EndToEnd(cfg, fault.NodeFailure, seed+int64(n))
		out = append(out, Fig57Point{Nodes: n, HW: r.HW, HWOS: r.HW + r.OS, OK: r.OK()})
	}
	return out
}
