package experiments

import (
	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/metrics"
	"flashfc/internal/runner"
	"flashfc/internal/sim"
	"flashfc/internal/workload"
)

// Fig 5.5 / Fig 5.6 drivers: hardware recovery time scaling.

// ScalingConfig shapes one recovery-time measurement.
type ScalingConfig struct {
	Nodes    int
	Topo     machine.TopoKind
	MemBytes uint64 // per-node memory (drives the P4 directory sweep)
	L2Bytes  uint64 // L2 size (drives the P4 flush)
	// FillLines bounds the workload's cache fill; the P4 charges use the
	// configured sizes regardless, as in Fig 5.6's no-contention model.
	FillLines int
	Seed      int64
	Deadline  sim.Time
	// Victim selects the node to kill; -1 picks the middle of the mesh.
	Victim int
	// Knobs for the ablation studies.
	SpeculativePing *bool
	BFTHints        *bool
	// Workers bounds the goroutines batch drivers (Fig55, Fig56*,
	// RecoveryDistribution) may use; 0 means one per CPU. Single
	// measurements ignore it, and any worker count yields bit-identical
	// results.
	Workers int
	// runHook, when non-nil, runs at the start of every
	// RecoveryDistribution run with the run index; test-only, see
	// ValidationConfig.runHook.
	runHook func(i int)
}

// DefaultScalingConfig is the Fig 5.5 configuration: mesh, 1 MB memory per
// node, 1 MB L2, a node failure.
func DefaultScalingConfig(nodes int) ScalingConfig {
	return ScalingConfig{
		Nodes:     nodes,
		Topo:      machine.TopoMesh,
		MemBytes:  1 << 20,
		L2Bytes:   1 << 20,
		FillLines: 128,
		Seed:      1,
		Victim:    -1,
		Deadline:  20 * sim.Second,
	}
}

// ScalingPoint is one measured configuration.
type ScalingPoint struct {
	// Nodes is the machine size the point was measured on.
	Nodes int
	// X is the point's x-coordinate in the sweep that produced it: the
	// node count for Fig55, the swept size in MB for Fig56L2/Fig56Mem.
	// (Fig56 previously abused Nodes for this, which truncated sub-MB
	// cache sizes to 0.)
	X      float64
	Phases machine.PhaseTimes
	OK     bool
	// Events is the number of simulated events the run's engine fired.
	Events uint64
	// Metrics is the run's machine-wide metric snapshot; sweeps merge the
	// points' snapshots into a campaign aggregate.
	Metrics *metrics.Snapshot
}

// MeasureRecovery builds the machine, fills caches lightly, injects a node
// failure, and returns the aggregated per-phase recovery times.
func MeasureRecovery(cfg ScalingConfig) ScalingPoint {
	mc := machine.DefaultConfig(cfg.Nodes)
	mc.Topo = cfg.Topo
	mc.Seed = cfg.Seed
	mc.MemBytes = cfg.MemBytes
	mc.L2Bytes = cfg.L2Bytes
	if cfg.SpeculativePing != nil {
		mc.Recovery.SpeculativePing = *cfg.SpeculativePing
	}
	if cfg.BFTHints != nil {
		mc.Recovery.BFTHints = *cfg.BFTHints
	}
	m := machine.New(mc)
	victim := cfg.Victim
	if victim < 0 || victim >= cfg.Nodes {
		victim = cfg.Nodes / 2
	}
	if victim == 0 {
		victim = cfg.Nodes - 1
	}
	f := fault.Fault{Type: fault.NodeFailure, Node: victim}

	filler := workload.NewFiller(m)
	if cfg.FillLines > 0 && cfg.FillLines < filler.FillLines {
		filler.FillLines = cfg.FillLines
	}
	filler.OnHalfDone = func() { m.Inject(f) }
	filler.Start(func() {})
	m.Nodes[0].CPU.Submit(workload.TouchOp(m, victim))
	ok := m.RunUntilRecovered(cfg.Deadline)
	return ScalingPoint{
		Nodes:   cfg.Nodes,
		X:       float64(cfg.Nodes),
		Phases:  m.Aggregate(),
		OK:      ok,
		Events:  m.E.EventsFired(),
		Metrics: m.MetricsSnapshot(),
	}
}

// Fig55 sweeps the node counts of Fig 5.5 on the given topology, measuring
// the points on up to `workers` goroutines (0 = one per CPU). Every point
// uses the same seed, as in the paper's single-curve presentation.
func Fig55(nodeCounts []int, topo machine.TopoKind, seed int64, workers int) []ScalingPoint {
	return runner.Map(len(nodeCounts), workers, func(i int) ScalingPoint {
		cfg := DefaultScalingConfig(nodeCounts[i])
		cfg.Topo = topo
		cfg.Seed = seed
		return MeasureRecovery(cfg)
	})
}

// Fig56L2 sweeps the second-level cache size at 4 nodes (Fig 5.6 left):
// the flush (WB) component scales linearly with the L2 size. Points carry
// the swept size in X (in MB) and are measured on up to `workers`
// goroutines.
func Fig56L2(l2Sizes []uint64, seed int64, workers int) []ScalingPoint {
	return runner.Map(len(l2Sizes), workers, func(i int) ScalingPoint {
		cfg := DefaultScalingConfig(4)
		cfg.L2Bytes = l2Sizes[i]
		cfg.MemBytes = 4 << 20
		cfg.Seed = seed
		p := MeasureRecovery(cfg)
		p.X = float64(l2Sizes[i]) / (1 << 20)
		return p
	})
}

// Fig56Mem sweeps the per-node memory size at 4 nodes (Fig 5.6 right): the
// directory-sweep component of P4 scales linearly with memory. Points
// carry the swept size in X (in MB) and are measured on up to `workers`
// goroutines.
func Fig56Mem(memSizes []uint64, seed int64, workers int) []ScalingPoint {
	return runner.Map(len(memSizes), workers, func(i int) ScalingPoint {
		cfg := DefaultScalingConfig(4)
		cfg.MemBytes = memSizes[i]
		cfg.Seed = seed
		p := MeasureRecovery(cfg)
		p.X = float64(memSizes[i]) / (1 << 20)
		return p
	})
}

// TriggerLatency measures the §4.2 recovery-triggering latency: the time
// from fault injection until the last functioning node has dropped into
// recovery, with or without speculative pings (the paper reports the
// optimization speeds up triggering about fivefold).
func TriggerLatency(nodes int, speculative bool, seed int64) sim.Time {
	mc := machine.DefaultConfig(nodes)
	mc.Seed = seed
	mc.MemBytes = 64 << 10
	mc.L2Bytes = 16 << 10
	mc.Recovery.SpeculativePing = speculative
	var m *machine.Machine
	var lastEnter sim.Time
	mc.Recovery.OnEnter = func(id int) { lastEnter = m.E.Now() }
	m = machine.New(mc)
	victim := nodes / 2
	var injectAt sim.Time
	m.E.At(10*sim.Microsecond, func() {
		injectAt = m.E.Now()
		m.Inject(fault.Fault{Type: fault.NodeFailure, Node: victim})
		m.Nodes[0].CPU.Submit(workload.TouchOp(m, victim))
	})
	m.RunUntilRecovered(10 * sim.Second)
	return lastEnter - injectAt
}
