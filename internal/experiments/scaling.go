package experiments

import (
	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/metrics"
	"flashfc/internal/sim"
	"flashfc/internal/workload"
)

// Fig 5.5 / Fig 5.6 drivers: hardware recovery time scaling.

// ScalingConfig shapes one recovery-time measurement.
type ScalingConfig struct {
	Nodes    int
	Topo     machine.TopoKind
	MemBytes uint64 // per-node memory (drives the P4 directory sweep)
	L2Bytes  uint64 // L2 size (drives the P4 flush)
	// FillLines bounds the workload's cache fill; the P4 charges use the
	// configured sizes regardless, as in Fig 5.6's no-contention model.
	FillLines int
	Seed      int64
	Deadline  sim.Time
	// Routing names the recovery routing strategy ("" or "paper" keeps the
	// byte-identical pre-strategy pipeline).
	Routing string
	// Victim selects the node to kill; -1 picks the middle of the mesh.
	Victim int
	// Knobs for the ablation studies.
	SpeculativePing *bool
	BFTHints        *bool
	// Workers bounds the goroutines batch drivers (Fig55, Fig56*,
	// RecoveryDistribution) may use; 0 means one per CPU. Single
	// measurements ignore it, and any worker count yields bit-identical
	// results.
	Workers int
	// runHook, when non-nil, runs at the start of every
	// RecoveryDistribution run with the run index; test-only, see
	// ValidationConfig.runHook.
	runHook func(i int)
}

// DefaultScalingConfig is the Fig 5.5 configuration: mesh, 1 MB memory per
// node, 1 MB L2, a node failure.
func DefaultScalingConfig(nodes int) ScalingConfig {
	return ScalingConfig{
		Nodes:     nodes,
		Topo:      machine.TopoMesh,
		MemBytes:  1 << 20,
		L2Bytes:   1 << 20,
		FillLines: 128,
		Seed:      1,
		Victim:    -1,
		Deadline:  20 * sim.Second,
	}
}

// ScalingPoint is one measured configuration.
type ScalingPoint struct {
	// Nodes is the machine size the point was measured on.
	Nodes int
	// X is the point's x-coordinate in the sweep that produced it: the
	// node count for Fig55, the swept size in MB for Fig56L2/Fig56Mem.
	// (Fig56 previously abused Nodes for this, which truncated sub-MB
	// cache sizes to 0.)
	X      float64
	Phases machine.PhaseTimes
	OK     bool
	// Events is the number of simulated events the run's engine fired.
	Events uint64
	// Metrics is the run's machine-wide metric snapshot; sweeps merge the
	// points' snapshots into a campaign aggregate.
	Metrics *metrics.Snapshot
}

// MeasureRecovery builds the machine, fills caches lightly, injects a node
// failure, and returns the aggregated per-phase recovery times.
func MeasureRecovery(cfg ScalingConfig) ScalingPoint {
	mc := machine.DefaultConfig(cfg.Nodes)
	mc.Topo = cfg.Topo
	mc.Seed = cfg.Seed
	mc.MemBytes = cfg.MemBytes
	mc.L2Bytes = cfg.L2Bytes
	mc.Routing = cfg.Routing
	if cfg.SpeculativePing != nil {
		mc.Recovery.SpeculativePing = *cfg.SpeculativePing
	}
	if cfg.BFTHints != nil {
		mc.Recovery.BFTHints = *cfg.BFTHints
	}
	m := machine.New(mc)
	victim := cfg.Victim
	if victim < 0 || victim >= cfg.Nodes {
		victim = cfg.Nodes / 2
	}
	if victim == 0 {
		victim = cfg.Nodes - 1
	}
	f := fault.Fault{Type: fault.NodeFailure, Node: victim}

	filler := workload.NewFiller(m)
	if cfg.FillLines > 0 && cfg.FillLines < filler.FillLines {
		filler.FillLines = cfg.FillLines
	}
	filler.OnHalfDone = func() { m.Inject(f) }
	filler.Start(func() {})
	m.Nodes[0].CPU.Submit(workload.TouchOp(m, victim))
	ok := m.RunUntilRecovered(cfg.Deadline)
	return ScalingPoint{
		Nodes:   cfg.Nodes,
		X:       float64(cfg.Nodes),
		Phases:  m.Aggregate(),
		OK:      ok,
		Events:  m.E.EventsFired(),
		Metrics: m.MetricsSnapshot(),
	}
}

// The figure sweeps live in the flashfc Campaign API (Fig55Campaign,
// Fig56L2Campaign, Fig56MemCampaign); the pre-campaign wrappers (Fig55,
// Fig56L2, Fig56Mem) are gone — drive MeasureRecovery over the sweep
// coordinates instead.

// TriggerLatency measures the §4.2 recovery-triggering latency: the time
// from fault injection until the last functioning node has dropped into
// recovery, with or without speculative pings (the paper reports the
// optimization speeds up triggering about fivefold).
func TriggerLatency(nodes int, speculative bool, seed int64) sim.Time {
	mc := machine.DefaultConfig(nodes)
	mc.Seed = seed
	mc.MemBytes = 64 << 10
	mc.L2Bytes = 16 << 10
	mc.Recovery.SpeculativePing = speculative
	var m *machine.Machine
	var lastEnter sim.Time
	mc.Recovery.OnEnter = func(id int) { lastEnter = m.E.Now() }
	m = machine.New(mc)
	victim := nodes / 2
	var injectAt sim.Time
	m.E.At(10*sim.Microsecond, func() {
		injectAt = m.E.Now()
		m.Inject(fault.Fault{Type: fault.NodeFailure, Node: victim})
		m.Nodes[0].CPU.Submit(workload.TouchOp(m, victim))
	})
	m.RunUntilRecovered(10 * sim.Second)
	return lastEnter - injectAt
}
