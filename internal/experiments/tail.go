package experiments

import (
	"math"
	"sort"

	"flashfc/internal/fault"
	"flashfc/internal/obs"
	"flashfc/internal/runner"
	"flashfc/internal/sim"
	"flashfc/internal/stats"
)

// Tail analysis for the degradation fault models: the fail-stop classes of
// Table 5.3 have recovery times that barely spread (the BFT bound dominates
// everything), but transient links, fail-slow engines, and CPU-fail/
// memory-survives interact with in-flight state, so their containment time
// has a tail worth measuring. A TailCampaign runs 1000+ warm-forked seeds
// per scenario and reports the p50/p99/p999 containment time plus how much
// of the machine each fault cost.

// TailConfig shapes a tail campaign.
type TailConfig struct {
	ValidationConfig
	// Runs is the number of warm-forked runs per scenario; 0 defaults to
	// DefaultTailRuns (enough observations that the p999 is supported by a
	// real observation, see stats.TailReliable).
	Runs int
	// Faults selects the scenarios; nil runs fault.ExtendedTypes().
	Faults []fault.Type
}

// DefaultTailRuns is the default per-scenario run count: with 1000 runs the
// p999 rests on the single largest observation rather than interpolation.
const DefaultTailRuns = 1000

// DefaultTailConfig returns the default tail-campaign setup: the validation
// machine with DefaultTailRuns per scenario.
func DefaultTailConfig() TailConfig {
	return TailConfig{ValidationConfig: DefaultValidationConfig(), Runs: DefaultTailRuns}
}

// TailScenario aggregates one fault class's tail campaign.
type TailScenario struct {
	Fault  fault.Type
	Runs   int
	Failed int // runs that did not pass ValidationResult.OK
	// Containment-time percentiles over the passing runs (Phases.Total:
	// first recovery entry to last node's recovery completion).
	P50, P99, P999 sim.Time
	// TailOK reports whether the p999 is supported by at least one real
	// observation (stats.TailReliable); below that it is interpolation
	// noise and drivers annotate it.
	TailOK bool
	// Affected summarizes the fraction of the machine each run lost
	// (affected nodes / machine size).
	Affected stats.Summary
	// Exemplars identifies the real observations behind the scenario's
	// percentiles: for each of p50/p99/p999, the nearest-rank passing run
	// (the percentiles above interpolate between observations; an exemplar
	// must be a run that actually happened). ReplayTailExemplars re-runs
	// them with tracing from the recorded seeds.
	Exemplars []TailExemplar
}

// TailExemplar names the campaign run supporting one percentile: replaying
// Seed through the warm fork reproduces Time bit-exactly.
type TailExemplar struct {
	Pct  float64  // the percentile this run supports (50, 99, 99.9)
	Run  int      // run index within the scenario's batch
	Seed int64    // the run's derived seed
	Time sim.Time // the run's containment time (Phases.Total)
}

// TailResult is a full tail campaign: one scenario per fault class plus the
// campaign's host-side throughput accounting.
type TailResult struct {
	Scenarios []TailScenario
	Stats     runner.Stats
}

// TailCampaign runs the tail analysis: for every requested fault class,
// cfg.Runs warm-forked validation runs (seeded from runner.StreamTail, so
// tail campaigns never correlate with Table 5.3 batches at the same base
// seed) are reduced to containment-time percentiles and the affected
// fraction. Results are bit-identical for any worker count, any Partitions
// value, and warm-start on or off, because every run is the shared
// ValidationFromWarm computation.
func TailCampaign(cfg TailConfig, seed int64) *TailResult {
	runs := cfg.Runs
	if runs <= 0 {
		runs = DefaultTailRuns
	}
	faults := cfg.Faults
	if faults == nil {
		faults = fault.ExtendedTypes()
	}
	out := &TailResult{}
	for _, ft := range faults {
		sc := TailScenario{Fault: ft, Runs: runs}
		results, st := tailBatch(cfg.ValidationConfig, ft, runs, seed)
		var times []float64
		var affected []float64
		var passing []tailObs
		for i, r := range results {
			if r.Err != nil || !r.Value.OK() {
				sc.Failed++
				continue
			}
			times = append(times, float64(r.Value.Phases.Total))
			passing = append(passing, tailObs{t: r.Value.Phases.Total, run: i})
			affected = append(affected,
				float64(r.Value.AffectedNodes)/float64(cfg.Nodes))
		}
		if len(times) > 0 {
			sort.Float64s(times)
			sc.P50 = sim.Time(stats.Percentile(times, 50))
			sc.P99 = sim.Time(stats.Percentile(times, 99))
			sc.P999 = sim.Time(stats.Percentile(times, 99.9))
			sc.TailOK = stats.TailReliable(len(times), 99.9)
			sc.Exemplars = tailExemplars(passing, func(i int) int64 {
				return tailRunSeed(seed, ft, i)
			})
		}
		sc.Affected = stats.Summarize(affected)
		out.Stats.Merge(st)
		out.Scenarios = append(out.Scenarios, sc)
	}
	return out
}

// TailPercentiles are the percentiles a tail campaign reports and keeps
// exemplars for.
var TailPercentiles = []float64{50, 99, 99.9}

// tailObs is one passing run's containment time, tagged with its run index.
type tailObs struct {
	t   sim.Time
	run int
}

// tailExemplars picks the real observation behind each reported percentile:
// over the passing runs sorted by (time, run index), the p-th percentile's
// supporting observation is nearest-rank ceil(p/100·n)−1. stats.Percentile
// interpolates between neighbors for the reported number; an exemplar must
// be a run that actually happened, so it uses the rank observation — for
// p999 at n ≥ 1000 the two coincide.
func tailExemplars(passing []tailObs, seedOf func(i int) int64) []TailExemplar {
	sort.Slice(passing, func(a, b int) bool {
		if passing[a].t != passing[b].t {
			return passing[a].t < passing[b].t
		}
		return passing[a].run < passing[b].run
	})
	out := make([]TailExemplar, 0, len(TailPercentiles))
	for _, p := range TailPercentiles {
		r := int(math.Ceil(p/100*float64(len(passing)))) - 1
		if r < 0 {
			r = 0
		}
		o := passing[r]
		out = append(out, TailExemplar{Pct: p, Run: o.run, Seed: seedOf(o.run), Time: o.t})
	}
	return out
}

// tailRunSeed derives the engine seed of tail run i of one fault class.
func tailRunSeed(seed int64, ft fault.Type, i int) int64 {
	return runner.DeriveSeed(seed, runner.StreamTail+int(ft), i)
}

// tailBatch is WarmValidationBatch with the tail campaign's seed stream.
func tailBatch(cfg ValidationConfig, ft fault.Type, runs int, seed int64) ([]runner.Result[*ValidationResult], runner.Stats) {
	bcfg := cfg
	bcfg.Trace = nil
	warmSeed := runner.DeriveSeed(seed, runner.StreamWarmup, 0)
	runSeed := func(i int) int64 { return tailRunSeed(seed, ft, i) }
	observe := observeBatch(cfg.Observe,
		obs.Batch{Label: "tail", Fault: ft.String(), Runs: runs}, runSeed)
	if bcfg.WarmStart.Enabled() {
		return runner.CampaignWithSetup(runs, cfg.Workers,
			func() any { return WarmupValidation(bcfg, warmSeed) },
			func(i int, ws any, rec *runner.Recorder) *ValidationResult {
				if cfg.runHook != nil {
					cfg.runHook(i)
				}
				r := ValidationFromWarm(ws.(*WarmState), ft, runSeed(i), nil)
				rec.Report(r.Events)
				return r
			}, observe)
	}
	return runner.Campaign(runs, cfg.Workers, func(i int, rec *runner.Recorder) *ValidationResult {
		if cfg.runHook != nil {
			cfg.runHook(i)
		}
		r := ValidationWarm(bcfg, ft, warmSeed, runSeed(i))
		rec.Report(r.Events)
		return r
	}, observe)
}
