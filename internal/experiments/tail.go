package experiments

import (
	"sort"

	"flashfc/internal/fault"
	"flashfc/internal/runner"
	"flashfc/internal/sim"
	"flashfc/internal/stats"
)

// Tail analysis for the degradation fault models: the fail-stop classes of
// Table 5.3 have recovery times that barely spread (the BFT bound dominates
// everything), but transient links, fail-slow engines, and CPU-fail/
// memory-survives interact with in-flight state, so their containment time
// has a tail worth measuring. A TailCampaign runs 1000+ warm-forked seeds
// per scenario and reports the p50/p99/p999 containment time plus how much
// of the machine each fault cost.

// TailConfig shapes a tail campaign.
type TailConfig struct {
	ValidationConfig
	// Runs is the number of warm-forked runs per scenario; 0 defaults to
	// DefaultTailRuns (enough observations that the p999 is supported by a
	// real observation, see stats.TailReliable).
	Runs int
	// Faults selects the scenarios; nil runs fault.ExtendedTypes().
	Faults []fault.Type
}

// DefaultTailRuns is the default per-scenario run count: with 1000 runs the
// p999 rests on the single largest observation rather than interpolation.
const DefaultTailRuns = 1000

// DefaultTailConfig returns the default tail-campaign setup: the validation
// machine with DefaultTailRuns per scenario.
func DefaultTailConfig() TailConfig {
	return TailConfig{ValidationConfig: DefaultValidationConfig(), Runs: DefaultTailRuns}
}

// TailScenario aggregates one fault class's tail campaign.
type TailScenario struct {
	Fault  fault.Type
	Runs   int
	Failed int // runs that did not pass ValidationResult.OK
	// Containment-time percentiles over the passing runs (Phases.Total:
	// first recovery entry to last node's recovery completion).
	P50, P99, P999 sim.Time
	// TailOK reports whether the p999 is supported by at least one real
	// observation (stats.TailReliable); below that it is interpolation
	// noise and drivers annotate it.
	TailOK bool
	// Affected summarizes the fraction of the machine each run lost
	// (affected nodes / machine size).
	Affected stats.Summary
}

// TailResult is a full tail campaign: one scenario per fault class plus the
// campaign's host-side throughput accounting.
type TailResult struct {
	Scenarios []TailScenario
	Stats     runner.Stats
}

// TailCampaign runs the tail analysis: for every requested fault class,
// cfg.Runs warm-forked validation runs (seeded from runner.StreamTail, so
// tail campaigns never correlate with Table 5.3 batches at the same base
// seed) are reduced to containment-time percentiles and the affected
// fraction. Results are bit-identical for any worker count, any Partitions
// value, and warm-start on or off, because every run is the shared
// ValidationFromWarm computation.
func TailCampaign(cfg TailConfig, seed int64) *TailResult {
	runs := cfg.Runs
	if runs <= 0 {
		runs = DefaultTailRuns
	}
	faults := cfg.Faults
	if faults == nil {
		faults = fault.ExtendedTypes()
	}
	out := &TailResult{}
	for _, ft := range faults {
		sc := TailScenario{Fault: ft, Runs: runs}
		results, st := tailBatch(cfg.ValidationConfig, ft, runs, seed)
		var times []float64
		var affected []float64
		for _, r := range results {
			if r.Err != nil || !r.Value.OK() {
				sc.Failed++
				continue
			}
			times = append(times, float64(r.Value.Phases.Total))
			affected = append(affected,
				float64(r.Value.AffectedNodes)/float64(cfg.Nodes))
		}
		if len(times) > 0 {
			sort.Float64s(times)
			sc.P50 = sim.Time(stats.Percentile(times, 50))
			sc.P99 = sim.Time(stats.Percentile(times, 99))
			sc.P999 = sim.Time(stats.Percentile(times, 99.9))
			sc.TailOK = stats.TailReliable(len(times), 99.9)
		}
		sc.Affected = stats.Summarize(affected)
		out.Stats.Merge(st)
		out.Scenarios = append(out.Scenarios, sc)
	}
	return out
}

// tailBatch is WarmValidationBatch with the tail campaign's seed stream.
func tailBatch(cfg ValidationConfig, ft fault.Type, runs int, seed int64) ([]runner.Result[*ValidationResult], runner.Stats) {
	bcfg := cfg
	bcfg.Trace = nil
	warmSeed := runner.DeriveSeed(seed, runner.StreamWarmup, 0)
	runSeed := func(i int) int64 { return runner.DeriveSeed(seed, runner.StreamTail+int(ft), i) }
	if bcfg.WarmStart.Enabled() {
		return runner.CampaignWithSetup(runs, cfg.Workers,
			func() any { return WarmupValidation(bcfg, warmSeed) },
			func(i int, ws any, rec *runner.Recorder) *ValidationResult {
				r := ValidationFromWarm(ws.(*WarmState), ft, runSeed(i), nil)
				rec.Report(r.Events)
				return r
			}, nil)
	}
	return runner.Campaign(runs, cfg.Workers, func(i int, rec *runner.Recorder) *ValidationResult {
		r := ValidationWarm(bcfg, ft, warmSeed, runSeed(i))
		rec.Report(r.Events)
		return r
	}, nil)
}
