package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/sim"
	"flashfc/internal/workload"
)

// TestPartitionedValidationExtendedFaults runs the validation scenario on a
// partitioned machine for every degradation fault class: transient link,
// fail-slow, and CPU-fail/memory-survives all force the global interleave
// at injection and must recover and verify like the fail-stop classes.
func TestPartitionedValidationExtendedFaults(t *testing.T) {
	cfg := DefaultValidationConfig()
	cfg.Nodes = 16
	cfg.FillLines = 64
	cfg.Partitions = 2
	for _, ft := range fault.ExtendedTypes() {
		r := Validation(cfg, ft, 5)
		if !r.OK() {
			t.Errorf("%v: %s (recovered=%v verify=%v)", ft, r.Note, r.Recovered, r.Verify)
		}
	}
}

// TestTransientLinkHealOnLookaheadBarrier pins the nastiest transient-link
// timing: the heal window ends exactly on a conservative-lookahead window
// boundary of the partitioned engine. The heal event must fire at the right
// global time, nothing crossing the healed link afterwards may be charged
// to the fault, and the whole run stays byte-identical across worker
// counts.
func TestTransientLinkHealOnLookaheadBarrier(t *testing.T) {
	run := func(workers int) (string, *ValidationResult) {
		mc := machine.DefaultConfig(16)
		mc.Seed = 29
		mc.MemBytes = 64 << 10
		mc.L2Bytes = 16 << 10
		mc.Partitions = workers
		m := machine.New(mc)
		la := m.P.Lookahead()

		// Pick an inter-region link so the degradation also spans a
		// partition boundary.
		link := -1
		var far int
		for l, lk := range m.Topo.Links() {
			if m.Regions.Of(lk.A) != m.Regions.Of(lk.B) {
				link, far = l, lk.B
				break
			}
		}
		if link < 0 {
			t.Fatal("test premise broken: no inter-region link")
		}

		// Advance into the run, then size the window so the heal lands on
		// an exact multiple of the lookahead — the barrier instant itself.
		m.Advance(200 * sim.Microsecond)
		window := 4*la - m.Now()%la
		f := fault.Fault{Type: fault.TransientLink, Link: link, Window: window}
		if (m.Now()+window)%la != 0 {
			t.Fatalf("window %v does not end on a lookahead barrier", window)
		}
		m.Inject(f)
		// Traffic into the window: this read's request or reply crosses
		// the dead link and its loss trips the memory-op timeout.
		m.Nodes[0].CPU.Submit(workload.TouchOp(m, far))
		res := &ValidationResult{Fault: f}
		res.Recovered = m.RunUntilRecovered(5 * sim.Second)
		if res.Recovered {
			res.Verify = m.VerifyMemory(0, 1)
		}
		res.Metrics = m.MetricsSnapshot()
		var buf bytes.Buffer
		if err := res.Metrics.WriteJSON(&buf); err != nil {
			t.Fatalf("metrics json: %v", err)
		}
		return buf.String(), res
	}
	want, res := run(1)
	if !res.Recovered || res.Verify == nil || !res.Verify.OK() {
		t.Fatalf("workers=1: recovered=%v verify=%v", res.Recovered, res.Verify)
	}
	if n := res.Metrics.Counters["interconnect.link_heals"]; n != 1 {
		t.Errorf("link_heals = %d, want 1", n)
	}
	got, res4 := run(4)
	if !res4.Recovered || res4.Verify == nil || !res4.Verify.OK() {
		t.Fatalf("workers=4: recovered=%v verify=%v", res4.Recovered, res4.Verify)
	}
	if got != want {
		t.Errorf("metrics JSON differs between 1 and 4 workers")
	}
}

// TestTailCampaignCrossForkDeterminism is the warm-start contract applied
// to the tail campaign: warm-start on (runs fork a shared snapshot) and off
// (every run builds a private warm-up) must produce identical scenarios —
// same percentiles, same failure counts, same affected fractions.
func TestTailCampaignCrossForkDeterminism(t *testing.T) {
	cfg := DefaultTailConfig()
	cfg.FillLines = 64
	cfg.Runs = 6
	on := TailCampaign(cfg, 17)
	cfg.WarmStart = WarmStartOff
	off := TailCampaign(cfg, 17)
	if !reflect.DeepEqual(on.Scenarios, off.Scenarios) {
		t.Fatalf("tail scenarios differ between warm-start on and off:\non:  %+v\noff: %+v",
			on.Scenarios, off.Scenarios)
	}
	for _, sc := range on.Scenarios {
		if sc.Failed != 0 {
			t.Errorf("%v: %d/%d runs failed", sc.Fault, sc.Failed, sc.Runs)
		}
		if sc.P50 > sc.P99 || sc.P99 > sc.P999 {
			t.Errorf("%v: percentiles not monotonic: p50=%v p99=%v p999=%v",
				sc.Fault, sc.P50, sc.P99, sc.P999)
		}
		if sc.TailOK {
			t.Errorf("%v: p999 of %d runs claims tail support", sc.Fault, sc.Runs)
		}
	}
}
