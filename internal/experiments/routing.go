package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"flashfc/internal/fault"
	"flashfc/internal/machine"
	"flashfc/internal/routing"
	"flashfc/internal/runner"
	"flashfc/internal/sim"
	"flashfc/internal/stats"
	"flashfc/internal/topology"
	"flashfc/internal/workload"
)

// Head-to-head routing campaigns: the same faulted runs replayed under every
// registered recovery-routing strategy. Each scenario draws its faults from
// the run seed alone — never from the strategy — so strategy s and strategy
// s' recover from byte-identical machines facing byte-identical faults, and
// the per-run differences are pure strategy effects. Four outcomes are
// compared: recovery time (and its P3 share, where the strategies actually
// differ), packets the fabric lost, post-recovery throughput (the verify
// sweep's line rate), and deadlock freedom of the tables each strategy left
// installed.

// RoutingScenarioSpec is one fault shape a routing campaign replays.
type RoutingScenarioSpec struct {
	Name string
	// Links is how many distinct random links fail simultaneously.
	Links int
	// Router adds one random router failure.
	Router bool
}

// DefaultRoutingScenarios are the standard shapes: one dead link, one dead
// router, and a simultaneous multi-link failure.
func DefaultRoutingScenarios() []RoutingScenarioSpec {
	return []RoutingScenarioSpec{
		{Name: "single-link", Links: 1},
		{Name: "router", Router: true},
		{Name: "multi-link", Links: 2},
	}
}

// DefaultRoutingRuns is the default per-scenario, per-strategy run count.
const DefaultRoutingRuns = 100

// RoutingConfig shapes a head-to-head routing campaign.
type RoutingConfig struct {
	ValidationConfig
	// Runs is the number of warm-forked runs per scenario per strategy;
	// 0 defaults to DefaultRoutingRuns.
	Runs int
	// Strategies names the competitors; nil runs every registered one.
	Strategies []string
	// Scenarios selects the fault shapes; nil runs DefaultRoutingScenarios.
	Scenarios []RoutingScenarioSpec
}

// DefaultRoutingConfig returns the default head-to-head setup: the
// validation machine, all registered strategies, the default scenarios.
func DefaultRoutingConfig() RoutingConfig {
	return RoutingConfig{ValidationConfig: DefaultValidationConfig(), Runs: DefaultRoutingRuns}
}

// RoutingRun is one strategy's replay of one campaign run.
type RoutingRun struct {
	Strategy  string
	Faults    []fault.Fault
	Recovered bool
	// OK is the validation verdict: recovered and the whole-memory sweep
	// found nothing unjustified.
	OK bool
	// Acyclic is the deadlock-freedom verdict on the tables the strategy
	// left installed: their channel-dependency graph on the surviving
	// topology must have no cycle.
	Acyclic bool
	// Total is the containment time; P3 is its interconnect-recovery share,
	// where the drain discipline and repair cost actually differ.
	Total, P3 sim.Time
	// Lost counts the packets the fabric destroyed from injection to the
	// end of recovery (drops of every kind).
	Lost uint64
	// Throughput is the post-recovery verify sweep's rate in lines per
	// simulated millisecond — the surviving machine's usable bandwidth
	// under the repaired tables.
	Throughput float64
	Events     uint64
}

// RoutingCell aggregates one (scenario, strategy) batch.
type RoutingCell struct {
	Strategy string
	Runs     int
	// Failed counts runs that crashed, did not recover, or failed
	// verification. Deadlocks counts runs whose installed tables had a
	// dependency cycle — the acceptance gate is zero everywhere.
	Failed    int
	Deadlocks int
	// Recovery-time percentiles and the P3 share over the passing runs.
	RecoveryP50, RecoveryP99 sim.Time
	P3P50                    sim.Time
	// LostMean is the mean packets lost per run; ThroughputP50 the median
	// post-recovery verify rate (lines per simulated millisecond).
	LostMean      float64
	ThroughputP50 float64
}

// RoutingScenario is one fault shape's head-to-head comparison.
type RoutingScenario struct {
	Spec  RoutingScenarioSpec
	Cells []RoutingCell
}

// RoutingResult is a full head-to-head routing campaign.
type RoutingResult struct {
	Scenarios []RoutingScenario
	Stats     runner.Stats
}

// RoutingCampaign runs the head-to-head comparison: for every scenario and
// every strategy, cfg.Runs warm-forked runs seeded from
// runner.StreamRouting+scenario — the seed never involves the strategy, so
// each strategy replays the identical fault sequence and the cells of one
// scenario are directly comparable. Results are bit-identical for any
// worker count and warm-start mode.
func RoutingCampaign(cfg RoutingConfig, seed int64) *RoutingResult {
	runs := cfg.Runs
	if runs <= 0 {
		runs = DefaultRoutingRuns
	}
	strategies := cfg.Strategies
	if strategies == nil {
		strategies = routing.Names()
	}
	scenarios := cfg.Scenarios
	if scenarios == nil {
		scenarios = DefaultRoutingScenarios()
	}
	out := &RoutingResult{}
	for si, spec := range scenarios {
		sc := RoutingScenario{Spec: spec}
		for _, strat := range strategies {
			results, st := routingBatch(cfg.ValidationConfig, strat, spec, runs, seed, si)
			sc.Cells = append(sc.Cells, reduceRoutingCell(strat, results))
			out.Stats.Merge(st)
		}
		out.Scenarios = append(out.Scenarios, sc)
	}
	return out
}

// reduceRoutingCell folds one batch into its aggregate row.
func reduceRoutingCell(strat string, results []runner.Result[*RoutingRun]) RoutingCell {
	cell := RoutingCell{Strategy: strat, Runs: len(results)}
	var times, p3s, tputs []float64
	var lost float64
	passing := 0
	for _, r := range results {
		if r.Err != nil || !r.Value.Recovered || !r.Value.OK {
			cell.Failed++
			continue
		}
		if !r.Value.Acyclic {
			cell.Deadlocks++
		}
		passing++
		times = append(times, float64(r.Value.Total))
		p3s = append(p3s, float64(r.Value.P3))
		tputs = append(tputs, r.Value.Throughput)
		lost += float64(r.Value.Lost)
	}
	if passing > 0 {
		sort.Float64s(times)
		sort.Float64s(p3s)
		sort.Float64s(tputs)
		cell.RecoveryP50 = sim.Time(stats.Percentile(times, 50))
		cell.RecoveryP99 = sim.Time(stats.Percentile(times, 99))
		cell.P3P50 = sim.Time(stats.Percentile(p3s, 50))
		cell.ThroughputP50 = stats.Percentile(tputs, 50)
		cell.LostMean = lost / float64(passing)
	}
	return cell
}

// routingRunSeed derives the engine seed of run i of one scenario. The
// strategy is deliberately absent: every strategy replays the same runs.
func routingRunSeed(seed int64, scenario, i int) int64 {
	return runner.DeriveSeed(seed, runner.StreamRouting+scenario, i)
}

// routingFaults draws one run's fault set: spec.Links distinct random links
// and/or one random router, identical for every strategy at the same run
// seed.
func routingFaults(rng *rand.Rand, spec RoutingScenarioSpec, topo *topology.Topology) []fault.Fault {
	var out []fault.Fault
	if spec.Router {
		out = append(out, fault.Random(rng, fault.RouterFailure, topo, 1))
	}
	picked := map[int]bool{}
	for len(picked) < spec.Links {
		l := rng.Intn(len(topo.Links()))
		if picked[l] {
			continue
		}
		picked[l] = true
		out = append(out, fault.Fault{Type: fault.LinkFailure, Link: l})
	}
	// Map iteration order is random; re-sort the link faults into a
	// deterministic sequence (router fault first, links by id).
	sort.Slice(out, func(a, b int) bool {
		if out[a].Type != out[b].Type {
			return out[a].Type == fault.RouterFailure
		}
		return out[a].Link < out[b].Link
	})
	return out
}

// routingBatch runs one (scenario, strategy) batch of warm-forked runs.
func routingBatch(cfg ValidationConfig, strat string, spec RoutingScenarioSpec, runs int, seed int64, scenario int) ([]runner.Result[*RoutingRun], runner.Stats) {
	bcfg := cfg
	bcfg.Trace = nil
	warmSeed := runner.DeriveSeed(seed, runner.StreamWarmup, 0)
	runSeed := func(i int) int64 { return routingRunSeed(seed, scenario, i) }
	if bcfg.WarmStart.Enabled() {
		return runner.CampaignWithSetup(runs, cfg.Workers,
			func() any { return WarmupValidation(bcfg, warmSeed) },
			func(i int, ws any, rec *runner.Recorder) *RoutingRun {
				r := RoutingFromWarm(ws.(*WarmState), strat, spec, runSeed(i))
				rec.Report(r.Events)
				return r
			}, nil)
	}
	return runner.Campaign(runs, cfg.Workers, func(i int, rec *runner.Recorder) *RoutingRun {
		ws := WarmupValidation(bcfg, warmSeed)
		r := RoutingFromWarm(ws, strat, spec, runSeed(i))
		rec.Report(r.Events)
		return r
	}, nil)
}

// RoutingFromWarm performs one head-to-head run: fork ws under the named
// strategy (router tables are rebuilt at construction, so the fork is
// bit-identical to any sibling until the first fault), run a runSeed-private
// fill burst, inject the scenario's faults — drawn from runSeed alone —
// once half the burst has committed, recover, then measure what the strategy
// left behind: containment time, P3 share, packets lost, deadlock freedom of
// the installed tables, and the verify sweep's post-recovery line rate.
func RoutingFromWarm(ws *WarmState, strat string, spec RoutingScenarioSpec, runSeed int64) *RoutingRun {
	cfg := ws.Cfg
	m := machine.FromSnapshotRouting(ws.Snap, nil, strat)
	rng := rand.New(rand.NewSource(runSeed))
	faults := routingFaults(rng, spec, m.Topo)
	res := &RoutingRun{Strategy: strat, Faults: faults}
	defer func() { res.Events = m.E.EventsFired() }()

	burst := workload.NewFillerSeeded(m, runSeed)
	burst.FillLines = ws.burstLines()
	var lostBase uint64
	injected := false
	inject := func() {
		injected = true
		lostBase = droppedPackets(m)
		m.InjectAll(faults)
	}
	burst.OnHalfDone = inject
	burstDone := false
	burst.Start(func() { burstDone = true })
	deadline := m.E.Now() + cfg.Deadline
	for !burstDone && m.E.Now() < deadline {
		m.E.RunUntil(m.E.Now() + sim.Millisecond)
	}
	if !injected {
		inject()
	}
	reader := driveDetection(m, faults[0])
	res.Recovered = m.RunUntilRecovered(deadline)
	if !res.Recovered {
		return res
	}
	ph := m.Aggregate()
	res.Total = ph.Total
	res.P3 = ph.P123 - ph.P12
	res.Acyclic = m.RoutingAcyclic()
	res.Lost = droppedPackets(m) - lostBase
	t0 := m.Now()
	v := m.VerifyMemory(reader, cfg.Stride)
	res.OK = v.OK()
	if el := m.Now() - t0; el > 0 && v.LinesChecked > 0 {
		res.Throughput = float64(v.LinesChecked) / (float64(el) / float64(sim.Millisecond))
	}
	return res
}

// droppedPackets totals every way the fabric destroys a packet.
func droppedPackets(m *machine.Machine) uint64 {
	s := &m.Net.Stats
	return s.DroppedLink + s.DroppedRouter + s.DroppedNoRoute +
		s.DroppedIsolation + s.DroppedHeadTimeout + s.DroppedDeadNode
}

// String renders one scenario's head-to-head comparison.
func (sc RoutingScenario) String() string {
	out := sc.Spec.Name + ":"
	for _, c := range sc.Cells {
		out += fmt.Sprintf(" %s[p50=%v p99=%v lost=%.1f dl=%d]",
			c.Strategy, c.RecoveryP50, c.RecoveryP99, c.LostMean, c.Deadlocks)
	}
	return out
}
