package experiments

import (
	"testing"

	"flashfc/internal/fault"
	"flashfc/internal/runner"
)

// TestTransientLinkTail524Contained pins tail run 524 of the TransientLink
// scenario at base seed 1 (-table tail -full -seed 1), which exposed a
// recall/exclusive-grant race: a RECALL on the request lane overtook the
// owner's DATA_EX upgrade grant on the reply lane, the owner answered with
// its stale shared copy, and its committed store later vanished in the P4
// flush as a "stale" writeback — a containment miss with no packet lost.
// handleRecall now merges the recall into the outstanding exclusive miss
// before trusting a resident copy; this run must verify clean forever.
func TestTransientLinkTail524Contained(t *testing.T) {
	cfg := DefaultTailConfig()
	warmSeed := runner.DeriveSeed(1, runner.StreamWarmup, 0)
	ws := WarmupValidation(cfg.ValidationConfig, warmSeed)
	runSeed := tailRunSeed(1, fault.TransientLink, 524)
	r := ValidationFromWarm(ws, fault.TransientLink, runSeed, nil)
	if !r.OK() {
		t.Fatalf("tail run 524 (seed %d) not contained: recovered=%v verify=%v",
			runSeed, r.Recovered, r.Verify)
	}
}
