package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"flashfc/internal/fault"
	"flashfc/internal/obs"
)

// fastTailConfig shrinks the tail campaign to test scale.
func fastTailConfig() TailConfig {
	cfg := DefaultTailConfig()
	cfg.FillLines = 64
	cfg.Runs = 8
	return cfg
}

// tailRunLog runs a tail campaign with a RunLog attached and returns the
// JSONL bytes, finishing the sink the way a driver would.
func tailRunLog(t *testing.T, cfg TailConfig, seed int64) string {
	t.Helper()
	var buf bytes.Buffer
	log := obs.NewRunLog(&buf, false)
	cfg.Observe = log
	TailCampaign(cfg, seed)
	log.Finish()
	if err := log.Err(); err != nil {
		t.Fatalf("run log: %v", err)
	}
	return buf.String()
}

// TestTailRunLogByteIdentity is the tentpole contract: the JSONL record
// stream of a tail campaign is byte-identical regardless of how many
// run-level workers raced to complete runs, and regardless of the
// intra-machine partition count. The RunLog reorders completion-order
// events back to run-index order and the records strip host-side fields.
func TestTailRunLogByteIdentity(t *testing.T) {
	cfg := fastTailConfig()
	cfg.Workers = 1
	want := tailRunLog(t, cfg, 23)
	if want == "" {
		t.Fatal("empty run log")
	}
	cfg.Workers = 8
	if got := tailRunLog(t, cfg, 23); got != want {
		t.Errorf("run log differs between 1 and 8 workers:\n1: %q\n8: %q", want, got)
	}
	cfg.Partitions = 4
	if got := tailRunLog(t, cfg, 23); got != want {
		t.Errorf("run log differs between partitions 0 and 4")
	}
	cfg.Partitions = 0
	cfg.WarmStart = WarmStartOff
	if got := tailRunLog(t, cfg, 23); got != want {
		t.Errorf("run log differs between warm-start on and off")
	}
}

// TestTailRunLogRecords checks the stream's shape: one batch per fault
// class, run indices 0..runs-1 in order within each batch, and every record
// carrying the derived seed that reproduces it (asserted by replaying one).
func TestTailRunLogRecords(t *testing.T) {
	cfg := fastTailConfig()
	seed := int64(23)
	lines := strings.Split(strings.TrimSuffix(tailRunLog(t, cfg, seed), "\n"), "\n")
	faults := fault.ExtendedTypes()
	if want := cfg.Runs * len(faults); len(lines) != want {
		t.Fatalf("got %d records, want %d", len(lines), want)
	}
	for n, line := range lines {
		var rec obs.RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d: %v\n%s", n, err, line)
		}
		batch, i := n/cfg.Runs, n%cfg.Runs
		if rec.Run != i {
			t.Fatalf("record %d: run index %d, want %d", n, rec.Run, i)
		}
		if want := tailRunSeed(seed, faults[batch], i); rec.Seed != want {
			t.Errorf("record %d: seed %d, want %d", n, rec.Seed, want)
		}
		if rec.Outcome != obs.OutcomePass {
			t.Errorf("record %d: outcome %q, note %q", n, rec.Outcome, rec.Note)
		}
		if rec.WallNS != 0 || rec.Worker != 0 {
			t.Errorf("record %d: host fields not stripped: wall=%d worker=%d",
				n, rec.WallNS, rec.Worker)
		}
		if rec.ContainmentNS <= 0 {
			t.Errorf("record %d: containment %d", n, rec.ContainmentNS)
		}
	}
	// The first record's seed reproduces the first record's containment
	// time: any run-log row is replayable.
	var first obs.RunRecord
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	e := ReplayTailRun(cfg, faults[0], seed, first.Run)
	if e.Seed != first.Seed {
		t.Fatalf("replay derived seed %d, record says %d", e.Seed, first.Seed)
	}
	if int64(e.TracedTime) != first.ContainmentNS {
		t.Errorf("replayed containment %d, record says %d",
			int64(e.TracedTime), first.ContainmentNS)
	}
}

// TestTailRunLogPanicRecord injects a panic into one run of every batch and
// requires it to surface as a well-formed "panic" record at the right index
// — observability must not lose crashed runs, and the stream stays complete
// and ordered around them.
func TestTailRunLogPanicRecord(t *testing.T) {
	cfg := fastTailConfig()
	cfg.Workers = 4
	cfg.runHook = func(i int) {
		if i == 3 {
			panic("injected driver crash")
		}
	}
	lines := strings.Split(strings.TrimSuffix(tailRunLog(t, cfg, 23), "\n"), "\n")
	if want := cfg.Runs * len(fault.ExtendedTypes()); len(lines) != want {
		t.Fatalf("got %d records, want %d (panics must not drop records)", len(lines), want)
	}
	panics := 0
	for n, line := range lines {
		var rec obs.RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		if rec.Run != n%cfg.Runs {
			t.Fatalf("record %d: run index %d, want %d", n, rec.Run, n%cfg.Runs)
		}
		if rec.Run == 3 {
			panics++
			if rec.Outcome != obs.OutcomePanic {
				t.Errorf("crashed run logged as %q", rec.Outcome)
			}
			if !strings.Contains(rec.Note, "injected driver crash") {
				t.Errorf("panic note %q does not name the panic", rec.Note)
			}
			if rec.Fault != "" || rec.ContainmentNS != 0 {
				t.Errorf("panic record carries run payload: %+v", rec)
			}
		} else if rec.Outcome != obs.OutcomePass {
			t.Errorf("record %d: outcome %q", n, rec.Outcome)
		}
	}
	if want := len(fault.ExtendedTypes()); panics != want {
		t.Errorf("%d panic records, want %d", panics, want)
	}
}

// TestTailExemplarReplayExact is the acceptance contract: replaying the
// runs behind a finished tail campaign's p50/p99/p999 — same warm fork,
// same derived seeds, tracing on — reproduces every recorded observation
// exactly. In particular the traced p999 containment time equals the
// campaign's recorded p999 observation bit-for-bit.
func TestTailExemplarReplayExact(t *testing.T) {
	cfg := fastTailConfig()
	cfg.Runs = 10
	seed := int64(31)
	res := TailCampaign(cfg, seed)
	replays := ReplayTailExemplars(cfg, seed, res)
	if want := len(res.Scenarios) * len(TailPercentiles); len(replays) != want {
		t.Fatalf("%d replays, want %d", len(replays), want)
	}
	for _, e := range replays {
		if !e.Match() {
			t.Errorf("%v p%g: traced %v != campaign %v (run %d seed %d)",
				e.Fault, e.Pct, e.TracedTime, e.CampaignTime, e.Run, e.Seed)
		}
		if e.Trace == nil || len(e.Trace.CriticalPaths()) == 0 {
			t.Errorf("%v p%g: replay produced no critical path", e.Fault, e.Pct)
		}
		if !e.Result.OK() {
			t.Errorf("%v p%g: replayed run failed: %s", e.Fault, e.Pct, e.Result.Note)
		}
	}
	// The p999 exemplar must be a real observation: at 10 runs nearest-rank
	// p999 is the maximum, so its time equals the largest passing time.
	for _, sc := range res.Scenarios {
		ex := sc.Exemplars[len(sc.Exemplars)-1]
		if ex.Pct != 99.9 {
			t.Fatalf("%v: last exemplar is p%g, want p99.9", sc.Fault, ex.Pct)
		}
		if ex.Run < 0 || ex.Run >= cfg.Runs {
			t.Errorf("%v: exemplar run %d out of range", sc.Fault, ex.Run)
		}
	}
	// And the exemplar set itself is deterministic.
	res2 := TailCampaign(cfg, seed)
	for i, sc := range res.Scenarios {
		if len(sc.Exemplars) != len(res2.Scenarios[i].Exemplars) {
			t.Fatalf("%v: exemplar count changed between identical campaigns", sc.Fault)
		}
		for j, ex := range sc.Exemplars {
			if ex != res2.Scenarios[i].Exemplars[j] {
				t.Errorf("%v: exemplar %d differs between identical campaigns: %+v vs %+v",
					sc.Fault, j, ex, res2.Scenarios[i].Exemplars[j])
			}
		}
	}
}

// TestWriteExemplarDeterministicBytes renders one replayed exemplar twice
// (through two fresh campaigns) and requires both output files to be
// byte-identical — the trace JSON and the summary carry no host state.
func TestWriteExemplarDeterministicBytes(t *testing.T) {
	cfg := fastTailConfig()
	cfg.Runs = 4
	render := func(dir string) {
		res := TailCampaign(cfg, 23)
		for _, e := range ReplayTailExemplars(cfg, 23, res) {
			et := obs.ExemplarTrace{
				Name:       obs.ExemplarName(e.Fault.String(), e.Pct),
				Fault:      e.Fault.String(),
				Pct:        e.Pct,
				Run:        e.Run,
				Seed:       e.Seed,
				CampaignNS: int64(e.CampaignTime),
				TracedNS:   int64(e.TracedTime),
				Tracer:     e.Trace,
			}
			if err := obs.WriteExemplar(dir, et); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, b := t.TempDir(), t.TempDir()
	render(a)
	render(b)
	names := []string{"fail-slow-p50", "fail-slow-p999", "cpu-fail-p99"}
	for _, name := range names {
		for _, suffix := range []string{".json", ".trace.json"} {
			fa := readFile(t, a+"/"+name+suffix)
			fb := readFile(t, b+"/"+name+suffix)
			if fa != fb {
				t.Errorf("%s%s differs between two identical renders", name, suffix)
			}
			if fa == "" {
				t.Errorf("%s%s is empty", name, suffix)
			}
		}
	}
	// The summary must verify its own replay and name a dominant step.
	var sum struct {
		Match    bool `json:"match"`
		Critical struct {
			Dominant struct {
				Step string `json:"step"`
			} `json:"dominant"`
		} `json:"critical"`
	}
	if err := json.Unmarshal([]byte(readFile(t, a+"/fail-slow-p999.json")), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Match {
		t.Error("summary reports match=false for a deterministic replay")
	}
	if sum.Critical.Dominant.Step == "" {
		t.Error("summary names no dominant recovery step")
	}
}

// TestValidationBatchObserved wires a sink into the Table 5.3 path
// (WarmValidationBatch via ValidationConfig.Observe) and checks batch
// metadata and record/fault agreement.
func TestValidationBatchObserved(t *testing.T) {
	cfg := fastValidationConfig()
	var buf bytes.Buffer
	log := obs.NewRunLog(&buf, false)
	cfg.Observe = log
	seed := int64(7)
	WarmValidationBatch(cfg, fault.NodeFailure, 4, seed)
	WarmValidationBatch(cfg, fault.LinkFailure, 4, seed)
	log.Finish()
	if err := log.Err(); err != nil {
		t.Fatalf("run log: %v", err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d records, want 8", len(lines))
	}
	var rec obs.RunRecord
	if err := json.Unmarshal([]byte(lines[5]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Run != 1 {
		t.Errorf("second batch record 1 has run index %d", rec.Run)
	}
	if !strings.Contains(rec.Fault, "link") {
		t.Errorf("second batch record reports fault %q, want a link failure", rec.Fault)
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return string(b)
}
