package proc

import (
	"testing"

	"flashfc/internal/coherence"
	"flashfc/internal/interconnect"
	"flashfc/internal/magic"
	"flashfc/internal/sim"
	"flashfc/internal/topology"
)

func newCPU(t *testing.T) (*sim.Engine, *CPU, *magic.Controller) {
	t.Helper()
	e := sim.NewEngine(1)
	topo := topology.NewMesh(2, 1)
	net := interconnect.New(e, topo, interconnect.DefaultConfig())
	space := coherence.AddrSpace{Nodes: 2, MemBytes: 64 << 10}
	var ctrls []*magic.Controller
	for i := 0; i < 2; i++ {
		ctrls = append(ctrls, magic.New(e, net, i, space,
			coherence.NewDirectory(2),
			coherence.NewMemory(space.Base(i), space.MemBytes),
			coherence.NewCache(64*128), magic.DefaultConfig()))
	}
	return e, New(e, ctrls[0], 2), ctrls[0]
}

func TestWindowLimitsInflight(t *testing.T) {
	e, cpu, _ := newCPU(t)
	done := 0
	for i := 0; i < 6; i++ {
		cpu.Submit(Op{Kind: OpRead, Addr: coherence.Addr(i * 128), Done: func(magic.Result) { done++ }})
	}
	if cpu.Inflight() != 2 {
		t.Fatalf("inflight = %d, want window of 2", cpu.Inflight())
	}
	if cpu.QueueLen() != 4 {
		t.Fatalf("queued = %d, want 4", cpu.QueueLen())
	}
	e.Run()
	if done != 6 {
		t.Fatalf("done = %d, want 6", done)
	}
	if cpu.Stats.Issued != 6 || cpu.Stats.Completed != 6 {
		t.Fatalf("stats = %+v", cpu.Stats)
	}
}

func TestPauseStopsIssue(t *testing.T) {
	e, cpu, _ := newCPU(t)
	cpu.Pause()
	done := 0
	cpu.Submit(Op{Kind: OpRead, Addr: 0, Done: func(magic.Result) { done++ }})
	e.Run()
	if done != 0 || cpu.Inflight() != 0 || cpu.QueueLen() != 1 {
		t.Fatalf("paused CPU issued work: done=%d inflight=%d queue=%d",
			done, cpu.Inflight(), cpu.QueueLen())
	}
	if !cpu.Paused() {
		t.Fatal("Paused() wrong")
	}
	cpu.Resume()
	e.Run()
	if done != 1 {
		t.Fatalf("done after resume = %d", done)
	}
}

func TestWriteAndReadExclusive(t *testing.T) {
	e, cpu, ctrl := newCPU(t)
	var res magic.Result
	cpu.Submit(Op{Kind: OpWrite, Addr: 0x100, Token: 42, Done: func(r magic.Result) { res = r }})
	e.Run()
	if res.Err != nil || res.Token != 42 {
		t.Fatalf("write: %+v", res)
	}
	l := ctrl.Cache.Lookup(0x100)
	if l == nil || l.State != coherence.CacheExclusive || l.Token != 42 {
		t.Fatalf("cache line: %+v", l)
	}
	cpu.Submit(Op{Kind: OpReadExclusive, Addr: 0x200, Done: func(r magic.Result) { res = r }})
	e.Run()
	if res.Err != nil {
		t.Fatalf("read exclusive: %+v", res)
	}
	if ctrl.Cache.Lookup(0x200).State != coherence.CacheExclusive {
		t.Fatal("line not exclusive")
	}
}

func TestBusErrorCounted(t *testing.T) {
	e, cpu, ctrl := newCPU(t)
	ctrl.SetNodeUp(1, false)
	var got error
	cpu.Submit(Op{Kind: OpRead, Addr: coherence.Addr(64 << 10), Done: func(r magic.Result) { got = r.Err }})
	e.Run()
	if got != magic.ErrBusError {
		t.Fatalf("err = %v", got)
	}
	if cpu.Stats.BusErrors != 1 {
		t.Fatalf("stats = %+v", cpu.Stats)
	}
}

func TestSpeculateDiscardsResult(t *testing.T) {
	e, cpu, ctrl := newCPU(t)
	cpu.Speculate(0x300)
	e.Run()
	// The wrong-path fetch still pulled the line exclusive — the §3.3
	// hazard the firewall exists to contain.
	l := ctrl.Cache.Lookup(0x300)
	if l == nil || l.State != coherence.CacheExclusive {
		t.Fatal("speculative fetch should install the line exclusive")
	}
}

func TestAbortedCounted(t *testing.T) {
	e, cpu, ctrl := newCPU(t)
	var got error
	// A remote read that will be aborted by recovery entry.
	cpu.Submit(Op{Kind: OpRead, Addr: coherence.Addr(64<<10) + 0x80, Done: func(r magic.Result) { got = r.Err }})
	e.RunUntil(10) // issued, not yet complete
	ctrl.EnterRecovery()
	e.RunUntil(e.Now() + sim.Millisecond)
	if got != magic.ErrAborted {
		t.Fatalf("err = %v", got)
	}
	if cpu.Stats.Aborted != 1 {
		t.Fatalf("stats = %+v", cpu.Stats)
	}
}
