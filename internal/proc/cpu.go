// Package proc models the main processor of a FLASH node at the level the
// fault-containment experiments need: a windowed issue engine for memory
// operations (the R10000 sustains several outstanding misses), pause/resume
// for recovery (during which the recovery agent owns the processor), and an
// optional wrong-path speculation mode that issues exclusive fetches the
// program never meant to make (§3.1, §3.3).
package proc

import (
	"fmt"

	"flashfc/internal/coherence"
	"flashfc/internal/magic"
	"flashfc/internal/sim"
)

// OpKind is the kind of a memory operation.
type OpKind int

const (
	OpRead OpKind = iota
	OpReadExclusive
	OpWrite
)

// Op is one memory operation submitted to the CPU.
type Op struct {
	Kind  OpKind
	Addr  coherence.Addr
	Token uint64 // OpWrite only
	// Done receives the completion. May be nil.
	Done func(magic.Result)
}

// Stats counts processor-level events.
type Stats struct {
	Issued    uint64
	Completed uint64
	BusErrors uint64
	Aborted   uint64
}

// CPU issues memory operations through the node's MAGIC controller with a
// bounded number outstanding.
type CPU struct {
	ID     int
	E      *sim.Engine
	Ctrl   *magic.Controller
	Window int

	inflight int
	queue    []Op
	paused   bool
	// onDrained fires once when paused and the last in-flight op ends.
	onDrained func()

	// freeRecs pools in-flight operation records so the issue/retire
	// cycle allocates nothing in steady state; specDone is the shared
	// completion for discarded speculative fetches.
	freeRecs []*opRecord
	specDone func(magic.Result)

	Stats Stats
}

// New returns a CPU with the given outstanding-operation window.
func New(e *sim.Engine, ctrl *magic.Controller, window int) *CPU {
	c := &CPU{ID: ctrl.ID, E: e, Ctrl: ctrl, Window: window}
	c.specDone = func(magic.Result) { c.Stats.Completed++ }
	return c
}

// opRecord carries one in-flight operation through its MAGIC round trip.
// done is bound to the record once when the record is minted, so reissuing
// from the pool costs no allocation.
type opRecord struct {
	cpu  *CPU
	op   Op
	done func(magic.Result)
}

func (c *CPU) newRecord(op Op) *opRecord {
	var r *opRecord
	if n := len(c.freeRecs); n > 0 {
		r = c.freeRecs[n-1]
		c.freeRecs[n-1] = nil
		c.freeRecs = c.freeRecs[:n-1]
	} else {
		r = &opRecord{cpu: c}
		r.done = r.retire
	}
	r.op = op
	return r
}

// retire completes the record's operation: accounting, the submitter's
// callback, drain notification, and the next issue round. The record
// returns to the pool first — the op is copied out — so a completion that
// submits new work can reuse it immediately.
func (r *opRecord) retire(res magic.Result) {
	c, op := r.cpu, r.op
	r.op = Op{}
	c.freeRecs = append(c.freeRecs, r)
	c.inflight--
	c.Stats.Completed++
	switch res.Err {
	case magic.ErrBusError:
		c.Stats.BusErrors++
	case magic.ErrAborted:
		c.Stats.Aborted++
	}
	if op.Done != nil {
		op.Done(res)
	}
	if c.paused && c.inflight == 0 && c.onDrained != nil {
		fn := c.onDrained
		c.onDrained = nil
		fn()
	}
	c.issue()
}

// Submit queues an operation for issue.
func (c *CPU) Submit(op Op) {
	c.queue = append(c.queue, op)
	c.issue()
}

// QueueLen reports operations waiting to issue.
func (c *CPU) QueueLen() int { return len(c.queue) }

// Inflight reports operations issued but not completed.
func (c *CPU) Inflight() int { return c.inflight }

// Pause stops issuing new operations (recovery owns the processor).
// Already-issued operations are completed or aborted by the controller.
func (c *CPU) Pause() { c.paused = true }

// Resume restarts issue after recovery.
func (c *CPU) Resume() {
	c.paused = false
	c.issue()
}

// Paused reports whether the CPU is paused.
func (c *CPU) Paused() bool { return c.paused }

func (c *CPU) issue() {
	for !c.paused && c.inflight < c.Window && len(c.queue) > 0 {
		op := c.queue[0]
		c.queue = c.queue[1:]
		c.inflight++
		c.Stats.Issued++
		done := c.newRecord(op).done
		switch op.Kind {
		case OpRead:
			c.Ctrl.Read(op.Addr, done)
		case OpReadExclusive:
			c.Ctrl.ReadExclusive(op.Addr, done)
		case OpWrite:
			c.Ctrl.Write(op.Addr, op.Token, done)
		}
	}
}

// Snapshot is the durable processor state at a quiescent point: the
// statistics and the pause flag. Everything else (the issue queue, in-
// flight records) must be empty, which Snapshot enforces.
type Snapshot struct {
	Stats  Stats
	Paused bool
}

// Snapshot captures the processor state, panicking if operations are
// still queued or in flight.
func (c *CPU) Snapshot() Snapshot {
	if c.inflight > 0 || len(c.queue) > 0 {
		panic(fmt.Sprintf("proc: snapshot of CPU %d with %d in flight, %d queued", c.ID, c.inflight, len(c.queue)))
	}
	return Snapshot{Stats: c.Stats, Paused: c.paused}
}

// Restore installs a snapshot's state on a freshly built CPU.
func (c *CPU) Restore(s Snapshot) {
	c.Stats = s.Stats
	c.paused = s.Paused
}

// Speculate issues a wrong-path exclusive fetch of addr whose result is
// discarded: the §3.3 hazard where incorrect speculation pulls an arbitrary
// line exclusive into a cache that may subsequently fail.
func (c *CPU) Speculate(addr coherence.Addr) {
	c.Stats.Issued++
	c.Ctrl.ReadExclusive(addr, c.specDone)
}
