// Package timing centralizes the latency and cost constants that calibrate
// the flashfc simulation against the FLASH hardware numbers reported in the
// paper (ISCA '97, §3.1, §4.1, §5.3). All values are simulated nanoseconds
// (sim.Time) or instruction counts.
package timing

import "flashfc/internal/sim"

// Clock periods.
const (
	// MagicCycle is one cycle of the 100 MHz MAGIC protocol processor.
	MagicCycle sim.Time = 10
	// CPUCycle is one cycle of the 200 MHz main processor.
	CPUCycle sim.Time = 5
)

// MAGIC handler occupancies. The paper (§3.1) states the remote-read handler
// takes under 120 ns = 24 protocol-processor instructions; we charge that for
// common handlers and proportionally more for handlers that touch several
// directory entries or send multiple messages.
const (
	// HandlerCommon is the occupancy of a common coherence handler
	// (read request, data reply, writeback).
	HandlerCommon = 12 * MagicCycle // 120 ns
	// HandlerInvalidate covers a handler that must fan out invalidations;
	// charged per destination on top of HandlerCommon.
	HandlerPerInvalidation = 4 * MagicCycle
	// HandlerFirewallCheck is the extra occupancy added to intercell
	// write-miss handlers when the firewall is enabled (§6.2: the measured
	// latency increase is below 7% of the fastest internode write miss).
	HandlerFirewallCheck = 3 * MagicCycle // 30 ns
	// HandlerRecoveryOp is the occupancy of MAGIC-side recovery support
	// operations (node-map update, directory poke).
	HandlerRecoveryOp = 20 * MagicCycle
)

// Interconnect latencies, modeled on CrayLink/SPIDER numbers.
const (
	// RouterHop is the pipeline latency through one SPIDER router.
	RouterHop sim.Time = 40
	// LinkWire is the propagation delay of one link.
	LinkWire sim.Time = 10
	// LinkBytePeriod is the serialization time per byte at ~800 MB/s.
	LinkBytePeriod sim.Time = 1 // 1 ns/byte -> 1 GB/s, close enough
	// HeaderBytes is the packet header size used for serialization cost.
	HeaderBytes = 16
)

// Uncached execution. During recovery the R10000 runs entirely from uncached
// space; the paper reports 320 ns per uncached instruction under
// SimOS/FlashLite and 390 ns under the cycle-accurate RTL model (§5.3),
// slowing the processor to under 2.5 MIPS.
const (
	UncachedInstrSimOS sim.Time = 320
	UncachedInstrRTL   sim.Time = 390
)

// Recovery-code instruction budgets. These charge the recovery algorithm's
// local computation as instruction counts executed at the uncached rate.
const (
	// InstrRecoveryEntry is the cost of dropping into the recovery
	// handler: fielding the forced Cache Error, saving state, switching to
	// uncached mode.
	InstrRecoveryEntry = 220
	// InstrProbeSetup is the per-probe bookkeeping during cwn discovery.
	InstrProbeSetup = 60
	// InstrGossipPerWord is the per-32-bit-word cost of serializing the
	// dissemination-phase state (charged once per round) and of the
	// single merge pass over the received states.
	InstrGossipPerWord = 3
	// InstrGossipRoundFixed is the fixed per-round setup cost.
	InstrGossipRoundFixed = 120
	// InstrGossipPerNeighbor is the per-destination send cost of one
	// round (packet construction and launch).
	InstrGossipPerNeighbor = 120
	// InstrBFTPerEdge is the per-edge cost of the breadth-first-tree
	// computation used for the diameter bound and barriers.
	InstrBFTPerEdge = 14
	// InstrRouteTablePerEntry is the per-destination cost of computing a
	// new routing-table entry during interconnect recovery.
	InstrRouteTablePerEntry = 24
	// InstrFlushPerLine is the per-line cost of the cache flush loop
	// (index op, cache op, conditional writeback).
	InstrFlushPerLine = 3
	// InstrBarrierStep is the cost of one barrier arrival/release step.
	InstrBarrierStep = 40
	// InstrOSPageScan is the per-page cost of the Hive incoherent-line
	// page scrub during OS recovery.
	InstrOSPageScan = 9
	// InstrHardwiredFlushPerLine and InstrHardwiredScanPerLine are the
	// per-line costs when a hardwired node controller exposes its state
	// and the main processor performs the P4 work through uncached
	// accesses (§6.2's minimum-support variant).
	InstrHardwiredFlushPerLine = 6
	InstrHardwiredScanPerLine  = 4
)

// Directory-scan cost: the protocol processor scans its directory during P4.
// Charged per 128-byte line of local memory. 34 MAGIC cycles/line gives the
// linear memory-size scaling of Fig 5.6 (16 MB/node ≈ 45 ms).
const DirScanPerLine = 34 * MagicCycle

// Protocol-level timeouts and thresholds (Table 4.1 triggers).
const (
	// MemOpTimeout is how long a node controller waits for a reply to an
	// outstanding memory operation before triggering recovery.
	MemOpTimeout = 500 * sim.Microsecond
	// NAKRetryDelay is the backoff before a NAKed request is retried.
	NAKRetryDelay = 2 * sim.Microsecond
	// NAKLimit is the NAK-counter overflow threshold.
	NAKLimit = 4096
	// ProbeTimeout bounds a recovery probe or ping round trip.
	ProbeTimeout = 20 * sim.Microsecond
	// DrainTau is the τ bound between consecutive deliveries of stalled
	// packets used by the interconnect-drain agreement (§4.4).
	DrainTau = 50 * sim.Microsecond
)

// Machine geometry constants.
const (
	// LineSize is the coherence-line size in bytes.
	LineSize = 128
	// PageSize is the firewall access-control granularity.
	PageSize = 4096
	// LinesPerPage is PageSize / LineSize.
	LinesPerPage = PageSize / LineSize
)
