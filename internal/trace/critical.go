package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"flashfc/internal/sim"
)

// Critical-path analysis: for each root span, walk the span tree selecting
// at every level the chain of children that explains the window's end —
// repeatedly the child finishing latest, then the child finishing latest
// before that one started, and so on backward to the window's start. Each
// selected child is recursed into over its clamped window; the time no
// selected child covers is the span's Self time. The selected windows
// partition the root exactly, so all Self times sum to precisely the root
// span's duration: a complete latency budget for the recovery.

// CriticalStep is one span on the critical tree, in chronological
// depth-first order.
type CriticalStep struct {
	Name  string
	Node  int   // -1 for machine-wide spans
	Arg   int64 // the span's argument (epoch, round, attempt)
	Depth int   // nesting depth below the root (root = 0)
	// Start/End is this step's window: its span clamped to the part of the
	// enclosing window it was selected for.
	Start, End sim.Time
	// Self is the window time not covered by any selected child window.
	Self sim.Time
}

// CriticalPath is the longest-latency chain under one root span.
type CriticalPath struct {
	RootName   string
	Start, End sim.Time
	Steps      []CriticalStep
}

// Duration returns the root span's duration, which the steps' Self times
// sum to exactly.
func (p CriticalPath) Duration() sim.Time { return p.End - p.Start }

// Dominant returns the step with the largest Self time (on ties, the
// earliest in the walk — outermost first).
func (p CriticalPath) Dominant() CriticalStep {
	best := 0
	for i := range p.Steps {
		if p.Steps[i].Self > p.Steps[best].Self {
			best = i
		}
	}
	return p.Steps[best]
}

// CriticalPaths computes one critical path per root span, in span creation
// order. Still-open spans are clamped to the last observed timestamp.
func (t *Tracer) CriticalPaths() []CriticalPath {
	spans := t.SnapshotSpans()
	if len(spans) == 0 {
		return nil
	}
	children := make(map[SpanID][]SpanID, len(spans))
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s.ID)
	}
	var paths []CriticalPath
	for _, rootID := range children[0] {
		root := spans[rootID-1]
		p := CriticalPath{RootName: root.Name, Start: root.Start, End: root.End}
		walkCritical(spans, children, rootID, root.Start, root.End, 0, &p.Steps)
		paths = append(paths, p)
	}
	return paths
}

// walkCritical appends the critical step for span id over window [ws, we]
// and recurses into the selected children. It selects, scanning backward
// from we, the child ending latest within the still-unexplained prefix;
// the selected windows are disjoint, so the span's Self is exact.
func walkCritical(spans []Span, children map[SpanID][]SpanID, id SpanID, ws, we sim.Time, depth int, out *[]CriticalStep) {
	type pick struct {
		id     SpanID
		cs, ce sim.Time
	}
	var picks []pick
	remaining := we
	for remaining > ws {
		found := false
		var best pick
		for _, cid := range children[id] {
			c := spans[cid-1]
			cs, ce := c.Start, c.End
			if cs < ws {
				cs = ws
			}
			if ce > remaining {
				ce = remaining
			}
			if ce <= cs {
				continue // outside the unexplained prefix, or empty
			}
			// Latest end wins; ties go to the longer clamped window,
			// then the earlier span id — all deterministic.
			if !found || ce > best.ce || (ce == best.ce && (cs < best.cs || (cs == best.cs && cid < best.id))) {
				best, found = pick{cid, cs, ce}, true
			}
		}
		if !found {
			break
		}
		picks = append(picks, best)
		remaining = best.cs
	}
	// picks were collected back-to-front; restore chronological order.
	sort.Slice(picks, func(i, j int) bool { return picks[i].cs < picks[j].cs })

	s := spans[id-1]
	step := CriticalStep{Name: s.Name, Node: s.Node, Arg: s.Arg, Depth: depth, Start: ws, End: we, Self: we - ws}
	for _, pk := range picks {
		step.Self -= pk.ce - pk.cs
	}
	*out = append(*out, step)
	for _, pk := range picks {
		walkCritical(spans, children, pk.id, pk.cs, pk.ce, depth+1, out)
	}
}

// stepLabel renders a step name with its argument when meaningful
// ("gossip-round#2", "node-recovery#1").
func stepLabel(s CriticalStep) string {
	if s.Arg != 0 {
		return fmt.Sprintf("%s#%d", s.Name, s.Arg)
	}
	return s.Name
}

// WriteCriticalReport prints every critical path: one line per step with
// its window and self-time (indented by depth), the telescoped sum, and
// the dominant step.
func (t *Tracer) WriteCriticalReport(w io.Writer) {
	paths := t.CriticalPaths()
	if len(paths) == 0 {
		fmt.Fprintln(w, "no recovery spans recorded")
		return
	}
	for i, p := range paths {
		fmt.Fprintf(w, "critical path %d/%d: %s, %v (from %v to %v)\n",
			i+1, len(paths), p.RootName, p.Duration(), p.Start, p.End)
		var sum sim.Time
		for _, s := range p.Steps {
			who := "machine"
			if s.Node >= 0 {
				who = fmt.Sprintf("node %d", s.Node)
			}
			sum += s.Self
			indent := strings.Repeat("  ", s.Depth)
			fmt.Fprintf(w, "  %-34s %-8s window %12v  self %12v\n",
				indent+stepLabel(s), who, s.End-s.Start, s.Self)
		}
		d := p.Dominant()
		pct := 0.0
		if p.Duration() > 0 {
			pct = 100 * float64(d.Self) / float64(p.Duration())
		}
		fmt.Fprintf(w, "  self-time sum %v = root duration %v\n", sum, p.Duration())
		fmt.Fprintf(w, "  dominant: %s (self %v, %.1f%% of recovery)\n", stepLabel(d), d.Self, pct)
	}
}
