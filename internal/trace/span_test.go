package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"flashfc/internal/sim"
)

func TestNilTracerSpanAPIIsSafe(t *testing.T) {
	var tr *Tracer
	if id := tr.Begin(1, 0, "x", 0, 0); id != 0 {
		t.Fatalf("nil Begin = %d, want 0", id)
	}
	tr.End(2, 1)
	tr.Point(3, 0, "pkt", "inject", 1, 0, 0)
	tr.RecordEvent(4, 0, KindNote, "n")
	if id := tr.EnsureRoot(5, "recovery"); id != 0 {
		t.Fatalf("nil EnsureRoot = %d, want 0", id)
	}
	tr.EndRoot(6)
	if tr.Spans() != nil || tr.Points() != nil || tr.SnapshotSpans() != nil {
		t.Fatal("nil tracer returned non-nil span data")
	}
	if tr.CriticalPaths() != nil {
		t.Fatal("nil tracer returned critical paths")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := New(0)
	root := tr.EnsureRoot(10, "recovery")
	if root == 0 {
		t.Fatal("EnsureRoot returned 0")
	}
	if again := tr.EnsureRoot(20, "recovery"); again != root {
		t.Fatalf("second EnsureRoot = %d, want %d", again, root)
	}
	node := tr.Begin(15, 3, "node-recovery", root, 1)
	phase := tr.Begin(15, 3, "P1-initiation", node, 0)
	tr.End(40, phase)
	tr.End(50, node)
	tr.EndRoot(60)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.Open {
			t.Errorf("span %s still open", s.Name)
		}
	}
	if spans[1].Parent != root || spans[2].Parent != node {
		t.Errorf("parent links wrong: %+v", spans)
	}
	// A new recovery opens a fresh root.
	if r2 := tr.EnsureRoot(100, "recovery"); r2 == root {
		t.Fatal("EnsureRoot reused a closed root")
	}
}

// Ending a span must close its still-open descendants at the same
// timestamp, keeping the tree well-nested across restarts.
func TestEndClosesOpenDescendants(t *testing.T) {
	tr := New(0)
	root := tr.Begin(0, -1, "recovery", 0, 0)
	node := tr.Begin(1, 2, "node-recovery", root, 1)
	phase := tr.Begin(2, 2, "P2-dissemination", node, 0)
	round := tr.Begin(3, 2, "gossip-round", phase, 1)
	tr.End(9, node) // restart abandons phase and round mid-flight

	byID := map[SpanID]Span{}
	for _, s := range tr.Spans() {
		byID[s.ID] = s
	}
	for _, id := range []SpanID{node, phase, round} {
		s := byID[id]
		if s.Open || s.End != 9 {
			t.Errorf("span %s: open=%v end=%v, want closed at 9", s.Name, s.Open, s.End)
		}
	}
	if s := byID[root]; !s.Open {
		t.Error("root should remain open")
	}
	// Ending an already-closed span is a no-op.
	tr.End(20, phase)
	for _, s := range tr.Spans() {
		if s.ID == phase && s.End != 9 {
			t.Errorf("re-End moved span end to %v", s.End)
		}
	}
}

func TestSnapshotClampsOpenSpans(t *testing.T) {
	tr := New(0)
	tr.Begin(5, -1, "recovery", 0, 0)
	tr.Point(42, 0, "pkt", "inject", 1, 0, 0) // advances the observed clock
	snap := tr.SnapshotSpans()
	if len(snap) != 1 || snap[0].Open || snap[0].End != 42 {
		t.Fatalf("snapshot = %+v, want closed at 42", snap)
	}
}

// Self-times along a critical path telescope to exactly the root duration.
func TestCriticalPathSelfTimesTelescope(t *testing.T) {
	tr := New(0)
	root := tr.Begin(0, -1, "recovery", 0, 0)
	a := tr.Begin(10, 0, "node-recovery", root, 1)
	p2 := tr.Begin(20, 0, "P2-dissemination", a, 0)
	r1 := tr.Begin(20, 0, "gossip-round", p2, 1)
	tr.End(30, r1)
	r2 := tr.Begin(30, 0, "gossip-round", p2, 2)
	tr.End(55, r2)
	tr.End(60, p2)
	tr.End(80, a)
	// A second node that finishes earlier must not be on the path.
	b := tr.Begin(12, 1, "node-recovery", root, 1)
	tr.End(70, b)
	tr.End(100, root)

	paths := tr.CriticalPaths()
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	p := paths[0]
	if p.Duration() != 100 {
		t.Fatalf("root duration %v, want 100", p.Duration())
	}
	var sum sim.Time
	names := []string{}
	for _, s := range p.Steps {
		if s.Self < 0 {
			t.Errorf("negative self time on %s: %v", s.Name, s.Self)
		}
		sum += s.Self
		names = append(names, s.Name)
	}
	if sum != p.Duration() {
		t.Fatalf("self-time sum %v != root duration %v (steps %v)", sum, p.Duration(), p.Steps)
	}
	// Chronological depth-first: both gossip rounds appear with their own
	// self-times; node b (concurrent with a, finishing earlier) does not.
	want := []string{"recovery", "node-recovery", "P2-dissemination", "gossip-round", "gossip-round"}
	if len(names) != len(want) {
		t.Fatalf("steps %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("steps %v, want %v", names, want)
		}
	}
	if p.Steps[3].Arg != 1 || p.Steps[4].Arg != 2 {
		t.Errorf("gossip rounds out of order: %+v", p.Steps[3:])
	}
	// node a (ends at 80, clamped window 10..80) beats node b (12..70).
	if p.Steps[1].Arg != 1 || p.Steps[1].Node != 0 {
		t.Errorf("critical node step = %+v, want node 0", p.Steps[1])
	}
	if d := p.Dominant(); d.Name == "" {
		t.Error("Dominant returned empty step")
	}
}

func TestCriticalReportMentionsDominant(t *testing.T) {
	tr := New(0)
	root := tr.Begin(0, -1, "recovery", 0, 0)
	n := tr.Begin(0, 0, "node-recovery", root, 1)
	tr.End(90, n)
	tr.End(100, root)
	var buf bytes.Buffer
	tr.WriteCriticalReport(&buf)
	out := buf.String()
	for _, want := range []string{"critical path", "dominant:", "self-time sum"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestChromeJSONValidAndDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := New(0)
		root := tr.EnsureRoot(0, "recovery")
		n := tr.Begin(5, 1, "node-recovery", root, 1)
		tr.Point(7, 1, "pkt", "inject", 3, 2, 1)
		tr.Point(8, 1, "magic", "nak-sent", 0, 64, 2)
		tr.RecordEvent(9, 1, KindPhase, "P1-initiation")
		tr.End(50, n)
		tr.EndRoot(60)
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical tracers produced different Chrome JSON")
	}
	var evs []map[string]any
	if err := json.Unmarshal(a.Bytes(), &evs); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("empty trace array")
	}
	for i, ev := range evs {
		for _, key := range []string{"ph", "ts", "pid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
	}
}

// Same-timestamp events must keep insertion order in Events and ByKind,
// and the cached sort must stay correct across later Records.
func TestEventOrderingStableAtEqualTimestamps(t *testing.T) {
	tr := New(0)
	tr.Record(5, 0, KindNote, "first")
	tr.Record(5, 1, KindNote, "second")
	tr.Record(5, 2, KindNote, "third")
	notes := tr.ByKind(KindNote)
	want := []string{"first", "second", "third"}
	for i, w := range want {
		if notes[i].Detail != w {
			t.Fatalf("ByKind order %v, want %v", notes, want)
		}
	}
	// Invalidate the cache with an earlier event; order must re-sort but
	// stay stable within equal timestamps.
	tr.Record(1, 3, KindNote, "zeroth")
	notes = tr.ByKind(KindNote)
	want = []string{"zeroth", "first", "second", "third"}
	if len(notes) != len(want) {
		t.Fatalf("got %d notes, want %d", len(notes), len(want))
	}
	for i, w := range want {
		if notes[i].Detail != w {
			t.Fatalf("after invalidation: ByKind order %v, want %v", notes, want)
		}
	}
	// Repeated calls reuse the cache and must return equal, independent
	// copies.
	again := tr.Events()
	again[0].Detail = "mutated"
	if tr.Events()[0].Detail == "mutated" {
		t.Fatal("Events returned a shared backing array")
	}
}
