package trace

import "flashfc/internal/sim"

// State is a frozen deep copy of a tracer's full contents — the flat event
// ring, the span/point stream, and the open-span bookkeeping — taken at a
// machine snapshot so a forked run's tracer can resume recording exactly
// where the warm-up left off. Span and Point values contain no pointers,
// so copying the slices copies everything.
type State struct {
	limit   int
	events  []Event
	head    int
	dropped int
	spans   []Span
	points  []Point
	open    map[SpanID]struct{}
	root    SpanID
	last    sim.Time
}

// SnapshotState returns a frozen copy of the tracer's contents, or nil for
// a nil tracer (tracing disabled).
func (t *Tracer) SnapshotState() *State {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &State{
		limit:   t.Limit,
		events:  append([]Event(nil), t.events...),
		head:    t.head,
		dropped: t.dropped,
		spans:   append([]Span(nil), t.spans...),
		points:  append([]Point(nil), t.points...),
		root:    t.rootSpan,
		last:    t.last,
	}
	if t.openSpans != nil {
		s.open = make(map[SpanID]struct{}, len(t.openSpans))
		for id := range t.openSpans {
			s.open[id] = struct{}{}
		}
	}
	return s
}

// Restore overwrites the tracer's contents with a frozen state; a nil
// state resets the tracer to empty (forking from a snapshot taken without
// tracing). No-op on a nil tracer.
func (t *Tracer) Restore(s *State) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sorted = nil
	if s == nil {
		t.events = nil
		t.head = 0
		t.dropped = 0
		t.spans = nil
		t.points = nil
		t.openSpans = nil
		t.rootSpan = 0
		t.last = 0
		return
	}
	t.Limit = s.limit
	t.events = append([]Event(nil), s.events...)
	t.head = s.head
	t.dropped = s.dropped
	t.spans = append([]Span(nil), s.spans...)
	t.points = append([]Point(nil), s.points...)
	t.openSpans = nil
	if s.open != nil {
		t.openSpans = make(map[SpanID]struct{}, len(s.open))
		for id := range s.open {
			t.openSpans[id] = struct{}{}
		}
	}
	t.rootSpan = s.root
	t.last = s.last
}
