package trace

import (
	"strings"
	"testing"

	"flashfc/internal/sim"
)

func TestRecordAndOrder(t *testing.T) {
	tr := New(0)
	tr.Record(30, 1, KindPhase, "P2")
	tr.Record(10, -1, KindFault, "node failure")
	tr.Record(20, 0, KindTrigger, "timeout")
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Kind != KindFault || evs[1].Kind != KindTrigger || evs[2].Kind != KindPhase {
		t.Fatalf("ordering wrong: %v", evs)
	}
	if tr.Len() != 3 || tr.Dropped() != 0 {
		t.Fatal("counters wrong")
	}
}

func TestLimitDrops(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Record(sim.Time(i), 0, KindNote, "e%d", i)
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	var b strings.Builder
	tr.Dump(&b)
	if !strings.Contains(b.String(), "3 events dropped") {
		t.Fatalf("dump: %q", b.String())
	}
}

func TestByKindAndNilSafety(t *testing.T) {
	tr := New(0)
	tr.Record(1, 0, KindPhase, "a")
	tr.Record(2, 0, KindOS, "b")
	tr.Record(3, 1, KindPhase, "c")
	if got := tr.ByKind(KindPhase); len(got) != 2 {
		t.Fatalf("ByKind = %v", got)
	}
	var nilTr *Tracer
	nilTr.Record(1, 0, KindNote, "ignored") // must not panic
}

func TestEventString(t *testing.T) {
	e := Event{T: sim.Millisecond, Node: 3, Kind: KindPhase, Detail: "P4"}
	if !strings.Contains(e.String(), "node 3") {
		t.Fatalf("event string: %q", e.String())
	}
	e.Node = -1
	if !strings.Contains(e.String(), "machine") {
		t.Fatalf("machine event string: %q", e.String())
	}
}
