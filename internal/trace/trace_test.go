package trace

import (
	"strings"
	"sync"
	"testing"

	"flashfc/internal/sim"
)

func TestRecordAndOrder(t *testing.T) {
	tr := New(0)
	tr.Record(30, 1, KindPhase, "P2")
	tr.Record(10, -1, KindFault, "node failure")
	tr.Record(20, 0, KindTrigger, "timeout")
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Kind != KindFault || evs[1].Kind != KindTrigger || evs[2].Kind != KindPhase {
		t.Fatalf("ordering wrong: %v", evs)
	}
	if tr.Len() != 3 || tr.Dropped() != 0 {
		t.Fatal("counters wrong")
	}
}

func TestLimitDrops(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Record(sim.Time(i), 0, KindNote, "e%d", i)
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	// The ring keeps the most recent events: a truncated recovery timeline
	// must retain its tail, not its head (regression: the limit used to
	// discard every event after the first Limit).
	evs := tr.Events()
	if evs[0].Detail != "e3" || evs[1].Detail != "e4" {
		t.Fatalf("ring kept %q, %q; want the newest events e3, e4", evs[0].Detail, evs[1].Detail)
	}
	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "3 events dropped") {
		t.Fatalf("dump: %q", out)
	}
	if !strings.Contains(out, "e3") || !strings.Contains(out, "e4") || strings.Contains(out, "e0") {
		t.Fatalf("dump should show the tail of the timeline: %q", out)
	}
	// The truncation note states where the surviving timeline resumes.
	if !strings.Contains(out, "resumes at 3ns") {
		t.Fatalf("dump missing truncation point: %q", out)
	}
}

func TestRingWrapsRepeatedly(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Record(sim.Time(i), i, KindNote, "e%d", i)
	}
	if tr.Len() != 3 || tr.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	for i, want := range []string{"e7", "e8", "e9"} {
		if evs[i].Detail != want {
			t.Fatalf("evs[%d] = %q, want %q", i, evs[i].Detail, want)
		}
	}
}

// Regression for the campaign data race: a tracer shared across goroutines
// must be safe under the race detector.
func TestConcurrentRecord(t *testing.T) {
	tr := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(sim.Time(i), g, KindNote, "g%d e%d", g, i)
				_ = tr.Len()
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 64 || tr.Dropped() != 8*100-64 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	if got := len(tr.Events()); got != 64 {
		t.Fatalf("Events len = %d", got)
	}
}

func TestByKindAndNilSafety(t *testing.T) {
	tr := New(0)
	tr.Record(1, 0, KindPhase, "a")
	tr.Record(2, 0, KindOS, "b")
	tr.Record(3, 1, KindPhase, "c")
	if got := tr.ByKind(KindPhase); len(got) != 2 {
		t.Fatalf("ByKind = %v", got)
	}
	var nilTr *Tracer
	nilTr.Record(1, 0, KindNote, "ignored") // must not panic
}

func TestEventString(t *testing.T) {
	e := Event{T: sim.Millisecond, Node: 3, Kind: KindPhase, Detail: "P4"}
	if !strings.Contains(e.String(), "node 3") {
		t.Fatalf("event string: %q", e.String())
	}
	e.Node = -1
	if !strings.Contains(e.String(), "machine") {
		t.Fatalf("machine event string: %q", e.String())
	}
}
