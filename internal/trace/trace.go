// Package trace collects a timestamped event timeline from a simulated
// machine: fault injections, per-node recovery phase transitions, recovery
// completions and OS-level events. The timeline is what the cmd/flashsim
// -trace flag prints, and what tests use to assert event ordering.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"flashfc/internal/sim"
)

// Kind classifies timeline events.
type Kind string

const (
	KindFault    Kind = "fault"
	KindTrigger  Kind = "trigger"
	KindPhase    Kind = "phase"
	KindComplete Kind = "complete"
	KindOS       Kind = "os"
	KindNote     Kind = "note"
)

// Event is one timeline entry.
type Event struct {
	T      sim.Time
	Node   int // -1 for machine-wide events
	Kind   Kind
	Detail string
}

func (e Event) String() string {
	who := "machine"
	if e.Node >= 0 {
		who = fmt.Sprintf("node %d", e.Node)
	}
	return fmt.Sprintf("%12v  %-8s %-9s %s", e.T, who, e.Kind, e.Detail)
}

// Tracer accumulates events up to a limit (0 = unlimited). With a nonzero
// limit it is a ring buffer that keeps the most recent Limit events: the
// interesting end of a recovery timeline is its tail, so overflow drops the
// oldest events from the head rather than silently discarding the tail.
//
// A Tracer is internally synchronized: Record and the read methods may be
// called from concurrent goroutines (e.g. a tracer observed by test
// harnesses while a campaign worker drives the machine). Events from
// different runs still interleave into one timeline, so the batch drivers
// keep rejecting a shared tracer for multi-run campaigns.
type Tracer struct {
	// Limit is the retention bound set at construction. Mutating it after
	// events have been recorded is unsupported.
	Limit int

	mu      sync.Mutex
	events  []Event
	head    int // index of the oldest retained event once the ring is full
	dropped int
}

// New returns a tracer retaining at most limit events (0 = unlimited).
func New(limit int) *Tracer { return &Tracer{Limit: limit} }

// Record appends an event. Once a limited tracer is full, each new event
// overwrites the oldest retained one and Dropped grows.
func (t *Tracer) Record(ts sim.Time, node int, kind Kind, format string, args ...any) {
	if t == nil {
		return
	}
	e := Event{T: ts, Node: node, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.Limit > 0 && len(t.events) >= t.Limit {
		t.events[t.head] = e
		t.head = (t.head + 1) % t.Limit
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// retained returns the kept events in insertion order (oldest first).
// Callers must hold t.mu.
func (t *Tracer) retained() []Event {
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// Events returns the recorded timeline in chronological order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	out := t.retained()
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// ByKind returns the events of one kind, chronologically.
func (t *Tracer) ByKind(k Kind) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Len reports recorded events; Dropped reports events lost from the head of
// the timeline to the retention limit.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

func (t *Tracer) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Dump writes the timeline to w. A truncated timeline notes the drop count
// and the truncation point up front, where the missing events would be.
func (t *Tracer) Dump(w io.Writer) {
	t.mu.Lock()
	events := t.retained()
	dropped, limit := t.dropped, t.Limit
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	if dropped > 0 {
		from := "start"
		if len(events) > 0 {
			from = fmt.Sprintf("%v", events[0].T)
		}
		fmt.Fprintf(w, "(%d events dropped from the head by the %d-event limit; timeline resumes at %s)\n",
			dropped, limit, from)
	}
	for _, e := range events {
		fmt.Fprintln(w, e)
	}
}
