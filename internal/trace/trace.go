// Package trace collects a timestamped event timeline from a simulated
// machine: fault injections, per-node recovery phase transitions, recovery
// completions and OS-level events. The timeline is what the cmd/flashsim
// -trace flag prints, and what tests use to assert event ordering.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"flashfc/internal/sim"
)

// Kind classifies timeline events.
type Kind string

const (
	KindFault    Kind = "fault"
	KindTrigger  Kind = "trigger"
	KindPhase    Kind = "phase"
	KindComplete Kind = "complete"
	KindOS       Kind = "os"
	KindNote     Kind = "note"
)

// Event is one timeline entry.
type Event struct {
	T      sim.Time
	Node   int // -1 for machine-wide events
	Kind   Kind
	Detail string
}

func (e Event) String() string {
	who := "machine"
	if e.Node >= 0 {
		who = fmt.Sprintf("node %d", e.Node)
	}
	return fmt.Sprintf("%12v  %-8s %-9s %s", e.T, who, e.Kind, e.Detail)
}

// Tracer accumulates events up to a limit (0 = unlimited). With a nonzero
// limit it is a ring buffer that keeps the most recent Limit events: the
// interesting end of a recovery timeline is its tail, so overflow drops the
// oldest events from the head rather than silently discarding the tail.
//
// A Tracer is internally synchronized: Record and the read methods may be
// called from concurrent goroutines (e.g. a tracer observed by test
// harnesses while a campaign worker drives the machine). Events from
// different runs still interleave into one timeline, so the batch drivers
// keep rejecting a shared tracer for multi-run campaigns.
type Tracer struct {
	// Limit is the retention bound set at construction. Mutating it after
	// events have been recorded is unsupported.
	Limit int

	// Deterministic, set at construction, makes every read-side ordering a
	// pure function of the recorded values: events and points sort by all
	// of their fields instead of keeping insertion order among equal
	// timestamps. Partitioned machines record from concurrent region
	// workers, so their insertion order is scheduling noise; sorting by
	// the full tuple makes equal entries interchangeable and the exported
	// bytes bit-identical at any worker count. Classic single-threaded
	// machines leave this off and keep the historical insertion-order
	// tiebreak (golden traces depend on it). A deterministic tracer should
	// use Limit 0: ring-buffer eviction is insertion-ordered and would
	// reintroduce the noise.
	Deterministic bool

	mu      sync.Mutex
	events  []Event
	head    int // index of the oldest retained event once the ring is full
	dropped int
	sorted  []Event // chronological cache of retained(); nil when stale

	// Span/point stream (span.go). Not subject to Limit.
	spans     []Span
	points    []Point
	openSpans map[SpanID]struct{}
	rootSpan  SpanID   // currently open root span, 0 if none
	last      sim.Time // largest timestamp observed on any record path
}

// New returns a tracer retaining at most limit events (0 = unlimited).
func New(limit int) *Tracer { return &Tracer{Limit: limit} }

// Record appends an event. Once a limited tracer is full, each new event
// overwrites the oldest retained one and Dropped grows.
func (t *Tracer) Record(ts sim.Time, node int, kind Kind, format string, args ...any) {
	if t == nil {
		return
	}
	t.RecordEvent(ts, node, kind, fmt.Sprintf(format, args...))
}

// RecordEvent is Record for a pre-rendered detail string. With static
// details it is allocation-free on a nil tracer (no varargs boxing), making
// it the flat-timeline counterpart of the span hot-path methods.
func (t *Tracer) RecordEvent(ts sim.Time, node int, kind Kind, detail string) {
	if t == nil {
		return
	}
	e := Event{T: ts, Node: node, Kind: kind, Detail: detail}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sorted = nil
	t.observe(ts)
	if t.Limit > 0 && len(t.events) >= t.Limit {
		t.events[t.head] = e
		t.head = (t.head + 1) % t.Limit
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// retained returns the kept events in insertion order (oldest first).
// Callers must hold t.mu.
func (t *Tracer) retained() []Event {
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// chronological returns the retained events sorted by timestamp (stably, so
// same-timestamp events keep insertion order). The sort result is cached and
// only rebuilt after a Record invalidates it, so repeated Events/ByKind/Dump
// calls sort at most once. Callers must hold t.mu and must not mutate the
// returned slice.
func (t *Tracer) chronological() []Event {
	if t.sorted == nil {
		t.sorted = t.retained()
		if t.Deterministic {
			sort.Slice(t.sorted, func(i, j int) bool {
				a, b := t.sorted[i], t.sorted[j]
				if a.T != b.T {
					return a.T < b.T
				}
				if a.Node != b.Node {
					return a.Node < b.Node
				}
				if a.Kind != b.Kind {
					return a.Kind < b.Kind
				}
				return a.Detail < b.Detail
			})
		} else {
			sort.SliceStable(t.sorted, func(i, j int) bool { return t.sorted[i].T < t.sorted[j].T })
		}
	}
	return t.sorted
}

// Events returns the recorded timeline in chronological order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.chronological()...)
}

// ByKind returns the events of one kind, chronologically. It filters the
// cached sort rather than re-sorting the full timeline per call.
func (t *Tracer) ByKind(k Kind) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	for _, e := range t.chronological() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Len reports recorded events; Dropped reports events lost from the head of
// the timeline to the retention limit.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

func (t *Tracer) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Dump writes the timeline to w. A truncated timeline notes the drop count
// and the truncation point up front, where the missing events would be.
func (t *Tracer) Dump(w io.Writer) {
	t.mu.Lock()
	events := append([]Event(nil), t.chronological()...)
	dropped, limit := t.dropped, t.Limit
	t.mu.Unlock()
	if dropped > 0 {
		from := "start"
		if len(events) > 0 {
			from = fmt.Sprintf("%v", events[0].T)
		}
		fmt.Fprintf(w, "(%d events dropped from the head by the %d-event limit; timeline resumes at %s)\n",
			dropped, limit, from)
	}
	for _, e := range events {
		fmt.Fprintln(w, e)
	}
}
