// Package trace collects a timestamped event timeline from a simulated
// machine: fault injections, per-node recovery phase transitions, recovery
// completions and OS-level events. The timeline is what the cmd/flashsim
// -trace flag prints, and what tests use to assert event ordering.
package trace

import (
	"fmt"
	"io"
	"sort"

	"flashfc/internal/sim"
)

// Kind classifies timeline events.
type Kind string

const (
	KindFault    Kind = "fault"
	KindTrigger  Kind = "trigger"
	KindPhase    Kind = "phase"
	KindComplete Kind = "complete"
	KindOS       Kind = "os"
	KindNote     Kind = "note"
)

// Event is one timeline entry.
type Event struct {
	T      sim.Time
	Node   int // -1 for machine-wide events
	Kind   Kind
	Detail string
}

func (e Event) String() string {
	who := "machine"
	if e.Node >= 0 {
		who = fmt.Sprintf("node %d", e.Node)
	}
	return fmt.Sprintf("%12v  %-8s %-9s %s", e.T, who, e.Kind, e.Detail)
}

// Tracer accumulates events up to a limit (0 = unlimited).
type Tracer struct {
	Limit   int
	events  []Event
	dropped int
}

// New returns a tracer retaining at most limit events (0 = unlimited).
func New(limit int) *Tracer { return &Tracer{Limit: limit} }

// Record appends an event.
func (t *Tracer) Record(ts sim.Time, node int, kind Kind, format string, args ...any) {
	if t == nil {
		return
	}
	if t.Limit > 0 && len(t.events) >= t.Limit {
		t.dropped++
		return
	}
	t.events = append(t.events, Event{T: ts, Node: node, Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Events returns the recorded timeline in chronological order.
func (t *Tracer) Events() []Event {
	out := append([]Event(nil), t.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// ByKind returns the events of one kind, chronologically.
func (t *Tracer) ByKind(k Kind) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Len reports recorded events; Dropped reports events lost to the limit.
func (t *Tracer) Len() int     { return len(t.events) }
func (t *Tracer) Dropped() int { return t.dropped }

// Dump writes the timeline to w.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e)
	}
	if t.dropped > 0 {
		fmt.Fprintf(w, "(%d events dropped by the %d-event limit)\n", t.dropped, t.Limit)
	}
}
