package trace

import (
	"sort"

	"flashfc/internal/sim"
)

// Span-based causal tracing. The flat Event timeline (trace.go) remains the
// human rendering; spans and points are the structured stream underneath it:
//
//   - A Span is a named interval with a parent, forming the recovery tree:
//     machine-wide "recovery" root → per-node "node-recovery" (one per
//     epoch) → P1–P4 phase spans → gossip rounds, drain attempts, τ
//     agreement sub-phases, the cache flush and the directory sweep.
//   - A Point is an instant with an optional causal flow id, used for
//     packet lifecycles (inject → hop → deliver/drop, linked by the
//     packet's flow id) and MAGIC denials/triggers.
//
// Every method is nil-safe and allocation-free on a nil *Tracer: arguments
// are scalars and static strings, so instrumented hot paths cost one
// predicted branch when tracing is disabled — the same contract as the
// metrics instruments.
//
// Spans and points are not subject to the flat timeline's retention Limit:
// the span tree is the structured record, and dropping its head would
// orphan the tail.

// SpanID identifies one span within a Tracer. 0 means "no span": it is the
// parent of roots, the return value of every method on a nil tracer, and a
// valid no-op argument to End.
type SpanID uint64

// Span is one named interval in the recovery tree.
type Span struct {
	ID     SpanID
	Parent SpanID // 0 for roots
	Name   string
	Node   int // -1 for machine-wide spans
	// Arg is a name-specific argument: the epoch of a node-recovery span,
	// the round of a gossip-round span, the attempt of a drain span.
	Arg   int64
	Start sim.Time
	End   sim.Time // meaningful once Open is false
	Open  bool
}

// Point is one instantaneous event with an optional causal link.
type Point struct {
	T    sim.Time
	Node int
	Cat  string // "pkt" (packet lifecycle), "magic" (controller events)
	Name string
	// Flow links the points of one causal chain (a packet's lifetime from
	// injection to delivery or destruction). 0 means unlinked.
	Flow uint64
	// A and B are name-specific scalar arguments (destination and lane for
	// packet points, address and requester for MAGIC points).
	A, B int64
}

// observe tracks the largest timestamp seen, used to clamp still-open spans
// at export time. Callers must hold t.mu.
func (t *Tracer) observe(ts sim.Time) {
	if ts > t.last {
		t.last = ts
	}
}

// Begin opens a span and returns its id. parent 0 makes it a root.
func (t *Tracer) Begin(ts sim.Time, node int, name string, parent SpanID, arg int64) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.begin(ts, node, name, parent, arg)
}

// begin is Begin with t.mu held.
func (t *Tracer) begin(ts sim.Time, node int, name string, parent SpanID, arg int64) SpanID {
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Name: name, Node: node, Arg: arg,
		Start: ts, Open: true,
	})
	if t.openSpans == nil {
		t.openSpans = map[SpanID]struct{}{}
	}
	t.openSpans[id] = struct{}{}
	t.observe(ts)
	return id
}

// End closes a span. Any still-open descendants are closed first at the
// same timestamp — a child cannot outlive its parent, which keeps the tree
// well-nested even when a restart abandons work mid-flight. Ending an
// already-closed span (or SpanID 0) is a no-op.
func (t *Tracer) End(ts sim.Time, id SpanID) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.end(ts, id)
}

// end is End with t.mu held.
func (t *Tracer) end(ts sim.Time, id SpanID) {
	if id == 0 || int(id) > len(t.spans) {
		return
	}
	s := &t.spans[id-1]
	if !s.Open {
		return
	}
	for oid := range t.openSpans {
		if oid == id {
			continue
		}
		for p := t.spans[oid-1].Parent; p != 0; p = t.spans[p-1].Parent {
			if p == id {
				o := &t.spans[oid-1]
				o.End, o.Open = ts, false
				delete(t.openSpans, oid)
				break
			}
		}
	}
	s.End, s.Open = ts, false
	delete(t.openSpans, id)
	if t.rootSpan == id {
		t.rootSpan = 0
	}
	t.observe(ts)
}

// EnsureRoot returns the currently open root span, opening one (node -1,
// parent 0) if none is open. Every recovery participant calls this on
// entry; the first one in creates the machine-wide root all node spans
// attach to.
func (t *Tracer) EnsureRoot(ts sim.Time, name string) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rootSpan == 0 {
		t.rootSpan = t.begin(ts, -1, name, 0, 0)
	}
	return t.rootSpan
}

// EndRoot closes the open root span (and its open descendants), if any. A
// later EnsureRoot starts a fresh root — one root per machine-wide recovery.
func (t *Tracer) EndRoot(ts sim.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rootSpan != 0 {
		t.end(ts, t.rootSpan)
	}
}

// Point records an instantaneous event.
func (t *Tracer) Point(ts sim.Time, node int, cat, name string, flow uint64, a, b int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.points = append(t.points, Point{T: ts, Node: node, Cat: cat, Name: name, Flow: flow, A: a, B: b})
	t.observe(ts)
}

// Spans returns a copy of the span list in creation order. Open spans are
// returned as recorded (Open true, zero End); use SnapshotSpans for a view
// with open spans clamped to the last observed timestamp.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Points returns a copy of the point list — in recording order, or sorted
// by the full field tuple on a Deterministic tracer (concurrent region
// workers make recording order scheduling noise; the full-tuple sort makes
// equal points interchangeable, so the result is host-independent).
func (t *Tracer) Points() []Point {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Point(nil), t.points...)
	if t.Deterministic {
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.T != b.T {
				return a.T < b.T
			}
			if a.Node != b.Node {
				return a.Node < b.Node
			}
			if a.Cat != b.Cat {
				return a.Cat < b.Cat
			}
			if a.Name != b.Name {
				return a.Name < b.Name
			}
			if a.Flow != b.Flow {
				return a.Flow < b.Flow
			}
			if a.A != b.A {
				return a.A < b.A
			}
			return a.B < b.B
		})
	}
	return out
}

// SnapshotSpans returns the span list with every still-open span closed at
// the largest timestamp the tracer has observed (never before the span's
// own start) — the deterministic view the exporters and the critical-path
// analysis consume.
func (t *Tracer) SnapshotSpans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Span(nil), t.spans...)
	for i := range out {
		if out[i].Open {
			out[i].End = t.last
			if out[i].End < out[i].Start {
				out[i].End = out[i].Start
			}
			out[i].Open = false
		}
	}
	return out
}
