package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"flashfc/internal/sim"
)

// Chrome trace-event export: the span/point/event stream rendered as the
// JSON array format understood by Perfetto (ui.perfetto.dev) and
// chrome://tracing. Each node becomes a process (pid = node+1; pid 0 is the
// machine), with one thread per stream: spans on tid 0, packet points on
// tid 1, MAGIC points on tid 2 and the flat timeline on tid 3.
//
// The output is deterministic: spans are emitted in creation order, points
// and flat events in recorded order, args objects via encoding/json (which
// sorts map keys), timestamps as exact microsecond fractions of the
// simulated nanosecond clock. Two runs with identical inputs produce
// byte-identical files.

const (
	tidSpans    = 0
	tidPackets  = 1
	tidMagic    = 2
	tidTimeline = 3
)

// chromeEvent is one entry of the trace-event array. Field order here fixes
// the key order in the output.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// pidFor maps a simulated node id to a trace process id.
func pidFor(node int) int {
	if node < 0 {
		return 0 // the machine
	}
	return node + 1
}

// WriteChromeJSON writes the full trace as a Chrome trace-event JSON array.
// Still-open spans are clamped to the last observed timestamp. A nil tracer
// writes an empty array.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	spans := t.SnapshotSpans()
	points := t.Points()
	var events []Event
	if t != nil {
		events = t.Events()
	}

	// Metadata first: name every (process, thread) pair in use so Perfetto
	// shows "node 3 / packets" instead of bare ids.
	type thread struct{ pid, tid int }
	threads := map[thread]struct{}{}
	for _, s := range spans {
		threads[thread{pidFor(s.Node), tidSpans}] = struct{}{}
	}
	for _, p := range points {
		threads[thread{pidFor(p.Node), pointTid(p.Cat)}] = struct{}{}
	}
	for _, e := range events {
		threads[thread{pidFor(e.Node), tidTimeline}] = struct{}{}
	}
	ordered := make([]thread, 0, len(threads))
	for th := range threads {
		ordered = append(ordered, th)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].pid != ordered[j].pid {
			return ordered[i].pid < ordered[j].pid
		}
		return ordered[i].tid < ordered[j].tid
	})

	out := make([]chromeEvent, 0, 2*len(ordered)+len(spans)+len(points)+len(events))
	seenPid := map[int]bool{}
	for _, th := range ordered {
		if !seenPid[th.pid] {
			seenPid[th.pid] = true
			name := "machine"
			if th.pid > 0 {
				name = fmt.Sprintf("node %d", th.pid-1)
			}
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", Pid: th.pid, Tid: 0,
				Args: map[string]any{"name": name},
			})
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: th.pid, Tid: th.tid,
			Args: map[string]any{"name": threadName(th.tid)},
		})
	}

	for _, s := range spans {
		dur := us(s.End - s.Start)
		out = append(out, chromeEvent{
			Name: s.Name, Cat: "span", Ph: "X", Ts: us(s.Start), Dur: &dur,
			Pid: pidFor(s.Node), Tid: tidSpans,
			Args: map[string]any{"span": uint64(s.ID), "parent": uint64(s.Parent), "arg": s.Arg},
		})
	}
	for _, p := range points {
		out = append(out, chromeEvent{
			Name: p.Name, Cat: p.Cat, Ph: "i", Ts: us(p.T),
			Pid: pidFor(p.Node), Tid: pointTid(p.Cat), S: "t",
			Args: map[string]any{"flow": p.Flow, "a": p.A, "b": p.B},
		})
	}
	for _, e := range events {
		out = append(out, chromeEvent{
			Name: string(e.Kind), Cat: "event", Ph: "i", Ts: us(e.T),
			Pid: pidFor(e.Node), Tid: tidTimeline, S: "t",
			Args: map[string]any{"detail": e.Detail},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// us converts a simulated time (nanoseconds) to trace-event microseconds.
func us(t sim.Time) float64 { return float64(t) / 1000.0 }

func pointTid(cat string) int {
	switch cat {
	case "pkt":
		return tidPackets
	case "magic":
		return tidMagic
	default:
		return tidTimeline
	}
}

func threadName(tid int) string {
	switch tid {
	case tidSpans:
		return "recovery"
	case tidPackets:
		return "packets"
	case tidMagic:
		return "magic"
	default:
		return "timeline"
	}
}
