package topology

// Regions is a fixed decomposition of a topology into contiguous node
// regions, the unit of intra-machine parallelism for the partitioned
// simulation engine (internal/sim.Partitioned). The decomposition is a pure
// function of the topology (never of the worker count), which is what makes
// partitioned runs bit-identical at any `-partitions` setting: the same
// regions exist, the same events run on the same region schedulers, and the
// same inter-region messages merge in the same order whether one thread or
// eight multiplex the regions.
type Regions struct {
	topo  *Topology
	of    []int // node -> region
	count int
	// boundary[link] reports whether the link connects two regions.
	boundary []bool
	nBound   int
}

// PartitionMesh splits a mesh into `target` contiguous horizontal stripes
// (bands of whole rows), balanced to within one row. Stripes keep every
// node's row-major neighbors in the same or an adjacent region, so the only
// inter-region links are the vertical links between adjacent bands —
// exactly the mesh bisection the conservative lookahead is charged against.
//
// target is clamped to [1, h]. Non-mesh topologies always yield a single
// region (no intra-machine parallelism; the hypercube's bisection is too
// rich for stripe partitioning to help).
func PartitionMesh(t *Topology, target int) *Regions {
	r := &Regions{
		topo:     t,
		of:       make([]int, t.Routers()),
		count:    1,
		boundary: make([]bool, len(t.Links())),
	}
	if t.Kind() != KindMesh {
		return r
	}
	w, h := t.MeshSize()
	if target < 1 {
		target = 1
	}
	if target > h {
		target = h
	}
	r.count = target
	// Row y belongs to stripe y*target/h: contiguous, balanced to one row.
	for y := 0; y < h; y++ {
		reg := y * target / h
		for x := 0; x < w; x++ {
			r.of[y*w+x] = reg
		}
	}
	for id, l := range t.Links() {
		if r.of[l.A] != r.of[l.B] {
			r.boundary[id] = true
			r.nBound++
		}
	}
	return r
}

// maxAutoRegions bounds the automatic decomposition: more stripes mean more
// available parallelism but also more barrier-merge work per window, and
// past ~16 regions the merge overhead outgrows what host cores can use.
const maxAutoRegions = 16

// AutoRegions returns the standard decomposition for t: up to
// maxAutoRegions row stripes for meshes, a single region otherwise. This is
// the decomposition the machine layer uses for every partitioned run, so it
// must stay a pure function of the topology.
func AutoRegions(t *Topology) *Regions {
	if t.Kind() != KindMesh {
		return PartitionMesh(t, 1)
	}
	_, h := t.MeshSize()
	n := h
	if n > maxAutoRegions {
		n = maxAutoRegions
	}
	return PartitionMesh(t, n)
}

// Count returns the number of regions.
func (r *Regions) Count() int { return r.count }

// Of returns node n's region.
func (r *Regions) Of(n int) int { return r.of[n] }

// CrossRegion reports whether link id connects two regions.
func (r *Regions) CrossRegion(id int) bool { return r.boundary[id] }

// BoundaryLinks returns the number of inter-region links.
func (r *Regions) BoundaryLinks() int { return r.nBound }

// Topology returns the partitioned topology.
func (r *Regions) Topology() *Topology { return r.topo }

// NewMesh32x32 returns the 1024-node mesh preset used by the partitioned
// scaling scenario (three orders of magnitude beyond the paper's largest
// measured machine).
func NewMesh32x32() *Topology { return NewMesh(32, 32) }

// NewMesh64x64 returns the 4096-node mesh preset, the TSAR-class size the
// smoke-level scaling test builds and routes.
func NewMesh64x64() *Topology { return NewMesh(64, 64) }
