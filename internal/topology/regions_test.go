package topology

import "testing"

func TestPartitionMeshStripes(t *testing.T) {
	topo := NewMesh(8, 8)
	r := PartitionMesh(topo, 4)
	if r.Count() != 4 {
		t.Fatalf("count = %d, want 4", r.Count())
	}
	// Whole rows, contiguous, balanced to one row: rows 2y and 2y+1 in
	// stripe y.
	for n := 0; n < topo.Routers(); n++ {
		_, y := topo.MeshCoord(n)
		if want := y / 2; r.Of(n) != want {
			t.Fatalf("node %d (row %d) in region %d, want %d", n, y, r.Of(n), want)
		}
	}
	// The only inter-region links are the vertical links between adjacent
	// stripes: w links per seam, 3 seams.
	if r.BoundaryLinks() != 8*3 {
		t.Fatalf("boundary links = %d, want 24", r.BoundaryLinks())
	}
	nb := 0
	for id, l := range topo.Links() {
		cross := r.Of(l.A) != r.Of(l.B)
		if cross != r.CrossRegion(id) {
			t.Fatalf("link %d cross-region flag %v, endpoints disagree", id, r.CrossRegion(id))
		}
		if cross {
			nb++
		}
	}
	if nb != r.BoundaryLinks() {
		t.Fatalf("recount %d boundary links, accessor says %d", nb, r.BoundaryLinks())
	}
}

func TestPartitionMeshClamps(t *testing.T) {
	topo := NewMesh(4, 2)
	if r := PartitionMesh(topo, 16); r.Count() != 2 {
		t.Fatalf("target 16 on h=2 mesh gave %d regions, want 2", r.Count())
	}
	if r := PartitionMesh(topo, 0); r.Count() != 1 {
		t.Fatalf("target 0 gave %d regions, want 1", r.Count())
	}
}

func TestPartitionNonMeshSingleRegion(t *testing.T) {
	topo := NewHypercube(3)
	r := PartitionMesh(topo, 4)
	if r.Count() != 1 || r.BoundaryLinks() != 0 {
		t.Fatalf("hypercube partition: %d regions, %d boundary links; want 1, 0", r.Count(), r.BoundaryLinks())
	}
	if a := AutoRegions(topo); a.Count() != 1 {
		t.Fatalf("AutoRegions(hypercube) = %d regions, want 1", a.Count())
	}
}

func TestAutoRegions(t *testing.T) {
	cases := []struct {
		w, h, want int
	}{
		{4, 4, 4},   // small mesh: one stripe per row
		{8, 8, 8},   //
		{32, 32, 16}, // capped at maxAutoRegions
		{4, 2, 2},
	}
	for _, c := range cases {
		r := AutoRegions(NewMesh(c.w, c.h))
		if r.Count() != c.want {
			t.Fatalf("AutoRegions(%dx%d) = %d regions, want %d", c.w, c.h, r.Count(), c.want)
		}
		// Stripes must be contiguous in row-major node order.
		prev := 0
		for n := 0; n < r.Topology().Routers(); n++ {
			if r.Of(n) < prev {
				t.Fatalf("%dx%d: region ids not monotone over row-major nodes", c.w, c.h)
			}
			prev = r.Of(n)
		}
	}
}

func TestMesh32x32Preset(t *testing.T) {
	topo := NewMesh32x32()
	if topo.Routers() != 1024 {
		t.Fatalf("32x32 preset has %d routers, want 1024", topo.Routers())
	}
	if w, h := topo.MeshSize(); w != 32 || h != 32 {
		t.Fatalf("32x32 preset reports %dx%d", w, h)
	}
	r := AutoRegions(topo)
	if r.Count() != 16 || r.BoundaryLinks() != 32*15 {
		t.Fatalf("32x32 AutoRegions: %d regions, %d boundary links; want 16, 480", r.Count(), r.BoundaryLinks())
	}
}

// TestMesh64x64Route builds the 4096-node preset, generates its
// dimension-order tables and spot-routes corner-to-corner — the smoke-level
// sanity that topology construction holds up at TSAR scale. Gated out of
// -short runs: table generation is O(n²).
func TestMesh64x64Route(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-node route sanity skipped in -short mode")
	}
	topo := NewMesh64x64()
	if topo.Routers() != 4096 {
		t.Fatalf("64x64 preset has %d routers, want 4096", topo.Routers())
	}
	tb := DefaultTables(topo)
	// Corner to corner: dimension-order path length is the Manhattan
	// distance, 63+63 hops → 127 routers on the path.
	path := tb.Route(topo, 0, 4095)
	if len(path) != 127 {
		t.Fatalf("corner-to-corner route has %d routers, want 127", len(path))
	}
	// A few cross-stripe routes through the AutoRegions decomposition.
	r := AutoRegions(topo)
	if r.Count() != 16 {
		t.Fatalf("64x64 AutoRegions = %d, want 16", r.Count())
	}
	for _, pair := range [][2]int{{5, 4000}, {63 * 64, 63}, {2048, 2111}} {
		p := tb.Route(topo, pair[0], pair[1])
		if p == nil {
			t.Fatalf("no route %d -> %d", pair[0], pair[1])
		}
		if p[len(p)-1] != pair[1] {
			t.Fatalf("route %d -> %d ends at %d", pair[0], pair[1], p[len(p)-1])
		}
	}
}
