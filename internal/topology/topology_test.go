package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeshConstruction(t *testing.T) {
	m := NewMesh(4, 4)
	if m.Routers() != 16 {
		t.Fatalf("Routers = %d, want 16", m.Routers())
	}
	if got, want := len(m.Links()), 2*4*3; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	// Corner has degree 2, edge 3, interior 4.
	if m.Degree(0) != 2 {
		t.Errorf("corner degree = %d, want 2", m.Degree(0))
	}
	if m.Degree(1) != 3 {
		t.Errorf("edge degree = %d, want 3", m.Degree(1))
	}
	if m.Degree(5) != 4 {
		t.Errorf("interior degree = %d, want 4", m.Degree(5))
	}
	x, y := m.MeshCoord(7)
	if x != 3 || y != 1 {
		t.Errorf("MeshCoord(7) = (%d,%d), want (3,1)", x, y)
	}
}

func TestHypercubeConstruction(t *testing.T) {
	hc := NewHypercube(4)
	if hc.Routers() != 16 {
		t.Fatalf("Routers = %d, want 16", hc.Routers())
	}
	if got, want := len(hc.Links()), 16*4/2; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	for r := 0; r < 16; r++ {
		if hc.Degree(r) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", r, hc.Degree(r))
		}
	}
}

func TestPortTo(t *testing.T) {
	m := NewMesh(3, 3)
	p := m.PortTo(4, 5)
	if p < 0 || m.Adjacency(4)[p].To != 5 {
		t.Fatalf("PortTo(4,5) broken: %d", p)
	}
	if m.PortTo(0, 8) != -1 {
		t.Fatal("PortTo for non-neighbors should be -1")
	}
}

func TestLinkOther(t *testing.T) {
	l := Link{A: 3, B: 7}
	if l.Other(3) != 7 || l.Other(7) != 3 {
		t.Fatal("Link.Other broken")
	}
}

func TestBFSFullMesh(t *testing.T) {
	m := NewMesh(4, 4)
	v := NewView(m)
	b := v.BFS(0)
	if b.Height != 6 {
		t.Errorf("height = %d, want 6", b.Height)
	}
	if b.Dist[15] != 6 {
		t.Errorf("Dist[15] = %d, want 6", b.Dist[15])
	}
	if b.Reachable() != 16 {
		t.Errorf("Reachable = %d, want 16", b.Reachable())
	}
	// Parent chain from 15 must reach the root.
	r := 15
	for steps := 0; r != 0; steps++ {
		if steps > 16 {
			t.Fatal("parent chain does not terminate")
		}
		r = b.Parent[r]
	}
}

func TestBFSWithFailures(t *testing.T) {
	m := NewMesh(4, 4)
	v := NewView(m)
	// Fail the entire second column: routers 1, 5, 9, 13.
	for _, r := range []int{1, 5, 9, 13} {
		v.FailRouter(r)
	}
	b := v.BFS(0)
	// Column 0 is cut off from columns 2-3.
	if b.Dist[2] != -1 {
		t.Errorf("Dist[2] = %d, want unreachable", b.Dist[2])
	}
	if b.Dist[12] != 3 {
		t.Errorf("Dist[12] = %d, want 3", b.Dist[12])
	}
	if v.Connected() {
		t.Error("view should be disconnected")
	}
	comps := v.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 4 || len(comps[1]) != 8 {
		t.Errorf("component sizes = %d,%d, want 4,8", len(comps[0]), len(comps[1]))
	}
}

func TestFailRouterKillsAttachedLinks(t *testing.T) {
	m := NewMesh(3, 3)
	v := NewView(m)
	v.FailRouter(4) // center: 4 links
	down := 0
	for _, up := range v.LinkUp {
		if !up {
			down++
		}
	}
	if down != 4 {
		t.Fatalf("links down = %d, want 4", down)
	}
}

func TestElectRoot(t *testing.T) {
	m := NewMesh(2, 2)
	v := NewView(m)
	if v.ElectRoot() != 0 {
		t.Fatal("root should be 0")
	}
	v.FailRouter(0)
	if v.ElectRoot() != 1 {
		t.Fatal("root should be 1 after 0 fails")
	}
}

func TestDiameterBoundFullMesh(t *testing.T) {
	m := NewMesh(8, 8)
	v := NewView(m)
	bound, bft := v.DiameterBound()
	if bft.Root != 0 {
		t.Fatalf("root = %d, want 0", bft.Root)
	}
	diam := v.Diameter()
	if diam != 14 {
		t.Fatalf("diameter = %d, want 14", diam)
	}
	if bound < diam {
		t.Fatalf("bound %d < diameter %d", bound, diam)
	}
}

// Property: the 2h bound always dominates the true diameter on the live
// component containing the elected root, for random failure patterns.
func TestQuickDiameterBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMesh(2+rng.Intn(6), 2+rng.Intn(6))
		v := NewView(m)
		for r := 0; r < m.Routers(); r++ {
			if rng.Float64() < 0.15 {
				v.FailRouter(r)
			}
		}
		for l := range v.LinkUp {
			if rng.Float64() < 0.1 {
				v.FailLink(l)
			}
		}
		bound, bft := v.DiameterBound()
		if bft == nil {
			return true
		}
		// Restrict the diameter check to the root's component: the
		// recovery algorithm assumes connectivity (§4.2).
		sub := v.Clone()
		for r := range sub.RouterUp {
			if sub.RouterUp[r] && bft.Dist[r] < 0 {
				sub.FailRouter(r)
			}
		}
		return bound >= sub.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDefaultTablesMeshRoutes(t *testing.T) {
	m := NewMesh(4, 4)
	tb := DefaultTables(m)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			path := tb.Route(m, s, d)
			if path == nil {
				t.Fatalf("no route %d->%d", s, d)
			}
			sx, sy := m.MeshCoord(s)
			dx, dy := m.MeshCoord(d)
			wantLen := abs(sx-dx) + abs(sy-dy) + 1
			if len(path) != wantLen {
				t.Fatalf("route %d->%d len %d, want %d", s, d, len(path), wantLen)
			}
		}
	}
	v := NewView(m)
	if !tb.DependencyAcyclic(v) {
		t.Fatal("dimension-order mesh routing must be deadlock-free")
	}
}

func TestDefaultTablesHypercube(t *testing.T) {
	hc := NewHypercube(4)
	tb := DefaultTables(hc)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			path := tb.Route(hc, s, d)
			if path == nil {
				t.Fatalf("no route %d->%d", s, d)
			}
			want := popcount(uint(s^d)) + 1
			if len(path) != want {
				t.Fatalf("route %d->%d len %d, want %d", s, d, len(path), want)
			}
		}
	}
	if !tb.DependencyAcyclic(NewView(hc)) {
		t.Fatal("e-cube routing must be deadlock-free")
	}
}

func TestUpDownTablesFullConnectivity(t *testing.T) {
	m := NewMesh(4, 4)
	v := NewView(m)
	_, bft := v.DiameterBound()
	tb := UpDownTables(v, bft)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if tb.Route(m, s, d) == nil {
				t.Fatalf("no up*/down* route %d->%d", s, d)
			}
		}
	}
	if !tb.DependencyAcyclic(v) {
		t.Fatal("up*/down* routing must be deadlock-free")
	}
}

func TestUpDownTablesAfterFailure(t *testing.T) {
	m := NewMesh(4, 4)
	v := NewView(m)
	v.FailRouter(5)
	v.FailLink(m.Adjacency(0)[0].Link) // also kill link 0-1
	_, bft := v.DiameterBound()
	tb := UpDownTables(v, bft)
	for s := 0; s < 16; s++ {
		if !v.RouterUp[s] {
			continue
		}
		for d := 0; d < 16; d++ {
			if !v.RouterUp[d] {
				continue
			}
			path := tb.Route(m, s, d)
			if path == nil {
				t.Fatalf("no route %d->%d after failure", s, d)
			}
			for _, r := range path {
				if !v.RouterUp[r] {
					t.Fatalf("route %d->%d passes failed router %d", s, d, r)
				}
			}
		}
	}
	if !tb.DependencyAcyclic(v) {
		t.Fatal("post-failure routing must be deadlock-free")
	}
}

// Property: for random failures leaving the elected root's component, the
// up*/down* tables connect every live pair in that component and the channel
// dependency graph stays acyclic. This is the §4.4 guarantee.
func TestQuickUpDownSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var topo *Topology
		if rng.Intn(2) == 0 {
			topo = NewMesh(2+rng.Intn(5), 2+rng.Intn(5))
		} else {
			topo = NewHypercube(1 + rng.Intn(4))
		}
		v := NewView(topo)
		for r := 0; r < topo.Routers(); r++ {
			if rng.Float64() < 0.12 {
				v.FailRouter(r)
			}
		}
		for l := range v.LinkUp {
			if rng.Float64() < 0.08 {
				v.FailLink(l)
			}
		}
		_, bft := v.DiameterBound()
		if bft == nil {
			return true
		}
		tb := UpDownTables(v, bft)
		if !tb.DependencyAcyclic(v) {
			return false
		}
		for s := 0; s < topo.Routers(); s++ {
			if !v.RouterUp[s] || bft.Dist[s] < 0 {
				continue
			}
			for d := 0; d < topo.Routers(); d++ {
				if !v.RouterUp[d] || bft.Dist[d] < 0 {
					continue
				}
				path := tb.Route(topo, s, d)
				if path == nil {
					return false
				}
				for _, r := range path {
					if !v.RouterUp[r] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRouteDetectsDeadEnd(t *testing.T) {
	m := NewMesh(2, 2)
	tb := NewTables(4)
	if tb.Route(m, 0, 3) != nil {
		t.Fatal("empty tables should yield nil route")
	}
	if got := tb.Route(m, 2, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("self route = %v, want [2]", got)
	}
}

func TestMeshCoordPanicsOnHypercube(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MeshCoord on hypercube should panic")
		}
	}()
	NewHypercube(2).MeshCoord(0)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func popcount(x uint) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
