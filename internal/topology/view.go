package topology

// View is a Topology restricted to the routers and links currently believed
// functional. The recovery algorithm operates exclusively on views: during
// the dissemination phase each node's view converges to the true surviving
// graph, and the interconnect-recovery phase computes new routes on it.
type View struct {
	T        *Topology
	RouterUp []bool
	LinkUp   []bool
}

// NewView returns a view of t with every router and link up.
func NewView(t *Topology) *View {
	v := &View{
		T:        t,
		RouterUp: make([]bool, t.Routers()),
		LinkUp:   make([]bool, len(t.Links())),
	}
	for i := range v.RouterUp {
		v.RouterUp[i] = true
	}
	for i := range v.LinkUp {
		v.LinkUp[i] = true
	}
	return v
}

// Clone returns an independent copy of v.
func (v *View) Clone() *View {
	c := &View{T: v.T}
	c.RouterUp = append([]bool(nil), v.RouterUp...)
	c.LinkUp = append([]bool(nil), v.LinkUp...)
	return c
}

// FailRouter marks router r (and, per §4.1, all links attached to it) down.
func (v *View) FailRouter(r int) {
	v.RouterUp[r] = false
	for _, a := range v.T.Adjacency(r) {
		v.LinkUp[a.Link] = false
	}
}

// FailLink marks link l down.
func (v *View) FailLink(l int) { v.LinkUp[l] = false }

// usable reports whether the edge a out of router r can be traversed.
func (v *View) usable(r int, a Adj) bool {
	return v.LinkUp[a.Link] && v.RouterUp[a.To]
}

// Usable reports whether the edge a out of router r can be traversed: the
// link and the far router are both up. Routing strategies outside this
// package use it to walk the surviving graph.
func (v *View) Usable(r int, a Adj) bool { return v.usable(r, a) }

// BFT is a breadth-first tree over the live portion of a view.
type BFT struct {
	Root       int
	Height     int
	Dist       []int // hop distance from Root; -1 if unreachable
	Parent     []int // BFS parent; -1 for root and unreachable routers
	ParentPort []int // port at the router leading to its parent; -1 likewise
}

// BFS computes a breadth-first tree rooted at root over live routers and
// links. Neighbors are visited in port order, so the tree is deterministic.
func (v *View) BFS(root int) *BFT {
	n := v.T.Routers()
	b := &BFT{
		Root:       root,
		Dist:       make([]int, n),
		Parent:     make([]int, n),
		ParentPort: make([]int, n),
	}
	for i := 0; i < n; i++ {
		b.Dist[i] = -1
		b.Parent[i] = -1
		b.ParentPort[i] = -1
	}
	if root < 0 || root >= n || !v.RouterUp[root] {
		return b
	}
	b.Dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		if b.Dist[r] > b.Height {
			b.Height = b.Dist[r]
		}
		for _, a := range v.T.Adjacency(r) {
			if !v.usable(r, a) || b.Dist[a.To] != -1 {
				continue
			}
			b.Dist[a.To] = b.Dist[r] + 1
			b.Parent[a.To] = r
			b.ParentPort[a.To] = v.T.PortTo(a.To, r)
			queue = append(queue, a.To)
		}
	}
	return b
}

// Reachable reports how many live routers the BFT spans (including the root).
func (b *BFT) Reachable() int {
	n := 0
	for _, d := range b.Dist {
		if d >= 0 {
			n++
		}
	}
	return n
}

// ElectRoot returns the lowest-numbered live router, which is the
// deterministic root-election rule every node applies to its stabilized view
// during the dissemination phase (§4.3). It returns -1 if no router is live.
func (v *View) ElectRoot() int {
	for r, up := range v.RouterUp {
		if up {
			return r
		}
	}
	return -1
}

// DiameterBound returns 2×height of the BFT rooted at the elected root,
// which upper-bounds the diameter of the live graph (§4.3), together with
// the tree itself. It returns (0, nil) when no router is live.
func (v *View) DiameterBound() (int, *BFT) {
	root := v.ElectRoot()
	if root < 0 {
		return 0, nil
	}
	b := v.BFS(root)
	return 2 * b.Height, b
}

// Connected reports whether all live routers form a single component.
func (v *View) Connected() bool {
	root := v.ElectRoot()
	if root < 0 {
		return true
	}
	b := v.BFS(root)
	for r, up := range v.RouterUp {
		if up && b.Dist[r] < 0 {
			return false
		}
	}
	return true
}

// Components returns the live routers grouped into connected components,
// each sorted ascending, ordered by their smallest member.
func (v *View) Components() [][]int {
	n := v.T.Routers()
	seen := make([]bool, n)
	var comps [][]int
	for r := 0; r < n; r++ {
		if !v.RouterUp[r] || seen[r] {
			continue
		}
		b := v.BFS(r)
		var comp []int
		for q := 0; q < n; q++ {
			if b.Dist[q] >= 0 {
				comp = append(comp, q)
				seen[q] = true
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Diameter computes the exact diameter of the live graph by running a BFS
// from every live router. The recovery algorithm never does this (it is the
// quadratic computation §4.3 rejects); tests use it to validate the 2h bound.
func (v *View) Diameter() int {
	d := 0
	for r, up := range v.RouterUp {
		if !up {
			continue
		}
		b := v.BFS(r)
		for q, up2 := range v.RouterUp {
			if up2 && b.Dist[q] > d {
				d = b.Dist[q]
			}
		}
	}
	return d
}
