package topology

// Routing tables. Tables[r][dst] is the port router r forwards a packet
// destined to dst through, or -1 when dst is unreachable. Tables[dst][dst]
// is PortLocal: deliver to the attached node.
//
// Two generators are provided. Pristine machines use the topology's natural
// deadlock-free routing (dimension order on the mesh, e-cube on the
// hypercube). After a failure, the interconnect-recovery phase computes
// up*/down* routes on the surviving graph (§4.4 uses the turn method; we use
// up*/down* on the dissemination-phase BFT, which is deadlock-free for any
// connected surviving graph). Tests verify the no-cycle property of the
// channel-dependency graph for both.

// PortLocal is the pseudo-port meaning "deliver to the attached node".
const PortLocal = -2

// Tables holds per-router next-hop ports indexed by destination router.
type Tables [][]int

// NewTables allocates an n×n table filled with -1 and the local diagonal.
func NewTables(n int) Tables {
	tb := make(Tables, n)
	for r := range tb {
		tb[r] = make([]int, n)
		for d := range tb[r] {
			tb[r][d] = -1
		}
		tb[r][r] = PortLocal
	}
	return tb
}

// DefaultTables returns the pristine-machine routing for t.
func DefaultTables(t *Topology) Tables {
	switch t.Kind() {
	case KindMesh:
		return dimOrderTables(t)
	case KindHypercube:
		return eCubeTables(t)
	default:
		v := NewView(t)
		_, bft := v.DiameterBound()
		return UpDownTables(v, bft)
	}
}

// dimOrderTables computes X-then-Y dimension-order routing for a mesh.
func dimOrderTables(t *Topology) Tables {
	n := t.Routers()
	tb := NewTables(n)
	for r := 0; r < n; r++ {
		rx, ry := t.MeshCoord(r)
		for d := 0; d < n; d++ {
			if d == r {
				continue
			}
			dx, dy := t.MeshCoord(d)
			var next int
			switch {
			case dx > rx:
				next = r + 1
			case dx < rx:
				next = r - 1
			case dy > ry:
				w, _ := t.MeshSize()
				next = r + w
			default:
				w, _ := t.MeshSize()
				next = r - w
			}
			tb[r][d] = t.PortTo(r, next)
		}
	}
	return tb
}

// eCubeTables computes lowest-bit-first dimension routing for a hypercube.
func eCubeTables(t *Topology) Tables {
	n := t.Routers()
	tb := NewTables(n)
	for r := 0; r < n; r++ {
		for d := 0; d < n; d++ {
			if d == r {
				continue
			}
			diff := uint(r ^ d)
			bit := 0
			for diff&1 == 0 {
				diff >>= 1
				bit++
			}
			tb[r][d] = t.PortTo(r, r^(1<<bit))
		}
	}
	return tb
}

// linkIsUp reports whether traversing from r across a is an "up" traversal
// under the BFT-level orientation: the up end of a link is the endpoint with
// the smaller (level, id) pair.
func linkIsUp(bft *BFT, r int, a Adj) bool {
	lr, lt := bft.Dist[r], bft.Dist[a.To]
	if lr != lt {
		return lt < lr
	}
	return a.To < r
}

// UpTraversal reports whether traversing from r across a is an "up" move
// under b's orientation — the relation UpDownTables routes by. Exported for
// routing strategies that must reason about the same orientation.
func (b *BFT) UpTraversal(r int, a Adj) bool { return linkIsUp(b, r, a) }

// UpDownTables computes destination-based up*/down* routing tables over the
// live portion of v, using bft for the link orientation. For every
// destination the table is built in two waves: first the region that reaches
// the destination by only-down traversals, then the region that reaches that
// region by only-up traversals. A packet therefore goes up zero or more
// times, then down zero or more times, and never turns down→up, which keeps
// the channel-dependency graph acyclic.
func UpDownTables(v *View, bft *BFT) Tables {
	n := v.T.Routers()
	tb := NewTables(n)
	if bft == nil {
		return tb
	}
	for d := 0; d < n; d++ {
		if !v.RouterUp[d] || bft.Dist[d] < 0 {
			continue
		}
		// Wave 1: routers reaching d via down-traversals only.
		inDown := make([]bool, n)
		inDown[d] = true
		queue := []int{d}
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			// A router q can go down into r iff the traversal q→r is
			// a down traversal, i.e. r is the *down* end, i.e. the
			// reverse traversal r→q is up.
			for _, a := range v.T.Adjacency(r) {
				if !v.usable(r, a) || inDown[a.To] || bft.Dist[a.To] < 0 {
					continue
				}
				if !linkIsUp(bft, r, a) {
					continue // q→r would be up, not down
				}
				q := a.To
				inDown[q] = true
				tb[q][d] = v.T.PortTo(q, r)
				queue = append(queue, q)
			}
		}
		// Wave 2: routers reaching the down-region via up-traversals.
		inUp := make([]bool, n)
		for r := range inDown {
			if inDown[r] {
				inUp[r] = true
				queue = append(queue, r)
			}
		}
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			// A router q can go up into r iff q→r is an up traversal,
			// i.e. the reverse r→q is down.
			for _, a := range v.T.Adjacency(r) {
				if !v.usable(r, a) || inUp[a.To] || bft.Dist[a.To] < 0 {
					continue
				}
				if linkIsUp(bft, r, a) {
					continue // q→r would be down
				}
				q := a.To
				inUp[q] = true
				tb[q][d] = v.T.PortTo(q, r)
				queue = append(queue, q)
			}
		}
	}
	return tb
}

// Route walks tb from src to dst and returns the router sequence including
// both endpoints, or nil if the route dead-ends or loops.
func (tb Tables) Route(t *Topology, src, dst int) []int {
	path := []int{src}
	r := src
	for steps := 0; steps <= t.Routers(); steps++ {
		if r == dst {
			return path
		}
		p := tb[r][dst]
		if p < 0 {
			return nil
		}
		r = t.Adjacency(r)[p].To
		path = append(path, r)
	}
	return nil // loop
}

// DependencyAcyclic checks that the channel-dependency graph induced by tb
// over live elements of v is acyclic: a cycle would mean the routing can
// deadlock. Channels are directed link traversals; channel c1 depends on c2
// when some destination's route enters a router through c1 and leaves it
// through c2.
func (tb Tables) DependencyAcyclic(v *View) bool {
	t := v.T
	n := t.Routers()
	// Channel id: 2*link + dir, dir 0 = A→B, 1 = B→A.
	chanID := func(r int, a Adj) int {
		l := t.Links()[a.Link]
		if l.A == r {
			return 2 * a.Link
		}
		return 2*a.Link + 1
	}
	nc := 2 * len(t.Links())
	dep := make([][]int, nc)
	addDep := func(from, to int) { dep[from] = append(dep[from], to) }
	for r := 0; r < n; r++ {
		if !v.RouterUp[r] {
			continue
		}
		for d := 0; d < n; d++ {
			pOut := tb[r][d]
			if pOut < 0 {
				continue
			}
			out := t.Adjacency(r)[pOut]
			if !v.usable(r, out) {
				continue
			}
			co := chanID(r, out)
			// Every channel arriving at r whose packets may be
			// destined to d creates a dependency on co. A packet can
			// arrive at r through channel q→r only if tb[q][d] routes
			// through r.
			for _, a := range t.Adjacency(r) {
				q := a.To
				if !v.usable(r, a) || !v.RouterUp[q] {
					continue
				}
				pq := tb[q][d]
				if pq < 0 || t.Adjacency(q)[pq].To != r {
					continue
				}
				ci := chanID(q, t.Adjacency(q)[pq])
				addDep(ci, co)
			}
		}
	}
	// Cycle detection via iterative DFS coloring.
	color := make([]int, nc) // 0 white, 1 gray, 2 black
	for s := 0; s < nc; s++ {
		if color[s] != 0 {
			continue
		}
		// Iterative DFS with explicit frames.
		type frame struct{ c, i int }
		frames := []frame{{s, 0}}
		color[s] = 1
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(dep[f.c]) {
				next := dep[f.c][f.i]
				f.i++
				switch color[next] {
				case 0:
					color[next] = 1
					frames = append(frames, frame{next, 0})
				case 1:
					return false // back edge: cycle
				}
				continue
			}
			color[f.c] = 2
			frames = frames[:len(frames)-1]
		}
	}
	return true
}
