// Package topology describes the interconnect graphs used by flashfc (the
// 2-D mesh assumed by the paper's experiments and the hypercube used for the
// Fig 5.5 dissemination comparison) and implements the graph algorithms the
// recovery algorithm needs: breadth-first trees, the 2h diameter bound
// (§4.3), connected components, and deadlock-free up*/down* routing-table
// computation for the interconnect-recovery phase (§4.4).
//
// Routers and compute nodes are 1:1 in this model: router i serves node i.
// Links are undirected edges between routers; each endpoint sees the link
// through a port, which is the index into that router's adjacency list.
package topology

import "fmt"

// Link is an undirected edge between two routers.
type Link struct {
	A, B int
}

// Other returns the endpoint of l that is not r.
func (l Link) Other(r int) int {
	if l.A == r {
		return l.B
	}
	return l.A
}

// Adj is one entry of a router's adjacency list: the link used and the
// router at its far end.
type Adj struct {
	Link int // index into Topology.Links
	To   int // neighbor router
}

// Kind discriminates the built-in topology families.
type Kind int

const (
	KindMesh Kind = iota
	KindHypercube
)

// Topology is an immutable interconnect graph.
type Topology struct {
	name  string
	kind  Kind
	n     int
	w, h  int // mesh dimensions (mesh only)
	dim   int // hypercube dimension (hypercube only)
	links []Link
	adj   [][]Adj
}

// NewMesh returns a w×h 2-D mesh. Router (x, y) has index y*w+x.
func NewMesh(w, h int) *Topology {
	if w < 1 || h < 1 {
		panic("topology: mesh dimensions must be positive")
	}
	t := &Topology{
		name: fmt.Sprintf("mesh-%dx%d", w, h),
		kind: KindMesh,
		n:    w * h,
		w:    w, h: h,
		adj: make([][]Adj, w*h),
	}
	addLink := func(a, b int) {
		id := len(t.links)
		t.links = append(t.links, Link{A: a, B: b})
		t.adj[a] = append(t.adj[a], Adj{Link: id, To: b})
		t.adj[b] = append(t.adj[b], Adj{Link: id, To: a})
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := y*w + x
			if x+1 < w {
				addLink(r, r+1)
			}
			if y+1 < h {
				addLink(r, r+w)
			}
		}
	}
	return t
}

// NewHypercube returns a dim-dimensional hypercube with 2^dim routers.
func NewHypercube(dim int) *Topology {
	if dim < 0 || dim > 20 {
		panic("topology: hypercube dimension out of range")
	}
	n := 1 << dim
	t := &Topology{
		name: fmt.Sprintf("hypercube-%d", dim),
		kind: KindHypercube,
		n:    n,
		dim:  dim,
		adj:  make([][]Adj, n),
	}
	for a := 0; a < n; a++ {
		for d := 0; d < dim; d++ {
			b := a ^ (1 << d)
			if b > a {
				id := len(t.links)
				t.links = append(t.links, Link{A: a, B: b})
				t.adj[a] = append(t.adj[a], Adj{Link: id, To: b})
				t.adj[b] = append(t.adj[b], Adj{Link: id, To: a})
			}
		}
	}
	return t
}

// Name returns a human-readable topology name.
func (t *Topology) Name() string { return t.name }

// Kind returns the topology family.
func (t *Topology) Kind() Kind { return t.kind }

// Routers returns the number of routers (== number of nodes).
func (t *Topology) Routers() int { return t.n }

// RouterOf returns the router that serves node n. On today's mesh
// topologies the mapping is the identity (router i serves node i), but
// callers must still go through it: planned clustered topologies hang
// several nodes off one router, and code that copies a node id into a
// router id breaks there.
func (t *Topology) RouterOf(n int) int { return n }

// Links returns the undirected link list. The caller must not modify it.
func (t *Topology) Links() []Link { return t.links }

// Adjacency returns router r's adjacency list. Port p of router r refers to
// Adjacency(r)[p]. The caller must not modify it.
func (t *Topology) Adjacency(r int) []Adj { return t.adj[r] }

// Degree returns the number of ports of router r.
func (t *Topology) Degree(r int) int { return len(t.adj[r]) }

// PortTo returns the port of router r that leads to neighbor q, or -1.
func (t *Topology) PortTo(r, q int) int {
	for p, a := range t.adj[r] {
		if a.To == q {
			return p
		}
	}
	return -1
}

// MeshCoord returns the (x, y) coordinate of router r in a mesh.
func (t *Topology) MeshCoord(r int) (x, y int) {
	if t.kind != KindMesh {
		panic("topology: MeshCoord on non-mesh")
	}
	return r % t.w, r / t.w
}

// MeshSize returns the mesh dimensions.
func (t *Topology) MeshSize() (w, h int) { return t.w, t.h }
