package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("mean/median = %v/%v", s.Mean, s.Median)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
	if s.String() == "" || Summarize(nil).String() != "n=0" {
		t.Fatal("String broken")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.Std != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := map[float64]float64{0: 10, 100: 40, 50: 25, 25: 17.5}
	for p, want := range cases {
		if got := Percentile(sorted, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("empty sample should panic")
		}
	}()
	Percentile(nil, 50)
}

// Property: min <= median <= max, mean within [min, max], and the summary
// is permutation-invariant.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		if !(s.Min <= s.Median && s.Median <= s.Max) {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		shuffled := append([]float64(nil), clean...)
		sort.Float64s(shuffled)
		s2 := Summarize(shuffled)
		return math.Abs(s.Mean-s2.Mean) < 1e-9 && s.Min == s2.Min && s.Max == s2.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("nodes", "total-ms")
	tb.AddRow("8", "13.9")
	tb.AddRow("128") // short rows render with empty cells
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table:\n%s", out)
	}
	if !strings.Contains(lines[0], "nodes") || !strings.Contains(lines[1], "13.9") {
		t.Fatalf("table content wrong:\n%s", out)
	}
}

func TestTableOverflowPanics(t *testing.T) {
	tb := NewTable("nodes", "total-ms")
	defer func() {
		if recover() == nil {
			t.Fatal("row wider than the header should panic")
		}
	}()
	tb.AddRow("128", "90.8", "extra")
}

func TestTailReliable(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want bool
	}{
		{1000, 99.9, true},
		{999, 99.9, false},
		{100, 99, true},
		{50, 99, false},
		{2, 50, true},
	}
	for _, c := range cases {
		if got := TailReliable(c.n, c.p); got != c.want {
			t.Errorf("TailReliable(%d, %v) = %v, want %v", c.n, c.p, got, c.want)
		}
	}
}

func TestSummarySmallSampleCaveat(t *testing.T) {
	small := Summarize(make([]float64, 10)).String()
	if !strings.Contains(small, "small sample") {
		t.Fatalf("10-run summary lacks caveat: %s", small)
	}
	big := Summarize(make([]float64, SmallSampleN)).String()
	if strings.Contains(big, "small sample") {
		t.Fatalf("%d-run summary flagged small: %s", SmallSampleN, big)
	}
}
