// Package stats provides the small statistical toolkit the experiment
// drivers use for multi-seed distribution runs: summaries (min / median /
// mean / max / standard deviation / percentiles) and fixed-width table
// formatting shared by the cmd tools.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	Std    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero value.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.Median = Percentile(sorted, 50)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range sorted {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0-100) of a sorted sample using
// linear interpolation. It panics on an empty sample or p outside [0, 100].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 || p < 0 || p > 100 {
		panic("stats: bad percentile request")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SmallSampleN is the sample size under which a Summary flags itself: with
// fewer observations the tail statistics (and even the spread) are mostly
// interpolation noise.
const SmallSampleN = 100

// TailReliable reports whether the p-th percentile of an n-observation
// sample is supported by at least one observation in the tail it claims to
// describe: n·(1-p/100) ≥ 1. A p999 of a 100-run sample fails this — the
// value is pure interpolation between the two largest observations.
func TailReliable(n int, p float64) bool {
	// The tiny epsilon absorbs float rounding: 1000·(1−99.9/100) computes
	// to 0.999…8 but must count as the one supporting observation.
	return float64(n)*(1-p/100) >= 1-1e-9
}

func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	caveat := ""
	if s.N < SmallSampleN {
		caveat = " [small sample]"
	}
	return fmt.Sprintf("n=%d min=%.3g med=%.3g mean=%.3g max=%.3g sd=%.2g%s",
		s.N, s.Min, s.Median, s.Mean, s.Max, s.Std, caveat)
}

// Table is a simple fixed-width text table builder used by the cmd tools.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row. A row wider than the header is a column-count
// mistake in the caller — silently dropping the overflow used to mask
// exactly that — so width mismatches panic. Rows narrower than the header
// are allowed; missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		panic(fmt.Sprintf("stats: row of %d cells exceeds %d-column header", len(cells), len(t.header)))
	}
	t.rows = append(t.rows, cells)
}

// String renders the table with right-aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
