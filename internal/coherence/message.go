package coherence

import "fmt"

// MsgType enumerates the coherence protocol messages exchanged between node
// controllers, plus the uncached-operation messages used for cross-node I/O
// and inter-cell RPC doorbells.
type MsgType uint8

const (
	// MsgGet requests a shared (read-only) copy from the home.
	MsgGet MsgType = iota
	// MsgGetX requests an exclusive (writable) copy from the home.
	MsgGetX
	// MsgPut writes the only valid copy of a line back to the home; sent
	// on eviction, in response to a recall, and during the recovery cache
	// flush. Losing a MsgPut loses the line (§3.2).
	MsgPut
	// MsgRecall asks the current exclusive owner to write the line back.
	MsgRecall
	// MsgRecallNak tells the home the recalled line was not resident
	// (the owner's eviction writeback is already in flight, in order,
	// ahead of this message).
	MsgRecallNak
	// MsgInval asks a sharer to drop its copy.
	MsgInval
	// MsgInvAck acknowledges an invalidation to the home.
	MsgInvAck
	// MsgDataShared grants a shared copy to the requester.
	MsgDataShared
	// MsgDataExcl grants an exclusive copy to the requester.
	MsgDataExcl
	// MsgNak tells the requester the line is locked; retry (§3.2).
	MsgNak
	// MsgBusErr terminates the requester's access with a bus error:
	// the line is incoherent, firewalled, or otherwise inaccessible.
	MsgBusErr
	// MsgUncachedRead / MsgUncachedWrite are uncached operations against
	// a remote node (I/O device registers, RPC doorbells). They have
	// exactly-once semantics and are never retried by hardware (§3.3).
	MsgUncachedRead
	MsgUncachedWrite
	// MsgUncachedReply completes an uncached operation.
	MsgUncachedReply
	// MsgUncachedErr rejects a cross-failure-unit uncached operation.
	MsgUncachedErr
)

var msgNames = [...]string{
	"GET", "GETX", "PUT", "RECALL", "RECALLNAK", "INVAL", "INVACK",
	"DATA_SH", "DATA_EX", "NAK", "BUSERR",
	"UREAD", "UWRITE", "UREPLY", "UERR",
}

func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("msg%d", uint8(t))
}

// IsRequest reports whether the message travels on the request lane.
func (t MsgType) IsRequest() bool {
	switch t {
	case MsgGet, MsgGetX, MsgRecall, MsgInval, MsgUncachedRead, MsgUncachedWrite:
		return true
	}
	return false
}

// CarriesData reports whether the message carries a line's data, i.e.
// whether losing it can lose the only valid copy of a line.
func (t MsgType) CarriesData() bool {
	switch t {
	case MsgPut, MsgDataShared, MsgDataExcl:
		return true
	}
	return false
}

// Message is the payload of a coherence packet.
type Message struct {
	Type MsgType
	Addr Addr
	// Req is the node the transaction is on behalf of (the original
	// requester for GET/GETX and their replies).
	Req int
	// Seq matches replies to the requester's outstanding-operation entry.
	Seq uint64
	// Data is the line token for data-carrying messages, or the payload
	// of an uncached operation.
	Data uint64
	// UPayload carries the opaque payload of uncached operations (used
	// by the Hive RPC layer).
	UPayload any
	// IO marks an uncached operation as targeting an I/O device
	// register; those are bus-errored when they arrive from outside the
	// local failure unit (§3.3). Non-IO uncached operations (RPC
	// doorbells) cross units freely.
	IO bool
}

func (m *Message) String() string {
	return fmt.Sprintf("%v %v req=%d seq=%d", m.Type, m.Addr, m.Req, m.Seq)
}

// Bytes returns the wire size used for serialization cost: header-only for
// control messages, header+line for data-carrying ones.
func (m *Message) Bytes() int {
	if m.Type.CarriesData() {
		return 128
	}
	return 16
}
