package coherence

import (
	"testing"
	"testing/quick"

	"flashfc/internal/timing"
)

func TestAddrHelpers(t *testing.T) {
	a := Addr(0x12345)
	if a.Line() != 0x12300 {
		t.Errorf("Line = %v", a.Line())
	}
	if a.Page() != 0x12000 {
		t.Errorf("Page = %v", a.Page())
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestAddrSpace(t *testing.T) {
	s := AddrSpace{Nodes: 8, MemBytes: 1 << 20, VectorTop: 0x4000}
	if s.Home(0) != 0 || s.Home(1<<20) != 1 || s.Home(7<<20+5) != 7 {
		t.Fatal("Home broken")
	}
	if s.Base(3) != 3<<20 {
		t.Fatal("Base broken")
	}
	if !s.Contains(8<<20 - 1) {
		t.Fatal("Contains upper bound broken")
	}
	if s.Contains(8 << 20) {
		t.Fatal("Contains should reject out-of-range")
	}
	if s.Lines() != (1<<20)/timing.LineSize {
		t.Fatal("Lines broken")
	}
	// Vector remap: low addresses become node-local (§3.2).
	if got := s.Remap(3, 0x100); got != s.Base(3)+0x100 {
		t.Fatalf("Remap = %v", got)
	}
	if got := s.Remap(3, 0x5000); got != 0x5000 {
		t.Fatalf("Remap above VectorTop should be identity, got %v", got)
	}
}

func TestNodeSetBasics(t *testing.T) {
	s := NewNodeSet(130)
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	for _, id := range []int{0, 63, 64, 129} {
		s.Add(id)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	if !s.Has(129) || s.Has(128) {
		t.Fatal("Has broken")
	}
	var seen []int
	s.ForEach(func(id int) { seen = append(seen, id) })
	want := []int{0, 63, 64, 129}
	if len(seen) != len(want) {
		t.Fatalf("ForEach = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", seen, want)
		}
	}
	c := s.Clone()
	s.Remove(63)
	if s.Has(63) || !c.Has(63) {
		t.Fatal("Remove/Clone broken")
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear broken")
	}
}

func TestQuickNodeSetAddRemove(t *testing.T) {
	f := func(ids []uint8) bool {
		s := NewNodeSet(256)
		ref := map[int]bool{}
		for _, id := range ids {
			if ref[int(id)] {
				s.Remove(int(id))
				delete(ref, int(id))
			} else {
				s.Add(int(id))
				ref[int(id)] = true
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for id := range ref {
			if !s.Has(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryInitialAndWrite(t *testing.T) {
	m := NewMemory(1<<20, 1<<20)
	a := Addr(1<<20 + 256)
	if !m.Owns(a) || m.Owns(0) || m.Owns(2<<20) {
		t.Fatal("Owns broken")
	}
	if m.Read(a) != InitialToken(a) {
		t.Fatal("initial token mismatch")
	}
	m.Write(a+5, 42) // unaligned write goes to the line
	if m.Read(a) != 42 {
		t.Fatal("write not visible")
	}
	if m.TouchedLines() != 1 {
		t.Fatal("sparse storage broken")
	}
}

func TestCacheInstallLookupInvalidate(t *testing.T) {
	c := NewCache(4 * timing.LineSize)
	if c.CapacityLines() != 4 {
		t.Fatal("capacity wrong")
	}
	c.Install(0, CacheShared, 1)
	c.Install(128, CacheExclusive, 2)
	if c.Len() != 2 {
		t.Fatal("Len wrong")
	}
	if l := c.Lookup(130); l == nil || l.Token != 2 {
		t.Fatal("Lookup by interior address broken")
	}
	if l := c.Invalidate(0); l == nil || l.Token != 1 {
		t.Fatal("Invalidate broken")
	}
	if c.Lookup(0) != nil {
		t.Fatal("line still resident after invalidate")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2 * timing.LineSize)
	c.Install(0, CacheExclusive, 1)
	c.Install(128, CacheShared, 2)
	victim, ev := c.Install(256, CacheShared, 3)
	if ev == nil || victim != 0 || ev.State != CacheExclusive {
		t.Fatalf("eviction broken: victim=%v ev=%+v", victim, ev)
	}
	if c.Len() != 2 {
		t.Fatal("Len after eviction wrong")
	}
	// Reinstalling a resident line must not evict.
	if _, ev := c.Install(128, CacheExclusive, 9); ev != nil {
		t.Fatal("reinstall evicted")
	}
	if c.Lookup(128).Token != 9 {
		t.Fatal("reinstall did not update")
	}
}

func TestCacheFlushReturnsOnlyExclusive(t *testing.T) {
	c := NewCache(8 * timing.LineSize)
	c.Install(0, CacheShared, 1)
	c.Install(128, CacheExclusive, 2)
	c.Install(256, CacheExclusive, 3)
	addrs, lines := c.Flush()
	if len(addrs) != 2 || len(lines) != 2 {
		t.Fatalf("flush returned %d lines, want 2", len(addrs))
	}
	if addrs[0] != 128 || addrs[1] != 256 {
		t.Fatalf("flush order wrong: %v", addrs)
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty after flush")
	}
}

func TestCacheForEach(t *testing.T) {
	c := NewCache(8 * timing.LineSize)
	c.Install(0, CacheShared, 1)
	c.Install(128, CacheExclusive, 2)
	c.Invalidate(0)
	n := 0
	c.ForEach(func(a Addr, l *CacheLine) { n++ })
	if n != 1 {
		t.Fatalf("ForEach visited %d, want 1", n)
	}
}

func TestDirectoryBasics(t *testing.T) {
	d := NewDirectory(8)
	if d.Lookup(0) != nil {
		t.Fatal("empty dir should return nil")
	}
	e := d.Get(0)
	if e.State != DirInvalid {
		t.Fatal("new entry should be invalid")
	}
	e.State = DirShared
	e.Sharers.Add(3)
	if d.Len() != 1 {
		t.Fatal("Len wrong")
	}
	e.State = DirInvalid
	d.Release(0)
	if d.Len() != 0 {
		t.Fatal("Release should drop invalid entries")
	}
}

func TestDirectoryScan(t *testing.T) {
	d := NewDirectory(8)
	ex := d.Get(0)
	ex.State = DirExclusive
	ex.Owner = 5
	sh := d.Get(128)
	sh.State = DirShared
	sh.Sharers.Add(2)
	pr := d.Get(256)
	pr.State = DirPendingRecall
	pr.Owner = 5
	pi := d.Get(384)
	pi.State = DirPendingInval
	pi.AcksLeft = 2
	inc := d.Get(512)
	inc.State = DirIncoherent

	lost := d.Scan()
	if len(lost) != 2 {
		t.Fatalf("lost = %v, want 2 lines", lost)
	}
	if !d.Incoherent(0) || !d.Incoherent(256) {
		t.Fatal("exclusive/pending-recall should become incoherent")
	}
	if d.Incoherent(128) || d.Incoherent(384) {
		t.Fatal("shared/pending-inval must not be marked")
	}
	if d.Lookup(128) != nil || d.Lookup(384) != nil {
		t.Fatal("reset entries should be dropped")
	}
	if !d.Incoherent(512) {
		t.Fatal("already-incoherent line should stay")
	}
}

func TestDirectoryScrub(t *testing.T) {
	d := NewDirectory(8)
	e := d.Get(0)
	e.State = DirIncoherent
	if !d.Scrub(0) {
		t.Fatal("scrub should succeed on incoherent line")
	}
	if d.Lookup(0) != nil {
		t.Fatal("scrubbed line should be invalid")
	}
	if d.Scrub(128) {
		t.Fatal("scrub of clean line should report false")
	}
}

func TestDirStateStrings(t *testing.T) {
	for s := DirInvalid; s <= DirIncoherent+1; s++ {
		if s.String() == "" {
			t.Fatal("empty state name")
		}
	}
	if !DirPendingRecall.Locked() || !DirPendingInval.Locked() || DirShared.Locked() {
		t.Fatal("Locked broken")
	}
}

func TestMessageHelpers(t *testing.T) {
	m := &Message{Type: MsgPut, Addr: 128, Req: 3, Seq: 9, Data: 77}
	if !m.Type.CarriesData() || m.Bytes() != 128 {
		t.Fatal("PUT should carry data")
	}
	n := &Message{Type: MsgGet}
	if n.Type.CarriesData() || n.Bytes() != 16 {
		t.Fatal("GET should not carry data")
	}
	if !MsgGetX.IsRequest() || MsgDataExcl.IsRequest() {
		t.Fatal("IsRequest broken")
	}
	for ty := MsgGet; ty <= MsgUncachedErr+1; ty++ {
		if ty.String() == "" {
			t.Fatal("empty msg name")
		}
	}
	if m.String() == "" {
		t.Fatal("empty message string")
	}
}

func TestDirectoryScanLiveness(t *testing.T) {
	d := NewDirectory(8)
	up := func(n int) bool { return n != 5 }

	exLive := d.Get(0)
	exLive.State = DirExclusive
	exLive.Owner = 2
	exDead := d.Get(128)
	exDead.State = DirExclusive
	exDead.Owner = 5
	prLive := d.Get(256)
	prLive.State = DirPendingRecall
	prLive.Owner = 3
	prDead := d.Get(384)
	prDead.State = DirPendingRecall
	prDead.Owner = 5
	sh := d.Get(512)
	sh.State = DirShared
	sh.Sharers.Add(1)
	sh.Sharers.Add(5)
	shOnlyDead := d.Get(640)
	shOnlyDead.State = DirShared
	shOnlyDead.Sharers.Add(5)
	pi := d.Get(768)
	pi.State = DirPendingInval
	pi.AcksLeft = 3

	lost := d.ScanLiveness(up)
	if len(lost) != 2 {
		t.Fatalf("lost = %v, want 2 lines", lost)
	}
	if exLive.State != DirExclusive || exLive.Owner != 2 {
		t.Fatal("live exclusive owner must keep its line")
	}
	if !d.Incoherent(128) || !d.Incoherent(384) {
		t.Fatal("dead-owned lines must be incoherent")
	}
	if prLive.State != DirExclusive || prLive.Owner != 3 {
		t.Fatalf("pending recall with live owner should unlock to exclusive: %v", prLive.State)
	}
	if sh.Sharers.Has(5) || !sh.Sharers.Has(1) {
		t.Fatal("dead sharer not pruned")
	}
	if d.Lookup(640) != nil {
		t.Fatal("line shared only by a dead node should reset to invalid")
	}
	if pi.State != DirShared || pi.Sharers.Count() != 7 || pi.AcksLeft != 0 {
		t.Fatalf("pending-inval should become shared-by-all-live: %v count=%d",
			pi.State, pi.Sharers.Count())
	}
}
