package coherence

// Memory is one node's portion of the distributed main memory. Lines are
// stored sparsely: a line that was never written holds its deterministic
// initial token, so an untouched 16 MB memory costs nothing.
//
// A memory can be frozen for forking: Freeze seals the current contents as
// an immutable base map that any number of forked machines share, and
// subsequent writes land in a private overlay. Reads check the overlay,
// then the base, then fall back to the initial token.
type Memory struct {
	base   Addr
	bytes  uint64
	tokens map[Addr]uint64 // overlay: writes since the last freeze
	frozen map[Addr]uint64 // shared immutable base; nil when never frozen
}

// InitialToken is the deterministic content of a never-written line.
func InitialToken(line Addr) uint64 { return uint64(line) ^ 0xf1a5_4c0d_e000_0000 }

// NewMemory returns the memory for the node whose address range starts at
// base and spans bytes.
func NewMemory(base Addr, bytes uint64) *Memory {
	return &Memory{base: base, bytes: bytes, tokens: make(map[Addr]uint64)}
}

// Freeze seals the current contents as an immutable shared base and
// returns it. The memory itself continues on top of the same base with an
// empty overlay, so freezing is invisible to subsequent reads and writes;
// the returned map must never be mutated.
func (m *Memory) Freeze() map[Addr]uint64 {
	if len(m.tokens) > 0 || m.frozen == nil {
		merged := make(map[Addr]uint64, len(m.frozen)+len(m.tokens))
		for a, t := range m.frozen {
			merged[a] = t
		}
		for a, t := range m.tokens {
			merged[a] = t
		}
		m.frozen = merged
		m.tokens = make(map[Addr]uint64)
	}
	return m.frozen
}

// ForkMemory returns a memory whose initial contents are the frozen base,
// shared copy-on-write with every other fork of the same snapshot.
func ForkMemory(base Addr, bytes uint64, frozen map[Addr]uint64) *Memory {
	return &Memory{base: base, bytes: bytes, tokens: make(map[Addr]uint64), frozen: frozen}
}

// Owns reports whether line a is homed in this memory.
func (m *Memory) Owns(a Addr) bool {
	return a >= m.base && uint64(a-m.base) < m.bytes
}

// Read returns the token of line a.
func (m *Memory) Read(a Addr) uint64 {
	a = a.Line()
	if t, ok := m.tokens[a]; ok {
		return t
	}
	if t, ok := m.frozen[a]; ok {
		return t
	}
	return InitialToken(a)
}

// Write stores token as the content of line a.
func (m *Memory) Write(a Addr, token uint64) { m.tokens[a.Line()] = token }

// TouchedLines returns the number of lines ever written, for tests.
func (m *Memory) TouchedLines() int {
	n := len(m.frozen)
	for a := range m.tokens {
		if _, ok := m.frozen[a]; !ok {
			n++
		}
	}
	return n
}
