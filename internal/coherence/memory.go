package coherence

// Memory is one node's portion of the distributed main memory. Lines are
// stored sparsely: a line that was never written holds its deterministic
// initial token, so an untouched 16 MB memory costs nothing.
type Memory struct {
	base   Addr
	bytes  uint64
	tokens map[Addr]uint64
}

// InitialToken is the deterministic content of a never-written line.
func InitialToken(line Addr) uint64 { return uint64(line) ^ 0xf1a5_4c0d_e000_0000 }

// NewMemory returns the memory for the node whose address range starts at
// base and spans bytes.
func NewMemory(base Addr, bytes uint64) *Memory {
	return &Memory{base: base, bytes: bytes, tokens: make(map[Addr]uint64)}
}

// Owns reports whether line a is homed in this memory.
func (m *Memory) Owns(a Addr) bool {
	return a >= m.base && uint64(a-m.base) < m.bytes
}

// Read returns the token of line a.
func (m *Memory) Read(a Addr) uint64 {
	a = a.Line()
	if t, ok := m.tokens[a]; ok {
		return t
	}
	return InitialToken(a)
}

// Write stores token as the content of line a.
func (m *Memory) Write(a Addr, token uint64) { m.tokens[a.Line()] = token }

// TouchedLines returns the number of lines ever written, for tests.
func (m *Memory) TouchedLines() int { return len(m.tokens) }
