package coherence

// DirState is the home-side coherence state of a line.
type DirState uint8

const (
	// DirInvalid: no cached copies; memory is valid.
	DirInvalid DirState = iota
	// DirShared: read-only copies at Sharers; memory is valid.
	DirShared
	// DirExclusive: Owner holds the only valid copy; memory may be stale.
	DirExclusive
	// DirPendingRecall: the line is locked while the home waits for the
	// owner's writeback; requests are NAKed (§3.2).
	DirPendingRecall
	// DirPendingInval: the line is locked while the home collects
	// invalidate acknowledgments; requests are NAKed (§3.2).
	DirPendingInval
	// DirIncoherent: the only valid copy was lost in a failure; accesses
	// are terminated with a bus error until the OS scrubs the line (§3.2).
	DirIncoherent
)

func (s DirState) String() string {
	switch s {
	case DirInvalid:
		return "invalid"
	case DirShared:
		return "shared"
	case DirExclusive:
		return "exclusive"
	case DirPendingRecall:
		return "pending-recall"
	case DirPendingInval:
		return "pending-inval"
	case DirIncoherent:
		return "incoherent"
	default:
		return "?"
	}
}

// Locked reports whether the line is in a transient state.
func (s DirState) Locked() bool { return s == DirPendingRecall || s == DirPendingInval }

// DirEntry is the directory state of one line at its home.
type DirEntry struct {
	State   DirState
	Owner   int     // valid in DirExclusive and DirPendingRecall
	Sharers NodeSet // valid in DirShared and DirPendingInval

	// Pending-transaction bookkeeping, valid while State.Locked():
	PendingReq  int    // the requester the lock is held for
	PendingExcl bool   // the pending request is a GETX
	AcksLeft    int    // outstanding invalidate acks (DirPendingInval)
	PendingSeq  uint64 // requester's sequence number, echoed in the reply
}

// Directory is the home-side protocol state for one node's memory lines.
// Entries are sparse: absent means DirInvalid.
//
// A directory can be frozen for forking: Freeze seals the current entries
// as an immutable base map shared by any number of forked machines, and
// subsequent accesses copy entries up into a private overlay on first
// touch. A nil overlay value is a tombstone shadowing a deleted base
// entry. Whole-directory sweeps (ForEach, Scan, ScanLiveness) mutate every
// entry anyway, so they materialize the base into the overlay first and
// then run unchanged.
type Directory struct {
	nodes   int
	entries map[Addr]*DirEntry // overlay; nil value = deleted base entry
	frozen  map[Addr]*DirEntry // shared immutable base; nil when never frozen
}

// NewDirectory returns an empty directory for a machine of n nodes.
func NewDirectory(n int) *Directory {
	return &Directory{nodes: n, entries: make(map[Addr]*DirEntry)}
}

// Freeze seals the directory's current contents as an immutable shared
// base and returns it. The directory itself continues copy-on-write on top
// of the same base, so freezing is invisible to protocol behavior; the
// returned map (entries included) must never be mutated.
func (d *Directory) Freeze() map[Addr]*DirEntry {
	d.materialize()
	d.frozen = d.entries
	d.entries = make(map[Addr]*DirEntry)
	return d.frozen
}

// ForkDirectory returns a directory whose initial contents are the frozen
// base, shared copy-on-write with every other fork of the same snapshot.
func ForkDirectory(nodes int, frozen map[Addr]*DirEntry) *Directory {
	return &Directory{nodes: nodes, entries: make(map[Addr]*DirEntry), frozen: frozen}
}

// cloneEntry copies a base entry up into a privately mutable one.
func cloneEntry(e *DirEntry) *DirEntry {
	c := *e
	c.Sharers = e.Sharers.Clone()
	return &c
}

// materialize copies every un-shadowed base entry into the overlay and
// drops the base, removing tombstones along the way. Called before sweeps
// that visit (and mutate) every entry.
func (d *Directory) materialize() {
	if d.frozen != nil {
		for a, fe := range d.frozen {
			if _, shadowed := d.entries[a]; !shadowed {
				d.entries[a] = cloneEntry(fe)
			}
		}
		d.frozen = nil
	}
	for a, e := range d.entries {
		if e == nil {
			delete(d.entries, a)
		}
	}
}

// drop removes line a from the live view: a plain delete when no base
// entry shadows it, a nil tombstone otherwise.
func (d *Directory) drop(a Addr) {
	if _, ok := d.frozen[a]; ok {
		d.entries[a] = nil
	} else {
		delete(d.entries, a)
	}
}

// Lookup returns the entry for line a, or nil if the line is DirInvalid.
func (d *Directory) Lookup(a Addr) *DirEntry {
	a = a.Line()
	if e, ok := d.entries[a]; ok {
		return e // may be a nil tombstone: the line is DirInvalid
	}
	if fe, ok := d.frozen[a]; ok {
		e := cloneEntry(fe)
		d.entries[a] = e
		return e
	}
	return nil
}

// Get returns the entry for line a, creating a DirInvalid entry if needed.
func (d *Directory) Get(a Addr) *DirEntry {
	a = a.Line()
	e, ok := d.entries[a]
	if e != nil {
		return e
	}
	if !ok {
		if fe, fok := d.frozen[a]; fok {
			e = cloneEntry(fe)
			d.entries[a] = e
			return e
		}
	}
	e = &DirEntry{Sharers: NewNodeSet(d.nodes)}
	d.entries[a] = e
	return e
}

// Release removes a line's entry if it has returned to DirInvalid, keeping
// the directory sparse.
func (d *Directory) Release(a Addr) {
	a = a.Line()
	if e, ok := d.entries[a]; ok {
		if e != nil && e.State == DirInvalid {
			d.drop(a)
		}
		return
	}
	if fe, ok := d.frozen[a]; ok && fe.State == DirInvalid {
		d.drop(a)
	}
}

// Len returns the number of non-invalid entries, for tests.
func (d *Directory) Len() int {
	n := 0
	for _, e := range d.entries {
		if e != nil {
			n++
		}
	}
	for a := range d.frozen {
		if _, shadowed := d.entries[a]; !shadowed {
			n++
		}
	}
	return n
}

// ForEach visits all entries (order unspecified); the visitor may mutate
// entry state but must not add or delete entries.
func (d *Directory) ForEach(fn func(a Addr, e *DirEntry)) {
	d.materialize()
	for a, e := range d.entries {
		fn(a, e)
	}
}

// Scan implements the coherence-recovery directory sweep (§4.5): after the
// global cache flush, any line that still appears cached exclusive (or that
// is still locked waiting for an owner's writeback) has lost its only valid
// copy and is marked incoherent; every other entry is reset to "clean and
// not cached", because after the flush all processor caches are empty. It
// returns the addresses newly marked incoherent.
func (d *Directory) Scan() []Addr {
	d.materialize()
	var lost []Addr
	for a, e := range d.entries {
		switch e.State {
		case DirExclusive, DirPendingRecall:
			e.State = DirIncoherent
			lost = append(lost, a)
		case DirShared, DirPendingInval:
			e.State = DirInvalid
			e.Sharers.Clear()
		case DirIncoherent:
			// Stays incoherent until the OS scrubs it.
		}
		e.AcksLeft = 0
	}
	// Drop entries that returned to invalid.
	for a, e := range d.entries {
		if e.State == DirInvalid {
			delete(d.entries, a)
		}
	}
	return lost
}

// ScanLiveness is the §6.3 directory sweep variant for machines with a
// reliable (HAL-style) interconnect: no writeback was lost and caches were
// NOT flushed, so only lines entrusted to *dead* nodes are gone. Exclusive
// lines with live owners stay valid in place; dead sharers are pruned;
// locked lines are resolved according to whether their owner survived. A
// pending-invalidation line may still have live sharers we can no longer
// enumerate (the sharer list was consumed when the invalidations went out),
// so it conservatively becomes shared by every live node. It returns the
// addresses newly marked incoherent.
func (d *Directory) ScanLiveness(up func(node int) bool) []Addr {
	d.materialize()
	var lost []Addr
	for a, e := range d.entries {
		switch e.State {
		case DirExclusive:
			if !up(e.Owner) {
				e.State = DirIncoherent
				lost = append(lost, a)
			}
		case DirPendingRecall:
			if up(e.Owner) {
				// The owner still holds the line; release the lock.
				// The aborted requester reissues after recovery.
				e.State = DirExclusive
			} else {
				e.State = DirIncoherent
				lost = append(lost, a)
			}
		case DirShared:
			live := e.Sharers.Clone()
			e.Sharers.ForEach(func(id int) {
				if !up(id) {
					live.Remove(id)
				}
			})
			copy(e.Sharers, live)
			if e.Sharers.Empty() {
				e.State = DirInvalid
			}
		case DirPendingInval:
			// Unknown live sharers may remain: over-approximate.
			e.State = DirShared
			e.Sharers.Clear()
			for i := 0; i < d.nodes; i++ {
				if up(i) {
					e.Sharers.Add(i)
				}
			}
		}
		e.AcksLeft = 0
	}
	for a, e := range d.entries {
		if e.State == DirInvalid {
			delete(d.entries, a)
		}
	}
	return lost
}

// Incoherent reports whether line a is marked incoherent.
func (d *Directory) Incoherent(a Addr) bool {
	e := d.Lookup(a)
	return e != nil && e.State == DirIncoherent
}

// Scrub resets an incoherent line to invalid, modeling the MAGIC service
// Hive uses before reusing a page (§4.6). It reports whether the line was
// incoherent.
func (d *Directory) Scrub(a Addr) bool {
	a = a.Line()
	if e, ok := d.entries[a]; ok {
		if e == nil || e.State != DirIncoherent {
			return false
		}
		d.drop(a)
		return true
	}
	if fe, ok := d.frozen[a]; ok && fe.State == DirIncoherent {
		d.drop(a)
		return true
	}
	return false
}
