package coherence

import "testing"

// A forked memory must see frozen writes, diverge privately, and leave the
// source and its base untouched.
func TestMemoryCOWFork(t *testing.T) {
	m := NewMemory(0, 1<<20)
	m.Write(0x100, 11)
	m.Write(0x200, 22)
	base := m.Freeze()

	f := ForkMemory(0, 1<<20, base)
	if got := f.Read(0x100); got != 11 {
		t.Fatalf("fork missed frozen write: %d", got)
	}
	if got := f.Read(0x300); got != InitialToken(0x300) {
		t.Fatalf("fork untouched line: %d", got)
	}
	f.Write(0x100, 99)
	f.Write(0x400, 44)
	if got := m.Read(0x100); got != 11 {
		t.Fatalf("fork write leaked into source: %d", got)
	}
	m.Write(0x200, 77)
	if got := f.Read(0x200); got != 22 {
		t.Fatalf("post-freeze source write leaked into fork: %d", got)
	}
	if got := f.TouchedLines(); got != 3 { // 0x100 (shadowed), 0x200, 0x400
		t.Fatalf("fork TouchedLines = %d, want 3", got)
	}
	if got := m.TouchedLines(); got != 2 {
		t.Fatalf("source TouchedLines = %d, want 2", got)
	}
}

// Freezing twice (a second snapshot after more writes) must fold the
// overlay into a fresh base without mutating the first base.
func TestMemoryRefreeze(t *testing.T) {
	m := NewMemory(0, 1<<20)
	m.Write(0x100, 1)
	base1 := m.Freeze()
	m.Write(0x100, 2)
	base2 := m.Freeze()
	if base1[0x100] != 1 {
		t.Fatalf("first base mutated: %d", base1[0x100])
	}
	if base2[0x100] != 2 {
		t.Fatalf("second base stale: %d", base2[0x100])
	}
}

func dirWith(t *testing.T, states map[Addr]DirState) *Directory {
	t.Helper()
	d := NewDirectory(4)
	for a, s := range states {
		e := d.Get(a)
		e.State = s
		if s == DirExclusive {
			e.Owner = 1
		}
		if s == DirShared {
			e.Sharers.Add(2)
		}
	}
	return d
}

// Source and fork directories must be fully independent after a freeze:
// entry mutation, Release, and Scrub on one side may not show on the other.
func TestDirectoryCOWForkIndependence(t *testing.T) {
	d := dirWith(t, map[Addr]DirState{
		0x000: DirExclusive,
		0x080: DirShared,
		0x100: DirIncoherent,
	})
	base := d.Freeze()
	f := ForkDirectory(4, base)

	// Mutating a copied-up entry in the fork leaves the source alone.
	fe := f.Get(0x000)
	fe.State = DirShared
	fe.Sharers.Add(3)
	if se := d.Lookup(0x000); se.State != DirExclusive || se.Sharers.Has(3) {
		t.Fatalf("fork entry mutation leaked into source: %+v", se)
	}

	// Deleting through a tombstone in the fork leaves the source alone.
	f.Get(0x080).State = DirInvalid
	f.Get(0x080).Sharers.Clear()
	f.Release(0x080)
	if f.Lookup(0x080) != nil {
		t.Fatal("fork Release left the entry visible")
	}
	if d.Lookup(0x080) == nil {
		t.Fatal("fork Release leaked into source")
	}

	// Scrub of a frozen incoherent entry works through the tombstone.
	if !f.Scrub(0x100) {
		t.Fatal("fork Scrub missed the frozen incoherent entry")
	}
	if f.Incoherent(0x100) {
		t.Fatal("scrubbed line still incoherent in fork")
	}
	if !d.Incoherent(0x100) {
		t.Fatal("fork Scrub leaked into source")
	}

	if got := f.Len(); got != 1 { // only 0x000 remains live in the fork
		t.Fatalf("fork Len = %d, want 1", got)
	}
	if got := d.Len(); got != 3 {
		t.Fatalf("source Len = %d, want 3", got)
	}
}

// Sweeps materialize the base first: Scan must behave identically on a
// fork and on a never-frozen directory with the same contents.
func TestDirectoryScanAfterFork(t *testing.T) {
	states := map[Addr]DirState{
		0x000: DirExclusive,
		0x080: DirShared,
		0x100: DirPendingRecall,
	}
	plain := dirWith(t, states)
	forked := ForkDirectory(4, dirWith(t, states).Freeze())

	lostP := plain.Scan()
	lostF := forked.Scan()
	if len(lostP) != len(lostF) || len(lostF) != 2 {
		t.Fatalf("Scan lost %d (plain) vs %d (fork), want 2", len(lostP), len(lostF))
	}
	if plain.Len() != forked.Len() {
		t.Fatalf("post-Scan Len diverged: %d vs %d", plain.Len(), forked.Len())
	}
	if !forked.Incoherent(0x000) || !forked.Incoherent(0x100) || forked.Incoherent(0x080) {
		t.Fatal("fork Scan produced wrong incoherent set")
	}
}

func TestCacheClone(t *testing.T) {
	c := NewCache(4 * 128)
	c.Install(0x000, CacheExclusive, 7)
	c.Install(0x080, CacheShared, 8)
	f := c.Clone()
	f.Lookup(0x000).Token = 9
	f.Invalidate(0x080)
	if c.Lookup(0x000).Token != 7 {
		t.Fatal("clone line mutation leaked into source")
	}
	if c.Lookup(0x080) == nil {
		t.Fatal("clone invalidate leaked into source")
	}
	// FIFO order survives the clone: a full fill evicts in source order.
	addrs, _ := f.Flush()
	if len(addrs) != 1 || addrs[0] != 0x000 {
		t.Fatalf("clone flush order wrong: %v", addrs)
	}
}
