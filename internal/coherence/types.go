// Package coherence holds the data model of the FLASH directory-based cache
// coherence protocol: the global physical address space split across home
// nodes, per-node memories and second-level caches, the per-line directory
// state kept at the home (§2), and the protocol message vocabulary. The
// protocol *logic* (the MAGIC handlers) lives in package magic; this package
// is the state it operates on.
//
// Line data is modeled as a 64-bit token rather than 128 bytes of payload:
// fault-containment verification only needs value identity (did the line
// keep the last written value, or was it correctly reported incoherent?).
package coherence

import (
	"fmt"

	"flashfc/internal/timing"
)

// Addr is a physical byte address in the machine's global address space.
// Node n is the home of addresses [n*MemBytes, (n+1)*MemBytes).
type Addr uint64

// Line returns the line-aligned base address of a.
func (a Addr) Line() Addr { return a &^ (timing.LineSize - 1) }

// Page returns the page-aligned base address of a (firewall granularity).
func (a Addr) Page() Addr { return a &^ (timing.PageSize - 1) }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// AddrSpace describes the machine's physical memory layout.
type AddrSpace struct {
	Nodes    int
	MemBytes uint64 // per-node memory size
	// VectorTop is the top of the replicated exception-vector range: all
	// references below it are remapped to the local node (§3.2).
	VectorTop Addr
}

// Home returns the home node of address a.
func (s AddrSpace) Home(a Addr) int { return int(uint64(a) / s.MemBytes) }

// Base returns the first address homed on node n.
func (s AddrSpace) Base(n int) Addr { return Addr(uint64(n) * s.MemBytes) }

// Contains reports whether a falls inside the machine's address space.
func (s AddrSpace) Contains(a Addr) bool {
	return uint64(a) < uint64(s.Nodes)*s.MemBytes
}

// Lines returns the number of coherence lines per node.
func (s AddrSpace) Lines() int { return int(s.MemBytes / timing.LineSize) }

// Remap applies the exception-vector remap of node n: references into the
// vector range are converted to node-local references so that no node
// depends on another node's memory for its exception vectors (§3.2).
func (s AddrSpace) Remap(n int, a Addr) Addr {
	if a < s.VectorTop {
		return s.Base(n) + a
	}
	return a
}

// NodeSet is a bitset of node ids, used for directory sharer lists and
// firewall access-control lists.
type NodeSet []uint64

// NewNodeSet returns an empty set sized for n nodes.
func NewNodeSet(n int) NodeSet { return make(NodeSet, (n+63)/64) }

// Add inserts node id.
func (s NodeSet) Add(id int) { s[id/64] |= 1 << (uint(id) % 64) }

// Remove deletes node id.
func (s NodeSet) Remove(id int) { s[id/64] &^= 1 << (uint(id) % 64) }

// Has reports membership of node id.
func (s NodeSet) Has(id int) bool { return s[id/64]&(1<<(uint(id)%64)) != 0 }

// Count returns the number of members.
func (s NodeSet) Count() int {
	c := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// Empty reports whether the set has no members.
func (s NodeSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member in ascending order.
func (s NodeSet) ForEach(fn func(id int)) {
	for i, w := range s {
		for w != 0 {
			b := w & -w
			id := i*64 + trailingZeros(w)
			fn(id)
			w &^= b
		}
	}
}

// Clone returns an independent copy.
func (s NodeSet) Clone() NodeSet { return append(NodeSet(nil), s...) }

// Clear removes all members.
func (s NodeSet) Clear() {
	for i := range s {
		s[i] = 0
	}
}

func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}
