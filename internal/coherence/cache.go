package coherence

import "flashfc/internal/timing"

// CacheState is the state of a line in a processor's second-level cache.
// There is no separate clean-exclusive state: as in FLASH's protocol, a line
// fetched exclusive is assumed modified, so the cache flush of coherence
// recovery writes back every exclusive line (§4.5: lines that are not dirty
// need no message; all others carry the only valid copy).
type CacheState uint8

const (
	// CacheShared is a read-only copy; memory at the home is valid.
	CacheShared CacheState = iota
	// CacheExclusive is a writable copy; the cache holds the only valid
	// copy of the line.
	CacheExclusive
)

// CacheLine is one resident line.
type CacheLine struct {
	State CacheState
	Token uint64
}

// Cache is a node's second-level cache, modeled as a fully-associative
// FIFO-replacement set of lines. CapacityBytes bounds residency; the paper's
// experiments use 1 MB (Table 5.1).
type Cache struct {
	capacity int // lines
	lines    map[Addr]*CacheLine
	fifo     []Addr // insertion order for eviction
}

// NewCache returns a cache holding capacityBytes worth of 128-byte lines.
func NewCache(capacityBytes uint64) *Cache {
	return &Cache{
		capacity: int(capacityBytes / timing.LineSize),
		lines:    make(map[Addr]*CacheLine),
	}
}

// CapacityLines returns the cache size in lines.
func (c *Cache) CapacityLines() int { return c.capacity }

// Len returns the number of resident lines.
func (c *Cache) Len() int { return len(c.lines) }

// Lookup returns the resident line or nil.
func (c *Cache) Lookup(a Addr) *CacheLine { return c.lines[a.Line()] }

// Install places a line into the cache. If the cache is full it evicts the
// oldest resident line first and returns it (and its address) so the caller
// can issue a writeback for exclusive victims. evicted is nil if no eviction
// was needed.
func (c *Cache) Install(a Addr, state CacheState, token uint64) (victim Addr, evicted *CacheLine) {
	a = a.Line()
	if l, ok := c.lines[a]; ok {
		l.State = state
		l.Token = token
		return 0, nil
	}
	if len(c.lines) >= c.capacity {
		victim, evicted = c.evictOldest()
	}
	c.lines[a] = &CacheLine{State: state, Token: token}
	c.fifo = append(c.fifo, a)
	return victim, evicted
}

func (c *Cache) evictOldest() (Addr, *CacheLine) {
	for len(c.fifo) > 0 {
		a := c.fifo[0]
		c.fifo = c.fifo[1:]
		if l, ok := c.lines[a]; ok {
			delete(c.lines, a)
			return a, l
		}
	}
	return 0, nil
}

// Invalidate removes a line (e.g. on an invalidation or recall) and returns
// it, or nil if not resident.
func (c *Cache) Invalidate(a Addr) *CacheLine {
	a = a.Line()
	l := c.lines[a]
	delete(c.lines, a)
	return l
}

// Flush empties the cache and returns every line that must be written back
// home (all exclusive lines) in deterministic FIFO order. Shared lines are
// dropped silently: the home copy is valid (§4.5).
func (c *Cache) Flush() (addrs []Addr, lines []*CacheLine) {
	for _, a := range c.fifo {
		l, ok := c.lines[a]
		if !ok {
			continue
		}
		if l.State == CacheExclusive {
			addrs = append(addrs, a)
			lines = append(lines, l)
		}
		delete(c.lines, a)
	}
	c.fifo = c.fifo[:0]
	return addrs, lines
}

// Clone returns a deep copy of the cache. Unlike memory and directory
// images, cache contents are copied eagerly when forking: every resident
// line is mutable protocol state, and caches are bounded by L2Bytes.
func (c *Cache) Clone() *Cache {
	n := &Cache{
		capacity: c.capacity,
		lines:    make(map[Addr]*CacheLine, len(c.lines)),
		fifo:     append([]Addr(nil), c.fifo...),
	}
	for a, l := range c.lines {
		cl := *l
		n.lines[a] = &cl
	}
	return n
}

// ForEach visits resident lines in insertion order.
func (c *Cache) ForEach(fn func(a Addr, l *CacheLine)) {
	for _, a := range c.fifo {
		if l, ok := c.lines[a]; ok {
			fn(a, l)
		}
	}
}
