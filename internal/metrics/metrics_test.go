package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("a.count") != c {
		t.Fatal("counter not shared by name")
	}
	g := r.Gauge("a.level")
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %d", g.Value())
	}
	h := r.Histogram("a.lat")
	h.Observe(150)       // -> 200ns bucket
	h.Observe(150)       // -> 200ns bucket
	h.Observe(3_000_000) // -> 5ms bucket
	if h.Count() != 3 || h.Sum() != 3_000_300 {
		t.Fatalf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
	s := r.Snapshot()
	hs := s.Histograms["a.lat"]
	if hs.Min != 150 || hs.Max != 3_000_000 {
		t.Fatalf("hist min=%d max=%d", hs.Min, hs.Max)
	}
	if len(hs.Buckets) != 2 || hs.Buckets[0].Le != 200 || hs.Buckets[0].N != 2 {
		t.Fatalf("buckets = %+v", hs.Buckets)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(10)
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 || r.Histogram("x").Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestBucketBoundsLogSpaced(t *testing.T) {
	b := BucketBounds()
	if b[0] != 100 {
		t.Fatalf("first bound = %d", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %d <= %d", i, b[i], b[i-1])
		}
	}
	// Overflow observations land in the catch-all bucket.
	r := NewRegistry()
	h := r.Histogram("big")
	h.Observe(b[len(b)-1] + 1)
	hs := r.Snapshot().Histograms["big"]
	if len(hs.Buckets) != 1 || hs.Buckets[0].Le != -1 {
		t.Fatalf("overflow bucket = %+v", hs.Buckets)
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n).Add(uint64(len(n)))
		}
		r.Gauge("g.z").Set(2)
		r.Gauge("g.a").Set(1)
		r.Histogram("h.t").Observe(1500)
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := build([]string{"c.b", "c.a", "c.c"})
	b := build([]string{"c.c", "c.a", "c.b"})
	if !bytes.Equal(a, b) {
		t.Fatalf("JSON depends on insertion order:\n%s\n%s", a, b)
	}
	if !strings.Contains(string(a), `"c.a":3`) {
		t.Fatalf("unexpected JSON: %s", a)
	}
}

func TestMergeSnapshots(t *testing.T) {
	mk := func(v uint64, lat int64) *Snapshot {
		r := NewRegistry()
		r.Counter("c").Add(v)
		r.Gauge("g").Set(int64(v))
		r.Histogram("h").Observe(lat)
		return r.Snapshot()
	}
	merged := MergeSnapshots([]*Snapshot{mk(1, 100), mk(2, 1_000_000_000_000)})
	if merged.Counters["c"] != 3 || merged.Gauges["g"] != 3 {
		t.Fatalf("merged scalars: %+v", merged)
	}
	h := merged.Histograms["h"]
	if h.Count != 2 || h.Min != 100 || h.Max != 1_000_000_000_000 {
		t.Fatalf("merged hist: %+v", h)
	}
	// One regular bucket plus the overflow bucket, overflow last.
	if len(h.Buckets) != 2 || h.Buckets[1].Le != -1 {
		t.Fatalf("merged buckets: %+v", h.Buckets)
	}
	// Merge order must not matter.
	rev := MergeSnapshots([]*Snapshot{mk(2, 1_000_000_000_000), mk(1, 100)})
	ba, _ := json.Marshal(merged)
	bb, _ := json.Marshal(rev)
	if !bytes.Equal(ba, bb) {
		t.Fatalf("merge not commutative:\n%s\n%s", ba, bb)
	}
}

func TestWriteTableSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Inc()
	r.Gauge("m.mid").Set(5)
	r.Histogram("h.lat").Observe(2_500_000_000) // 2.5s
	var b strings.Builder
	r.Snapshot().WriteTable(&b)
	out := b.String()
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	if !strings.Contains(out, "2.5s") {
		t.Fatalf("histogram row missing human time:\n%s", out)
	}
}

func TestFmtNS(t *testing.T) {
	cases := map[int64]string{
		0:             "0s",
		150:           "150ns",
		2_500:         "2.5us",
		1_000_000:     "1ms",
		2_500_000_000: "2.5s",
		-2_500_000:    "-2.5ms",
	}
	for in, want := range cases {
		if got := fmtNS(in); got != want {
			t.Errorf("fmtNS(%d) = %q, want %q", in, got, want)
		}
	}
}
