// Package metrics is the machine-wide telemetry layer of the simulator: a
// zero-dependency, deterministic registry of named counters, gauges and
// simulated-time histograms that every simulation layer reports into. The
// paper's whole evaluation (§5) is built on counters of exactly this kind —
// detection-trigger counts (NAKs, memory-operation timeouts), per-phase
// recovery latencies, gossip rounds, drain attempts, per-lane interconnect
// traffic — so the registry gives the experiment drivers one uniform way to
// surface them.
//
// Design constraints, in order:
//
//   - Determinism. A Snapshot's rendering (table or JSON) depends only on
//     the recorded values, never on map iteration order, wall-clock time or
//     host parallelism; campaigns that merge per-run snapshots in run order
//     produce byte-identical output for any worker count.
//   - No globals. Every Machine owns its own Registry, so concurrent runs
//     in a parallel campaign never share metric state and stay race-free.
//   - Nil safety. A nil *Registry hands out nil instruments whose methods
//     are no-ops, so instrumented code needs no conditionals on the hot
//     path.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. Updates are atomic:
// partitioned machines (internal/sim.Partitioned) run region schedulers on
// concurrent workers that all report into one machine registry, and because
// counter updates are commutative sums, snapshots stay bit-identical at any
// worker count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Safe on a nil counter (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil counter (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Set overwrites the count. It exists for scraped counters — values pulled
// from a component that keeps its own tally (e.g. the sim engine) — where
// re-scraping must be idempotent. Scrapes happen between windows (single-
// threaded), so Set carries no commutativity requirement. Safe on a nil
// counter (no-op).
func (c *Counter) Set(v uint64) {
	if c != nil {
		c.v.Store(v)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (queue depth, pending events). Stores are
// atomic, but last-writer-wins: deterministic snapshots require that a gauge
// be set from one region only, or between windows — which holds for the
// existing gauges (all set at scrape time).
type Gauge struct{ v atomic.Int64 }

// Set records the current level. Safe on a nil gauge (no-op).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last recorded level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket boundaries: fixed log-spaced (1-2-5 per decade) upper
// bounds in simulated nanoseconds, 100 ns .. 10 s, plus an overflow bucket.
// Fixed boundaries keep every histogram mergeable bucket-for-bucket across
// runs and machines.
var bucketBounds = buildBounds()

func buildBounds() []int64 {
	var b []int64
	for decade := int64(100); decade <= 1e9; decade *= 10 {
		for _, m := range []int64{1, 2, 5} {
			b = append(b, decade*m)
		}
	}
	return b // last bound is 5e11 ns = 500 s; beyond that is the overflow bucket
}

// BucketBounds returns the shared histogram boundaries (upper bounds, ns).
func BucketBounds() []int64 { return append([]int64(nil), bucketBounds...) }

// Histogram accumulates simulated-time observations (int64 nanoseconds,
// i.e. sim.Time values) into the fixed log-spaced buckets. Updates are
// atomic and commutative (sums, bucket adds, CAS-raced min/max), so
// concurrent region workers observing into one histogram produce the same
// snapshot in any interleaving.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Int64
	// min/max start at the identity sentinels so Observe needs no
	// count==0 special case under concurrency; readers report 0 until
	// the first observation.
	min, max atomic.Int64
	buckets  []atomic.Uint64 // len(bucketBounds)+1; last is overflow
}

func newHistogram() *Histogram {
	h := &Histogram{buckets: make([]atomic.Uint64, len(bucketBounds)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. Safe on a nil histogram (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := sort.Search(len(bucketBounds), func(i int) bool { return bucketBounds[i] >= v })
	h.buckets[i].Add(1)
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// minMax returns the observed extremes, or zeros before any observation
// (the sentinel values never escape).
func (h *Histogram) minMax() (int64, int64) {
	if h.count.Load() == 0 {
		return 0, 0
	}
	return h.min.Load(), h.max.Load()
}

// Registry is one machine's metric namespace. Instruments are created on
// first use and shared by name, so e.g. every node controller incrementing
// "magic.naks_sent" feeds one machine-wide counter. Lookup is mutex-guarded
// and the instruments themselves are atomic, so one registry may be shared
// by the concurrent region workers of a partitioned machine; parallel
// campaigns still give every run its own registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed. A nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Clone returns a deep copy of the registry: a forked machine resumes its
// instruments at the source's values without sharing them with the source
// or with sibling forks. A nil registry clones to nil (metrics disabled).
func (r *Registry) Clone() *Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := NewRegistry()
	for name, c := range r.counters {
		nc := &Counter{}
		nc.v.Store(c.v.Load())
		n.counters[name] = nc
	}
	for name, g := range r.gauges {
		ng := &Gauge{}
		ng.v.Store(g.v.Load())
		n.gauges[name] = ng
	}
	for name, h := range r.hists {
		nh := newHistogram()
		nh.count.Store(h.count.Load())
		nh.sum.Store(h.sum.Load())
		nh.min.Store(h.min.Load())
		nh.max.Store(h.max.Load())
		for i := range h.buckets {
			nh.buckets[i].Store(h.buckets[i].Load())
		}
		n.hists[name] = nh
	}
	return n
}

// Bucket is one non-empty histogram bucket: N observations with value
// <= Le nanoseconds. Le == -1 marks the overflow bucket.
type Bucket struct {
	Le int64  `json:"le"`
	N  uint64 `json:"n"`
}

// HistogramSnapshot is the frozen state of one histogram. Only non-empty
// buckets are retained, which keeps snapshots small without costing
// determinism (emptiness is a pure function of the observations).
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a frozen, serializable view of a registry. Maps marshal with
// sorted keys (encoding/json guarantees this), so the JSON encoding of a
// snapshot is a stable byte sequence for identical values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state. A nil registry yields an
// empty (but usable) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.v.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v.Load()
	}
	for name, h := range r.hists {
		mn, mx := h.minMax()
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Min: mn, Max: mx}
		for i := range h.buckets {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			le := int64(-1) // overflow
			if i < len(bucketBounds) {
				le = bucketBounds[i]
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, N: n})
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge folds other into s: counters and gauges add, histograms combine
// bucket-for-bucket. Merging is commutative and associative, so a campaign
// folding per-run snapshots yields the same aggregate for any run order —
// though drivers still merge in run-index order for clarity.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		s.Gauges[name] += v
	}
	for name, oh := range other.Histograms {
		h, ok := s.Histograms[name]
		if !ok {
			s.Histograms[name] = oh
			continue
		}
		if oh.Count > 0 && (h.Count == 0 || oh.Min < h.Min) {
			h.Min = oh.Min
		}
		if oh.Count > 0 && (h.Count == 0 || oh.Max > h.Max) {
			h.Max = oh.Max
		}
		h.Count += oh.Count
		h.Sum += oh.Sum
		h.Buckets = mergeBuckets(h.Buckets, oh.Buckets)
		s.Histograms[name] = h
	}
}

// mergeBuckets unions two sorted non-empty-bucket lists, adding counts of
// equal boundaries. The overflow bucket (Le == -1) sorts last.
func mergeBuckets(a, b []Bucket) []Bucket {
	key := func(le int64) int64 {
		if le == -1 {
			return int64(^uint64(0) >> 1) // max int64: overflow sorts last
		}
		return le
	}
	out := make([]Bucket, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case key(a[i].Le) == key(b[j].Le):
			out = append(out, Bucket{Le: a[i].Le, N: a[i].N + b[j].N})
			i++
			j++
		case key(a[i].Le) < key(b[j].Le):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// MergeSnapshots folds snaps (in order) into one aggregate snapshot.
func MergeSnapshots(snaps []*Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range snaps {
		out.Merge(s)
	}
	return out
}

// MarshalJSON renders the snapshot with stable key order (map keys sort).
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursion
	return json.Marshal((*alias)(s))
}

// WriteJSON writes the snapshot as indented JSON followed by a newline.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// fmtNS renders a nanosecond quantity with an adaptive unit, mirroring
// sim.Time.String without importing it (metrics stays dependency-free).
func fmtNS(ns int64) string {
	abs := ns
	if abs < 0 {
		abs = -abs
	}
	switch {
	case ns == 0:
		return "0s"
	case abs >= 1e9:
		return trimZeros(fmt.Sprintf("%.3f", float64(ns)/1e9)) + "s"
	case abs >= 1e6:
		return trimZeros(fmt.Sprintf("%.3f", float64(ns)/1e6)) + "ms"
	case abs >= 1e3:
		return trimZeros(fmt.Sprintf("%.3f", float64(ns)/1e3)) + "us"
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func trimZeros(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// WriteTable renders the snapshot as a sorted fixed-width text table: one
// row per metric, counters then gauges then histograms, each block sorted
// by name.
func (s *Snapshot) WriteTable(w io.Writer) {
	width := 0
	names := func(m ...string) {
		for _, n := range m {
			if len(n) > width {
				width = len(n)
			}
		}
	}
	for n := range s.Counters {
		names(n)
	}
	for n := range s.Gauges {
		names(n)
	}
	for n := range s.Histograms {
		names(n)
	}
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(w, "counter    %-*s  %d\n", width, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(w, "gauge      %-*s  %d\n", width, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if h.Count == 0 {
			fmt.Fprintf(w, "histogram  %-*s  n=0\n", width, name)
			continue
		}
		mean := h.Sum / int64(h.Count)
		fmt.Fprintf(w, "histogram  %-*s  n=%d min=%s mean=%s max=%s sum=%s\n",
			width, name, h.Count, fmtNS(h.Min), fmtNS(mean), fmtNS(h.Max), fmtNS(h.Sum))
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
