// Package fault defines the fault-injection vocabulary of the experiments
// (Table 5.2): node failures, router failures, link failures, MAGIC-handler
// infinite loops, and false alarms. Faults are applied to a Target — the
// machine layer implements it — so injection plans can be built and logged
// independently of the machine.
package fault

import (
	"fmt"
	"math/rand"

	"flashfc/internal/topology"
)

// Type is a fault class from Table 5.2.
type Type int

const (
	// NodeFailure: MAGIC fails but the router stays up; packets sent to
	// the node controller are discarded.
	NodeFailure Type = iota
	// RouterFailure: packets sent to the router are discarded.
	RouterFailure
	// LinkFailure: packets that try to traverse the link are dropped.
	LinkFailure
	// InfiniteLoop: MAGIC stops accepting packets; traffic directed to
	// the node backs up into the interconnect.
	InfiniteLoop
	// FalseAlarm: recovery triggered by an exceptional overload condition
	// in the absence of a fault.
	FalseAlarm
)

var typeNames = [...]string{
	"node-failure", "router-failure", "link-failure", "infinite-loop", "false-alarm",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("fault%d", int(t))
}

// AllTypes lists the injectable fault classes in Table 5.2 order.
func AllTypes() []Type {
	return []Type{NodeFailure, RouterFailure, LinkFailure, InfiniteLoop, FalseAlarm}
}

// Fault is one concrete injection.
type Fault struct {
	Type Type
	// Node is the victim node for NodeFailure/InfiniteLoop/FalseAlarm.
	Node int
	// Router is the victim router for RouterFailure.
	Router int
	// Link is the victim link for LinkFailure.
	Link int
}

func (f Fault) String() string {
	switch f.Type {
	case NodeFailure, InfiniteLoop, FalseAlarm:
		return fmt.Sprintf("%v(node %d)", f.Type, f.Node)
	case RouterFailure:
		return fmt.Sprintf("%v(router %d)", f.Type, f.Router)
	case LinkFailure:
		return fmt.Sprintf("%v(link %d)", f.Type, f.Link)
	default:
		return f.Type.String()
	}
}

// Target is the set of primitive failure actions a machine exposes.
type Target interface {
	// KillNode makes node id's controller, processor, memory and caches
	// unavailable; the router stays up.
	KillNode(id int)
	// LoopNode wedges node id's controller in a handler infinite loop.
	LoopNode(id int)
	// FailRouter kills router r and all links attached to it.
	FailRouter(r int)
	// FailLink kills link l.
	FailLink(l int)
	// FalseAlarm triggers recovery on node id with no actual fault.
	FalseAlarm(id int)
}

// Apply injects f into t.
func (f Fault) Apply(t Target) {
	switch f.Type {
	case NodeFailure:
		t.KillNode(f.Node)
	case RouterFailure:
		t.FailRouter(f.Router)
	case LinkFailure:
		t.FailLink(f.Link)
	case InfiniteLoop:
		t.LoopNode(f.Node)
	case FalseAlarm:
		t.FalseAlarm(f.Node)
	}
}

// PowerLoss models a partial power-supply failure (§4.1): every node in the
// region loses its controller, processor and memory, and its router and all
// attached links go with it. The result is the list of primitive faults to
// inject together.
func PowerLoss(nodes []int) []Fault {
	var out []Fault
	for _, n := range nodes {
		out = append(out,
			Fault{Type: NodeFailure, Node: n},
			Fault{Type: RouterFailure, Router: n})
	}
	return out
}

// CableCut models a disconnected inter-cabinet cable (§4.1): simultaneous
// failure of every mesh link crossing between column x and column x+1.
func CableCut(topo *topology.Topology, x int) []Fault {
	var out []Fault
	for l, link := range topo.Links() {
		ax, _ := topo.MeshCoord(link.A)
		bx, _ := topo.MeshCoord(link.B)
		if (ax == x && bx == x+1) || (ax == x+1 && bx == x) {
			out = append(out, Fault{Type: LinkFailure, Link: l})
		}
	}
	return out
}

// Random draws a fault of the given type with a victim chosen uniformly.
// Node 0 is never the victim of a node-class fault when spare > 0 nodes
// must survive; the validation harness passes spare=1 so at least one node
// remains to run verification.
func Random(rng *rand.Rand, t Type, topo *topology.Topology, spare int) Fault {
	n := topo.Routers()
	pickNode := func() int {
		if spare >= n {
			return n - 1
		}
		return spare + rng.Intn(n-spare)
	}
	switch t {
	case NodeFailure, InfiniteLoop, FalseAlarm:
		return Fault{Type: t, Node: pickNode()}
	case RouterFailure:
		return Fault{Type: t, Router: pickNode()}
	case LinkFailure:
		return Fault{Type: t, Link: rng.Intn(len(topo.Links()))}
	default:
		panic("fault: unknown type")
	}
}
