// Package fault defines the fault-injection vocabulary of the experiments:
// the fail-stop classes of Table 5.2 (node failures, router failures, link
// failures, MAGIC-handler infinite loops, and false alarms) plus the
// extended non-fail-stop classes (transient link faults, fail-slow nodes,
// and CPU-fail/memory-survives). Faults are applied to a Target — the
// machine layer implements it — so injection plans can be built and logged
// independently of the machine.
package fault

import (
	"fmt"
	"math/rand"

	"flashfc/internal/sim"
	"flashfc/internal/topology"
)

// Type is a fault class.
type Type int

const (
	// NodeFailure: MAGIC fails but the router stays up; packets sent to
	// the node controller are discarded.
	NodeFailure Type = iota
	// RouterFailure: packets sent to the router are discarded.
	RouterFailure
	// LinkFailure: packets that try to traverse the link are dropped.
	LinkFailure
	// InfiniteLoop: MAGIC stops accepting packets; traffic directed to
	// the node backs up into the interconnect.
	InfiniteLoop
	// FalseAlarm: recovery triggered by an exceptional overload condition
	// in the absence of a fault.
	FalseAlarm
	// TransientLink: the link corrupts traffic for a bounded window of
	// simulated time — packets that try to traverse it are dropped — and
	// then heals. No component is permanently lost; anything dropped
	// inside the window is recovered by the usual containment machinery,
	// and nothing may be lost after the window closes.
	TransientLink
	// FailSlow: the node's MAGIC handler engine degrades by a
	// configurable occupancy factor without dying. The node stays a full
	// recovery participant; recovery must still converge within the BFT
	// bound with the slow node in the barrier set.
	FailSlow
	// CPUFail: the node's processor (and the recovery firmware that runs
	// on it) dies, but its memory and directory bank stay reachable
	// behind the surviving controller, so other nodes can salvage clean
	// lines homed there instead of blanket-marking them incoherent.
	CPUFail
)

var typeNames = [...]string{
	"node-failure", "router-failure", "link-failure", "infinite-loop", "false-alarm",
	"transient-link", "fail-slow", "cpu-fail",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("fault%d", int(t))
}

// AllTypes lists the injectable fail-stop fault classes in Table 5.2 order.
func AllTypes() []Type {
	return []Type{NodeFailure, RouterFailure, LinkFailure, InfiniteLoop, FalseAlarm}
}

// ExtendedTypes lists the non-fail-stop classes beyond Table 5.2: the
// transient, fail-slow and CPU-fail/memory-survives scenarios of the tail
// campaign.
func ExtendedTypes() []Type {
	return []Type{TransientLink, FailSlow, CPUFail}
}

// Defaults for the parameterized classes, used when a Fault leaves the
// corresponding field zero.
const (
	// DefaultTransientWindow is how long a transient link misbehaves
	// before healing: long enough to guarantee packet loss under load and
	// to overlap a memory-op timeout, short enough that the link is
	// usually healthy again before recovery reprograms routes.
	DefaultTransientWindow = 200 * sim.Microsecond
	// DefaultSlowFactor is the fail-slow occupancy multiplier (the top of
	// the modeled 10-100x degradation range).
	DefaultSlowFactor = 100
)

// Fault is one concrete injection.
type Fault struct {
	Type Type
	// Node is the victim node for NodeFailure/InfiniteLoop/FalseAlarm/
	// FailSlow/CPUFail.
	Node int
	// Router is the victim router for RouterFailure.
	Router int
	// Link is the victim link for LinkFailure/TransientLink.
	Link int
	// Window is the misbehavior duration of a TransientLink fault;
	// 0 means DefaultTransientWindow.
	Window sim.Time
	// Factor is the occupancy multiplier of a FailSlow fault (valid
	// range 10-100); 0 means DefaultSlowFactor.
	Factor int
}

// window returns the effective transient window.
func (f Fault) window() sim.Time {
	if f.Window > 0 {
		return f.Window
	}
	return DefaultTransientWindow
}

// factor returns the effective fail-slow occupancy factor.
func (f Fault) factor() int {
	if f.Factor > 0 {
		return f.Factor
	}
	return DefaultSlowFactor
}

func (f Fault) String() string {
	switch f.Type {
	case NodeFailure, InfiniteLoop, FalseAlarm, CPUFail:
		return fmt.Sprintf("%v(node %d)", f.Type, f.Node)
	case FailSlow:
		return fmt.Sprintf("%v(node %d x%d)", f.Type, f.Node, f.factor())
	case RouterFailure:
		return fmt.Sprintf("%v(router %d)", f.Type, f.Router)
	case LinkFailure:
		return fmt.Sprintf("%v(link %d)", f.Type, f.Link)
	case TransientLink:
		return fmt.Sprintf("%v(link %d, %v)", f.Type, f.Link, f.window())
	default:
		return f.Type.String()
	}
}

// Target is the set of primitive failure actions a machine exposes.
type Target interface {
	// KillNode makes node id's controller, processor, memory and caches
	// unavailable; the router stays up.
	KillNode(id int)
	// LoopNode wedges node id's controller in a handler infinite loop.
	LoopNode(id int)
	// FailRouter kills router r and all links attached to it.
	FailRouter(r int)
	// FailLink kills link l.
	FailLink(l int)
	// FalseAlarm triggers recovery on node id with no actual fault.
	FalseAlarm(id int)
	// DegradeLink makes link l drop every packet for the given window of
	// simulated time, then heals it.
	DegradeLink(l int, window sim.Time)
	// SlowNode multiplies node id's MAGIC handler occupancy by factor
	// without killing anything.
	SlowNode(id, factor int)
	// KillCPU kills node id's processor (and the recovery code that runs
	// on it) while leaving its memory/directory bank served.
	KillCPU(id int)
}

// Apply injects f into t.
func (f Fault) Apply(t Target) {
	switch f.Type {
	case NodeFailure:
		t.KillNode(f.Node)
	case RouterFailure:
		t.FailRouter(f.Router)
	case LinkFailure:
		t.FailLink(f.Link)
	case InfiniteLoop:
		t.LoopNode(f.Node)
	case FalseAlarm:
		t.FalseAlarm(f.Node)
	case TransientLink:
		t.DegradeLink(f.Link, f.window())
	case FailSlow:
		t.SlowNode(f.Node, f.factor())
	case CPUFail:
		t.KillCPU(f.Node)
	}
}

// PowerLoss models a partial power-supply failure (§4.1): every node in the
// region loses its controller, processor and memory, and its router and all
// attached links go with it. The node→router mapping goes through the
// topology (1:1 on today's meshes, but not on clustered topologies where
// several nodes share a router). The result is the list of primitive faults
// to inject together.
func PowerLoss(topo *topology.Topology, nodes []int) []Fault {
	var out []Fault
	for _, n := range nodes {
		out = append(out,
			Fault{Type: NodeFailure, Node: n},
			Fault{Type: RouterFailure, Router: topo.RouterOf(n)})
	}
	return out
}

// CableCut models a disconnected inter-cabinet cable (§4.1): simultaneous
// failure of every mesh link crossing between column x and column x+1.
func CableCut(topo *topology.Topology, x int) []Fault {
	var out []Fault
	for l, link := range topo.Links() {
		ax, _ := topo.MeshCoord(link.A)
		bx, _ := topo.MeshCoord(link.B)
		if (ax == x && bx == x+1) || (ax == x+1 && bx == x) {
			out = append(out, Fault{Type: LinkFailure, Link: l})
		}
	}
	return out
}

// Random draws a fault of the given type with a victim chosen uniformly.
//
// spare shields nodes 0..spare-1 from faults that take the node itself
// down (node-class faults: the validation harness historically verified
// from node 0, and node-failure distributions in the paper's tables are
// over the remaining nodes). The shield deliberately does NOT apply to
// link, router or transient-link faults: sparing a node's router is
// unnecessary — the harness verifies from a surviving node — and skipping
// low-numbered routers would skew the victim distribution away from the
// mesh corner where containment is hardest. It panics when spare covers
// every node, since no valid node-class victim exists.
func Random(rng *rand.Rand, t Type, topo *topology.Topology, spare int) Fault {
	n := topo.Routers()
	pickNode := func() int {
		if spare >= n {
			panic(fmt.Sprintf("fault: spare %d leaves no victim among %d nodes", spare, n))
		}
		return spare + rng.Intn(n-spare)
	}
	switch t {
	case NodeFailure, InfiniteLoop, FalseAlarm, FailSlow, CPUFail:
		return Fault{Type: t, Node: pickNode()}
	case RouterFailure:
		// De-skewed: any router may fail, including those of spared
		// nodes; survivors are responsible for verification.
		return Fault{Type: t, Router: rng.Intn(n)}
	case LinkFailure, TransientLink:
		return Fault{Type: t, Link: rng.Intn(len(topo.Links()))}
	default:
		panic("fault: unknown type")
	}
}
