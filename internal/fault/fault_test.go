package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flashfc/internal/sim"
	"flashfc/internal/topology"
)

// recorder implements Target and records applied actions.
type recorder struct {
	killed, looped, alarmed []int
	routers, links          []int
	degraded                []int
	windows                 []sim.Time
	slowed, factors         []int
	cpuKilled               []int
}

func (r *recorder) KillNode(id int)  { r.killed = append(r.killed, id) }
func (r *recorder) LoopNode(id int)  { r.looped = append(r.looped, id) }
func (r *recorder) FailRouter(x int) { r.routers = append(r.routers, x) }
func (r *recorder) FailLink(l int)   { r.links = append(r.links, l) }
func (r *recorder) DegradeLink(l int, w sim.Time) {
	r.degraded = append(r.degraded, l)
	r.windows = append(r.windows, w)
}
func (r *recorder) SlowNode(id, factor int) {
	r.slowed = append(r.slowed, id)
	r.factors = append(r.factors, factor)
}
func (r *recorder) KillCPU(id int)    { r.cpuKilled = append(r.cpuKilled, id) }
func (r *recorder) FalseAlarm(id int) { r.alarmed = append(r.alarmed, id) }

func TestApplyDispatch(t *testing.T) {
	rec := &recorder{}
	Fault{Type: NodeFailure, Node: 3}.Apply(rec)
	Fault{Type: InfiniteLoop, Node: 4}.Apply(rec)
	Fault{Type: RouterFailure, Router: 5}.Apply(rec)
	Fault{Type: LinkFailure, Link: 6}.Apply(rec)
	Fault{Type: FalseAlarm, Node: 7}.Apply(rec)
	if len(rec.killed) != 1 || rec.killed[0] != 3 {
		t.Errorf("killed = %v", rec.killed)
	}
	if len(rec.looped) != 1 || rec.looped[0] != 4 {
		t.Errorf("looped = %v", rec.looped)
	}
	if len(rec.routers) != 1 || rec.routers[0] != 5 {
		t.Errorf("routers = %v", rec.routers)
	}
	if len(rec.links) != 1 || rec.links[0] != 6 {
		t.Errorf("links = %v", rec.links)
	}
	if len(rec.alarmed) != 1 || rec.alarmed[0] != 7 {
		t.Errorf("alarmed = %v", rec.alarmed)
	}
}

func TestApplyDispatchExtended(t *testing.T) {
	rec := &recorder{}
	Fault{Type: TransientLink, Link: 2}.Apply(rec)
	Fault{Type: TransientLink, Link: 3, Window: 5 * sim.Microsecond}.Apply(rec)
	Fault{Type: FailSlow, Node: 4}.Apply(rec)
	Fault{Type: FailSlow, Node: 5, Factor: 10}.Apply(rec)
	Fault{Type: CPUFail, Node: 6}.Apply(rec)
	if len(rec.degraded) != 2 || rec.degraded[0] != 2 || rec.degraded[1] != 3 {
		t.Errorf("degraded = %v", rec.degraded)
	}
	if rec.windows[0] != DefaultTransientWindow || rec.windows[1] != 5*sim.Microsecond {
		t.Errorf("windows = %v", rec.windows)
	}
	if len(rec.slowed) != 2 || rec.factors[0] != DefaultSlowFactor || rec.factors[1] != 10 {
		t.Errorf("slowed = %v factors = %v", rec.slowed, rec.factors)
	}
	if len(rec.cpuKilled) != 1 || rec.cpuKilled[0] != 6 {
		t.Errorf("cpuKilled = %v", rec.cpuKilled)
	}
}

func TestAllTypesAndStrings(t *testing.T) {
	types := AllTypes()
	if len(types) != 5 {
		t.Fatalf("AllTypes = %v", types)
	}
	for _, ty := range types {
		if ty.String() == "" {
			t.Fatal("empty type name")
		}
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type name empty")
	}
	if ext := ExtendedTypes(); len(ext) != 3 {
		t.Fatalf("ExtendedTypes = %v", ext)
	}
	for _, f := range []Fault{
		{Type: NodeFailure, Node: 1},
		{Type: RouterFailure, Router: 2},
		{Type: LinkFailure, Link: 3},
		{Type: InfiniteLoop, Node: 4},
		{Type: FalseAlarm, Node: 5},
		{Type: TransientLink, Link: 6},
		{Type: FailSlow, Node: 7},
		{Type: CPUFail, Node: 8},
	} {
		if f.String() == "" {
			t.Fatalf("empty fault string for %v", f.Type)
		}
	}
}

// Property: Random never victimizes a spared node with node-class faults,
// picks link/router victims uniformly without the spare shield, and always
// picks valid victims.
func TestQuickRandomRespectsSpare(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	f := func(seed int64, spare uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := int(spare) % 4
		for _, ty := range append(AllTypes(), ExtendedTypes()...) {
			fl := Random(rng, ty, topo, sp)
			switch ty {
			case NodeFailure, InfiniteLoop, FalseAlarm, FailSlow, CPUFail:
				if fl.Node < sp || fl.Node >= topo.Routers() {
					return false
				}
			case RouterFailure:
				// De-skewed: no spare shield on routers.
				if fl.Router < 0 || fl.Router >= topo.Routers() {
					return false
				}
			case LinkFailure, TransientLink:
				if fl.Link < 0 || fl.Link >= len(topo.Links()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Router victims must cover the full id range, including routers of spared
// nodes — the old spare-offset selection could never fail router 0.
func TestRandomRouterDeskewed(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	rng := rand.New(rand.NewSource(42))
	seen := map[int]bool{}
	for i := 0; i < 512; i++ {
		seen[Random(rng, RouterFailure, topo, 1).Router] = true
	}
	if !seen[0] {
		t.Fatal("router 0 never chosen: spare skew still present")
	}
}

func TestRandomDegenerateSparePanics(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Fatal("spare >= nodes should panic, not silently pick the last node")
		}
	}()
	Random(rng, NodeFailure, topo, 5)
}

func TestPowerLossCompound(t *testing.T) {
	topo := topology.NewMesh(4, 2)
	fs := PowerLoss(topo, []int{3, 7})
	if len(fs) != 4 {
		t.Fatalf("faults = %d, want 4", len(fs))
	}
	rec := &recorder{}
	for _, f := range fs {
		f.Apply(rec)
	}
	if len(rec.killed) != 2 || len(rec.routers) != 2 {
		t.Fatalf("killed=%v routers=%v", rec.killed, rec.routers)
	}
	if rec.killed[0] != 3 || rec.routers[0] != topo.RouterOf(3) || rec.routers[1] != topo.RouterOf(7) {
		t.Fatalf("victims wrong: %v %v", rec.killed, rec.routers)
	}
}

func TestCableCutSelectsCrossingLinks(t *testing.T) {
	topo := topology.NewMesh(4, 3)
	fs := CableCut(topo, 1) // cut between columns 1 and 2
	if len(fs) != 3 {
		t.Fatalf("cut links = %d, want 3 (one per row)", len(fs))
	}
	for _, f := range fs {
		link := topo.Links()[f.Link]
		ax, _ := topo.MeshCoord(link.A)
		bx, _ := topo.MeshCoord(link.B)
		lo, hi := ax, bx
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo != 1 || hi != 2 {
			t.Fatalf("link %d does not cross the cut: columns %d-%d", f.Link, ax, bx)
		}
	}
	if got := CableCut(topo, 3); len(got) != 0 {
		t.Fatalf("cut beyond the last column should be empty, got %d", len(got))
	}
}
