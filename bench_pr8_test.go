package flashfc_test

// The PR 8 benchmark suite: the observability overhead guard behind
// BENCH_PR8.json. The Plain/Observed pair runs the identical tail campaign
// with no sink attached and with the full observability stack attached — a
// RunLog (reordering records to run-index order, JSON-encoding every one)
// fanned together with a Progress reporter, both writing to io.Discard so
// the pair measures the instrumentation itself rather than disk or
// terminal throughput. Campaign results are bit-identical either way, so
// ns_per_op(observed)/ns_per_op(plain) is exactly the streaming cost, and
// the acceptance bar requires it to stay within 1.05 (a ≤5% slowdown).

import (
	"io"
	"testing"

	"flashfc"
)

func benchPR8Tail(b *testing.B, observed bool) {
	b.Helper()
	cfg := flashfc.DefaultTailConfig()
	cfg.BurstLines = 16
	cfg.Stride = 32
	cfg.Runs = 16
	cfg.Workers = 1
	var events float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var log *flashfc.RunLog
		if observed {
			log = flashfc.NewRunLog(io.Discard, false)
			progress := flashfc.NewProgress(io.Discard)
			cfg.Observe = flashfc.MultiSink(log, progress)
		}
		r := flashfc.RunTailCampaign(cfg, 11)
		if observed {
			cfg.Observe.Finish()
			if err := log.Err(); err != nil {
				b.Fatalf("run log: %v", err)
			}
		}
		for _, sc := range r.Scenarios {
			if sc.Failed != 0 {
				b.Fatalf("%v: %d/%d runs failed", sc.Fault, sc.Failed, sc.Runs)
			}
		}
		events += float64(r.Stats.Events)
	}
	b.StopTimer()
	b.ReportMetric(events/float64(b.N), "sim-events/op")
	b.ReportMetric(events/b.Elapsed().Seconds(), "sim-events/s")
}

// BenchmarkPR8TailPlain / BenchmarkPR8TailObserved: the 3-scenario tail
// campaign bare vs streamed through RunLog+Progress.
func BenchmarkPR8TailPlain(b *testing.B)    { benchPR8Tail(b, false) }
func BenchmarkPR8TailObserved(b *testing.B) { benchPR8Tail(b, true) }
