// Package flashfc is a simulation-based reproduction of "Hardware Fault
// Containment in Scalable Shared-Memory Multiprocessors" (Teodosiu, Baxter,
// Govil, Chapin, Rosenblum, Horowitz — ISCA 1997): the fault-containment
// support added to the Stanford FLASH multiprocessor and the distributed
// four-phase recovery algorithm that restores operation after a hardware
// fault, together with a model of the Hive operating system's containment
// contract and the full experiment suite of the paper's evaluation section.
//
// The package is a façade over the internal packages:
//
//   - NewMachine builds a complete simulated FLASH system: mesh or
//     hypercube interconnect with virtual lanes and source routing, MAGIC
//     node controllers running a directory-based coherence protocol with
//     the paper's containment features (node map, firewall, range check,
//     vector remap, NAK counters, operation timeouts), processors, and one
//     recovery agent per node.
//   - A Machine implements fault injection (Table 5.2 fault classes),
//     whole-memory verification against a ground-truth oracle (§5.2), and
//     per-phase recovery-time aggregation (Fig 5.5/5.6).
//   - NewHive partitions a machine into Hive cells over hardware failure
//     units, with firewalled kernel pages, exactly-once inter-cell RPC and
//     OS recovery (§3.3, §4.6); NewParallelMake builds the §5.1 workload.
//   - The experiment drivers regenerate every table and figure of §5:
//     single runs through RunValidation / RunEndToEnd, batches and sweeps
//     through RunCampaign with the per-family campaign structs
//     (ValidationCampaign, EndToEndCampaign, Fig55Campaign, …), and the
//     specialty campaigns through RunTailCampaign / RunRoutingCampaign.
//
// A minimal session:
//
//	cfg := flashfc.DefaultMachineConfig(16)
//	m := flashfc.NewMachine(cfg)
//	m.InjectAt(flashfc.Fault{Type: flashfc.NodeFailure, Node: 5}, flashfc.Millisecond)
//	m.Nodes[0].CPU.Submit(flashfc.TouchOp(m, 5)) // detection traffic
//	if m.RunUntilRecovered(2 * flashfc.Second) {
//	    fmt.Println(m.Aggregate().Total) // suspension time
//	}
package flashfc

import (
	"io"

	"flashfc/internal/coherence"
	"flashfc/internal/experiments"
	"flashfc/internal/fault"
	"flashfc/internal/hive"
	"flashfc/internal/machine"
	"flashfc/internal/magic"
	"flashfc/internal/metrics"
	"flashfc/internal/proc"
	"flashfc/internal/routing"
	"flashfc/internal/runner"
	"flashfc/internal/sim"
	"flashfc/internal/stats"
	"flashfc/internal/trace"
	"flashfc/internal/workload"
)

// Simulation time.
type Time = sim.Time

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Machine assembly.
type (
	// Machine is a complete simulated FLASH system.
	Machine = machine.Machine
	// MachineConfig describes a machine to build.
	MachineConfig = machine.Config
	// MachineNode bundles one node's components.
	MachineNode = machine.Node
	// PhaseTimes aggregates per-phase recovery durations.
	PhaseTimes = machine.PhaseTimes
	// VerifyResult is the outcome of the whole-memory sweep.
	VerifyResult = machine.VerifyResult
	// TopoKind selects mesh or hypercube.
	TopoKind = machine.TopoKind
	// Addr is a physical address in the machine's global space.
	Addr = coherence.Addr
)

// Topology kinds.
const (
	TopoMesh      = machine.TopoMesh
	TopoHypercube = machine.TopoHypercube
)

// Machine configuration knobs worth noting: Config.ReliableInterconnect
// builds the §6.3 HAL-style machine (flush-free recovery, end-to-end
// retransmission); Config.Recovery.HardwiredController models the §6.2
// minimum-support variant; Config.Recovery.QuorumFraction is the §4.2
// split-brain guard.

// MachineSnapshot is a frozen machine image taken at a quiescent point
// (see Machine.Snapshot); MachineFromSnapshot forks it any number of times.
type MachineSnapshot = machine.Snapshot

// NewMachine builds and wires a machine.
func NewMachine(cfg MachineConfig) *Machine { return machine.New(cfg) }

// MachineFromSnapshot rehydrates an independent machine from a snapshot in
// O(non-memory state); memory and directory images are shared
// copy-on-write. tr (which may be nil) becomes the fork's tracer.
func MachineFromSnapshot(s *MachineSnapshot, tr *Tracer) *Machine {
	return machine.FromSnapshot(s, tr)
}

// DefaultMachineConfig returns a Table 5.1-style configuration.
func DefaultMachineConfig(nodes int) MachineConfig { return machine.DefaultConfig(nodes) }

// Faults (Table 5.2).
type (
	// Fault is one concrete injection.
	Fault = fault.Fault
	// FaultType is a fault class.
	FaultType = fault.Type
)

// Fault classes.
const (
	NodeFailure   = fault.NodeFailure
	RouterFailure = fault.RouterFailure
	LinkFailure   = fault.LinkFailure
	InfiniteLoop  = fault.InfiniteLoop
	FalseAlarm    = fault.FalseAlarm
	TransientLink = fault.TransientLink
	FailSlow      = fault.FailSlow
	CPUFail       = fault.CPUFail
)

// AllFaultTypes lists the injectable fail-stop fault classes (Table 5.2).
func AllFaultTypes() []FaultType { return fault.AllTypes() }

// ExtendedFaultTypes lists the non-fail-stop classes beyond Table 5.2:
// transient-link, fail-slow, and CPU-fail/memory-survives.
func ExtendedFaultTypes() []FaultType { return fault.ExtendedTypes() }

// PowerLoss builds the compound fault for a partial power-supply failure:
// each listed node loses its controller, memory, router and links (§4.1).
// Inject with Machine.InjectAll.
func PowerLoss(m *Machine, nodes []int) []Fault { return fault.PowerLoss(m.Topo, nodes) }

// CableCut builds the compound fault for a disconnected inter-cabinet
// cable: every mesh link crossing between column x and x+1 fails (§4.1).
func CableCut(m *Machine, x int) []Fault { return fault.CableCut(m.Topo, x) }

// Processor operations.
type (
	// Op is a memory operation submitted to a CPU.
	Op = proc.Op
	// Result completes a memory operation.
	Result = magic.Result
)

// Operation kinds.
const (
	OpRead          = proc.OpRead
	OpReadExclusive = proc.OpReadExclusive
	OpWrite         = proc.OpWrite
)

// TouchOp builds a single read of a node's memory — the minimal probe that
// makes a quiet fault observable.
func TouchOp(m *Machine, target int) Op { return workload.TouchOp(m, target) }

// Tracer collects a machine-wide event timeline (injections, triggers,
// phase transitions, completions); attach one via MachineConfig.Trace or
// ValidationConfig.Trace.
type Tracer = trace.Tracer

// TraceEvent is one timeline entry.
type TraceEvent = trace.Event

// NewTracer returns a tracer retaining at most limit events (0: unlimited).
func NewTracer(limit int) *Tracer { return trace.New(limit) }

// Span-based causal tracing: beyond the flat timeline, a Tracer records a
// hierarchical span tree (recovery → per-node P1–P4 → gossip rounds, drain
// attempts, flush/scan) and causally-linked point events (packet
// lifecycles, MAGIC denials). Export with Tracer.WriteChromeJSON
// (Perfetto-loadable) or analyze with Tracer.CriticalPaths /
// WriteCriticalReport.
type (
	// SpanID identifies one span in a Tracer's span tree (0 = none).
	SpanID = trace.SpanID
	// TraceSpan is one named interval of the recovery span tree.
	TraceSpan = trace.Span
	// TracePoint is one instantaneous causal event.
	TracePoint = trace.Point
	// TraceKind classifies flat timeline events.
	TraceKind = trace.Kind
	// CriticalPath is the longest-latency span chain of one recovery.
	CriticalPath = trace.CriticalPath
)

// Flat timeline event kinds.
const (
	TraceKindFault    = trace.KindFault
	TraceKindPhase    = trace.KindPhase
	TraceKindComplete = trace.KindComplete
	TraceKindNote     = trace.KindNote
)

// Metrics layer: every Machine owns a MetricsRegistry that all simulation
// layers report into (sim engine, interconnect, MAGIC controllers, recovery
// agents, machine harness). Machine.MetricsSnapshot freezes it; snapshots
// merge deterministically, so campaigns aggregate per-run snapshots into
// byte-stable tables and JSON for any worker count.
type (
	// MetricsRegistry is one machine's metric namespace.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a frozen, serializable view of a registry.
	MetricsSnapshot = metrics.Snapshot
	// MetricSummary is the across-run distribution of one metric.
	MetricSummary = stats.Summary
)

// MergeMetrics folds per-run snapshots (in run order) into one aggregate.
func MergeMetrics(snaps []*MetricsSnapshot) *MetricsSnapshot { return runner.MergeMetrics(snaps) }

// SummarizeMetrics computes the across-run distribution of every counter
// and gauge in the per-run snapshots.
func SummarizeMetrics(snaps []*MetricsSnapshot) map[string]MetricSummary {
	return runner.SummarizeMetrics(snaps)
}

// WriteMetricsSummary renders SummarizeMetrics output as a sorted table.
func WriteMetricsSummary(w io.Writer, sums map[string]MetricSummary) {
	runner.WriteMetricsSummary(w, sums)
}

// ErrBusError terminates accesses to inaccessible, incoherent, firewalled
// or range-protected lines.
var ErrBusError = magic.ErrBusError

// ErrAborted completes accesses cut short by recovery; reissue after.
var ErrAborted = magic.ErrAborted

// Hive operating system model.
type (
	// Hive is an instance of the Hive OS model over a machine.
	Hive = hive.Hive
	// HiveConfig tunes the Hive model.
	HiveConfig = hive.Config
	// Cell is one Hive kernel managing one failure unit.
	Cell = hive.Cell
	// Make drives the §5.1 parallel-make workload.
	Make = hive.Make
	// MakeConfig tunes the workload.
	MakeConfig = hive.MakeConfig
	// MakeOutcome is the verdict of one end-to-end run.
	MakeOutcome = hive.Outcome
)

// NewHive attaches a Hive instance to a machine built with
// HiveMachineConfig.
func NewHive(m *Machine, cfg HiveConfig) *Hive { return hive.New(m, cfg) }

// DefaultHiveConfig returns an experiment-calibrated Hive configuration.
func DefaultHiveConfig(cells int) HiveConfig { return hive.DefaultConfig(cells) }

// HiveMachineConfig builds the machine configuration a Hive system needs:
// failure units matching the cells and the firewall enabled.
func HiveMachineConfig(cells, nodesPerCell int, memBytes, l2Bytes uint64, seed int64) MachineConfig {
	return hive.MachineConfig(cells, nodesPerCell, memBytes, l2Bytes, seed)
}

// NewParallelMake prepares the parallel-make workload on h.
func NewParallelMake(h *Hive, cfg MakeConfig) *Make { return hive.NewMake(h, cfg) }

// DefaultMakeConfig returns the standard workload sizes.
func DefaultMakeConfig() MakeConfig { return hive.DefaultMakeConfig() }

// Parallel campaign infrastructure. Every batch driver fans its fully
// independent runs out over a bounded worker pool (the Workers field of
// the experiment configs, or the workers argument of the figure sweeps;
// 0 = one worker per CPU) with bit-identical results for any worker
// count: each run owns its whole simulated machine and derives its seed
// purely from (base seed, stream, run index).
type (
	// CampaignStats aggregates a campaign's host-side accounting: wall
	// and CPU time, simulated-event totals and events/sec throughput.
	CampaignStats = runner.Stats
	// ValidationRun is one run of a validation batch: the result plus
	// per-run wall time, event count, and any captured panic.
	ValidationRun = runner.Result[*experiments.ValidationResult]
	// EndToEndRun is one run of an end-to-end batch.
	EndToEndRun = runner.Result[*experiments.EndToEndResult]
)

// DeriveSeed is the campaign seed-derivation mixer: a SplitMix64-style
// avalanche over (base, stream, i) that gives every run of every
// experiment family a decorrelated engine seed.
func DeriveSeed(base int64, stream, i int) int64 { return runner.DeriveSeed(base, stream, i) }

// ParallelMap runs fn(0..n-1) on up to `workers` goroutines (0 = one per
// CPU) and returns the results in index order — the primitive under every
// batch driver, exported for custom experiment campaigns.
func ParallelMap[T any](n, workers int, fn func(i int) T) []T {
	return runner.Map(n, workers, fn)
}

// Experiment drivers (§5 and the §4/§6 ablations).
type (
	// ValidationConfig shapes a §5.2 validation run.
	ValidationConfig = experiments.ValidationConfig
	// ValidationResult is one Table 5.3 run.
	ValidationResult = experiments.ValidationResult
	// Table53Row aggregates validation runs per fault type.
	Table53Row = experiments.Table53Row
	// ScalingConfig shapes a recovery-time measurement.
	ScalingConfig = experiments.ScalingConfig
	// ScalingPoint is one measured configuration.
	ScalingPoint = experiments.ScalingPoint
	// EndToEndConfig shapes a Hive end-to-end run.
	EndToEndConfig = experiments.EndToEndConfig
	// EndToEndResult is one Table 5.4 run.
	EndToEndResult = experiments.EndToEndResult
	// Table54Row aggregates end-to-end runs per fault type.
	Table54Row = experiments.Table54Row
	// Fig57Point is one suspension-time measurement.
	Fig57Point = experiments.Fig57Point
	// WarmStartMode selects how batch drivers amortize warm-up (shared
	// snapshot per worker vs per-run rebuild; bit-identical either way).
	WarmStartMode = experiments.WarmStartMode
	// WarmState is a warmed-up validation machine frozen into a forkable
	// snapshot (see WarmupValidation / ValidationFromWarm in
	// internal/experiments).
	WarmState = experiments.WarmState
	// PartitionConfig shapes a partitioned-simulation scenario (the
	// 1024-node fill and the boundary-link fault runs).
	PartitionConfig = experiments.PartitionConfig
	// PartitionResult is one partitioned fill run.
	PartitionResult = experiments.PartitionResult
	// TailConfig shapes a containment-time tail campaign over the
	// degradation fault classes.
	TailConfig = experiments.TailConfig
	// TailScenario aggregates one fault class's tail campaign: p50/p99/p999
	// containment time plus the affected fraction of the machine.
	TailScenario = experiments.TailScenario
	// TailResult is a full tail campaign.
	TailResult = experiments.TailResult
)

// DefaultTailRuns is the default per-scenario run count of a tail campaign:
// enough observations that the p999 rests on a real one.
const DefaultTailRuns = experiments.DefaultTailRuns

// Warm-start modes (see WarmStartMode).
const (
	WarmStartAuto = experiments.WarmStartAuto
	WarmStartOff  = experiments.WarmStartOff
	WarmStartOn   = experiments.WarmStartOn
)

// DefaultValidationConfig returns the standard §5.2 validation setup.
func DefaultValidationConfig() ValidationConfig { return experiments.DefaultValidationConfig() }

// WarmupValidation builds a warmed validation machine (cache fill run to
// quiescence) frozen into a forkable snapshot. Derive warmSeed with
// DeriveSeed(base, StreamWarmup, 0) so all workers rebuild it identically.
func WarmupValidation(cfg ValidationConfig, warmSeed int64) *WarmState {
	return experiments.WarmupValidation(cfg, warmSeed)
}

// ValidationFromWarm performs one validation run by forking ws; the fault
// and post-fork fill burst are drawn from runSeed-private streams.
func ValidationFromWarm(ws *WarmState, ft FaultType, runSeed int64, tr *Tracer) *ValidationResult {
	return experiments.ValidationFromWarm(ws, ft, runSeed, tr)
}

// StreamWarmup is the seed stream of warm-start snapshot construction.
const StreamWarmup = runner.StreamWarmup

// RunValidation performs one §5.2 validation run.
func RunValidation(cfg ValidationConfig, ft FaultType, seed int64) *ValidationResult {
	return experiments.Validation(cfg, ft, seed)
}

// DefaultTailConfig returns the default tail-campaign setup: the validation
// machine with DefaultTailRuns warm-forked runs per degradation scenario.
func DefaultTailConfig() TailConfig { return experiments.DefaultTailConfig() }

// RunTailCampaign measures the containment-time tail of the degradation
// fault classes (transient-link, fail-slow, CPU-fail/memory-survives):
// cfg.Runs warm-forked validation runs per class reduced to p50/p99/p999
// containment time plus the affected fraction of the machine. Results are
// bit-identical for any worker count, any Partitions value, and warm-start
// on or off.
func RunTailCampaign(cfg TailConfig, seed int64) *TailResult {
	return experiments.TailCampaign(cfg, seed)
}

// DefaultPartitionConfig returns the 1024-node partitioned scaling scenario.
func DefaultPartitionConfig() PartitionConfig { return experiments.DefaultPartitionConfig() }

// RunPartitionFill runs the fault-free partitioned fill scenario: region
// schedulers execute conservative lookahead windows on cfg.Partitions
// workers, bit-identical at any worker count.
func RunPartitionFill(cfg PartitionConfig, seed int64) *PartitionResult {
	return experiments.PartitionFill(cfg, seed)
}

// RunPartitionBoundaryFault fails an inter-region link mid-fill on a
// partitioned machine and runs recovery across the cut.
func RunPartitionBoundaryFault(cfg PartitionConfig, seed int64) *ValidationResult {
	return experiments.PartitionBoundaryFault(cfg, seed)
}

// DefaultScalingConfig returns the Fig 5.5 measurement setup for n nodes.
func DefaultScalingConfig(nodes int) ScalingConfig { return experiments.DefaultScalingConfig(nodes) }

// MeasureRecovery injects a node failure and aggregates per-phase times.
func MeasureRecovery(cfg ScalingConfig) ScalingPoint { return experiments.MeasureRecovery(cfg) }

// DefaultEndToEndConfig returns the §5.1 end-to-end setup.
func DefaultEndToEndConfig() EndToEndConfig { return experiments.DefaultEndToEndConfig() }

// RunEndToEnd performs one Table 5.4 end-to-end experiment.
func RunEndToEnd(cfg EndToEndConfig, ft FaultType, seed int64) *EndToEndResult {
	return experiments.EndToEnd(cfg, ft, seed)
}

// FirewallLatency measures an intercell write-miss latency with the
// firewall on or off (§6.2).
func FirewallLatency(on bool, seed int64) Time { return experiments.FirewallLatency(on, seed) }

// FirewallOverheadFraction returns the firewall's relative latency cost.
func FirewallOverheadFraction(seed int64) float64 {
	return experiments.FirewallOverheadFraction(seed)
}

// TriggerLatency measures the recovery-triggering latency with or without
// the §4.2 speculative-ping optimization.
func TriggerLatency(nodes int, speculative bool, seed int64) Time {
	return experiments.TriggerLatency(nodes, speculative, seed)
}

// RecoveryDistribution summarizes per-phase recovery times across seeds.
type RecoveryDistribution = experiments.Distribution

// Head-to-head routing campaigns: the same faulted runs replayed under
// every registered interconnect-recovery routing strategy (see
// internal/routing), comparing recovery time, its P3 share, packets lost,
// post-recovery throughput, and deadlock freedom of the installed tables.
type (
	// RoutingConfig shapes a head-to-head routing campaign.
	RoutingConfig = experiments.RoutingConfig
	// RoutingScenarioSpec is one fault shape a routing campaign replays.
	RoutingScenarioSpec = experiments.RoutingScenarioSpec
	// RoutingScenario is one fault shape's head-to-head comparison.
	RoutingScenario = experiments.RoutingScenario
	// RoutingCell aggregates one (scenario, strategy) batch.
	RoutingCell = experiments.RoutingCell
	// RoutingResult is a full head-to-head routing campaign.
	RoutingResult = experiments.RoutingResult
)

// RoutingStrategies lists the registered recovery-routing strategies
// ("adaptive", "incremental", "paper"); pass one to
// MachineConfig.Routing, ValidationConfig.Routing, or the CLIs' -routing.
func RoutingStrategies() []string { return routing.Names() }

// DefaultRoutingConfig returns the default head-to-head setup: the
// validation machine, every registered strategy, the default single-link /
// router / multi-link scenarios.
func DefaultRoutingConfig() RoutingConfig { return experiments.DefaultRoutingConfig() }

// RunRoutingCampaign runs the head-to-head routing comparison: for each
// scenario, every strategy replays the identical warm-forked faulted runs
// (the seed stream never involves the strategy), so per-cell differences
// are pure strategy effects. Bit-identical for any worker count and
// warm-start mode.
func RunRoutingCampaign(cfg RoutingConfig, seed int64) *RoutingResult {
	return experiments.RoutingCampaign(cfg, seed)
}
